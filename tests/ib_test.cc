/**
 * @file
 * InfiniBand RC tests: reliable in-order delivery, RDMA read/write,
 * the rNPF handling of §4 (RNR NACK suspension, read-response
 * rewinds, sender-side stalls), and reliability under synthetic
 * fault injection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"

using namespace npf;
using namespace npf::ib;

namespace {

constexpr std::size_t MiB = 1ull << 20;

/** Two-node IB rig with independent hosts. */
struct IbRig
{
    sim::EventQueue eq;
    net::Fabric fabric;
    mem::MemoryManager mmA, mmB;
    mem::AddressSpace &asA, &asB;
    core::NpfController npfcA, npfcB;
    core::ChannelId chA, chB;
    std::unique_ptr<QueuePair> qpA, qpB;

    explicit IbRig(QpConfig qcfg = {},
                   std::size_t mem_bytes = 256 * MiB)
        : fabric(eq, 2,
                 net::FabricConfig{net::LinkConfig{56e9, 300, 32}, 200}),
          mmA(mem_bytes), mmB(mem_bytes),
          asA(mmA.createAddressSpace("A")),
          asB(mmB.createAddressSpace("B")), npfcA(eq), npfcB(eq),
          chA(npfcA.attach(asA)), chB(npfcB.attach(asB))
    {
        qpA = std::make_unique<QueuePair>(eq, fabric, 0, npfcA, chA, qcfg,
                                          1);
        qpB = std::make_unique<QueuePair>(eq, fabric, 1, npfcB, chB, qcfg,
                                          2);
        qpA->connect(*qpB);
        qpB->connect(*qpA);
    }

    /** Warm a buffer: CPU-present and IOMMU-mapped. */
    void
    warm(core::NpfController &n, core::ChannelId ch, mem::VirtAddr a,
         std::size_t len)
    {
        n.prefault(ch, a, len, true);
    }

    bool
    runUntil(const std::function<bool()> &pred,
             sim::Time limit = 10 * sim::kSecond)
    {
        return eq.runUntilCondition(pred, eq.now() + limit);
    }
};

} // namespace

TEST(IbRc, SendRecvDeliversMessage)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcA, rig.chA, sbuf, 64 * 1024);
    rig.warm(rig.npfcB, rig.chB, rbuf, 64 * 1024);

    std::vector<Completion> recv_cqes, send_cqes;
    rig.qpB->onCompletion([&](const Completion &c) {
        (c.isRecv ? recv_cqes : send_cqes).push_back(c);
    });
    bool send_done = false;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv)
            send_done = true;
    });

    rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 7});
    rig.qpA->postSend({Opcode::Send, sbuf, 64 * 1024, 0, 9});

    ASSERT_TRUE(rig.runUntil([&] { return !recv_cqes.empty() &&
                                          send_done; }));
    EXPECT_EQ(recv_cqes[0].wrId, 7u);
    EXPECT_EQ(recv_cqes[0].bytes, 64u * 1024);
    EXPECT_EQ(rig.qpB->stats().messagesDelivered, 1u);
    EXPECT_EQ(rig.qpA->stats().rnrNacksReceived, 0u);
}

TEST(IbRc, ManyMessagesArriveInOrder)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcA, rig.chA, sbuf, MiB);
    rig.warm(rig.npfcB, rig.chB, rbuf, MiB);

    std::vector<std::uint64_t> order;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            order.push_back(c.wrId);
    });
    constexpr int kMsgs = 50;
    for (int i = 0; i < kMsgs; ++i)
        rig.qpB->postRecv({Opcode::Send, rbuf, 8192, 0,
                           std::uint64_t(i)});
    for (int i = 0; i < kMsgs; ++i)
        rig.qpA->postSend({Opcode::Send, sbuf, 8192, 0,
                           std::uint64_t(i)});

    ASSERT_TRUE(rig.runUntil([&] { return order.size() == kMsgs; }));
    for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(order[i], std::uint64_t(i));
}

TEST(IbRc, ThroughputApproachesLineRate)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(8 * MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(8 * MiB);
    rig.warm(rig.npfcA, rig.chA, sbuf, 4 * MiB);
    rig.warm(rig.npfcB, rig.chB, rbuf, 4 * MiB);

    std::uint64_t delivered = 0;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv) {
            ++delivered;
            rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 0});
        }
    });
    constexpr std::uint64_t kMsgs = 400;
    for (int i = 0; i < 32; ++i)
        rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 0});
    for (std::uint64_t i = 0; i < kMsgs; ++i)
        rig.qpA->postSend({Opcode::Send, sbuf, 64 * 1024, 0, i});

    sim::Time start = rig.eq.now();
    ASSERT_TRUE(rig.runUntil([&] { return delivered == kMsgs; }));
    double secs = sim::toSeconds(rig.eq.now() - start);
    double gbps = double(kMsgs) * 64 * 1024 * 8 / secs / 1e9;
    EXPECT_GT(gbps, 40.0) << "should approach the 56 Gb/s line rate";
    EXPECT_LT(gbps, 56.0);
}

TEST(IbRc, RdmaWriteHitsRemoteMemory)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB);
    mem::VirtAddr target = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcA, rig.chA, sbuf, 256 * 1024);
    rig.warm(rig.npfcB, rig.chB, target, 256 * 1024);

    bool done = false;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv && c.wrId == 42)
            done = true;
    });
    rig.qpA->postSend({Opcode::RdmaWrite, sbuf, 256 * 1024, target, 42});
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_EQ(rig.qpB->stats().messagesDelivered, 1u);
}

TEST(IbRc, RdmaReadPullsRemoteMemory)
{
    IbRig rig;
    mem::VirtAddr local = rig.asA.allocRegion(MiB);
    mem::VirtAddr remote = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcA, rig.chA, local, 512 * 1024);
    rig.warm(rig.npfcB, rig.chB, remote, 512 * 1024);

    bool done = false;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv && c.wrId == 5) {
            done = true;
            EXPECT_EQ(c.bytes, 512u * 1024);
        }
    });
    rig.qpA->postSend({Opcode::RdmaRead, local, 512 * 1024, remote, 5});
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
}

TEST(IbRc, ColdReceiveBufferTriggersRnrNackAndRecovers)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(MiB); // cold: never touched
    rig.warm(rig.npfcA, rig.chA, sbuf, 64 * 1024);

    bool done = false;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            done = true;
    });
    rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 1});
    rig.qpA->postSend({Opcode::Send, sbuf, 64 * 1024, 0, 1});

    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_GT(rig.qpB->stats().recvNpfs, 0u);
    EXPECT_GT(rig.qpB->stats().rnrNacksSent, 0u);
    EXPECT_GT(rig.qpA->stats().rnrNacksReceived, 0u);
    EXPECT_GT(rig.qpA->stats().retransmitted, 0u)
        << "data dropped before the RNR NACK arrived is retransmitted";
    EXPECT_EQ(rig.qpB->stats().messagesDelivered, 1u);
}

TEST(IbRc, ColdSendBufferStallsSenderLocally)
{
    IbRig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB); // CPU-cold too
    mem::VirtAddr rbuf = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcB, rig.chB, rbuf, 64 * 1024);

    bool done = false;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            done = true;
    });
    rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 1});
    rig.qpA->postSend({Opcode::Send, sbuf, 64 * 1024, 0, 1});

    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_GT(rig.qpA->stats().sendNpfs, 0u);
    // Local fault: no RNR traffic, no packet loss.
    EXPECT_EQ(rig.qpB->stats().rnrNacksSent, 0u);
    EXPECT_EQ(rig.qpB->stats().dataPacketsDropped, 0u);
}

TEST(IbRc, ColdReadInitiatorBufferUsesRewindNotRnr)
{
    IbRig rig;
    mem::VirtAddr local = rig.asA.allocRegion(MiB); // cold target
    mem::VirtAddr remote = rig.asB.allocRegion(MiB);
    rig.warm(rig.npfcB, rig.chB, remote, 256 * 1024);

    bool done = false;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv)
            done = true;
    });
    rig.qpA->postSend({Opcode::RdmaRead, local, 256 * 1024, remote, 3});
    ASSERT_TRUE(rig.runUntil([&] { return done; }));
    EXPECT_GT(rig.qpA->stats().recvNpfs, 0u);
    EXPECT_GT(rig.qpA->stats().nakSeqSent, 0u)
        << "read responses recover by rewind, not RNR (§4)";
    EXPECT_GT(rig.qpA->stats().dataPacketsDropped, 0u)
        << "all response packets drop until the fault resolves";
}

/** Property sweep: reliability must hold at any injection rate. */
class IbFaultInjection : public ::testing::TestWithParam<double>
{
};

TEST_P(IbFaultInjection, AllMessagesDeliveredInOrderUnderFaults)
{
    QpConfig qcfg;
    qcfg.syntheticRnpfProb = GetParam();
    IbRig rig(qcfg);
    mem::VirtAddr sbuf = rig.asA.allocRegion(4 * MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(4 * MiB);
    rig.warm(rig.npfcA, rig.chA, sbuf, 4 * MiB);
    rig.warm(rig.npfcB, rig.chB, rbuf, 4 * MiB);

    std::vector<std::uint64_t> order;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            order.push_back(c.wrId);
    });
    constexpr int kMsgs = 60;
    for (int i = 0; i < kMsgs; ++i)
        rig.qpB->postRecv({Opcode::Send, rbuf, 32 * 1024, 0,
                           std::uint64_t(i)});
    for (int i = 0; i < kMsgs; ++i)
        rig.qpA->postSend({Opcode::Send, sbuf, 32 * 1024, 0,
                           std::uint64_t(i)});

    ASSERT_TRUE(rig.runUntil([&] { return order.size() == kMsgs; },
                             60 * sim::kSecond))
        << "injection rate " << GetParam();
    for (int i = 0; i < kMsgs; ++i)
        ASSERT_EQ(order[i], std::uint64_t(i));
    if (GetParam() > 0.0)
        EXPECT_GT(rig.qpB->stats().recvNpfs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, IbFaultInjection,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.2));
