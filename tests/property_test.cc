/**
 * @file
 * Parameterized property sweeps across module configuration spaces:
 * ring geometries, message sizes, MTUs, loss rates, memory budgets.
 * Each instantiation checks the same invariants (no loss, no
 * reorder, exactly-once, accounting consistency) at a different
 * operating point.
 */

#include <gtest/gtest.h>

#include "app/kv_store.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"
#include "payload_pool.hh"
#include "testbed.hh"

using namespace npf;

namespace {

constexpr std::size_t MiB = 1ull << 20;

} // namespace

// --- Ethernet ring geometry sweep ---------------------------------------

class RingGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(RingGeometry, ColdStartDeliversEverythingInOrder)
{
    auto [ring_size, bm_size] = GetParam();
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq);
    auto ch = npfc.attach(as);
    eth::EthNic nic(eq, npfc), peer(eq, npfc);
    peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
    nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});

    eth::RxRingConfig cfg;
    cfg.size = ring_size;
    cfg.bmSize = bm_size;
    std::vector<std::uint64_t> got;
    mem::VirtAddr bufs = as.allocRegion(ring_size * 4096);
    unsigned ring = nic.createRxRing(
        ch, cfg, [&](const eth::Frame &f) {
            got.push_back(test::payloadValue(f));
            eth::RxRing &r = nic.ring(0);
            if (r.postableSlots() > 0)
                nic.postRxBuffer(0, bufs + (r.tail % cfg.size) * 4096,
                                 4096);
        });
    for (std::size_t i = 0; i < ring_size; ++i)
        nic.postRxBuffer(ring, bufs + i * 4096, 4096);

    // Cold ring + paced arrivals: everything must arrive in order.
    constexpr std::uint64_t kFrames = 100;
    for (std::uint64_t i = 0; i < kFrames; ++i) {
        eq.schedule(i * 500 * sim::kMicrosecond, [&, i] {
            eth::Frame f;
            f.dstRing = ring;
            f.bytes = 1000;
            f.payload = test::payloadPool().acquire(i);
            eth::EthNic *dst = &nic;
            peer.txLink()->send(f.bytes, [dst, f] { dst->receive(f); });
        });
    }
    eq.run();
    ASSERT_EQ(got.size(), kFrames)
        << "ring=" << ring_size << " bm=" << bm_size;
    for (std::uint64_t i = 0; i < kFrames; ++i)
        ASSERT_EQ(got[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RingGeometry,
    ::testing::Values(std::tuple{8, 4}, std::tuple{8, 8},
                      std::tuple{16, 4}, std::tuple{64, 16},
                      std::tuple{64, 64}, std::tuple{256, 32},
                      std::tuple{512, 64}));

// --- RC message size x MTU sweep -----------------------------------------

class RcGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(RcGeometry, ColdBuffersExactlyOnceInOrder)
{
    auto [msg_bytes, mtu] = GetParam();
    sim::EventQueue eq;
    net::Fabric fabric(eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200});
    mem::MemoryManager mmA(256 * MiB), mmB(256 * MiB);
    auto &asA = mmA.createAddressSpace("A");
    auto &asB = mmB.createAddressSpace("B");
    core::NpfController npfcA(eq), npfcB(eq);
    auto chA = npfcA.attach(asA);
    auto chB = npfcB.attach(asB);
    ib::QpConfig cfg;
    cfg.pathMtu = mtu;
    ib::QueuePair qpA(eq, fabric, 0, npfcA, chA, cfg, 5);
    ib::QueuePair qpB(eq, fabric, 1, npfcB, chB, cfg, 6);
    qpA.connect(qpB);
    qpB.connect(qpA);

    // Both sides completely cold: sender and receiver fault.
    mem::VirtAddr sbuf = asA.allocRegion(msg_bytes * 4);
    mem::VirtAddr rbuf = asB.allocRegion(msg_bytes * 4);
    asA.touch(sbuf, msg_bytes * 4, true); // CPU writes the payload

    std::vector<std::uint64_t> order;
    qpB.onCompletion([&](const ib::Completion &c) {
        if (c.isRecv) {
            EXPECT_EQ(c.bytes, msg_bytes);
            order.push_back(c.wrId);
        }
    });
    for (std::uint64_t i = 0; i < 4; ++i)
        qpB.postRecv({ib::Opcode::Send,
                      rbuf + i * msg_bytes, msg_bytes, 0, i});
    for (std::uint64_t i = 0; i < 4; ++i)
        qpA.postSend({ib::Opcode::Send,
                      sbuf + i * msg_bytes, msg_bytes, 0, i});

    ASSERT_TRUE(eq.runUntilCondition([&] { return order.size() == 4; },
                                     60 * sim::kSecond));
    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_EQ(order[i], i);
    EXPECT_GT(qpB.stats().recvNpfs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RcGeometry,
    ::testing::Combine(::testing::Values(512, 4096, 65536, 1048576),
                       ::testing::Values(1024, 4096)));

// --- TCP loss-rate sweep ---------------------------------------------------

class TcpLossSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TcpLossSweep, ReliabilityHolds)
{
    double loss = GetParam();
    sim::EventQueue eq;
    sim::Rng rng(33);
    std::unique_ptr<tcp::TcpConnection> a, b;
    a = std::make_unique<tcp::TcpConnection>(
        eq, 1, [&](const tcp::Segment &s, mem::VirtAddr) {
            if (s.len > 0 && rng.bernoulli(loss))
                return;
            eq.scheduleAfter(40 * sim::kMicrosecond,
                             [&, s] { b->receiveSegment(s); });
        });
    b = std::make_unique<tcp::TcpConnection>(
        eq, 1, [&](const tcp::Segment &s, mem::VirtAddr) {
            eq.scheduleAfter(40 * sim::kMicrosecond,
                             [&, s] { a->receiveSegment(s); });
        });
    b->listen();
    bool connected = false;
    a->connect([&](bool ok) { connected = ok; });
    ASSERT_TRUE(eq.runUntilCondition([&] { return connected; },
                                     300 * sim::kSecond));
    std::uint64_t delivered = 0;
    b->onDeliver([&](std::size_t n) { delivered += n; });
    constexpr std::size_t kBytes = 256 * 1024;
    a->send(kBytes);
    eq.runUntilCondition([&] { return delivered == kBytes; },
                         eq.now() + 600 * sim::kSecond);
    EXPECT_EQ(delivered, kBytes) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(Rates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.03, 0.08, 0.15));

// --- memory budget sweep -----------------------------------------------

class MemoryBudget : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MemoryBudget, AccountingStaysConsistentUnderChurn)
{
    std::size_t budget_mb = GetParam();
    mem::MemoryManager mm(budget_mb * MiB);
    auto &as = mm.createAddressSpace("churn");
    sim::Rng rng(budget_mb);
    mem::VirtAddr region = as.allocRegion(4 * budget_mb * MiB);
    std::size_t pages = 4 * budget_mb * MiB / mem::kPageSize;

    for (int step = 0; step < 20000; ++step) {
        mem::Vpn off = rng.uniformInt(0, pages - 1);
        as.touch(region + off * mem::kPageSize, mem::kPageSize,
                 rng.bernoulli(0.5));
    }
    // Invariants: residency within budget; frame accounting matches.
    EXPECT_LE(as.residentPages(), budget_mb * MiB / mem::kPageSize);
    EXPECT_EQ(mm.physical().usedFrames(), as.residentPages());
    // Every present PTE maps a frame that maps back to it.
    std::size_t checked = 0;
    for (mem::Vpn v = mem::pageOf(region);
         v < mem::pageOf(region) + pages; ++v) {
        const mem::Pte *pte = as.findPte(v);
        if (pte == nullptr || !pte->present)
            continue;
        const mem::Frame &f = mm.physical().frame(pte->pfn);
        ASSERT_EQ(f.owner, &as);
        ASSERT_EQ(f.vpn, v);
        ++checked;
    }
    EXPECT_EQ(checked, as.residentPages());
}

INSTANTIATE_TEST_SUITE_P(Budgets, MemoryBudget,
                         ::testing::Values(2, 4, 8, 16, 64));

// --- KV store value-size sweep -------------------------------------------

class KvValueSize : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KvValueSize, LruSemanticsIndependentOfValueSize)
{
    std::size_t value = GetParam();
    mem::MemoryManager mm(256 * MiB);
    auto &as = mm.createAddressSpace("kv");
    std::size_t slot = value + 64;
    app::KvStore kv(as, 20 * slot, value); // exactly 20 items
    ASSERT_EQ(kv.capacityItems(), 20u);
    for (std::uint64_t k = 0; k < 30; ++k)
        kv.set(k);
    // Keys 0..9 were evicted; 10..29 resident.
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_FALSE(kv.get(k).hit) << "value=" << value;
    for (std::uint64_t k = 10; k < 30; ++k)
        EXPECT_TRUE(kv.get(k).hit) << "value=" << value;
}

INSTANTIATE_TEST_SUITE_P(Values, KvValueSize,
                         ::testing::Values(64, 1024, 4096, 20 * 1024,
                                           100 * 1024));

// --- NPF concurrency limit sweep ------------------------------------------

class NpfConcurrency : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NpfConcurrency, AllFaultsResolveAtAnyLimit)
{
    core::OdpConfig cfg;
    cfg.maxConcurrentNpfs = GetParam();
    sim::EventQueue eq;
    mem::MemoryManager mm(256 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq, cfg);
    auto ch = npfc.attach(as);
    mem::VirtAddr buf = as.allocRegion(4 * MiB);

    int resolved = 0;
    for (int i = 0; i < 64; ++i) {
        npfc.raiseNpf(ch, buf + std::uint64_t(i) * 16 * mem::kPageSize,
                      16 * mem::kPageSize, true,
                      [&](const core::NpfBreakdown &bd) {
                          EXPECT_TRUE(bd.ok);
                          ++resolved;
                      });
    }
    eq.run();
    EXPECT_EQ(resolved, 64);
    EXPECT_TRUE(npfc.checkDma(ch, buf, 64 * 16 * mem::kPageSize).ok);
}

INSTANTIATE_TEST_SUITE_P(Limits, NpfConcurrency,
                         ::testing::Values(1u, 2u, 4u, 16u, 64u));
