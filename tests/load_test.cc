/**
 * @file
 * Load-subsystem tests: workload-spec grammar, arrival-process
 * determinism and statistics, key-popularity models, log-bucketed
 * histogram accuracy against exact sorted percentiles, recorder
 * windowing, and the flyweight client pool end to end over stub
 * transports — including the coordinated-omission contract (a
 * stalled server inflates *response* latency, not just service
 * latency) and the timeout/retry/give-up path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <sstream>
#include <tuple>
#include <vector>

#include "app/kv_rpc.hh"
#include "app/kv_store.hh"
#include "app/storage.hh"
#include "core/npf_controller.hh"
#include "load/arrival.hh"
#include "load/client_pool.hh"
#include "load/histogram.hh"
#include "load/popularity.hh"
#include "load/recorder.hh"
#include "load/spec.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"

using namespace npf;
using namespace npf::load;

namespace {

WorkloadSpec
mustParse(const std::string &text)
{
    std::string err;
    auto s = WorkloadSpec::parse(text, &err);
    EXPECT_TRUE(s.has_value()) << text << ": " << err;
    return s.value_or(WorkloadSpec{});
}

} // namespace

// --- spec grammar -----------------------------------------------------

TEST(LoadSpec, ParsesTheDocumentedGrammar)
{
    WorkloadSpec s = mustParse(
        "arrival=poisson:rate=120k;keys=zipf:n=1m,theta=0.95;get=0.95;"
        "req=128");
    EXPECT_EQ(s.arrival.kind, ArrivalSpec::Kind::Poisson);
    EXPECT_DOUBLE_EQ(s.arrival.ratePerSec, 120000.0);
    EXPECT_EQ(s.keys.kind, KeySpec::Kind::Zipf);
    EXPECT_EQ(s.keys.keys, 1000000u);
    EXPECT_DOUBLE_EQ(s.keys.theta, 0.95);
    EXPECT_DOUBLE_EQ(s.getRatio, 0.95);
    EXPECT_EQ(s.requestBytes, 128u);
}

TEST(LoadSpec, PartsAreOptionalAndDefaulted)
{
    WorkloadSpec s = mustParse("keys=uniform:n=500");
    EXPECT_EQ(s.arrival.kind, ArrivalSpec::Kind::Closed);
    EXPECT_EQ(s.keys.kind, KeySpec::Kind::Uniform);
    EXPECT_EQ(s.keys.keys, 500u);
    EXPECT_DOUBLE_EQ(s.getRatio, 0.9);
}

TEST(LoadSpec, ParsesClosedThinkAndOnOff)
{
    WorkloadSpec s = mustParse("arrival=closed:think=200us");
    EXPECT_EQ(s.arrival.kind, ArrivalSpec::Kind::Closed);
    EXPECT_EQ(s.arrival.thinkMean, 200 * sim::kMicrosecond);

    s = mustParse(
        "arrival=onoff:rate=1m,off_rate=100k,on=5ms,off=1ms,dwell=fixed");
    EXPECT_EQ(s.arrival.kind, ArrivalSpec::Kind::OnOff);
    EXPECT_DOUBLE_EQ(s.arrival.ratePerSec, 1e6);
    EXPECT_DOUBLE_EQ(s.arrival.offRatePerSec, 100e3);
    EXPECT_EQ(s.arrival.onMean, 5 * sim::kMillisecond);
    EXPECT_EQ(s.arrival.offMean, sim::kMillisecond);
    EXPECT_FALSE(s.arrival.expDwell);
}

TEST(LoadSpec, ParsesHotSetAndScan)
{
    WorkloadSpec s = mustParse(
        "keys=hotset:n=10k,hot=0.05,traffic=0.95,shift_every=2ms,"
        "shift_by=77");
    EXPECT_EQ(s.keys.kind, KeySpec::Kind::HotSet);
    EXPECT_DOUBLE_EQ(s.keys.hotFraction, 0.05);
    EXPECT_DOUBLE_EQ(s.keys.hotTraffic, 0.95);
    EXPECT_EQ(s.keys.shiftEvery, 2 * sim::kMillisecond);
    EXPECT_EQ(s.keys.shiftBy, 77u);

    s = mustParse("keys=scan:n=42");
    EXPECT_EQ(s.keys.kind, KeySpec::Kind::Scan);
    EXPECT_EQ(s.keys.keys, 42u);
}

TEST(LoadSpec, RejectsGarbage)
{
    std::string err;
    EXPECT_FALSE(WorkloadSpec::parse("keys=zorpf:n=10", &err));
    EXPECT_FALSE(WorkloadSpec::parse("arrival=poisson", &err));
    EXPECT_FALSE(WorkloadSpec::parse("get=2.0", &err));
    EXPECT_FALSE(WorkloadSpec::parse("frobnicate=yes", &err));
    EXPECT_FALSE(err.empty());
}

TEST(LoadSpec, RateAndDurationSuffixes)
{
    double r = 0;
    EXPECT_TRUE(parseRate("186k", &r));
    EXPECT_DOUBLE_EQ(r, 186000.0);
    EXPECT_TRUE(parseRate("1.5m", &r));
    EXPECT_DOUBLE_EQ(r, 1.5e6);
    EXPECT_FALSE(parseRate("fast", &r));

    sim::Time t = 0;
    EXPECT_TRUE(parseDuration("50us", &t));
    EXPECT_EQ(t, 50 * sim::kMicrosecond);
    EXPECT_TRUE(parseDuration("2s", &t));
    EXPECT_EQ(t, 2 * sim::kSecond);
    EXPECT_TRUE(parseDuration("100", &t));
    EXPECT_EQ(t, sim::Time(100));
    EXPECT_FALSE(parseDuration("soon", &t));
}

// --- arrival processes ------------------------------------------------

TEST(LoadArrival, SameSeedSameSchedule)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 250e3;
    ArrivalProcess a(spec, 7), b(spec, 7), c(spec, 8);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        sim::Time ta = a.next();
        EXPECT_EQ(ta, b.next());
        if (ta != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "different seeds produced the same schedule";
}

TEST(LoadArrival, FixedRateIsExactlyPeriodic)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Fixed;
    spec.ratePerSec = 1e6; // 1 us period
    ArrivalProcess a(spec, 1);
    sim::Time prev = 0;
    for (int i = 1; i <= 1000; ++i) {
        sim::Time t = a.next();
        EXPECT_NEAR(double(t - prev), 1000.0, 1.0);
        prev = t;
    }
}

TEST(LoadArrival, PoissonMeanMatchesRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 100e3; // mean gap 10 us
    ArrivalProcess a(spec, 42);
    const int kN = 20000;
    sim::Time last = 0;
    for (int i = 0; i < kN; ++i)
        last = a.next();
    double meanGapNs = double(last) / kN;
    EXPECT_NEAR(meanGapNs, 10000.0, 300.0); // ~3% tolerance
}

TEST(LoadArrival, OnOffModulatesTheRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::OnOff;
    spec.ratePerSec = 1e6;
    spec.offRatePerSec = 0.0;
    spec.onMean = sim::kMillisecond;
    spec.offMean = sim::kMillisecond;
    spec.expDwell = false; // deterministic 1 ms on / 1 ms off
    ArrivalProcess a(spec, 3);
    std::uint64_t inOn = 0, inOff = 0;
    for (;;) {
        sim::Time t = a.next();
        if (t >= 4 * sim::kMillisecond)
            break;
        bool on = (t / sim::kMillisecond) % 2 == 0;
        (on ? inOn : inOff) += 1;
    }
    EXPECT_GT(inOn, 1500u);  // ~2000 expected over the two on windows
    EXPECT_EQ(inOff, 0u);    // off rate zero: silence
}

TEST(LoadArrival, ClosedHasNoOpenSchedule)
{
    ArrivalSpec spec; // defaults to Closed
    ArrivalProcess a(spec, 1);
    EXPECT_EQ(a.next(), ~sim::Time(0));
    EXPECT_FALSE(spec.open());
}

// --- key models -------------------------------------------------------

TEST(LoadKeys, ZipfRankZeroIsHottest)
{
    KeySpec spec;
    spec.kind = KeySpec::Kind::Zipf;
    spec.keys = 1000;
    spec.theta = 0.99;
    auto m = KeyModel::make(spec);
    sim::Rng rng(5);
    std::vector<std::uint64_t> freq(spec.keys, 0);
    const int kN = 100000;
    for (int i = 0; i < kN; ++i)
        ++freq[m->next(rng, 0)];
    // Rank 0 beats every other key, and the head dominates.
    std::uint64_t best = *std::max_element(freq.begin() + 1, freq.end());
    EXPECT_GT(freq[0], best);
    std::uint64_t top10 = 0;
    for (int i = 0; i < 10; ++i)
        top10 += freq[i];
    EXPECT_GT(double(top10) / kN, 0.3);
    // Frequencies decay along the rank order (averaged over decades).
    std::uint64_t head = 0, tail = 0;
    for (int i = 0; i < 100; ++i)
        head += freq[i];
    for (int i = 900; i < 1000; ++i)
        tail += freq[i];
    EXPECT_GT(head, 5 * tail);
}

TEST(LoadKeys, UniformCoversTheKeyspaceEvenly)
{
    KeySpec spec;
    spec.keys = 16;
    auto m = KeyModel::make(spec);
    sim::Rng rng(9);
    std::vector<std::uint64_t> freq(spec.keys, 0);
    const int kN = 64000;
    for (int i = 0; i < kN; ++i)
        ++freq[m->next(rng, 0)];
    for (std::uint64_t f : freq)
        EXPECT_NEAR(double(f), kN / 16.0, kN / 16.0 * 0.15);
}

TEST(LoadKeys, ScanSweepsAndWraps)
{
    KeySpec spec;
    spec.kind = KeySpec::Kind::Scan;
    spec.keys = 5;
    auto m = KeyModel::make(spec);
    sim::Rng rng(1);
    std::vector<std::uint64_t> seen;
    for (int i = 0; i < 7; ++i)
        seen.push_back(m->next(rng, 0));
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 0, 1}));
}

TEST(LoadKeys, HotSetConcentratesTrafficAndShifts)
{
    KeySpec spec;
    spec.kind = KeySpec::Kind::HotSet;
    spec.keys = 1000;
    spec.hotFraction = 0.1;
    spec.hotTraffic = 0.9;
    spec.shiftEvery = sim::kMillisecond;
    spec.shiftBy = 100;
    HotSetKeys m(spec);
    sim::Rng rng(11);

    std::uint64_t hot = 0;
    const int kN = 20000;
    for (int i = 0; i < kN; ++i)
        hot += m.next(rng, 0) < 100 ? 1 : 0;
    EXPECT_NEAR(double(hot) / kN, 0.9, 0.03);
    EXPECT_EQ(m.hotStart(), 0u);

    // Past the shift boundary the hot window has rotated by shift_by.
    m.next(rng, sim::kMillisecond + 1);
    EXPECT_EQ(m.hotStart(), 100u);
    hot = 0;
    for (int i = 0; i < kN; ++i) {
        std::uint64_t k = m.next(rng, sim::kMillisecond + 2);
        hot += (k >= 100 && k < 200) ? 1 : 0;
    }
    EXPECT_NEAR(double(hot) / kN, 0.9, 0.03);
}

TEST(LoadKeys, SetKeysResizesTheKeyspace)
{
    KeySpec spec;
    spec.kind = KeySpec::Kind::Zipf;
    spec.keys = 100;
    auto m = KeyModel::make(spec);
    sim::Rng rng(2);
    m->setKeys(10);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(m->next(rng, 0), 10u);
}

// --- histogram --------------------------------------------------------

TEST(LoadHistogram, PercentilesMatchExactSortWithinQuantisation)
{
    Histogram h;
    std::vector<double> exact;
    sim::Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        double v = rng.exponential(100.0) + 1.0;
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        auto rank = std::size_t(std::ceil(p / 100.0 * exact.size()));
        double want = exact[rank - 1];
        EXPECT_NEAR(h.percentile(p), want, want * 0.01)
            << "p" << p;
    }
    EXPECT_DOUBLE_EQ(h.max(), exact.back());
    EXPECT_DOUBLE_EQ(h.min(), exact.front());
    EXPECT_EQ(h.count(), exact.size());
}

TEST(LoadHistogram, CoordinatedOmissionBackfill)
{
    Histogram h;
    // A 10-interval stall back-fills 9 phantom samples.
    h.recordCorrected(10.0, 1.0);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
    EXPECT_NEAR(h.percentile(50), 5.0, 0.1);

    Histogram plain;
    plain.recordCorrected(10.0, 0.0); // no interval: plain record
    EXPECT_EQ(plain.count(), 1u);
}

TEST(LoadHistogram, MergeAndZeroHandling)
{
    Histogram a, b;
    a.record(0.0); // exact zero lands in the underflow counter
    a.record(1.0);
    b.record(100.0);
    b.record(10000.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 10000.0);
    EXPECT_DOUBLE_EQ(a.percentile(20), 0.0);
    a.clear();
    EXPECT_TRUE(a.empty());
    EXPECT_DOUBLE_EQ(a.percentile(99), 0.0);
}

// --- recorder ---------------------------------------------------------

TEST(LoadRecorder, WarmupAndDurationGateEverySample)
{
    Recorder rec(RecorderConfig{sim::kMillisecond, sim::kMillisecond});
    Recorder::ClassId c = rec.addClass("get");

    auto at = [](double ms) { return sim::Time(ms * 1e6); };
    rec.recordLatency(c, at(0.4), at(0.4), at(0.5)); // warmup: dropped
    rec.recordLatency(c, at(1.4), at(1.4), at(1.5)); // in window
    rec.recordLatency(c, at(2.4), at(2.4), at(2.5)); // after: dropped
    EXPECT_EQ(rec.completions(c), 1u);
    EXPECT_EQ(rec.response(c).count(), 1u);

    rec.recordTimeout(c, at(0.1), at(0.5)); // warmup: dropped
    rec.recordTimeout(c, at(1.0), at(1.5)); // in window
    EXPECT_EQ(rec.timeouts(c), 1u);
    // The timed-out wait floors the response tail (at least 0.5 ms).
    EXPECT_GE(rec.response(c).max(), 499.0);

    rec.recordRetry(c, at(0.5)); // warmup: dropped
    rec.recordRetry(c, at(1.5)); // in window
    EXPECT_EQ(rec.retries(c), 1u);

    // The SLO window histogram sees everything, gate or not.
    EXPECT_EQ(rec.window(c).count(), 5u);
}

TEST(LoadRecorder, ReportListsEveryClass)
{
    Recorder rec(RecorderConfig{0, sim::kSecond});
    Recorder::ClassId g = rec.addClass("get");
    Recorder::ClassId s = rec.addClass("set");
    rec.recordLatency(g, 0, 0, 1000);
    rec.recordLatency(s, 0, 0, 2000);
    std::ostringstream os;
    rec.writeReport(os, sim::kSecond);
    std::string out = os.str();
    EXPECT_NE(out.find("SLO report"), std::string::npos);
    EXPECT_NE(out.find("get"), std::string::npos);
    EXPECT_NE(out.find("set"), std::string::npos);
}

// --- client pool over stub transports ---------------------------------

namespace {

/** In-order stub endpoint with a fixed service time, optional drop
 *  count and a [from, until) stall that holds responses. */
struct StubTransport final : Transport
{
    sim::EventQueue &eq;
    ClientPool *pool = nullptr;
    unsigned ep = 0;
    sim::Time service = sim::kMicrosecond;
    std::uint64_t dropFirst = 0; ///< swallow this many issues
    sim::Time stallFrom = 0, stallUntil = 0;
    std::vector<std::tuple<std::uint32_t, std::uint64_t, bool>> log;
    std::deque<std::uint32_t> held;
    std::uint64_t issues = 0;

    explicit StubTransport(sim::EventQueue &q) : eq(q) {}

    void
    connect(ClientPool &p)
    {
        pool = &p;
        ep = p.addEndpoint(*this);
    }

    void
    issue(std::uint32_t serial, std::uint64_t key, bool is_set,
          std::size_t) override
    {
        log.emplace_back(serial, key, is_set);
        if (++issues <= dropFirst)
            return;
        sim::Time now = eq.now();
        if (now >= stallFrom && now < stallUntil) {
            if (held.empty())
                eq.schedule(stallUntil, [this] {
                    while (!held.empty()) {
                        std::uint32_t s = held.front();
                        held.pop_front();
                        pool->complete(ep, s, true);
                    }
                });
            held.push_back(serial);
            return;
        }
        eq.scheduleAfter(service, [this, serial] {
            pool->complete(ep, serial, true);
        });
    }
};

PoolConfig
openPool(double rate, std::uint64_t clients, std::uint64_t seed)
{
    PoolConfig pc;
    pc.clients = clients;
    pc.seed = seed;
    pc.workload.arrival.kind = ArrivalSpec::Kind::Poisson;
    pc.workload.arrival.ratePerSec = rate;
    pc.workload.keys.kind = KeySpec::Kind::Zipf;
    pc.workload.keys.keys = 1000;
    return pc;
}

} // namespace

TEST(LoadPool, SameSeedIsBitIdentical)
{
    auto run = [](std::uint64_t seed) {
        sim::EventQueue eq;
        ClientPool pool(eq, openPool(200e3, 64, seed));
        std::vector<StubTransport> stubs;
        stubs.reserve(4);
        for (int i = 0; i < 4; ++i) {
            stubs.emplace_back(eq);
            stubs.back().connect(pool);
        }
        pool.start();
        eq.runUntil(20 * sim::kMillisecond);
        pool.stop();
        std::vector<std::tuple<std::uint32_t, std::uint64_t, bool>> all;
        for (auto &s : stubs)
            for (auto &e : s.log)
                all.push_back(e);
        return all;
    };
    auto a = run(5), b = run(5), c = run(6);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(LoadPool, OpenLoopHitsTheOfferedRate)
{
    sim::EventQueue eq;
    ClientPool pool(eq, openPool(500e3, 1000, 3));
    StubTransport stub(eq);
    stub.connect(pool);
    pool.start();
    eq.runUntil(100 * sim::kMillisecond);
    pool.stop();
    // 500k/s for 100 ms = ~50k requests; Poisson noise is ~sqrt(n).
    EXPECT_NEAR(double(pool.issued()), 50000.0, 1500.0);
    EXPECT_EQ(pool.shedArrivals(), 0u);
    EXPECT_GT(pool.completions(), pool.issued() - 100);
}

TEST(LoadPool, HundredThousandFlyweightsOverEightEndpoints)
{
    sim::EventQueue eq;
    PoolConfig pc = openPool(1e6, 100000, 9);
    ClientPool pool(eq, pc);
    std::vector<StubTransport> stubs;
    stubs.reserve(8);
    for (int i = 0; i < 8; ++i) {
        stubs.emplace_back(eq);
        stubs.back().service = 20 * sim::kMicrosecond;
        stubs.back().connect(pool);
    }
    Recorder rec;
    pool.setRecorder(rec);
    pool.start();
    eq.runUntil(50 * sim::kMillisecond);
    pool.stop();
    EXPECT_NEAR(double(pool.issued()), 50000.0, 1500.0);
    EXPECT_EQ(pool.shedArrivals(), 0u);
    EXPECT_EQ(rec.completions(0) + rec.completions(1),
              pool.completions());
}

TEST(LoadPool, ClosedLoopThinkTimePacesClients)
{
    sim::EventQueue eq;
    PoolConfig pc;
    pc.clients = 4;
    pc.seed = 21;
    pc.workload.arrival.kind = ArrivalSpec::Kind::Closed;
    pc.workload.arrival.thinkMean = 100 * sim::kMicrosecond;
    pc.workload.keys.keys = 100;
    ClientPool pool(eq, pc);
    StubTransport stub(eq);
    stub.service = sim::kMicrosecond;
    stub.connect(pool);
    pool.start();
    eq.runUntil(10 * sim::kMillisecond);
    pool.stop();
    // Each client cycles every ~101 us (wheel-bucket quantisation
    // rounds think wakeups up by at most one 64 us bucket).
    double perClient = 10000.0 / 101.0;
    EXPECT_NEAR(double(pool.completions()), 4 * perClient,
                4 * perClient * 0.4);
    EXPECT_GT(pool.completions(), 100u);
}

TEST(LoadPool, StalledServerInflatesCorrectedLatencyOnly)
{
    sim::EventQueue eq;
    PoolConfig pc = openPool(100e3, 4, 13);
    pc.backlogFactor = 10000; // queue, don't shed: the point is CO
    ClientPool pool(eq, pc);
    StubTransport stub(eq);
    stub.stallFrom = 5 * sim::kMillisecond;
    stub.stallUntil = 10 * sim::kMillisecond;
    stub.connect(pool);
    Recorder rec;
    pool.setRecorder(rec);
    pool.start();
    eq.runUntil(20 * sim::kMillisecond);
    pool.stop();

    Histogram response, service;
    response.merge(rec.response(0));
    response.merge(rec.response(1));
    service.merge(rec.service(0));
    service.merge(rec.service(1));
    // Arrivals intended during the stall waited out most of it: the
    // corrected tail sees multiple milliseconds. The post-stall sends
    // themselves completed in ~1 us, so the naive service tail stays
    // three orders of magnitude smaller.
    EXPECT_GT(response.max(), 3000.0);   // us
    EXPECT_LT(service.percentile(99), 100.0);
    EXPECT_GT(response.percentile(99), 50 * service.percentile(99));
}

TEST(LoadPool, TimeoutsRetryWithBackoffThenSucceed)
{
    sim::EventQueue eq;
    PoolConfig pc = openPool(1e3, 1, 31);
    pc.timeout = sim::kMillisecond;
    pc.maxRetries = 10;
    ClientPool pool(eq, pc);
    StubTransport stub(eq);
    stub.dropFirst = 5; // every retry is a fresh issue
    stub.connect(pool);
    pool.start();
    eq.runUntil(50 * sim::kMillisecond);
    pool.stop();
    EXPECT_GE(pool.timeouts(), 5u);
    EXPECT_GE(pool.retries(), 5u);
    EXPECT_EQ(pool.giveups(), 0u);
    EXPECT_GT(pool.completions(), 10u);
}

TEST(LoadPool, GivesUpAfterMaxRetriesAndStaysLive)
{
    sim::EventQueue eq;
    PoolConfig pc = openPool(10e3, 2, 37);
    pc.timeout = sim::kMillisecond;
    pc.maxRetries = 1;
    ClientPool pool(eq, pc);
    StubTransport stub(eq);
    stub.dropFirst = ~std::uint64_t(0); // black hole
    stub.connect(pool);
    Recorder rec;
    pool.setRecorder(rec);
    pool.start();
    eq.runUntil(50 * sim::kMillisecond);
    pool.stop();
    EXPECT_EQ(pool.completions(), 0u);
    EXPECT_GT(pool.giveups(), 5u);
    EXPECT_EQ(pool.timeouts(), pool.giveups() + pool.retries());
    // Give-ups recycle their clients, so the generator keeps issuing
    // long past the first timeout instead of wedging.
    EXPECT_GT(pool.issued(), 20u);
    // Abandoned requests floor the recorded tail at their wait.
    EXPECT_GE(rec.timeouts(0) + rec.timeouts(1), 5u);
}

// --- integration: real transports --------------------------------------

namespace {

/** Two-node IB fabric with NPF controllers on both ends. */
struct IbRig
{
    sim::EventQueue eq;
    net::Fabric fabric{eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200}};
    mem::MemoryManager serverMm{2ull << 30}, clientMm{2ull << 30};
    mem::AddressSpace &serverAs = serverMm.createAddressSpace("srv");
    mem::AddressSpace &clientAs = clientMm.createAddressSpace("cli");
    core::NpfController serverNpfc{eq}, clientNpfc{eq};
    core::ChannelId sch = serverNpfc.attach(serverAs);
    core::ChannelId cch = clientNpfc.attach(clientAs);
};

} // namespace

TEST(LoadIntegration, PoolDrivesTheKvRpcServerOverIb)
{
    IbRig rig;
    app::HostModel host;
    host.addInstance();
    app::KvStore kv(rig.serverAs, 256ull << 20, 1024);
    app::KvRcServer server(rig.eq, kv, host, rig.serverAs);
    for (std::uint64_t k = 0; k < 500; ++k)
        kv.set(k);

    PoolConfig pc = openPool(50e3, 200, 23);
    pc.workload.keys.keys = 500;
    ClientPool pool(rig.eq, pc);
    Recorder rec(RecorderConfig{sim::kMillisecond, 0});
    pool.setRecorder(rec);

    ib::QueuePair qpS(rig.eq, rig.fabric, 0, rig.serverNpfc, rig.sch);
    ib::QueuePair qpC(rig.eq, rig.fabric, 1, rig.clientNpfc, rig.cch);
    qpS.connect(qpC);
    qpC.connect(qpS);
    auto reqs = std::make_shared<sim::RingDeque<app::KvRpcRequest>>();
    auto rsps = std::make_shared<sim::RingDeque<app::KvRpcResponse>>();
    server.addSession(qpS, reqs, rsps);
    app::KvRcTransport t(qpC, rig.clientAs, reqs, rsps, {});
    t.connect(pool);

    pool.start();
    rig.eq.runUntil(20 * sim::kMillisecond);
    pool.stop();

    EXPECT_GT(pool.completions(), 500u);
    // The server may have served up to one more request per client
    // whose response was still in flight when the pool stopped.
    EXPECT_LE(pool.completions(), server.opsServed());
    EXPECT_GE(pool.completions() + pc.clients, server.opsServed());
    EXPECT_GT(pool.hits(), 0u);       // GETs hit the prepopulated keys
    EXPECT_EQ(pool.lateResponses(), 0u);
    EXPECT_GT(rec.completions(0), 0u);
    // Value pages are DMA-read cold by the response Sends: the
    // zero-copy path must raise genuine send-side NPFs.
    EXPECT_GT(qpS.stats().sendNpfs, 0u);
}

TEST(LoadIntegration, FioClientRecordsStorageLatencies)
{
    IbRig rig;
    app::StorageConfig scfg;
    scfg.lunBytes = 1ull << 30;
    scfg.pinned = false;
    app::StorageTarget tgt(rig.eq, rig.serverAs, scfg);
    ASSERT_TRUE(tgt.ok());

    ib::QueuePair qpT(rig.eq, rig.fabric, 0, rig.serverNpfc, rig.sch);
    ib::QueuePair qpI(rig.eq, rig.fabric, 1, rig.clientNpfc, rig.cch);
    qpT.connect(qpI);
    qpI.connect(qpT);
    auto queue = std::make_shared<std::deque<app::IoRequest>>();
    tgt.addSession(qpT, queue);
    app::FioClient fio(rig.eq, qpI, rig.clientAs, queue, 128 * 1024, 4,
                       scfg.lunBytes, 7);
    Recorder rec;
    Recorder::ClassId cls = rec.addClass("read");
    fio.recordInto(&rec, cls);
    fio.start();

    rig.eq.runUntilCondition([&] { return fio.completed() >= 50; },
                             rig.eq.now() + 60 * sim::kSecond);
    ASSERT_GE(fio.completed(), 50u);
    EXPECT_EQ(rec.completions(cls), fio.completed());
    EXPECT_GT(rec.response(cls).percentile(50), 0.0);
    // Closed-loop client: intended == sent, so the corrected and
    // naive histograms agree.
    EXPECT_DOUBLE_EQ(rec.response(cls).mean(), rec.service(cls).mean());
}

TEST(LoadPool, OverloadShedsInsteadOfGrowingWithoutBound)
{
    sim::EventQueue eq;
    PoolConfig pc = openPool(1e6, 1, 41);
    pc.backlogFactor = 2;
    ClientPool pool(eq, pc);
    StubTransport stub(eq);
    stub.dropFirst = ~std::uint64_t(0); // nothing ever completes
    stub.connect(pool);
    pool.start();
    eq.runUntil(5 * sim::kMillisecond);
    pool.stop();
    // 1 in flight + 2 backlog slots; the remaining ~5000 arrivals shed.
    EXPECT_EQ(pool.issued(), 1u);
    EXPECT_GT(pool.shedArrivals(), 4000u);
}
