/**
 * @file
 * InfiniBand edge cases: the classic no-WQE RNR, RNR retry
 * exhaustion, multiple QPs sharing one IOchannel, the read-RNR
 * extension's retry path, and mixed op streams under faults.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"

using namespace npf;
using namespace npf::ib;

namespace {

constexpr std::size_t MiB = 1ull << 20;

struct Rig
{
    sim::EventQueue eq;
    net::Fabric fabric;
    mem::MemoryManager mmA{256 * MiB}, mmB{256 * MiB};
    mem::AddressSpace &asA{mmA.createAddressSpace("A")};
    mem::AddressSpace &asB{mmB.createAddressSpace("B")};
    core::NpfController npfcA{eq}, npfcB{eq};
    core::ChannelId chA{npfcA.attach(asA)}, chB{npfcB.attach(asB)};
    std::unique_ptr<QueuePair> qpA, qpB;

    explicit Rig(QpConfig cfg = {})
        : fabric(eq, 2,
                 net::FabricConfig{net::LinkConfig{56e9, 300, 32}, 200})
    {
        qpA = std::make_unique<QueuePair>(eq, fabric, 0, npfcA, chA, cfg,
                                          1);
        qpB = std::make_unique<QueuePair>(eq, fabric, 1, npfcB, chB, cfg,
                                          2);
        qpA->connect(*qpB);
        qpB->connect(*qpA);
    }
};

} // namespace

TEST(IbEdge, MissingRecvWqeTriggersClassicRnr)
{
    Rig rig;
    mem::VirtAddr sbuf = rig.asA.allocRegion(64 * 1024);
    rig.npfcA.prefault(rig.chA, sbuf, 64 * 1024, true);
    mem::VirtAddr rbuf = rig.asB.allocRegion(64 * 1024);
    rig.npfcB.prefault(rig.chB, rbuf, 64 * 1024, true);

    bool delivered = false;
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            delivered = true;
    });
    // Send with NO receive WQE posted.
    rig.qpA->postSend({Opcode::Send, sbuf, 64 * 1024, 0, 1});
    rig.eq.runUntil(rig.eq.now() + 2 * sim::kMillisecond);
    EXPECT_FALSE(delivered);
    EXPECT_GT(rig.qpB->stats().rnrNacksSent, 0u)
        << "no WQE is the original RNR case";
    // Post the WQE: the suspended sender retries and completes.
    rig.qpB->postRecv({Opcode::Send, rbuf, 64 * 1024, 0, 9});
    ASSERT_TRUE(rig.eq.runUntilCondition([&] { return delivered; },
                                         rig.eq.now() +
                                             10 * sim::kSecond));
}

TEST(IbEdge, RnrRetryExhaustionErrorsTheQueue)
{
    QpConfig cfg;
    cfg.rnrRetryLimit = 3;
    Rig rig(cfg);
    mem::VirtAddr sbuf = rig.asA.allocRegion(4096);
    rig.npfcA.prefault(rig.chA, sbuf, 4096, true);

    std::vector<bool> results;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv)
            results.push_back(c.ok);
    });
    // Never post a receive WQE: RNR retries must run out.
    rig.qpA->postSend({Opcode::Send, sbuf, 4096, 0, 1});
    rig.qpA->postSend({Opcode::Send, sbuf, 4096, 0, 2}); // also flushed
    rig.eq.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0]) << "flush with error after retry limit";
    EXPECT_FALSE(results[1]);
    EXPECT_TRUE(rig.qpA->inError());
    // A post after the error is flushed immediately, and the event
    // queue still drains (no live transmit machinery).
    rig.qpA->postSend({Opcode::Send, sbuf, 4096, 0, 3});
    rig.eq.run();
    EXPECT_EQ(results.size(), 2u)
        << "posts to an errored QP are silently dropped in this model";
}

TEST(IbEdge, MultipleQpsShareOneChannel)
{
    // One IOuser, one IOMMU channel, several connections — faults on
    // one QP warm pages the other QP then uses without faulting.
    Rig rig;
    auto qpA2 = std::make_unique<QueuePair>(rig.eq, rig.fabric, 0,
                                            rig.npfcA, rig.chA,
                                            QpConfig{}, 11);
    auto qpB2 = std::make_unique<QueuePair>(rig.eq, rig.fabric, 1,
                                            rig.npfcB, rig.chB,
                                            QpConfig{}, 12);
    qpA2->connect(*qpB2);
    qpB2->connect(*qpA2);

    mem::VirtAddr sbuf = rig.asA.allocRegion(MiB);
    rig.asA.touch(sbuf, MiB, true);
    mem::VirtAddr rbuf = rig.asB.allocRegion(MiB); // cold, shared

    int recvs = 0;
    auto count = [&](const Completion &c) {
        if (c.isRecv)
            ++recvs;
    };
    rig.qpB->onCompletion(count);
    qpB2->onCompletion(count);

    rig.qpB->postRecv({Opcode::Send, rbuf, 256 * 1024, 0, 1});
    rig.qpA->postSend({Opcode::Send, sbuf, 256 * 1024, 0, 1});
    ASSERT_TRUE(rig.eq.runUntilCondition([&] { return recvs == 1; },
                                         10 * sim::kSecond));
    std::uint64_t faults_before = rig.npfcB.stats().npfs;
    // Second QP writes into the same (now warm) buffer region.
    qpB2->postRecv({Opcode::Send, rbuf, 256 * 1024, 0, 2});
    qpA2->postSend({Opcode::Send, sbuf, 256 * 1024, 0, 2});
    ASSERT_TRUE(rig.eq.runUntilCondition([&] { return recvs == 2; },
                                         rig.eq.now() +
                                             10 * sim::kSecond));
    EXPECT_EQ(rig.npfcB.stats().npfs, faults_before)
        << "the channel's IOMMU is shared: no re-faulting";
}

TEST(IbEdge, ReadRnrExtensionRetriesUntilResolved)
{
    QpConfig cfg;
    cfg.readRnrExtension = true;
    Rig rig(cfg);
    mem::VirtAddr remote = rig.asB.allocRegion(MiB);
    rig.npfcB.prefault(rig.chB, remote, MiB, true);
    mem::VirtAddr local = rig.asA.allocRegion(MiB); // cold target

    bool done = false;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (!c.isRecv)
            done = true;
    });
    rig.qpA->postSend({Opcode::RdmaRead, local, MiB, remote, 1});
    ASSERT_TRUE(rig.eq.runUntilCondition([&] { return done; },
                                         10 * sim::kSecond));
    EXPECT_GT(rig.qpA->stats().readRnrSent, 0u);
    EXPECT_GT(rig.qpB->stats().readRnrReceived, 0u);
    EXPECT_EQ(rig.qpA->stats().nakSeqSent, 0u)
        << "extension path replaces the rewind protocol";
}

TEST(IbEdge, MixedOpStreamUnderFaultsStaysConsistent)
{
    Rig rig;
    mem::VirtAddr a_mem = rig.asA.allocRegion(8 * MiB);
    mem::VirtAddr b_mem = rig.asB.allocRegion(8 * MiB);
    rig.asA.touch(a_mem, 8 * MiB, true);
    rig.asB.touch(b_mem, 8 * MiB, true); // CPU-warm, IOMMU-cold

    int sends_done = 0, recvs_done = 0, writes_done = 0, reads_done = 0;
    rig.qpA->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            return;
        ASSERT_TRUE(c.ok);
        if (c.wrId < 100)
            ++sends_done;
        else if (c.wrId < 200)
            ++writes_done;
        else
            ++reads_done;
    });
    rig.qpB->onCompletion([&](const Completion &c) {
        if (c.isRecv)
            ++recvs_done;
    });

    for (std::uint64_t i = 0; i < 10; ++i)
        rig.qpB->postRecv({Opcode::Send, b_mem + i * 64 * 1024,
                           64 * 1024, 0, i});
    for (std::uint64_t i = 0; i < 10; ++i) {
        rig.qpA->postSend({Opcode::Send, a_mem + i * 64 * 1024,
                           64 * 1024, 0, i});
        rig.qpA->postSend({Opcode::RdmaWrite, a_mem, 32 * 1024,
                           b_mem + MiB + i * 64 * 1024, 100 + i});
        rig.qpA->postSend({Opcode::RdmaRead, a_mem + 2 * MiB + i * 64 * 1024,
                           64 * 1024, b_mem + 4 * MiB, 200 + i});
    }
    ASSERT_TRUE(rig.eq.runUntilCondition(
        [&] {
            return sends_done == 10 && recvs_done == 10 &&
                   writes_done == 10 && reads_done == 10;
        },
        60 * sim::kSecond))
        << sends_done << " " << recvs_done << " " << writes_done << " "
        << reads_done;
}
