/**
 * @file
 * Ethernet NIC tests: the Figure 6 backup-ring algorithm (ordering,
 * completeness, bitmap sweep, bm_size bound), the drop policy, the
 * driver resolver (wait-for-room), and send-side NPFs — plus a
 * randomized property sweep over fault rates.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/backup_ring.hh"
#include "eth/eth_nic.hh"
#include "mem/memory_manager.hh"
#include "payload_pool.hh"

using namespace npf;
using namespace npf::eth;

namespace {

constexpr std::size_t MiB = 1ull << 20;

/** One receiving NIC and a raw frame injector. */
struct EthRig
{
    sim::EventQueue eq;
    mem::MemoryManager mm;
    mem::AddressSpace &as;
    core::NpfController npfc;
    core::ChannelId ch;
    EthNic nic;
    EthNic peer; ///< only used as the wire source
    unsigned ring = 0;
    mem::VirtAddr bufs = 0;
    // One page per descriptor so tests can warm slots independently.
    std::size_t bufBytes = 4096;
    std::vector<std::uint64_t> delivered;

    explicit EthRig(RxRingConfig rcfg, std::size_t mem_bytes = 64 * MiB,
                    bool prefault = false)
        : mm(mem_bytes), as(mm.createAddressSpace("iouser")), npfc(eq),
          ch(npfc.attach(as)), nic(eq, npfc), peer(eq, npfc)
    {
        peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
        nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
        ring = nic.createRxRing(ch, rcfg, [this](const Frame &f) {
            delivered.push_back(test::payloadValue(f));
            repost();
        });
        bufs = as.allocRegion(rcfg.size * bufBytes, "rx");
        if (prefault)
            npfc.prefault(ch, bufs, rcfg.size * bufBytes, true);
        for (std::size_t i = 0; i < rcfg.size; ++i)
            nic.postRxBuffer(ring, bufs + i * bufBytes, bufBytes);
    }

    void
    repost()
    {
        RxRing &r = nic.ring(ring);
        if (r.postableSlots() > 0) {
            std::uint64_t slot = r.tail % r.cfg.size;
            nic.postRxBuffer(ring, bufs + slot * bufBytes, bufBytes);
        }
    }

    /** Inject a frame on the wire toward the ring. */
    void
    inject(std::uint64_t id, std::size_t bytes = 1000)
    {
        Frame f;
        f.dstRing = ring;
        f.bytes = bytes;
        f.payload = test::payloadPool().acquire(id);
        EthNic *dst = &nic;
        peer.txLink()->send(bytes, [dst, f] { dst->receive(f); });
    }
};

} // namespace

TEST(EthNic, WarmRingDeliversDirectly)
{
    RxRingConfig cfg;
    cfg.size = 8;
    EthRig rig(cfg, 64 * MiB, /*prefault=*/true);
    for (std::uint64_t i = 0; i < 5; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(rig.delivered[i], i);
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.rnpfs, 0u);
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.storedDirect, 5u);
}

TEST(EthNic, ColdRingBackupParksAndMergesInOrder)
{
    RxRingConfig cfg;
    cfg.size = 8;
    cfg.policy = RxFaultPolicy::BackupRing;
    EthRig rig(cfg); // cold buffers
    for (std::uint64_t i = 0; i < 5; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 5u) << "backup ring loses nothing";
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(rig.delivered[i], i) << "ordering preserved";
    const RxRing::Stats &s = rig.nic.ring(rig.ring).stats;
    EXPECT_GT(s.rnpfs, 0u);
    EXPECT_GT(s.toBackup, 0u);
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_GT(rig.nic.backupManager().stats().resolved, 0u);
}

TEST(EthNic, ColdRingDropPolicyLosesPacketsButWarmsPages)
{
    RxRingConfig cfg;
    cfg.size = 8;
    cfg.policy = RxFaultPolicy::Drop;
    EthRig rig(cfg);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_TRUE(rig.delivered.empty()) << "first packets all dropped";
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.dropped, 4u);
    // Each drop warmed (at most) one descriptor page, so repeated
    // "retransmissions" land one ring slot at a time — the cold-ring
    // dynamic of §5.
    int rounds = 0;
    std::uint64_t next = 100;
    while (rig.delivered.size() < 4 && rounds < 32) {
        ++rounds;
        for (std::uint64_t i = 0; i < 4 - rig.delivered.size(); ++i)
            rig.inject(next++);
        rig.eq.run();
    }
    ASSERT_EQ(rig.delivered.size(), 4u);
    EXPECT_GT(rounds, 1) << "warming needs multiple retransmit rounds";
    EXPECT_EQ(rig.delivered[0], 100u);
}

TEST(EthNic, CompletionsWaitForOldestFault)
{
    // Packet 0 faults (parked); packet 1 lands directly in the ring.
    // The IOuser must not see packet 1 until packet 0 resolves.
    RxRingConfig cfg;
    cfg.size = 8;
    EthRig rig(cfg);
    // Warm only descriptor slot 1's buffer.
    rig.npfc.prefault(rig.ch, rig.bufs + rig.bufBytes, rig.bufBytes, true);
    rig.inject(0);
    rig.inject(1);
    // Run only until both frames hit the NIC plus a bit: the direct
    // store of packet 1 must not produce a delivery yet.
    rig.eq.runUntil(rig.eq.now() + 50 * sim::kMicrosecond);
    EXPECT_TRUE(rig.delivered.empty())
        << "ordering: head held at the unresolved rNPF";
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.storedDirect, 1u);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 2u);
    EXPECT_EQ(rig.delivered[0], 0u);
    EXPECT_EQ(rig.delivered[1], 1u);
}

TEST(EthNic, BmSizeBoundsParkedPackets)
{
    RxRingConfig cfg;
    cfg.size = 32;
    cfg.bmSize = 4; // provider parks at most 4 per ring
    EthRig rig(cfg);
    for (std::uint64_t i = 0; i < 10; ++i)
        rig.inject(i);
    // Let the wire deliver everything but freeze NPF resolution by
    // checking immediately after arrival.
    rig.eq.runUntil(rig.eq.now() + 30 * sim::kMicrosecond);
    const RxRing::Stats &s = rig.nic.ring(rig.ring).stats;
    EXPECT_LE(s.toBackup, 4u);
    EXPECT_GT(s.dropped, 0u) << "beyond bm_size the NIC must drop";
    rig.eq.run();
    // The parked packets still arrive, in order.
    ASSERT_GE(rig.delivered.size(), 1u);
    for (std::size_t i = 0; i < rig.delivered.size(); ++i)
        EXPECT_EQ(rig.delivered[i], i);
}

TEST(EthNic, RingOverflowParksInBackupUntilReposted)
{
    RxRingConfig cfg;
    cfg.size = 4;
    cfg.bmSize = 4;
    EthRig rig(cfg, 64 * MiB, /*prefault=*/true);
    // 6 packets into a 4-slot ring: the delivery handler reposts, so
    // whether anything parks depends on interrupt latency; at minimum
    // nothing may be lost or reordered.
    for (std::uint64_t i = 0; i < 6; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 6u);
    for (std::uint64_t i = 0; i < 6; ++i)
        EXPECT_EQ(rig.delivered[i], i);
}

TEST(EthNic, TxColdBufferStallsThenSends)
{
    RxRingConfig cfg;
    cfg.size = 8;
    EthRig rig(cfg, 64 * MiB, true);

    // Use the rig's *nic* as the sender toward peer; build a warm
    // peer-side ring to receive.
    // Simpler: send from nic's tx queue toward peer ring 0.
    auto &peer_as = rig.mm.createAddressSpace("peer");
    auto peer_ch = rig.npfc.attach(peer_as);
    RxRingConfig pcfg;
    pcfg.size = 8;
    std::vector<std::uint64_t> got;
    unsigned pring = rig.peer.createRxRing(
        peer_ch, pcfg, [&](const Frame &f) {
            got.push_back(test::payloadValue(f));
        });
    mem::VirtAddr pbufs = peer_as.allocRegion(8 * 2048);
    rig.npfc.prefault(peer_ch, pbufs, 8 * 2048, true);
    for (int i = 0; i < 8; ++i)
        rig.peer.postRxBuffer(pring, pbufs + i * 2048, 2048);

    mem::VirtAddr cold = rig.as.allocRegion(MiB); // IOMMU-cold
    unsigned txq = rig.nic.createTxQueue(rig.ch);
    rig.nic.send(txq, pring, cold, 1400,
                 test::payloadPool().acquire(55));
    rig.eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 55u);
    EXPECT_EQ(rig.nic.stats().txNpfs, 1u);
}

/** Property: at any synthetic fault rate, the backup ring delivers
 *  every packet exactly once, in order. */
class BackupRingProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(BackupRingProperty, NoLossNoReorder)
{
    RxRingConfig cfg;
    cfg.size = 64;
    cfg.bmSize = 64;
    cfg.syntheticRnpfProb = GetParam();
    EthRig rig(cfg, 64 * MiB, /*prefault=*/true);

    constexpr std::uint64_t kFrames = 300;
    // Pace injection slower than one NPF resolution (~220-350 us) so
    // the provider's bm_size window never overflows: completeness is
    // guaranteed only within that bound (§5).
    for (std::uint64_t i = 0; i < kFrames; ++i) {
        rig.eq.schedule(i * 400 * sim::kMicrosecond,
                        [&rig, i] { rig.inject(i); });
    }
    rig.eq.run();
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.dropped, 0u);
    ASSERT_EQ(rig.delivered.size(), kFrames)
        << "fault rate " << GetParam();
    for (std::uint64_t i = 0; i < kFrames; ++i)
        ASSERT_EQ(rig.delivered[i], i);
    if (GetParam() >= 0.05)
        EXPECT_GT(rig.nic.ring(rig.ring).stats.toBackup, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, BackupRingProperty,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3, 0.7));

TEST(EthNic, InvariantHeadWithinBounds)
{
    RxRingConfig cfg;
    cfg.size = 16;
    cfg.bmSize = 8;
    cfg.syntheticRnpfProb = 0.3;
    EthRig rig(cfg, 64 * MiB, true);
    for (std::uint64_t i = 0; i < 100; ++i)
        rig.eq.schedule(i * 2 * sim::kMicrosecond,
                        [&rig, i] { rig.inject(i); });
    // Check the Fig. 6 invariants after every event.
    const RxRing &r = rig.nic.ring(rig.ring);
    while (rig.eq.step()) {
        ASSERT_LE(r.userHead, r.head);
        ASSERT_LE(r.head + r.headOffset, r.tail);
        ASSERT_LE(r.tail, r.userHead + r.cfg.size);
        ASSERT_LE(r.headOffset, r.cfg.bmSize);
    }
}
