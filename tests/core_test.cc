/**
 * @file
 * Tests for the NPF engine: the Figure 2 flows, the Figure 3 latency
 * model (checked against the paper's own numbers), the §4 firmware
 * optimizations, and the four pinning disciplines of Table 3.
 */

#include <gtest/gtest.h>

#include "core/npf_controller.hh"
#include "core/pinning.hh"
#include "mem/memory_manager.hh"
#include "sim/histogram.hh"

using namespace npf;
using namespace npf::core;

namespace {

constexpr std::size_t MiB = 1ull << 20;

struct Rig
{
    sim::EventQueue eq;
    mem::MemoryManager mm;
    mem::AddressSpace &as;
    NpfController npfc;
    ChannelId ch;

    explicit Rig(std::size_t mem_bytes = 256 * MiB, OdpConfig cfg = {})
        : mm(mem_bytes), as(mm.createAddressSpace("iouser")),
          npfc(eq, cfg), ch(npfc.attach(as))
    {
    }
};

} // namespace

TEST(NpfController, CheckDmaReportsMissingPages)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    auto check = rig.npfc.checkDma(rig.ch, buf, 8 * mem::kPageSize);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.missingPages, 8u);
    EXPECT_EQ(check.firstMissing, mem::pageOf(buf));
}

TEST(NpfController, DmaAccessFailsUntilResolved)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    EXPECT_FALSE(rig.npfc.dmaAccess(rig.ch, buf, 100, true));
    bool resolved = false;
    rig.npfc.raiseNpf(rig.ch, buf, 100, true,
                      [&](const NpfBreakdown &bd) {
                          resolved = true;
                          EXPECT_TRUE(bd.ok);
                          EXPECT_EQ(bd.pagesMapped, 1u);
                      });
    rig.eq.run();
    EXPECT_TRUE(resolved);
    EXPECT_TRUE(rig.npfc.dmaAccess(rig.ch, buf, 100, true));
}

TEST(NpfController, ResolutionTakesModeledTime)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    sim::Time done_at = 0;
    rig.npfc.raiseNpf(rig.ch, buf, mem::kPageSize, true,
                      [&](const NpfBreakdown &) { done_at = rig.eq.now(); });
    rig.eq.run();
    // A 4 KB minor NPF costs ~215 us (Fig. 3(a) / Table 4).
    EXPECT_GT(done_at, sim::fromMicroseconds(150));
    EXPECT_LT(done_at, sim::fromMicroseconds(500));
}

TEST(NpfController, BreakdownMatchesPaperFig3)
{
    // 4 KB: ~215 us median; 4 MB: ~352 us median, growth in software.
    Rig rig;
    mem::VirtAddr small = rig.as.allocRegion(4096);
    NpfBreakdown bd4k = rig.npfc.computeResolve(rig.ch, small, 4096, true);
    EXPECT_NEAR(sim::toMicroseconds(bd4k.total()), 215.0, 45.0);
    EXPECT_EQ(bd4k.pagesMapped, 1u);

    mem::VirtAddr big = rig.as.allocRegion(4 * MiB);
    NpfBreakdown bd4m = rig.npfc.computeResolve(rig.ch, big, 4 * MiB, true);
    EXPECT_NEAR(sim::toMicroseconds(bd4m.total()), 352.0, 60.0);
    EXPECT_EQ(bd4m.pagesMapped, 1024u);
    // Hardware dominates the 4 KB case (~90%, §4 "Overhead").
    double hw = sim::toMicroseconds(bd4k.trigger + bd4k.resume);
    EXPECT_GT(hw / sim::toMicroseconds(bd4k.total()), 0.7);
    // The 4 MB growth is software (driver + PT update).
    EXPECT_GT(bd4m.driver, bd4k.driver);
}

TEST(NpfController, TailLatenciesMatchTable4)
{
    Rig rig(1ull << 30);
    mem::VirtAddr buf = rig.as.allocRegion(256 * MiB);
    sim::Histogram h;
    for (int i = 0; i < 4000; ++i) {
        mem::VirtAddr page = buf + (std::uint64_t(i) * mem::kPageSize);
        NpfBreakdown bd = rig.npfc.computeResolve(rig.ch, page, 4096, true);
        h.record(sim::toMicroseconds(bd.total()));
    }
    EXPECT_NEAR(h.percentile(50), 215.0, 40.0);
    EXPECT_NEAR(h.percentile(95), 250.0, 50.0);
    EXPECT_GT(h.max(), h.percentile(99)) << "tail spikes exist";
    EXPECT_LT(h.max(), 1000.0);
}

TEST(NpfController, BatchedPrefaultMapsWholeRequest)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    bool done = false;
    rig.npfc.raiseNpf(rig.ch, buf, 64 * mem::kPageSize, true,
                      [&](const NpfBreakdown &bd) {
                          done = true;
                          EXPECT_EQ(bd.pagesMapped, 64u);
                      });
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 64 * mem::kPageSize).ok);
}

TEST(NpfController, OnePagePerRequestAblation)
{
    OdpConfig cfg;
    cfg.batchedPrefault = false;
    Rig rig(256 * MiB, cfg);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    bool done = false;
    rig.npfc.raiseNpf(rig.ch, buf, 64 * mem::kPageSize, true,
                      [&](const NpfBreakdown &bd) {
                          done = true;
                          EXPECT_EQ(bd.pagesMapped, 1u)
                              << "strict ATS/PRI: one page per event";
                      });
    rig.eq.run();
    EXPECT_TRUE(done);
    auto check = rig.npfc.checkDma(rig.ch, buf, 64 * mem::kPageSize);
    EXPECT_EQ(check.missingPages, 63u);
}

TEST(NpfController, FirmwareBypassMergesDuplicates)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    int resolutions = 0;
    int merged = 0;
    for (int i = 0; i < 5; ++i) {
        rig.npfc.raiseNpf(rig.ch, buf, mem::kPageSize, true,
                          [&](const NpfBreakdown &bd) {
                              ++resolutions;
                              if (bd.merged)
                                  ++merged;
                          });
    }
    rig.eq.run();
    EXPECT_EQ(resolutions, 5);
    EXPECT_EQ(merged, 4) << "four duplicates ride the first resolution";
    EXPECT_EQ(rig.npfc.stats().npfs, 1u);
    EXPECT_EQ(rig.npfc.stats().mergedNpfs, 4u);
}

TEST(NpfController, ConcurrencyLimitQueuesExcessFaults)
{
    OdpConfig cfg;
    cfg.maxConcurrentNpfs = 2;
    Rig rig(256 * MiB, cfg);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    int resolved = 0;
    for (int i = 0; i < 6; ++i) {
        rig.npfc.raiseNpf(rig.ch, buf + std::uint64_t(i) * mem::kPageSize,
                          mem::kPageSize, true,
                          [&](const NpfBreakdown &) { ++resolved; });
    }
    rig.eq.run();
    EXPECT_EQ(resolved, 6);
    EXPECT_GT(rig.npfc.stats().queuedNpfs, 0u);
}

TEST(NpfController, InvalidationFlowCosts)
{
    Rig rig;
    mem::VirtAddr buf = rig.as.allocRegion(4 * MiB);
    // Unmapped page: only the checks cost (Fig. 3(b) fast path).
    InvalidationBreakdown cold = rig.npfc.invalidateRange(
        rig.ch, buf, mem::kPageSize);
    EXPECT_FALSE(cold.wasMapped);
    EXPECT_EQ(cold.ptUpdate, 0u);

    rig.npfc.prefault(rig.ch, buf, 4 * MiB, true);
    InvalidationBreakdown small = rig.npfc.invalidateRange(
        rig.ch, buf, mem::kPageSize);
    EXPECT_TRUE(small.wasMapped);
    EXPECT_NEAR(sim::toMicroseconds(small.total()), 23.0, 8.0);

    rig.npfc.prefault(rig.ch, buf, 4 * MiB, true);
    InvalidationBreakdown big = rig.npfc.invalidateRange(
        rig.ch, buf, 4 * MiB);
    EXPECT_GT(big.total(), small.total())
        << "ranged invalidation scales with pages (Fig. 3(b))";
}

TEST(NpfController, EvictionInvalidatesIommuMapping)
{
    Rig rig(8 * MiB);
    mem::VirtAddr buf = rig.as.allocRegion(2 * MiB);
    rig.npfc.prefault(rig.ch, buf, 2 * MiB, true);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 2 * MiB).ok);
    // Force reclaim of everything unpinned.
    rig.mm.reclaimPages(8 * MiB / mem::kPageSize);
    auto check = rig.npfc.checkDma(rig.ch, buf, 2 * MiB);
    EXPECT_FALSE(check.ok)
        << "MMU notifier must strip the device mapping before reuse";
    EXPECT_GT(rig.npfc.stats().invalidations, 0u);
}

TEST(NpfController, MajorFaultsAddSwapLatency)
{
    Rig rig(8 * MiB);
    mem::VirtAddr buf = rig.as.allocRegion(2 * MiB);
    rig.as.touch(buf, 2 * MiB, true); // dirty
    rig.mm.reclaimPages(4 * MiB / mem::kPageSize); // swap out
    NpfBreakdown bd = rig.npfc.computeResolve(rig.ch, buf,
                                              mem::kPageSize, true);
    EXPECT_TRUE(bd.ok);
    EXPECT_EQ(bd.majorFaults, 1u);
    EXPECT_GT(bd.total(), rig.mm.swap().readLatency(1));
}

TEST(NpfController, SampleResolveLatencyIsReasonable)
{
    Rig rig;
    sim::Time minor = rig.npfc.sampleResolveLatency(rig.ch, 1, false);
    EXPECT_NEAR(sim::toMicroseconds(minor), 215.0, 60.0);
    sim::Time major = rig.npfc.sampleResolveLatency(rig.ch, 1, true);
    EXPECT_GT(major, minor + rig.mm.swap().readLatency(1) / 2);
}

// --- pinning strategies -------------------------------------------------

TEST(Pinning, StaticPinsEverythingUpFront)
{
    Rig rig;
    StaticPinning pin(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(8 * MiB);
    sim::Time setup = pin.setup(buf, 8 * MiB);
    EXPECT_TRUE(pin.ok());
    EXPECT_GT(setup, 0u);
    EXPECT_EQ(pin.beforeDma(buf, MiB), 0u);
    EXPECT_EQ(rig.as.pinnedPages(), 8 * MiB / mem::kPageSize);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 8 * MiB).ok);
}

TEST(Pinning, StaticFailsWhenMemoryTooSmall)
{
    Rig rig(8 * MiB);
    StaticPinning pin(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(16 * MiB);
    pin.setup(buf, 16 * MiB);
    EXPECT_FALSE(pin.ok()) << "Table 5's N/A case";
}

TEST(Pinning, FineGrainedPinsAndUnpinsAroundDma)
{
    Rig rig;
    FineGrainedPinning pin(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    sim::Time before = pin.beforeDma(buf, 64 * 1024);
    EXPECT_GT(before, 0u);
    EXPECT_GT(rig.as.pinnedPages(), 0u);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 64 * 1024).ok);
    sim::Time after = pin.afterDma(buf, 64 * 1024);
    EXPECT_GT(after, 0u);
    EXPECT_EQ(rig.as.pinnedPages(), 0u);
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, buf, 64 * 1024).ok)
        << "fine-grained unmaps after the DMA";
}

TEST(Pinning, PinDownCacheHitsAreCheap)
{
    Rig rig;
    PinDownCache cache(rig.npfc, rig.ch, /*capacity=*/0);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    sim::Time miss = cache.beforeDma(buf, 256 * 1024);
    sim::Time hit = cache.beforeDma(buf, 256 * 1024);
    EXPECT_GT(miss, 10 * hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    // A sub-range of a registered region also hits.
    sim::Time sub = cache.beforeDma(buf + 4096, 1024);
    EXPECT_EQ(sub, hit);
}

TEST(Pinning, PinDownCacheEvictsLruUnderBudget)
{
    Rig rig;
    PinDownCache cache(rig.npfc, rig.ch, 2 * MiB);
    mem::VirtAddr a = rig.as.allocRegion(MiB);
    mem::VirtAddr b = rig.as.allocRegion(MiB);
    mem::VirtAddr c = rig.as.allocRegion(MiB);
    cache.beforeDma(a, MiB);
    cache.beforeDma(b, MiB);
    cache.beforeDma(a, MiB); // refresh a
    cache.beforeDma(c, MiB); // must evict b
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.reregistrations(), 0u)
        << "capacity evictions are not re-registrations";
    EXPECT_LE(cache.pinnedBytes(), 2 * MiB);
    // b needs re-registration; a still hits.
    std::uint64_t misses = cache.misses();
    cache.beforeDma(a, MiB);
    EXPECT_EQ(cache.misses(), misses);
    cache.beforeDma(b, MiB);
    EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(Pinning, PinDownCacheOverlapDoesNotDoubleCount)
{
    // Regression: overlapping registrations were each charged their
    // full page span, so pinnedBytes_ exceeded what is actually
    // pinned and the budget filled up with phantom bytes.
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    PinDownCache cache(rig.npfc, rig.ch, /*capacity=*/0);
    mem::VirtAddr buf = rig.as.allocRegion(16 * kPage);
    cache.beforeDma(buf, 8 * kPage);             // pages [0, 8)
    cache.beforeDma(buf + 4 * kPage, 8 * kPage); // pages [4, 12)
    EXPECT_EQ(cache.pinnedBytes(), 12 * kPage)
        << "the 4 shared pages must be counted once";
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Pinning, PinDownCacheEvictionSparesSiblingCoveredPages)
{
    // Regression: evicting a region invalidated its whole extent,
    // unmapping pages a still-cached overlapping sibling relies on —
    // the sibling then "hits" in the cache but faults on DMA.
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    PinDownCache cache(rig.npfc, rig.ch, /*capacity=*/12 * kPage);
    mem::VirtAddr buf = rig.as.allocRegion(16 * kPage);
    mem::VirtAddr other = rig.as.allocRegion(4 * kPage);
    cache.beforeDma(buf, 8 * kPage);             // A: pages [0, 8)
    cache.beforeDma(buf + 4 * kPage, 8 * kPage); // B: pages [4, 12)
    ASSERT_EQ(cache.pinnedBytes(), 12 * kPage);

    // 4 fresh pages exceed the budget: LRU evicts A.
    cache.beforeDma(other, 4 * kPage);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.pinnedBytes(), 12 * kPage)
        << "only A's private pages [0, 4) were released";

    // B must still hit AND its whole extent must still be mapped.
    std::uint64_t misses = cache.misses();
    cache.beforeDma(buf + 4 * kPage, 8 * kPage);
    EXPECT_EQ(cache.misses(), misses);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf + 4 * kPage,
                                  8 * kPage).ok)
        << "eviction of A must not unmap pages B still covers";
    // A's private pages really are gone from the device view.
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, buf, 4 * kPage).ok);
}

TEST(Pinning, PinDownCacheSameBaseReRegistrationReplaces)
{
    // Re-registering the same base with a longer extent replaces the
    // old region; the old entry must not linger in the LRU list or
    // keep its bytes charged.
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    PinDownCache cache(rig.npfc, rig.ch, /*capacity=*/0);
    mem::VirtAddr buf = rig.as.allocRegion(16 * kPage);
    cache.beforeDma(buf, 4 * kPage);
    cache.beforeDma(buf, 8 * kPage); // longer: a miss, replaces
    // A replacement is not a capacity eviction: tab06's eviction
    // column must keep meaning "the budget pushed something out".
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.reregistrations(), 1u);
    EXPECT_EQ(cache.pinnedBytes(), 8 * kPage);
    std::uint64_t misses = cache.misses();
    cache.beforeDma(buf, 8 * kPage);
    EXPECT_EQ(cache.misses(), misses) << "replacement region hits";
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 8 * kPage).ok);
}

TEST(Pinning, NpfModeIsFree)
{
    NpfPinning npf;
    EXPECT_EQ(npf.setup(0, MiB), 0u);
    EXPECT_EQ(npf.beforeDma(0, MiB), 0u);
    EXPECT_EQ(npf.afterDma(0, MiB), 0u);
    EXPECT_TRUE(npf.ok());
}

TEST(Pinning, PinDownCacheChargesFailedPinAttemptsUnderPressure)
{
    // Regression: the memory-pressure retry loop discarded the cost
    // of each *failed* pinRange attempt — CPU that really faulted
    // pages in before hitting the wall — so only the final successful
    // attempt was charged. Reconstruct the exact expected charge on a
    // twin rig (identical deterministic state) and demand equality.
    constexpr std::size_t kPage = mem::kPageSize;
    const std::size_t kA = 8 * MiB;
    const std::size_t kB = 12 * MiB;
    PinCosts pc;

    Rig rig(16 * MiB);
    PinDownCache cache(rig.npfc, rig.ch, /*capacity=*/0);
    mem::VirtAddr a = rig.as.allocRegion(kA);
    mem::VirtAddr b = rig.as.allocRegion(kB);
    cache.beforeDma(a, kA);
    sim::Time total = cache.beforeDma(b, kB);
    ASSERT_TRUE(cache.ok());

    // Twin rig: replay the same operations by hand.
    Rig twin(16 * MiB);
    PinDownCache warm(twin.npfc, twin.ch, /*capacity=*/0);
    mem::VirtAddr ta = twin.as.allocRegion(kA);
    mem::VirtAddr tb = twin.as.allocRegion(kB);
    ASSERT_EQ(ta, a);
    ASSERT_EQ(tb, b);
    warm.beforeDma(ta, kA);

    // The miss path: first pin attempt fails (A holds half the
    // machine pinned), having already faulted in every free page.
    sim::Time expected = 0;
    mem::AccessResult f1 = twin.as.pinRange(tb, kB);
    ASSERT_FALSE(f1.ok);
    ASSERT_GT(f1.cost, 0u) << "the failed attempt did real work";
    expected += f1.cost; // <-- the charge the bug dropped

    // evictOne(): unpin A, invalidate its (sibling-free) extent.
    twin.as.unpinRange(ta, kA);
    expected += pc.unpinBase + (kA / kPage) * pc.unpinPerPage;
    expected += twin.npfc.invalidateRange(twin.ch, ta, kA).total();

    // The retry succeeds, then the normal register path runs.
    mem::AccessResult r2 = twin.as.pinRange(tb, kB);
    ASSERT_TRUE(r2.ok);
    expected += r2.cost;
    mem::AccessResult pf = twin.npfc.prefault(twin.ch, tb, kB, true);
    expected += pf.cost;
    expected += pc.pinBase +
                (kB / kPage) * (pc.pinPerPage + pc.iommuMapPerPage);
    expected += pc.regMrBase;

    EXPECT_EQ(total, expected);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Pinning, NpRdmaMapsBeforeAndUnmapsAfterEachIo)
{
    Rig rig;
    NpRdmaMapping map(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);

    EXPECT_EQ(map.setup(buf, MiB), 0u) << "no registration step";
    sim::Time before = map.beforeDma(buf, 64 * 1024);
    EXPECT_GT(before, 0u);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 64 * 1024).ok)
        << "mapped for DMA without any NIC fault";
    EXPECT_EQ(map.pinnedBytes(), 0u) << "nothing is ever pinned";
    EXPECT_EQ(rig.as.pinnedPages(), 0u);

    sim::Time after = map.afterDma(buf, 64 * 1024);
    EXPECT_GT(after, 0u);
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, buf, 64 * 1024).ok)
        << "per-IO unmap tears the mapping down at completion";
    EXPECT_EQ(map.stats().maps, 1u);
    EXPECT_EQ(map.stats().unmaps, 1u);
    EXPECT_EQ(map.stats().pagesMapped, 16u);
    EXPECT_EQ(map.stats().pagesUnmapped, 16u);
    EXPECT_EQ(map.tableSize(), 0u);
}

TEST(Pinning, NpRdmaConcurrentIosShareOneMapping)
{
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    NpRdmaMapping map(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);

    sim::Time first = map.beforeDma(buf, 16 * kPage);
    sim::Time second = map.beforeDma(buf, 8 * kPage);
    EXPECT_GT(first, second) << "second IO reuses the live mapping";
    EXPECT_EQ(map.stats().maps, 1u);
    EXPECT_EQ(map.stats().reuses, 1u);
    EXPECT_EQ(map.tableSize(), 1u);

    // First completion only drops a reference; the sibling's DMA
    // must keep working.
    map.afterDma(buf, 8 * kPage);
    EXPECT_EQ(map.stats().unmaps, 0u);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, buf, 16 * kPage).ok);

    map.afterDma(buf, 16 * kPage);
    EXPECT_EQ(map.stats().unmaps, 1u);
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, buf, kPage).ok);
}

TEST(Pinning, NpRdmaUnmapSparesPagesAnotherInFlightIoCovers)
{
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    NpRdmaMapping map(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);

    map.beforeDma(buf, 16 * kPage);             // A: pages [0, 16)
    map.beforeDma(buf + 8 * kPage, 16 * kPage); // B: pages [8, 24)
    EXPECT_EQ(map.tableSize(), 2u);

    map.afterDma(buf, 16 * kPage); // A completes
    EXPECT_TRUE(
        rig.npfc.checkDma(rig.ch, buf + 8 * kPage, 16 * kPage).ok)
        << "B's DMA must not fault: its pages stay mapped";
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, buf, 8 * kPage).ok)
        << "A's private pages [0, 8) are unmapped";
    map.afterDma(buf + 8 * kPage, 16 * kPage);
    EXPECT_FALSE(
        rig.npfc.checkDma(rig.ch, buf + 8 * kPage, 16 * kPage).ok);
}

TEST(Pinning, NpRdmaTableOverflowStillMapsUntracked)
{
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    NpRdmaMapping map(rig.npfc, rig.ch, /*table_entries=*/2);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    mem::VirtAddr a = buf;
    mem::VirtAddr b = buf + 64 * kPage;
    mem::VirtAddr c = buf + 128 * kPage;

    map.beforeDma(a, 4 * kPage);
    map.beforeDma(b, 4 * kPage);
    map.beforeDma(c, 4 * kPage); // table full: untracked
    EXPECT_EQ(map.stats().overflows, 1u);
    EXPECT_EQ(map.tableSize(), 2u);
    EXPECT_TRUE(rig.npfc.checkDma(rig.ch, c, 4 * kPage).ok)
        << "overflow degrades tracking, not correctness";

    map.afterDma(c, 4 * kPage); // unmapped by address, not by table
    EXPECT_FALSE(rig.npfc.checkDma(rig.ch, c, 4 * kPage).ok);
    map.afterDma(b, 4 * kPage);
    map.afterDma(a, 4 * kPage);
    EXPECT_EQ(map.stats().unmaps, 3u);
    EXPECT_EQ(map.tableSize(), 0u);
}

TEST(Pinning, NpRdmaThrashesIoTlbAndWarmsRefreshes)
{
    Rig rig;
    constexpr std::size_t kPage = mem::kPageSize;
    NpRdmaMapping map(rig.npfc, rig.ch);
    mem::VirtAddr buf = rig.as.allocRegion(MiB);
    const auto &tlb = rig.npfc.iommu(rig.ch).tlb().stats();

    // Per-IO unmap invalidates every page in the device cache: a
    // miss-heavy loop thrashes the IOTLB where a pin-down cache
    // would leave it warm.
    std::uint64_t inv0 = tlb.invalidations;
    for (int i = 0; i < 10; ++i) {
        map.beforeDma(buf, 16 * kPage);
        map.afterDma(buf, 16 * kPage);
    }
    EXPECT_EQ(tlb.invalidations - inv0, 10u * 16u);

    // Overlapping in-flight extents: the second map's doorbell
    // re-pushes translations the first already cached — the re-map
    // traffic IoTlb::Stats::refreshes was added to expose.
    std::uint64_t ref0 = tlb.refreshes;
    map.beforeDma(buf, 16 * kPage);             // pages [0, 16) warm
    map.beforeDma(buf + 8 * kPage, 16 * kPage); // re-pushes [8, 16)
    EXPECT_EQ(tlb.refreshes - ref0, 8u);
    map.afterDma(buf, 16 * kPage);
    map.afterDma(buf + 8 * kPage, 16 * kPage);
}
