/**
 * @file
 * Observability layer tests: the metrics registry (registration,
 * instance naming, retained values, JSON snapshots), the flow tracer
 * (buffering, Chrome export, flow scopes, capacity), and the
 * obs::Session end-to-end — a traced backup-ring + InfiniBand run
 * must produce NPF phase spans and counters from every subsystem.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/eth_nic.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"
#include "obs/flow_tracer.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "sim/event_queue.hh"
#include "testbed.hh"

using namespace npf;

namespace {

bool
contains(const std::string &hay, const std::string &needle)
{
    return hay.find(needle) != std::string::npos;
}

} // namespace

// ---------------------------------------------------------------- Registry

TEST(Registry, InstanceNamesAreMonotonic)
{
    obs::Registry reg;
    EXPECT_EQ(reg.instanceName("ib.qp"), "ib.qp0");
    EXPECT_EQ(reg.instanceName("ib.qp"), "ib.qp1");
    EXPECT_EQ(reg.instanceName("eth.nic"), "eth.nic0");
    EXPECT_EQ(reg.instanceName("ib.qp"), "ib.qp2");
}

TEST(Registry, CountersAndGaugesReadThrough)
{
    obs::Registry reg;
    std::uint64_t hits = 0;
    double depth = 1.5;
    reg.addCounter("x.hits", &hits);
    reg.addGauge("x.depth", [&] { return depth; });
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.value("x.hits"), 0.0);
    hits = 41;
    depth = 3.0;
    EXPECT_EQ(reg.value("x.hits"), 41.0);
    EXPECT_EQ(reg.value("x.depth"), 3.0);
    EXPECT_FALSE(reg.value("x.unknown").has_value());
}

TEST(Registry, RemoveDropsEntryByDefault)
{
    obs::Registry reg;
    std::uint64_t v = 7;
    obs::Registry::Id id = reg.addCounter("a.b", &v);
    reg.remove(id);
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_FALSE(reg.value("a.b").has_value());
    reg.remove(id); // unknown id: harmless
}

TEST(Registry, RetainArchivesRemovedEntries)
{
    obs::Registry reg;
    reg.setRetain(true);
    std::uint64_t v = 123;
    sim::Histogram h;
    h.record(5.0);
    obs::Registry::Id c = reg.addCounter("dead.count", &v);
    obs::Registry::Id g = reg.addGauge("dead.gauge", [] { return 2.5; });
    obs::Registry::Id hi = reg.addHistogram("dead.hist", &h);
    reg.removeAll({c, g, hi});
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.retiredSize(), 3u);
    // Final values survive the component's death.
    EXPECT_EQ(reg.value("dead.count"), 123.0);
    EXPECT_EQ(reg.value("dead.gauge"), 2.5);

    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_TRUE(contains(os.str(), "\"dead.count\":123"));
    EXPECT_TRUE(contains(os.str(), "\"dead.hist\""));

    reg.clearRetired();
    EXPECT_EQ(reg.retiredSize(), 0u);
    EXPECT_FALSE(reg.value("dead.count").has_value());
}

TEST(Registry, DuplicateNameReplacesWithoutDanglingId)
{
    obs::Registry reg;
    std::uint64_t a = 1, b = 2;
    obs::Registry::Id first = reg.addCounter("dup.c", &a);
    obs::Registry::Id second = reg.addCounter("dup.c", &b);
    EXPECT_EQ(reg.size(), 1u);
    // The stale id must not delete (or archive over) the replacement.
    reg.setRetain(true);
    reg.remove(first);
    EXPECT_EQ(reg.value("dup.c"), 2.0);
    EXPECT_EQ(reg.retiredSize(), 0u);
    reg.remove(second);
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.value("dup.c"), 2.0); // now retired
}

TEST(Registry, WriteJsonShape)
{
    obs::Registry reg;
    std::uint64_t c = 9;
    sim::Histogram h;
    for (int i = 1; i <= 4; ++i)
        h.record(i);
    reg.addCounter("s.c", &c);
    reg.addGauge("s.g", [] { return 0.5; });
    reg.addHistogram("s.h", &h);
    std::ostringstream os;
    reg.writeJson(os);
    const std::string j = os.str();
    EXPECT_TRUE(contains(j, "\"counters\":{\"s.c\":9}"));
    EXPECT_TRUE(contains(j, "\"gauges\":{\"s.g\":0.5}"));
    EXPECT_TRUE(contains(j, "\"s.h\":{\"count\":4"));
    EXPECT_TRUE(contains(j, "\"p50\":"));
    EXPECT_TRUE(contains(j, "\"max\":4"));
}

namespace {

/** Minimal component holding the Instrumented handle (last member). */
struct Probe
{
    std::uint64_t ticks = 0;
    obs::Instrumented obs_;

    Probe()
    {
        obs_.init("test.probe");
        obs_.counter("ticks", &ticks);
    }

    const std::string &obsName() const { return obs_.name(); }
};

} // namespace

TEST(Registry, InstrumentedRegistersAndDeregisters)
{
    obs::Registry &reg = obs::Registry::global();
    std::string name;
    {
        Probe p;
        p.ticks = 11;
        name = p.obsName() + ".ticks";
        EXPECT_EQ(reg.value(name), 11.0);
    }
    // Destruction deregisters (no session active, so nothing is
    // retained).
    EXPECT_FALSE(reg.value(name).has_value());
}

// -------------------------------------------------------------- FlowTracer

TEST(FlowTracer, DisabledCostsNothing)
{
    obs::FlowTracer &tr = obs::tracer();
    tr.clear();
    ASSERT_FALSE(tr.enabled());
    EXPECT_EQ(tr.beginFlow("npf", "npf"), 0u);
    tr.span(obs::Track::Nic, "npf", "trigger", 0, 10);
    tr.instant(obs::Track::Driver, "npf", "x");
    tr.endFlow(0);
    EXPECT_EQ(tr.eventCount(), 0u);
}

TEST(FlowTracer, BuffersFlowsSpansInstants)
{
    obs::FlowTracer &tr = obs::tracer();
    tr.clear();
    tr.enable(true);
    obs::FlowId f = tr.beginFlow("npf", "npf");
    EXPECT_NE(f, 0u);
    tr.span(obs::Track::Nic, "npf", "trigger", 0, 10, f);
    tr.instant(obs::Track::Driver, "npf", "woke", f);
    tr.endFlow(f);
    // begin + span + instant + end
    EXPECT_EQ(tr.eventCount(), 4u);

    std::ostringstream os;
    tr.writeChromeTrace(os);
    const std::string j = os.str();
    EXPECT_TRUE(contains(j, "\"traceEvents\""));
    EXPECT_TRUE(contains(j, "\"trigger\""));
    EXPECT_TRUE(contains(j, "\"ph\":\"X\""));
    EXPECT_TRUE(contains(j, "\"ph\":\"b\""));
    EXPECT_TRUE(contains(j, "\"ph\":\"e\""));

    tr.enable(false);
    tr.clear();
    EXPECT_EQ(tr.eventCount(), 0u);
}

TEST(FlowTracer, CapacityBoundsBuffer)
{
    obs::FlowTracer &tr = obs::tracer();
    tr.clear();
    tr.enable(true);
    tr.setCapacity(8);
    for (int i = 0; i < 32; ++i)
        tr.instant(obs::Track::Sim, "t", "tick");
    EXPECT_LE(tr.eventCount(), 8u);
    EXPECT_GT(tr.droppedEvents(), 0u);
    tr.enable(false);
    tr.clear();
    tr.setCapacity(1u << 22);
}

TEST(FlowTracer, FlowScopeNestsAndRestores)
{
    obs::FlowTracer &tr = obs::tracer();
    EXPECT_EQ(tr.currentFlow(), 0u);
    {
        obs::FlowScope outer(7);
        EXPECT_EQ(tr.currentFlow(), 7u);
        {
            obs::FlowScope inner(9);
            EXPECT_EQ(tr.currentFlow(), 9u);
        }
        EXPECT_EQ(tr.currentFlow(), 7u);
    }
    EXPECT_EQ(tr.currentFlow(), 0u);
}

// ----------------------------------------------------------------- Session

TEST(Session, ExportsEventQueueMetricsAndSites)
{
    sim::EventQueue eq;
    obs::Session session(eq); // no files, no tracing
    eq.schedule(10, [] {}, "test.site_a");
    eq.schedule(20, [] {}, "test.site_a");
    eq.schedule(30, [] {}, "test.site_b");
    eq.schedule(40, [] {});
    eq.run();

    std::ostringstream os;
    session.writeMetrics(os);
    const std::string j = os.str();
    EXPECT_TRUE(contains(j, "\"sim_time_ns\":40"));
    EXPECT_TRUE(contains(j, ".executed\":4"));
    EXPECT_TRUE(contains(j, "\"test.site_a\":2"));
    EXPECT_TRUE(contains(j, "\"test.site_b\":1"));
    EXPECT_TRUE(contains(j, "\"(unlabeled)\":1"));
    session.finish();
}

TEST(Session, SamplerBuildsRateSeries)
{
    sim::EventQueue eq;
    Probe probe;
    std::string counter = probe.obsName() + ".ticks";
    obs::SessionOptions opt;
    opt.sampleInterval = sim::kMillisecond;
    opt.sampledCounters = {counter};
    obs::Session session(eq, opt);

    // 1 tick every 100 us for 10 ms => ~10 ticks/ms bucket.
    for (int i = 1; i <= 100; ++i)
        eq.schedule(sim::Time(i) * 100 * sim::kMicrosecond,
                    [&] { ++probe.ticks; });
    eq.run();
    session.finish();

    const sim::RateSeries *s = session.series(counter);
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->buckets(), 9u);
    EXPECT_DOUBLE_EQ(s->total(), 100.0);
    EXPECT_EQ(session.series("no.such.counter"), nullptr);
}

TEST(Session, SamplerDoesNotKeepQueueAlive)
{
    sim::EventQueue eq;
    obs::SessionOptions opt;
    opt.sampleInterval = sim::kMillisecond;
    obs::Session session(eq, opt);
    eq.schedule(10 * sim::kMillisecond, [] {});
    eq.run(); // must terminate: the sampler stops rescheduling
    EXPECT_EQ(eq.live(), 0u);
    session.finish();
}

// --------------------------------------------------- end-to-end integration

namespace {

/** Cold backup-ring receiver plus a raw frame injector. */
struct TracedEthRig
{
    sim::EventQueue &eq;
    mem::MemoryManager mm{64ull << 20};
    mem::AddressSpace &as{mm.createAddressSpace("iouser")};
    core::NpfController npfc;
    core::ChannelId ch;
    eth::EthNic nic, peer;
    unsigned ring = 0;
    mem::VirtAddr bufs = 0;
    std::size_t bufBytes = 4096;
    unsigned delivered = 0;

    explicit TracedEthRig(sim::EventQueue &q)
        : eq(q), npfc(eq), ch(npfc.attach(as)), nic(eq, npfc),
          peer(eq, npfc)
    {
        peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
        nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
        eth::RxRingConfig rcfg;
        rcfg.size = 8;
        rcfg.policy = eth::RxFaultPolicy::BackupRing;
        ring = nic.createRxRing(ch, rcfg,
                                [this](const eth::Frame &) {
                                    ++delivered;
                                });
        bufs = as.allocRegion(rcfg.size * bufBytes, "rx");
        for (std::size_t i = 0; i < rcfg.size; ++i)
            nic.postRxBuffer(ring, bufs + i * bufBytes, bufBytes);
    }

    void
    inject(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            eth::Frame f;
            f.dstRing = ring;
            f.bytes = 1000;
            eth::EthNic *dst = &nic;
            peer.txLink()->send(f.bytes, [dst, f] { dst->receive(f); });
        }
    }
};

} // namespace

TEST(Session, EndToEndTraceAndMetrics)
{
    sim::EventQueue eq;

    // Ethernet side: cold ring under the backup-ring policy, so every
    // frame parks (rNPF) and resolves through the full NPF flow.
    TracedEthRig rig(eq);

    // InfiniBand side: a cold receive buffer forces recv NPF + RNR
    // NACK recovery.
    net::Fabric fabric(eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200});
    mem::MemoryManager mmA(1ull << 30), mmB(1ull << 30);
    auto &asA = mmA.createAddressSpace("snd");
    auto &asB = mmB.createAddressSpace("rcv");
    core::NpfController npfcA(eq), npfcB(eq);
    auto chA = npfcA.attach(asA);
    auto chB = npfcB.attach(asB);
    ib::QueuePair qpA(eq, fabric, 0, npfcA, chA);
    ib::QueuePair qpB(eq, fabric, 1, npfcB, chB);
    qpA.connect(qpB);
    qpB.connect(qpA);
    constexpr std::size_t kMsg = 64 * 1024;
    mem::VirtAddr sbuf = asA.allocRegion(kMsg);
    mem::VirtAddr rbuf = asB.allocRegion(kMsg);
    asA.touch(sbuf, kMsg, true);

    obs::SessionOptions opt;
    opt.trace = true;
    obs::Session session(eq, opt);

    rig.inject(5);
    qpB.postRecv({ib::Opcode::Send, rbuf, kMsg, 0, 1});
    qpA.postSend({ib::Opcode::Send, sbuf, kMsg, 0, 1});
    eq.run();

    EXPECT_EQ(rig.delivered, 5u);
    EXPECT_GT(qpB.stats().recvNpfs, 0u);
    EXPECT_GT(qpB.stats().rnrNacksSent, 0u);

    // The trace must show the paper's NPF phases and both recovery
    // flows.
    std::ostringstream ts;
    session.writeTrace(ts);
    const std::string trace = ts.str();
    for (const char *name : {"\"trigger\"", "\"driver\"",
                             "\"pt_update\"", "\"resume\"",
                             "\"rnpf\"", "\"rnr\""})
        EXPECT_TRUE(contains(trace, name)) << "missing " << name;

    // The metrics snapshot must cover every layer of the stack.
    std::ostringstream ms;
    session.writeMetrics(ms);
    const std::string metrics = ms.str();
    for (const char *prefix : {"core.npf", "ib.qp", "eth.nic",
                               "eth.backup", "mem.mm", "iommu.mmu",
                               "net.link", "sim.eq"})
        EXPECT_TRUE(contains(metrics, prefix)) << "missing " << prefix;
    EXPECT_TRUE(contains(metrics, "rnr_nacks_sent"));
    EXPECT_TRUE(contains(metrics, "minor_faults"));

    session.finish();
}

TEST(Session, TestbedMetricsSnapshot)
{
    test::EthTestbed bed(eth::RxFaultPolicy::BackupRing);
    ASSERT_TRUE(bed.connect(1));
    const std::string j = bed.metricsJson();
    for (const char *prefix :
         {"core.npf", "eth.nic", "eth.backup", "mem.mm", "iommu.mmu",
          "tcp.conn", "net.link"})
        EXPECT_TRUE(contains(j, prefix)) << "missing " << prefix;
}

TEST(Session, RetainsCountersOfDeadComponents)
{
    sim::EventQueue eq;
    obs::Session session(eq);
    std::string name;
    {
        Probe p;
        p.ticks = 5;
        name = p.obsName() + ".ticks";
    }
    // The probe died mid-session: its final value must still appear.
    EXPECT_EQ(obs::Registry::global().value(name), 5.0);
    std::ostringstream os;
    session.writeMetrics(os);
    EXPECT_TRUE(contains(os.str(), name));
    session.finish();
    // finish() clears the retired set.
    EXPECT_FALSE(obs::Registry::global().value(name).has_value());
}

namespace {

/**
 * Component whose histogram samples and gauge-read storage die with
 * it — regression for retain-mode archiving running after member
 * destruction (the handle, declared last, must deregister while the
 * histogram's heap storage and the vector behind the gauge are still
 * alive; ASan catches any ordering regression here).
 */
struct DyingModel
{
    sim::Histogram latNs;
    std::vector<int> frames{1, 2, 3};
    obs::Instrumented obs_;

    DyingModel()
    {
        obs_.init("test.dying");
        obs_.histogram("lat_ns", &latNs);
        obs_.gauge("frames", [this] { return double(frames.size()); });
    }
};

} // namespace

TEST(Session, RetainArchivesHistogramsAndGaugesOfDeadComponents)
{
    sim::EventQueue eq;
    obs::Session session(eq);
    std::string pfx;
    {
        DyingModel m;
        for (int i = 1; i <= 1000; ++i)
            m.latNs.record(double(i));
        pfx = m.obs_.name();
    }
    // The model died mid-session: the gauge's final value and the
    // histogram's full distribution must have been archived.
    EXPECT_EQ(obs::Registry::global().value(pfx + ".frames"), 3.0);
    std::ostringstream os;
    session.writeMetrics(os);
    EXPECT_TRUE(contains(os.str(), pfx + ".lat_ns"));
    EXPECT_TRUE(contains(os.str(), "\"count\":1000"));
    session.finish();
}

TEST(Session, FinishCancelsPendingSamplerTick)
{
    sim::EventQueue eq;
    eq.schedule(10 * sim::kMillisecond, [] {});
    {
        obs::SessionOptions opt;
        opt.sampleInterval = sim::kMillisecond;
        obs::Session session(eq, opt);
        session.finish(); // the first sampler tick is still queued
    }
    // The cancelled tick must neither fire on the dead session nor
    // keep rescheduling itself.
    eq.run();
    EXPECT_EQ(eq.live(), 0u);
    EXPECT_GE(eq.stats().cancelled, 1u);
}
