/**
 * @file
 * Application-layer tests: the KV store's LRU semantics and paging
 * interaction, the memcached/memaslap loop end-to-end over the NIC
 * testbed, the disk model, and the tgt/fio storage pipeline over
 * simulated RDMA.
 */

#include <gtest/gtest.h>

#include "app/disk.hh"
#include "app/kv_store.hh"
#include "app/memcached.hh"
#include "app/storage.hh"
#include "net/fabric.hh"
#include "testbed.hh"

using namespace npf;
using namespace npf::app;

namespace {

constexpr std::size_t MiB = 1ull << 20;

} // namespace

TEST(KvStore, GetMissThenSetThenHit)
{
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("kv");
    KvStore kv(as, 16 * MiB, 1024);
    EXPECT_FALSE(kv.get(7).hit);
    KvResult s = kv.set(7);
    EXPECT_GT(s.valueAddr, 0u);
    KvResult g = kv.get(7);
    EXPECT_TRUE(g.hit);
    EXPECT_EQ(g.valueLen, 1024u);
    EXPECT_EQ(kv.hits(), 1u);
    EXPECT_EQ(kv.misses(), 1u);
}

TEST(KvStore, LruEvictionAtCapacity)
{
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("kv");
    KvStore kv(as, 10 * (1024 + 64), 1024); // exactly 10 items
    ASSERT_EQ(kv.capacityItems(), 10u);
    for (std::uint64_t k = 0; k < 10; ++k)
        kv.set(k);
    kv.get(0); // refresh key 0
    kv.set(100); // evicts LRU = key 1
    EXPECT_TRUE(kv.get(0).hit);
    EXPECT_FALSE(kv.get(1).hit);
    EXPECT_TRUE(kv.get(100).hit);
    EXPECT_EQ(kv.items(), 10u);
}

TEST(KvStore, SwappedItemsCostMajorFaultsOnGet)
{
    mem::MemoryManager mm(8 * MiB);
    auto &as = mm.createAddressSpace("kv");
    KvStore kv(as, 32 * MiB, 20 * 1024); // working set >> memory
    for (std::uint64_t k = 0; k < 1000; ++k)
        kv.set(k);
    // Early keys were swapped out by later sets.
    KvResult g = kv.get(0);
    ASSERT_TRUE(g.hit) << "LRU capacity not exceeded: logical hit";
    EXPECT_GT(g.majorFaults, 0u) << "but the pages went to swap";
    EXPECT_GT(g.memCost, 0u);
}

TEST(Disk, ReadLatency)
{
    DiskConfig cfg;
    cfg.seek = sim::kMillisecond;
    cfg.bandwidthBytesPerSec = 1e9;
    Disk d(cfg);
    sim::Time t = d.read(512 * 1024);
    EXPECT_NEAR(sim::toMicroseconds(t), 1000.0 + 524.3, 5.0);
    EXPECT_EQ(d.reads(), 1u);
    EXPECT_EQ(d.bytesRead(), 512u * 1024);
}

TEST(Memcached, EndToEndOverBackupRing)
{
    test::EthTestbed tb(eth::RxFaultPolicy::BackupRing, 256);
    HostModel host;
    host.addInstance();
    KvStore kv(*tb.serverAs, 32 * MiB, 1024);
    MemcachedServer server(tb.eq, kv, host);

    ASSERT_TRUE(tb.connect(1));
    RpcChannel ch(tb.client->connection(1), tb.server->connection(1));
    server.serve(ch);

    // Pre-populate so gets hit (memaslap warms the store similarly).
    for (std::uint64_t k = 0; k < 500; ++k)
        kv.set(k);

    MemaslapConfig mcfg;
    mcfg.keys = 500;
    mcfg.window = 4;
    Memaslap slap(tb.eq, {&ch}, mcfg);
    slap.start();

    tb.eq.runUntilCondition([&] { return slap.transactions() >= 2000; },
                            tb.eq.now() + 120 * sim::kSecond);
    EXPECT_GE(slap.transactions(), 2000u);
    // 90% gets over a 500-key space quickly becomes mostly hits.
    EXPECT_GT(double(slap.hits()) / double(slap.transactions()), 0.85);
    EXPECT_GE(server.opsServed(), slap.transactions());
}

TEST(Memcached, ThroughputCalibrationSingleInstance)
{
    test::EthTestbed tb(eth::RxFaultPolicy::Pin, 512);
    HostModel host;
    host.addInstance();
    KvStore kv(*tb.serverAs, 64 * MiB, 1024);
    MemcachedServer server(tb.eq, kv, host);

    std::vector<std::unique_ptr<RpcChannel>> chans;
    std::vector<RpcChannel *> raw;
    for (std::uint32_t id = 1; id <= 4; ++id) {
        ASSERT_TRUE(tb.connect(id));
        chans.push_back(std::make_unique<RpcChannel>(
            tb.client->connection(id), tb.server->connection(id)));
        server.serve(*chans.back());
        raw.push_back(chans.back().get());
    }
    Memaslap slap(tb.eq, raw, MemaslapConfig{0.9, 2000, 4, 64});
    slap.start();
    // Warm up, then measure 1 simulated second.
    tb.eq.runUntil(tb.eq.now() + sim::kSecond);
    slap.resetCounters();
    sim::Time start = tb.eq.now();
    tb.eq.runUntil(start + sim::kSecond);
    double ktps = double(slap.transactions()) / 1000.0;
    // Table 5 calibration: a single instance serves ~186 KTPS.
    EXPECT_NEAR(ktps, 186.0, 25.0);
}

TEST(Storage, TargetServesReadsOverRdma)
{
    sim::EventQueue eq;
    net::Fabric fabric(eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200});
    mem::MemoryManager tgtMm(4ull << 30), iniMm(1ull << 30);
    auto &tgtAs = tgtMm.createAddressSpace("tgt");
    auto &iniAs = iniMm.createAddressSpace("fio");
    core::NpfController tgtNpfc(eq), iniNpfc(eq);
    auto tgtCh = tgtNpfc.attach(tgtAs);
    auto iniCh = iniNpfc.attach(iniAs);

    ib::QueuePair qpT(eq, fabric, 0, tgtNpfc, tgtCh);
    ib::QueuePair qpI(eq, fabric, 1, iniNpfc, iniCh);
    qpT.connect(qpI);
    qpI.connect(qpT);

    StorageConfig scfg;
    scfg.lunBytes = 1ull << 30;
    scfg.pinned = false; // NPF mode
    StorageTarget tgt(eq, tgtAs, scfg);
    ASSERT_TRUE(tgt.ok());

    auto queue = std::make_shared<std::deque<IoRequest>>();
    tgt.addSession(qpT, queue);
    FioClient fio(eq, qpI, iniAs, queue, 512 * 1024, 8, scfg.lunBytes, 3);
    fio.start();

    eq.runUntilCondition([&] { return fio.completed() >= 100; },
                         eq.now() + 60 * sim::kSecond);
    EXPECT_GE(fio.completed(), 100u);
    EXPECT_EQ(fio.bytesRead(), fio.completed() * 512 * 1024);
    EXPECT_GE(tgt.iosServed(), fio.completed());
    EXPECT_GT(tgt.disk().reads(), 0u) << "cold cache went to disk";
    // NPF mode: the 1 GB comm pool is demand-paged — resident memory
    // stays far below the pinned baseline.
    EXPECT_LT(tgt.residentBytes(), 300 * MiB);
}

TEST(Storage, PinnedModeFailsWithoutPinnableMemory)
{
    sim::EventQueue eq;
    mem::MemCostConfig costs;
    costs.maxPinnableBytes = 512 * MiB; // policy: too little for 1 GB
    mem::MemoryManager mm(4ull << 30, costs);
    auto &as = mm.createAddressSpace("tgt");
    StorageConfig scfg;
    scfg.pinned = true;
    StorageTarget tgt(eq, as, scfg);
    EXPECT_FALSE(tgt.ok()) << "Fig. 8(a): tgt fails to load";
}

TEST(Storage, PinnedModeHoldsTheWholePoolResident)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(4ull << 30);
    auto &as = mm.createAddressSpace("tgt");
    StorageConfig scfg;
    scfg.pinned = true;
    StorageTarget tgt(eq, as, scfg);
    ASSERT_TRUE(tgt.ok());
    EXPECT_GE(tgt.residentBytes(), 1ull << 30);
}

TEST(HostModelTest, ContentionScaling)
{
    HostModel h(0.18);
    h.addInstance();
    sim::Time base = sim::fromMicroseconds(10);
    EXPECT_EQ(h.scaled(base), base);
    h.addInstance();
    EXPECT_NEAR(sim::toMicroseconds(h.scaled(base)), 11.8, 0.01);
    h.addInstance();
    h.addInstance();
    EXPECT_NEAR(sim::toMicroseconds(h.scaled(base)), 15.4, 0.01);
}
