/**
 * @file
 * Pooled-frame lifecycle tests: every path a frame payload can take —
 * clean delivery, link drop/duplicate/delay, FCS corrupt, RX stall,
 * backup-ring park/resolve, NIC overflow drop, TX-side NPF stall,
 * and TCP retransmission — must release its pool slot exactly once.
 * Each test pins that with a live-count baseline on the payload pool
 * (a leak leaves live() high; a double release aborts the process via
 * the pool's generation check, so either failure mode is loud).
 *
 * These are the regression tests for the deferred-work capture-site
 * audit: the backup-ring resolver re-arm and the link's duplicate
 * fault action both hold frames inside scheduled closures, exactly
 * the shape that used to leak or double-free with shared_ptr payloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/eth_nic.hh"
#include "fault/fault.hh"
#include "mem/memory_manager.hh"
#include "payload_pool.hh"
#include "tcp/segment.hh"
#include "testbed.hh"

using namespace npf;
using namespace npf::fault;

namespace {

constexpr std::size_t MiB = 1ull << 20;

FaultPlan
mustParse(const std::string &spec)
{
    std::string err;
    auto p = FaultPlan::parse(spec, &err);
    EXPECT_TRUE(p.has_value()) << spec << ": " << err;
    return p.value_or(FaultPlan{});
}

/** One receiving NIC, a raw injector, and a payload-pool baseline. */
struct LifecycleRig
{
    sim::EventQueue eq;
    mem::MemoryManager mm{64 * MiB};
    mem::AddressSpace &as{mm.createAddressSpace("iouser")};
    core::NpfController npfc{eq};
    core::ChannelId ch{npfc.attach(as)};
    eth::EthNic nic{eq, npfc};
    eth::EthNic peer{eq, npfc};
    unsigned ring = 0;
    mem::VirtAddr bufs = 0;
    std::vector<std::uint64_t> delivered;
    std::size_t baseline = test::payloadPool().live();

    explicit LifecycleRig(bool warm = true, eth::RxRingConfig rcfg = {})
    {
        peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
        nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
        if (rcfg.size == 0)
            rcfg.size = 32;
        ring = nic.createRxRing(ch, rcfg, [this](const eth::Frame &f) {
            delivered.push_back(test::payloadValue(f));
        });
        bufs = as.allocRegion(rcfg.size * 4096, "rx");
        if (warm)
            npfc.prefault(ch, bufs, rcfg.size * 4096, true);
        for (std::size_t i = 0; i < rcfg.size; ++i)
            nic.postRxBuffer(ring, bufs + i * 4096, 4096);
    }

    void
    inject(std::uint64_t id)
    {
        eth::Frame f;
        f.dstRing = ring;
        f.bytes = 1000;
        f.payload = test::payloadPool().acquire(id);
        eth::EthNic *dst = &nic;
        peer.txLink()->send(f.bytes, [dst, f] { dst->receive(f); });
    }

    /** The leak assertion every test ends on. */
    void
    expectBaseline() const
    {
        EXPECT_EQ(test::payloadPool().live(), baseline)
            << "frame payload slots leaked (or released early and "
               "re-acquired elsewhere)";
    }
};

} // namespace

TEST(FrameLifecycle, CleanDeliveryReleasesEverySlot)
{
    LifecycleRig rig;
    for (std::uint64_t i = 0; i < 8; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 8u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, LinkDropReleasesTheUndeliveredFrame)
{
    LifecycleRig rig;
    // The dropped frame's closure is destroyed unscheduled inside
    // Link::send(); its PoolRef must release then and there.
    FaultInjector inj(rig.eq, mustParse("link:drop:nth=2"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{0, 2, 3}));
    EXPECT_EQ(inj.injected(Site::Link), 1u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, LinkDuplicateClonesAndBothCopiesRetire)
{
    LifecycleRig rig;
    // Duplicate schedules a *copy* of the delivery closure: PoolRef
    // clone-on-copy gives the duplicate its own slot, and both
    // arrivals release independently.
    FaultInjector inj(rig.eq, mustParse("link:duplicate:nth=1"), 1);
    for (std::uint64_t i = 0; i < 3; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 4u);
    EXPECT_EQ(std::count(rig.delivered.begin(), rig.delivered.end(), 0u),
              2);
    EXPECT_EQ(inj.injected(Site::Link), 1u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, LinkDelayReordersWithoutLeaking)
{
    LifecycleRig rig;
    FaultInjector inj(rig.eq,
                      mustParse("link:delay:nth=1,delay=500us"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{1, 2, 3, 0}));
    rig.expectBaseline();
}

TEST(FrameLifecycle, CorruptedFrameReleasesOnTheSpot)
{
    LifecycleRig rig;
    FaultInjector inj(rig.eq, mustParse("eth.rx:corrupt:nth=2"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{0, 2, 3}));
    EXPECT_EQ(rig.nic.stats().rxCorrupt, 1u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, StalledFrameIsMovedNotCopiedAndReleasesOnce)
{
    LifecycleRig rig;
    // Stall re-schedules the frame through a second closure; the
    // payload moves along with it (no clone, exactly one release).
    FaultInjector inj(rig.eq,
                      mustParse("eth.rx:stall:nth=1,delay=200us"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 4u);
    EXPECT_EQ(rig.nic.stats().rxStalls, 1u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, BackupParkAndResolveReleasesAfterDelivery)
{
    // Cold ring: every frame rNPFs, parks in the backup ring, and is
    // re-delivered by the resolver — whose re-arm closure captures
    // only (manager, ring_id) and re-reads the queue front at fire
    // time, never a frame reference that could go stale.
    LifecycleRig rig(/*warm=*/false);
    for (std::uint64_t i = 0; i < 5; ++i)
        rig.inject(i);
    rig.eq.run();
    ASSERT_EQ(rig.delivered.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(rig.delivered[i], i);
    EXPECT_GT(rig.nic.ring(rig.ring).stats.toBackup, 0u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, DropPolicyReleasesEveryDroppedFrame)
{
    eth::RxRingConfig cfg;
    cfg.size = 32;
    cfg.policy = eth::RxFaultPolicy::Drop;
    LifecycleRig rig(/*warm=*/false, cfg);
    for (std::uint64_t i = 0; i < 6; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_TRUE(rig.delivered.empty());
    EXPECT_EQ(rig.nic.ring(rig.ring).stats.dropped, 6u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, BmSizeOverflowDropReleases)
{
    eth::RxRingConfig cfg;
    cfg.size = 32;
    cfg.bmSize = 4; // parks at most 4; the overflow must drop-release
    LifecycleRig rig(/*warm=*/false, cfg);
    for (std::uint64_t i = 0; i < 12; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_GT(rig.nic.ring(rig.ring).stats.dropped, 0u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, TxNpfStallHoldsThenReleasesOnce)
{
    // Send-side NPF: the TX job (and its payload) waits in the NIC's
    // flat TX ring while the controller resolves, then ships. One
    // release, after delivery on the far side.
    LifecycleRig rig;
    auto &peer_as = rig.mm.createAddressSpace("peer");
    auto peer_ch = rig.npfc.attach(peer_as);
    eth::RxRingConfig pcfg;
    pcfg.size = 8;
    std::vector<std::uint64_t> got;
    unsigned pring = rig.peer.createRxRing(
        peer_ch, pcfg, [&](const eth::Frame &f) {
            got.push_back(test::payloadValue(f));
        });
    mem::VirtAddr pbufs = peer_as.allocRegion(8 * 2048);
    rig.npfc.prefault(peer_ch, pbufs, 8 * 2048, true);
    for (int i = 0; i < 8; ++i)
        rig.peer.postRxBuffer(pring, pbufs + i * 2048, 2048);

    mem::VirtAddr cold = rig.as.allocRegion(MiB); // IOMMU-cold source
    unsigned txq = rig.nic.createTxQueue(rig.ch);
    rig.nic.send(txq, pring, cold, 1400,
                 test::payloadPool().acquire(77));
    rig.eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 77u);
    EXPECT_EQ(rig.nic.stats().txNpfs, 1u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, ChaosMixReturnsThePoolToBaseline)
{
    // The chaos_recovery-style leak gate: a cold ring under a blended
    // fault plan (wire loss, duplication, delay, FCS corruption, RX
    // stalls) with every frame pooled. Whatever combination of paths
    // each frame takes, the pool's live count must come back to the
    // pre-run baseline when the system drains.
    LifecycleRig rig(/*warm=*/false);
    FaultInjector inj(
        rig.eq,
        mustParse("link:drop:rate=0.05;link:duplicate:rate=0.05;"
                  "link:delay:rate=0.05,delay=100us;"
                  "eth.rx:corrupt:rate=0.05;"
                  "eth.rx:stall:rate=0.05,delay=50us"),
        42);
    for (std::uint64_t i = 0; i < 200; ++i)
        rig.inject(i);
    rig.eq.run();
    // No repost in this rig, so the 32-descriptor ring caps clean
    // deliveries; the point is path diversity, not throughput.
    EXPECT_GT(rig.delivered.size(), 30u) << "deliveries happened";
    EXPECT_GT(rig.nic.ring(rig.ring).stats.dropped, 0u);
    rig.expectBaseline();
}

TEST(FrameLifecycle, TcpRetransmissionsKeepSegmentPoolBalanced)
{
    // End-to-end: TCP over the NICs with wire loss. Retransmitted
    // segments are fresh pool acquisitions (the retransmit path
    // re-reads its SendRecord at fire time rather than holding a
    // segment reference), so however many copies the loss pattern
    // forces, the segment pool drains back to its baseline.
    std::size_t baseline = tcp::segmentPool().live();
    {
        test::EthTestbed bed(eth::RxFaultPolicy::Pin);
        ASSERT_TRUE(bed.connect(1));
        tcp::MessageStream req(bed.client->connection(1),
                               bed.server->connection(1));
        unsigned got = 0;
        req.onMessage([&](std::uint64_t, std::size_t) { ++got; });

        FaultInjector inj(bed.eq, mustParse("link:drop:rate=0.02"), 9);
        for (int i = 0; i < 50; ++i)
            req.sendMessage(4000, 0, i);
        bed.eq.runUntilCondition([&] { return got == 50; },
                                 bed.eq.now() + 120 * sim::kSecond);
        EXPECT_EQ(got, 50u);
        bed.eq.run(); // drain ACK/timer stragglers
    }
    EXPECT_EQ(tcp::segmentPool().live(), baseline)
        << "segment slots leaked across retransmissions";
}
