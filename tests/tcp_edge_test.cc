/**
 * @file
 * TCP edge cases: record bookkeeping across retransmissions and
 * source buffers, window clamps, duplicate handshakes, and message
 * framing corner cases.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/random.hh"
#include "tcp/endpoint.hh"
#include "tcp/tcp_connection.hh"

using namespace npf;
using namespace npf::tcp;

namespace {

/** Minimal lossless pipe. */
struct Pipe
{
    sim::EventQueue eq;
    std::unique_ptr<TcpConnection> a, b;
    std::vector<mem::VirtAddr> srcLog; ///< DMA sources seen on the wire

    explicit Pipe(TcpConfig cfg = {})
    {
        a = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr src) {
                if (s.len > 0)
                    srcLog.push_back(src);
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [this, s] { b->receiveSegment(s); });
            },
            cfg);
        b = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr) {
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [this, s] { a->receiveSegment(s); });
            },
            cfg);
        b->listen();
        bool done = false;
        a->connect([&](bool) { done = true; });
        eq.runUntilCondition([&] { return done; }, 30 * sim::kSecond);
    }
};

} // namespace

TEST(TcpEdge, ZeroByteSendIsIgnored)
{
    Pipe p;
    p.a->send(0);
    p.eq.run();
    EXPECT_EQ(p.a->stats().bytesSent, 0u);
}

TEST(TcpEdge, SourceAddressesFollowTheByteStream)
{
    Pipe p;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    // Two app buffers at distinct addresses.
    p.a->send(3000, 0x100000);
    p.a->send(2000, 0x800000);
    p.eq.runUntilCondition([&] { return delivered == 5000; },
                           p.eq.now() + 10 * sim::kSecond);
    ASSERT_GE(p.srcLog.size(), 4u);
    // Segment sources must fall inside the right buffer for their
    // position in the stream.
    EXPECT_EQ(p.srcLog[0], 0x100000u);
    bool saw_second = false;
    for (mem::VirtAddr s : p.srcLog) {
        if (s >= 0x800000)
            saw_second = true;
        EXPECT_TRUE((s >= 0x100000 && s < 0x100000 + 3000) ||
                    (s >= 0x800000 && s < 0x800000 + 2000))
            << std::hex << s;
    }
    EXPECT_TRUE(saw_second);
}

TEST(TcpEdge, ContiguousSameBufferSendsCoalesce)
{
    Pipe p;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    // Back-to-back sends from adjacent addresses of one buffer.
    p.a->send(1000, 0x100000);
    p.a->send(1000, 0x100000 + 1000);
    p.a->send(1000, 0x100000 + 2000);
    p.eq.runUntilCondition([&] { return delivered == 3000; },
                           10 * sim::kSecond);
    EXPECT_EQ(delivered, 3000u);
}

TEST(TcpEdge, WindowClampBoundsInFlightBytes)
{
    TcpConfig cfg;
    cfg.maxWindowBytes = 8 * 1448;
    Pipe p(cfg);
    // Track in-flight at every wire event.
    std::size_t max_inflight = 0;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    p.a->send(1 << 20);
    while (p.eq.step()) {
        max_inflight = std::max(max_inflight, p.a->bytesInFlight());
        if (delivered == (1u << 20))
            break;
    }
    EXPECT_LE(max_inflight, cfg.maxWindowBytes + 1448);
}

TEST(TcpEdge, DuplicateSynAckIsHarmless)
{
    Pipe p;
    // Re-inject a SYN: the passive side re-sends SYN-ACK; the active
    // side re-acks; nothing breaks.
    Segment syn;
    syn.connId = 1;
    syn.syn = true;
    p.b->receiveSegment(syn);
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    p.a->send(10000);
    p.eq.runUntilCondition([&] { return delivered == 10000; },
                           p.eq.now() + 10 * sim::kSecond);
    EXPECT_EQ(delivered, 10000u);
    EXPECT_TRUE(p.a->established());
}

TEST(TcpEdge, MessageStreamInterleavedDirections)
{
    Pipe p;
    MessageStream req(*p.a, *p.b);
    MessageStream rsp(*p.b, *p.a);
    int got_req = 0, got_rsp = 0;
    req.onMessage([&](std::uint64_t cookie, std::size_t) {
        ++got_req;
        rsp.sendMessage(200, 0, cookie);
    });
    rsp.onMessage([&](std::uint64_t, std::size_t) { ++got_rsp; });
    for (int i = 0; i < 50; ++i)
        req.sendMessage(100, 0, i);
    p.eq.runUntilCondition([&] { return got_rsp == 50; },
                           p.eq.now() + 30 * sim::kSecond);
    EXPECT_EQ(got_req, 50);
    EXPECT_EQ(got_rsp, 50);
    EXPECT_EQ(req.messagesPending(), 0u);
    EXPECT_EQ(rsp.messagesPending(), 0u);
}

TEST(TcpEdge, TinyAndHugeMessagesFrameCorrectly)
{
    Pipe p;
    MessageStream stream(*p.a, *p.b);
    std::vector<std::size_t> lens;
    stream.onMessage([&](std::uint64_t, std::size_t len) {
        lens.push_back(len);
    });
    stream.sendMessage(1);
    stream.sendMessage(1448);      // exactly one MSS
    stream.sendMessage(1449);      // one byte over
    stream.sendMessage(512 * 1024);
    stream.sendMessage(1);
    p.eq.runUntilCondition([&] { return lens.size() == 5; },
                           p.eq.now() + 60 * sim::kSecond);
    ASSERT_EQ(lens.size(), 5u);
    EXPECT_EQ(lens[0], 1u);
    EXPECT_EQ(lens[1], 1448u);
    EXPECT_EQ(lens[2], 1449u);
    EXPECT_EQ(lens[3], 512u * 1024);
    EXPECT_EQ(lens[4], 1u);
}

TEST(TcpEdge, SynBackoffClampsAtMaxRto)
{
    // Regression: the SYN retry delay was computed as
    // `initialRto << synRetries_`, which blows past maxRto and is
    // outright UB once the shift reaches the word size. With the
    // clamp, retry k waits min(initialRto * 2^k, maxRto), so the
    // give-up time is exactly 1s + 80 * 2s.
    TcpConfig cfg;
    cfg.initialRto = 1 * sim::kSecond;
    cfg.maxRto = 2 * sim::kSecond;
    cfg.maxSynRetries = 80; // unclamped shift would be UB at 64
    sim::EventQueue eq;
    TcpConnection lone(eq, 3,
                       [](const Segment &, mem::VirtAddr) { /* void */ },
                       cfg);
    bool connected = true;
    sim::Time failed_at = 0;
    lone.connect([&](bool ok) {
        connected = ok;
        failed_at = eq.now();
    });
    eq.run();
    EXPECT_FALSE(connected);
    EXPECT_TRUE(lone.failed());
    EXPECT_EQ(lone.stats().synRetries, 80u);
    EXPECT_EQ(failed_at, 1 * sim::kSecond + 80 * (2 * sim::kSecond));
}

TEST(TcpEdge, PiggybackedDupAcksTriggerFastRetransmit)
{
    // Regression: dup-ACK counting required seg.len == 0, so with
    // bidirectional traffic — where the peer's dup-acks ride on its
    // own data segments — fast retransmit never fired and every hole
    // cost a full RTO. Drop one of A's data segments and all of B's
    // *pure* acks until A fast-retransmits: recovery must come from
    // the piggybacked dup-acks alone.
    sim::EventQueue eq;
    std::unique_ptr<TcpConnection> a, b;
    int a_data_segs = 0;
    a = std::make_unique<TcpConnection>(
        eq, 1, [&](const Segment &s, mem::VirtAddr) {
            if (s.len > 0 && ++a_data_segs == 3)
                return; // the hole
            eq.scheduleAfter(30 * sim::kMicrosecond,
                             [&, s] { b->receiveSegment(s); });
        });
    b = std::make_unique<TcpConnection>(
        eq, 1, [&](const Segment &s, mem::VirtAddr) {
            bool pure_ack = s.len == 0 && !s.syn && !s.synAck;
            if (pure_ack && b->established() &&
                a->stats().fastRetransmits == 0)
                return; // pure acks are lossy until FR does its job
            eq.scheduleAfter(30 * sim::kMicrosecond,
                             [&, s] { a->receiveSegment(s); });
        });
    b->listen();
    bool up = false;
    a->connect([&](bool) { up = true; });
    // Wait for BOTH sides: the passive side only leaves SynReceived
    // when the final handshake ack lands.
    eq.runUntilCondition([&] { return up && b->established(); },
                         30 * sim::kSecond);
    ASSERT_TRUE(up && b->established());

    constexpr std::size_t kBytes = 400 * 1000;
    std::uint64_t at_a = 0, at_b = 0;
    a->onDeliver([&](std::size_t n) { at_a += n; });
    b->onDeliver([&](std::size_t n) { at_b += n; });
    a->send(kBytes);
    b->send(kBytes);
    eq.runUntilCondition(
        [&] { return at_a == kBytes && at_b == kBytes; },
        eq.now() + 30 * sim::kSecond);

    EXPECT_EQ(at_a, kBytes);
    EXPECT_EQ(at_b, kBytes);
    EXPECT_GE(a->stats().dupAcksReceived, 3u);
    EXPECT_GE(a->stats().fastRetransmits, 1u);
    EXPECT_EQ(a->stats().timeouts, 0u)
        << "the hole must be repaired by fast retransmit, not RTO";
}

TEST(TcpEdge, GoBackNRewindOvertakenByCumulativeAck)
{
    // A's acks are withheld until after its RTO: the go-back-N rewind
    // requeues everything past sndUna_, then the (late) cumulative
    // ACK for the full window arrives and must cancel the requeued
    // bytes (the seg.ack > sndNxt_ branch) instead of re-sending them.
    sim::EventQueue eq;
    std::unique_ptr<TcpConnection> a, b;
    constexpr std::size_t kMss = 1448;
    constexpr std::size_t kBytes = 10 * kMss; // one initial window
    a = std::make_unique<TcpConnection>(
        eq, 1, [&](const Segment &s, mem::VirtAddr) {
            eq.scheduleAfter(30 * sim::kMicrosecond,
                             [&, s] { b->receiveSegment(s); });
        });
    b = std::make_unique<TcpConnection>(
        eq, 1, [&](const Segment &s, mem::VirtAddr) {
            if (s.len == 0 && !s.syn && !s.synAck && b->established()) {
                if (s.ack < kBytes)
                    return; // partial acks vanish
                // The full cumulative ack arrives only at 300ms,
                // well after A's ~200ms RTO.
                eq.schedule(300 * sim::kMillisecond,
                            [&, s] { a->receiveSegment(s); });
                return;
            }
            eq.scheduleAfter(30 * sim::kMicrosecond,
                             [&, s] { a->receiveSegment(s); });
        });
    b->listen();
    bool up = false;
    a->connect([&](bool) { up = true; });
    eq.runUntilCondition([&] { return up; }, 30 * sim::kSecond);
    ASSERT_TRUE(up);

    std::uint64_t at_b = 0;
    b->onDeliver([&](std::size_t n) { at_b += n; });
    a->send(kBytes);
    eq.run();

    EXPECT_EQ(at_b, kBytes) << "no duplicate delivery";
    EXPECT_GE(a->stats().timeouts, 1u) << "the rewind happened";
    EXPECT_EQ(a->bytesInFlight(), 0u);
    EXPECT_EQ(a->unsentBytes(), 0u)
        << "overtaking ack must drain the requeued bytes";
    // Original window + the single RTO head retransmission; the
    // overtaken bytes are NOT sent again.
    EXPECT_EQ(a->stats().bytesSent, kBytes + kMss);
}

TEST(TcpEdge, FailureHandlerFiresExactlyOnce)
{
    // A connection whose segments go nowhere: SYN retries exhaust
    // and the failure handler fires once, not once per retry.
    sim::EventQueue eq;
    TcpConnection lone(eq, 7,
                       [](const Segment &, mem::VirtAddr) { /* void */ });
    int failures = 0;
    lone.onFailure([&] { ++failures; });
    bool connected = true;
    lone.connect([&](bool ok) { connected = ok; });
    eq.run();
    EXPECT_FALSE(connected);
    EXPECT_TRUE(lone.failed());
    EXPECT_EQ(failures, 1);
    // Sending on a failed connection is a no-op, not a crash.
    lone.send(1000);
    eq.run();
    EXPECT_EQ(lone.stats().bytesSent, 0u);
}
