/**
 * @file
 * TCP edge cases: record bookkeeping across retransmissions and
 * source buffers, window clamps, duplicate handshakes, and message
 * framing corner cases.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/random.hh"
#include "tcp/endpoint.hh"
#include "tcp/tcp_connection.hh"

using namespace npf;
using namespace npf::tcp;

namespace {

/** Minimal lossless pipe. */
struct Pipe
{
    sim::EventQueue eq;
    std::unique_ptr<TcpConnection> a, b;
    std::vector<mem::VirtAddr> srcLog; ///< DMA sources seen on the wire

    explicit Pipe(TcpConfig cfg = {})
    {
        a = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr src) {
                if (s.len > 0)
                    srcLog.push_back(src);
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [this, s] { b->receiveSegment(s); });
            },
            cfg);
        b = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr) {
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [this, s] { a->receiveSegment(s); });
            },
            cfg);
        b->listen();
        bool done = false;
        a->connect([&](bool) { done = true; });
        eq.runUntilCondition([&] { return done; }, 30 * sim::kSecond);
    }
};

} // namespace

TEST(TcpEdge, ZeroByteSendIsIgnored)
{
    Pipe p;
    p.a->send(0);
    p.eq.run();
    EXPECT_EQ(p.a->stats().bytesSent, 0u);
}

TEST(TcpEdge, SourceAddressesFollowTheByteStream)
{
    Pipe p;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    // Two app buffers at distinct addresses.
    p.a->send(3000, 0x100000);
    p.a->send(2000, 0x800000);
    p.eq.runUntilCondition([&] { return delivered == 5000; },
                           p.eq.now() + 10 * sim::kSecond);
    ASSERT_GE(p.srcLog.size(), 4u);
    // Segment sources must fall inside the right buffer for their
    // position in the stream.
    EXPECT_EQ(p.srcLog[0], 0x100000u);
    bool saw_second = false;
    for (mem::VirtAddr s : p.srcLog) {
        if (s >= 0x800000)
            saw_second = true;
        EXPECT_TRUE((s >= 0x100000 && s < 0x100000 + 3000) ||
                    (s >= 0x800000 && s < 0x800000 + 2000))
            << std::hex << s;
    }
    EXPECT_TRUE(saw_second);
}

TEST(TcpEdge, ContiguousSameBufferSendsCoalesce)
{
    Pipe p;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    // Back-to-back sends from adjacent addresses of one buffer.
    p.a->send(1000, 0x100000);
    p.a->send(1000, 0x100000 + 1000);
    p.a->send(1000, 0x100000 + 2000);
    p.eq.runUntilCondition([&] { return delivered == 3000; },
                           10 * sim::kSecond);
    EXPECT_EQ(delivered, 3000u);
}

TEST(TcpEdge, WindowClampBoundsInFlightBytes)
{
    TcpConfig cfg;
    cfg.maxWindowBytes = 8 * 1448;
    Pipe p(cfg);
    // Track in-flight at every wire event.
    std::size_t max_inflight = 0;
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    p.a->send(1 << 20);
    while (p.eq.step()) {
        max_inflight = std::max(max_inflight, p.a->bytesInFlight());
        if (delivered == (1u << 20))
            break;
    }
    EXPECT_LE(max_inflight, cfg.maxWindowBytes + 1448);
}

TEST(TcpEdge, DuplicateSynAckIsHarmless)
{
    Pipe p;
    // Re-inject a SYN: the passive side re-sends SYN-ACK; the active
    // side re-acks; nothing breaks.
    Segment syn;
    syn.connId = 1;
    syn.syn = true;
    p.b->receiveSegment(syn);
    std::uint64_t delivered = 0;
    p.b->onDeliver([&](std::size_t n) { delivered += n; });
    p.a->send(10000);
    p.eq.runUntilCondition([&] { return delivered == 10000; },
                           p.eq.now() + 10 * sim::kSecond);
    EXPECT_EQ(delivered, 10000u);
    EXPECT_TRUE(p.a->established());
}

TEST(TcpEdge, MessageStreamInterleavedDirections)
{
    Pipe p;
    MessageStream req(*p.a, *p.b);
    MessageStream rsp(*p.b, *p.a);
    int got_req = 0, got_rsp = 0;
    req.onMessage([&](std::uint64_t cookie, std::size_t) {
        ++got_req;
        rsp.sendMessage(200, 0, cookie);
    });
    rsp.onMessage([&](std::uint64_t, std::size_t) { ++got_rsp; });
    for (int i = 0; i < 50; ++i)
        req.sendMessage(100, 0, i);
    p.eq.runUntilCondition([&] { return got_rsp == 50; },
                           p.eq.now() + 30 * sim::kSecond);
    EXPECT_EQ(got_req, 50);
    EXPECT_EQ(got_rsp, 50);
    EXPECT_EQ(req.messagesPending(), 0u);
    EXPECT_EQ(rsp.messagesPending(), 0u);
}

TEST(TcpEdge, TinyAndHugeMessagesFrameCorrectly)
{
    Pipe p;
    MessageStream stream(*p.a, *p.b);
    std::vector<std::size_t> lens;
    stream.onMessage([&](std::uint64_t, std::size_t len) {
        lens.push_back(len);
    });
    stream.sendMessage(1);
    stream.sendMessage(1448);      // exactly one MSS
    stream.sendMessage(1449);      // one byte over
    stream.sendMessage(512 * 1024);
    stream.sendMessage(1);
    p.eq.runUntilCondition([&] { return lens.size() == 5; },
                           p.eq.now() + 60 * sim::kSecond);
    ASSERT_EQ(lens.size(), 5u);
    EXPECT_EQ(lens[0], 1u);
    EXPECT_EQ(lens[1], 1448u);
    EXPECT_EQ(lens[2], 1449u);
    EXPECT_EQ(lens[3], 512u * 1024);
    EXPECT_EQ(lens[4], 1u);
}

TEST(TcpEdge, FailureHandlerFiresExactlyOnce)
{
    // A connection whose segments go nowhere: SYN retries exhaust
    // and the failure handler fires once, not once per retry.
    sim::EventQueue eq;
    TcpConnection lone(eq, 7,
                       [](const Segment &, mem::VirtAddr) { /* void */ });
    int failures = 0;
    lone.onFailure([&] { ++failures; });
    bool connected = true;
    lone.connect([&](bool ok) { connected = ok; });
    eq.run();
    EXPECT_FALSE(connected);
    EXPECT_TRUE(lone.failed());
    EXPECT_EQ(failures, 1);
    // Sending on a failed connection is a no-op, not a crash.
    lone.send(1000);
    eq.run();
    EXPECT_EQ(lone.stats().bytesSent, 0u);
}
