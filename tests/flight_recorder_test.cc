/**
 * @file
 * Flight-recorder tests: the FlowTracer's fixed-capacity event ring
 * (wrap, overwrite counting, oldest-first export, flight-only flow
 * bookkeeping), the FlightRecorder dump policy (numbered paths, dump
 * budget), and the indexedPath helper the sweep benches share. The
 * dump paths run under the sanitizer job like every other test, so a
 * ring off-by-one or a stale-slot read trips ASan here.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hh"
#include "obs/flow_tracer.hh"
#include "sim/event_queue.hh"

using namespace npf;

namespace {

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/** Every "ts": value in document order (metadata entries have none). */
std::vector<double>
timestamps(const std::string &json)
{
    std::vector<double> ts;
    const std::string key = "\"ts\":";
    for (std::size_t pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos + key.size()))
        ts.push_back(std::strtod(json.c_str() + pos + key.size(),
                                 nullptr));
    return ts;
}

/** The tests mutate the process-wide tracer; always restore it. */
struct TracerGuard
{
    ~TracerGuard()
    {
        obs::tracer().setFlightCapacity(0);
        obs::tracer().setClock(nullptr);
        obs::tracer().enable(false);
        obs::tracer().clear();
        obs::flightRecorder().disarm();
    }
};

} // namespace

TEST(FlightRing, WrapKeepsLastCapacityEventsOldestFirst)
{
    TracerGuard guard;
    obs::FlowTracer &tr = obs::tracer();
    tr.enable(false);
    tr.setFlightCapacity(4);
    ASSERT_TRUE(tr.active());

    for (int i = 0; i < 10; ++i)
        tr.instantAt(obs::Track::Nic, "test", "ev",
                     sim::Time(i) * sim::kMicrosecond);
    EXPECT_EQ(tr.flightSize(), 4u);
    EXPECT_EQ(tr.flightOverwritten(), 6u);

    std::ostringstream os;
    tr.writeFlightTrace(os);
    std::string json = os.str();
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), 4u);

    // The survivors are the last four emits (ts 6..9 us), exported
    // oldest first.
    std::vector<double> ts = timestamps(json);
    ASSERT_EQ(ts.size(), 4u);
    for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_DOUBLE_EQ(ts[i], 6.0 + double(i));
}

TEST(FlightRing, PartialRingExportsInEmitOrder)
{
    TracerGuard guard;
    obs::FlowTracer &tr = obs::tracer();
    tr.setFlightCapacity(16);
    for (int i = 0; i < 3; ++i)
        tr.instantAt(obs::Track::Nic, "test", "ev",
                     sim::Time(i) * sim::kMicrosecond);
    EXPECT_EQ(tr.flightSize(), 3u);
    EXPECT_EQ(tr.flightOverwritten(), 0u);

    std::ostringstream os;
    tr.writeFlightTrace(os);
    std::vector<double> ts = timestamps(os.str());
    ASSERT_EQ(ts.size(), 3u);
    for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_DOUBLE_EQ(ts[i], double(i));
}

TEST(FlightRing, FlightOnlyFlowsUseFixedTable)
{
    TracerGuard guard;
    obs::FlowTracer &tr = obs::tracer();
    tr.enable(false); // flight-only: open flows go to the fixed table
    tr.setFlightCapacity(16);
    sim::EventQueue eq;
    tr.setClock(&eq);

    obs::FlowId f = tr.beginFlow("test", "journey");
    ASSERT_NE(f, 0u);
    tr.instant(obs::Track::Driver, "test", "step", f);
    tr.endFlow(f);
    EXPECT_EQ(tr.flightSize(), 3u);

    std::ostringstream os;
    tr.writeFlightTrace(os);
    std::string json = os.str();
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"b\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"e\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"name\":\"journey\""), 2u);

    // A second end of the same flow finds its slot cleared: no event.
    tr.endFlow(f);
    EXPECT_EQ(tr.flightSize(), 3u);
}

TEST(FlightRing, FlowTableCollisionEvictsTheOlderFlowExactly)
{
    // The 1024-slot flight flow table hashes by (id & 1023) but
    // stamps each slot with the *full* 64-bit id — the id doubles as
    // a generation check, so after wraparound an evicted flow's end
    // is skipped, never misattributed to the slot's newer occupant.
    TracerGuard guard;
    obs::FlowTracer &tr = obs::tracer();
    tr.enable(false);
    tr.setFlightCapacity(4096);
    sim::EventQueue eq;
    tr.setClock(&eq);

    obs::FlowId victim = tr.beginFlow("test", "victim");
    obs::FlowId last = victim;
    for (int i = 0; i < 1024; ++i)
        last = tr.beginFlow("test", "flood");
    // Ids are sequential, so the 1024th later flow collides exactly.
    ASSERT_EQ(last & 1023u, victim & 1023u);

    std::size_t before = tr.flightSize();
    tr.endFlow(victim); // evicted: stale id, no event emitted
    EXPECT_EQ(tr.flightSize(), before);

    tr.endFlow(last); // the live occupant ends normally
    EXPECT_EQ(tr.flightSize(), before + 1);

    // The slot is recycled cleanly: a fresh flow can claim and
    // release it again.
    obs::FlowId fresh = tr.beginFlow("test", "recycled");
    tr.endFlow(fresh);
    EXPECT_EQ(tr.flightSize(), before + 3);
}

TEST(FlightRing, ClearResetsContentsButKeepsCapacity)
{
    TracerGuard guard;
    obs::FlowTracer &tr = obs::tracer();
    tr.setFlightCapacity(8);
    for (int i = 0; i < 20; ++i)
        tr.instantAt(obs::Track::Nic, "test", "ev", sim::Time(i));
    tr.clear();
    EXPECT_EQ(tr.flightSize(), 0u);
    EXPECT_EQ(tr.flightOverwritten(), 0u);
    EXPECT_EQ(tr.flightCapacity(), 8u);
    tr.instantAt(obs::Track::Nic, "test", "ev", 0);
    EXPECT_EQ(tr.flightSize(), 1u);
}

TEST(FlightRecorder, DumpsAreNumberedAndBudgeted)
{
    TracerGuard guard;
    obs::FlightRecorder &fr = obs::flightRecorder();
    obs::FlightOptions opt;
    opt.capacity = 8;
    opt.dumpPath = "flight_ut.json";
    opt.maxDumps = 2;
    fr.arm(opt);
    ASSERT_TRUE(fr.armed());

    obs::tracer().instantAt(obs::Track::Nic, "test", "ev", 0);

    EXPECT_TRUE(fr.dump("first"));
    EXPECT_TRUE(fr.dump("second"));
    EXPECT_FALSE(fr.dump("over-budget"));
    EXPECT_EQ(fr.dumps(), 2u);

    for (const char *path : {"flight_ut.000.json", "flight_ut.001.json"}) {
        std::ifstream f(path);
        ASSERT_TRUE(f.good()) << path;
        std::string head(20, '\0');
        f.read(&head[0], 20);
        EXPECT_EQ(head.substr(0, 2), "{\"") << path;
        f.close();
        std::remove(path);
    }
    EXPECT_FALSE(std::ifstream("flight_ut.002.json").good());

    fr.disarm();
    EXPECT_FALSE(fr.armed());
    EXPECT_FALSE(fr.dump("disarmed"));
    EXPECT_EQ(obs::tracer().flightCapacity(), 0u);
}

TEST(FlightRecorder, OnSloViolationHonorsDumpOnSlo)
{
    TracerGuard guard;
    obs::FlightRecorder &fr = obs::flightRecorder();
    obs::FlightOptions opt;
    opt.capacity = 8;
    opt.dumpPath = "flight_slo_ut.json";
    opt.dumpOnSlo = false;
    fr.arm(opt);
    fr.onSloViolation();
    EXPECT_EQ(fr.dumps(), 0u);

    opt.dumpOnSlo = true;
    fr.arm(opt);
    fr.onSloViolation();
    EXPECT_EQ(fr.dumps(), 1u);
    std::remove("flight_slo_ut.000.json");
}

TEST(IndexedPath, InsertsIndexBeforeFinalExtension)
{
    EXPECT_EQ(obs::indexedPath("trace.json", 3), "trace.003.json");
    EXPECT_EQ(obs::indexedPath("out", 7), "out.007");
    EXPECT_EQ(obs::indexedPath("a.b/c", 0), "a.b/c.000");
    EXPECT_EQ(obs::indexedPath("a.b/c.json", 12), "a.b/c.012.json");
}
