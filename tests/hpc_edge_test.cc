/**
 * @file
 * HPC substrate edge cases: degenerate cluster sizes, non-power-of-
 * two ranks, registration-cost bookkeeping, and beff determinism.
 */

#include <gtest/gtest.h>

#include "hpc/imb.hh"

using namespace npf;
using namespace npf::hpc;

namespace {

ClusterConfig
cfgOf(unsigned ranks)
{
    ClusterConfig cfg;
    cfg.ranks = ranks;
    cfg.memoryPerRank = 1ull << 30;
    return cfg;
}

} // namespace

TEST(HpcEdge, SingleRankCollectivesCompleteImmediately)
{
    sim::EventQueue eq;
    Cluster c(eq, cfgOf(1), RegMode::Npf);
    BufferPool pool(c, 4096, 2);
    Collectives coll(c, pool);
    int done = 0;
    coll.bcast(4096, 0, [&] { ++done; });
    coll.allreduce(4096, 0, [&] { ++done; });
    coll.alltoall(4096, 0, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 3);
}

TEST(HpcEdge, NonPowerOfTwoRanksStillComplete)
{
    for (unsigned ranks : {3u, 5u, 6u, 7u}) {
        sim::EventQueue eq;
        Cluster c(eq, cfgOf(ranks), RegMode::PinDownCache);
        double secs = runImb(c, ImbBenchmark::Alltoall, 16 * 1024, 5, 2);
        EXPECT_GT(secs, 0.0) << ranks << " ranks";
        secs = runImb(c, ImbBenchmark::Bcast, 16 * 1024, 5, 2);
        EXPECT_GT(secs, 0.0) << ranks << " ranks";
        secs = runImb(c, ImbBenchmark::Allreduce, 16 * 1024, 5, 2);
        EXPECT_GT(secs, 0.0) << ranks << " ranks";
        eq.run();
    }
}

TEST(HpcEdge, PinDownCacheBudgetForcesEvictionTraffic)
{
    sim::EventQueue eq;
    ClusterConfig cfg = cfgOf(2);
    cfg.pinDownCacheBytes = 256 * 1024; // holds two 128 KB buffers
    Cluster c(eq, cfg, RegMode::PinDownCache);
    // Rotate over 8 buffers: every use is a miss after warm-up.
    double secs_small_cache =
        runImb(c, ImbBenchmark::Sendrecv, 128 * 1024, 64, 8);
    eq.run();

    sim::EventQueue eq2;
    ClusterConfig cfg2 = cfgOf(2);
    cfg2.pinDownCacheBytes = 0; // unlimited
    Cluster c2(eq2, cfg2, RegMode::PinDownCache);
    double secs_big_cache =
        runImb(c2, ImbBenchmark::Sendrecv, 128 * 1024, 64, 8);
    eq2.run();

    EXPECT_GT(secs_small_cache, 1.5 * secs_big_cache)
        << "an undersized pin-down cache thrashes (§2.2)";
    EXPECT_GT(c.totalRegMisses(), c2.totalRegMisses());
}

TEST(HpcEdge, BeffIsDeterministic)
{
    ClusterConfig cfg = cfgOf(4);
    sim::EventQueue eq1, eq2;
    BeffResult a = runBeff(eq1, cfg, RegMode::Npf, 1);
    BeffResult b = runBeff(eq2, cfg, RegMode::Npf, 1);
    EXPECT_DOUBLE_EQ(a.beffMBps, b.beffMBps)
        << "same seed, same fabric, same answer";
}

TEST(HpcEdge, LargeMessagesApproachLineRate)
{
    sim::EventQueue eq;
    Cluster c(eq, cfgOf(2), RegMode::PinDownCache);
    constexpr std::size_t kMsg = 4 * 1024 * 1024;
    constexpr unsigned kIters = 20;
    double secs = runImb(c, ImbBenchmark::Sendrecv, kMsg, kIters, 2);
    // Ring of 2: each rank sends kMsg per iteration, full duplex.
    double gbps = double(kMsg) * kIters * 8 / secs / 1e9;
    EXPECT_GT(gbps, 40.0);
    EXPECT_LT(gbps, 56.0);
}
