/**
 * @file
 * Shared pool for the tests' std::uint64_t marker payloads, the
 * test-side counterpart of tcp::segmentPool(). Frames carry a
 * sim::PoolRef, so tests stamp each frame with a pooled marker and
 * read it back on delivery.
 */

#ifndef NPF_TESTS_PAYLOAD_POOL_HH
#define NPF_TESTS_PAYLOAD_POOL_HH

#include <cstdint>

#include "eth/frame.hh"
#include "sim/pool.hh"

namespace npf::test {

/**
 * Process-lifetime pool (leaked function-local static, same rationale
 * as tcp::segmentPool()): frames parked in a peer NIC's rings can
 * outlive the test fixture that sent them, and their PoolRefs must
 * still find the pool alive when they release.
 */
inline sim::Pool<std::uint64_t> &
payloadPool()
{
    static auto *pool =
        new sim::Pool<std::uint64_t>("test::payloadPool");
    return *pool;
}

/** The marker value a test frame carries. */
inline std::uint64_t
payloadValue(const eth::Frame &f)
{
    return *f.payload.as<const std::uint64_t>();
}

} // namespace npf::test

#endif // NPF_TESTS_PAYLOAD_POOL_HH
