/**
 * @file
 * sim::Pool / sim::PoolRef / sim::RingDeque tests: slot recycling,
 * exhaustion growth with stable addresses, generation-exact stale
 * detection (use-after-release and double release abort), PoolRef
 * clone-on-copy / steal-on-move, and the flat FIFO ring the per-layer
 * queues (ib send window, tcp send records, load in-flight) run on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/pool.hh"
#include "sim/ring_deque.hh"

using namespace npf;

// --- Pool basics ---------------------------------------------------------

TEST(Pool, CreateGetReleaseRoundTrip)
{
    sim::Pool<int> pool("test");
    sim::PoolHandle h = pool.create(42);
    ASSERT_TRUE(bool(h));
    EXPECT_EQ(*pool.get(h), 42);
    EXPECT_EQ(pool.live(), 1u);
    pool.release(h);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, SlotsAreRecycledWithBumpedGenerations)
{
    sim::Pool<int> pool("test");
    sim::PoolHandle a = pool.create(1);
    pool.release(a);
    sim::PoolHandle b = pool.create(2);
    // Same slot, new generation: the old handle is dead, exactly.
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_NE(a.gen, b.gen);
    EXPECT_FALSE(pool.validHandle(a));
    EXPECT_TRUE(pool.validHandle(b));
    EXPECT_EQ(pool.tryGet(a), nullptr);
    EXPECT_EQ(*pool.tryGet(b), 2);
    pool.release(b);
}

TEST(Pool, ExhaustionGrowsWithoutMovingLiveObjects)
{
    sim::Pool<std::uint64_t> pool("test", /*chunk_objs=*/8);
    std::vector<sim::PoolHandle> hs;
    std::uint64_t *first = nullptr;
    for (std::uint64_t i = 0; i < 100; ++i) {
        hs.push_back(pool.create(i));
        if (i == 0)
            first = pool.get(hs[0]);
    }
    EXPECT_GE(pool.capacity(), 100u);
    EXPECT_EQ(pool.live(), 100u);
    // Chunked storage: growth never relocates earlier objects.
    EXPECT_EQ(pool.get(hs[0]), first);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(*pool.get(hs[i]), i);
    for (sim::PoolHandle h : hs)
        pool.release(h);
    EXPECT_EQ(pool.live(), 0u);
    // Steady state: re-acquiring up to capacity never grows again.
    std::size_t cap = pool.capacity();
    for (int i = 0; i < 100; ++i)
        hs[i] = pool.create(0);
    EXPECT_EQ(pool.capacity(), cap);
    for (int i = 0; i < 100; ++i)
        pool.release(hs[i]);
}

TEST(Pool, NonTrivialElementsAreDestroyed)
{
    sim::Pool<std::string> pool("test");
    sim::PoolHandle h = pool.create(std::string(100, 'x'));
    EXPECT_EQ(pool.get(h)->size(), 100u);
    pool.release(h);
    // Stragglers still live at pool teardown are destroyed by ~Pool;
    // leave one behind so ASan checks that path too.
    pool.create(std::string(64, 'y'));
}

// Death tests: the pool aborts with a diagnostic on misuse.
TEST(PoolDeathTest, DoubleReleaseAborts)
{
    sim::Pool<int> pool("test");
    sim::PoolHandle h = pool.create(7);
    pool.release(h);
    EXPECT_DEATH(pool.release(h), "stale handle");
}

TEST(PoolDeathTest, UseAfterReleaseAborts)
{
    sim::Pool<int> pool("test");
    sim::PoolHandle h = pool.create(7);
    pool.release(h);
    EXPECT_DEATH(pool.get(h), "stale handle");
}

TEST(PoolDeathTest, RecycledSlotRejectsTheOldGeneration)
{
    sim::Pool<int> pool("test");
    sim::PoolHandle old = pool.create(1);
    pool.release(old);
    sim::PoolHandle fresh = pool.create(2); // same slot, new gen
    ASSERT_EQ(old.idx, fresh.idx);
    EXPECT_DEATH(pool.get(old), "stale handle");
    pool.release(fresh);
}

// --- PoolRef ownership ---------------------------------------------------

TEST(PoolRef, ReleasesOnScopeExit)
{
    sim::Pool<int> pool("test");
    {
        sim::PoolRef r = pool.acquire(5);
        EXPECT_EQ(*r.as<int>(), 5);
        EXPECT_EQ(pool.live(), 1u);
    }
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolRef, MoveStealsOwnership)
{
    sim::Pool<int> pool("test");
    sim::PoolRef a = pool.acquire(5);
    sim::PoolRef b = std::move(a);
    EXPECT_FALSE(bool(a));
    EXPECT_TRUE(bool(b));
    EXPECT_EQ(pool.live(), 1u);
    b.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolRef, CopyClonesIntoAFreshSlot)
{
    sim::Pool<int> pool("test");
    sim::PoolRef a = pool.acquire(5);
    sim::PoolRef b = a; // clone: a new pooled object, never a second
                        // owner of the same slot
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(*b.as<int>(), 5);
    *b.as<int>() = 9; // clones diverge independently
    EXPECT_EQ(*a.as<int>(), 5);
    a.reset();
    b.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolRef, CopyAssignReleasesThePreviousSlot)
{
    sim::Pool<int> pool("test");
    sim::PoolRef a = pool.acquire(1);
    sim::PoolRef b = pool.acquire(2);
    b = a; // b's old slot released, then a cloned
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_EQ(*b.as<int>(), 1);
    a.reset();
    b.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolRef, ClosureCopyClonesThePayload)
{
    // The exact shape net::Link's Duplicate fault action relies on:
    // copying a payload-carrying closure must yield two independent
    // slots that retire separately.
    sim::Pool<int> pool("test");
    int sum = 0;
    auto deliver = [&sum, r = pool.acquire(10)] { sum += *r.as<int>(); };
    auto duplicate = deliver;
    EXPECT_EQ(pool.live(), 2u);
    deliver();
    duplicate();
    EXPECT_EQ(sum, 20);
}

// --- RingDeque -----------------------------------------------------------

TEST(RingDeque, FifoOrderAcrossGrowthAndWrap)
{
    sim::RingDeque<std::uint64_t> q;
    std::uint64_t next_push = 0, next_pop = 0;
    // Interleave pushes and pops so head is nonzero when the ring
    // regrows (exercises the unwrap-to-front copy).
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 7; ++i)
            q.push_back(next_push++);
        for (int i = 0; i < 5; ++i) {
            ASSERT_EQ(q.front(), next_pop);
            q.pop_front();
            ++next_pop;
        }
    }
    while (!q.empty()) {
        ASSERT_EQ(q.front(), next_pop++);
        q.pop_front();
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(RingDeque, IterationMatchesQueueOrder)
{
    sim::RingDeque<int> q;
    for (int i = 0; i < 10; ++i)
        q.push_back(i);
    for (int i = 0; i < 6; ++i)
        q.pop_front();
    for (int i = 10; i < 20; ++i)
        q.push_back(i); // wraps around the 16-slot ring
    int expect = 6;
    for (int v : q)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(expect, 20);
}

TEST(RingDeque, PopFrontDropsOwnedResourcesPromptly)
{
    // pop_front() must not leave a moved-from husk holding a slot:
    // vacated entries are reset to T(), so pooled payloads release
    // when they leave the queue, not when the slot is overwritten.
    sim::Pool<int> pool("test");
    sim::RingDeque<sim::PoolRef> q;
    q.push_back(pool.acquire(1));
    q.push_back(pool.acquire(2));
    EXPECT_EQ(pool.live(), 2u);
    q.pop_front();
    EXPECT_EQ(pool.live(), 1u);
    q.pop_front();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(RingDeque, ReservePreallocatesSteadyStateCapacity)
{
    sim::RingDeque<int> q;
    q.reserve(64);
    std::size_t cap = q.capacity();
    EXPECT_GE(cap, 64u);
    for (int i = 0; i < 64; ++i)
        q.push_back(i);
    EXPECT_EQ(q.capacity(), cap) << "no growth within reserve";
}
