/**
 * @file
 * Fault-injection tests: plan-grammar accept/reject, every trigger
 * kind against a live Link, the per-site hooks (eth corrupt/stall,
 * ib/tcp drop-dup-delay, forced rNPF), timed mem/iotlb schedules,
 * install/uninstall semantics, and — the whole point — determinism:
 * same seed + same plan replays the identical fault sequence.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/eth_nic.hh"
#include "fault/fault.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"
#include "net/link.hh"
#include "payload_pool.hh"
#include "tcp/tcp_connection.hh"

using namespace npf;
using namespace npf::fault;

namespace {

constexpr std::size_t MiB = 1ull << 20;

FaultPlan
mustParse(const std::string &spec)
{
    std::string err;
    auto p = FaultPlan::parse(spec, &err);
    EXPECT_TRUE(p.has_value()) << spec << ": " << err;
    return p.value_or(FaultPlan{});
}

} // namespace

// --- grammar ----------------------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar)
{
    FaultPlan p = mustParse(
        "link:drop:rate=0.01;"
        "ib.rx:reorder:rate=0.005,delay=50us;"
        "eth.rx:corrupt:nth=3;"
        "eth.rx:stall:burst=10us@1ms,delay=25us;"
        "tcp.rx:dup:rate=0.5,from=1ms,until=2ms;"
        "npf:force:rate=0.02;"
        "mem:pressure:every=2ms,count=10,pages=512;"
        "iotlb:evict:at=1.5ms,entries=64");
    ASSERT_EQ(p.clauses.size(), 8u);

    EXPECT_EQ(p.clauses[0].site, Site::Link);
    EXPECT_EQ(p.clauses[0].action, Action::Drop);
    EXPECT_EQ(p.clauses[0].trigger, FaultClause::Trigger::Rate);
    EXPECT_DOUBLE_EQ(p.clauses[0].rate, 0.01);

    EXPECT_EQ(p.clauses[1].site, Site::IbRx);
    EXPECT_EQ(p.clauses[1].action, Action::Reorder);
    EXPECT_EQ(p.clauses[1].delay, 50 * sim::kMicrosecond);

    EXPECT_EQ(p.clauses[2].trigger, FaultClause::Trigger::Nth);
    EXPECT_EQ(p.clauses[2].nth, 3u);

    EXPECT_EQ(p.clauses[3].trigger, FaultClause::Trigger::Burst);
    EXPECT_EQ(p.clauses[3].width, 10 * sim::kMicrosecond);
    EXPECT_EQ(p.clauses[3].period, 1 * sim::kMillisecond);

    EXPECT_EQ(p.clauses[4].action, Action::Duplicate);
    EXPECT_EQ(p.clauses[4].from, 1 * sim::kMillisecond);
    EXPECT_EQ(p.clauses[4].until, 2 * sim::kMillisecond);

    EXPECT_EQ(p.clauses[5].site, Site::Npf);
    EXPECT_EQ(p.clauses[5].action, Action::ForceFault);

    EXPECT_EQ(p.clauses[6].trigger, FaultClause::Trigger::Every);
    EXPECT_EQ(p.clauses[6].period, 2 * sim::kMillisecond);
    EXPECT_EQ(p.clauses[6].count, 10u);
    EXPECT_EQ(p.clauses[6].magnitude, 512u);

    EXPECT_EQ(p.clauses[7].trigger, FaultClause::Trigger::At);
    EXPECT_EQ(p.clauses[7].at, sim::Time(1500 * sim::kMicrosecond));
    EXPECT_EQ(p.clauses[7].magnitude, 64u);
}

TEST(FaultPlanParse, EmptySpecIsAnEmptyPlan)
{
    EXPECT_TRUE(mustParse("").empty());
    EXPECT_TRUE(mustParse("  ;  ").empty());
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "wifi:drop:rate=0.1",          // unknown site
        "link:corrupt:rate=0.1",       // action invalid at site
        "link:drop:rate=1.5",          // rate out of range
        "link:drop:rate=-0.1",         // rate out of range
        "link:drop",                   // event site without a trigger
        "link:drop:nth=0",             // nth is 1-based
        "link:drop:burst=2ms@1ms",     // width > period
        "link:drop:burst=10us",        // missing @period
        "link:drop:rate=0.1,until=5us,from=9us", // empty window
        "mem:pressure:rate=0.1",       // timed site needs a schedule
        "mem:pressure",                // timed site without a schedule
        "npf:force:every=1ms",         // event site with timed trigger
        "link:drop:rate=0.1,bogus=1",  // unknown key
        "link",                        // no action
        "link:drop:rate",              // no value
    };
    for (const char *spec : bad) {
        std::string err;
        EXPECT_FALSE(FaultPlan::parse(spec, &err).has_value()) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(FaultPlanParse, TimeSuffixesAndBareNanoseconds)
{
    FaultPlan p = mustParse("link:delay:nth=1,delay=1500");
    EXPECT_EQ(p.clauses[0].delay, sim::Time(1500));
    p = mustParse("link:delay:nth=1,delay=2.5us");
    EXPECT_EQ(p.clauses[0].delay, sim::Time(2500));
    p = mustParse("mem:pressure:at=1s");
    EXPECT_EQ(p.clauses[0].at, 1 * sim::kSecond);
    EXPECT_EQ(p.clauses[0].magnitude, 256u) << "mem default pages";
}

// --- link-site triggers ----------------------------------------------

namespace {

/** Send @p n back-to-back packets on a fresh link; count deliveries
 *  and record arrival order. */
struct LinkRun
{
    std::vector<int> arrivals;
    net::Link::Stats stats;

    LinkRun(const std::string &spec, std::uint64_t seed, int n,
            std::uint64_t *fired_first_clause = nullptr)
    {
        sim::EventQueue eq;
        FaultInjector inj(eq, mustParse(spec), seed);
        net::Link link(eq, net::LinkConfig{10e9, 500, 20});
        // One send per microsecond, so time-gated triggers (burst,
        // from/until) see events spread over time, not a burst at 0.
        for (int i = 0; i < n; ++i) {
            eq.schedule(i * sim::kMicrosecond, [this, &link, i] {
                link.send(1000, [this, i] { arrivals.push_back(i); });
            });
        }
        eq.run();
        stats = link.stats();
        if (fired_first_clause)
            *fired_first_clause = inj.clauseFired(0);
    }
};

} // namespace

TEST(FaultLink, RateDropLosesSomePacketsDeterministically)
{
    const int kN = 1000;
    LinkRun a("link:drop:rate=0.2", 42, kN);
    EXPECT_EQ(a.stats.packets, std::uint64_t(kN))
        << "drops still occupy the wire";
    EXPECT_GT(a.stats.injDropped, 100u);
    EXPECT_LT(a.stats.injDropped, 300u);
    EXPECT_EQ(a.arrivals.size(), kN - a.stats.injDropped);

    LinkRun b("link:drop:rate=0.2", 42, kN);
    EXPECT_EQ(b.arrivals, a.arrivals) << "same seed, same fault pattern";

    LinkRun c("link:drop:rate=0.2", 43, kN);
    EXPECT_NE(c.arrivals, a.arrivals) << "different seed differs";
}

TEST(FaultLink, NthDropsExactlyThatPacket)
{
    LinkRun r("link:drop:nth=3", 1, 5);
    EXPECT_EQ(r.stats.injDropped, 1u);
    EXPECT_EQ(r.arrivals, (std::vector<int>{0, 1, 3, 4}));
}

TEST(FaultLink, DuplicateDeliversTwice)
{
    LinkRun r("link:dup:nth=2", 1, 3);
    EXPECT_EQ(r.stats.injDuplicated, 1u);
    ASSERT_EQ(r.arrivals.size(), 4u);
    // The copy goes on the wire first, so both copies of packet 1
    // arrive in order between packets 0 and 2.
    EXPECT_EQ(r.arrivals, (std::vector<int>{0, 1, 1, 2}));
}

TEST(FaultLink, ReorderLetsLaterPacketsOvertake)
{
    // Packet 0 delayed well past the other transmissions.
    LinkRun r("link:reorder:nth=1,delay=100us", 1, 3);
    EXPECT_EQ(r.stats.injDelayed, 1u);
    ASSERT_EQ(r.arrivals.size(), 3u);
    EXPECT_EQ(r.arrivals, (std::vector<int>{1, 2, 0}));
}

TEST(FaultLink, BurstHitsOnlyInsideTheWindow)
{
    // One shot: a window covering the first transmissions only.
    std::uint64_t fired = 0;
    LinkRun r("link:drop:burst=2us@1s", 1, 10, &fired);
    EXPECT_GT(r.stats.injDropped, 0u);
    EXPECT_LT(r.stats.injDropped, 10u) << "later packets fall outside";
    EXPECT_EQ(fired, r.stats.injDropped);
}

TEST(FaultLink, FromUntilGateTheClause)
{
    // Drops everything, but only applies to events in [0, 2us).
    LinkRun r("link:drop:rate=1,until=2us", 1, 10);
    EXPECT_GT(r.stats.injDropped, 0u);
    EXPECT_LT(r.stats.injDropped, 10u);
}

// --- installation semantics ------------------------------------------

TEST(FaultInjectorLifecycle, InstallsAndUninstalls)
{
    EXPECT_EQ(FaultInjector::active(), nullptr);
    sim::EventQueue eq;
    {
        FaultInjector inj(eq, mustParse("link:drop:rate=0.5"), 9);
        EXPECT_EQ(FaultInjector::active(), &inj);
        EXPECT_EQ(inj.seed(), 9u);
    }
    EXPECT_EQ(FaultInjector::active(), nullptr);
    // A second injector after teardown is fine.
    FaultInjector inj2(eq, mustParse("link:drop:rate=0.5"), 10);
    EXPECT_EQ(FaultInjector::active(), &inj2);
}

TEST(FaultInjectorLifecycle, NoPlanMeansNoDecisions)
{
    sim::EventQueue eq;
    net::Link link(eq, net::LinkConfig{10e9, 500, 20});
    int arrived = 0;
    for (int i = 0; i < 50; ++i)
        link.send(1000, [&] { ++arrived; });
    eq.run();
    EXPECT_EQ(arrived, 50);
    EXPECT_EQ(link.stats().injDropped, 0u);
}

TEST(FaultInjectorLifecycle, DestructionCancelsPendingTimers)
{
    sim::EventQueue eq;
    int fired = 0;
    {
        FaultInjector inj(eq, mustParse("mem:pressure:every=1ms"), 1);
        inj.onTimedAction(Site::Mem, [&](std::uint64_t) { ++fired; });
        eq.runUntil(2500 * sim::kMicrosecond);
        EXPECT_EQ(fired, 2);
    }
    eq.run(); // unbounded: must drain because the timer is gone
    EXPECT_EQ(fired, 2);
}

// --- timed sites ------------------------------------------------------

TEST(FaultTimed, ScheduledPressureAndEvictionStorms)
{
    sim::EventQueue eq;
    FaultInjector inj(
        eq, mustParse("mem:pressure:every=1ms,count=5,pages=8;"
                      "iotlb:evict:at=2ms,entries=4"),
        1);
    std::vector<std::pair<sim::Time, std::uint64_t>> mem_fires, tlb_fires;
    inj.onTimedAction(Site::Mem, [&](std::uint64_t m) {
        mem_fires.emplace_back(eq.now(), m);
    });
    inj.onTimedAction(Site::Iotlb, [&](std::uint64_t m) {
        tlb_fires.emplace_back(eq.now(), m);
    });
    eq.run();

    ASSERT_EQ(mem_fires.size(), 5u) << "count= bounds the process";
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(mem_fires[i].first, (i + 1) * sim::kMillisecond);
        EXPECT_EQ(mem_fires[i].second, 8u);
    }
    ASSERT_EQ(tlb_fires.size(), 1u);
    EXPECT_EQ(tlb_fires[0].first, 2 * sim::kMillisecond);
    EXPECT_EQ(tlb_fires[0].second, 4u);
    EXPECT_EQ(inj.injected(Site::Mem), 5u);
    EXPECT_EQ(inj.injected(Site::Iotlb), 1u);
    EXPECT_EQ(inj.injectedTotal(), 6u);
}

TEST(FaultTimed, UntilBoundsAnEveryProcess)
{
    sim::EventQueue eq;
    FaultInjector inj(
        eq, mustParse("mem:pressure:every=1ms,until=3500us"), 1);
    int fired = 0;
    inj.onTimedAction(Site::Mem, [&](std::uint64_t) { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 3); // 1ms, 2ms, 3ms
}

TEST(FaultTimed, UnhandledTimedSiteStillCounts)
{
    // No handler registered: the firing is recorded, nothing crashes.
    sim::EventQueue eq;
    FaultInjector inj(eq, mustParse("iotlb:evict:at=1ms"), 1);
    eq.run();
    EXPECT_EQ(inj.injected(Site::Iotlb), 1u);
}

// --- eth hooks --------------------------------------------------------

namespace {

/** Minimal warm-ring receive rig (mirrors eth_test.cc). */
struct EthFaultRig
{
    sim::EventQueue eq;
    mem::MemoryManager mm;
    mem::AddressSpace &as;
    core::NpfController npfc;
    core::ChannelId ch;
    eth::EthNic nic;
    eth::EthNic peer;
    unsigned ring = 0;
    mem::VirtAddr bufs = 0;
    std::vector<std::uint64_t> delivered;

    EthFaultRig()
        : mm(64 * MiB), as(mm.createAddressSpace("iouser")), npfc(eq),
          ch(npfc.attach(as)), nic(eq, npfc), peer(eq, npfc)
    {
        peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
        nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
        eth::RxRingConfig rcfg;
        rcfg.size = 32;
        ring = nic.createRxRing(ch, rcfg, [this](const eth::Frame &f) {
            delivered.push_back(test::payloadValue(f));
        });
        bufs = as.allocRegion(rcfg.size * 4096, "rx");
        npfc.prefault(ch, bufs, rcfg.size * 4096, true);
        for (std::size_t i = 0; i < rcfg.size; ++i)
            nic.postRxBuffer(ring, bufs + i * 4096, 4096);
    }

    void
    inject(std::uint64_t id)
    {
        eth::Frame f;
        f.dstRing = ring;
        f.bytes = 1000;
        f.payload = test::payloadPool().acquire(id);
        eth::EthNic *dst = &nic;
        peer.txLink()->send(f.bytes, [dst, f] { dst->receive(f); });
    }
};

} // namespace

TEST(FaultEth, CorruptDropsTheFrameAndCountsIt)
{
    EthFaultRig rig;
    FaultInjector inj(rig.eq, mustParse("eth.rx:corrupt:nth=2"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{0, 2, 3}));
    EXPECT_EQ(rig.nic.stats().rxCorrupt, 1u);
    EXPECT_EQ(inj.injected(Site::EthRx), 1u);
}

TEST(FaultEth, StallDefersButLosesNothingAndKeepsOrder)
{
    EthFaultRig rig;
    // Stall the first frame long enough for the rest to pile up
    // behind it; dispatch order (and thus ring order) is preserved
    // because rx sequence numbers are assigned at dispatch.
    FaultInjector inj(rig.eq,
                      mustParse("eth.rx:stall:nth=1,delay=200us"), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        rig.inject(i);
    rig.eq.run();
    // The stalled frame is dispatched (and sequence-numbered) late,
    // after the frames that piled up behind it.
    EXPECT_EQ(rig.delivered, (std::vector<std::uint64_t>{1, 2, 3, 0}));
    EXPECT_EQ(rig.nic.stats().rxStalls, 1u);
    EXPECT_EQ(inj.injected(Site::EthRx), 1u);
}

// --- forced rNPF ------------------------------------------------------

TEST(FaultNpf, ForceFaultFailsOneTranslationOnAResidentPage)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    mem::AddressSpace &as = mm.createAddressSpace("a");
    core::NpfController npfc(eq);
    core::ChannelId ch = npfc.attach(as);
    mem::VirtAddr buf = as.allocRegion(MiB);
    npfc.prefault(ch, buf, 16 * 4096, true);

    FaultInjector inj(eq, mustParse("npf:force:nth=2"), 1);
    EXPECT_TRUE(npfc.checkDma(ch, buf, 4096).ok);
    core::NpfController::DmaCheck forced = npfc.checkDma(ch, buf, 4096);
    EXPECT_FALSE(forced.ok) << "second translation is forced to miss";
    EXPECT_EQ(forced.missingPages, 1u);
    EXPECT_EQ(forced.firstMissing, mem::pageOf(buf));
    EXPECT_TRUE(npfc.checkDma(ch, buf, 4096).ok) << "one-shot";
    EXPECT_EQ(inj.injected(Site::Npf), 1u);
}

TEST(FaultNpf, ForceFaultAlsoFailsDmaAccess)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    mem::AddressSpace &as = mm.createAddressSpace("a");
    core::NpfController npfc(eq);
    core::ChannelId ch = npfc.attach(as);
    mem::VirtAddr buf = as.allocRegion(MiB);
    npfc.prefault(ch, buf, 16 * 4096, true);

    FaultInjector inj(eq, mustParse("npf:force:nth=1"), 1);
    EXPECT_FALSE(npfc.dmaAccess(ch, buf, 4096, true));
    EXPECT_TRUE(npfc.dmaAccess(ch, buf, 4096, true));
}

// --- transport recovery under plans ----------------------------------

namespace {

/** Two-node IB rig (mirrors ib_test.cc). */
struct IbFaultRig
{
    sim::EventQueue eq;
    net::Fabric fabric;
    mem::MemoryManager mmA, mmB;
    mem::AddressSpace &asA, &asB;
    core::NpfController npfcA, npfcB;
    core::ChannelId chA, chB;
    std::unique_ptr<ib::QueuePair> qpA, qpB;

    IbFaultRig()
        : fabric(eq, 2,
                 net::FabricConfig{net::LinkConfig{56e9, 300, 32}, 200}),
          mmA(256 * MiB), mmB(256 * MiB),
          asA(mmA.createAddressSpace("A")),
          asB(mmB.createAddressSpace("B")), npfcA(eq), npfcB(eq),
          chA(npfcA.attach(asA)), chB(npfcB.attach(asB))
    {
        qpA = std::make_unique<ib::QueuePair>(eq, fabric, 0, npfcA, chA,
                                              ib::QpConfig{}, 1);
        qpB = std::make_unique<ib::QueuePair>(eq, fabric, 1, npfcB, chB,
                                              ib::QpConfig{}, 2);
        qpA->connect(*qpB);
        qpB->connect(*qpA);
    }
};

/** Run one faulty IB transfer; return (stats, order of recv wrIds). */
ib::QueuePair::Stats
runIbUnderPlan(std::uint64_t seed, std::vector<std::uint64_t> *order_out)
{
    IbFaultRig rig;
    // Cold receive buffers: drops + reordering + forced faults all
    // hammer the rNPF recovery machinery at once.
    FaultInjector inj(rig.eq,
                      mustParse("ib.rx:drop:rate=0.02;"
                                "ib.rx:reorder:rate=0.01,delay=50us;"
                                "npf:force:rate=0.002"),
                      seed);
    mem::VirtAddr sbuf = rig.asA.allocRegion(4 * MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(4 * MiB);
    rig.npfcA.prefault(rig.chA, sbuf, 4 * MiB, true);
    // rbuf stays cold on purpose.

    constexpr int kMsgs = 40;
    constexpr std::size_t kLen = 64 * 1024;
    std::vector<std::uint64_t> order;
    rig.qpB->onCompletion([&](const ib::Completion &c) {
        if (c.isRecv)
            order.push_back(c.wrId);
    });
    for (int i = 0; i < kMsgs; ++i)
        rig.qpB->postRecv({ib::Opcode::Send, rbuf + (i % 32) * kLen,
                           kLen, 0, std::uint64_t(i)});
    for (int i = 0; i < kMsgs; ++i)
        rig.qpA->postSend({ib::Opcode::Send, sbuf + (i % 32) * kLen,
                           kLen, 0, std::uint64_t(i)});

    bool done = rig.eq.runUntilCondition(
        [&] { return order.size() == kMsgs; }, 60 * sim::kSecond);
    EXPECT_TRUE(done) << "all messages recover and deliver";
    EXPECT_FALSE(rig.qpA->inError());
    if (order_out)
        *order_out = order;
    return rig.qpB->stats();
}

} // namespace

TEST(FaultIb, QpRecoversViaRnrNackAndPsnRewindUnderDropReorder)
{
    std::vector<std::uint64_t> order;
    ib::QueuePair::Stats sB = runIbUnderPlan(5, &order);
    // Delivery is exact and in order despite the plan.
    ASSERT_EQ(order.size(), 40u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    // The recovery machinery actually ran: cold buffers raise rNPFs
    // (RNR NACKs), and drops/reordering force PSN rewinds.
    EXPECT_GT(sB.recvNpfs, 0u);
    EXPECT_GT(sB.rnrNacksSent, 0u);
    EXPECT_GT(sB.dataPacketsDropped, 0u);
}

TEST(FaultIb, StaleRnrNackDoesNotStrandTheSender)
{
    // Regression: a receiver re-NACKs retries of the faulting PSN
    // while its rNPF is pending. With drops in the mix, such a NACK
    // can arrive after a later cumulative ack retired its PSN; the
    // sender used to rewind txPsn_ below ackedPsn_, where the RTO
    // rewind condition (txPsn_ > ackedPsn_) never fires and the
    // inflight entries are already popped — a permanent stall (and
    // an empty-optional dereference in transmitOne). This exact
    // plan+seed deadlocked at 25/64 messages before the fix.
    IbFaultRig rig;
    FaultInjector inj(rig.eq,
                      mustParse("npf:force:rate=0.001;"
                                "ib.rx:drop:rate=0.01"),
                      1);
    mem::VirtAddr sbuf = rig.asA.allocRegion(4 * MiB);
    mem::VirtAddr rbuf = rig.asB.allocRegion(4 * MiB);
    rig.npfcA.prefault(rig.chA, sbuf, 4 * MiB, true);

    constexpr int kMsgs = 64;
    constexpr std::size_t kLen = 64 * 1024;
    int delivered = 0;
    rig.qpB->onCompletion([&](const ib::Completion &c) {
        if (c.isRecv)
            ++delivered;
    });
    for (int i = 0; i < kMsgs; ++i)
        rig.qpB->postRecv({ib::Opcode::Send, rbuf + (i % 32) * kLen,
                           kLen, 0, std::uint64_t(i)});
    for (int i = 0; i < kMsgs; ++i)
        rig.qpA->postSend({ib::Opcode::Send, sbuf + (i % 32) * kLen,
                           kLen, 0, std::uint64_t(i)});

    bool done = rig.eq.runUntilCondition(
        [&] { return delivered == kMsgs; }, 60 * sim::kSecond);
    EXPECT_TRUE(done) << "sender stalled: delivered " << delivered << "/"
                      << kMsgs;
    EXPECT_EQ(delivered, kMsgs);
    EXPECT_FALSE(rig.qpA->inError());
}

TEST(FaultIb, SameSeedReplaysTheSameRun)
{
    std::vector<std::uint64_t> o1, o2;
    ib::QueuePair::Stats s1 = runIbUnderPlan(5, &o1);
    ib::QueuePair::Stats s2 = runIbUnderPlan(5, &o2);
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(s1.dataPacketsSent, s2.dataPacketsSent);
    EXPECT_EQ(s1.dataPacketsDropped, s2.dataPacketsDropped);
    EXPECT_EQ(s1.rnrNacksSent, s2.rnrNacksSent);
    EXPECT_EQ(s1.retransmitted, s2.retransmitted);
}

namespace {

/** Two TCP endpoints over a 30us pipe, a fault plan in between. */
struct TcpFaultRun
{
    tcp::TcpConnection::Stats statsA;
    std::uint64_t delivered = 0;

    TcpFaultRun(const std::string &spec, std::uint64_t seed)
    {
        sim::EventQueue eq;
        FaultInjector inj(eq, mustParse(spec), seed);
        std::unique_ptr<tcp::TcpConnection> a, b;
        a = std::make_unique<tcp::TcpConnection>(
            eq, 1, [&](const tcp::Segment &s, mem::VirtAddr) {
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [&, s] { b->receiveSegment(s); });
            });
        b = std::make_unique<tcp::TcpConnection>(
            eq, 1, [&](const tcp::Segment &s, mem::VirtAddr) {
                eq.scheduleAfter(30 * sim::kMicrosecond,
                                 [&, s] { a->receiveSegment(s); });
            });
        b->listen();
        a->connect([](bool) {});
        b->onDeliver([&](std::size_t n) { delivered += n; });
        a->send(1 << 20);
        eq.runUntilCondition([&] { return delivered == (1u << 20); },
                             120 * sim::kSecond);
        statsA = a->stats();
    }
};

} // namespace

TEST(FaultTcp, TransferSurvivesDropDupDelayPlan)
{
    TcpFaultRun r("tcp.rx:drop:rate=0.02;"
                  "tcp.rx:dup:rate=0.01;"
                  "tcp.rx:delay:rate=0.01,delay=200us",
                  11);
    EXPECT_EQ(r.delivered, 1u << 20) << "recovery is complete";
    EXPECT_GT(r.statsA.retransmissions, 0u);

    TcpFaultRun r2("tcp.rx:drop:rate=0.02;"
                   "tcp.rx:dup:rate=0.01;"
                   "tcp.rx:delay:rate=0.01,delay=200us",
                   11);
    EXPECT_EQ(r2.statsA.segmentsSent, r.statsA.segmentsSent);
    EXPECT_EQ(r2.statsA.retransmissions, r.statsA.retransmissions);
    EXPECT_EQ(r2.statsA.timeouts, r.statsA.timeouts);
}

TEST(FaultDeterminism, ClauseStreamsAreIndependent)
{
    // Adding a second clause on another site must not perturb the
    // first clause's pattern: each clause owns its own rng stream.
    const int kN = 400;
    LinkRun solo("link:drop:rate=0.1", 77, kN);
    sim::EventQueue eq;
    FaultInjector inj(eq,
                      mustParse("link:drop:rate=0.1;"
                                "tcp.rx:drop:rate=0.5"),
                      77);
    net::Link link(eq, net::LinkConfig{10e9, 500, 20});
    std::vector<int> arrivals;
    for (int i = 0; i < kN; ++i) {
        // Interleave tcp.rx polls between link sends.
        (void)inj.decide(Site::TcpRx);
        link.send(1000, [&arrivals, i] { arrivals.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(arrivals, solo.arrivals);
}
