/**
 * @file
 * Unit tests for the link and fabric models: serialization delay,
 * FIFO ordering, propagation, switch forwarding, the wire-level
 * fault matrix, and loopback accounting.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "net/fabric.hh"
#include "net/link.hh"

using namespace npf;
using namespace npf::net;

namespace {

fault::FaultPlan
mustParse(const std::string &spec)
{
    std::string err;
    auto p = fault::FaultPlan::parse(spec, &err);
    EXPECT_TRUE(p.has_value()) << err;
    return *p;
}

LinkConfig
plainLink()
{
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9; // 1 byte/ns
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 0;
    return cfg;
}

} // namespace

TEST(Link, SerializationDelayMatchesBandwidth)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9; // 1 byte/ns
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(1000, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 1000u);
}

TEST(Link, PropagationAdds)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 500;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(100, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 600u);
}

TEST(Link, BackToBackPacketsQueueFifo)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    std::vector<std::pair<int, sim::Time>> arrivals;
    for (int i = 0; i < 3; ++i)
        link.send(1000, [&, i] { arrivals.push_back({i, eq.now()}); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], (std::pair<int, sim::Time>{0, 1000}));
    EXPECT_EQ(arrivals[1], (std::pair<int, sim::Time>{1, 2000}));
    EXPECT_EQ(arrivals[2], (std::pair<int, sim::Time>{2, 3000}));
}

TEST(Link, OverheadBytesCounted)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 38;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(62, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 100u);
    EXPECT_EQ(link.stats().payloadBytes, 62u);
    EXPECT_EQ(link.stats().wireBytes, 100u);
}

// --- the wire-level fault matrix vs FIFO serialization ----------------
// The link's contract under faults: the wire itself stays FIFO (every
// packet occupies its serialization slot in send order) while arrival
// semantics bend per action. These pin the exact arithmetic.

TEST(Link, FaultDropStillHoldsTheWire)
{
    sim::EventQueue eq;
    Link link(eq, plainLink());
    fault::FaultInjector inj(eq, mustParse("link:drop:nth=1"), 1);
    bool first = false;
    sim::Time second = 0;
    link.send(1000, [&] { first = true; });
    link.send(1000, [&] { second = eq.now(); });
    eq.run();
    EXPECT_FALSE(first); // dropped on the wire
    // The dropped packet still serialized in [0, 1000): the survivor
    // queued behind it exactly as if the drop had arrived.
    EXPECT_EQ(second, 2000u);
    EXPECT_EQ(link.stats().injDropped, 1u);
    EXPECT_EQ(link.stats().packets, 2u);
}

TEST(Link, FaultDuplicateArrivesBeforeOriginal)
{
    sim::EventQueue eq;
    Link link(eq, plainLink());
    fault::FaultInjector inj(eq, mustParse("link:dup:nth=1"), 1);
    std::vector<sim::Time> arrivals;
    link.send(1000, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // The copy claims the first wire slot, the original follows it.
    EXPECT_EQ(arrivals[0], 1000u);
    EXPECT_EQ(arrivals[1], 2000u);
    EXPECT_EQ(link.stats().injDuplicated, 1u);
}

TEST(Link, FaultDelayLetsLaterPacketsOvertake)
{
    sim::EventQueue eq;
    Link link(eq, plainLink());
    fault::FaultInjector inj(eq,
                             mustParse("link:delay:nth=1,delay=5000"), 1);
    std::vector<std::pair<int, sim::Time>> arrivals;
    link.send(1000, [&] { arrivals.push_back({0, eq.now()}); });
    link.send(1000, [&] { arrivals.push_back({1, eq.now()}); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // The delayed packet held its wire slot [0, 1000) but arrives at
    // 6000; the packet behind it clocks out at 2000 and overtakes.
    EXPECT_EQ(arrivals[0], (std::pair<int, sim::Time>{1, 2000}));
    EXPECT_EQ(arrivals[1], (std::pair<int, sim::Time>{0, 6000}));
    EXPECT_EQ(link.stats().injDelayed, 1u);
}

TEST(Link, QueuedBytesCountsOnlyWaitingTraffic)
{
    sim::EventQueue eq;
    Link link(eq, plainLink());
    link.send(1000, [] {});
    link.send(500, [] {});
    eq.run();
    // The first packet hit an idle wire; only the second waited.
    EXPECT_EQ(link.stats().queuedBytes, 500u);
}

TEST(Fabric, DeliversBetweenNodes)
{
    sim::EventQueue eq;
    FabricConfig cfg;
    cfg.link.bandwidthBitsPerSec = 8e9;
    cfg.link.propagation = 100;
    cfg.link.perPacketOverheadBytes = 0;
    cfg.switchLatency = 50;
    Fabric fabric(eq, 4, cfg);
    sim::Time arrival = 0;
    fabric.send(0, 3, 1000, [&] { arrival = eq.now(); });
    eq.run();
    // up serialization 1000 + prop 100 + switch 50 + down 1000 + 100.
    EXPECT_EQ(arrival, 2250u);
}

TEST(Fabric, IncastSerializesAtDownlink)
{
    sim::EventQueue eq;
    FabricConfig cfg;
    cfg.link.bandwidthBitsPerSec = 8e9;
    cfg.link.propagation = 0;
    cfg.link.perPacketOverheadBytes = 0;
    cfg.switchLatency = 0;
    Fabric fabric(eq, 4, cfg);
    std::vector<sim::Time> arrivals;
    // Nodes 0..2 each send 1000 B to node 3 at t=0.
    for (unsigned src = 0; src < 3; ++src)
        fabric.send(src, 3, 1000, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    // Uplinks run in parallel (all arrive at the switch at 1000), the
    // shared downlink serializes them.
    EXPECT_EQ(arrivals[0], 2000u);
    EXPECT_EQ(arrivals[1], 3000u);
    EXPECT_EQ(arrivals[2], 4000u);
}

// --- loopback (src == dst) --------------------------------------------
// Loopback used to bypass both the Link fault site and all stats; it
// now turns around below the first hop with consistent accounting.

TEST(Fabric, LoopbackCostsSwitchLatencyAndIsCounted)
{
    sim::EventQueue eq;
    FabricConfig cfg;
    cfg.switchLatency = 50;
    Fabric fabric(eq, 2, cfg);
    sim::Time arrival = 0;
    fabric.send(1, 1, 4096, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 50u);
    EXPECT_EQ(fabric.stats().loopbackPackets, 1u);
    EXPECT_EQ(fabric.stats().loopbackBytes, 4096u);
    // Never touches a wire.
    EXPECT_EQ(fabric.uplink(1).stats().packets, 0u);
    EXPECT_EQ(fabric.downlink(1).stats().packets, 0u);
}

TEST(Fabric, LoopbackPollsLinkFaultSite)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 2);
    fault::FaultInjector inj(eq, mustParse("link:drop:nth=1"), 1);
    bool delivered = false;
    fabric.send(0, 0, 100, [&] { delivered = true; });
    eq.run();
    EXPECT_FALSE(delivered);
    EXPECT_EQ(fabric.stats().loopbackInjDropped, 1u);
    EXPECT_EQ(inj.injected(fault::Site::Link), 1u);
}

TEST(Fabric, LoopbackDuplicateDeliversTwice)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 2);
    fault::FaultInjector inj(eq, mustParse("link:dup:nth=1"), 1);
    int deliveries = 0;
    fabric.send(0, 0, 100, [&] { ++deliveries; });
    eq.run();
    EXPECT_EQ(deliveries, 2);
    EXPECT_EQ(fabric.stats().loopbackInjDuplicated, 1u);
}
