/**
 * @file
 * Unit tests for the link and fabric models: serialization delay,
 * FIFO ordering, propagation, and switch forwarding.
 */

#include <gtest/gtest.h>

#include "net/fabric.hh"
#include "net/link.hh"

using namespace npf;
using namespace npf::net;

TEST(Link, SerializationDelayMatchesBandwidth)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9; // 1 byte/ns
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(1000, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 1000u);
}

TEST(Link, PropagationAdds)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 500;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(100, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 600u);
}

TEST(Link, BackToBackPacketsQueueFifo)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 0;
    Link link(eq, cfg);
    std::vector<std::pair<int, sim::Time>> arrivals;
    for (int i = 0; i < 3; ++i)
        link.send(1000, [&, i] { arrivals.push_back({i, eq.now()}); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], (std::pair<int, sim::Time>{0, 1000}));
    EXPECT_EQ(arrivals[1], (std::pair<int, sim::Time>{1, 2000}));
    EXPECT_EQ(arrivals[2], (std::pair<int, sim::Time>{2, 3000}));
}

TEST(Link, OverheadBytesCounted)
{
    sim::EventQueue eq;
    LinkConfig cfg;
    cfg.bandwidthBitsPerSec = 8e9;
    cfg.propagation = 0;
    cfg.perPacketOverheadBytes = 38;
    Link link(eq, cfg);
    sim::Time arrival = 0;
    link.send(62, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(arrival, 100u);
    EXPECT_EQ(link.stats().payloadBytes, 62u);
    EXPECT_EQ(link.stats().wireBytes, 100u);
}

TEST(Fabric, DeliversBetweenNodes)
{
    sim::EventQueue eq;
    FabricConfig cfg;
    cfg.link.bandwidthBitsPerSec = 8e9;
    cfg.link.propagation = 100;
    cfg.link.perPacketOverheadBytes = 0;
    cfg.switchLatency = 50;
    Fabric fabric(eq, 4, cfg);
    sim::Time arrival = 0;
    fabric.send(0, 3, 1000, [&] { arrival = eq.now(); });
    eq.run();
    // up serialization 1000 + prop 100 + switch 50 + down 1000 + 100.
    EXPECT_EQ(arrival, 2250u);
}

TEST(Fabric, IncastSerializesAtDownlink)
{
    sim::EventQueue eq;
    FabricConfig cfg;
    cfg.link.bandwidthBitsPerSec = 8e9;
    cfg.link.propagation = 0;
    cfg.link.perPacketOverheadBytes = 0;
    cfg.switchLatency = 0;
    Fabric fabric(eq, 4, cfg);
    std::vector<sim::Time> arrivals;
    // Nodes 0..2 each send 1000 B to node 3 at t=0.
    for (unsigned src = 0; src < 3; ++src)
        fabric.send(src, 3, 1000, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    // Uplinks run in parallel (all arrive at the switch at 1000), the
    // shared downlink serializes them.
    EXPECT_EQ(arrivals[0], 2000u);
    EXPECT_EQ(arrivals[1], 3000u);
    EXPECT_EQ(arrivals[2], 4000u);
}
