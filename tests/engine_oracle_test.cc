/**
 * @file
 * Randomized differential test: the ladder-queue sim::EventQueue
 * versus the retained binary-heap engine (tests/heap_event_queue.hh).
 *
 * The determinism contract says the rewrite is *unobservable* through
 * the public API: for any interleaving of schedule / scheduleAfter /
 * cancel / runUntil / runUntilCondition, both engines must execute
 * the same events in the same global order at the same timestamps,
 * and agree on now() and the final Stats. This test throws N seeded
 * random op streams at both engines side by side and demands exactly
 * that.
 *
 * Handles differ between engines (the heap numbers events densely,
 * the ladder packs slab index + generation), so cancellation targets
 * are chosen by birth order and mapped through parallel id vectors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "heap_event_queue.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

using namespace npf;

namespace {

/** One executed-event record; both engines must produce equal logs. */
struct Exec
{
    sim::Time when;
    std::uint64_t birth; ///< birth-order index of the event

    bool operator==(const Exec &o) const
    {
        return when == o.when && birth == o.birth;
    }
};

/**
 * Drives both engines through one seeded op stream and checks them
 * against each other after every run-ish op and at the end.
 */
class DifferentialHarness
{
  public:
    explicit DifferentialHarness(std::uint32_t seed) : rng_(seed) {}

    void
    run(int ops)
    {
        for (int i = 0; i < ops; ++i) {
            switch (pick({30, 20, 20, 12, 10, 8})) {
              case 0:
                doSchedule();
                break;
              case 1:
                doScheduleAfter();
                break;
              case 2:
                doCancel();
                break;
              case 3:
                doRunUntil();
                break;
              case 4:
                doRunUntilCondition();
                break;
              case 5:
                doStepBurst();
                break;
            }
            checkClocks();
        }
        // Drain both completely; afterwards every stat must agree,
        // including the lazily-reaped cancellation count.
        ladder_.run();
        oracle_.run();
        checkClocks();
        checkLogs();
        checkFinalStats();
    }

  private:
    /** Weighted choice; weights need not sum to anything special. */
    int
    pick(std::initializer_list<int> weights)
    {
        int total = 0;
        for (int w : weights)
            total += w;
        int r = std::uniform_int_distribution<int>(0, total - 1)(rng_);
        int idx = 0;
        for (int w : weights) {
            if (r < w)
                return idx;
            r -= w;
            ++idx;
        }
        return idx - 1;
    }

    sim::Time
    randomDelay()
    {
        // Mix of horizons so events land in the imminent window,
        // every wheel level, and the overflow ladder.
        switch (pick({30, 30, 20, 10, 6, 4})) {
          case 0: // same 64 ns window / immediate
            return std::uniform_int_distribution<sim::Time>(0, 63)(rng_);
          case 1: // near future: level 0-1
            return std::uniform_int_distribution<sim::Time>(
                64, 1 << 20)(rng_);
          case 2: // mid: level 2-3
            return std::uniform_int_distribution<sim::Time>(
                1 << 20, sim::Time(1) << 36)(rng_);
          case 3: // far: level 4-5
            return std::uniform_int_distribution<sim::Time>(
                sim::Time(1) << 36, sim::Time(1) << 53)(rng_);
          case 4: // beyond the wheel span: overflow ladder
            return std::uniform_int_distribution<sim::Time>(
                sim::Time(1) << 54, sim::Time(1) << 60)(rng_);
          default: // sentinel-ish: exercises saturation
            return sim::kTimeMax -
                   std::uniform_int_distribution<sim::Time>(0, 100)(rng_);
        }
    }

    void
    doSchedule()
    {
        std::uint64_t birth = births_++;
        sim::Time when =
            sim::saturatingAdd(ladder_.now(), randomDelay());
        idsNew_.push_back(ladder_.schedule(
            when, [this, birth] { logNew_.push_back({ladder_.now(), birth}); },
            "diff.sched"));
        idsOld_.push_back(oracle_.schedule(
            when, [this, birth] { logOld_.push_back({oracle_.now(), birth}); },
            "diff.sched"));
    }

    void
    doScheduleAfter()
    {
        std::uint64_t birth = births_++;
        sim::Time delay = randomDelay();
        idsNew_.push_back(ladder_.scheduleAfter(
            delay,
            [this, birth] { logNew_.push_back({ladder_.now(), birth}); },
            "diff.after"));
        idsOld_.push_back(oracle_.scheduleAfter(
            delay,
            [this, birth] { logOld_.push_back({oracle_.now(), birth}); },
            "diff.after"));
    }

    void
    doCancel()
    {
        if (births_ == 0)
            return;
        // Bias toward recent events so cancels often hit still-live
        // entries (the interesting case) but sometimes hit executed
        // or already-cancelled ones (the no-op case).
        std::uint64_t target =
            births_ - 1 -
            std::min<std::uint64_t>(
                births_ - 1,
                std::uniform_int_distribution<std::uint64_t>(0, 40)(rng_));
        ladder_.cancel(idsNew_[target]);
        oracle_.cancel(idsOld_[target]);
    }

    void
    doRunUntil()
    {
        sim::Time until =
            sim::saturatingAdd(ladder_.now(), randomDelay());
        ladder_.runUntil(until);
        oracle_.runUntil(until);
        checkLogs();
    }

    void
    doRunUntilCondition()
    {
        sim::Time deadline =
            sim::saturatingAdd(ladder_.now(), randomDelay());
        // Fire until a fixed number of further events have executed;
        // expressed over each engine's own log so both predicates are
        // observationally identical.
        std::size_t goalNew = logNew_.size() + 3;
        std::size_t goalOld = logOld_.size() + 3;
        bool okNew = ladder_.runUntilCondition(
            [&] { return logNew_.size() >= goalNew; }, deadline);
        bool okOld = oracle_.runUntilCondition(
            [&] { return logOld_.size() >= goalOld; }, deadline);
        EXPECT_EQ(okNew, okOld);
        checkLogs();
    }

    void
    doStepBurst()
    {
        int n = std::uniform_int_distribution<int>(1, 5)(rng_);
        for (int i = 0; i < n; ++i) {
            bool a = ladder_.step();
            bool b = oracle_.step();
            ASSERT_EQ(a, b) << "one engine ran dry before the other";
            if (!a)
                break;
        }
        checkLogs();
    }

    void
    checkClocks()
    {
        ASSERT_EQ(ladder_.now(), oracle_.now());
        // live() must agree at all times: both count exactly the
        // events that can still fire. (pending()/empty() intentionally
        // differ mid-run: the heap reaps cancelled entries lazily, the
        // ladder reclaims them at cancel time, so compare the ladder's
        // emptiness against the oracle's *live* emptiness.)
        ASSERT_EQ(ladder_.live(), oracle_.live());
        ASSERT_EQ(ladder_.empty(), oracle_.live() == 0);
    }

    void
    checkLogs()
    {
        std::size_t from = check_;
        check_ = std::min(logNew_.size(), logOld_.size());
        for (std::size_t i = from; i < check_; ++i) {
            ASSERT_EQ(logNew_[i].when, logOld_[i].when) << "entry " << i;
            ASSERT_EQ(logNew_[i].birth, logOld_[i].birth) << "entry " << i;
        }
        ASSERT_EQ(logNew_.size(), logOld_.size());
    }

    void
    checkFinalStats()
    {
        const auto &sn = ladder_.stats();
        const auto &so = oracle_.stats();
        EXPECT_EQ(sn.scheduled, so.scheduled);
        EXPECT_EQ(sn.executed, so.executed);
        EXPECT_EQ(sn.cancelled, so.cancelled);
        // After a full drain the heap has reaped everything it ever
        // cancelled, so the eager and lazy counts converge.
        EXPECT_EQ(sn.cancelledReaped, so.cancelledReaped);
        EXPECT_EQ(sn.cancelled, sn.cancelledReaped);
        EXPECT_EQ(ladder_.pending(), 0u);
        EXPECT_EQ(oracle_.pending(), 0u);
    }

    std::mt19937 rng_;
    sim::EventQueue ladder_;
    simtest::HeapEventQueue oracle_;
    std::vector<sim::EventId> idsNew_;
    std::vector<simtest::HeapEventQueue::EventId> idsOld_;
    std::vector<Exec> logNew_, logOld_;
    std::size_t check_ = 0;
    std::uint64_t births_ = 0;
};

} // namespace

TEST(EngineOracle, RandomInterleavingsMatchHeapEngine)
{
    for (std::uint32_t seed = 1; seed <= 24; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed);
        DifferentialHarness h(seed);
        h.run(600);
    }
}

TEST(EngineOracle, CancelStormMatchesHeapEngine)
{
    // Degenerate mix: almost everything scheduled gets cancelled,
    // stressing slot reuse + generation stamps against the oracle.
    for (std::uint32_t seed = 100; seed <= 106; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed);
        std::mt19937 rng(seed);
        sim::EventQueue ladder;
        simtest::HeapEventQueue oracle;
        std::vector<sim::Time> firedNew, firedOld;
        std::vector<sim::EventId> idsNew;
        std::vector<simtest::HeapEventQueue::EventId> idsOld;
        for (int round = 0; round < 200; ++round) {
            for (int i = 0; i < 20; ++i) {
                sim::Time d = std::uniform_int_distribution<sim::Time>(
                    1, 1 << 22)(rng);
                idsNew.push_back(ladder.scheduleAfter(d, [&] {
                    firedNew.push_back(ladder.now());
                }));
                idsOld.push_back(oracle.scheduleAfter(d, [&] {
                    firedOld.push_back(oracle.now());
                }));
            }
            // Cancel 90% of this round's batch.
            for (std::size_t i = idsNew.size() - 20; i < idsNew.size();
                 ++i) {
                if (std::uniform_int_distribution<int>(0, 9)(rng) == 0)
                    continue;
                ladder.cancel(idsNew[i]);
                oracle.cancel(idsOld[i]);
            }
            sim::Time until = sim::saturatingAdd(
                ladder.now(),
                std::uniform_int_distribution<sim::Time>(0, 1 << 21)(rng));
            ladder.runUntil(until);
            oracle.runUntil(until);
            ASSERT_EQ(ladder.now(), oracle.now());
            ASSERT_EQ(firedNew, firedOld) << "round " << round;
        }
        ladder.run();
        oracle.run();
        EXPECT_EQ(firedNew, firedOld);
        EXPECT_EQ(ladder.stats().executed, oracle.stats().executed);
        EXPECT_EQ(ladder.stats().cancelledReaped,
                  oracle.stats().cancelledReaped);
    }
}
