/**
 * @file
 * Sharded-engine tests (docs/SHARDING.md): the differential oracle —
 * the same cluster workload partitioned over 1, 2 and 4 shards must
 * produce bit-identical per-rank observables — plus SPSC-ring FIFO
 * properties, boundary-event ordering, and the debug-build
 * owner-thread assertions on pools and the metrics registry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hpc/cluster.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/shard.hh"

using namespace npf;

namespace {

/** FNV-1a over 64-bit words. */
struct Digest
{
    std::uint64_t h = 1469598103934665603ull;
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

} // namespace

// ---------------------------------------------------------------
// SPSC ring properties
// ---------------------------------------------------------------

TEST(SpscRing, FifoUnderConcurrentStress)
{
    // Small capacity so the test exercises wraparound and the full
    // ring (producer-side) path many times over.
    sim::SpscRing ring(64);
    constexpr std::uint64_t kMsgs = 200000;

    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kMsgs; ++i) {
            sim::BoundaryMsg m{};
            m.when = i * 3 + 1; // monotone, like a real sender clock
            m.orderKey = i;
            m.a = i ^ 0xabcdef;
            while (!ring.tryPush(m))
                std::this_thread::yield();
        }
    });

    std::uint64_t next = 0;
    sim::Time lastWhen = 0;
    bool ordered = true, payloadOk = true, monotone = true;
    while (next < kMsgs) {
        sim::BoundaryMsg m;
        if (!ring.tryPop(m)) {
            std::this_thread::yield();
            continue;
        }
        ordered = ordered && m.orderKey == next;
        payloadOk = payloadOk && m.a == (next ^ 0xabcdef);
        monotone = monotone && m.when >= lastWhen;
        lastWhen = m.when;
        ++next;
    }
    producer.join();
    EXPECT_TRUE(ordered) << "ring reordered messages";
    EXPECT_TRUE(payloadOk) << "ring corrupted a payload";
    EXPECT_TRUE(monotone) << "timestamps regressed across the ring";
    sim::BoundaryMsg m;
    EXPECT_FALSE(ring.tryPop(m)) << "ring invented a message";
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    sim::SpscRing ring(100);
    EXPECT_GE(ring.capacity(), 100u);
    EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0u);
}

// ---------------------------------------------------------------
// Boundary-event ordering in the event queue
// ---------------------------------------------------------------

TEST(BoundarySchedule, ExecutesInTimestampThenKeyOrder)
{
    sim::EventQueue eq;
    struct Rec
    {
        sim::Time when;
        std::uint64_t key;
        bool boundary;
    };
    std::vector<Rec> order;

    // Deterministically shuffled insertion: an LCG walks a set of
    // (when, key) pairs in scrambled order; execution must come out
    // sorted by (when, key) regardless.
    std::uint64_t lcg = 12345;
    constexpr unsigned kN = 512;
    std::vector<std::pair<sim::Time, std::uint64_t>> pairs;
    for (unsigned i = 0; i < kN; ++i)
        pairs.emplace_back(100 + (i % 17) * 50, i);
    for (unsigned i = kN; i > 1; --i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(pairs[i - 1], pairs[(lcg >> 33) % i]);
    }
    for (auto [when, key] : pairs)
        eq.scheduleBoundary(when, key, [&order, when = when, key = key] {
            order.push_back({when, key, true});
        });
    // Local events at the same ticks must run before same-tick
    // boundary events (the seq-domain split).
    for (unsigned t = 0; t < 17; ++t)
        eq.schedule(100 + t * 50, [&order, t] {
            order.push_back({100 + t * 50, t, false});
        });

    eq.runUntil(10000);
    ASSERT_EQ(order.size(), kN + 17);
    for (std::size_t i = 1; i < order.size(); ++i) {
        const Rec &a = order[i - 1], &b = order[i];
        ASSERT_LE(a.when, b.when) << "timestamp regressed at " << i;
        if (a.when == b.when) {
            // local-before-boundary, then key-ascending boundaries
            ASSERT_TRUE(!(a.boundary && !b.boundary))
                << "boundary ran before a same-tick local event";
            if (a.boundary && b.boundary)
                ASSERT_LT(a.key, b.key) << "orderKey inversion at " << i;
        }
    }
}

TEST(ShardedEngine, LoopbackAndCrossShardDelivery)
{
    sim::ShardedEngine::Config cfg;
    cfg.shards = 2;
    cfg.lookahead = 100;
    sim::ShardedEngine engine(cfg);

    std::atomic<int> at0{0}, at1{0};
    engine.invokeOn(0, [&] {
        engine.bind(0, 7, [&at0](const sim::BoundaryMsg &m) {
            EXPECT_EQ(m.a, 42u);
            ++at0;
        });
    });
    engine.invokeOn(1, [&] {
        engine.bind(1, 7, [&at1](const sim::BoundaryMsg &m) {
            EXPECT_EQ(m.a, 43u);
            ++at1;
        });
    });

    engine.invokeOn(0, [&] {
        sim::BoundaryMsg m{};
        m.when = 150;
        m.orderKey = 1;
        m.kind = 7;
        m.srcShard = 0;
        m.dstShard = 1;
        m.a = 43;
        engine.post(m); // cross-shard, honors the lookahead floor
        sim::BoundaryMsg l = m;
        l.dstShard = 0;
        l.a = 42;
        l.when = 10;
        engine.post(l); // loopback, no floor
    });
    engine.run(1000);
    EXPECT_EQ(at0.load(), 1);
    EXPECT_EQ(at1.load(), 1);
}

TEST(ShardedEngine, MakesProgressAtMinimalLookahead)
{
    // Regression: clocks used to publish "ran through here", which
    // livelocks at lookahead 1 — runTo = min(until, horizon - 1)
    // could never pass min_j(clock_j), every clock stayed at 0, and
    // run() never returned. Floor-semantics clocks (publish
    // runTo + 1) make one tick of lookahead sufficient: this
    // ping-pong relays a message every single tick, the worst case.
    sim::ShardedEngine::Config cfg;
    cfg.shards = 2;
    cfg.lookahead = 1;
    sim::ShardedEngine engine(cfg);

    constexpr sim::Time kUntil = 4000;
    std::atomic<std::uint64_t> hops{0};
    for (unsigned s = 0; s < 2; ++s) {
        engine.invokeOn(s, [&, s] {
            engine.bind(s, 1, [&, s](const sim::BoundaryMsg &m) {
                ++hops;
                sim::BoundaryMsg next = m;
                next.srcShard = std::uint16_t(s);
                next.dstShard = std::uint16_t(1 - s);
                next.when = m.when + 1; // == now + lookahead
                next.orderKey = m.orderKey + 1;
                if (next.when <= kUntil)
                    engine.post(next);
            });
        });
    }
    engine.invokeOn(0, [&] {
        sim::BoundaryMsg m{};
        m.when = 1;
        m.orderKey = 1;
        m.kind = 1;
        m.srcShard = 0;
        m.dstShard = 1;
        engine.post(m);
    });
    engine.run(kUntil);
    EXPECT_EQ(hops.load(), kUntil) << "one hop per tick, 1..kUntil";
}

TEST(ShardedEngine, MutualBurstThroughFullRingsDoesNotDeadlock)
{
    // Both shards burst far past the ring capacity at each other
    // inside one horizon window. The producers overrun both full
    // rings at once; post() must drain its own inbound rings while
    // spinning, or A blocks pushing to B's full ring while B blocks
    // pushing to A's and neither ever drains.
    sim::ShardedEngine::Config cfg;
    cfg.shards = 2;
    cfg.lookahead = 10;
    cfg.ringCapacity = 4;
    sim::ShardedEngine engine(cfg);

    constexpr unsigned kBurst = 64;
    std::atomic<unsigned> got0{0}, got1{0};
    engine.invokeOn(0, [&] {
        engine.bind(0, 1, [&got0](const sim::BoundaryMsg &) { ++got0; });
    });
    engine.invokeOn(1, [&] {
        engine.bind(1, 1, [&got1](const sim::BoundaryMsg &) { ++got1; });
    });
    for (unsigned s = 0; s < 2; ++s) {
        engine.invokeOn(s, [&, s] {
            engine.queue(s).schedule(1, [&, s] {
                for (unsigned i = 0; i < kBurst; ++i) {
                    sim::BoundaryMsg m{};
                    m.when = engine.queue(s).now() + cfg.lookahead;
                    m.orderKey = (std::uint64_t(s + 1) << 32) | i;
                    m.kind = 1;
                    m.srcShard = std::uint16_t(s);
                    m.dstShard = std::uint16_t(1 - s);
                    m.a = i;
                    engine.post(m);
                }
            });
        });
    }
    engine.run(100);
    EXPECT_EQ(got0.load(), kBurst);
    EXPECT_EQ(got1.load(), kBurst);
}

TEST(ShardedEngineDeath, LookaheadViolationAborts)
{
    // The lookahead floor is enforced in ALL builds: a violating send
    // clamped into the receiver's past would silently break the
    // determinism contract, so post() aborts instead.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            sim::ShardedEngine::Config cfg;
            cfg.shards = 2;
            cfg.lookahead = 100;
            sim::ShardedEngine engine(cfg);
            engine.invokeOn(1, [&] {
                engine.bind(1, 1, [](const sim::BoundaryMsg &) {});
            });
            engine.invokeOn(0, [&] {
                sim::BoundaryMsg m{};
                m.when = 99; // sender now() == 0: inside the window
                m.orderKey = 1;
                m.kind = 1;
                m.srcShard = 0;
                m.dstShard = 1;
                engine.post(m);
            });
            engine.run(1000);
        },
        "lookahead window");
}

TEST(EventQueueDeath, BoundaryScheduledInThePastAborts)
{
    // scheduleBoundary never clamps a past delivery to now: that
    // would hide a causality violation as silent nondeterminism.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            sim::EventQueue eq;
            eq.schedule(50, [] {});
            eq.runUntil(50);
            eq.scheduleBoundary(49, 1, [] {});
        },
        "boundary event in the past");
}

// ---------------------------------------------------------------
// Differential oracle: 1 shard vs N shards, bit-identical
// ---------------------------------------------------------------

namespace {

/**
 * Run a fixed ring-exchange workload on @p shards facets and digest
 * every per-rank observable that must not depend on the partition:
 * completion times, delivery order, QP wire counters, NPF counts.
 * (wrIds are facet-local and deliberately excluded.)
 */
std::uint64_t
runPartitioned(unsigned ranks, unsigned shards,
               sim::Time lookahead = 500)
{
    sim::ShardedEngine::Config ec;
    ec.shards = shards;
    // Any lookahead <= the cluster fabric's recordLookahead() (500
    // with the default config) is legal; smaller just syncs more.
    ec.lookahead = lookahead;
    sim::ShardedEngine engine(ec);

    std::vector<std::unique_ptr<hpc::Cluster>> facets(shards);
    // completions[rank] = times of that rank's sends+recvs, in the
    // order they completed on the owning shard (single-threaded per
    // rank, so no synchronization needed).
    std::vector<std::vector<sim::Time>> completions(ranks);

    for (unsigned s = 0; s < shards; ++s) {
        engine.invokeOn(s, [&, s] {
            hpc::ClusterConfig cfg;
            cfg.ranks = ranks;
            cfg.memoryPerRank = 1ull << 30;
            cfg.engine = &engine;
            cfg.shard = s;
            cfg.shards = shards;
            facets[s] = std::make_unique<hpc::Cluster>(
                engine.queue(s), cfg, hpc::RegMode::Npf);
        });
    }
    for (unsigned s = 0; s < shards; ++s) {
        engine.invokeOn(s, [&, s] {
            hpc::Cluster &c = *facets[s];
            // Ring exchange, one eager and one rendezvous message per
            // direction, posted up front.
            for (unsigned r = 0; r < ranks; ++r) {
                if (!c.ownsRank(r))
                    continue;
                unsigned next = (r + 1) % ranks;
                unsigned prev = (r + ranks - 1) % ranks;
                for (std::size_t len : {std::size_t(4096),
                                        std::size_t(256 * 1024)}) {
                    mem::VirtAddr sb = c.allocBuffer(r, len);
                    mem::VirtAddr rb = c.allocBuffer(r, len);
                    c.irecv(r, prev, rb, len, [&, r, s] {
                        completions[r].push_back(
                            engine.queue(s).now());
                    });
                    c.isend(r, next, sb, len, [&, r, s] {
                        completions[r].push_back(
                            engine.queue(s).now());
                    });
                }
            }
        });
    }

    engine.run(100 * sim::kMillisecond);

    // Gather per-rank counters first (on the owning threads), then
    // digest strictly in rank order so the digest cannot depend on
    // which shard owned which rank.
    std::vector<std::uint64_t> npfs(ranks), pages(ranks);
    for (unsigned s = 0; s < shards; ++s) {
        engine.invokeOn(s, [&] {
            hpc::Cluster &c = *facets[s];
            for (unsigned r = 0; r < ranks; ++r) {
                if (!c.ownsRank(r))
                    continue;
                npfs[r] = c.npfc(r).stats().npfs;
                pages[r] = c.npfc(r).stats().pagesMapped;
            }
            facets[s].reset(); // die on the thread that built them
        });
    }
    Digest d;
    for (unsigned r = 0; r < ranks; ++r) {
        // 2 sends + 2 recvs per rank must all have completed.
        EXPECT_EQ(completions[r].size(), 4u)
            << "rank " << r << " with " << shards << " shards";
        d.mix(r);
        for (sim::Time t : completions[r])
            d.mix(t);
        d.mix(npfs[r]);
        d.mix(pages[r]);
    }
    return d.h;
}

} // namespace

TEST(ShardDifferential, PartitionCountDoesNotChangeObservables)
{
    const unsigned ranks = 4;
    std::uint64_t one = runPartitioned(ranks, 1);
    std::uint64_t two = runPartitioned(ranks, 2);
    std::uint64_t four = runPartitioned(ranks, 4);
    EXPECT_EQ(one, two) << "2-shard run diverged from the 1-shard oracle";
    EXPECT_EQ(one, four)
        << "4-shard run diverged from the 1-shard oracle";
}

TEST(ShardDifferential, ReplayIsBitIdentical)
{
    std::uint64_t a = runPartitioned(4, 2);
    std::uint64_t b = runPartitioned(4, 2);
    EXPECT_EQ(a, b) << "same partition, same seed, different digest";
}

TEST(ShardDifferential, LookaheadDoesNotChangeObservables)
{
    // Lookahead only sets how far shards run between syncs; any legal
    // value must produce the same simulation. A divergence here means
    // the horizon math executed an event it should not have.
    std::uint64_t coarse = runPartitioned(4, 2, 500);
    std::uint64_t fine = runPartitioned(4, 2, 100);
    EXPECT_EQ(coarse, fine)
        << "lookahead changed the simulation's observables";
}

// ---------------------------------------------------------------
// Debug-build ownership assertions
// ---------------------------------------------------------------

#ifndef NDEBUG

TEST(OwnerAssertDeath, PoolUseFromForeignThreadAborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            sim::Pool<int> pool;
            std::thread([&pool] { (void)pool.create(7); }).join();
        },
        "non-owner");
}

TEST(OwnerAssertDeath, RegistryMutationFromForeignThreadAborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            obs::Registry reg;
            static std::uint64_t v = 0;
            std::thread([&reg] { reg.addCounter("x", &v); }).join();
        },
        "non-owner");
}

TEST(OwnerAssert, RebindMovesOwnership)
{
    sim::Pool<int> pool;
    std::thread([&pool] {
        pool.rebindOwner();
        auto h = pool.create(1);
        EXPECT_EQ(*pool.get(h), 1);
        pool.release(h);
        pool.rebindOwner(); // hand back is the worker's job too --
    }).join();
    // -- but this rebind ran on the worker; take it back here.
    pool.rebindOwner();
    auto h = pool.create(2);
    EXPECT_EQ(*pool.get(h), 2);
    pool.release(h);
}

#endif // !NDEBUG
