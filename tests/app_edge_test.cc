/**
 * @file
 * Application-layer edge cases and parameter sweeps: storage block
 * sizes and queue depths, get/set mixes, page-cache/comm-buffer
 * interaction under tight memory.
 */

#include <gtest/gtest.h>

#include "app/memcached.hh"
#include "app/storage.hh"
#include "net/fabric.hh"
#include "testbed.hh"

using namespace npf;
using namespace npf::app;

namespace {

constexpr std::size_t MiB = 1ull << 20;
constexpr std::size_t GiB = 1ull << 30;

struct StorageRig
{
    sim::EventQueue eq;
    net::Fabric fabric{eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200}};
    mem::MemoryManager tgtMm, iniMm{2 * GiB};
    mem::AddressSpace &tgtAs;
    mem::AddressSpace &iniAs{iniMm.createAddressSpace("fio")};
    core::NpfController tgtNpfc{eq}, iniNpfc{eq};
    core::ChannelId tch{tgtNpfc.attach(tgtAs)};
    core::ChannelId ich{iniNpfc.attach(iniAs)};
    ib::QueuePair qpT, qpI;
    StorageTarget tgt;
    std::shared_ptr<std::deque<IoRequest>> queue;

    StorageRig(std::size_t mem, StorageConfig scfg)
        : tgtMm(mem), tgtAs(tgtMm.createAddressSpace("tgt")),
          qpT(eq, fabric, 0, tgtNpfc, tch),
          qpI(eq, fabric, 1, iniNpfc, ich), tgt(eq, tgtAs, scfg),
          queue(std::make_shared<std::deque<IoRequest>>())
    {
        qpT.connect(qpI);
        qpI.connect(qpT);
        if (tgt.ok())
            tgt.addSession(qpT, queue);
    }
};

} // namespace

class StorageSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
};

TEST_P(StorageSweep, ReadsCompleteAtAnyBlockSizeAndDepth)
{
    auto [block, qd] = GetParam();
    StorageConfig scfg;
    scfg.lunBytes = 512 * MiB;
    scfg.pinned = false;
    StorageRig rig(4 * GiB, scfg);
    ASSERT_TRUE(rig.tgt.ok());
    FioClient fio(rig.eq, rig.qpI, rig.iniAs, rig.queue, block, qd,
                  scfg.lunBytes, 5);
    fio.start();
    bool ok = rig.eq.runUntilCondition(
        [&] { return fio.completed() >= 50; }, 60 * sim::kSecond);
    EXPECT_TRUE(ok) << "block=" << block << " qd=" << qd;
    EXPECT_EQ(fio.bytesRead(), fio.completed() * block);
}

INSTANTIATE_TEST_SUITE_P(
    Points, StorageSweep,
    ::testing::Combine(::testing::Values(4096, 64 * 1024, 512 * 1024),
                       ::testing::Values(1u, 4u, 32u)));

TEST(StorageEdge, SmallBlocksLeaveChunkTailsUnbacked)
{
    StorageConfig scfg;
    scfg.lunBytes = 256 * MiB;
    scfg.pinned = false;
    StorageRig rig(4 * GiB, scfg);
    FioClient fio(rig.eq, rig.qpI, rig.iniAs, rig.queue, 64 * 1024, 4,
                  scfg.lunBytes, 5);
    fio.start();
    rig.eq.runUntilCondition([&] { return fio.completed() >= 200; },
                             60 * sim::kSecond);
    // 25 chunks x 512 KB virtual, but only 64 KB of each touched;
    // resident comm memory is bounded accordingly (plus cache).
    double cache_bytes = rig.tgt.cache().residentFraction() *
                         double(scfg.lunBytes);
    double comm = double(rig.tgt.residentBytes()) - cache_bytes;
    EXPECT_LT(comm, 25 * 80 * 1024.0 + 2 * MiB)
        << "resident comm memory must track touched bytes, not "
           "chunk size";
}

TEST(StorageEdge, TargetKeepsUpWithManyShallowSessions)
{
    StorageConfig scfg;
    scfg.lunBytes = 256 * MiB;
    scfg.pinned = false;
    sim::EventQueue eq;
    net::Fabric fabric(eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200});
    mem::MemoryManager tgtMm(4 * GiB), iniMm(4 * GiB);
    auto &tgtAs = tgtMm.createAddressSpace("tgt");
    auto &iniAs = iniMm.createAddressSpace("fio");
    core::NpfController tnpf(eq), inpf(eq);
    auto tch = tnpf.attach(tgtAs);
    auto ich = inpf.attach(iniAs);
    StorageTarget tgt(eq, tgtAs, scfg);
    std::vector<std::unique_ptr<ib::QueuePair>> qps;
    std::vector<std::unique_ptr<FioClient>> fios;
    for (int s = 0; s < 8; ++s) {
        auto qt = std::make_unique<ib::QueuePair>(eq, fabric, 0, tnpf,
                                                  tch);
        auto qi = std::make_unique<ib::QueuePair>(eq, fabric, 1, inpf,
                                                  ich);
        qt->connect(*qi);
        qi->connect(*qt);
        auto queue = std::make_shared<std::deque<IoRequest>>();
        tgt.addSession(*qt, queue);
        fios.push_back(std::make_unique<FioClient>(
            eq, *qi, iniAs, queue, 64 * 1024, 2, scfg.lunBytes,
            100 + s));
        qps.push_back(std::move(qt));
        qps.push_back(std::move(qi));
    }
    for (auto &f : fios)
        f->start();
    std::uint64_t total = 0;
    bool ok = eq.runUntilCondition(
        [&] {
            total = 0;
            for (auto &f : fios)
                total += f->completed();
            return total >= 800;
        },
        120 * sim::kSecond);
    EXPECT_TRUE(ok);
    // The target may have served IOs whose responses are in flight.
    EXPECT_GE(tgt.iosServed(), total);
}

TEST(MemaslapEdge, SetOnlyAndGetOnlyMixes)
{
    test::EthTestbed tb(eth::RxFaultPolicy::Pin, 256);
    HostModel host;
    host.addInstance();
    KvStore kv(*tb.serverAs, 32 * MiB, 1024);
    MemcachedServer server(tb.eq, kv, host);
    ASSERT_TRUE(tb.connect(1));
    RpcChannel ch(tb.client->connection(1), tb.server->connection(1));
    server.serve(ch);

    MemaslapConfig cfg;
    cfg.getRatio = 0.0; // set-only
    cfg.keys = 100;
    Memaslap slap(tb.eq, {&ch}, cfg, 3);
    slap.start();
    tb.eq.runUntilCondition([&] { return slap.transactions() >= 500; },
                            60 * sim::kSecond);
    EXPECT_GE(slap.transactions(), 500u);
    EXPECT_EQ(kv.items(), 100u) << "every key was set";
    // All sets: hit counter reflects overwrites, not gets.
    EXPECT_EQ(kv.hits(), 0u) << "gets never ran";
}
