/**
 * @file
 * The pre-ladder binary-heap event engine, retained verbatim as a
 * differential-test oracle and microbenchmark baseline.
 *
 * This is the exact implementation sim::EventQueue shipped with
 * before the timer-wheel rewrite — std::priority_queue of
 * std::function entries plus live_/cancelled_ unordered_sets — with
 * only the two *semantic* fixes that PR also made (saturating
 * scheduleAfter, runUntilCondition deadline clamp) applied, so the
 * randomized differential test in engine_oracle_test.cc can demand
 * bit-identical execution order, timestamps, and final Stats from
 * both engines. Do not "optimize" this file: its value is being the
 * slow, obviously-correct reference.
 */

#ifndef NPF_TESTS_HEAP_EVENT_QUEUE_HH
#define NPF_TESTS_HEAP_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace npf::simtest {

using sim::Time;

class HeapEventQueue
{
  public:
    using EventId = std::uint64_t;
    static constexpr EventId kInvalidEvent = 0;
    using Callback = std::function<void()>;

    struct Stats
    {
        std::uint64_t scheduled = 0;
        std::uint64_t executed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t cancelledReaped = 0;
    };

    using ExecuteHook =
        std::function<void(Time now, EventId id, const char *site)>;

    HeapEventQueue() = default;
    HeapEventQueue(const HeapEventQueue &) = delete;
    HeapEventQueue &operator=(const HeapEventQueue &) = delete;

    Time now() const { return now_; }

    EventId
    schedule(Time when, Callback cb, const char *site = nullptr)
    {
        if (when < now_)
            when = now_;
        EventId id = nextId_++;
        heap_.push(Entry{when, id, std::move(cb), site});
        live_.insert(id);
        ++stats_.scheduled;
        return id;
    }

    EventId
    scheduleAfter(Time delay, Callback cb, const char *site = nullptr)
    {
        return schedule(sim::saturatingAdd(now_, delay), std::move(cb),
                        site);
    }

    void
    cancel(EventId id)
    {
        if (id == kInvalidEvent || live_.find(id) == live_.end())
            return;
        if (cancelled_.insert(id).second)
            ++stats_.cancelled;
    }

    std::size_t pending() const { return heap_.size(); }
    std::size_t live() const { return heap_.size() - cancelled_.size(); }
    bool empty() const { return heap_.empty(); }
    const Stats &stats() const { return stats_; }

    void setExecuteHook(ExecuteHook hook) { hook_ = std::move(hook); }

    bool
    step()
    {
        reapCancelledTop();
        if (heap_.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        live_.erase(e.id);
        now_ = e.when;
        ++stats_.executed;
        e.cb();
        if (hook_)
            hook_(now_, e.id, e.site);
        return true;
    }

    void
    runUntil(Time until)
    {
        for (;;) {
            reapCancelledTop();
            if (heap_.empty() || heap_.top().when > until)
                break;
            if (!step())
                break;
        }
        if (now_ < until)
            now_ = until;
    }

    void
    run()
    {
        while (step()) {
        }
    }

    bool
    runUntilCondition(const std::function<bool()> &predicate, Time deadline)
    {
        if (predicate())
            return true;
        for (;;) {
            reapCancelledTop();
            if (heap_.empty() || heap_.top().when > deadline)
                break;
            if (!step())
                break;
            if (predicate())
                return true;
        }
        if (predicate())
            return true;
        if (now_ < deadline)
            now_ = deadline;
        return false;
    }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        Callback cb;
        const char *site = nullptr;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    void
    reapCancelledTop()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                return;
            live_.erase(heap_.top().id);
            cancelled_.erase(it);
            ++stats_.cancelledReaped;
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> live_;
    std::unordered_set<EventId> cancelled_;
    Time now_ = 0;
    EventId nextId_ = 1;
    Stats stats_;
    ExecuteHook hook_;
};

} // namespace npf::simtest

#endif // NPF_TESTS_HEAP_EVENT_QUEUE_HH
