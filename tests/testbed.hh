/**
 * @file
 * Shared fixtures: a two-host Ethernet testbed (client with a
 * standard pinned stack, server with a direct channel under a
 * selectable fault policy), mirroring the paper's §6 Ethernet setup.
 */

#ifndef NPF_TESTS_TESTBED_HH
#define NPF_TESTS_TESTBED_HH

#include <memory>
#include <sstream>
#include <string>

#include "core/npf_controller.hh"
#include "eth/eth_nic.hh"
#include "mem/memory_manager.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "tcp/endpoint.hh"

namespace npf::test {

/** Two back-to-back hosts connected by Ethernet NICs. */
struct EthTestbed
{
    sim::EventQueue eq;
    std::unique_ptr<mem::MemoryManager> serverMm;
    std::unique_ptr<mem::MemoryManager> clientMm;
    mem::AddressSpace *serverAs = nullptr;
    mem::AddressSpace *clientAs = nullptr;
    std::unique_ptr<core::NpfController> serverNpfc;
    std::unique_ptr<core::NpfController> clientNpfc;
    std::unique_ptr<eth::EthNic> serverNic;
    std::unique_ptr<eth::EthNic> clientNic;
    std::unique_ptr<tcp::Endpoint> server;
    std::unique_ptr<tcp::Endpoint> client;

    /**
     * @param policy server-side receive fault policy.
     * @param ring_size server receive-ring entries.
     * @param server_mem_bytes server host physical memory.
     * @param link_bw link speed in bits/second (the paper's §5
     *   prototype models a 12 Gb/s NIC).
     */
    explicit EthTestbed(eth::RxFaultPolicy policy,
                        std::size_t ring_size = 64,
                        std::size_t server_mem_bytes = 1ull << 30,
                        double link_bw = 12e9)
    {
        serverMm = std::make_unique<mem::MemoryManager>(server_mem_bytes);
        clientMm = std::make_unique<mem::MemoryManager>(1ull << 30);
        serverAs = &serverMm->createAddressSpace("server");
        clientAs = &clientMm->createAddressSpace("client");
        serverNpfc = std::make_unique<core::NpfController>(eq);
        clientNpfc = std::make_unique<core::NpfController>(eq);
        auto server_ch = serverNpfc->attach(*serverAs);
        auto client_ch = clientNpfc->attach(*clientAs);

        serverNic = std::make_unique<eth::EthNic>(eq, *serverNpfc);
        clientNic = std::make_unique<eth::EthNic>(eq, *clientNpfc);
        net::LinkConfig link;
        link.bandwidthBitsPerSec = link_bw;
        link.propagation = 1000; // 1 us back-to-back
        serverNic->connectTo(*clientNic, link);
        clientNic->connectTo(*serverNic, link);

        eth::RxRingConfig srv_ring;
        srv_ring.size = ring_size;
        srv_ring.bmSize = std::min<std::size_t>(64, ring_size);
        srv_ring.policy = policy;

        eth::RxRingConfig cli_ring;
        cli_ring.size = 512;
        cli_ring.policy = eth::RxFaultPolicy::Pin;

        tcp::EndpointConfig srv_cfg;
        srv_cfg.pinRxBuffers = policy == eth::RxFaultPolicy::Pin;
        tcp::EndpointConfig cli_cfg;
        cli_cfg.pinRxBuffers = true;
        // lwIP-era stacks run small windows; also keeps TCP itself
        // from overrunning a 64-entry ring (which would conflate
        // ring overflow with rNPF loss).
        srv_cfg.tcp.maxWindowBytes = 64 * 1024;
        cli_cfg.tcp.maxWindowBytes = 64 * 1024;

        // Ring 0 on each NIC; each endpoint addresses the peer's 0.
        server = std::make_unique<tcp::Endpoint>(
            eq, *serverNic, *serverAs, server_ch, srv_ring, 0, srv_cfg);
        client = std::make_unique<tcp::Endpoint>(
            eq, *clientNic, *clientAs, client_ch, cli_ring, 0, cli_cfg);
    }

    /** Establish connection @p id (client actively opens). */
    bool
    connect(std::uint32_t id, sim::Time deadline = 120 * sim::kSecond)
    {
        tcp::TcpConnection &srv = server->connection(id);
        tcp::TcpConnection &cli = client->connection(id);
        srv.listen();
        bool done = false, ok = false;
        cli.connect([&](bool success) {
            done = true;
            ok = success;
        });
        eq.runUntilCondition([&] { return done; }, eq.now() + deadline);
        return ok && cli.established();
    }

    /**
     * JSON snapshot of every registered metric — the testbed's
     * components (NICs, NPF controllers, memory managers, TCP
     * connections) all register into the global registry, so tests
     * can assert on cross-layer counters without plumbing Stats
     * structs around.
     */
    std::string
    metricsJson() const
    {
        std::ostringstream os;
        obs::Registry::global().writeJson(os);
        return os.str();
    }
};

} // namespace npf::test

#endif // NPF_TESTS_TESTBED_HH
