/**
 * @file
 * Unit tests for the virtual-memory substrate: frame allocation,
 * demand paging, reclaim (clock / second chance / pinning), cgroup
 * limits, swap round trips, MMU notifiers, and the page cache.
 */

#include <gtest/gtest.h>

#include "mem/memory_manager.hh"
#include "mem/page_cache.hh"
#include "mem/physical_memory.hh"

using namespace npf;
using namespace npf::mem;

namespace {

constexpr std::size_t MiB = 1ull << 20;

} // namespace

TEST(PhysicalMemory, AllocateAndRelease)
{
    PhysicalMemory pm(16 * kPageSize);
    EXPECT_EQ(pm.totalFrames(), 16u);
    auto f = pm.allocate(nullptr, 1);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(pm.freeFrames(), 15u);
    pm.release(*f);
    EXPECT_EQ(pm.freeFrames(), 16u);
}

TEST(PhysicalMemory, ExhaustionReturnsNullopt)
{
    PhysicalMemory pm(2 * kPageSize);
    EXPECT_TRUE(pm.allocate(nullptr, 0).has_value());
    EXPECT_TRUE(pm.allocate(nullptr, 1).has_value());
    EXPECT_FALSE(pm.allocate(nullptr, 2).has_value());
}

TEST(PageMath, Helpers)
{
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(addrOf(2), 8192u);
    EXPECT_EQ(pagesCovering(0, 1), 1u);
    EXPECT_EQ(pagesCovering(4095, 2), 2u);
    EXPECT_EQ(pagesCovering(0, 4096), 1u);
    EXPECT_EQ(pagesCovering(100, 0), 0u);
    EXPECT_EQ(pagesFor(1), 1u);
    EXPECT_EQ(pagesFor(4097), 2u);
}

TEST(AddressSpace, DelayedAllocation)
{
    MemoryManager mm(64 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(10 * MiB);
    EXPECT_EQ(as.residentPages(), 0u) << "delayed allocation";
    AccessResult res = as.touch(r, 3 * kPageSize, true);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.minorFaults, 3u);
    EXPECT_EQ(as.residentPages(), 3u);
    // Second touch: no faults.
    res = as.touch(r, 3 * kPageSize, false);
    EXPECT_EQ(res.minorFaults, 0u);
    EXPECT_EQ(res.cost, 0u);
}

TEST(AddressSpace, RegionsDoNotOverlap)
{
    MemoryManager mm(64 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr a = as.allocRegion(MiB);
    VirtAddr b = as.allocRegion(MiB);
    EXPECT_GE(b, a + MiB);
}

TEST(AddressSpace, FreeRegionReleasesFrames)
{
    MemoryManager mm(64 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(MiB);
    as.touch(r, MiB, true);
    std::size_t used = mm.physical().usedFrames();
    EXPECT_EQ(used, MiB / kPageSize);
    as.freeRegion(r);
    EXPECT_EQ(mm.physical().usedFrames(), 0u);
    EXPECT_EQ(as.residentPages(), 0u);
}

TEST(MemoryManager, ReclaimEvictsUnderPressure)
{
    MemoryManager mm(8 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(32 * MiB);
    AccessResult res = as.touch(r, 16 * MiB, true);
    EXPECT_TRUE(res.ok) << "overcommit must succeed via reclaim";
    EXPECT_GT(mm.stats().evictions, 0u);
    EXPECT_LE(as.residentPages(), 8 * MiB / kPageSize);
}

TEST(MemoryManager, SwapRoundTripIsMajorFault)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(16 * MiB);
    // Dirty everything; most of it must go to swap.
    as.touch(r, 12 * MiB, true);
    EXPECT_GT(mm.stats().swapOuts, 0u);
    // Touch the beginning again: it was evicted, so it must come
    // back from swap as a major fault.
    AccessResult res = as.touch(r, kPageSize, false);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.majorFaults, 1u);
    EXPECT_GE(res.cost, mm.swap().readLatency(1));
}

TEST(MemoryManager, CleanPagesDropWithoutSwap)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(16 * MiB, "file", /*file_backed=*/true);
    as.touch(r, 12 * MiB, false); // clean, file-backed
    EXPECT_EQ(mm.stats().swapOuts, 0u);
    EXPECT_GT(mm.stats().evictions, 0u);
}

TEST(MemoryManager, PinnedPagesAreNeverEvicted)
{
    MemoryManager mm(8 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr pinned = as.allocRegion(2 * MiB);
    ASSERT_TRUE(as.pinRange(pinned, 2 * MiB).ok);

    VirtAddr churn = as.allocRegion(64 * MiB);
    as.touch(churn, 32 * MiB, true); // heavy pressure

    // Every pinned page must still be resident.
    for (Vpn v = pageOf(pinned); v < pageOf(pinned) + 2 * MiB / kPageSize;
         ++v) {
        EXPECT_TRUE(as.isPresent(v));
    }
    EXPECT_EQ(as.pinnedPages(), 2 * MiB / kPageSize);
}

TEST(MemoryManager, PinFailsWhenEverythingIsPinned)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(64 * MiB);
    AccessResult res = as.pinRange(r, 16 * MiB);
    EXPECT_FALSE(res.ok) << "cannot pin more than physical memory";
    // Roll-back: no pins left behind.
    EXPECT_EQ(as.pinnedPages(), 0u);
    EXPECT_EQ(mm.pinnedPages(), 0u);
}

TEST(MemoryManager, PinnableLimitEnforced)
{
    MemCostConfig costs;
    costs.maxPinnableBytes = 1 * MiB;
    MemoryManager mm(64 * MiB, costs);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(4 * MiB);
    EXPECT_FALSE(as.pinRange(r, 2 * MiB).ok);
    EXPECT_TRUE(as.pinRange(r, MiB).ok);
}

TEST(MemoryManager, UnpinMakesPagesEvictable)
{
    MemoryManager mm(8 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr r = as.allocRegion(4 * MiB);
    ASSERT_TRUE(as.pinRange(r, 4 * MiB).ok);
    as.unpinRange(r, 4 * MiB);
    EXPECT_EQ(as.pinnedPages(), 0u);
    VirtAddr churn = as.allocRegion(64 * MiB);
    EXPECT_TRUE(as.touch(churn, 16 * MiB, true).ok);
}

TEST(MemoryManager, CgroupLimitConstrainsResidency)
{
    MemoryManager mm(64 * MiB);
    mm.createCgroup("tenant", 4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a", "tenant");
    VirtAddr r = as.allocRegion(32 * MiB);
    EXPECT_TRUE(as.touch(r, 16 * MiB, true).ok);
    EXPECT_LE(as.residentPages(), 4 * MiB / kPageSize);
    // Plenty of global memory is still free.
    EXPECT_GT(mm.physical().freeFrames(),
              32 * MiB / kPageSize);
}

TEST(MemoryManager, CgroupsIsolateTenants)
{
    MemoryManager mm(64 * MiB);
    mm.createCgroup("t1", 8 * MiB);
    mm.createCgroup("t2", 8 * MiB);
    AddressSpace &a = mm.createAddressSpace("a", "t1");
    AddressSpace &b = mm.createAddressSpace("b", "t2");
    VirtAddr ra = a.allocRegion(8 * MiB);
    a.touch(ra, 8 * MiB, true);
    std::size_t a_resident = a.residentPages();
    // Tenant 2 churns hard; tenant 1's residency must not change.
    VirtAddr rb = b.allocRegion(64 * MiB);
    b.touch(rb, 32 * MiB, true);
    EXPECT_EQ(a.residentPages(), a_resident);
}

TEST(MemoryManager, SecondChancePrefersColdPages)
{
    MemoryManager mm(8 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    VirtAddr hot = as.allocRegion(1 * MiB);
    VirtAddr cold = as.allocRegion(4 * MiB);
    as.touch(hot, MiB, true);
    as.touch(cold, 4 * MiB, true);
    // Keep the hot region referenced while provoking eviction.
    VirtAddr churn = as.allocRegion(32 * MiB);
    for (int round = 0; round < 8; ++round) {
        as.touch(hot, MiB, false);
        as.touch(churn + std::uint64_t(round) * 2 * MiB, 2 * MiB, true);
    }
    std::size_t hot_resident = 0;
    for (Vpn v = pageOf(hot); v < pageOf(hot) + MiB / kPageSize; ++v)
        hot_resident += as.isPresent(v) ? 1 : 0;
    std::size_t cold_resident = 0;
    for (Vpn v = pageOf(cold); v < pageOf(cold) + 4 * MiB / kPageSize; ++v)
        cold_resident += as.isPresent(v) ? 1 : 0;
    EXPECT_GT(hot_resident, (MiB / kPageSize) / 2)
        << "referenced pages should survive the clock";
}

TEST(MemoryManager, InvalidateNotifierFiresOnEviction)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    int notified = 0;
    as.registerInvalidateNotifier([&](Vpn) -> sim::Time {
        ++notified;
        return 100;
    });
    VirtAddr r = as.allocRegion(16 * MiB);
    as.touch(r, 8 * MiB, true);
    EXPECT_GT(notified, 0);
    EXPECT_EQ(std::uint64_t(notified), mm.stats().evictions);
}

TEST(MemoryManager, OomWhenEverythingPinnedReportsFailure)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("a");
    // Pin memory in small chunks until the pin path itself fails, so
    // that (almost) every frame is pinned.
    VirtAddr r = as.allocRegion(8 * MiB);
    std::size_t chunk = 64 * 1024;
    VirtAddr next = r;
    while (as.pinRange(next, chunk).ok)
        next += chunk;
    // The failing pin is the true OOM: nothing was evictable while
    // it tried to fault its pages in.
    EXPECT_GT(mm.stats().oomFailures, 0u);
    // An unpinned touch, by contrast, still succeeds — it thrashes
    // by evicting its own earlier pages, exactly like a real kernel.
    VirtAddr r2 = as.allocRegion(4 * MiB);
    AccessResult res = as.touch(r2, 1 * MiB, true);
    EXPECT_TRUE(res.ok);
    EXPECT_GT(mm.stats().evictions, 0u);
}

TEST(BackingStore, LatencyScalesWithSize)
{
    BackingStore bs;
    EXPECT_GT(bs.readLatency(1), 0u);
    EXPECT_GT(bs.readLatency(100), bs.readLatency(1));
    EXPECT_EQ(bs.pagesWritten(), 0u);
    bs.storePage();
    EXPECT_EQ(bs.pagesWritten(), 1u);
}

TEST(PageCache, HitsAfterMiss)
{
    MemoryManager mm(64 * MiB);
    AddressSpace &as = mm.createAddressSpace("tgt");
    int disk_reads = 0;
    PageCache cache(as, 16 * MiB, [&](std::uint64_t, std::size_t) {
        ++disk_reads;
        return sim::Time(5 * sim::kMillisecond);
    });
    sim::Time t1 = cache.access(0, 512 * 1024);
    EXPECT_GE(t1, 5 * sim::kMillisecond);
    EXPECT_EQ(disk_reads, 1);
    sim::Time t2 = cache.access(0, 512 * 1024);
    EXPECT_EQ(t2, 0u);
    EXPECT_EQ(disk_reads, 1);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, EvictedBlocksMissAgain)
{
    MemoryManager mm(4 * MiB);
    AddressSpace &as = mm.createAddressSpace("tgt");
    int disk_reads = 0;
    PageCache cache(as, 32 * MiB, [&](std::uint64_t, std::size_t) {
        ++disk_reads;
        return sim::Time(sim::kMillisecond);
    });
    // Stream through the whole file: later blocks evict earlier ones.
    for (std::uint64_t off = 0; off < 32 * MiB; off += 512 * 1024)
        cache.access(off, 512 * 1024);
    int before = disk_reads;
    cache.access(0, 512 * 1024);
    EXPECT_EQ(disk_reads, before + 1) << "block 0 was evicted";
}
