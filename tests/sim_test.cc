/**
 * @file
 * Unit tests for the discrete-event core: queue ordering, time
 * semantics, cancellation, statistics containers, RNG determinism.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/series.hh"

using namespace npf;

TEST(EventQueue, StartsAtZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    sim::EventQueue eq;
    sim::Time seen = 12345;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    sim::EventQueue eq;
    bool ran = false;
    sim::EventId id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun)
{
    sim::EventQueue eq;
    int runs = 0;
    sim::EventId id = eq.schedule(10, [&] { ++runs; });
    eq.run();
    eq.cancel(id); // already ran: no-op
    eq.cancel(id);
    eq.schedule(20, [&] { ++runs; });
    eq.run();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    sim::EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAfter(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilConditionStopsEarly)
{
    sim::EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(sim::Time(i), [&] { ++count; });
    bool ok = eq.runUntilCondition([&] { return count == 4; },
                                   1000);
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(Time, Conversions)
{
    EXPECT_EQ(sim::fromMicroseconds(1.0), sim::kMicrosecond);
    EXPECT_EQ(sim::fromSeconds(1.0), sim::kSecond);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::kSecond), 1.0);
    EXPECT_DOUBLE_EQ(sim::toMicroseconds(1500), 1.5);
}

TEST(Histogram, PercentilesNearestRank)
{
    sim::Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe)
{
    sim::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, RecordAfterQueryStaysSorted)
{
    sim::Histogram h;
    h.record(5);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    h.record(1);
    h.record(9);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(RateSeries, BucketsAndRates)
{
    sim::RateSeries s(sim::kSecond);
    s.record(0);
    s.record(sim::kSecond / 2);
    s.record(3 * sim::kSecond + 1);
    EXPECT_EQ(s.buckets(), 4u);
    EXPECT_DOUBLE_EQ(s.rate(0), 2.0);
    EXPECT_DOUBLE_EQ(s.rate(1), 0.0);
    EXPECT_DOUBLE_EQ(s.rate(3), 1.0);
    EXPECT_DOUBLE_EQ(s.total(), 3.0);
}

TEST(EventQueue, CancelOfExecutedIdDoesNotLeak)
{
    // Regression: cancelling an id that already ran used to park the
    // id in the cancelled set forever (nothing ever reaped it), so
    // long retransmit-timer workloads leaked memory and live() went
    // wrong. Executed ids must be ignored outright.
    sim::EventQueue eq;
    for (int i = 0; i < 1000; ++i) {
        sim::EventId id = eq.schedule(eq.now() + 1, [] {});
        eq.run();
        eq.cancel(id); // already executed: must be a no-op
    }
    EXPECT_EQ(eq.stats().cancelled, 0u);
    EXPECT_EQ(eq.stats().cancelledReaped, 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.live(), 0u);
}

TEST(EventQueue, PendingCountsCancelledLiveDoesNot)
{
    sim::EventQueue eq;
    sim::EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.live(), 3u);
    eq.cancel(a);
    // The entry is still in the heap (pending) but will never run
    // (not live).
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.live(), 2u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.stats().executed, 2u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
    EXPECT_EQ(eq.live(), 0u);
}

TEST(EventQueue, RunUntilReapsCancelledTop)
{
    // Regression: a cancelled event at the top of the heap must not
    // make runUntil() believe the next live event is inside the
    // window.
    sim::EventQueue eq;
    bool b_ran = false;
    sim::EventId a = eq.schedule(5, [] {});
    eq.schedule(100, [&] { b_ran = true; });
    eq.cancel(a);
    eq.runUntil(10);
    EXPECT_FALSE(b_ran);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
    eq.run();
    EXPECT_TRUE(b_ran);
}

TEST(EventQueue, DoubleCancelCountsOnce)
{
    sim::EventQueue eq;
    sim::EventId id = eq.schedule(10, [] {});
    eq.cancel(id);
    eq.cancel(id);
    EXPECT_EQ(eq.stats().cancelled, 1u);
    eq.run();
    EXPECT_EQ(eq.stats().executed, 0u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
}

TEST(EventQueue, ExecuteHookSeesSiteLabels)
{
    sim::EventQueue eq;
    std::map<std::string, int> sites;
    int unlabeled = 0;
    eq.setExecuteHook(
        [&](sim::Time, sim::EventId, const char *site) {
            if (site)
                ++sites[site];
            else
                ++unlabeled;
        });
    eq.schedule(1, [] {}, "tx");
    eq.schedule(2, [] {}, "tx");
    eq.schedule(3, [] {}, "rx");
    eq.schedule(4, [] {});
    eq.run();
    EXPECT_EQ(sites["tx"], 2);
    EXPECT_EQ(sites["rx"], 1);
    EXPECT_EQ(unlabeled, 1);
    eq.setExecuteHook(nullptr); // clearing must be safe
    eq.schedule(5, [] {});
    eq.run();
    EXPECT_EQ(unlabeled, 1);
}

TEST(Histogram, ClearResets)
{
    sim::Histogram h;
    h.record(3);
    h.record(7);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(4);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, StddevAndExtremePercentiles)
{
    sim::Histogram h;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 2.0); // classic textbook set
    EXPECT_DOUBLE_EQ(h.percentile(0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(250), 9.0);
}

TEST(RateSeries, OutOfRangeAndWeightedCounts)
{
    sim::RateSeries s(sim::kMillisecond);
    s.record(0, 5.0);
    s.record(2 * sim::kMillisecond + 1, 2.5);
    EXPECT_EQ(s.buckets(), 3u);
    EXPECT_DOUBLE_EQ(s.count(0), 5.0);
    EXPECT_DOUBLE_EQ(s.count(1), 0.0);
    EXPECT_DOUBLE_EQ(s.count(2), 2.5);
    EXPECT_DOUBLE_EQ(s.count(99), 0.0); // beyond range: 0, no grow
    EXPECT_DOUBLE_EQ(s.rate(99), 0.0);
    EXPECT_EQ(s.buckets(), 3u);
    EXPECT_EQ(s.bucketStart(2), 2 * sim::kMillisecond);
    EXPECT_DOUBLE_EQ(s.total(), 7.5);
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, BernoulliEdges)
{
    sim::Rng r(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, UniformIntBounds)
{
    sim::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, LognormalJitterMedianNearOne)
{
    sim::Rng r(11);
    double sum_log = 0;
    for (int i = 0; i < 20000; ++i)
        sum_log += std::log(r.lognormalJitter(0.1));
    EXPECT_NEAR(sum_log / 20000, 0.0, 0.01);
}
