/**
 * @file
 * Unit tests for the discrete-event core: queue ordering, time
 * semantics, cancellation, statistics containers, RNG determinism.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/delegate.hh"
#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/series.hh"

using namespace npf;

TEST(EventQueue, StartsAtZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    sim::EventQueue eq;
    sim::Time seen = 12345;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    sim::EventQueue eq;
    bool ran = false;
    sim::EventId id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun)
{
    sim::EventQueue eq;
    int runs = 0;
    sim::EventId id = eq.schedule(10, [&] { ++runs; });
    eq.run();
    eq.cancel(id); // already ran: no-op
    eq.cancel(id);
    eq.schedule(20, [&] { ++runs; });
    eq.run();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    sim::EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAfter(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilConditionStopsEarly)
{
    sim::EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(sim::Time(i), [&] { ++count; });
    bool ok = eq.runUntilCondition([&] { return count == 4; },
                                   1000);
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(Time, Conversions)
{
    EXPECT_EQ(sim::fromMicroseconds(1.0), sim::kMicrosecond);
    EXPECT_EQ(sim::fromSeconds(1.0), sim::kSecond);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::kSecond), 1.0);
    EXPECT_DOUBLE_EQ(sim::toMicroseconds(1500), 1.5);
}

TEST(Histogram, PercentilesNearestRank)
{
    sim::Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe)
{
    sim::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, RecordAfterQueryStaysSorted)
{
    sim::Histogram h;
    h.record(5);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    h.record(1);
    h.record(9);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(RateSeries, BucketsAndRates)
{
    sim::RateSeries s(sim::kSecond);
    s.record(0);
    s.record(sim::kSecond / 2);
    s.record(3 * sim::kSecond + 1);
    EXPECT_EQ(s.buckets(), 4u);
    EXPECT_DOUBLE_EQ(s.rate(0), 2.0);
    EXPECT_DOUBLE_EQ(s.rate(1), 0.0);
    EXPECT_DOUBLE_EQ(s.rate(3), 1.0);
    EXPECT_DOUBLE_EQ(s.total(), 3.0);
}

TEST(EventQueue, CancelOfExecutedIdDoesNotLeak)
{
    // Regression: cancelling an id that already ran used to park the
    // id in the cancelled set forever (nothing ever reaped it), so
    // long retransmit-timer workloads leaked memory and live() went
    // wrong. Executed ids must be ignored outright.
    sim::EventQueue eq;
    for (int i = 0; i < 1000; ++i) {
        sim::EventId id = eq.schedule(eq.now() + 1, [] {});
        eq.run();
        eq.cancel(id); // already executed: must be a no-op
    }
    EXPECT_EQ(eq.stats().cancelled, 0u);
    EXPECT_EQ(eq.stats().cancelledReaped, 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.live(), 0u);
}

TEST(EventQueue, CancelReclaimsEntryImmediately)
{
    // The ladder engine unlinks a cancelled entry in O(1) and recycles
    // its slot on the spot, so pending() tracks live() exactly (the
    // old heap engine kept cancelled entries queued until they
    // bubbled to the top).
    sim::EventQueue eq;
    sim::EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.schedule(30, [] {});
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_EQ(eq.live(), 3u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.live(), 2u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.stats().executed, 2u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
    EXPECT_EQ(eq.live(), 0u);
}

TEST(EventQueue, RunUntilReapsCancelledTop)
{
    // Regression: a cancelled event at the top of the heap must not
    // make runUntil() believe the next live event is inside the
    // window.
    sim::EventQueue eq;
    bool b_ran = false;
    sim::EventId a = eq.schedule(5, [] {});
    eq.schedule(100, [&] { b_ran = true; });
    eq.cancel(a);
    eq.runUntil(10);
    EXPECT_FALSE(b_ran);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
    eq.run();
    EXPECT_TRUE(b_ran);
}

TEST(EventQueue, DoubleCancelCountsOnce)
{
    sim::EventQueue eq;
    sim::EventId id = eq.schedule(10, [] {});
    eq.cancel(id);
    eq.cancel(id);
    EXPECT_EQ(eq.stats().cancelled, 1u);
    eq.run();
    EXPECT_EQ(eq.stats().executed, 0u);
    EXPECT_EQ(eq.stats().cancelledReaped, 1u);
}

TEST(EventQueue, ExecuteHookSeesSiteLabels)
{
    sim::EventQueue eq;
    std::map<std::string, int> sites;
    int unlabeled = 0;
    eq.setExecuteHook(
        [&](sim::Time, sim::EventId, const char *site) {
            if (site)
                ++sites[site];
            else
                ++unlabeled;
        });
    eq.schedule(1, [] {}, "tx");
    eq.schedule(2, [] {}, "tx");
    eq.schedule(3, [] {}, "rx");
    eq.schedule(4, [] {});
    eq.run();
    EXPECT_EQ(sites["tx"], 2);
    EXPECT_EQ(sites["rx"], 1);
    EXPECT_EQ(unlabeled, 1);
    eq.setExecuteHook(nullptr); // clearing must be safe
    eq.schedule(5, [] {});
    eq.run();
    EXPECT_EQ(unlabeled, 1);
}

TEST(Histogram, ClearResets)
{
    sim::Histogram h;
    h.record(3);
    h.record(7);
    h.clear();
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(4);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, StddevAndExtremePercentiles)
{
    sim::Histogram h;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 2.0); // classic textbook set
    EXPECT_DOUBLE_EQ(h.percentile(0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(250), 9.0);
}

TEST(RateSeries, OutOfRangeAndWeightedCounts)
{
    sim::RateSeries s(sim::kMillisecond);
    s.record(0, 5.0);
    s.record(2 * sim::kMillisecond + 1, 2.5);
    EXPECT_EQ(s.buckets(), 3u);
    EXPECT_DOUBLE_EQ(s.count(0), 5.0);
    EXPECT_DOUBLE_EQ(s.count(1), 0.0);
    EXPECT_DOUBLE_EQ(s.count(2), 2.5);
    EXPECT_DOUBLE_EQ(s.count(99), 0.0); // beyond range: 0, no grow
    EXPECT_DOUBLE_EQ(s.rate(99), 0.0);
    EXPECT_EQ(s.buckets(), 3u);
    EXPECT_EQ(s.bucketStart(2), 2 * sim::kMillisecond);
    EXPECT_DOUBLE_EQ(s.total(), 7.5);
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, BernoulliEdges)
{
    sim::Rng r(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, UniformIntBounds)
{
    sim::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(EventQueue, ScheduleAfterSaturatesAtEndOfTime)
{
    // Regression: now_ + delay on unsigned Time wrapped for "never"
    // sentinel delays (e.g. ~0ull), got clamped to now(), and fired
    // immediately. The sum must saturate at kTimeMax instead.
    sim::EventQueue eq;
    bool never_fired = false;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    eq.scheduleAfter(sim::kTimeMax, [&] { never_fired = true; });
    eq.scheduleAfter(sim::kTimeMax - 50, [&] { never_fired = true; });
    eq.runUntil(1000 * sim::kSecond);
    EXPECT_FALSE(never_fired) << "a sentinel delay wrapped and fired";
    EXPECT_EQ(eq.now(), 1000 * sim::kSecond);
    // The sentinels still exist at the far horizon; a full drain
    // executes them at the end of time, not before.
    eq.run();
    EXPECT_TRUE(never_fired);
    EXPECT_EQ(eq.now(), sim::kTimeMax);
}

TEST(Time, SaturatingAdd)
{
    EXPECT_EQ(sim::saturatingAdd(0, 5), 5u);
    EXPECT_EQ(sim::saturatingAdd(10, sim::kTimeMax - 10), sim::kTimeMax);
    EXPECT_EQ(sim::saturatingAdd(11, sim::kTimeMax - 10), sim::kTimeMax);
    EXPECT_EQ(sim::saturatingAdd(sim::kTimeMax, sim::kTimeMax),
              sim::kTimeMax);
}

TEST(EventQueue, RunUntilConditionClampsClockLikeRunUntil)
{
    // Regression: runUntilCondition() returned without advancing
    // now() to the deadline when the predicate never fired, so a
    // caller alternating it with runUntil() saw a stalled clock and
    // re-ran already-elapsed windows.
    sim::EventQueue eq;
    int count = 0;
    eq.schedule(5, [&] { ++count; });
    bool ok = eq.runUntilCondition([&] { return count >= 2; }, 100);
    EXPECT_FALSE(ok);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 100u) << "failed wait must clamp like runUntil";

    // Mixed-call sequence: each window advances the clock exactly
    // once; no window is observed twice.
    eq.schedule(150, [&] { ++count; });
    eq.runUntil(200);
    EXPECT_EQ(eq.now(), 200u);
    ok = eq.runUntilCondition([&] { return false; }, 300);
    EXPECT_FALSE(ok);
    EXPECT_EQ(eq.now(), 300u);
    eq.runUntil(400);
    EXPECT_EQ(eq.now(), 400u);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilConditionDoesNotClampOnSuccess)
{
    sim::EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 5; ++i)
        eq.schedule(sim::Time(i * 10), [&] { ++count; });
    bool ok = eq.runUntilCondition([&] { return count == 2; }, 1000);
    EXPECT_TRUE(ok);
    EXPECT_EQ(eq.now(), 20u) << "success stops at the satisfying event";
    // An immediately-true predicate runs nothing and moves nothing.
    ok = eq.runUntilCondition([] { return true; }, 500);
    EXPECT_TRUE(ok);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CallbackClearingHookIsHonouredSameStep)
{
    // A callback that tears down the obs::Session mid-run (the PR-1
    // UAF family) clears the hook and frees the state it captured;
    // the engine must re-read the hook after the callback and not
    // call into the freed state. ASan (tier 2) catches a violation.
    struct HookState
    {
        int hits = 0;
    };
    sim::EventQueue eq;
    auto *state = new HookState;
    eq.setExecuteHook(
        [state](sim::Time, sim::EventId, const char *) { ++state->hits; });
    bool after_ran = false;
    eq.schedule(10, [&] {
        eq.setExecuteHook(nullptr);
        delete state; // hook must never fire for this or later events
    });
    eq.schedule(20, [&] { after_ran = true; });
    eq.run();
    EXPECT_TRUE(after_ran);
}

TEST(EventQueue, CallbackInstallingHookSeesItSameStep)
{
    // The flip side of the re-read contract: a hook installed from
    // inside a callback fires for that very event.
    sim::EventQueue eq;
    int hits = 0;
    eq.schedule(10, [&] {
        eq.setExecuteHook(
            [&](sim::Time, sim::EventId, const char *) { ++hits; });
    });
    eq.schedule(20, [] {});
    eq.run();
    EXPECT_EQ(hits, 2) << "installing event and the one after";
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsRejected)
{
    // Generation stamps: cancelling a stale handle whose slab slot
    // was recycled must not touch the new occupant.
    sim::EventQueue eq;
    bool first = false, second = false;
    sim::EventId a = eq.schedule(10, [&] { first = true; });
    eq.cancel(a); // frees the slot
    sim::EventId b = eq.schedule(20, [&] { second = true; });
    EXPECT_NE(a, b);
    eq.cancel(a); // stale: same slot, older generation
    eq.run();
    EXPECT_FALSE(first);
    EXPECT_TRUE(second);
    EXPECT_EQ(eq.stats().cancelled, 1u);
    EXPECT_EQ(eq.stats().executed, 1u);
}

TEST(EventQueue, WheelLevelsExecuteInOrderAcrossHugeSpans)
{
    // One event per wheel level plus the overflow list: nanoseconds
    // apart through hours and days apart, scheduled out of order.
    sim::EventQueue eq;
    std::vector<sim::Time> fired;
    const sim::Time whens[] = {
        3,                       // imminent window
        500,                     // level 0
        40 * sim::kMicrosecond,  // level 1
        9 * sim::kMillisecond,   // level 2
        3 * sim::kSecond,        // level 3
        20 * 60 * sim::kSecond,       // level 4
        40 * 3600 * sim::kSecond,     // level 5 (hours)
        300ull * 86400 * sim::kSecond // past the wheel span: overflow
    };
    for (int i = 7; i >= 0; --i)
        eq.schedule(whens[i], [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(fired[i], whens[i]);
}

TEST(EventQueue, SameTickFifoSurvivesCascading)
{
    // Events landing on one far-future tick from different distances
    // (some direct, some rescheduled closer to the tick) must still
    // run in schedule order once the tick arrives.
    sim::EventQueue eq;
    const sim::Time tick = 2 * sim::kSecond + 37;
    std::vector<int> order;
    eq.schedule(tick, [&] { order.push_back(0); }); // via coarse level
    eq.schedule(sim::kSecond, [&eq, &order, tick] {
        // Scheduled mid-flight from a nearer vantage point: later
        // sequence number, so it must run after event 0.
        eq.schedule(tick, [&order] { order.push_back(1); });
    });
    eq.schedule(tick, [&] { order.push_back(2); });
    eq.run();
    // Sequence order is 0, 2 (scheduled immediately), then 1
    // (scheduled at t=1s).
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
    EXPECT_EQ(eq.now(), tick);
}

TEST(EventQueue, TimerRestartPatternRecyclesSlots)
{
    // The cancel-heavy hot pattern: arm a far-out retransmit timer,
    // cancel it, re-arm. Slots must recycle through the free list
    // instead of accumulating dead entries.
    sim::EventQueue eq;
    sim::EventId timer = sim::kInvalidEvent;
    for (int i = 0; i < 100000; ++i) {
        eq.cancel(timer);
        timer = eq.scheduleAfter(200 * sim::kMillisecond, [] {});
        EXPECT_EQ(eq.live(), 1u);
    }
    EXPECT_EQ(eq.stats().cancelled, 99999u);
    eq.run();
    EXPECT_EQ(eq.stats().executed, 1u);
}

TEST(EventQueue, CancelFromInsideCallbacks)
{
    sim::EventQueue eq;
    bool victim_ran = false;
    sim::EventId victim =
        eq.schedule(50, [&] { victim_ran = true; });
    eq.schedule(10, [&] { eq.cancel(victim); });
    // Also cancel an event sitting in the same imminent window.
    bool near_ran = false;
    sim::EventId near_id = eq.schedule(12, [&] { near_ran = true; });
    eq.schedule(11, [&] { eq.cancel(near_id); });
    eq.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_FALSE(near_ran);
    EXPECT_EQ(eq.stats().cancelled, 2u);
}

TEST(Delegate, InlineStorageForSmallCaptures)
{
    int hits = 0;
    auto small = [&hits] { ++hits; };
    static_assert(sim::Delegate::fitsInline<decltype(small)>,
                  "a one-pointer capture must be inline");
    sim::Delegate d(small);
    ASSERT_TRUE(bool(d));
    d();
    d();
    EXPECT_EQ(hits, 2);
    sim::Delegate moved(std::move(d));
    moved();
    EXPECT_EQ(hits, 3);
}

TEST(Delegate, HeapFallbackForLargeCaptures)
{
    struct Big
    {
        char blob[256];
    };
    int hits = 0;
    Big big{};
    auto fat = [&hits, big] { ++hits; (void)big; };
    static_assert(!sim::Delegate::fitsInline<decltype(fat)>,
                  "a 256-byte capture must spill to the heap");
    sim::Delegate d(fat);
    sim::Delegate moved(std::move(d));
    EXPECT_FALSE(bool(d));
    moved();
    EXPECT_EQ(hits, 1);
    sim::Delegate copied(moved);
    copied();
    moved();
    EXPECT_EQ(hits, 3);
}

TEST(Delegate, DestroysCapturesExactlyOnce)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        sim::Delegate d([token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(watch.expired()) << "capture keeps it alive";
        d();
        sim::Delegate d2(std::move(d));
        sim::Delegate d3;
        d3 = std::move(d2);
        d3();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired()) << "capture destroyed with delegate";
}

TEST(Delegate, CopyAssignReplacesExisting)
{
    int a = 0, b = 0;
    sim::Delegate da([&a] { ++a; });
    sim::Delegate db([&b] { ++b; });
    da = db;
    da();
    db();
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 2);
    da = sim::Delegate();
    EXPECT_FALSE(bool(da));
}

TEST(EventQueue, HotPathClosuresStayInline)
{
    // Pin the fattest real per-packet closure shape in the tree (an
    // ib::QueuePair-style packet of ~80 bytes plus a peer pointer) to
    // the allocation-free path; growing Packet past the delegate's
    // inline capacity should fail here, not silently regress perf.
    struct PacketLike
    {
        int type, op;
        std::uint64_t a, b, c, d, e, f, g;
        bool x, y;
    };
    struct Peer
    {
        void take(PacketLike) {}
    };
    Peer *peer = nullptr;
    PacketLike pkt{};
    auto closure = [peer, pkt] {
        if (peer)
            peer->take(pkt);
    };
    static_assert(sim::Delegate::fitsInline<decltype(closure)>,
                  "per-packet delivery closures must not allocate");
}

TEST(Rng, LognormalJitterMedianNearOne)
{
    sim::Rng r(11);
    double sum_log = 0;
    for (int i = 0; i < 20000; ++i)
        sum_log += std::log(r.lognormalJitter(0.1));
    EXPECT_NEAR(sum_log / 20000, 0.0, 0.01);
}
