/**
 * @file
 * Unit tests for the discrete-event core: queue ordering, time
 * semantics, cancellation, statistics containers, RNG determinism.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/series.hh"

using namespace npf;

TEST(EventQueue, StartsAtZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    sim::EventQueue eq;
    sim::Time seen = 12345;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    sim::EventQueue eq;
    bool ran = false;
    sim::EventId id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun)
{
    sim::EventQueue eq;
    int runs = 0;
    sim::EventId id = eq.schedule(10, [&] { ++runs; });
    eq.run();
    eq.cancel(id); // already ran: no-op
    eq.cancel(id);
    eq.schedule(20, [&] { ++runs; });
    eq.run();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    sim::EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(21, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.scheduleAfter(1, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunUntilConditionStopsEarly)
{
    sim::EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(sim::Time(i), [&] { ++count; });
    bool ok = eq.runUntilCondition([&] { return count == 4; },
                                   1000);
    EXPECT_TRUE(ok);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(Time, Conversions)
{
    EXPECT_EQ(sim::fromMicroseconds(1.0), sim::kMicrosecond);
    EXPECT_EQ(sim::fromSeconds(1.0), sim::kSecond);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::kSecond), 1.0);
    EXPECT_DOUBLE_EQ(sim::toMicroseconds(1500), 1.5);
}

TEST(Histogram, PercentilesNearestRank)
{
    sim::Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe)
{
    sim::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Histogram, RecordAfterQueryStaysSorted)
{
    sim::Histogram h;
    h.record(5);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    h.record(1);
    h.record(9);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
}

TEST(RateSeries, BucketsAndRates)
{
    sim::RateSeries s(sim::kSecond);
    s.record(0);
    s.record(sim::kSecond / 2);
    s.record(3 * sim::kSecond + 1);
    EXPECT_EQ(s.buckets(), 4u);
    EXPECT_DOUBLE_EQ(s.rate(0), 2.0);
    EXPECT_DOUBLE_EQ(s.rate(1), 0.0);
    EXPECT_DOUBLE_EQ(s.rate(3), 1.0);
    EXPECT_DOUBLE_EQ(s.total(), 3.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, BernoulliEdges)
{
    sim::Rng r(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, UniformIntBounds)
{
    sim::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, LognormalJitterMedianNearOne)
{
    sim::Rng r(11);
    double sum_log = 0;
    for (int i = 0; i < 20000; ++i)
        sum_log += std::log(r.lognormalJitter(0.1));
    EXPECT_NEAR(sum_log / 20000, 0.0, 0.01);
}
