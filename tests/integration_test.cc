/**
 * @file
 * Cross-module integration tests: miniature versions of the paper's
 * headline experiments asserting the comparative results (who wins,
 * who fails), plus the implemented future-work extensions.
 */

#include <gtest/gtest.h>

#include "app/memcached.hh"
#include "ib/queue_pair.hh"
#include "net/fabric.hh"
#include "testbed.hh"

using namespace npf;

namespace {

constexpr std::size_t MiB = 1ull << 20;

/** Time to push 10k memcached ops through a fresh (cold) server. */
sim::Time
coldRunTime(eth::RxFaultPolicy policy, std::size_t ring)
{
    test::EthTestbed tb(policy, ring);
    app::HostModel host;
    host.addInstance();
    app::KvStore kv(*tb.serverAs, 32 * MiB, 1024);
    app::MemcachedServer server(tb.eq, kv, host);
    for (std::uint64_t k = 0; k < 1000; ++k)
        kv.set(k);
    std::vector<std::unique_ptr<app::RpcChannel>> chans;
    std::vector<app::RpcChannel *> raw;
    for (std::uint32_t id = 1; id <= 4; ++id) {
        if (!tb.connect(id))
            return 3600 * sim::kSecond;
        chans.push_back(std::make_unique<app::RpcChannel>(
            tb.client->connection(id), tb.server->connection(id)));
        server.serve(*chans.back());
        raw.push_back(chans.back().get());
    }
    app::Memaslap slap(tb.eq, raw, app::MemaslapConfig{0.9, 1000, 4, 64});
    sim::Time start = tb.eq.now();
    slap.start();
    bool ok = tb.eq.runUntilCondition(
        [&] { return slap.transactions() >= 10000; },
        start + 600 * sim::kSecond);
    return ok ? tb.eq.now() - start : 3600 * sim::kSecond;
}

} // namespace

TEST(Integration, Fig4OrderingDropMuchSlowerThanBackupAndPin)
{
    sim::Time drop = coldRunTime(eth::RxFaultPolicy::Drop, 64);
    sim::Time backup = coldRunTime(eth::RxFaultPolicy::BackupRing, 64);
    sim::Time pin = coldRunTime(eth::RxFaultPolicy::Pin, 64);
    EXPECT_GT(drop, 20 * backup)
        << "drop must be dramatically slower on a cold ring";
    EXPECT_LT(double(backup) / double(pin), 2.5)
        << "backup ring's cold cost is tolerable";
}

TEST(Integration, PrefaultAheadShortensColdSequences)
{
    // Count rNPFs taken while warming a cold ring with and without
    // the §3 pre-fault-ahead optimization.
    auto faults_with = [](unsigned ahead) {
        test::EthTestbed tb(eth::RxFaultPolicy::BackupRing, 64);
        eth::RxRing &r = tb.serverNic->ring(0);
        r.cfg.prefaultAhead = ahead;
        auto &cli = tb.client->connection(1);
        auto &srv = tb.server->connection(1);
        srv.listen();
        cli.connect([](bool) {});
        std::uint64_t got = 0;
        srv.onDeliver([&](std::size_t n) { got += n; });
        tb.eq.runUntilCondition([&] { return cli.established(); },
                                120 * sim::kSecond);
        cli.send(256 * 1024);
        tb.eq.runUntilCondition([&] { return got >= 256u * 1024; },
                                tb.eq.now() + 120 * sim::kSecond);
        return tb.server->ringStats().rnpfs;
    };
    std::uint64_t plain = faults_with(0);
    std::uint64_t ahead = faults_with(8);
    EXPECT_GT(plain, 0u);
    EXPECT_LT(ahead, plain)
        << "pre-faulting ahead must absorb faults before packets land";
}

TEST(Integration, ReadRnrExtensionBeatsStandardRewind)
{
    auto run = [](bool extension) {
        struct Out
        {
            sim::Time elapsed;
            std::uint64_t dropped;
        };
        sim::EventQueue eq;
        net::Fabric fabric(
            eq, 2, net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                     200});
        mem::MemoryManager mmA(256 * MiB), mmB(256 * MiB);
        auto &asA = mmA.createAddressSpace("A");
        auto &asB = mmB.createAddressSpace("B");
        core::NpfController npfcA(eq), npfcB(eq);
        auto chA = npfcA.attach(asA);
        auto chB = npfcB.attach(asB);
        ib::QpConfig cfg;
        cfg.readRnrExtension = extension;
        ib::QueuePair qpA(eq, fabric, 0, npfcA, chA, cfg, 1);
        ib::QueuePair qpB(eq, fabric, 1, npfcB, chB, cfg, 2);
        qpA.connect(qpB);
        qpB.connect(qpA);

        mem::VirtAddr remote = asB.allocRegion(MiB);
        npfcB.prefault(chB, remote, MiB, true);
        mem::VirtAddr local = asA.allocRegion(MiB); // cold

        bool done = false;
        qpA.onCompletion([&](const ib::Completion &c) {
            if (!c.isRecv)
                done = true;
        });
        sim::Time start = eq.now();
        qpA.postSend({ib::Opcode::RdmaRead, local, MiB, remote, 1});
        eq.runUntilCondition([&] { return done; }, 60 * sim::kSecond);
        return Out{eq.now() - start, qpA.stats().dataPacketsDropped};
    };
    auto std_rc = run(false);
    auto ext_rc = run(true);
    EXPECT_LT(ext_rc.dropped, std_rc.dropped)
        << "suspending the responder wastes fewer packets";
    EXPECT_LE(ext_rc.elapsed, std_rc.elapsed + sim::kMillisecond);
}

TEST(Integration, OvercommitFeasibility)
{
    // Pinning three 3 GB VMs into 8 GB must fail; NPF must not.
    mem::MemoryManager host(8ull << 30);
    std::vector<mem::AddressSpace *> vms;
    bool pin_ok = true;
    for (int i = 0; i < 3 && pin_ok; ++i) {
        auto &as = host.createAddressSpace("vm" + std::to_string(i));
        mem::VirtAddr r = as.allocRegion(3ull << 30);
        pin_ok = as.pinRange(r, 3ull << 30).ok;
        vms.push_back(&as);
    }
    EXPECT_FALSE(pin_ok) << "Table 5's N/A";

    mem::MemoryManager host2(8ull << 30);
    bool npf_ok = true;
    for (int i = 0; i < 4 && npf_ok; ++i) {
        auto &as = host2.createAddressSpace("vm" + std::to_string(i));
        mem::VirtAddr r = as.allocRegion(3ull << 30);
        // Working set < 2 GB, allocated on demand.
        npf_ok = as.touch(r, 1800ull << 20, true).ok;
    }
    EXPECT_TRUE(npf_ok) << "demand paging packs four VMs";
}

TEST(Integration, DevicePageTableNeverMapsReusedFrames)
{
    // End-to-end protection invariant: after heavy churn with DMA
    // mappings and reclaim, every valid IOMMU PTE still points at a
    // frame owned by the right page of the right address space.
    sim::EventQueue eq;
    mem::MemoryManager mm(16 * MiB);
    auto &a = mm.createAddressSpace("a");
    auto &b = mm.createAddressSpace("b");
    core::NpfController npfc(eq);
    auto cha = npfc.attach(a);
    auto chb = npfc.attach(b);
    mem::VirtAddr ra = a.allocRegion(32 * MiB);
    mem::VirtAddr rb = b.allocRegion(32 * MiB);

    sim::Rng rng(77);
    for (int step = 0; step < 3000; ++step) {
        bool use_a = rng.bernoulli(0.5);
        auto ch = use_a ? cha : chb;
        mem::AddressSpace &as = use_a ? a : b;
        mem::VirtAddr base = use_a ? ra : rb;
        mem::VirtAddr addr =
            base + rng.uniformInt(0, 8000) * mem::kPageSize;
        if (rng.bernoulli(0.7))
            npfc.prefault(ch, addr, mem::kPageSize, true);
        else
            as.touch(addr, mem::kPageSize, true);
    }
    // Verify the invariant for both channels.
    for (auto [ch, asp, base] :
         {std::tuple{cha, &a, ra}, std::tuple{chb, &b, rb}}) {
        for (std::uint64_t i = 0; i < 8001; ++i) {
            mem::Vpn vpn = mem::pageOf(base) + i;
            auto mapped = npfc.iommu(ch).pageTable().lookup(vpn);
            if (!mapped)
                continue;
            const mem::Pte *pte = asp->findPte(vpn);
            ASSERT_NE(pte, nullptr);
            ASSERT_TRUE(pte->present)
                << "IOMMU maps a non-resident page";
            ASSERT_EQ(*mapped, pte->pfn)
                << "IOMMU maps a stale frame";
            const mem::Frame &f = mm.physical().frame(pte->pfn);
            ASSERT_EQ(f.owner, asp);
            ASSERT_EQ(f.vpn, vpn);
        }
    }
}

TEST(Integration, StreamUnderSyntheticFaultsBackupBeatsDrop)
{
    auto throughput = [](eth::RxFaultPolicy policy) {
        test::EthTestbed tb(policy, 256);
        eth::RxRing &r = tb.serverNic->ring(0);
        r.cfg.syntheticRnpfProb = 1.0 / 1024.0;
        tb.serverNic->npfc().prefault(
            0, 0, 0, false); // no-op; ring buffers warm below
        // Warm the ring by pre-faulting through the endpoint config
        // path isn't exposed here; just run long enough to warm.
        if (!tb.connect(1))
            return 0.0;
        auto &cli = tb.client->connection(1);
        auto &srv = tb.server->connection(1);
        std::uint64_t got = 0;
        srv.onDeliver([&](std::size_t n) { got += n; });
        cli.send(8 * MiB);
        tb.eq.runUntilCondition([&] { return got >= 8 * MiB; },
                                tb.eq.now() + 120 * sim::kSecond);
        return double(got) / sim::toSeconds(tb.eq.now());
    };
    double backup = throughput(eth::RxFaultPolicy::BackupRing);
    double drop = throughput(eth::RxFaultPolicy::Drop);
    EXPECT_GT(backup, 1.5 * drop)
        << "Fig. 10: the backup ring sustains throughput under "
           "faults that cripple dropping";
}
