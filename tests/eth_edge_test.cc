/**
 * @file
 * Ethernet edge cases: stream isolation across rings (§3's explicit
 * requirement), backup-ring hardware overflow, resolver waiting for
 * ring room, interrupt coalescing, and TX FIFO across faults.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/backup_ring.hh"
#include "eth/eth_nic.hh"
#include "mem/memory_manager.hh"
#include "payload_pool.hh"

using namespace npf;
using namespace npf::eth;

namespace {

constexpr std::size_t MiB = 1ull << 20;

struct TwoRingRig
{
    sim::EventQueue eq;
    mem::MemoryManager mm{256 * MiB};
    mem::AddressSpace &asA{mm.createAddressSpace("a")};
    mem::AddressSpace &asB{mm.createAddressSpace("b")};
    core::NpfController npfc{eq};
    core::ChannelId chA{npfc.attach(asA)};
    core::ChannelId chB{npfc.attach(asB)};
    EthNic nic{eq, npfc};
    EthNic peer{eq, npfc};
    unsigned ringA = 0, ringB = 0;
    std::vector<std::uint64_t> gotA, gotB;
    std::vector<sim::Time> gotBTimes;
    mem::VirtAddr bufsA = 0, bufsB = 0;

    TwoRingRig(bool warmA, bool warmB)
    {
        peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
        nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
        RxRingConfig cfg;
        cfg.size = 32;
        ringA = nic.createRxRing(chA, cfg, [this](const Frame &f) {
            gotA.push_back(test::payloadValue(f));
        });
        ringB = nic.createRxRing(chB, cfg, [this](const Frame &f) {
            gotB.push_back(test::payloadValue(f));
            gotBTimes.push_back(eq.now());
        });
        bufsA = asA.allocRegion(32 * 4096);
        bufsB = asB.allocRegion(32 * 4096);
        if (warmA)
            npfc.prefault(chA, bufsA, 32 * 4096, true);
        if (warmB)
            npfc.prefault(chB, bufsB, 32 * 4096, true);
        for (int i = 0; i < 32; ++i) {
            nic.postRxBuffer(ringA, bufsA + i * 4096, 4096);
            nic.postRxBuffer(ringB, bufsB + i * 4096, 4096);
        }
    }

    void
    inject(unsigned ring, std::uint64_t id)
    {
        Frame f;
        f.dstRing = ring;
        f.bytes = 1000;
        f.payload = test::payloadPool().acquire(id);
        EthNic *dst = &nic;
        peer.txLink()->send(f.bytes, [dst, f] { dst->receive(f); });
    }
};

} // namespace

TEST(EthIsolation, FaultingRingDoesNotDelayOtherRings)
{
    // §3 "Stream Isolation": ring A is stone cold (every packet
    // faults); ring B is warm. B's traffic must flow undisturbed.
    TwoRingRig rig(/*warmA=*/false, /*warmB=*/true);

    // Interleave traffic for both rings.
    for (std::uint64_t i = 0; i < 10; ++i) {
        rig.inject(rig.ringA, 100 + i);
        rig.inject(rig.ringB, i);
    }
    // B's frames arrive with only wire + interrupt latency, well
    // before A's faults resolve (~220 us each).
    rig.eq.runUntil(rig.eq.now() + 100 * sim::kMicrosecond);
    EXPECT_EQ(rig.gotB.size(), 10u)
        << "warm ring must not wait for the cold ring's rNPFs";
    EXPECT_TRUE(rig.gotA.empty());
    rig.eq.run();
    EXPECT_EQ(rig.gotA.size(), 10u) << "backup ring recovers A too";
}

TEST(EthIsolation, PerRingChannelsHaveIndependentIommus)
{
    TwoRingRig rig(false, true);
    rig.eq.run();
    // Warm B's IOMMU is populated; cold A's is not (yet).
    EXPECT_GT(rig.npfc.iommu(rig.chB).pageTable().mappedPages(), 0u);
    EXPECT_EQ(rig.npfc.iommu(rig.chA).pageTable().mappedPages(), 0u);
}

TEST(EthBackup, HardwareRingOverflowDropsAndCounts)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq);
    auto ch = npfc.attach(as);
    EthNicConfig ncfg;
    ncfg.backupRingSize = 4; // tiny pinned provider ring
    EthNic nic(eq, npfc, ncfg), peer(eq, npfc);
    peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
    nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
    RxRingConfig cfg;
    cfg.size = 64;
    cfg.bmSize = 64;
    unsigned ring = nic.createRxRing(ch, cfg, [](const Frame &) {});
    mem::VirtAddr bufs = as.allocRegion(64 * 4096); // cold
    for (int i = 0; i < 64; ++i)
        nic.postRxBuffer(ring, bufs + i * 4096, 4096);

    // Burst 16 packets instantly: the 4-entry hw ring cannot park
    // them all before the ISR drains (ISR latency > burst spacing).
    for (std::uint64_t i = 0; i < 16; ++i) {
        Frame f;
        f.dstRing = ring;
        f.bytes = 500;
        f.payload = test::payloadPool().acquire(i);
        nic.receive(f);
    }
    eq.run();
    const BackupRingManager::Stats &bs = nic.backupManager().stats();
    EXPECT_GT(bs.overflowDrops, 0u);
    EXPECT_GT(bs.parked, 0u);
    EXPECT_EQ(bs.parked, bs.resolved);
}

TEST(EthBackup, ResolverWaitsForRingRoom)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq);
    auto ch = npfc.attach(as);
    EthNic nic(eq, npfc), peer(eq, npfc);
    peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
    nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
    RxRingConfig cfg;
    cfg.size = 4;
    cfg.bmSize = 8;
    std::vector<std::uint64_t> got;
    unsigned ring = nic.createRxRing(ch, cfg, [&](const Frame &f) {
        got.push_back(test::payloadValue(f));
    });
    mem::VirtAddr bufs = as.allocRegion(4 * 4096);
    npfc.prefault(ch, bufs, 4 * 4096, true);
    // Post only 2 of 4 descriptors, send 4 packets: the last 2 park
    // for lack of a descriptor (idx >= tail).
    nic.postRxBuffer(ring, bufs, 4096);
    nic.postRxBuffer(ring, bufs + 4096, 4096);
    for (std::uint64_t i = 0; i < 4; ++i) {
        Frame f;
        f.dstRing = ring;
        f.bytes = 500;
        f.payload = test::payloadPool().acquire(i);
        nic.receive(f);
    }
    eq.run();
    EXPECT_EQ(got.size(), 2u) << "two packets wait for descriptors";
    EXPECT_GT(nic.backupManager().stats().waitsForRoom, 0u);
    // The IOuser posts more buffers: the waiters complete, in order.
    nic.postRxBuffer(ring, bufs + 2 * 4096, 4096);
    nic.postRxBuffer(ring, bufs + 3 * 4096, 4096);
    eq.run();
    ASSERT_EQ(got.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(EthNicEdge, InterruptsAreCoalesced)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq);
    auto ch = npfc.attach(as);
    EthNic nic(eq, npfc), peer(eq, npfc);
    peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});
    nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
    RxRingConfig cfg;
    cfg.size = 32;
    int handler_calls = 0;
    int frames = 0;
    unsigned ring = nic.createRxRing(ch, cfg, [&](const Frame &) {
        ++frames;
    });
    // Count delivery *batches* by watching time jumps.
    (void)handler_calls;
    mem::VirtAddr bufs = as.allocRegion(32 * 4096);
    npfc.prefault(ch, bufs, 32 * 4096, true);
    for (int i = 0; i < 32; ++i)
        nic.postRxBuffer(ring, bufs + i * 4096, 4096);
    // 8 frames delivered at the same instant -> one coalesced ISR.
    for (std::uint64_t i = 0; i < 8; ++i) {
        Frame f;
        f.dstRing = ring;
        f.bytes = 500;
        f.payload = test::payloadPool().acquire(i);
        nic.receive(f);
    }
    eq.run();
    EXPECT_EQ(frames, 8);
    // With 4 us ISR latency and simultaneous arrival, everything
    // lands within a single interrupt window.
    EXPECT_LE(eq.now(), 10 * sim::kMicrosecond);
}

TEST(EthNicEdge, TxQueueStaysFifoAcrossFaults)
{
    sim::EventQueue eq;
    mem::MemoryManager mm(64 * MiB);
    auto &as = mm.createAddressSpace("u");
    core::NpfController npfc(eq);
    auto ch = npfc.attach(as);
    EthNic nic(eq, npfc), peer(eq, npfc);
    nic.connectTo(peer, net::LinkConfig{12e9, 1000, 38});
    peer.connectTo(nic, net::LinkConfig{12e9, 1000, 38});

    auto &pas = mm.createAddressSpace("peer");
    auto pch = npfc.attach(pas);
    RxRingConfig cfg;
    cfg.size = 16;
    std::vector<std::uint64_t> got;
    unsigned pring = peer.createRxRing(pch, cfg, [&](const Frame &f) {
        got.push_back(test::payloadValue(f));
    });
    mem::VirtAddr pbufs = pas.allocRegion(16 * 4096);
    npfc.prefault(pch, pbufs, 16 * 4096, true);
    for (int i = 0; i < 16; ++i)
        peer.postRxBuffer(pring, pbufs + i * 4096, 4096);

    // Alternate warm and cold TX buffers: faults must not reorder.
    mem::VirtAddr warm = as.allocRegion(MiB);
    npfc.prefault(ch, warm, MiB, true);
    mem::VirtAddr cold = as.allocRegion(MiB);
    unsigned txq = nic.createTxQueue(ch);
    for (std::uint64_t i = 0; i < 8; ++i) {
        mem::VirtAddr src =
            (i % 2 == 0) ? cold + i * 64 * 1024 : warm + i * 1024;
        nic.send(txq, pring, src, 1000,
                 test::payloadPool().acquire(i));
    }
    eq.run();
    ASSERT_EQ(got.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], i) << "HOL blocking, but never reordering";
    EXPECT_GT(nic.stats().txNpfs, 0u);
}
