/**
 * @file
 * Latency-attribution tests. Unit level: lane accounting (charges,
 * open-block accrual, non-LIFO block ends, parent/root folding, stack
 * overflow tolerance) against a hand-advanced clock. Integration
 * level: a deterministic two-host IB KV-RPC run under memory pressure
 * and synthetic receive faults, asserting the subsystem's central
 * contract — every recorded breakdown's phases sum *exactly* to its
 * end-to-end latency — while both an NPF-bearing and an RNR-bearing
 * request are in the sample set.
 */

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "app/kv_rpc.hh"
#include "core/npf_controller.hh"
#include "ib/queue_pair.hh"
#include "load/client_pool.hh"
#include "load/recorder.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"
#include "obs/attribution.hh"
#include "sim/event_queue.hh"

using namespace npf;
using obs::Phase;
using obs::PhaseBreakdown;

namespace {

/** Enable the process-wide attributor on @p eq; restore on exit. */
struct AttrGuard
{
    explicit AttrGuard(sim::EventQueue &eq)
    {
        obs::attributor().setClock(&eq);
        obs::attributor().enable(true);
    }
    ~AttrGuard()
    {
        obs::attributor().enable(false);
        obs::attributor().setClock(nullptr);
    }
};

void
advanceTo(sim::EventQueue &eq, sim::Time t)
{
    eq.schedule(t, [] {});
    eq.run();
}

std::int64_t
phaseNs(const PhaseBreakdown &bd, Phase p)
{
    return bd.ns[static_cast<unsigned>(p)];
}

} // namespace

TEST(Attribution, DisabledEverythingIsANoop)
{
    obs::Attributor &at = obs::attributor();
    at.enable(false);
    EXPECT_EQ(at.rootLane(), -1);
    int lane = at.openLane("nobody");
    EXPECT_EQ(lane, -1);
    at.blockBegin(lane, Phase::Server);
    at.blockEnd(lane, Phase::Server);
    at.charge(lane, Phase::NpfDriver, 1000);
    PhaseBreakdown bd;
    bd.ns[0] = 42; // snapshot must clear stale content
    at.snapshot(lane, bd);
    EXPECT_EQ(bd.sum(), 0);
    EXPECT_EQ(at.laneCount(), 0u);
}

TEST(Attribution, ChargeAndOpenBlockAccrual)
{
    sim::EventQueue eq;
    AttrGuard guard(eq);
    obs::Attributor &at = obs::attributor();
    int lane = at.openLane("session");
    ASSERT_GE(lane, 0);

    at.charge(lane, Phase::Server, 300);
    at.blockBegin(lane, Phase::NpfDriver);
    advanceTo(eq, 500);

    // Mid-block snapshot folds the elapsed open-block time.
    PhaseBreakdown bd;
    at.snapshot(lane, bd);
    EXPECT_EQ(phaseNs(bd, Phase::Server), 300);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 500);

    advanceTo(eq, 700);
    at.blockEnd(lane, Phase::NpfDriver);
    at.snapshot(lane, bd);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 700);

    // Time after the block closes accrues to nothing.
    advanceTo(eq, 1000);
    at.snapshot(lane, bd);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 700);
    EXPECT_EQ(bd.sum(), 1000);
}

TEST(Attribution, NonLifoBlockEndsAreTolerated)
{
    sim::EventQueue eq;
    AttrGuard guard(eq);
    obs::Attributor &at = obs::attributor();
    int lane = at.openLane("session");

    // A (RnrBackoff) opens at 0, B (NpfDriver) nests at 100; A ends
    // first at 250, B at 400 — the two directions of one session can
    // interleave like this. Elapsed time always accrues to the
    // innermost open block: A gets [0,100), B gets [100,400).
    at.blockBegin(lane, Phase::RnrBackoff);
    advanceTo(eq, 100);
    at.blockBegin(lane, Phase::NpfDriver);
    advanceTo(eq, 250);
    at.blockEnd(lane, Phase::RnrBackoff);
    advanceTo(eq, 400);
    at.blockEnd(lane, Phase::NpfDriver);

    PhaseBreakdown bd;
    at.snapshot(lane, bd);
    EXPECT_EQ(phaseNs(bd, Phase::RnrBackoff), 100);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 300);

    // Unmatched end: a tolerated no-op.
    at.blockEnd(lane, Phase::Retransmit);
    at.snapshot(lane, bd);
    EXPECT_EQ(bd.sum(), 400);
}

TEST(Attribution, SnapshotFoldsParentAndRoot)
{
    sim::EventQueue eq;
    AttrGuard guard(eq);
    obs::Attributor &at = obs::attributor();
    int root = at.rootLane();
    ASSERT_EQ(root, 0);
    int server = at.openLane("server");
    int session = at.openLane("session", server);

    at.charge(root, Phase::NpfDriver, 10);   // host-global stall
    at.charge(server, Phase::Server, 100);   // shared core
    at.charge(session, Phase::RnrBackoff, 1000);

    PhaseBreakdown bd;
    at.snapshot(session, bd);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 10);
    EXPECT_EQ(phaseNs(bd, Phase::Server), 100);
    EXPECT_EQ(phaseNs(bd, Phase::RnrBackoff), 1000);

    // A root-parented lane folds only itself + root (no double count
    // of the root through the parent link).
    at.snapshot(server, bd);
    EXPECT_EQ(phaseNs(bd, Phase::NpfDriver), 10);
    EXPECT_EQ(phaseNs(bd, Phase::Server), 100);
    EXPECT_EQ(phaseNs(bd, Phase::RnrBackoff), 0);

    // The root snapshot folds only the root.
    at.snapshot(root, bd);
    EXPECT_EQ(bd.sum(), 10);
}

TEST(Attribution, BlockStackOverflowIsDroppedNotFatal)
{
    sim::EventQueue eq;
    AttrGuard guard(eq);
    obs::Attributor &at = obs::attributor();
    int lane = at.openLane("deep");
    for (int i = 0; i < 40; ++i)
        at.blockBegin(lane, Phase::NpfDriver);
    for (int i = 0; i < 40; ++i)
        at.blockEnd(lane, Phase::NpfDriver);
    PhaseBreakdown bd;
    at.snapshot(lane, bd);
    EXPECT_EQ(bd.sum(), 0); // clock never advanced
}

/**
 * Two-host IB KV-RPC under periodic server memory pressure (real send
 * NPFs on GET responses DMA-read from reclaimed item memory) and
 * synthetic receive faults on the client QPs (RNR NACK path). The run
 * is deterministic; the recorder keeps every breakdown (slowK is
 * larger than the completion count can reach).
 */
TEST(AttributionIntegration, IbKvRcPhasesSumExactlyWithNpfAndRnr)
{
    sim::EventQueue eq;
    AttrGuard guard(eq);

    net::Fabric fabric(eq, 2,
                       net::FabricConfig{net::LinkConfig{56e9, 300, 32},
                                         200});
    mem::MemoryManager serverMm(64ull << 20), clientMm(64ull << 20);
    mem::AddressSpace &serverAs = serverMm.createAddressSpace("kv");
    mem::AddressSpace &clientAs = clientMm.createAddressSpace("load");
    core::NpfController serverNpfc(eq), clientNpfc(eq);
    core::ChannelId sch = serverNpfc.attach(serverAs);
    core::ChannelId cch = clientNpfc.attach(clientAs);

    app::HostModel host;
    host.addInstance();
    app::KvStore kv(serverAs, 16ull << 20, 1024);
    app::KvRpcConfig rpc;
    app::KvRcServer server(eq, kv, host, serverAs, rpc);
    constexpr std::uint64_t kKeys = 64;
    for (std::uint64_t k = 0; k < kKeys; ++k)
        kv.set(k);

    load::PoolConfig pc;
    pc.clients = 8;
    pc.seed = 7;
    pc.workload.arrival.kind = load::ArrivalSpec::Kind::Closed;
    pc.workload.keys.kind = load::KeySpec::Kind::Uniform;
    pc.workload.keys.keys = kKeys;
    pc.workload.getRatio = 0.9;

    load::RecorderConfig rc;
    rc.warmup = 0;
    rc.duration = 0; // unbounded: keep every completion
    rc.slowK = 1u << 20;
    load::Recorder rec(rc);
    load::ClientPool pool(eq, pc);
    pool.setRecorder(rec);

    std::vector<std::unique_ptr<ib::QueuePair>> qps;
    std::deque<app::KvRcTransport> transports;
    for (unsigned i = 0; i < 2; ++i) {
        ib::QpConfig ccfg;
        ccfg.syntheticRnpfProb = 0.05; // client rx faults -> RNR NACKs
        auto qpS = std::make_unique<ib::QueuePair>(
            eq, fabric, 0, serverNpfc, sch, ib::QpConfig{}, 2 * i + 1);
        auto qpC = std::make_unique<ib::QueuePair>(
            eq, fabric, 1, clientNpfc, cch, ccfg, 2 * i + 2);
        qpS->connect(*qpC);
        qpC->connect(*qpS);
        auto reqs = std::make_shared<sim::RingDeque<app::KvRpcRequest>>();
        auto rsps = std::make_shared<sim::RingDeque<app::KvRpcResponse>>();
        server.addSession(*qpS, reqs, rsps);
        transports.emplace_back(*qpC, clientAs, reqs, rsps, rpc);
        transports.back().connect(pool);
        qps.push_back(std::move(qpS));
        qps.push_back(std::move(qpC));
    }

    // Periodic reclaim keeps item memory cold so GET responses keep
    // taking real send-side NPFs.
    std::function<void()> squeeze = [&] {
        serverMm.reclaimPages(512);
        if (eq.now() < 80 * sim::kMillisecond)
            eq.scheduleAfter(10 * sim::kMillisecond, squeeze,
                             "test.squeeze");
    };
    eq.scheduleAfter(5 * sim::kMillisecond, squeeze, "test.squeeze");

    pool.start();
    eq.runUntil(100 * sim::kMillisecond);
    pool.stop();

    std::size_t samples = 0;
    bool sawNpf = false, sawRnr = false;
    for (unsigned cls = 0; cls < 2; ++cls) {
        for (const PhaseBreakdown &bd : rec.slowSamples(cls)) {
            ++samples;
            ASSERT_EQ(bd.sum(), bd.e2e)
                << "phase sum must equal e2e exactly (class " << cls
                << ")";
            if (phaseNs(bd, Phase::NpfDriver) > 0)
                sawNpf = true;
            if (phaseNs(bd, Phase::RnrBackoff) > 0)
                sawRnr = true;
        }
    }
    EXPECT_GT(samples, 100u);
    EXPECT_TRUE(sawNpf) << "no NPF-bearing request in " << samples
                        << " samples";
    EXPECT_TRUE(sawRnr) << "no RNR-bearing request in " << samples
                        << " samples";
    EXPECT_GT(pool.completions(), 0u);
}
