/**
 * @file
 * HPC substrate tests: point-to-point semantics, collectives, the
 * three registration modes' relative costs (the Fig. 9 / Table 6
 * orderings), and pin-down-cache behavior under off_cache rotation.
 */

#include <gtest/gtest.h>

#include "hpc/imb.hh"

using namespace npf;
using namespace npf::hpc;

namespace {

ClusterConfig
smallConfig(unsigned ranks = 4)
{
    ClusterConfig cfg;
    cfg.ranks = ranks;
    cfg.memoryPerRank = 1ull << 30;
    return cfg;
}

} // namespace

TEST(Cluster, SendRecvPairCompletes)
{
    sim::EventQueue eq;
    Cluster c(eq, smallConfig(2), RegMode::Npf);
    mem::VirtAddr s = c.allocBuffer(0, 1 << 20);
    mem::VirtAddr r = c.allocBuffer(1, 1 << 20);
    bool sent = false, received = false;
    c.irecv(1, 0, r, 1 << 20, [&] { received = true; });
    c.isend(0, 1, s, 1 << 20, [&] { sent = true; });
    eq.runUntilCondition([&] { return sent && received; },
                         10 * sim::kSecond);
    EXPECT_TRUE(sent);
    EXPECT_TRUE(received);
}

TEST(Cluster, EagerPathCopiesInAllModes)
{
    for (RegMode mode :
         {RegMode::Copy, RegMode::PinDownCache, RegMode::Npf}) {
        sim::EventQueue eq;
        Cluster c(eq, smallConfig(2), mode);
        mem::VirtAddr s = c.allocBuffer(0, 4096);
        mem::VirtAddr r = c.allocBuffer(1, 4096);
        bool done = false;
        c.irecv(1, 0, r, 4096, [&] { done = true; });
        c.isend(0, 1, s, 4096, [] {});
        eq.runUntilCondition([&] { return done; }, 10 * sim::kSecond);
        EXPECT_TRUE(done) << regModeName(mode);
    }
}

class CollectiveModes
    : public ::testing::TestWithParam<std::tuple<ImbBenchmark, RegMode>>
{
};

TEST_P(CollectiveModes, RunsToCompletion)
{
    auto [bench, mode] = GetParam();
    sim::EventQueue eq;
    Cluster c(eq, smallConfig(8), mode);
    double secs = runImb(c, bench, 64 * 1024, 10, 4);
    EXPECT_GT(secs, 0.0);
    EXPECT_LT(secs, 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, CollectiveModes,
    ::testing::Combine(::testing::Values(ImbBenchmark::Sendrecv,
                                         ImbBenchmark::Bcast,
                                         ImbBenchmark::Alltoall,
                                         ImbBenchmark::Allreduce),
                       ::testing::Values(RegMode::Copy,
                                         RegMode::PinDownCache,
                                         RegMode::Npf)));

TEST(Imb, CopyIsSlowerThanPinAndNpfAtLargeSizes)
{
    constexpr std::size_t kMsg = 128 * 1024;
    // Enough iterations to amortize both NPF warm-up and pin-down
    // registration, as real IMB runs do.
    constexpr unsigned kIters = 400;
    double secs[3];
    int i = 0;
    for (RegMode mode :
         {RegMode::Copy, RegMode::PinDownCache, RegMode::Npf}) {
        sim::EventQueue eq;
        Cluster c(eq, smallConfig(8), mode);
        secs[i++] = runImb(c, ImbBenchmark::Sendrecv, kMsg, kIters);
    }
    double copy = secs[0], pin = secs[1], npf = secs[2];
    EXPECT_GT(copy / pin, 1.2) << "zero copy wins at 128 KB (Fig. 9)";
    // 400 iterations still leave ~1/50 of the run cold; at the
    // paper's iteration counts the warm-up fraction is negligible
    // and npf/pin -> 1 (the fig09 bench shows this).
    EXPECT_NEAR(npf / pin, 1.0, 0.4) << "NPF tracks the pin-down cache";
    EXPECT_GT(copy / npf, 1.1);
}

TEST(Imb, AllreduceShowsLittleModeDifference)
{
    constexpr std::size_t kMsg = 64 * 1024;
    double secs[2];
    int i = 0;
    for (RegMode mode : {RegMode::Copy, RegMode::PinDownCache}) {
        sim::EventQueue eq;
        Cluster c(eq, smallConfig(8), mode);
        secs[i++] = runImb(c, ImbBenchmark::Allreduce, kMsg, 30);
    }
    EXPECT_LT(secs[0] / secs[1], 1.6)
        << "CPU reduction narrows the copy penalty (§6.2)";
}

TEST(Imb, NpfWarmsUp)
{
    sim::EventQueue eq;
    Cluster c(eq, smallConfig(4), RegMode::Npf);
    // First iterations fault (cold IOMMU); later ones are warm.
    double cold = runImb(c, ImbBenchmark::Sendrecv, 256 * 1024, 4, 4);
    EXPECT_GT(c.totalRnpfs(), 0u);
    std::uint64_t faults_after_warm = c.totalRnpfs();
    double warm = runImb(c, ImbBenchmark::Sendrecv, 256 * 1024, 4, 4);
    (void)cold;
    (void)warm;
    // Buffer pools differ per runImb call, so some new faults are
    // expected — but re-running over the same pool faults nothing:
    double again = runImb(c, ImbBenchmark::Sendrecv, 256 * 1024, 4, 4);
    (void)again;
    EXPECT_GT(c.totalRnpfs(), faults_after_warm);
}

TEST(Beff, CopyRoughlyHalvesEffectiveBandwidth)
{
    sim::EventQueue eq;
    ClusterConfig cfg = smallConfig(8);
    BeffResult pin = runBeff(eq, cfg, RegMode::PinDownCache, 1);
    BeffResult copy = runBeff(eq, cfg, RegMode::Copy, 1);
    BeffResult npf = runBeff(eq, cfg, RegMode::Npf, 1);
    EXPECT_GT(pin.beffMBps, 0.0);
    double ratio = copy.beffMBps / pin.beffMBps;
    EXPECT_LT(ratio, 0.75) << "Table 6: copying costs about half";
    EXPECT_NEAR(npf.beffMBps / pin.beffMBps, 1.0, 0.15)
        << "Table 6: NPF ~= pinning";
}
