/**
 * @file
 * Unit tests for the device-side translation structures: I/O page
 * table, IOTLB (LRU, invalidation), and the combined IoMmu unit,
 * including the PT/TLB coherence invariant.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hh"
#include "sim/random.hh"

using namespace npf;
using namespace npf::iommu;

TEST(IoPageTable, MapLookupUnmap)
{
    IoPageTable pt;
    EXPECT_FALSE(pt.lookup(5).has_value());
    pt.map(5, 42);
    ASSERT_TRUE(pt.lookup(5).has_value());
    EXPECT_EQ(*pt.lookup(5), 42u);
    EXPECT_TRUE(pt.unmap(5));
    EXPECT_FALSE(pt.unmap(5)) << "second unmap reports not-mapped";
    EXPECT_FALSE(pt.lookup(5).has_value());
}

TEST(IoTlb, HitAndMissCounting)
{
    IoTlb tlb(4);
    EXPECT_FALSE(tlb.lookup(1).has_value());
    tlb.insert(1, 10);
    ASSERT_TRUE(tlb.lookup(1).has_value());
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(IoTlb, LruEviction)
{
    IoTlb tlb(2);
    tlb.insert(1, 10);
    tlb.insert(2, 20);
    tlb.lookup(1);      // 1 is now MRU
    tlb.insert(3, 30);  // evicts 2
    EXPECT_TRUE(tlb.lookup(1).has_value());
    EXPECT_FALSE(tlb.lookup(2).has_value());
    EXPECT_TRUE(tlb.lookup(3).has_value());
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(IoTlb, InvalidateRemovesEntry)
{
    IoTlb tlb(8);
    tlb.insert(7, 70);
    tlb.invalidate(7);
    EXPECT_FALSE(tlb.lookup(7).has_value());
    EXPECT_EQ(tlb.stats().invalidations, 1u);
    tlb.invalidate(9); // not present: harmless
}

TEST(IoTlb, FlushEmptiesEverything)
{
    IoTlb tlb(8);
    for (mem::Vpn v = 0; v < 8; ++v)
        tlb.insert(v, v);
    tlb.flush();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(IoMmu, TranslateFaultsOnUnmapped)
{
    IoMmu mmu;
    Translation t = mmu.translate(3);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(mmu.stats().faults, 1u);
}

TEST(IoMmu, MapThenTranslateHitsTlbSecondTime)
{
    IoMmu mmu;
    mmu.map(3, 33);
    Translation t1 = mmu.translate(3);
    EXPECT_TRUE(t1.ok);
    EXPECT_FALSE(t1.tlbHit) << "first translation walks the table";
    EXPECT_EQ(t1.pfn, 33u);
    Translation t2 = mmu.translate(3);
    EXPECT_TRUE(t2.tlbHit);
}

TEST(IoMmu, InvalidateIsCoherent)
{
    IoMmu mmu;
    mmu.map(3, 33);
    mmu.translate(3); // cache it
    EXPECT_TRUE(mmu.invalidate(3));
    Translation t = mmu.translate(3);
    EXPECT_FALSE(t.ok) << "stale IOTLB entry would be a protection bug";
    EXPECT_FALSE(mmu.invalidate(3)) << "already unmapped";
}

TEST(IoMmu, WouldFaultIgnoresTlb)
{
    IoMmu mmu;
    mmu.map(1, 11);
    EXPECT_FALSE(mmu.wouldFault(1));
    EXPECT_TRUE(mmu.wouldFault(2));
}

/**
 * Property: after any random sequence of map/translate/invalidate,
 * a translation succeeds iff the page table maps the page, and the
 * returned frame matches the last map() — the IOTLB never serves
 * stale entries.
 */
TEST(IoMmu, PropertyTlbNeverStale)
{
    sim::Rng rng(123);
    IoMmu mmu(16); // small TLB to force evictions
    std::unordered_map<mem::Vpn, mem::Pfn> model;
    for (int step = 0; step < 20000; ++step) {
        mem::Vpn vpn = rng.uniformInt(0, 63);
        switch (rng.uniformInt(0, 2)) {
          case 0: {
            mem::Pfn pfn = rng.uniformInt(1000, 2000);
            mmu.map(vpn, pfn);
            model[vpn] = pfn;
            break;
          }
          case 1:
            mmu.invalidate(vpn);
            model.erase(vpn);
            break;
          default: {
            Translation t = mmu.translate(vpn);
            auto it = model.find(vpn);
            ASSERT_EQ(t.ok, it != model.end()) << "step " << step;
            if (t.ok)
                ASSERT_EQ(t.pfn, it->second) << "step " << step;
            break;
          }
        }
    }
}
