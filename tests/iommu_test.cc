/**
 * @file
 * Unit tests for the device-side translation structures: I/O page
 * table, IOTLB (LRU, invalidation), and the combined IoMmu unit,
 * including the PT/TLB coherence invariant.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "iommu/iommu.hh"
#include "sim/random.hh"

using namespace npf;
using namespace npf::iommu;

TEST(IoPageTable, MapLookupUnmap)
{
    IoPageTable pt;
    EXPECT_FALSE(pt.lookup(5).has_value());
    pt.map(5, 42);
    ASSERT_TRUE(pt.lookup(5).has_value());
    EXPECT_EQ(*pt.lookup(5), 42u);
    EXPECT_TRUE(pt.unmap(5));
    EXPECT_FALSE(pt.unmap(5)) << "second unmap reports not-mapped";
    EXPECT_FALSE(pt.lookup(5).has_value());
}

TEST(IoTlb, HitAndMissCounting)
{
    IoTlb tlb(4);
    EXPECT_FALSE(tlb.lookup(1).has_value());
    tlb.insert(1, 10);
    ASSERT_TRUE(tlb.lookup(1).has_value());
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(IoTlb, LruEviction)
{
    IoTlb tlb(2);
    tlb.insert(1, 10);
    tlb.insert(2, 20);
    tlb.lookup(1);      // 1 is now MRU
    tlb.insert(3, 30);  // evicts 2
    EXPECT_TRUE(tlb.lookup(1).has_value());
    EXPECT_FALSE(tlb.lookup(2).has_value());
    EXPECT_TRUE(tlb.lookup(3).has_value());
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(IoTlb, InvalidateRemovesEntry)
{
    IoTlb tlb(8);
    tlb.insert(7, 70);
    tlb.invalidate(7);
    EXPECT_FALSE(tlb.lookup(7).has_value());
    EXPECT_EQ(tlb.stats().invalidations, 1u);
    tlb.invalidate(9); // not present: harmless
}

TEST(IoTlb, FlushEmptiesEverything)
{
    IoTlb tlb(8);
    for (mem::Vpn v = 0; v < 8; ++v)
        tlb.insert(v, v);
    tlb.flush();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(IoMmu, TranslateFaultsOnUnmapped)
{
    IoMmu mmu;
    Translation t = mmu.translate(3);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(mmu.stats().faults, 1u);
}

TEST(IoMmu, MapThenTranslateHitsTlbSecondTime)
{
    IoMmu mmu;
    mmu.map(3, 33);
    Translation t1 = mmu.translate(3);
    EXPECT_TRUE(t1.ok);
    EXPECT_FALSE(t1.tlbHit) << "first translation walks the table";
    EXPECT_EQ(t1.pfn, 33u);
    Translation t2 = mmu.translate(3);
    EXPECT_TRUE(t2.tlbHit);
}

TEST(IoMmu, InvalidateIsCoherent)
{
    IoMmu mmu;
    mmu.map(3, 33);
    mmu.translate(3); // cache it
    EXPECT_TRUE(mmu.invalidate(3));
    Translation t = mmu.translate(3);
    EXPECT_FALSE(t.ok) << "stale IOTLB entry would be a protection bug";
    EXPECT_FALSE(mmu.invalidate(3)) << "already unmapped";
}

TEST(IoMmu, WouldFaultIgnoresTlb)
{
    IoMmu mmu;
    mmu.map(1, 11);
    EXPECT_FALSE(mmu.wouldFault(1));
    EXPECT_TRUE(mmu.wouldFault(2));
}

/**
 * Property: after any random sequence of map/translate/invalidate,
 * a translation succeeds iff the page table maps the page, and the
 * returned frame matches the last map() — the IOTLB never serves
 * stale entries.
 */
TEST(IoMmu, PropertyTlbNeverStale)
{
    sim::Rng rng(123);
    IoMmu mmu(16); // small TLB to force evictions
    std::unordered_map<mem::Vpn, mem::Pfn> model;
    for (int step = 0; step < 20000; ++step) {
        mem::Vpn vpn = rng.uniformInt(0, 63);
        switch (rng.uniformInt(0, 2)) {
          case 0: {
            mem::Pfn pfn = rng.uniformInt(1000, 2000);
            mmu.map(vpn, pfn);
            model[vpn] = pfn;
            break;
          }
          case 1:
            mmu.invalidate(vpn);
            model.erase(vpn);
            break;
          default: {
            Translation t = mmu.translate(vpn);
            auto it = model.find(vpn);
            ASSERT_EQ(t.ok, it != model.end()) << "step " << step;
            if (t.ok)
                ASSERT_EQ(t.pfn, it->second) << "step " << step;
            break;
          }
        }
    }
}

TEST(IoTlb, InsertOnCachedVpnCountsRefresh)
{
    // Regression: insert() on an already-cached vpn silently replaced
    // the payload — re-map traffic (NP-RDMA doorbells re-pushing
    // translations) was invisible in the stats.
    IoTlb tlb(4);
    tlb.insert(7, 70);
    EXPECT_EQ(tlb.stats().refreshes, 0u);
    tlb.insert(7, 71);
    EXPECT_EQ(tlb.stats().refreshes, 1u);
    EXPECT_EQ(tlb.size(), 1u);
    EXPECT_EQ(tlb.stats().evictions, 0u);
    EXPECT_EQ(*tlb.lookup(7), 71u) << "refresh replaces the payload";
    // A refresh also renews LRU position, exactly like a hit.
    tlb.insert(8, 80);
    tlb.insert(9, 90);
    tlb.insert(10, 100); // full: LRU order is 10, 9, 8, 7
    tlb.insert(8, 81);   // refresh, no eviction; 8 moves to MRU
    EXPECT_EQ(tlb.stats().refreshes, 2u);
    tlb.insert(11, 110); // evicts the true LRU (7), not 8
    EXPECT_EQ(tlb.stats().evictions, 1u);
    EXPECT_FALSE(tlb.lookup(7).has_value());
    EXPECT_TRUE(tlb.lookup(8).has_value());
    EXPECT_TRUE(tlb.lookup(9).has_value());
}

TEST(IoTlb, AdversarialCollisionChainAcrossTableWrap)
{
    // removeAt() uses backward-shift deletion; the relocation rule
    // `((i - home) & mask) >= ((i - hole) & mask)` is exactly the
    // part that breaks subtly when a probe chain wraps past the end
    // of the bucket array. Force that: capacity 8 => 16 buckets, and
    // pick vpns whose home bucket is 14 or 15 so one long chain spans
    // the wrap. Every operation is mirrored into a shadow
    // std::map + LRU-list oracle and the full state compared.
    constexpr std::size_t kCap = 8;
    IoTlb tlb(kCap);
    auto home = [](mem::Vpn v) {
        return std::size_t((std::uint64_t(v) * 0x9e3779b97f4a7c15ull) >>
                           32) &
               15u;
    };
    std::vector<mem::Vpn> vpns;
    for (mem::Vpn v = 1; vpns.size() < 14; ++v)
        if (home(v) >= 14)
            vpns.push_back(v);

    std::map<mem::Vpn, mem::Pfn> shadow;
    std::list<mem::Vpn> lru; // front = MRU

    auto oracle_insert = [&](mem::Vpn v, mem::Pfn p) {
        tlb.insert(v, p);
        auto it = shadow.find(v);
        if (it != shadow.end()) {
            it->second = p;
            lru.remove(v);
        } else {
            if (shadow.size() == kCap) {
                shadow.erase(lru.back());
                lru.pop_back();
            }
            shadow[v] = p;
        }
        lru.push_front(v);
    };
    auto oracle_invalidate = [&](mem::Vpn v) {
        tlb.invalidate(v);
        if (shadow.erase(v))
            lru.remove(v);
    };
    auto oracle_evict = [&](std::size_t n) {
        tlb.evictLru(n);
        if (n == 0 || n >= shadow.size()) { // 0 = everything
            shadow.clear();
            lru.clear();
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            shadow.erase(lru.back());
            lru.pop_back();
        }
    };
    // Probing every candidate vpn also touches LRU on hits — mirror
    // that, in the same fixed order, so the models stay in lockstep.
    auto verify = [&](int where) {
        ASSERT_EQ(tlb.size(), shadow.size()) << "at step " << where;
        for (mem::Vpn v : vpns) {
            auto got = tlb.lookup(v);
            auto it = shadow.find(v);
            ASSERT_EQ(got.has_value(), it != shadow.end())
                << "vpn " << v << " at step " << where;
            if (got.has_value()) {
                ASSERT_EQ(*got, it->second)
                    << "vpn " << v << " at step " << where;
                lru.remove(v);
                lru.push_front(v);
            }
        }
    };

    // Fill the whole cache with one wrapping probe chain.
    for (std::size_t i = 0; i < kCap; ++i)
        oracle_insert(vpns[i], mem::Pfn(1000 + i));
    verify(1);

    // Punch holes in the middle of the chain: the entries behind
    // them (including those that wrapped to bucket 0/1/2) must be
    // shifted back or they become unreachable.
    oracle_invalidate(vpns[2]);
    oracle_invalidate(vpns[5]);
    verify(2);

    // Refill through the holes, then force capacity evictions.
    oracle_insert(vpns[8], 2008);
    oracle_insert(vpns[9], 2009);
    oracle_insert(vpns[10], 2010); // full again: LRU falls out
    oracle_insert(vpns[11], 2011);
    verify(3);

    // Eviction storm plus an interleaved middle-of-chain delete.
    oracle_evict(3);
    oracle_invalidate(vpns[9]);
    verify(4);

    // Reinsert previously deleted vpns (fresh entries, same homes).
    oracle_insert(vpns[2], 3002);
    oracle_insert(vpns[5], 3005);
    oracle_insert(vpns[12], 3012);
    oracle_insert(vpns[13], 3013);
    verify(5);

    // Drain to empty via interleaved invalidate/evict.
    oracle_invalidate(vpns[12]);
    oracle_evict(2);
    verify(6);
    oracle_evict(0); // 0 = everything
    verify(7);
    EXPECT_EQ(tlb.size(), 0u);
}
