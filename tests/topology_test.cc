/**
 * @file
 * Fabric subsystem tests: topology grammar and validation, ECMP
 * routing, switch queue mechanics (ECN marking, PFC pause/resume and
 * its hop-by-hop propagation), the switch fault site, DCQCN rate
 * machinery (unit and end-to-end through ib::QueuePair), and the
 * topology-mode integrations of eth::EthNic and hpc::Cluster.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/eth_nic.hh"
#include "fault/fault.hh"
#include "hpc/cluster.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/dcqcn.hh"
#include "net/fabric.hh"
#include "net/topology.hh"
#include "payload_pool.hh"

using namespace npf;
using namespace npf::net;

namespace {

constexpr std::size_t MiB = 1ull << 20;

fault::FaultPlan
mustParse(const std::string &spec)
{
    std::string err;
    auto p = fault::FaultPlan::parse(spec, &err);
    EXPECT_TRUE(p.has_value()) << err;
    return *p;
}

Topology
mustTopo(const std::string &spec)
{
    std::string err;
    auto t = Topology::parse(spec, &err);
    EXPECT_TRUE(t.has_value()) << err;
    return *t;
}

/** The switch egress port whose wire terminates at @p vertex. */
Egress *
portToward(Switch &sw, unsigned vertex)
{
    for (Egress *p : sw.egressPorts())
        if (p->dest() == vertex)
            return p;
    return nullptr;
}

// A fast fabric for timing-exact tests: 1 byte/ns links, no framing
// overhead, round numbers everywhere.
const char *kFastStar3 = "star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50";

} // namespace

// --- grammar ----------------------------------------------------------

TEST(TopologySpec, StarParsesWithDefaults)
{
    Topology t = mustTopo("star:hosts=8");
    EXPECT_EQ(t.hosts, 8u);
    EXPECT_EQ(t.switches, 1u);
    EXPECT_EQ(t.edges.size(), 8u);
    EXPECT_FALSE(t.switchCfg.ecn.enabled);
    EXPECT_FALSE(t.switchCfg.pfc.enabled);
}

TEST(TopologySpec, KeysOverrideLinkAndSwitchParams)
{
    Topology t = mustTopo("star:hosts=2,bw=100g,prop=1us,overhead=40,"
                          "fwd=300ns,queue=1m,ecn=64k,xoff=128k,xon=32k");
    EXPECT_DOUBLE_EQ(t.edges[0].link.bandwidthBitsPerSec, 100e9);
    EXPECT_EQ(t.edges[0].link.propagation, sim::Time(1000));
    EXPECT_EQ(t.edges[0].link.perPacketOverheadBytes, 40u);
    EXPECT_EQ(t.switchCfg.forwardLatency, sim::Time(300));
    EXPECT_EQ(t.switchCfg.queueCapBytes, 1024u * 1024u);
    EXPECT_TRUE(t.switchCfg.ecn.enabled);
    EXPECT_EQ(t.switchCfg.ecn.markBytes, 64u * 1024u);
    EXPECT_TRUE(t.switchCfg.pfc.enabled);
    EXPECT_EQ(t.switchCfg.pfc.xoffBytes, 128u * 1024u);
    EXPECT_EQ(t.switchCfg.pfc.xonBytes, 32u * 1024u);
}

TEST(TopologySpec, LeafSpineDividesUplinkByOversubscription)
{
    Topology t = mustTopo("leafspine:hosts=8,leaves=2,spines=2,"
                          "ovs=2,bw=40g");
    EXPECT_EQ(t.switches, 4u);
    // 8 host edges + 2x2 fabric edges.
    ASSERT_EQ(t.edges.size(), 12u);
    EXPECT_DOUBLE_EQ(t.edges[0].link.bandwidthBitsPerSec, 40e9);
    // per_leaf/spines / ovs = (4/2)/2 = 1x host bandwidth.
    EXPECT_DOUBLE_EQ(t.edges[8].link.bandwidthBitsPerSec, 40e9);
}

TEST(TopologySpec, EdgeListGrammar)
{
    Topology t = mustTopo("edges:links=h0-s0+h1-s1+s0-s1");
    EXPECT_EQ(t.hosts, 2u);
    EXPECT_EQ(t.switches, 2u);
    EXPECT_EQ(t.edges.size(), 3u);
}

TEST(TopologySpec, MalformedSpecsReport)
{
    std::string err;
    EXPECT_FALSE(Topology::parse("ring:hosts=4", &err).has_value());
    EXPECT_FALSE(Topology::parse("star", &err).has_value());
    EXPECT_FALSE(Topology::parse("star:hosts=0", &err).has_value());
    EXPECT_FALSE(Topology::parse("star:hosts=2,bw=fast", &err).has_value());
    EXPECT_FALSE(
        Topology::parse("edges:links=h0-h1", &err).has_value());
    EXPECT_NE(err.find("topology:"), std::string::npos);
}

TEST(TopologySpec, ValidateRejectsBrokenGraphs)
{
    // Host with two attachments.
    Topology t = mustTopo("star:hosts=2");
    t.edges.push_back({0, 2, {}});
    EXPECT_FALSE(t.validate());

    // Disconnected island.
    Topology u = mustTopo("star:hosts=2");
    u.switches = 2; // s1 exists but has no edges
    EXPECT_FALSE(u.validate());

    // XON above XOFF.
    Topology v = mustTopo("star:hosts=2,xoff=64k,xon=32k");
    v.switchCfg.pfc.xonBytes = v.switchCfg.pfc.xoffBytes;
    EXPECT_FALSE(v.validate());
}

TEST(TopologySpec, RoutesListAllShortestNextHops)
{
    Topology t = mustTopo("leafspine:hosts=4,leaves=2,spines=2");
    auto r = t.routes();
    // Vertices: h0..h3, leaf0=4, leaf1=5, spine0=6, spine1=7.
    // From leaf0 toward h2 (on leaf1) both spines tie.
    EXPECT_EQ(r[4][2], (std::vector<unsigned>{6, 7}));
    // From leaf0 toward its own h0: direct.
    EXPECT_EQ(r[4][0], (std::vector<unsigned>{0}));
    // A spine reaches h2 only through leaf1.
    EXPECT_EQ(r[6][2], (std::vector<unsigned>{5}));
}

// --- forwarding -------------------------------------------------------

TEST(FabricTopo, StarTimingMatchesLegacyFabric)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{}, kFastStar3);
    ASSERT_TRUE(fabric.topologyMode());
    sim::Time arrival = 0;
    fabric.send(0, 2, 1000, [&] { arrival = eq.now(); });
    eq.run();
    // up 1000+100, forward 50, down 1000+100 — the legacy formula.
    EXPECT_EQ(arrival, 2250u);
}

TEST(FabricTopo, TwoSwitchPathAddsPerHopCosts)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 2, FabricConfig{},
                  "edges:links=h0-s0+h1-s1+s0-s1,"
                  "bw=8g,prop=100,overhead=0,fwd=50");
    sim::Time arrival = 0;
    fabric.send(0, 1, 1000, [&] { arrival = eq.now(); });
    eq.run();
    // Three wires (1100 each) + two forwarding latencies.
    EXPECT_EQ(arrival, 3400u);
}

TEST(FabricTopo, EcmpSpreadsFlowsDeterministically)
{
    auto spine_counts = [] {
        sim::EventQueue eq;
        Fabric fabric(eq, 4, FabricConfig{},
                      "leafspine:hosts=4,leaves=2,spines=2");
        int delivered = 0;
        for (std::uint32_t flow = 0; flow < 64; ++flow)
            fabric.send(0, 2, 4096, 0, flow, [&] { ++delivered; });
        eq.run();
        EXPECT_EQ(delivered, 64);
        // Spines are switches 2 and 3 (leaves first).
        return std::pair<std::uint64_t, std::uint64_t>{
            fabric.switchAt(2).stats().rxPackets,
            fabric.switchAt(3).stats().rxPackets};
    };
    auto first = spine_counts();
    EXPECT_EQ(first.first + first.second, 64u);
    EXPECT_GT(first.first, 0u) << "all 64 flows hashed to one spine";
    EXPECT_GT(first.second, 0u) << "all 64 flows hashed to one spine";
    // Same build, same flows: bit-identical path choice.
    EXPECT_EQ(first, spine_counts());
}

// --- ECN --------------------------------------------------------------

TEST(FabricTopo, EcnMarksAboveQueueThreshold)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{},
                  "star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50,"
                  "ecn=8k");
    int delivered = 0, marked = 0;
    // Two hosts incast 32 packets each into h0's downlink.
    for (int i = 0; i < 32; ++i)
        for (unsigned src : {1u, 2u})
            fabric.send(src, 0, 4096, [&] {
                ++delivered;
                if (fabric.rx().ecn)
                    ++marked;
            });
    eq.run();
    EXPECT_EQ(delivered, 64);
    EXPECT_GT(marked, 0);
    EXPECT_EQ(fabric.switchAt(0).stats().ecnMarked,
              std::uint64_t(marked));
    // Uncongested direction never marks.
    sim::EventQueue eq2;
    Fabric f2(eq2, 3, FabricConfig{},
              "star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50,ecn=8k");
    bool clean = true;
    f2.send(1, 0, 4096, [&] { clean = !f2.rx().ecn; });
    eq2.run();
    EXPECT_TRUE(clean);
}

// --- PFC --------------------------------------------------------------

TEST(FabricTopo, PfcPausesUpstreamAndStaysLossless)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{},
                  "star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50,"
                  "xoff=16k,xon=8k");
    int delivered = 0;
    for (int i = 0; i < 64; ++i)
        for (unsigned src : {1u, 2u})
            fabric.send(src, 0, 4096, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 128);
    Switch &sw = fabric.switchAt(0);
    EXPECT_GT(sw.stats().pauseTx, 0u);
    EXPECT_GT(sw.stats().resumeTx, 0u);
    // Senders honored the pauses...
    EXPECT_GT(fabric.hostPort(1).stats().pauseRx +
                  fabric.hostPort(2).stats().pauseRx,
              0u);
    // ...so the bounded queue never dropped.
    Egress *down = portToward(sw, 0);
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->stats().capDropped, 0u);
    // And the queue indeed crossed XOFF before pausing.
    EXPECT_GE(sw.stats().queueHwmBytes, 16u * 1024u);
}

TEST(FabricTopo, WithoutPfcTheBoundedQueueDrops)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{},
                  "star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50,"
                  "queue=16k");
    int delivered = 0;
    for (int i = 0; i < 64; ++i)
        for (unsigned src : {1u, 2u})
            fabric.send(src, 0, 4096, [&] { ++delivered; });
    eq.run();
    Egress *down = portToward(fabric.switchAt(0), 0);
    ASSERT_NE(down, nullptr);
    EXPECT_GT(down->stats().capDropped, 0u);
    EXPECT_LT(delivered, 128);
}

TEST(FabricTopo, HostRxPausePropagatesTwoHops)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 4, FabricConfig{},
                  "leafspine:hosts=4,leaves=2,spines=1,"
                  "bw=8g,prop=100,overhead=0,fwd=50,xoff=16k,xon=8k");
    // h0 hangs off leaf0 (switch 0), h2 off leaf1 (switch 1), the
    // spine is switch 2. Pause h0's NIC, then flood it from h2.
    fabric.setHostRxPause(0, true);
    int delivered = 0;
    for (int i = 0; i < 64; ++i)
        fabric.send(2, 0, 4096, [&] { ++delivered; });
    // Let the backlog build and the pause cascade.
    eq.runUntil(2 * sim::kMillisecond);
    EXPECT_EQ(delivered, 0);
    Switch &leaf0 = fabric.switchAt(0);
    Switch &spine = fabric.switchAt(2);
    EXPECT_GT(leaf0.stats().pauseTx, 0u) << "hop 1: leaf0 -> spine";
    EXPECT_GT(spine.stats().pauseTx, 0u) << "hop 2: spine -> leaf1";
    // Release: everything drains, nothing was lost.
    fabric.setHostRxPause(0, false);
    eq.run();
    EXPECT_EQ(delivered, 64);
    EXPECT_GT(leaf0.stats().resumeTx, 0u);
    EXPECT_GT(spine.stats().resumeTx, 0u);
}

// --- the switch fault site --------------------------------------------

TEST(SwitchFaults, DropDiscardsInsideTheCore)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{}, kFastStar3);
    fault::FaultInjector inj(eq, mustParse("switch:drop:nth=1"), 1);
    int delivered = 0;
    fabric.send(0, 2, 1000, [&] { ++delivered; });
    fabric.send(0, 2, 1000, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(fabric.switchAt(0).stats().injDropped, 1u);
    EXPECT_EQ(inj.injected(fault::Site::Switch), 1u);
}

TEST(SwitchFaults, StallFreezesTheEgressQueue)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{}, kFastStar3);
    fault::FaultInjector inj(
        eq, mustParse("switch:stall:nth=1,delay=10us"), 1);
    sim::Time arrival = 0;
    fabric.send(0, 2, 1000, [&] { arrival = eq.now(); });
    eq.run();
    EXPECT_EQ(fabric.switchAt(0).stats().injStalls, 1u);
    // Unstalled arrival would be 2250; the queue sat frozen instead.
    EXPECT_GE(arrival, sim::Time(10000));
}

TEST(SwitchFaults, FlapDropsArrivalsWhileDown)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{}, kFastStar3);
    fault::FaultInjector inj(
        eq, mustParse("switch:flap:nth=1,delay=10us"), 1);
    int delivered = 0;
    fabric.send(0, 2, 1000, [&] { ++delivered; });
    // Second packet departs well after the port recovers.
    eq.schedule(50000, [&] {
        fabric.send(0, 2, 1000, [&] { ++delivered; });
    });
    eq.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(fabric.switchAt(0).stats().injFlaps, 1u);
    Egress *down = portToward(fabric.switchAt(0), 2);
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->stats().downDropped, 1u);
}

TEST(SwitchFaults, PauseStormPausesEveryUpstreamPort)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 3, FabricConfig{}, kFastStar3);
    fault::FaultInjector inj(
        eq, mustParse("switch:pause:nth=1,delay=20us"), 1);
    int delivered = 0;
    fabric.send(0, 2, 1000, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 1); // the triggering packet still forwards
    EXPECT_EQ(fabric.switchAt(0).stats().injPauseStorms, 1u);
    // Every host NIC port got a pause and a matching resume.
    for (unsigned h = 0; h < 3; ++h) {
        EXPECT_EQ(fabric.hostPort(h).stats().pauseRx, 1u);
        EXPECT_EQ(fabric.hostPort(h).stats().resumeRx, 1u);
    }
}

// --- DCQCN ------------------------------------------------------------

TEST(Dcqcn, RateMachineCutsAndRecovers)
{
    DcqcnConfig cfg;
    cfg.enabled = true;
    DcqcnRate r;
    r.init(cfg, 40e9);
    EXPECT_FALSE(r.limiting());
    EXPECT_DOUBLE_EQ(r.rateBps(), 40e9);

    r.onCnp();
    EXPECT_TRUE(r.limiting());
    EXPECT_LT(r.rateBps(), 40e9);
    double after_one = r.rateBps();

    // Back-to-back CNPs keep cutting (alpha grows).
    r.onCnp();
    EXPECT_LT(r.rateBps(), after_one);

    // The floor holds under a CNP storm.
    for (int i = 0; i < 1000; ++i)
        r.onCnp();
    EXPECT_GE(r.rateBps(), cfg.minRateBps);

    // Increase rounds converge back to line rate and go inactive.
    int rounds = 0;
    while (r.increase() && rounds < 100000)
        ++rounds;
    EXPECT_FALSE(r.limiting());
    EXPECT_DOUBLE_EQ(r.rateBps(), 40e9);
    EXPECT_LT(rounds, 100000);

    // Inactive machine: increase() stays a no-op false.
    EXPECT_FALSE(r.increase());
}

TEST(Dcqcn, SendGapMatchesRate)
{
    DcqcnConfig cfg;
    cfg.enabled = true;
    DcqcnRate r;
    r.init(cfg, 8e9); // 1 byte/ns
    EXPECT_EQ(r.sendGap(1000), sim::Time(1000));
}

// --- end to end: QueuePairs over a congested topology -----------------

namespace {

/** Three-host star: two sender hosts incast one receiver host. */
struct IncastRig
{
    sim::EventQueue eq;
    Fabric fabric;
    mem::MemoryManager mm0, mm1, mm2;
    mem::AddressSpace &as0, &as1, &as2;
    core::NpfController npfc0, npfc1, npfc2;
    core::ChannelId ch0a, ch0b, ch1, ch2;
    std::unique_ptr<ib::QueuePair> rxA, rxB, txA, txB;

    explicit IncastRig(const std::string &topo, ib::QpConfig qcfg = {})
        : fabric(eq, 3,
                 FabricConfig{net::LinkConfig{8e9, 100, 0}, 50}, topo),
          mm0(256 * MiB), mm1(256 * MiB), mm2(256 * MiB),
          as0(mm0.createAddressSpace("h0")),
          as1(mm1.createAddressSpace("h1")),
          as2(mm2.createAddressSpace("h2")), npfc0(eq), npfc1(eq),
          npfc2(eq), ch0a(npfc0.attach(as0)), ch0b(npfc0.attach(as0)),
          ch1(npfc1.attach(as1)), ch2(npfc2.attach(as2))
    {
        rxA = std::make_unique<ib::QueuePair>(eq, fabric, 0, npfc0,
                                              ch0a, qcfg, 1);
        rxB = std::make_unique<ib::QueuePair>(eq, fabric, 0, npfc0,
                                              ch0b, qcfg, 2);
        txA = std::make_unique<ib::QueuePair>(eq, fabric, 1, npfc1, ch1,
                                              qcfg, 3);
        txB = std::make_unique<ib::QueuePair>(eq, fabric, 2, npfc2, ch2,
                                              qcfg, 4);
        rxA->connect(*txA);
        txA->connect(*rxA);
        rxB->connect(*txB);
        txB->connect(*rxB);
    }
};

} // namespace

TEST(IbDcqcn, CnpsEngageRateLimiterUnderIncast)
{
    ib::QpConfig qcfg;
    qcfg.dcqcn.enabled = true;
    IncastRig rig("star:hosts=3,bw=8g,prop=100,overhead=0,fwd=50,"
                  "ecn=16k", qcfg);

    const std::size_t kLen = 4 * MiB;
    mem::VirtAddr s1 = rig.as1.allocRegion(kLen);
    mem::VirtAddr s2 = rig.as2.allocRegion(kLen);
    mem::VirtAddr r1 = rig.as0.allocRegion(kLen);
    mem::VirtAddr r2 = rig.as0.allocRegion(kLen);
    rig.npfc1.prefault(rig.ch1, s1, kLen, true);
    rig.npfc2.prefault(rig.ch2, s2, kLen, true);
    rig.npfc0.prefault(rig.ch0a, r1, kLen, true);
    rig.npfc0.prefault(rig.ch0b, r2, kLen, true);

    int recvd = 0;
    auto on_recv = [&](const ib::Completion &c) {
        if (c.isRecv && c.ok)
            ++recvd;
    };
    rig.rxA->onCompletion(on_recv);
    rig.rxB->onCompletion(on_recv);
    rig.rxA->postRecv({ib::Opcode::Send, r1, kLen, 0, 1});
    rig.rxB->postRecv({ib::Opcode::Send, r2, kLen, 0, 2});
    rig.txA->postSend({ib::Opcode::Send, s1, kLen, 0, 11});
    rig.txB->postSend({ib::Opcode::Send, s2, kLen, 0, 12});

    ASSERT_TRUE(rig.eq.runUntilCondition([&] { return recvd == 2; },
                                         10 * sim::kSecond));
    // Congestion was seen, echoed and reacted to.
    EXPECT_GT(rig.fabric.switchAt(0).stats().ecnMarked, 0u);
    EXPECT_GT(rig.rxA->stats().cnpsSent + rig.rxB->stats().cnpsSent, 0u);
    EXPECT_GT(rig.txA->stats().cnpsReceived +
                  rig.txB->stats().cnpsReceived,
              0u);
}

TEST(IbDcqcn, RateLimitingBoundsSwitchQueueVsUncontrolled)
{
    const std::size_t kLen = 4 * MiB;
    auto hwm = [&](bool dcqcn) {
        ib::QpConfig qcfg;
        qcfg.dcqcn.enabled = dcqcn;
        IncastRig rig("star:hosts=3,bw=8g,prop=100,overhead=0,"
                      "fwd=50,ecn=16k,queue=64m", qcfg);
        mem::VirtAddr s1 = rig.as1.allocRegion(kLen);
        mem::VirtAddr s2 = rig.as2.allocRegion(kLen);
        mem::VirtAddr r1 = rig.as0.allocRegion(kLen);
        mem::VirtAddr r2 = rig.as0.allocRegion(kLen);
        rig.npfc1.prefault(rig.ch1, s1, kLen, true);
        rig.npfc2.prefault(rig.ch2, s2, kLen, true);
        rig.npfc0.prefault(rig.ch0a, r1, kLen, true);
        rig.npfc0.prefault(rig.ch0b, r2, kLen, true);
        int recvd = 0;
        auto on_recv = [&](const ib::Completion &c) {
            if (c.isRecv && c.ok)
                ++recvd;
        };
        rig.rxA->onCompletion(on_recv);
        rig.rxB->onCompletion(on_recv);
        rig.rxA->postRecv({ib::Opcode::Send, r1, kLen, 0, 1});
        rig.rxB->postRecv({ib::Opcode::Send, r2, kLen, 0, 2});
        rig.txA->postSend({ib::Opcode::Send, s1, kLen, 0, 11});
        rig.txB->postSend({ib::Opcode::Send, s2, kLen, 0, 12});
        EXPECT_TRUE(rig.eq.runUntilCondition([&] { return recvd == 2; },
                                             30 * sim::kSecond));
        return rig.fabric.switchAt(0).stats().queueHwmBytes;
    };
    std::uint64_t uncontrolled = hwm(false);
    std::uint64_t controlled = hwm(true);
    EXPECT_LT(controlled, uncontrolled);
}

// --- eth over the fabric ----------------------------------------------

TEST(EthFabric, ConnectViaRoutesFramesThroughSwitches)
{
    sim::EventQueue eq;
    Fabric fabric(eq, 2, FabricConfig{}, "star:hosts=2");
    mem::MemoryManager mmA(256 * MiB), mmB(256 * MiB);
    mem::AddressSpace &asA = mmA.createAddressSpace("A");
    mem::AddressSpace &asB = mmB.createAddressSpace("B");
    core::NpfController npfcA(eq), npfcB(eq);
    core::ChannelId chA = npfcA.attach(asA);
    core::ChannelId chB = npfcB.attach(asB);
    eth::EthNic nicA(eq, npfcA), nicB(eq, npfcB);
    nicA.connectVia(fabric, 0, 1, nicB);
    nicB.connectVia(fabric, 1, 0, nicA);

    eth::RxRingConfig rcfg;
    rcfg.size = 8;
    std::vector<std::uint64_t> got;
    unsigned ring = nicB.createRxRing(chB, rcfg, [&](const eth::Frame &f) {
        got.push_back(test::payloadValue(f));
    });
    mem::VirtAddr bufs = asB.allocRegion(8 * 2048);
    npfcB.prefault(chB, bufs, 8 * 2048, true);
    for (int i = 0; i < 8; ++i)
        nicB.postRxBuffer(ring, bufs + std::size_t(i) * 2048, 2048);

    mem::VirtAddr src = asA.allocRegion(MiB);
    npfcA.prefault(chA, src, MiB, true);
    unsigned txq = nicA.createTxQueue(chA);
    for (std::uint64_t i = 0; i < 3; ++i)
        nicA.send(txq, ring, src, 1400, test::payloadPool().acquire(i));
    eq.run();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(fabric.switchAt(0).stats().rxPackets, 3u);
}

// --- hpc over the fabric ----------------------------------------------

TEST(HpcFabric, ClusterRunsOnTopologySpec)
{
    sim::EventQueue eq;
    hpc::ClusterConfig cfg;
    cfg.ranks = 4;
    cfg.memoryPerRank = 1ull << 30;
    cfg.topology = "leafspine:hosts=4,leaves=2,spines=2,bw=56g";
    hpc::Cluster c(eq, cfg, hpc::RegMode::Npf);
    mem::VirtAddr s = c.allocBuffer(0, MiB);
    mem::VirtAddr r = c.allocBuffer(3, MiB);
    bool sent = false, received = false;
    c.irecv(3, 0, r, MiB, [&] { received = true; });
    c.isend(0, 3, s, MiB, [&] { sent = true; });
    eq.runUntilCondition([&] { return sent && received; },
                         10 * sim::kSecond);
    EXPECT_TRUE(sent);
    EXPECT_TRUE(received);
}
