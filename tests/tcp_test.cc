/**
 * @file
 * TCP stack tests: handshake, in-order delivery, slow start, fast
 * retransmit, RTO backoff and give-up — both against a programmable
 * lossy pipe and end-to-end over the simulated NICs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/random.hh"
#include "tcp/tcp_connection.hh"
#include "testbed.hh"

using namespace npf;
using namespace npf::tcp;

namespace {

/** Two TcpConnections joined by a delay/loss pipe (no NIC). */
struct TcpPipe
{
    sim::EventQueue eq;
    std::unique_ptr<TcpConnection> a, b;
    sim::Time delay = 50 * sim::kMicrosecond;
    std::function<bool(const Segment &)> dropToB; ///< true = drop
    sim::Rng rng{5};

    explicit TcpPipe(TcpConfig cfg = {})
    {
        a = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr) {
                if (dropToB && dropToB(s))
                    return;
                eq.scheduleAfter(delay, [this, s] { b->receiveSegment(s); });
            },
            cfg);
        b = std::make_unique<TcpConnection>(
            eq, 1,
            [this](const Segment &s, mem::VirtAddr) {
                eq.scheduleAfter(delay, [this, s] { a->receiveSegment(s); });
            },
            cfg);
    }

    bool
    connect()
    {
        b->listen();
        bool done = false, ok = false;
        a->connect([&](bool success) {
            done = true;
            ok = success;
        });
        eq.runUntilCondition([&] { return done; },
                             eq.now() + 300 * sim::kSecond);
        return ok;
    }
};

} // namespace

TEST(Tcp, HandshakeEstablishes)
{
    TcpPipe pipe;
    EXPECT_TRUE(pipe.connect());
    EXPECT_TRUE(pipe.a->established());
}

TEST(Tcp, SynRetriesWithBackoffThenGivesUp)
{
    TcpPipe pipe;
    pipe.dropToB = [](const Segment &) { return true; }; // black hole
    bool done = false, ok = true;
    pipe.b->listen();
    pipe.a->connect([&](bool success) {
        done = true;
        ok = success;
    });
    pipe.eq.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(pipe.a->failed());
    EXPECT_GT(pipe.a->stats().synRetries, 3u);
    // Exponential backoff: give-up takes 1+2+4+8+16+32+64 = 127 s.
    EXPECT_GT(pipe.eq.now(), 60 * sim::kSecond);
}

TEST(Tcp, BulkTransferDeliversExactly)
{
    TcpPipe pipe;
    ASSERT_TRUE(pipe.connect());
    std::uint64_t delivered = 0;
    pipe.b->onDeliver([&](std::size_t n) { delivered += n; });
    constexpr std::size_t kBytes = 1 << 20;
    pipe.a->send(kBytes);
    pipe.eq.runUntilCondition([&] { return delivered == kBytes; },
                              pipe.eq.now() + 60 * sim::kSecond);
    EXPECT_EQ(delivered, kBytes);
    EXPECT_EQ(pipe.a->stats().retransmissions, 0u);
}

TEST(Tcp, SlowStartGrowsCwnd)
{
    TcpPipe pipe;
    ASSERT_TRUE(pipe.connect());
    std::size_t initial = pipe.a->cwnd();
    std::uint64_t delivered = 0;
    pipe.b->onDeliver([&](std::size_t n) { delivered += n; });
    pipe.a->send(1 << 20);
    pipe.eq.runUntilCondition([&] { return delivered == (1u << 20); },
                              pipe.eq.now() + 60 * sim::kSecond);
    EXPECT_GT(pipe.a->cwnd(), 2 * initial);
}

TEST(Tcp, SingleLossRecoversByFastRetransmit)
{
    TcpPipe pipe;
    ASSERT_TRUE(pipe.connect());
    int dropped = 0;
    pipe.dropToB = [&](const Segment &s) {
        // Drop exactly one data segment mid-stream.
        if (s.len > 0 && s.seq > 100000 && dropped == 0) {
            ++dropped;
            return true;
        }
        return false;
    };
    std::uint64_t delivered = 0;
    pipe.b->onDeliver([&](std::size_t n) { delivered += n; });
    constexpr std::size_t kBytes = 1 << 20;
    pipe.a->send(kBytes);
    pipe.eq.runUntilCondition([&] { return delivered == kBytes; },
                              pipe.eq.now() + 120 * sim::kSecond);
    EXPECT_EQ(delivered, kBytes);
    EXPECT_EQ(dropped, 1);
    EXPECT_GE(pipe.a->stats().fastRetransmits, 1u);
    // Fast retransmit means no 200 ms stall: well under a second.
    EXPECT_LT(pipe.eq.now(), 2 * sim::kSecond);
}

TEST(Tcp, PersistentLossBacksOffAndFails)
{
    TcpPipe pipe;
    ASSERT_TRUE(pipe.connect());
    pipe.dropToB = [](const Segment &s) { return s.len > 0; };
    bool failed = false;
    pipe.a->onFailure([&] { failed = true; });
    pipe.a->send(10000);
    pipe.eq.run();
    EXPECT_TRUE(failed);
    EXPECT_GE(pipe.a->stats().timeouts, 15u)
        << "gives up only after maxDataRetries RTOs";
    EXPECT_GT(pipe.eq.now(), 100 * sim::kSecond)
        << "exponential backoff stretches the attempts out";
}

TEST(Tcp, RandomLossStillDeliversInOrderExactly)
{
    TcpPipe pipe;
    ASSERT_TRUE(pipe.connect());
    pipe.dropToB = [&](const Segment &s) {
        return s.len > 0 && pipe.rng.bernoulli(0.05);
    };
    std::uint64_t delivered = 0;
    pipe.b->onDeliver([&](std::size_t n) { delivered += n; });
    constexpr std::size_t kBytes = 1 << 20;
    pipe.a->send(kBytes);
    pipe.eq.runUntilCondition([&] { return delivered == kBytes; },
                              pipe.eq.now() + 600 * sim::kSecond);
    EXPECT_EQ(delivered, kBytes) << "reliability under 5% loss";
    EXPECT_GT(pipe.a->stats().retransmissions, 0u);
}

TEST(Tcp, RtoEstimatorTracksRtt)
{
    TcpPipe pipe;
    pipe.delay = 5 * sim::kMillisecond; // 10 ms RTT
    ASSERT_TRUE(pipe.connect());
    std::uint64_t delivered = 0;
    pipe.b->onDeliver([&](std::size_t n) { delivered += n; });
    pipe.a->send(256 * 1024);
    pipe.eq.runUntilCondition([&] { return delivered == 256u * 1024; },
                              pipe.eq.now() + 60 * sim::kSecond);
    EXPECT_GE(pipe.a->currentRto(), 200 * sim::kMillisecond);
    EXPECT_LT(pipe.a->currentRto(), 2 * sim::kSecond);
}

// --- end-to-end over the NIC testbed ------------------------------------

TEST(TcpOverNic, PinnedRingTransfersCleanly)
{
    test::EthTestbed tb(eth::RxFaultPolicy::Pin);
    ASSERT_TRUE(tb.connect(1));
    auto &cli = tb.client->connection(1);
    auto &srv = tb.server->connection(1);
    std::uint64_t delivered = 0;
    srv.onDeliver([&](std::size_t n) { delivered += n; });
    cli.send(512 * 1024);
    tb.eq.runUntilCondition([&] { return delivered == 512u * 1024; },
                            tb.eq.now() + 60 * sim::kSecond);
    EXPECT_EQ(delivered, 512u * 1024);
    EXPECT_EQ(tb.server->ringStats().rnpfs, 0u);
}

TEST(TcpOverNic, BackupRingSurvivesColdStart)
{
    test::EthTestbed tb(eth::RxFaultPolicy::BackupRing);
    ASSERT_TRUE(tb.connect(1));
    auto &cli = tb.client->connection(1);
    auto &srv = tb.server->connection(1);
    std::uint64_t delivered = 0;
    srv.onDeliver([&](std::size_t n) { delivered += n; });
    cli.send(512 * 1024);
    tb.eq.runUntilCondition([&] { return delivered == 512u * 1024; },
                            tb.eq.now() + 60 * sim::kSecond);
    EXPECT_EQ(delivered, 512u * 1024);
    EXPECT_GT(tb.server->ringStats().rnpfs, 0u) << "the ring was cold";
    EXPECT_EQ(cli.stats().timeouts, 0u)
        << "no TCP-visible loss with the backup ring";
}

TEST(TcpOverNic, DropPolicyCausesTimeoutsOnColdStart)
{
    test::EthTestbed tb(eth::RxFaultPolicy::Drop);
    ASSERT_TRUE(tb.connect(1, 300 * sim::kSecond));
    auto &cli = tb.client->connection(1);
    auto &srv = tb.server->connection(1);
    std::uint64_t delivered = 0;
    srv.onDeliver([&](std::size_t n) { delivered += n; });
    cli.send(256 * 1024);
    tb.eq.runUntilCondition([&] { return delivered == 256u * 1024; },
                            tb.eq.now() + 600 * sim::kSecond);
    EXPECT_EQ(delivered, 256u * 1024) << "eventually recovers";
    EXPECT_GT(cli.stats().retransmissions, 0u)
        << "cold-ring drops force TCP retransmissions";
}

TEST(MessageStreamTest, FramesMessagesAcrossSegments)
{
    test::EthTestbed tb(eth::RxFaultPolicy::Pin);
    ASSERT_TRUE(tb.connect(1));
    auto &cli = tb.client->connection(1);
    auto &srv = tb.server->connection(1);
    MessageStream stream(cli, srv);
    std::vector<std::pair<std::uint64_t, std::size_t>> msgs;
    stream.onMessage([&](std::uint64_t cookie, std::size_t len) {
        msgs.push_back({cookie, len});
    });
    stream.sendMessage(100, 0, 11);
    stream.sendMessage(5000, 0, 22); // spans multiple segments
    stream.sendMessage(64, 0, 33);
    tb.eq.runUntilCondition([&] { return msgs.size() == 3; },
                            tb.eq.now() + 60 * sim::kSecond);
    ASSERT_EQ(msgs.size(), 3u);
    EXPECT_EQ(msgs[0], (std::pair<std::uint64_t, std::size_t>{11, 100}));
    EXPECT_EQ(msgs[1], (std::pair<std::uint64_t, std::size_t>{22, 5000}));
    EXPECT_EQ(msgs[2], (std::pair<std::uint64_t, std::size_t>{33, 64}));
}
