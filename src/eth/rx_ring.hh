/**
 * @file
 * Receive-ring state for the backup-ring NIC of the paper's §5.
 * Field names follow the hardware pseudo-code of Figure 6: head,
 * head_offset, bitmap, bm_index, bm_size. Indices are monotonically
 * increasing 64-bit values; slot = index % size.
 */

#ifndef NPF_ETH_RX_RING_HH
#define NPF_ETH_RX_RING_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "eth/frame.hh"
#include "mem/types.hh"

namespace npf::eth {

/** How a ring reacts to receive NPFs (the Fig. 4 configurations). */
enum class RxFaultPolicy {
    Pin,        ///< buffers pre-pinned: the baseline, faults impossible
    Drop,       ///< discard faulting packets (the failed strawman)
    BackupRing, ///< the paper's solution
};

/** Per-ring configuration. */
struct RxRingConfig
{
    std::size_t size = 256;    ///< descriptor count
    std::size_t bmSize = 64;   ///< Fig. 6 bm_size: provider's bound on
                               ///< packets parked for this ring
    RxFaultPolicy policy = RxFaultPolicy::BackupRing;

    /** §6.4 what-if: synthetic rNPF probability per packet. */
    double syntheticRnpfProb = 0.0;
    bool syntheticMajor = false;

    /**
     * §3 "Completeness" optimization: upon an rNPF, also pre-fault
     * the buffers of the next N posted descriptors, shortening cold
     * sequences. 0 disables (the paper notes pre-faulting helps but
     * is not a complete solution by itself).
     */
    unsigned prefaultAhead = 0;
};

/** One receive descriptor posted by the IOuser. */
struct RxDescriptor
{
    mem::VirtAddr buf = 0;
    std::size_t len = 0;
    Frame frame;         ///< filled on completion
    bool filled = false; ///< frame stored (directly or via backup)
};

/**
 * Receive ring state (hardware + a little IOuser bookkeeping).
 *
 * Invariants (property-tested in tests/eth):
 *   userHead <= head <= head + headOffset <= tail <= userHead + size
 *   headOffset == number of in-window entries after `head`, of which
 *   the ones with bitmap bit set are unresolved rNPFs.
 */
struct RxRing
{
    unsigned id = 0;
    RxRingConfig cfg;
    std::vector<RxDescriptor> desc;
    std::vector<std::uint8_t> bitmap; ///< Fig. 6 bitmap[bm_size]

    std::uint64_t tail = 0;       ///< next post index (IOuser producer)
    std::uint64_t head = 0;       ///< completion boundary (Fig. 6 head)
    std::uint64_t headOffset = 0; ///< Fig. 6 head_offset
    std::uint64_t bmIndex = 0;    ///< Fig. 6 bm_index
    std::uint64_t userHead = 0;   ///< IOuser consumption boundary

    /** IOuser rx callback, invoked per consumed frame. */
    std::function<void(const Frame &)> rxHandler;
    /** Driver hook: fires when the IOuser advances tail (the paper's
     *  "ask the NIC to interrupt whenever the IOuser changes the
     *  tail" while rNPF resolution waits for ring room). */
    std::function<void()> tailAdvanceHook;

    bool interruptPending = false; ///< coalescing flag

    struct Stats
    {
        std::uint64_t delivered = 0;      ///< frames handed to IOuser
        std::uint64_t storedDirect = 0;   ///< stored without fault
        std::uint64_t rnpfs = 0;          ///< faulting packets
        std::uint64_t toBackup = 0;       ///< parked in the backup ring
        std::uint64_t dropped = 0;        ///< lost (policy or overflow)
        std::uint64_t resolved = 0;       ///< rNPFs merged back
    };
    Stats stats;

    RxDescriptor &slot(std::uint64_t idx) { return desc[idx % cfg.size]; }
    std::uint8_t &bit(std::uint64_t bit_index)
    {
        return bitmap[bit_index % cfg.bmSize];
    }

    /** Descriptors the IOuser may still post without overrunning. */
    std::uint64_t
    postableSlots() const
    {
        return cfg.size - (tail - userHead);
    }
};

} // namespace npf::eth

#endif // NPF_ETH_RX_RING_HH
