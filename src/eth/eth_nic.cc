#include "eth/eth_nic.hh"

#include <cassert>
#include <string>

#include "eth/backup_ring.hh"
#include "fault/fault.hh"
#include "net/fabric.hh"
#include "obs/attribution.hh"
#include "obs/flow_tracer.hh"

namespace npf::eth {

EthNic::EthNic(sim::EventQueue &eq, core::NpfController &npfc,
               EthNicConfig cfg, std::uint64_t seed)
    : eq_(eq), npfc_(npfc), cfg_(cfg), rng_(seed)
{
    obs_.init("eth.nic");
    obs_.counter("frames_sent", &stats_.framesSent);
    obs_.counter("frames_received", &stats_.framesReceived);
    obs_.counter("tx_npfs", &stats_.txNpfs);
    obs_.counter("unroutable", &stats_.unroutable);
    obs_.counter("rx_corrupt", &stats_.rxCorrupt);
    obs_.counter("rx_stalls", &stats_.rxStalls);
    backup_ = std::make_unique<BackupRingManager>(eq_, *this,
                                                  cfg_.backupRingSize);
}

EthNic::~EthNic() = default;

void
EthNic::connectTo(EthNic &peer, net::LinkConfig link_cfg)
{
    peer_ = &peer;
    txLink_ = std::make_unique<net::Link>(eq_, link_cfg);
}

void
EthNic::connectVia(net::Fabric &fabric, unsigned self,
                   unsigned peer_node, EthNic &peer)
{
    peer_ = &peer;
    fabric_ = &fabric;
    fabricSelf_ = self;
    fabricPeer_ = peer_node;
}

unsigned
EthNic::createRxRing(core::ChannelId ch, RxRingConfig cfg,
                     RxHandler handler)
{
    auto id = static_cast<unsigned>(rings_.size());
    rings_.push_back(std::make_unique<RxRing>());
    RxRing &r = *rings_.back();
    r.id = id;
    r.cfg = cfg;
    r.desc.resize(cfg.size);
    r.bitmap.assign(cfg.bmSize, 0);
    r.rxHandler = std::move(handler);
    ringChannel_.push_back(ch);
    // Rings are heap-allocated and live as long as the NIC, so their
    // Stats fields are stable registration targets.
    std::string pfx = "ring" + std::to_string(id);
    obs_.counter(pfx + ".delivered", &r.stats.delivered);
    obs_.counter(pfx + ".stored_direct", &r.stats.storedDirect);
    obs_.counter(pfx + ".rnpfs", &r.stats.rnpfs);
    obs_.counter(pfx + ".to_backup", &r.stats.toBackup);
    obs_.counter(pfx + ".dropped", &r.stats.dropped);
    obs_.counter(pfx + ".resolved", &r.stats.resolved);
    return id;
}

void
EthNic::postRxBuffer(unsigned ring, mem::VirtAddr buf, std::size_t len)
{
    RxRing &r = *rings_[ring];
    assert(r.postableSlots() > 0 && "rx ring over-posted");
    RxDescriptor &d = r.slot(r.tail);
    d.buf = buf;
    d.len = len;
    d.filled = false;
    ++r.tail;
    if (r.tailAdvanceHook)
        r.tailAdvanceHook();
}

unsigned
EthNic::createTxQueue(core::ChannelId ch)
{
    auto id = static_cast<unsigned>(txQueues_.size());
    txQueues_.push_back(std::make_unique<TxQueue>());
    txQueues_.back()->channel = ch;
    return id;
}

void
EthNic::send(unsigned txq, unsigned dst_ring, mem::VirtAddr src,
             std::size_t len, sim::PoolRef payload)
{
    TxQueue &t = *txQueues_[txq];
    TxJob job;
    job.frame.dstRing = dst_ring;
    job.frame.bytes = len;
    job.frame.payload = std::move(payload);
    job.src = src;
    t.q.push_back(std::move(job));
    pumpTx(txq);
}

void
EthNic::pumpTx(unsigned txq)
{
    TxQueue &t = *txQueues_[txq];
    if (t.faultPending || t.q.empty())
        return;
    assert(peer_ != nullptr && (txLink_ != nullptr || fabric_ != nullptr) &&
           "NIC not connected");

    TxJob &job = t.q.front();

    // Send-side NPF: the NIC's DMA read of the IOuser buffer faults.
    // Local data: stall this queue until resolution (§4 principles
    // apply to Ethernet transmit too).
    if (!npfc_.dmaAccess(t.channel, job.src, job.frame.bytes,
                         /*write=*/false)) {
        ++stats_.txNpfs;
        obs::tracer().instant(obs::Track::Nic, "npf", "tx.npf");
        t.faultPending = true;
        npfc_.raiseNpf(t.channel, job.src, job.frame.bytes,
                       /*write=*/false,
                       [this, txq](const core::NpfBreakdown &) {
                           txQueues_[txq]->faultPending = false;
                           pumpTx(txq);
                       });
        return;
    }

    Frame f = std::move(job.frame);
    t.q.pop_front();
    ++stats_.framesSent;
    EthNic *peer = peer_;
    std::size_t wire_bytes = f.bytes;
    // Per-frame delivery rides the event queue's inline delegate
    // storage; keep the capture (peer pointer + Frame) small enough
    // that frame transmission never allocates.
    auto deliver = [peer, f = std::move(f)]() mutable {
        peer->receive(std::move(f));
    };
    static_assert(sim::Delegate::fitsInline<decltype(deliver)>,
                  "eth frame delivery closure must stay inline");
    if (fabric_ != nullptr)
        fabric_->send(fabricSelf_, fabricPeer_, wire_bytes,
                      std::move(deliver));
    else
        txLink_->send(wire_bytes, std::move(deliver));

    if (!t.q.empty() && !t.pumpScheduled) {
        t.pumpScheduled = true;
        sim::Time next = fabric_ != nullptr
                             ? fabric_->txEta(fabricSelf_)
                             : txLink_->busyUntil();
        eq_.schedule(next, [this, txq] {
            txQueues_[txq]->pumpScheduled = false;
            pumpTx(txq);
        }, "eth.tx_pump");
    }
}

void
EthNic::receive(Frame f)
{
    ++stats_.framesReceived;
    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::EthRx)) {
            if (d->action == fault::Action::Corrupt) {
                // Bad FCS: the MAC counts and discards the frame.
                ++stats_.rxCorrupt;
                return;
            }
            if (d->action == fault::Action::Stall) {
                // RX pipeline hiccup: the frame sits in the MAC FIFO
                // before ring dispatch (seq is assigned at dispatch,
                // so ring ordering invariants hold).
                ++stats_.rxStalls;
                eq_.scheduleAfter(d->delay,
                                  [this, f = std::move(f)]() mutable {
                                      dispatchRx(std::move(f));
                                  }, "fault.eth_rx_stall");
                return;
            }
        }
    }
    dispatchRx(std::move(f));
}

void
EthNic::dispatchRx(Frame f)
{
    if (f.dstRing >= rings_.size()) {
        ++stats_.unroutable;
        return;
    }
    f.seq = rxSeq_++;
    recvToRing(*rings_[f.dstRing], std::move(f));
}

void
EthNic::recvToRing(RxRing &r, Frame f)
{
    // Fig. 6 recv(): try the IOuser ring at head + head_offset.
    std::uint64_t idx = r.head + r.headOffset;
    core::ChannelId ch = ringChannel_[r.id];

    bool has_descriptor = idx < r.tail;
    bool present = false;
    bool synthetic_fault = false;
    RxDescriptor *d = nullptr;

    if (has_descriptor) {
        d = &r.slot(idx);
        std::size_t dma_len = std::min(f.bytes, d->len);
        present = npfc_.checkDma(ch, d->buf, dma_len).ok;
        if (present && r.cfg.syntheticRnpfProb > 0.0 &&
            rng_.bernoulli(r.cfg.syntheticRnpfProb)) {
            present = false;
            synthetic_fault = true;
        }
    }

    // The provider's bound (Fig. 6 bm_size) limits the whole pending
    // window, including packets stored directly behind an unresolved
    // rNPF: beyond it, bitmap indices would alias, so the NIC drops.
    // (The paper's pseudo-code checks only the backup path; bounding
    // both is required for bitmap correctness.)
    if (r.cfg.policy == RxFaultPolicy::BackupRing &&
        r.headOffset >= r.cfg.bmSize) {
        ++r.stats.dropped;
        return;
    }

    if (has_descriptor && present) {
        if (npfc_.dmaAccess(ch, d->buf, std::min(f.bytes, d->len),
                            /*write=*/true)) {
            // Store directly in the IOuser ring.
            d->frame = std::move(f);
            d->filled = true;
            ++r.stats.storedDirect;
            if (r.headOffset != 0) {
                // Earlier rNPFs unresolved: count it, but completion
                // must wait (ordering, Fig. 5).
                ++r.headOffset;
            } else {
                ++r.head;
                raiseUserIsr(r);
            }
            return;
        }
        // Injected rNPF at DMA time on a resident page: take the
        // synthetic-resolution path (the backing page is mapped, so
        // raiseNpf would be a no-op; only the latency is modeled).
        present = false;
        synthetic_fault = true;
    }

    bool fault = has_descriptor; // absent descriptor is overflow, not NPF
    if (fault)
        ++r.stats.rnpfs;

    // §3 pre-faulting optimization: warm the buffers of upcoming
    // descriptors that will likely be referenced soon.
    if (fault && !synthetic_fault && r.cfg.prefaultAhead > 0) {
        for (unsigned k = 1; k <= r.cfg.prefaultAhead; ++k) {
            std::uint64_t ahead = idx + k;
            if (ahead >= r.tail)
                break;
            RxDescriptor &da = r.slot(ahead);
            if (!npfc_.checkDma(ch, da.buf, da.len).ok) {
                npfc_.raiseNpf(ch, da.buf, da.len, /*write=*/true,
                               [](const core::NpfBreakdown &) {});
            }
        }
    }

    switch (r.cfg.policy) {
      case RxFaultPolicy::Pin:
      case RxFaultPolicy::Drop:
        ++r.stats.dropped;
        if (fault && !synthetic_fault) {
            // The NPF is still raised and resolved — only the packet
            // is lost. This is what warms the ring up, one drop at a
            // time (the cold-ring problem, §5).
            npfc_.raiseNpf(ch, d->buf, d->len, /*write=*/true,
                           [](const core::NpfBreakdown &) {});
        }
        return;

      case RxFaultPolicy::BackupRing: {
        BackupEntry e;
        e.ringId = r.id;
        e.idx = idx;
        e.bitIndex = r.bmIndex + r.headOffset;
        e.frame = std::move(f);
        e.synthetic = synthetic_fault;
        e.syntheticMajor = r.cfg.syntheticMajor;
        // One flow per rNPF journey: park -> isr -> resolve -> copy
        // -> merge-back (Fig. 5 steps 1-4).
        e.obsFlow = obs::tracer().beginFlow("rnpf", "rnpf");
        obs::FlowId flow = e.obsFlow;
        obs::tracer().instant(obs::Track::Nic, "rnpf", "rnpf.parked",
                              flow);
        if (!backup_->store(std::move(e))) {
            ++r.stats.dropped; // backup ring itself is full
            obs::tracer().instant(obs::Track::Nic, "rnpf",
                                  "rnpf.overflow_drop", flow);
            obs::tracer().endFlow(flow);
            return;
        }
        // Head-of-line blocking starts with the first parked slot:
        // every in-order frame behind it now waits on rNPF
        // resolution. Host-global, so it goes on the root lane.
        if (r.headOffset == 0)
            obs::attributor().blockBegin(obs::attributor().rootLane(),
                                         obs::Phase::NpfDriver);
        r.bit(r.bmIndex + r.headOffset) = 1;
        ++r.headOffset;
        ++r.stats.toBackup;
        return;
      }
    }
}

void
EthNic::resolveRnpf(unsigned ring, std::uint64_t bit_index)
{
    RxRing &r = *rings_[ring];
    r.bit(bit_index) = 0;
    ++r.stats.resolved;
    bool advanced = false;
    while (r.headOffset > 0 && r.bit(r.bmIndex) == 0) {
        --r.headOffset;
        ++r.head;
        ++r.bmIndex;
        advanced = true;
    }
    if (advanced && r.headOffset == 0)
        obs::attributor().blockEnd(obs::attributor().rootLane(),
                                   obs::Phase::NpfDriver);
    if (advanced)
        raiseUserIsr(r);
}

void
EthNic::raiseUserIsr(RxRing &r)
{
    if (r.interruptPending)
        return; // coalesced
    r.interruptPending = true;
    eq_.scheduleAfter(cfg_.interruptLatency, [this, id = r.id] {
        RxRing &ring = *rings_[id];
        ring.interruptPending = false;
        deliverToUser(ring);
    }, "eth.user_isr");
}

void
EthNic::deliverToUser(RxRing &r)
{
    while (r.userHead < r.head) {
        RxDescriptor &d = r.slot(r.userHead);
        assert(d.filled && "completion boundary passed unfilled slot");
        Frame f = std::move(d.frame);
        d.filled = false;
        ++r.userHead;
        ++r.stats.delivered;
        if (r.rxHandler)
            r.rxHandler(f);
    }
}

} // namespace npf::eth
