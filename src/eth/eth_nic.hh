/**
 * @file
 * Ethernet NIC with true backup-ring rNPF support (the hardware the
 * paper's §5 prototype emulates by packet duplication — we simulate
 * the real design: faulting packets are steered to the IOprovider's
 * pinned backup ring, with the metadata the driver needs to merge
 * them back).
 */

#ifndef NPF_ETH_ETH_NIC_HH
#define NPF_ETH_ETH_NIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/npf_controller.hh"
#include "eth/frame.hh"
#include "eth/rx_ring.hh"
#include "net/link.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/ring_deque.hh"

namespace npf::net {
class Fabric;
}

namespace npf::eth {

class BackupRingManager;

/** NIC-wide configuration. */
struct EthNicConfig
{
    sim::Time interruptLatency = sim::fromMicroseconds(4);
    std::size_t backupRingSize = 1024; ///< pinned provider entries
    /** CPU copy bandwidth for merging backup packets (Fig. 5 step 4). */
    double copyBytesPerSec = 8e9;
};

/**
 * One Ethernet NIC. Rings are IOchannels: each pairs a hardware
 * receive ring with an NpfController channel (its IOMMU view of the
 * owning IOuser's address space).
 */
class EthNic
{
  public:
    using RxHandler = std::function<void(const Frame &)>;

    struct Stats
    {
        std::uint64_t framesSent = 0;
        std::uint64_t framesReceived = 0;
        std::uint64_t txNpfs = 0;
        std::uint64_t unroutable = 0;
        std::uint64_t rxCorrupt = 0; ///< fault-injected FCS drops
        std::uint64_t rxStalls = 0;  ///< fault-injected RX stalls
    };

    EthNic(sim::EventQueue &eq, core::NpfController &npfc,
           EthNicConfig cfg = {}, std::uint64_t seed = 17);
    ~EthNic();

    EthNic(const EthNic &) = delete;
    EthNic &operator=(const EthNic &) = delete;

    /** Attach the transmit wire toward @p peer (call on both NICs). */
    void connectTo(EthNic &peer, net::LinkConfig link_cfg = {});

    /**
     * Alternative to connectTo(): transmit through @p fabric as host
     * @p self toward host @p peer_node, so frames cross real switch
     * queues (ECN marks, PFC pauses, fabric fault sites) instead of a
     * private point-to-point wire. Call on both NICs with the roles
     * swapped. The fabric must outlive the NIC.
     */
    void connectVia(net::Fabric &fabric, unsigned self,
                    unsigned peer_node, EthNic &peer);

    // --- receive rings (IOchannels) --------------------------------

    /** Create a receive ring bound to NpfController channel @p ch. */
    unsigned createRxRing(core::ChannelId ch, RxRingConfig cfg,
                          RxHandler handler);

    /** IOuser: post one receive buffer (advances Fig. 6 tail). */
    void postRxBuffer(unsigned ring, mem::VirtAddr buf, std::size_t len);

    RxRing &ring(unsigned id) { return *rings_[id]; }
    const RxRing &ring(unsigned id) const { return *rings_[id]; }
    core::ChannelId ringChannel(unsigned id) const
    {
        return ringChannel_[id];
    }
    std::size_t ringCount() const { return rings_.size(); }

    // --- transmit ----------------------------------------------------

    /** Create a transmit queue DMA-reading through channel @p ch. */
    unsigned createTxQueue(core::ChannelId ch);

    /**
     * Transmit @p len bytes from @p src (IOuser memory; may fault —
     * a send-side NPF stalls the queue until resolution) toward ring
     * @p dst_ring of the connected peer NIC. The NIC takes ownership
     * of the pooled @p payload; it is released exactly once wherever
     * the frame's journey ends (see eth/frame.hh).
     */
    void send(unsigned txq, unsigned dst_ring, mem::VirtAddr src,
              std::size_t len, sim::PoolRef payload);

    // --- hardware receive path (invoked by the wire) -----------------

    void receive(Frame f);

    /**
     * Driver -> hardware: rNPF at @p bit_index of @p ring resolved
     * (Fig. 6 resolve_rNPFs): clear the bit and sweep head forward
     * over resolved entries.
     */
    void resolveRnpf(unsigned ring, std::uint64_t bit_index);

    core::NpfController &npfc() { return npfc_; }
    sim::EventQueue &eventQueue() { return eq_; }
    const EthNicConfig &config() const { return cfg_; }
    BackupRingManager &backupManager() { return *backup_; }
    const Stats &stats() const { return stats_; }
    net::Link *txLink() { return txLink_.get(); }

  private:
    struct TxJob
    {
        Frame frame;
        mem::VirtAddr src;
    };

    struct TxQueue
    {
        core::ChannelId channel;
        sim::RingDeque<TxJob> q; ///< grows once, then allocation-free
        bool pumpScheduled = false;
        bool faultPending = false;
    };

    void dispatchRx(Frame f);
    void recvToRing(RxRing &r, Frame f);
    void raiseUserIsr(RxRing &r);
    void deliverToUser(RxRing &r);
    void pumpTx(unsigned txq);

    sim::EventQueue &eq_;
    core::NpfController &npfc_;
    EthNicConfig cfg_;
    sim::Rng rng_;
    Stats stats_;

    EthNic *peer_ = nullptr;
    std::unique_ptr<net::Link> txLink_;
    net::Fabric *fabric_ = nullptr; ///< connectVia() transport
    unsigned fabricSelf_ = 0;
    unsigned fabricPeer_ = 0;
    std::vector<std::unique_ptr<RxRing>> rings_;
    std::vector<core::ChannelId> ringChannel_;
    std::vector<std::unique_ptr<TxQueue>> txQueues_;
    std::unique_ptr<BackupRingManager> backup_;
    std::uint64_t rxSeq_ = 0;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::eth

#endif // NPF_ETH_ETH_NIC_HH
