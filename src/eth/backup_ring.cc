#include "eth/backup_ring.hh"

#include <cassert>

#include "eth/eth_nic.hh"
#include "obs/flow_tracer.hh"
#include "sim/log.hh"

namespace npf::eth {

BackupRingManager::BackupRingManager(sim::EventQueue &eq, EthNic &nic,
                                     std::size_t capacity)
    : eq_(eq), nic_(nic), capacity_(capacity)
{
    obs_.init("eth.backup");
    obs_.counter("parked", &stats_.parked);
    obs_.counter("overflow_drops", &stats_.overflowDrops);
    obs_.counter("resolved", &stats_.resolved);
    obs_.counter("resolution_retries", &stats_.resolutionRetries);
    obs_.counter("waits_for_room", &stats_.waitsForRoom);
    obs_.gauge("pending", [this] { return double(pendingCount_); });
}

BackupRingManager::SwQueue &
BackupRingManager::sw(unsigned ring_id)
{
    // Ring ids are dense and small; grow on first sight of a new one
    // (setup-time only, the queues themselves never shrink).
    if (swQueues_.size() <= ring_id)
        swQueues_.resize(ring_id + 1);
    return swQueues_[ring_id];
}

bool
BackupRingManager::store(BackupEntry e)
{
    if (hwRing_.size() >= capacity_) {
        ++stats_.overflowDrops;
        return false;
    }
    hwRing_.push_back(std::move(e));
    ++stats_.parked;
    ++pendingCount_;
    scheduleIsr();
    return true;
}

void
BackupRingManager::scheduleIsr()
{
    if (isrPending_)
        return; // coalesced, NAPI-style
    isrPending_ = true;
    eq_.scheduleAfter(nic_.config().interruptLatency, [this] {
        isrPending_ = false;
        isr();
    }, "eth.backup.isr");
}

void
BackupRingManager::isr()
{
    // Drain the pinned hardware ring into per-IOuser software queues
    // ("promptly replenish the backup ring so as not to run out of
    // buffers", §5), then wake the per-ring resolver threads.
    while (!hwRing_.empty()) {
        BackupEntry e = std::move(hwRing_.front());
        hwRing_.pop_front();
        unsigned rid = e.ringId;
        obs::FlowScope fs(e.obsFlow);
        sim::logf(sim::LogLevel::Debug, eq_.now(),
                  "rnpf: ring=%u parked frame (%llu bytes) in backup ring",
                  rid, static_cast<unsigned long long>(e.frame.bytes));
        obs::tracer().instant(obs::Track::Driver, "rnpf", "backup.drained",
                              e.obsFlow);
        SwQueue &s = sw(rid);
        s.q.push_back(std::move(e));
        if (!s.resolverBusy) {
            s.resolverBusy = true;
            eq_.scheduleAfter(0, [this, rid] { pumpResolver(rid); },
                              "eth.backup.resolver");
        }
    }
}

void
BackupRingManager::pumpResolver(unsigned ring_id)
{
    auto &q = sw(ring_id).q;
    if (q.empty()) {
        sw(ring_id).resolverBusy = false;
        return;
    }

    RxRing &r = nic_.ring(ring_id);
    BackupEntry &e = q.front();
    obs::FlowScope fs(e.obsFlow);

    // Step 1: wait until the IOuser has posted the descriptor this
    // packet belongs at ("T first blocks until there is room").
    if (e.idx >= r.tail) {
        ++stats_.waitsForRoom;
        obs::tracer().instant(obs::Track::Driver, "rnpf",
                              "backup.wait_room", e.obsFlow);
        // Deliberately re-arm with (this, ring_id) only — never a
        // reference to the entry or its pooled frame. By the time the
        // hook fires the queue may have been reshuffled, so the
        // resolver re-reads (and thus revalidates) q.front() from
        // scratch instead of trusting a captured payload.
        r.tailAdvanceHook = [this, ring_id] {
            RxRing &ring = nic_.ring(ring_id);
            ring.tailAdvanceHook = nullptr;
            eq_.scheduleAfter(0, [this, ring_id] { pumpResolver(ring_id); },
                              "eth.backup.resolver");
        };
        return;
    }

    RxDescriptor &d = r.slot(e.idx);
    core::ChannelId ch = nic_.ringChannel(ring_id);
    core::NpfController &npfc = nic_.npfc();

    if (e.synthetic) {
        // What-if injection: the page is actually resident; charge
        // only the modeled resolution latency.
        std::size_t pages = mem::pagesCovering(d.buf, d.len);
        sim::Time lat =
            npfc.sampleResolveLatency(ch, pages, e.syntheticMajor);
        obs::tracer().span(obs::Track::Driver, "rnpf",
                           "synthetic_resolve", eq_.now(), lat,
                           e.obsFlow);
        eq_.scheduleAfter(lat, [this, ring_id] { finishEntry(ring_id); },
                          "eth.backup.synthetic");
        return;
    }

    // Step 2: ensure the buffer pages are present and IOMMU-mapped.
    if (!npfc.checkDma(ch, d.buf, d.len).ok) {
        npfc.raiseNpf(ch, d.buf, d.len, /*write=*/true,
                      [this, ring_id,
                       flow = e.obsFlow](const core::NpfBreakdown &bd) {
                          obs::FlowScope fs(flow);
                          if (!bd.ok) {
                              // Out of memory: back off and retry —
                              // reclaim needs time to make progress.
                              ++stats_.resolutionRetries;
                              obs::tracer().instant(obs::Track::Driver,
                                                    "rnpf",
                                                    "backup.oom_retry",
                                                    flow);
                              eq_.scheduleAfter(sim::kMillisecond,
                                                [this, ring_id] {
                                                    pumpResolver(ring_id);
                                                }, "eth.backup.retry");
                              return;
                          }
                          finishEntry(ring_id);
                      });
        return;
    }
    finishEntry(ring_id);
}

void
BackupRingManager::finishEntry(unsigned ring_id)
{
    auto &q = sw(ring_id).q;
    assert(!q.empty());
    BackupEntry e = std::move(q.front());
    q.pop_front();
    assert(pendingCount_ > 0);
    --pendingCount_;

    RxRing &r = nic_.ring(ring_id);
    RxDescriptor &d = r.slot(e.idx);

    // Step 3: copy the packet into the IOuser buffer (CPU copy, page
    // faults handled transparently — we are on the CPU now), then
    // step 4: tell the NIC the rNPF is resolved.
    double copy_secs =
        double(e.frame.bytes) / nic_.config().copyBytesPerSec;
    sim::Time copy_cost = sim::fromSeconds(copy_secs);

    obs::tracer().span(obs::Track::Driver, "rnpf", "copy", eq_.now(),
                       copy_cost, e.obsFlow);

    std::uint64_t bit_index = e.bitIndex;
    eq_.scheduleAfter(copy_cost, [this, ring_id, bit_index,
                                  idx = e.idx, flow = e.obsFlow,
                                  frame = std::move(e.frame)]() mutable {
        obs::FlowScope fs(flow);
        RxRing &ring = nic_.ring(ring_id);
        RxDescriptor &dd = ring.slot(idx);
        dd.frame = std::move(frame);
        dd.filled = true;
        core::ChannelId ch = nic_.ringChannel(ring_id);
        nic_.npfc().dmaAccess(ch, dd.buf,
                              std::min(dd.len, dd.frame.bytes),
                              /*write=*/true);
        ++stats_.resolved;
        sim::logf(sim::LogLevel::Debug, eq_.now(),
                  "rnpf: ring=%u resolved, copied %llu bytes to idx=%llu",
                  ring_id, static_cast<unsigned long long>(dd.frame.bytes),
                  static_cast<unsigned long long>(idx));
        nic_.resolveRnpf(ring_id, bit_index);
        obs::tracer().endFlow(flow);
        pumpResolver(ring_id);
    }, "eth.backup.copy");
    (void)d;
}

} // namespace npf::eth
