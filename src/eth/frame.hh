/**
 * @file
 * Ethernet frame abstraction. Payload content is opaque to the NIC
 * (a shared_ptr the protocol layer downcasts), mirroring how the
 * hardware sees only bytes.
 */

#ifndef NPF_ETH_FRAME_HH
#define NPF_ETH_FRAME_HH

#include <cstdint>
#include <memory>

namespace npf::eth {

/** One frame on the wire / in a receive ring. */
struct Frame
{
    unsigned dstRing = 0;          ///< steering target (IOchannel)
    std::size_t bytes = 0;         ///< payload length
    std::shared_ptr<void> payload; ///< protocol payload (opaque)
    std::uint64_t seq = 0;         ///< NIC-assigned arrival number
};

} // namespace npf::eth

#endif // NPF_ETH_FRAME_HH
