/**
 * @file
 * Ethernet frame abstraction. Payload content is opaque to the NIC
 * (a pooled, type-erased reference the protocol layer downcasts),
 * mirroring how the hardware sees only bytes.
 *
 * Ownership: the frame owns its payload slot. Whoever destroys the
 * last Frame on a packet's journey — delivery to the rx handler,
 * a fault-injected drop, a ring overflow — releases the slot back to
 * the producing pool, exactly once, via sim::PoolRef's RAII. Copying
 * a Frame (net::Link's duplicate fault action) clones the payload
 * into a fresh slot, so the duplicate's release is independent.
 */

#ifndef NPF_ETH_FRAME_HH
#define NPF_ETH_FRAME_HH

#include <cstdint>

#include "sim/pool.hh"

namespace npf::eth {

/** One frame on the wire / in a receive ring. */
struct Frame
{
    unsigned dstRing = 0;      ///< steering target (IOchannel)
    std::size_t bytes = 0;     ///< payload length
    sim::PoolRef payload;      ///< protocol payload (opaque, pooled)
    std::uint64_t seq = 0;     ///< NIC-assigned arrival number
};

} // namespace npf::eth

#endif // NPF_ETH_FRAME_HH
