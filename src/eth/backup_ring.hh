/**
 * @file
 * IOprovider driver side of the backup-ring design (Fig. 5): a
 * small pinned ring the NIC parks faulting packets in, an interrupt
 * handler that drains it into per-IOuser software queues, and a
 * resolver "thread" per IOuser that faults pages in, copies packets
 * into place, and tells the NIC to sweep (§5 "Driver").
 */

#ifndef NPF_ETH_BACKUP_RING_HH
#define NPF_ETH_BACKUP_RING_HH

#include <cstdint>
#include <vector>

#include "eth/frame.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/ring_deque.hh"
#include "sim/time.hh"

namespace npf::eth {

class EthNic;

/** One parked packet plus the metadata the NIC attaches (Fig. 6). */
struct BackupEntry
{
    unsigned ringId = 0;
    std::uint64_t idx = 0;      ///< IOuser-ring index it belongs at
    std::uint64_t bitIndex = 0; ///< Fig. 6 bitmap position
    Frame frame;
    bool synthetic = false;     ///< what-if injection: latency only
    bool syntheticMajor = false;
    std::uint64_t obsFlow = 0;  ///< obs::FlowId of the rNPF journey
};

/**
 * Driver-side manager of the pinned backup ring.
 */
class BackupRingManager
{
  public:
    struct Stats
    {
        std::uint64_t parked = 0;        ///< entries accepted
        std::uint64_t overflowDrops = 0; ///< hardware ring full
        std::uint64_t resolved = 0;      ///< merged back into IOusers
        std::uint64_t resolutionRetries = 0;
        std::uint64_t waitsForRoom = 0;  ///< stalls on a full IOuser ring
    };

    BackupRingManager(sim::EventQueue &eq, EthNic &nic,
                      std::size_t capacity);

    /**
     * Hardware side: park an entry. @return false when the pinned
     * ring is full (the packet is then dropped — the only loss the
     * backup design permits).
     */
    bool store(BackupEntry e);

    /** Entries currently parked (hardware ring + software queues). */
    std::size_t pending() const { return pendingCount_; }

    const Stats &stats() const { return stats_; }

  private:
    /** Per-IOuser-ring software queue + its resolver's busy flag. */
    struct SwQueue
    {
        sim::RingDeque<BackupEntry> q;
        bool resolverBusy = false;
    };

    /** Interrupt handler: drain hw ring into per-ring sw queues. */
    void isr();
    void scheduleIsr();
    /** Resolver thread body for one IOuser ring. */
    void pumpResolver(unsigned ring_id);
    void finishEntry(unsigned ring_id);
    SwQueue &sw(unsigned ring_id);

    sim::EventQueue &eq_;
    EthNic &nic_;
    std::size_t capacity_;
    Stats stats_;
    sim::RingDeque<BackupEntry> hwRing_;
    std::vector<SwQueue> swQueues_; ///< indexed by (dense) ring id
    bool isrPending_ = false;
    std::size_t pendingCount_ = 0;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::eth

#endif // NPF_ETH_BACKUP_RING_HH
