/**
 * @file
 * Reliable-connection (RC) queue pair with network-page-fault
 * support, modeling the paper's modified Connect-IB firmware (§4):
 *
 *  - send-side NPFs stall the sender until resolution (local data);
 *  - receive NPFs on Send/RDMA-Write trigger an RNR NACK that
 *    suspends the remote sender for a timer, after which it rewinds
 *    to the faulting PSN and retransmits;
 *  - RDMA-read responses cannot be RNR-NACKed (no standard support),
 *    so the faulting initiator drops everything and requests a
 *    rewind (NAK-sequence) only after the fault is resolved;
 *  - reliability comes from PSN sequencing + cumulative ACKs;
 *    packet loss is decoupled from congestion control, exactly as in
 *    InfiniBand.
 */

#ifndef NPF_IB_QUEUE_PAIR_HH
#define NPF_IB_QUEUE_PAIR_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "core/npf_controller.hh"
#include "ib/verbs.hh"
#include "net/dcqcn.hh"
#include "net/fabric.hh"
#include "obs/flow_tracer.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/ring_deque.hh"

namespace npf::ib {

/** Queue-pair parameters. */
struct QpConfig
{
    std::size_t pathMtu = 4096;          ///< bytes per data packet
    unsigned maxOutstandingWrs = 16;     ///< send window, in WRs
    unsigned ackEvery = 32;              ///< coalesced ACK interval
    unsigned rnrRetryLimit = 1000;       ///< before erroring the WR
    sim::Time retransmitTimeout =        ///< backstop rewind timer
        sim::fromMicroseconds(4000);
    std::size_t controlBytes = 16;       ///< ACK/NACK wire size

    /** §6.4 what-if: per-data-packet synthetic rNPF probability. */
    double syntheticRnpfProb = 0.0;
    /** Synthetic faults are major (swap-backed) faults. */
    bool syntheticMajor = false;

    /**
     * The paper's proposed RC extension (§4): let a faulting
     * RDMA-read *initiator* suspend the responder with a read-RNR
     * NACK instead of dropping the whole response stream and asking
     * for a rewind after resolution. Off by default (standard RC).
     */
    bool readRnrExtension = false;

    /** Traffic class for data packets (topology-mode fabrics only;
     *  control packets always ride net::kControlPriority so NACKs
     *  and CNPs escape the congestion they report). */
    unsigned priority = 0;

    /**
     * While an rNPF resolves, assert PFC toward this host
     * (Fabric::setHostRxPause) in addition to the RNR NACK: the NIC
     * backpressures the last-hop switch instead of silently dropping
     * the retry traffic. This is the coupling the paper warns about —
     * an NPF stall becomes a fabric pause storm. Topology mode only.
     */
    bool pauseOnRnpf = false;

    /** DCQCN-style end-host rate limiting, driven by CNPs that the
     *  destination QP emits when packets arrive CE-marked. */
    net::DcqcnConfig dcqcn;
};

/**
 * One side of an RC connection. Create two, then connect() them.
 *
 * DMA accesses go through the owning NpfController channel, so cold
 * buffers genuinely fault and resolve through the full NPF flow.
 */
class QueuePair
{
  public:
    using CompletionHandler = std::function<void(const Completion &)>;

    struct Stats
    {
        std::uint64_t dataPacketsSent = 0;
        std::uint64_t dataPacketsDelivered = 0;
        std::uint64_t dataPacketsDropped = 0;
        std::uint64_t retransmitted = 0;
        std::uint64_t rnrNacksSent = 0;
        std::uint64_t rnrNacksReceived = 0;
        std::uint64_t nakSeqSent = 0;
        std::uint64_t readRnrSent = 0;     ///< extension (§4 proposal)
        std::uint64_t readRnrReceived = 0;
        std::uint64_t rewinds = 0;
        std::uint64_t sendNpfs = 0;   ///< local (sender-side) faults
        std::uint64_t recvNpfs = 0;   ///< rNPFs (incl. synthetic)
        std::uint64_t messagesDelivered = 0;
        std::uint64_t bytesDelivered = 0;
        std::uint64_t cnpsSent = 0;     ///< ECN marks notified back
        std::uint64_t cnpsReceived = 0; ///< rate-limiter activations
    };

    QueuePair(sim::EventQueue &eq, net::Fabric &fabric, unsigned node,
              core::NpfController &npfc, core::ChannelId channel,
              QpConfig cfg = {}, std::uint64_t seed = 7);

    /** Wire this QP to its remote peer (call on both sides). */
    void
    connect(QueuePair &peer)
    {
        peer_ = &peer;
        peerNode_ = peer.node_;
    }

    /** The connected remote peer (nullptr before connect()). */
    QueuePair *peer() { return peer_; }

    /**
     * Wire this QP to a peer it cannot hold a pointer to — one owned
     * by another shard. Packets travel the fabric's record plane
     * (serializable net::WireRecord instead of delivery closures):
     * this QP binds (node, @p my_kind) for its inbound packets and
     * addresses outbound ones to (@p peer_node, @p peer_kind). The
     * two sides' calls must mirror each other, one ordered pair per
     * (node, kind). Requires a legacy-mode fabric; both facets see
     * identical wire timing, so a record-connected pair behaves
     * bit-identically to a pointer-connected one.
     */
    void connectRemote(unsigned peer_node, std::uint32_t my_kind,
                       std::uint32_t peer_kind);

    /** True when connected via the record plane. */
    bool remote() const { return remote_; }

    /**
     * obs::Attributor lane this QP's blocking phases (send NPF, rNPF
     * resolution, RNR backoff, retransmit rewinds) are charged to.
     * Both QPs of one session conventionally share a lane, so the
     * client's breakdown sees server-side faults too. -1 = off.
     */
    void setAttrLane(int lane) { attrLane_ = lane; }
    int attrLane() const { return attrLane_; }

    /** Post a send/RDMA work request. */
    void postSend(WorkRequest wr);

    /** Post a receive buffer (consumed by remote Sends, in order). */
    void postRecv(WorkRequest wr);

    /** Completion callback (both send and receive completions). */
    void onCompletion(CompletionHandler h) { completionHandler_ = std::move(h); }

    const Stats &stats() const { return stats_; }
    unsigned node() const { return node_; }
    core::ChannelId channel() const { return channel_; }
    core::NpfController &controller() { return npfc_; }
    QpConfig &config() { return cfg_; }

    /** Outstanding (posted, incomplete) send work requests. */
    std::size_t outstandingSends() const
    {
        return sendQueue_.size() + inflight_.size();
    }

    /** True after a fatal QP error (RNR retries exhausted). */
    bool inError() const { return error_; }

    std::size_t postedRecvs() const { return recvQueue_.size(); }

  private:
    /** One wire packet. */
    struct Packet
    {
        enum class Type {
            Data,         ///< Send / RDMA-Write payload
            ReadRequest,  ///< initiator -> responder
            ReadResponse, ///< responder -> initiator payload
            Ack,          ///< cumulative data ACK
            RnrNack,      ///< receiver-not-ready, carries resume PSN
            NakSeq,       ///< rewind request (read-response recovery)
            ReadRnr,      ///< extension: suspend the read responder
            Cnp,          ///< congestion notification (DCQCN)
        };

        Type type = Type::Data;
        Opcode op = Opcode::Send;
        std::uint64_t psn = 0;      ///< data/read-response sequencing
        std::size_t bytes = 0;      ///< payload length
        std::size_t offset = 0;     ///< offset within the message
        std::size_t msgLen = 0;     ///< total message length
        bool firstOfMsg = false;
        bool lastOfMsg = false;
        mem::VirtAddr remoteAddr = 0;
        std::uint64_t wrId = 0;
        std::uint64_t ackPsn = 0;   ///< for Ack: highest in-order PSN
        std::uint64_t readId = 0;   ///< read stream identifier
    };

    /** A transmitted-but-unacked work request. */
    struct InflightWr
    {
        WorkRequest wr;
        std::uint64_t firstPsn = 0;
        std::uint64_t lastPsn = 0;
        bool fullySent = false;
    };

    /** An in-progress inbound message (Send or RDMA-Write). */
    struct InboundMsg
    {
        bool active = false;
        Opcode op = Opcode::Send;
        mem::VirtAddr base = 0; ///< DMA destination base
        std::size_t len = 0;
        std::size_t received = 0;
        std::uint64_t wrId = 0; ///< recv WQE id for Send
    };

    /** Responder-side state for one RDMA read. */
    struct ReadResponderState
    {
        bool active = false;
        mem::VirtAddr base = 0;
        std::size_t len = 0;
        std::uint64_t readId = 0;
        std::uint64_t nextPsn = 0;  ///< next response PSN to emit
        std::uint64_t limitPsn = 0; ///< one past last response PSN
        bool paused = false;        ///< local fault being resolved
    };

    /** Initiator-side state for one outstanding RDMA read. */
    struct ReadInitiatorState
    {
        bool active = false;
        WorkRequest wr;
        std::uint64_t readId = 0;
        std::uint64_t expectedPsn = 0;
        std::uint64_t limitPsn = 0;
        bool faultPending = false;
    };

    // --- transmit machinery (data direction: this -> peer) -----------
    void pumpSend();
    void transmitOne();
    std::optional<Packet> buildPacketAt(std::uint64_t psn);
    void armRetransmitTimer();
    void handleAck(std::uint64_t ackPsn);
    void handleRnrNack(std::uint64_t resumePsn);
    void sendControl(Packet pkt);
    /** Ship @p pkt over the record plane (remote mode). */
    void sendPacketRecord(const Packet &pkt, std::size_t bytes);

    // --- receive machinery -------------------------------------------
    void handlePacket(Packet pkt);
    void processPacket(Packet pkt);
    void handleData(const Packet &pkt);
    void handleReadRequest(const Packet &pkt);
    void handleReadResponse(const Packet &pkt);
    void deliverCompletion(Completion c);
    void raiseRnpf(mem::VirtAddr addr, std::size_t len, std::uint64_t psn);
    bool dmaWriteTarget(mem::VirtAddr addr, std::size_t len);
    void maybeAck(bool force);

    // --- DCQCN -------------------------------------------------------
    std::uint32_t flowLabel() const;
    /** Notification point: the destination saw a CE mark. */
    void maybeSendCnp();
    /** Reaction point: a CNP arrived from the destination. */
    void dcqcnOnCnp();
    void armDcqcnTimers();
    /** Pacing gate: wire availability, plus the DCQCN rate limiter
     *  when it is active. */
    sim::Time nextTxTime(std::size_t bytes);

    // --- read responder stream ----------------------------------------
    void pumpReadResponse();
    void startRead(const Packet &req);

    sim::EventQueue &eq_;
    net::Fabric &fabric_;
    unsigned node_;
    core::NpfController &npfc_;
    core::ChannelId channel_;
    QpConfig cfg_;
    sim::Rng rng_;
    QueuePair *peer_ = nullptr;
    unsigned peerNode_ = 0;    ///< valid once connected (either way)
    std::uint32_t txKind_ = 0; ///< peer's bindRx demux key
    bool remote_ = false;      ///< record-plane connection
    CompletionHandler completionHandler_;
    Stats stats_;
    int attrLane_ = -1; ///< attribution lane (-1 = off)

    // sender: WR records live in flat rings that grow to the window's
    // high-water mark once and are then recycled allocation-free.
    sim::RingDeque<WorkRequest> sendQueue_; ///< not yet assigned PSNs
    sim::RingDeque<InflightWr> inflight_;   ///< PSN-assigned, unacked
    std::uint64_t nextPsn_ = 0;         ///< next PSN to allocate
    std::uint64_t txPsn_ = 0;           ///< next PSN to transmit
    std::uint64_t highestTxPsn_ = 0;    ///< one past highest ever sent
    std::uint64_t ackedPsn_ = 0;        ///< all PSNs below are acked
    std::uint64_t ackedAtArm_ = 0;      ///< progress marker for timer
    bool txScheduled_ = false;
    bool senderPaused_ = false;         ///< RNR backoff in effect
    bool localFaultPending_ = false;    ///< send-side NPF resolving
    bool error_ = false;                ///< fatal QP error state
    unsigned rnrRetries_ = 0;
    sim::EventId retransmitTimer_ = sim::kInvalidEvent;

    // receiver
    sim::RingDeque<WorkRequest> recvQueue_;
    std::uint64_t expectedPsn_ = 0;
    bool rnpfPending_ = false; ///< resolution in progress; drop inbound
    obs::FlowId rnpfFlow_ = 0; ///< flow of the in-progress rNPF
    InboundMsg inbound_;
    unsigned unackedArrivals_ = 0;

    // RDMA read
    ReadResponderState readResp_;
    ReadInitiatorState readInit_;
    std::uint64_t nextReadId_ = 1;
    bool readRespScheduled_ = false;

    // DCQCN (inert unless cfg_.dcqcn.enabled and CNPs arrive)
    net::DcqcnRate dcqcn_;
    sim::Time cnpNextAllowed_ = 0; ///< CNP pacing (notification side)
    sim::Time rateNextTx_ = 0;     ///< rate-limiter token clock
    sim::EventId alphaTimer_ = sim::kInvalidEvent;
    sim::EventId rateTimer_ = sim::kInvalidEvent;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::ib

#endif // NPF_IB_QUEUE_PAIR_HH
