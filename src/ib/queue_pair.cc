#include "ib/queue_pair.hh"

#include <cassert>
#include <type_traits>

#include "fault/fault.hh"
#include "obs/attribution.hh"
#include "sim/log.hh"

namespace npf::ib {

QueuePair::QueuePair(sim::EventQueue &eq, net::Fabric &fabric, unsigned node,
                     core::NpfController &npfc, core::ChannelId channel,
                     QpConfig cfg, std::uint64_t seed)
    : eq_(eq), fabric_(fabric), node_(node), npfc_(npfc), channel_(channel),
      cfg_(cfg), rng_(seed)
{
    obs_.init("ib.qp");
    obs_.counter("data_packets_sent", &stats_.dataPacketsSent);
    obs_.counter("data_packets_delivered", &stats_.dataPacketsDelivered);
    obs_.counter("data_packets_dropped", &stats_.dataPacketsDropped);
    obs_.counter("retransmitted", &stats_.retransmitted);
    obs_.counter("rnr_nacks_sent", &stats_.rnrNacksSent);
    obs_.counter("rnr_nacks_received", &stats_.rnrNacksReceived);
    obs_.counter("nak_seq_sent", &stats_.nakSeqSent);
    obs_.counter("read_rnr_sent", &stats_.readRnrSent);
    obs_.counter("read_rnr_received", &stats_.readRnrReceived);
    obs_.counter("rewinds", &stats_.rewinds);
    obs_.counter("send_npfs", &stats_.sendNpfs);
    obs_.counter("recv_npfs", &stats_.recvNpfs);
    obs_.counter("messages_delivered", &stats_.messagesDelivered);
    obs_.counter("bytes_delivered", &stats_.bytesDelivered);
    obs_.counter("cnps_sent", &stats_.cnpsSent);
    obs_.counter("cnps_received", &stats_.cnpsReceived);
    if (cfg_.dcqcn.enabled)
        dcqcn_.init(cfg_.dcqcn,
                    fabric_.uplink(node_).config().bandwidthBitsPerSec);
}

void
QueuePair::postSend(WorkRequest wr)
{
    assert(wr.len > 0 || wr.op == Opcode::RdmaRead);
    sendQueue_.push_back(wr);
    pumpSend();
}

void
QueuePair::postRecv(WorkRequest wr)
{
    recvQueue_.push_back(wr);
}

// --- sender -----------------------------------------------------------

void
QueuePair::pumpSend()
{
    if (error_)
        return;
    while (!sendQueue_.empty() && inflight_.size() < cfg_.maxOutstandingWrs) {
        WorkRequest &wr = sendQueue_.front();
        if (wr.op == Opcode::RdmaRead && readInit_.active)
            break; // one outstanding read per QP

        InflightWr ifw;
        ifw.wr = wr;
        ifw.firstPsn = nextPsn_;
        if (wr.op == Opcode::RdmaRead) {
            // A read request occupies one PSN; responses flow on a
            // separate read stream.
            ifw.lastPsn = ifw.firstPsn;
            readInit_.active = true;
            readInit_.wr = wr;
            readInit_.readId = nextReadId_++;
            readInit_.expectedPsn = 0;
            readInit_.limitPsn =
                (wr.len + cfg_.pathMtu - 1) / cfg_.pathMtu;
            readInit_.faultPending = false;
        } else {
            std::size_t pkts = (wr.len + cfg_.pathMtu - 1) / cfg_.pathMtu;
            ifw.lastPsn = ifw.firstPsn + pkts - 1;
        }
        nextPsn_ = ifw.lastPsn + 1;
        inflight_.push_back(ifw);
        sendQueue_.pop_front();
    }
    if (!txScheduled_ && !senderPaused_ && !localFaultPending_ &&
        txPsn_ < nextPsn_) {
        txScheduled_ = true;
        eq_.scheduleAfter(0, [this] {
            txScheduled_ = false;
            transmitOne();
        }, "ib.tx");
    }
}

std::optional<QueuePair::Packet>
QueuePair::buildPacketAt(std::uint64_t psn)
{
    for (const InflightWr &ifw : inflight_) {
        if (psn < ifw.firstPsn || psn > ifw.lastPsn)
            continue;
        Packet pkt;
        pkt.psn = psn;
        pkt.op = ifw.wr.op;
        pkt.wrId = ifw.wr.wrId;
        if (ifw.wr.op == Opcode::RdmaRead) {
            pkt.type = Packet::Type::ReadRequest;
            pkt.remoteAddr = ifw.wr.remote;
            pkt.msgLen = ifw.wr.len;
            pkt.readId = readInit_.readId;
            pkt.bytes = 0;
            return pkt;
        }
        pkt.type = Packet::Type::Data;
        pkt.offset = std::size_t(psn - ifw.firstPsn) * cfg_.pathMtu;
        pkt.bytes = std::min(cfg_.pathMtu, ifw.wr.len - pkt.offset);
        pkt.msgLen = ifw.wr.len;
        pkt.firstOfMsg = psn == ifw.firstPsn;
        pkt.lastOfMsg = psn == ifw.lastPsn;
        pkt.remoteAddr = ifw.wr.remote;
        return pkt;
    }
    return std::nullopt;
}

void
QueuePair::connectRemote(unsigned peer_node, std::uint32_t my_kind,
                         std::uint32_t peer_kind)
{
    assert(peer_ == nullptr && "already pointer-connected");
    static_assert(std::is_trivially_copyable_v<Packet>,
                  "Packet must serialize into a WireRecord");
    remote_ = true;
    peerNode_ = peer_node;
    txKind_ = peer_kind;
    fabric_.bindRx(node_, my_kind, [this](const net::WireRecord &rec) {
        handlePacket(rec.load<Packet>());
    });
}

void
QueuePair::sendPacketRecord(const Packet &pkt, std::size_t bytes)
{
    net::WireRecord rec;
    rec.src = node_;
    rec.dst = peerNode_;
    rec.kind = txKind_;
    rec.bytes = static_cast<std::uint32_t>(bytes);
    rec.store(pkt);
    fabric_.sendRecord(rec);
}

void
QueuePair::transmitOne()
{
    if (error_ || senderPaused_ || localFaultPending_)
        return;
    if (txPsn_ >= nextPsn_)
        return;
    assert((peer_ != nullptr || remote_) && "QP not connected");

    auto maybe_pkt = buildPacketAt(txPsn_);
    assert(maybe_pkt.has_value() && "txPsn_ outside inflight window");
    Packet pkt = *maybe_pkt;

    // Sender-side NPF: the NIC reads the local buffer via DMA. Local
    // data, so the QP simply stalls until the fault resolves (§4).
    if (pkt.type == Packet::Type::Data) {
        const InflightWr *owner = nullptr;
        for (const InflightWr &ifw : inflight_) {
            if (txPsn_ >= ifw.firstPsn && txPsn_ <= ifw.lastPsn) {
                owner = &ifw;
                break;
            }
        }
        assert(owner != nullptr);
        mem::VirtAddr src = owner->wr.local + pkt.offset;
        if (!npfc_.dmaAccess(channel_, src, pkt.bytes, /*write=*/false)) {
            ++stats_.sendNpfs;
            obs::tracer().instant(obs::Track::Transport, "npf",
                                  "ib.send_npf");
            localFaultPending_ = true;
            obs::attributor().blockBegin(attrLane_,
                                         obs::Phase::NpfDriver);
            // Batched pre-fault: resolve the whole WR's buffer.
            npfc_.raiseNpf(channel_, owner->wr.local, owner->wr.len,
                           /*write=*/false,
                           [this](const core::NpfBreakdown &) {
                               obs::attributor().blockEnd(
                                   attrLane_, obs::Phase::NpfDriver);
                               localFaultPending_ = false;
                               pumpSend();
                           });
            return;
        }
    }

    if (txPsn_ < highestTxPsn_)
        ++stats_.retransmitted;
    else
        highestTxPsn_ = txPsn_ + 1;
    ++stats_.dataPacketsSent;

    if (remote_) {
        sendPacketRecord(pkt, pkt.bytes);
    } else {
        QueuePair *peer = peer_;
        // The per-packet delivery closure is the hottest allocation
        // site in the whole simulator; pin it to the event queue's
        // inline delegate storage so growing Packet past the
        // small-buffer capacity fails to compile instead of silently
        // costing a heap round trip per packet.
        auto deliver = [peer, pkt] { peer->handlePacket(pkt); };
        static_assert(sim::Delegate::fitsInline<decltype(deliver)>,
                      "ib data-path delivery closure must stay inline");
        fabric_.send(node_, peer->node_, pkt.bytes, cfg_.priority,
                     flowLabel(), std::move(deliver));
    }
    ++txPsn_;

    armRetransmitTimer();
    if (txPsn_ < nextPsn_ && !txScheduled_) {
        txScheduled_ = true;
        eq_.schedule(nextTxTime(pkt.bytes), [this] {
            txScheduled_ = false;
            transmitOne();
        }, "ib.tx");
    }
}

std::uint32_t
QueuePair::flowLabel() const
{
    // One ECMP flow per QP direction: all of a QP's packets take the
    // same path (ordering), distinct QPs spread across paths.
    return (std::uint32_t(node_) << 16) |
           std::uint32_t(peer_ != nullptr || remote_ ? peerNode_ : 0);
}

sim::Time
QueuePair::nextTxTime(std::size_t bytes)
{
    sim::Time next = fabric_.txEta(node_);
    if (dcqcn_.limiting()) {
        // Token clock: each departure books its serialization slot at
        // the current rate; the gate is the later of that and the
        // wire. Carries credit debt across packets so bursts average
        // to the target rate instead of resetting it.
        rateNextTx_ = std::max(rateNextTx_, eq_.now()) +
                      dcqcn_.sendGap(bytes);
        next = std::max(next, rateNextTx_);
    }
    return next;
}

void
QueuePair::armRetransmitTimer()
{
    if (error_ || retransmitTimer_ != sim::kInvalidEvent)
        return;
    ackedAtArm_ = ackedPsn_;
    retransmitTimer_ =
        eq_.scheduleAfter(cfg_.retransmitTimeout, [this] {
            retransmitTimer_ = sim::kInvalidEvent;
            if (ackedPsn_ >= nextPsn_)
                return; // everything acked; nothing to do
            if (senderPaused_ || localFaultPending_) {
                armRetransmitTimer();
                return;
            }
            if (ackedPsn_ == ackedAtArm_ && txPsn_ > ackedPsn_) {
                // No progress: rewind to the oldest unacked PSN. The
                // whole expired timer period was a retransmit stall.
                ++stats_.rewinds;
                obs::tracer().instant(obs::Track::Transport, "ib",
                                      "ib.rto_rewind");
                obs::attributor().charge(attrLane_,
                                         obs::Phase::Retransmit,
                                         cfg_.retransmitTimeout);
                txPsn_ = ackedPsn_;
                pumpSend();
            }
            armRetransmitTimer();
        }, "ib.rto");
}

void
QueuePair::handleAck(std::uint64_t ackPsn)
{
    if (ackPsn <= ackedPsn_)
        return;
    ackedPsn_ = ackPsn;
    rnrRetries_ = 0;
    // A cumulative ack covers everything below it, so never transmit
    // below ackedPsn_: a stale RNR NACK may have rewound txPsn_ into
    // the range this ack retires, and those inflight entries are
    // popped right below — buildPacketAt() could no longer cover a
    // lower txPsn_.
    if (txPsn_ < ackedPsn_)
        txPsn_ = ackedPsn_;
    while (!inflight_.empty() && inflight_.front().lastPsn < ackedPsn_) {
        InflightWr done = inflight_.front();
        inflight_.pop_front();
        if (done.wr.op != Opcode::RdmaRead) {
            Completion c;
            c.wrId = done.wr.wrId;
            c.ok = true;
            c.isRecv = false;
            c.bytes = done.wr.len;
            c.at = eq_.now();
            deliverCompletion(c);
        }
        // Reads complete when the response stream finishes.
    }
    pumpSend();
}

void
QueuePair::handleRnrNack(std::uint64_t resumePsn)
{
    ++stats_.rnrNacksReceived;
    if (resumePsn < ackedPsn_) {
        // Stale NACK: a later cumulative ack already retired this
        // PSN (the receiver re-NACKs retries while its fault is
        // pending, and delayed/reordered delivery can land one after
        // the recovery it belongs to). Rewinding would strand txPsn_
        // below ackedPsn_, where the RTO rewind condition never
        // triggers and the WRs are gone: a permanent stall.
        return;
    }
    ++stats_.rewinds;
    ++rnrRetries_;
    obs::tracer().instant(obs::Track::Transport, "rnr", "rnr_nack.recv");
    txPsn_ = resumePsn;
    if (rnrRetries_ > cfg_.rnrRetryLimit) {
        // Fatal QP error: flush every posted WR with an error
        // completion and stop all transmit machinery for good.
        error_ = true;
        if (retransmitTimer_ != sim::kInvalidEvent) {
            eq_.cancel(retransmitTimer_);
            retransmitTimer_ = sim::kInvalidEvent;
        }
        auto flush = [this](const WorkRequest &wr) {
            Completion c;
            c.wrId = wr.wrId;
            c.ok = false;
            c.at = eq_.now();
            deliverCompletion(c);
        };
        while (!inflight_.empty()) {
            flush(inflight_.front().wr);
            inflight_.pop_front();
        }
        while (!sendQueue_.empty()) {
            flush(sendQueue_.front());
            sendQueue_.pop_front();
        }
        txPsn_ = nextPsn_;
        return;
    }
    senderPaused_ = true;
    obs::tracer().span(obs::Track::Transport, "rnr", "rnr_pause",
                       eq_.now(), npfc_.config().rnrTimer);
    obs::attributor().blockBegin(attrLane_, obs::Phase::RnrBackoff);
    eq_.scheduleAfter(npfc_.config().rnrTimer, [this] {
        obs::attributor().blockEnd(attrLane_, obs::Phase::RnrBackoff);
        senderPaused_ = false;
        pumpSend();
    }, "ib.rnr_resume");
}

void
QueuePair::sendControl(Packet pkt)
{
    assert(peer_ != nullptr || remote_);
    if (remote_) {
        sendPacketRecord(pkt, cfg_.controlBytes);
        return;
    }
    QueuePair *peer = peer_;
    auto deliver = [peer, pkt] { peer->handlePacket(pkt); };
    static_assert(sim::Delegate::fitsInline<decltype(deliver)>,
                  "ib control-path delivery closure must stay inline");
    // Control rides the top class: ACKs, NACKs and CNPs must escape
    // the very congestion (and PFC pauses) they exist to report.
    fabric_.send(node_, peer->node_, cfg_.controlBytes,
                 net::kControlPriority, flowLabel(), std::move(deliver));
}

// --- receiver -----------------------------------------------------------

void
QueuePair::handlePacket(Packet pkt)
{
    // DCQCN notification point. The CE mark lives in the fabric's
    // per-delivery rx context, which is only valid right now — before
    // any fault action defers processing — so sample it first.
    if (cfg_.dcqcn.enabled && fabric_.rx().ecn &&
        (pkt.type == Packet::Type::Data ||
         pkt.type == Packet::Type::ReadResponse))
        maybeSendCnp();
    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::IbRx)) {
            switch (d->action) {
              case fault::Action::Drop:
                // Lost on arrival: PSN sequencing + the retransmit
                // timer recover (rewind to the oldest unacked PSN).
                return;
              case fault::Action::Duplicate:
                // The copy is processed after the original, same tick.
                eq_.scheduleAfter(0, [this, pkt] { processPacket(pkt); },
                                  "fault.ib_dup");
                break;
              case fault::Action::Reorder:
              case fault::Action::Delay:
                // Processed late; packets behind it overtake.
                eq_.scheduleAfter(d->delay,
                                  [this, pkt] { processPacket(pkt); },
                                  "fault.ib_delay");
                return;
              default:
                break;
            }
        }
    }
    processPacket(std::move(pkt));
}

void
QueuePair::processPacket(Packet pkt)
{
    switch (pkt.type) {
      case Packet::Type::Ack:
        handleAck(pkt.ackPsn);
        return;
      case Packet::Type::RnrNack:
        handleRnrNack(pkt.psn);
        return;
      case Packet::Type::NakSeq:
        // Rewind request for the read-response stream.
        if (readResp_.readId == pkt.readId) {
            readResp_.active = true;
            readResp_.nextPsn = pkt.psn;
            pumpReadResponse();
        }
        return;
      case Packet::Type::ReadRnr:
        // Extension (§4 proposal): the faulting initiator suspends
        // us; rewind to its PSN and retry after the RNR timer.
        if (readResp_.readId == pkt.readId) {
            ++stats_.readRnrReceived;
            readResp_.active = true;
            readResp_.paused = true;
            readResp_.nextPsn = pkt.psn;
            obs::attributor().blockBegin(attrLane_,
                                         obs::Phase::RnrBackoff);
            eq_.scheduleAfter(npfc_.config().rnrTimer, [this] {
                obs::attributor().blockEnd(attrLane_,
                                           obs::Phase::RnrBackoff);
                readResp_.paused = false;
                pumpReadResponse();
            }, "ib.read_rnr_resume");
        }
        return;
      case Packet::Type::Cnp:
        dcqcnOnCnp();
        return;
      case Packet::Type::ReadResponse:
        handleReadResponse(pkt);
        return;
      case Packet::Type::Data:
      case Packet::Type::ReadRequest:
        handleData(pkt);
        return;
    }
}

void
QueuePair::maybeSendCnp()
{
    if (eq_.now() < cnpNextAllowed_)
        return; // one CNP per interval, however many marks arrive
    cnpNextAllowed_ = eq_.now() + cfg_.dcqcn.cnpMinInterval;
    ++stats_.cnpsSent;
    obs::tracer().instant(obs::Track::Transport, "dcqcn", "cnp.sent");
    Packet cnp;
    cnp.type = Packet::Type::Cnp;
    sendControl(cnp);
}

void
QueuePair::dcqcnOnCnp()
{
    ++stats_.cnpsReceived;
    if (!cfg_.dcqcn.enabled)
        return;
    dcqcn_.onCnp();
    obs::tracer().instant(obs::Track::Transport, "dcqcn", "cnp.recv");
    armDcqcnTimers();
}

void
QueuePair::armDcqcnTimers()
{
    // Both timers run only while the limiter is active and disarm
    // themselves once it fully recovers, so an idle QP schedules
    // nothing and run-to-empty simulations terminate.
    if (alphaTimer_ == sim::kInvalidEvent)
        alphaTimer_ = eq_.scheduleAfter(cfg_.dcqcn.alphaTimer, [this] {
            alphaTimer_ = sim::kInvalidEvent;
            if (dcqcn_.decayAlpha())
                armDcqcnTimers();
        }, "ib.dcqcn_alpha");
    if (rateTimer_ == sim::kInvalidEvent)
        rateTimer_ = eq_.scheduleAfter(cfg_.dcqcn.rateTimer, [this] {
            rateTimer_ = sim::kInvalidEvent;
            bool still = dcqcn_.increase();
            pumpSend();
            if (still)
                armDcqcnTimers();
        }, "ib.dcqcn_rate");
}

void
QueuePair::handleData(const Packet &pkt)
{
    if (pkt.psn < expectedPsn_) {
        // Duplicate of something already received: re-ack.
        maybeAck(/*force=*/true);
        return;
    }
    if (rnpfPending_) {
        // Resolution still in progress: drop, and if this is the
        // sender already retrying the faulting PSN, NACK again so it
        // re-pauses instead of burning its retransmit timeout.
        ++stats_.dataPacketsDropped;
        if (pkt.psn == expectedPsn_) {
            ++stats_.rnrNacksSent;
            Packet nack;
            nack.type = Packet::Type::RnrNack;
            nack.psn = pkt.psn;
            sendControl(nack);
        }
        return;
    }
    if (pkt.psn > expectedPsn_) {
        // Follows a dropped packet; the sender will rewind.
        ++stats_.dataPacketsDropped;
        return;
    }

    if (pkt.type == Packet::Type::ReadRequest) {
        ++expectedPsn_;
        maybeAck(/*force=*/true);
        startRead(pkt);
        return;
    }

    // Establish inbound message state on the first packet.
    if (pkt.firstOfMsg) {
        if (pkt.op == Opcode::Send) {
            if (recvQueue_.empty()) {
                // The classic RNR case: no receive WQE posted.
                ++stats_.rnrNacksSent;
                Packet nack;
                nack.type = Packet::Type::RnrNack;
                nack.psn = pkt.psn;
                sendControl(nack);
                return;
            }
            const WorkRequest &rwr = recvQueue_.front();
            inbound_.base = rwr.local;
            inbound_.wrId = rwr.wrId;
        } else {
            inbound_.base = pkt.remoteAddr;
            inbound_.wrId = 0;
        }
        inbound_.active = true;
        inbound_.op = pkt.op;
        inbound_.len = pkt.msgLen;
        inbound_.received = 0;
    }
    if (!inbound_.active) {
        // Mid-message packet without state (sender rewound past a
        // message boundary); drop and wait for the retransmission.
        ++stats_.dataPacketsDropped;
        return;
    }

    mem::VirtAddr target = inbound_.base + pkt.offset;

    // §6.4 what-if: synthetic rNPF injection.
    if (cfg_.syntheticRnpfProb > 0.0 &&
        rng_.bernoulli(cfg_.syntheticRnpfProb)) {
        ++stats_.recvNpfs;
        ++stats_.dataPacketsDropped;
        rnpfPending_ = true;
        if (cfg_.pauseOnRnpf)
            fabric_.setHostRxPause(node_, true);
        obs::attributor().blockBegin(attrLane_, obs::Phase::NpfDriver);
        ++stats_.rnrNacksSent;
        Packet nack;
        nack.type = Packet::Type::RnrNack;
        nack.psn = pkt.psn;
        sendControl(nack);
        std::size_t pages = mem::pagesCovering(target, pkt.bytes);
        sim::Time lat = npfc_.sampleResolveLatency(channel_, pages,
                                                   cfg_.syntheticMajor);
        eq_.scheduleAfter(lat, [this] {
            obs::attributor().blockEnd(attrLane_, obs::Phase::NpfDriver);
            rnpfPending_ = false;
            if (cfg_.pauseOnRnpf)
                fabric_.setHostRxPause(node_, false);
        }, "ib.synthetic_rnpf");
        return;
    }

    // Real DMA write into the (possibly cold) IOuser buffer.
    if (!npfc_.dmaAccess(channel_, target, pkt.bytes, /*write=*/true)) {
        raiseRnpf(target, inbound_.len - pkt.offset, pkt.psn);
        ++stats_.dataPacketsDropped;
        return;
    }

    ++expectedPsn_;
    ++unackedArrivals_;
    ++stats_.dataPacketsDelivered;
    inbound_.received += pkt.bytes;

    if (pkt.lastOfMsg) {
        inbound_.active = false;
        ++stats_.messagesDelivered;
        stats_.bytesDelivered += inbound_.len;
        if (inbound_.op == Opcode::Send) {
            WorkRequest rwr = recvQueue_.front();
            recvQueue_.pop_front();
            Completion c;
            c.wrId = rwr.wrId;
            c.ok = true;
            c.isRecv = true;
            c.bytes = inbound_.len;
            c.at = eq_.now();
            deliverCompletion(c);
        }
        maybeAck(/*force=*/true);
    } else {
        maybeAck(/*force=*/false);
    }
}

void
QueuePair::raiseRnpf(mem::VirtAddr addr, std::size_t len, std::uint64_t psn)
{
    ++stats_.recvNpfs;
    rnpfPending_ = true;
    if (cfg_.pauseOnRnpf)
        fabric_.setHostRxPause(node_, true);
    obs::attributor().blockBegin(attrLane_, obs::Phase::NpfDriver);
    // One flow per RNR suspension: NACK -> fault resolution -> resume.
    rnpfFlow_ = obs::tracer().beginFlow("rnr", "rnr");
    obs::FlowScope fs(rnpfFlow_);
    obs::tracer().instant(obs::Track::Transport, "rnr", "rnr_nack.sent",
                          rnpfFlow_);
    sim::logf(sim::LogLevel::Debug, eq_.now(),
              "rnr: qp node=%u NACK sent psn=%llu addr=0x%llx len=%zu",
              node_, static_cast<unsigned long long>(psn),
              static_cast<unsigned long long>(addr), len);
    // RC lets the receiver suspend the sender: RNR NACK (§4).
    ++stats_.rnrNacksSent;
    Packet nack;
    nack.type = Packet::Type::RnrNack;
    nack.psn = psn;
    sendControl(nack);
    // Resolve the fault; batched pre-fault covers the rest of the
    // message so one flow suffices in the common case.
    npfc_.raiseNpf(channel_, addr, len, /*write=*/true,
                   [this](const core::NpfBreakdown &) {
                       obs::FlowScope fs(rnpfFlow_);
                       sim::logf(sim::LogLevel::Debug, eq_.now(),
                                 "rnr: qp node=%u fault resolved, receiver "
                                 "ready", node_);
                       obs::tracer().instant(obs::Track::Transport, "rnr",
                                             "rnr.resolved", rnpfFlow_);
                       obs::tracer().endFlow(rnpfFlow_);
                       rnpfFlow_ = 0;
                       obs::attributor().blockEnd(attrLane_,
                                                  obs::Phase::NpfDriver);
                       rnpfPending_ = false;
                       if (cfg_.pauseOnRnpf)
                           fabric_.setHostRxPause(node_, false);
                   });
}

void
QueuePair::maybeAck(bool force)
{
    if (!force && unackedArrivals_ < cfg_.ackEvery)
        return;
    unackedArrivals_ = 0;
    Packet ack;
    ack.type = Packet::Type::Ack;
    ack.ackPsn = expectedPsn_;
    sendControl(ack);
}

void
QueuePair::deliverCompletion(Completion c)
{
    if (completionHandler_)
        completionHandler_(c);
}

// --- RDMA read ------------------------------------------------------------

void
QueuePair::startRead(const Packet &req)
{
    readResp_.active = true;
    readResp_.base = req.remoteAddr;
    readResp_.len = req.msgLen;
    readResp_.readId = req.readId;
    readResp_.nextPsn = 0;
    readResp_.limitPsn = (req.msgLen + cfg_.pathMtu - 1) / cfg_.pathMtu;
    readResp_.paused = false;
    pumpReadResponse();
}

void
QueuePair::pumpReadResponse()
{
    if (!readResp_.active || readResp_.paused)
        return;
    if (readResp_.nextPsn >= readResp_.limitPsn) {
        readResp_.active = false;
        return;
    }

    std::size_t offset = std::size_t(readResp_.nextPsn) * cfg_.pathMtu;
    std::size_t bytes = std::min(cfg_.pathMtu, readResp_.len - offset);
    mem::VirtAddr src = readResp_.base + offset;

    // Responder-side fault on the read source: local data, so the
    // responder just waits for resolution before streaming (§4).
    if (!npfc_.dmaAccess(channel_, src, bytes, /*write=*/false)) {
        ++stats_.sendNpfs;
        readResp_.paused = true;
        obs::attributor().blockBegin(attrLane_, obs::Phase::NpfDriver);
        npfc_.raiseNpf(channel_, readResp_.base, readResp_.len,
                       /*write=*/false,
                       [this](const core::NpfBreakdown &) {
                           obs::attributor().blockEnd(
                               attrLane_, obs::Phase::NpfDriver);
                           readResp_.paused = false;
                           pumpReadResponse();
                       });
        return;
    }

    Packet pkt;
    pkt.type = Packet::Type::ReadResponse;
    pkt.psn = readResp_.nextPsn;
    pkt.readId = readResp_.readId;
    pkt.offset = offset;
    pkt.bytes = bytes;
    pkt.msgLen = readResp_.len;
    pkt.lastOfMsg = readResp_.nextPsn + 1 == readResp_.limitPsn;

    ++stats_.dataPacketsSent;
    if (remote_) {
        sendPacketRecord(pkt, bytes);
    } else {
        QueuePair *peer = peer_;
        fabric_.send(node_, peer->node_, bytes, cfg_.priority,
                     flowLabel(),
                     [peer, pkt] { peer->handlePacket(pkt); });
    }
    ++readResp_.nextPsn;

    if (!readRespScheduled_) {
        readRespScheduled_ = true;
        eq_.schedule(nextTxTime(bytes), [this] {
            readRespScheduled_ = false;
            pumpReadResponse();
        }, "ib.read_pump");
    }
}

void
QueuePair::handleReadResponse(const Packet &pkt)
{
    ReadInitiatorState &ri = readInit_;
    if (!ri.active || pkt.readId != ri.readId) {
        ++stats_.dataPacketsDropped;
        return;
    }
    if (ri.faultPending || pkt.psn != ri.expectedPsn) {
        ++stats_.dataPacketsDropped;
        // Extension: a retry of the faulting PSN while resolution is
        // still pending earns another suspension, mirroring the
        // Send/Write RNR path.
        if (cfg_.readRnrExtension && ri.faultPending &&
            pkt.psn == ri.expectedPsn) {
            ++stats_.readRnrSent;
            Packet rnr;
            rnr.type = Packet::Type::ReadRnr;
            rnr.psn = ri.expectedPsn;
            rnr.readId = ri.readId;
            sendControl(rnr);
        }
        return;
    }

    mem::VirtAddr target = ri.wr.local + pkt.offset;

    if (cfg_.syntheticRnpfProb > 0.0 &&
        rng_.bernoulli(cfg_.syntheticRnpfProb)) {
        ++stats_.recvNpfs;
        ++stats_.dataPacketsDropped;
        ri.faultPending = true;
        obs::attributor().blockBegin(attrLane_, obs::Phase::NpfDriver);
        std::size_t pages = mem::pagesCovering(target, pkt.bytes);
        sim::Time lat = npfc_.sampleResolveLatency(channel_, pages,
                                                   cfg_.syntheticMajor);
        eq_.scheduleAfter(lat, [this] {
            obs::attributor().blockEnd(attrLane_, obs::Phase::NpfDriver);
            readInit_.faultPending = false;
            ++stats_.nakSeqSent;
            Packet nak;
            nak.type = Packet::Type::NakSeq;
            nak.psn = readInit_.expectedPsn;
            nak.readId = readInit_.readId;
            sendControl(nak);
        }, "ib.synthetic_rnpf");
        return;
    }

    if (!npfc_.dmaAccess(channel_, target, pkt.bytes, /*write=*/true)) {
        ++stats_.recvNpfs;
        ++stats_.dataPacketsDropped;
        obs::tracer().instant(obs::Track::Transport, "npf",
                              "ib.read_fault");
        ri.faultPending = true;
        obs::attributor().blockBegin(attrLane_, obs::Phase::NpfDriver);
        if (cfg_.readRnrExtension) {
            // Extension (§4 proposal): suspend the responder right
            // away, exactly like the Send/Write RNR path.
            ++stats_.readRnrSent;
            Packet rnr;
            rnr.type = Packet::Type::ReadRnr;
            rnr.psn = ri.expectedPsn;
            rnr.readId = ri.readId;
            sendControl(rnr);
            npfc_.raiseNpf(channel_, ri.wr.local, ri.wr.len,
                           /*write=*/true,
                           [this](const core::NpfBreakdown &) {
                               obs::attributor().blockEnd(
                                   attrLane_, obs::Phase::NpfDriver);
                               readInit_.faultPending = false;
                           });
            return;
        }
        // Standard RC provides no RNR for read responses: drop
        // everything and ask for a rewind only once the fault is
        // resolved (§4).
        npfc_.raiseNpf(channel_, ri.wr.local, ri.wr.len, /*write=*/true,
                       [this](const core::NpfBreakdown &) {
                           obs::attributor().blockEnd(
                               attrLane_, obs::Phase::NpfDriver);
                           readInit_.faultPending = false;
                           ++stats_.nakSeqSent;
                           obs::tracer().instant(obs::Track::Transport,
                                                 "ib", "read.nak_seq");
                           Packet nak;
                           nak.type = Packet::Type::NakSeq;
                           nak.psn = readInit_.expectedPsn;
                           nak.readId = readInit_.readId;
                           sendControl(nak);
                       });
        return;
    }

    ++ri.expectedPsn;
    ++stats_.dataPacketsDelivered;
    if (ri.expectedPsn == ri.limitPsn) {
        ri.active = false;
        ++stats_.messagesDelivered;
        stats_.bytesDelivered += ri.wr.len;
        Completion c;
        c.wrId = ri.wr.wrId;
        c.ok = true;
        c.isRecv = false;
        c.bytes = ri.wr.len;
        c.at = eq_.now();
        deliverCompletion(c);
        pumpSend();
    }
}

} // namespace npf::ib
