/**
 * @file
 * Verbs-style work-request and completion types for the InfiniBand
 * RC model (§4 of the paper).
 */

#ifndef NPF_IB_VERBS_HH
#define NPF_IB_VERBS_HH

#include <cstdint>

#include "mem/types.hh"
#include "sim/time.hh"

namespace npf::ib {

/** RC operations the model supports. */
enum class Opcode {
    Send,      ///< channel semantics; consumes a receive WQE
    RdmaWrite, ///< writes remote memory; no receive WQE
    RdmaRead,  ///< reads remote memory into a local buffer
};

/** A work request posted to a queue pair. */
struct WorkRequest
{
    Opcode op = Opcode::Send;
    mem::VirtAddr local = 0;  ///< local buffer (source for Send/Write,
                              ///< destination for Read/Recv)
    std::size_t len = 0;
    mem::VirtAddr remote = 0; ///< remote address for RDMA ops
    std::uint64_t wrId = 0;   ///< opaque application cookie
};

/** A work completion. */
struct Completion
{
    std::uint64_t wrId = 0;
    bool ok = true;
    bool isRecv = false;
    std::size_t bytes = 0;
    sim::Time at = 0;
};

} // namespace npf::ib

#endif // NPF_IB_VERBS_HH
