#include "obs/metrics.hh"

#include "obs/json.hh"

namespace npf::obs {

Registry &
Registry::global()
{
    // Leaked intentionally: components may deregister from arbitrary
    // static-destruction contexts. thread_local so every shard worker
    // gets a private registry — components built via
    // ShardedEngine::invokeOn register with their own shard's
    // registry and never contend (docs/SHARDING.md).
    static thread_local Registry *r = new Registry;
    return *r;
}

std::string
Registry::instanceName(const std::string &prefix)
{
    checkOwner("instanceName");
    unsigned n = instances_[prefix]++;
    return prefix + std::to_string(n);
}

Registry::Id
Registry::insert(std::string name, Entry e)
{
    checkOwner("insert");
    e.id = nextId_++;
    // Re-registering a name replaces the entry; drop the stale id
    // mapping so a later remove() of the old id cannot delete (or,
    // with retain on, archive over) the replacement.
    if (auto old = entries_.find(name); old != entries_.end())
        idToName_.erase(old->second.id);
    idToName_[e.id] = name;
    entries_[std::move(name)] = std::move(e);
    return nextId_ - 1;
}

Registry::Id
Registry::addCounter(std::string name, const std::uint64_t *v)
{
    Entry e;
    e.kind = Kind::Counter;
    e.counter = v;
    return insert(std::move(name), std::move(e));
}

Registry::Id
Registry::addGauge(std::string name, std::function<double()> fn)
{
    Entry e;
    e.kind = Kind::Gauge;
    e.gauge = std::move(fn);
    return insert(std::move(name), std::move(e));
}

Registry::Id
Registry::addHistogram(std::string name, const sim::Histogram *h)
{
    Entry e;
    e.kind = Kind::Histogram;
    e.histogram = h;
    return insert(std::move(name), std::move(e));
}

Registry::Id
Registry::addDistribution(std::string name,
                          std::function<DistSnapshot()> fn)
{
    Entry e;
    e.kind = Kind::Distribution;
    e.dist = std::move(fn);
    return insert(std::move(name), std::move(e));
}

void
Registry::remove(Id id)
{
    checkOwner("remove");
    auto it = idToName_.find(id);
    if (it == idToName_.end())
        return;
    auto eit = entries_.find(it->second);
    if (eit != entries_.end() && eit->second.id == id) {
        if (retain_) {
            const Entry &e = eit->second;
            switch (e.kind) {
              case Kind::Counter:
                retiredCounters_[eit->first] = *e.counter;
                break;
              case Kind::Gauge:
                retiredGauges_[eit->first] = e.gauge();
                break;
              case Kind::Histogram:
                if (e.histogram->count() > 0)
                    retiredHistograms_[eit->first] = *e.histogram;
                break;
              case Kind::Distribution:
                if (DistSnapshot s = e.dist(); s.count > 0)
                    retiredDists_[eit->first] = s;
                break;
            }
        }
        entries_.erase(eit);
    }
    idToName_.erase(it);
}

void
Registry::removeAll(const std::vector<Id> &ids)
{
    for (Id id : ids)
        remove(id);
}

void
Registry::clearRetired()
{
    checkOwner("clearRetired");
    retiredCounters_.clear();
    retiredGauges_.clear();
    retiredHistograms_.clear();
    retiredDists_.clear();
}

std::size_t
Registry::retiredSize() const
{
    return retiredCounters_.size() + retiredGauges_.size() +
           retiredHistograms_.size() + retiredDists_.size();
}

std::optional<double>
Registry::value(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        if (auto rc = retiredCounters_.find(name);
            rc != retiredCounters_.end())
            return static_cast<double>(rc->second);
        if (auto rg = retiredGauges_.find(name);
            rg != retiredGauges_.end())
            return rg->second;
        return std::nullopt;
    }
    const Entry &e = it->second;
    switch (e.kind) {
      case Kind::Counter:
        return static_cast<double>(*e.counter);
      case Kind::Gauge:
        return e.gauge();
      case Kind::Histogram:
      case Kind::Distribution:
        return std::nullopt;
    }
    return std::nullopt;
}

std::vector<std::string>
Registry::names(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[name, e] : entries_) {
        if (prefix.empty() || name.compare(0, prefix.size(), prefix) == 0)
            out.push_back(name);
    }
    return out;
}

namespace {

void
histogramJson(std::ostream &os, const sim::Histogram &h)
{
    os << "{\"count\":" << h.count() << ",\"mean\":";
    jsonNumber(os, h.mean());
    os << ",\"p50\":";
    jsonNumber(os, h.percentile(50));
    os << ",\"p90\":";
    jsonNumber(os, h.percentile(90));
    os << ",\"p99\":";
    jsonNumber(os, h.percentile(99));
    os << ",\"min\":";
    jsonNumber(os, h.min());
    os << ",\"max\":";
    jsonNumber(os, h.max());
    os << '}';
}

void
distJson(std::ostream &os, const DistSnapshot &s)
{
    os << "{\"count\":" << s.count << ",\"mean\":";
    jsonNumber(os, s.mean);
    os << ",\"p50\":";
    jsonNumber(os, s.p50);
    os << ",\"p90\":";
    jsonNumber(os, s.p90);
    os << ",\"p99\":";
    jsonNumber(os, s.p99);
    os << ",\"p99.9\":";
    jsonNumber(os, s.p999);
    os << ",\"min\":";
    jsonNumber(os, s.min);
    os << ",\"max\":";
    jsonNumber(os, s.max);
    os << '}';
}

} // namespace

void
Registry::writeJson(std::ostream &os) const
{
    os << '{';
    JsonSep top;

    top.emit(os);
    os << "\"counters\":{";
    JsonSep sep;
    for (const auto &[name, v] : retiredCounters_) {
        sep.emit(os);
        jsonString(os, name);
        os << ':' << v;
    }
    for (const auto &[name, e] : entries_) {
        if (e.kind != Kind::Counter)
            continue;
        sep.emit(os);
        jsonString(os, name);
        os << ':' << *e.counter;
    }
    os << '}';

    top.emit(os);
    os << "\"gauges\":{";
    sep.reset();
    for (const auto &[name, v] : retiredGauges_) {
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        jsonNumber(os, v);
    }
    for (const auto &[name, e] : entries_) {
        if (e.kind != Kind::Gauge)
            continue;
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        jsonNumber(os, e.gauge());
    }
    os << '}';

    top.emit(os);
    os << "\"histograms\":{";
    sep.reset();
    for (const auto &[name, h] : retiredHistograms_) {
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        histogramJson(os, h);
    }
    for (const auto &[name, e] : entries_) {
        if (e.kind != Kind::Histogram)
            continue;
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        histogramJson(os, *e.histogram);
    }
    for (const auto &[name, s] : retiredDists_) {
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        distJson(os, s);
    }
    for (const auto &[name, e] : entries_) {
        if (e.kind != Kind::Distribution)
            continue;
        sep.emit(os);
        jsonString(os, name);
        os << ':';
        distJson(os, e.dist());
    }
    os << '}';

    os << '}';
}

} // namespace npf::obs
