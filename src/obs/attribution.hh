/**
 * @file
 * Causal latency attribution: a per-request phase breakdown that sums
 * *exactly* to the measured end-to-end latency.
 *
 * The design deliberately avoids tagging individual packets (the sim's
 * hot paths are packet-granular and a per-packet context would be both
 * invasive and slow). Instead, components that *block* a request's
 * progress — the NPF driver phase, RNR backoff, retransmit stalls, and
 * server CPU occupancy — accrue sim-time into a small set of *lanes*
 * (one per session/channel, one per server, plus a root lane for
 * host-global stalls such as an Ethernet NIC parked on a cold ring).
 * The client pool snapshots a request's lane at send time and diffs at
 * completion; whatever part of the sojourn the blocking phases do not
 * explain lands in the Queue residual, so
 *
 *     backlog + queue + server + npf + rnr + retransmit == e2e
 *
 * holds by construction, in integer nanoseconds, with no sampling and
 * no double-booking. Because shared resources (a server core, the root
 * lane) are charged once and folded into every overlapping request's
 * window, a phase can legitimately exceed the request's own service
 * demand — and Queue can go negative when overlapping lumps over-
 * explain the window. Both are documented, not bugs: the invariant the
 * tests enforce is the exact sum.
 *
 * Everything here is gated so that the disabled configuration does no
 * work beyond one predictable branch per call site and allocates
 * nothing: openLane() returns -1 while disabled and every mutator
 * early-outs on a negative lane.
 */

#ifndef NPF_OBS_ATTRIBUTION_HH
#define NPF_OBS_ATTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::obs {

/** Where a nanosecond of a request's sojourn went. */
enum class Phase : unsigned {
    Backlog = 0,   ///< open-loop arrival intended -> actually sent
    Queue,         ///< residual: wire, HoL wait, anything not below
    Server,        ///< server CPU occupancy (shared-resource charge)
    NpfDriver,     ///< NIC page-fault handling (send/recv/read NPF)
    RnrBackoff,    ///< receiver-not-ready pause (IB RNR NAK / read RNR)
    Retransmit,    ///< RTO-driven stalls (TCP RTO, IB retransmit rewind)
};

inline constexpr unsigned kPhaseCount = 6;

const char *phaseName(Phase p);

/** Per-request result: ns per phase plus the end-to-end total. */
struct PhaseBreakdown
{
    std::int64_t ns[kPhaseCount] = {};
    std::int64_t e2e = 0;

    std::int64_t sum() const
    {
        std::int64_t s = 0;
        for (unsigned i = 0; i < kPhaseCount; ++i)
            s += ns[i];
        return s;
    }
};

/**
 * The process-wide phase accountant.
 *
 * Lanes form a two-level forest rooted implicitly at lane 0 (the root
 * lane, created on enable()): a snapshot of lane L folds in L, L's
 * parent (if any), and the root, so host-global blocks are visible to
 * every request without per-component lane plumbing.
 *
 * Blocking time is recorded either as begin/end *blocks* (the blocked
 * interval accrues to the block's phase while it is the most recent
 * open block on the lane) or as retroactive *lump charges* (for stalls
 * only recognizable after the fact, e.g. an RTO that fired). blockEnd
 * closes the most recent open block of the given phase, so interleaved
 * non-LIFO blocks from two directions of one session are tolerated.
 */
class Attributor
{
  public:
    static Attributor &global();

    bool enabled() const { return enabled_; }

    /** Enable/disable. Enabling resets all lanes and creates the root. */
    void enable(bool on);

    /** Drop all lanes (except a fresh root when enabled). */
    void reset();

    /** Clock for accrual; must be set while enabled. */
    void setClock(const sim::EventQueue *eq) { eq_ = eq; }

    /** Root lane id, or -1 while disabled. */
    int rootLane() const { return enabled_ ? 0 : -1; }

    /**
     * Create a lane. @p parent is a lane id or -1 (root-parented).
     * Returns -1 while disabled; all mutators accept -1 as a no-op, so
     * callers can cache the result unconditionally.
     */
    int openLane(const char *name, int parent = -1);

    /** Open a blocking interval of phase @p p on @p lane. */
    void blockBegin(int lane, Phase p)
    {
        if (lane < 0)
            return;
        blockBeginSlow(lane, p);
    }

    /** Close the most recent open block of phase @p p on @p lane. */
    void blockEnd(int lane, Phase p)
    {
        if (lane < 0)
            return;
        blockEndSlow(lane, p);
    }

    /** Retroactive lump charge of @p dur to phase @p p on @p lane. */
    void charge(int lane, Phase p, sim::Time dur)
    {
        if (lane < 0)
            return;
        chargeSlow(lane, p, dur);
    }

    /**
     * Accumulated phase time visible from @p lane: lane + parent +
     * root, with any open blocks folded in up to now. e2e is left 0.
     */
    void snapshot(int lane, PhaseBreakdown &out) const;

    std::size_t laneCount() const { return lanes_.size(); }

  private:
    static constexpr unsigned kMaxDepth = 16;

    struct Lane
    {
        const char *name = "";
        int parent = -1;
        std::int64_t acc[kPhaseCount] = {};
        Phase stack[kMaxDepth] = {};
        unsigned depth = 0;
        sim::Time topStart = 0;
        std::uint64_t overflowed = 0;
    };

    void blockBeginSlow(int lane, Phase p);
    void blockEndSlow(int lane, Phase p);
    void chargeSlow(int lane, Phase p, sim::Time dur);
    void accrue(Lane &l);
    void fold(const Lane &l, PhaseBreakdown &out) const;

    bool enabled_ = false;
    const sim::EventQueue *eq_ = nullptr;
    std::vector<Lane> lanes_;
};

inline Attributor &
attributor()
{
    return Attributor::global();
}

} // namespace npf::obs

#endif // NPF_OBS_ATTRIBUTION_HH
