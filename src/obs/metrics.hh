/**
 * @file
 * The simulation-wide metrics registry.
 *
 * Every model component keeps its ad-hoc `struct Stats` exactly as
 * before — the registry holds *pointers* into those structs, so
 * registration costs a few string allocations at construction time
 * and the hot paths keep bumping plain integers. A snapshot walks
 * the registered entries and serializes them to JSON.
 *
 * Names are hierarchical, dot-separated, and instance-numbered:
 * `ib.qp0.rnr_nacks_sent`, `core.npf0.driver_ns`, `mem.mm1.evictions`.
 * Components obtain their instance prefix through an Instrumented
 * handle held as their last data member, which also guarantees
 * deregistration on destruction — before any registered field dies.
 */

#ifndef NPF_OBS_METRICS_HH
#define NPF_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

#include "sim/histogram.hh"

namespace npf::obs {

/**
 * Point-in-time summary of a distribution kept outside the registry
 * (e.g. a log-bucketed load::Histogram, which is not a
 * sim::Histogram). Distribution entries evaluate a provider function
 * at snapshot time and serialize alongside the histograms.
 */
struct DistSnapshot
{
    std::uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double p999 = 0;
    double min = 0;
    double max = 0;
};

/**
 * Registry of named metrics. One instance per thread via global();
 * separate registries can be created for tests.
 */
class Registry
{
  public:
    using Id = std::uint64_t;

    /**
     * The calling thread's registry. PER-THREAD, not process-wide:
     * global() is thread_local so that components built on a shard
     * worker (via ShardedEngine::invokeOn) register into that
     * shard's private registry with no locking. The flip side: a
     * registry only ever sees metrics registered on its own thread,
     * and writeJson() from the main thread reports none of the shard
     * workers' entries — snapshot each shard's registry on its own
     * thread (inside an invokeOn body) and merge the dumps. Debug
     * builds abort on any cross-thread mutation (checkOwner); in
     * release builds a component constructed on the wrong thread
     * silently lands in that thread's registry, so audit with a
     * debug run when metrics seem to be missing.
     */
    static Registry &global();

    /**
     * Allocate an instance-numbered prefix: instanceName("ib.qp")
     * returns "ib.qp0", then "ib.qp1", ... Monotonic per prefix for
     * the registry's lifetime, so names never collide.
     */
    std::string instanceName(const std::string &prefix);

    /** Register a counter backed by @p v (must outlive the entry). */
    Id addCounter(std::string name, const std::uint64_t *v);

    /** Register a gauge computed on snapshot by @p fn. */
    Id addGauge(std::string name, std::function<double()> fn);

    /** Register a latency/size distribution backed by @p h. */
    Id addHistogram(std::string name, const sim::Histogram *h);

    /** Register a distribution summarised on snapshot by @p fn. */
    Id addDistribution(std::string name,
                       std::function<DistSnapshot()> fn);

    /** Remove one entry (no-op for unknown ids). */
    void remove(Id id);

    /** Remove several entries (the Instrumented destructor path). */
    void removeAll(const std::vector<Id> &ids);

    /** Number of registered entries. */
    std::size_t size() const { return entries_.size(); }

    /**
     * Current value of a counter or gauge by full name (live or
     * retired); nullopt for unknown names and histograms.
     */
    std::optional<double> value(const std::string &name) const;

    /** All registered names, sorted, optionally filtered by prefix. */
    std::vector<std::string> names(const std::string &prefix = {}) const;

    /**
     * Detail flag: when false (the default), components skip
     * optional per-event sample recording (e.g. per-NPF latency
     * histograms) so idle-path overhead stays at plain counter
     * increments. obs::Session raises it for its lifetime.
     */
    bool detail() const { return detail_; }
    void setDetail(bool on) { detail_ = on; }

    /**
     * Retain flag: while true, remove() archives the final value of
     * the departing entry instead of dropping it, so a snapshot taken
     * after a component died (sweep benches destroy models per
     * iteration; helpers build them in inner scopes) still shows its
     * counters. Instance numbering guarantees retired names never
     * clash with live ones. obs::Session raises this for its
     * lifetime and clears the retired set when it finishes.
     */
    bool retain() const { return retain_; }
    void setRetain(bool on) { retain_ = on; }

    /** Drop all retired values. */
    void clearRetired();

    /** Number of retired (archived) entries. */
    std::size_t retiredSize() const;

    /**
     * Serialize every entry:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     * {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"min":..,
     * "max":..}}}
     */
    void writeJson(std::ostream &os) const;

  private:
    /**
     * Registries are per-thread (global() is thread_local); debug
     * builds abort on mutation from any other thread — the loud
     * failure mode for a component leaking across a shard boundary
     * instead of registering through ShardedEngine::invokeOn.
     */
    void
    checkOwner(const char *op) const
    {
#ifndef NDEBUG
        if (std::this_thread::get_id() == owner_)
            return;
        std::fprintf(stderr,
                     "obs::Registry: %s from non-owner thread "
                     "(component crossed a shard boundary)\n",
                     op);
        std::abort();
#else
        (void)op;
#endif
    }

    enum class Kind { Counter, Gauge, Histogram, Distribution };

    struct Entry
    {
        Kind kind = Kind::Counter;
        Id id = 0;
        const std::uint64_t *counter = nullptr;
        std::function<double()> gauge;
        const sim::Histogram *histogram = nullptr;
        std::function<DistSnapshot()> dist;
    };

    Id insert(std::string name, Entry e);

    std::map<std::string, Entry> entries_;     ///< sorted for output
    std::map<Id, std::string> idToName_;
    std::map<std::string, unsigned> instances_;
    std::map<std::string, std::uint64_t> retiredCounters_;
    std::map<std::string, double> retiredGauges_;
    std::map<std::string, sim::Histogram> retiredHistograms_;
    std::map<std::string, DistSnapshot> retiredDists_;
    Id nextId_ = 1;
    bool detail_ = false;
    bool retain_ = false;
#ifndef NDEBUG
    std::thread::id owner_ = std::this_thread::get_id();
#endif
};

/**
 * Instrumentation handle for components that export metrics. Hold it
 * as the component's **last data member**:
 *
 *   class QueuePair {
 *     QueuePair(...) {
 *         obs_.init("ib.qp");                     // -> "ib.qp3"
 *         obs_.counter("rnr_nacks_sent", &stats_.rnrNacksSent);
 *     }
 *     ...
 *     Stats stats_;
 *     obs::Instrumented obs_;   // last: deregisters before stats_ dies
 *   };
 *
 * Deregistration is automatic in the destructor, so the registry
 * never holds dangling pointers. Declaration order is the whole
 * point: members are destroyed in reverse declaration order, so a
 * last-declared handle deregisters — and, under a session's retain
 * flag, archives final counter/histogram values and evaluates gauge
 * lambdas — while every registered field is still alive. (A
 * base-class mixin gets this wrong: base destructors run *after*
 * member destruction, which turned retain-mode archiving into a
 * use-after-free.) Non-copyable and non-movable: the registry
 * captures field addresses.
 */
class Instrumented
{
  public:
    Instrumented() = default;
    ~Instrumented() { Registry::global().removeAll(ids_); }

    Instrumented(const Instrumented &) = delete;
    Instrumented &operator=(const Instrumented &) = delete;

    /** The assigned instance prefix, e.g. "ib.qp3" ("" before init). */
    const std::string &name() const { return name_; }

    /** Claim an instance prefix from the global registry. */
    void
    init(const std::string &prefix)
    {
        name_ = Registry::global().instanceName(prefix);
    }

    void
    counter(const std::string &field, const std::uint64_t *v)
    {
        ids_.push_back(
            Registry::global().addCounter(name_ + "." + field, v));
    }

    void
    gauge(const std::string &field, std::function<double()> fn)
    {
        ids_.push_back(Registry::global().addGauge(
            name_ + "." + field, std::move(fn)));
    }

    void
    histogram(const std::string &field, const sim::Histogram *h)
    {
        ids_.push_back(
            Registry::global().addHistogram(name_ + "." + field, h));
    }

    void
    distribution(const std::string &field,
                 std::function<DistSnapshot()> fn)
    {
        ids_.push_back(Registry::global().addDistribution(
            name_ + "." + field, std::move(fn)));
    }

  private:
    std::string name_;
    std::vector<Registry::Id> ids_;
};

} // namespace npf::obs

#endif // NPF_OBS_METRICS_HH
