#include "obs/flow_tracer.hh"

#include "obs/json.hh"
#include "sim/log.hh"

namespace npf::obs {

namespace {

/** Log annotator: prefix log lines with the active flow id. */
void
annotateLogLine(std::FILE *out)
{
    FlowTracer &t = tracer();
    // Only in full-trace mode: flow-id prefixes are for correlating
    // logs against a complete trace, not against the flight ring.
    if (t.enabled() && t.currentFlow() != 0)
        std::fprintf(out, "[flow %llu] ",
                     static_cast<unsigned long long>(t.currentFlow()));
}

const char *
trackName(int tid)
{
    switch (static_cast<Track>(tid)) {
      case Track::Nic:
        return "nic-fw";
      case Track::Driver:
        return "driver";
      case Track::Iommu:
        return "iommu";
      case Track::Mem:
        return "mem";
      case Track::Net:
        return "net";
      case Track::Transport:
        return "transport";
      case Track::App:
        return "app";
      case Track::Sim:
        return "sim";
    }
    return "other";
}

} // namespace

FlowTracer &
FlowTracer::global()
{
    static thread_local FlowTracer *t = [] {
        auto *tr = new FlowTracer;
        sim::setLogAnnotator(&annotateLogLine);
        return tr;
    }();
    return *t;
}

bool
FlowTracer::admit()
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
FlowTracer::push(const Event &e)
{
    if (enabled_ && admit())
        events_.push_back(e);
    if (flightCap_ != 0) {
        flight_[flightHead_] = e;
        flightHead_ = flightHead_ + 1 == flightCap_ ? 0 : flightHead_ + 1;
        if (flightCount_ < flightCap_)
            ++flightCount_;
        else
            ++flightOverwritten_;
    }
}

void
FlowTracer::setFlightCapacity(std::size_t cap)
{
    flightCap_ = cap;
    flightHead_ = 0;
    flightCount_ = 0;
    flightOverwritten_ = 0;
    flight_.assign(cap, Event{});
    flight_.shrink_to_fit();
    if (cap != 0)
        flightOpen_.assign(kFlightOpenSlots, FlightOpen{0, "", ""});
    else {
        flightOpen_.clear();
        flightOpen_.shrink_to_fit();
    }
}

FlowId
FlowTracer::beginFlow(const char *cat, const char *name)
{
    if (!active())
        return 0;
    return beginFlowAt(cat, name, now());
}

FlowId
FlowTracer::beginFlowAt(const char *cat, const char *name, sim::Time t)
{
    if (!active())
        return 0;
    FlowId f = nextFlow_++;
    if (enabled_)
        open_[f] = FlowInfo{cat, name};
    else
        // Flight-only: fixed-slot table, no allocation. A collision
        // evicts the older flow; its end event is then skipped, which
        // the ring (itself lossy by design) tolerates.
        flightOpen_[f & (kFlightOpenSlots - 1)] = FlightOpen{f, cat, name};
    push(Event{'b', 0, f, cat, name, t, 0, 0.0});
    return f;
}

void
FlowTracer::endFlow(FlowId f)
{
    if (!active() || f == 0)
        return;
    endFlowAt(f, now());
}

void
FlowTracer::endFlowAt(FlowId f, sim::Time t)
{
    if (!active() || f == 0)
        return;
    if (enabled_) {
        auto it = open_.find(f);
        if (it == open_.end())
            return;
        push(Event{'e', 0, f, it->second.cat, it->second.name, t, 0,
                   0.0});
        open_.erase(it);
        return;
    }
    FlightOpen &slot = flightOpen_[f & (kFlightOpenSlots - 1)];
    if (slot.id != f)
        return;
    push(Event{'e', 0, f, slot.cat, slot.name, t, 0, 0.0});
    slot.id = 0;
}

void
FlowTracer::span(Track track, const char *cat, const char *name,
                 sim::Time start, sim::Time dur, FlowId f)
{
    if (!active())
        return;
    push(Event{'X', static_cast<int>(track), f, cat, name, start, dur,
               0.0});
}

void
FlowTracer::instant(Track track, const char *cat, const char *name,
                    FlowId f)
{
    if (!active())
        return;
    instantAt(track, cat, name, now(), f);
}

void
FlowTracer::instantAt(Track track, const char *cat, const char *name,
                      sim::Time t, FlowId f)
{
    if (!active())
        return;
    push(Event{'i', static_cast<int>(track), f, cat, name, t, 0, 0.0});
}

void
FlowTracer::counter(const char *name, double value)
{
    if (!active())
        return;
    push(Event{'C', static_cast<int>(Track::Sim), 0, "counter", name,
               now(), 0, value});
}

void
FlowTracer::clear()
{
    events_.clear();
    open_.clear();
    dropped_ = 0;
    flightHead_ = 0;
    flightCount_ = 0;
    flightOverwritten_ = 0;
    for (FlightOpen &s : flightOpen_)
        s.id = 0;
}

void
FlowTracer::writeProlog(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    JsonSep sep;

    // Track-name metadata so the viewer labels each layer.
    for (int tid = 1; tid <= 8; ++tid) {
        sep.emit(os);
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        jsonString(os, trackName(tid));
        os << "}}";
    }
}

void
FlowTracer::writeEventJson(std::ostream &os, const Event &e) const
{
    // ts in microseconds (Chrome's unit), sub-us as fractions.
    double ts = static_cast<double>(e.ts) / 1000.0;
    os << "{\"ph\":\"" << e.ph << "\",\"pid\":0";
    switch (e.ph) {
      case 'X':
        os << ",\"tid\":" << e.tid << ",\"ts\":";
        jsonNumber(os, ts);
        os << ",\"dur\":";
        jsonNumber(os, static_cast<double>(e.dur) / 1000.0);
        break;
      case 'i':
        os << ",\"tid\":" << e.tid << ",\"ts\":";
        jsonNumber(os, ts);
        os << ",\"s\":\"t\"";
        break;
      case 'b':
      case 'e':
        os << ",\"tid\":0,\"id\":" << e.flow << ",\"ts\":";
        jsonNumber(os, ts);
        break;
      case 'C':
        os << ",\"tid\":" << e.tid << ",\"ts\":";
        jsonNumber(os, ts);
        break;
    }
    os << ",\"cat\":";
    jsonString(os, e.cat);
    os << ",\"name\":";
    jsonString(os, e.name);
    if (e.ph == 'C') {
        os << ",\"args\":{\"value\":";
        jsonNumber(os, e.value);
        os << '}';
    } else if (e.flow != 0) {
        os << ",\"args\":{\"flow\":" << e.flow << '}';
    }
    os << '}';
}

void
FlowTracer::writeChromeTrace(std::ostream &os) const
{
    writeProlog(os);
    for (const Event &e : events_) {
        os << ',';
        writeEventJson(os, e);
    }
    os << "]}";
}

void
FlowTracer::writeFlightTrace(std::ostream &os) const
{
    writeProlog(os);
    // Oldest event first: when full, the head slot (next overwrite
    // target) is the oldest; otherwise the ring starts at slot 0.
    std::size_t start =
        flightCount_ == flightCap_ ? flightHead_ : 0;
    for (std::size_t i = 0; i < flightCount_; ++i) {
        std::size_t idx = start + i;
        if (idx >= flightCap_)
            idx -= flightCap_;
        os << ',';
        writeEventJson(os, flight_[idx]);
    }
    os << "]}";
}

} // namespace npf::obs
