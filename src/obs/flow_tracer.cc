#include "obs/flow_tracer.hh"

#include "obs/json.hh"
#include "sim/log.hh"

namespace npf::obs {

namespace {

/** Log annotator: prefix log lines with the active flow id. */
void
annotateLogLine(std::FILE *out)
{
    FlowTracer &t = tracer();
    if (t.enabled() && t.currentFlow() != 0)
        std::fprintf(out, "[flow %llu] ",
                     static_cast<unsigned long long>(t.currentFlow()));
}

const char *
trackName(int tid)
{
    switch (static_cast<Track>(tid)) {
      case Track::Nic:
        return "nic-fw";
      case Track::Driver:
        return "driver";
      case Track::Iommu:
        return "iommu";
      case Track::Mem:
        return "mem";
      case Track::Net:
        return "net";
      case Track::Transport:
        return "transport";
      case Track::App:
        return "app";
      case Track::Sim:
        return "sim";
    }
    return "other";
}

} // namespace

FlowTracer &
FlowTracer::global()
{
    static FlowTracer *t = [] {
        auto *tr = new FlowTracer;
        sim::setLogAnnotator(&annotateLogLine);
        return tr;
    }();
    return *t;
}

bool
FlowTracer::admit()
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
FlowTracer::push(Event e)
{
    if (admit())
        events_.push_back(e);
}

FlowId
FlowTracer::beginFlow(const char *cat, const char *name)
{
    if (!enabled_)
        return 0;
    return beginFlowAt(cat, name, now());
}

FlowId
FlowTracer::beginFlowAt(const char *cat, const char *name, sim::Time t)
{
    if (!enabled_)
        return 0;
    FlowId f = nextFlow_++;
    open_[f] = FlowInfo{cat, name};
    push(Event{'b', 0, f, cat, name, t, 0, 0.0});
    return f;
}

void
FlowTracer::endFlow(FlowId f)
{
    if (!enabled_ || f == 0)
        return;
    endFlowAt(f, now());
}

void
FlowTracer::endFlowAt(FlowId f, sim::Time t)
{
    if (!enabled_ || f == 0)
        return;
    auto it = open_.find(f);
    if (it == open_.end())
        return;
    push(Event{'e', 0, f, it->second.cat, it->second.name, t, 0, 0.0});
    open_.erase(it);
}

void
FlowTracer::span(Track track, const char *cat, const char *name,
                 sim::Time start, sim::Time dur, FlowId f)
{
    if (!enabled_)
        return;
    push(Event{'X', static_cast<int>(track), f, cat, name, start, dur,
               0.0});
}

void
FlowTracer::instant(Track track, const char *cat, const char *name,
                    FlowId f)
{
    if (!enabled_)
        return;
    instantAt(track, cat, name, now(), f);
}

void
FlowTracer::instantAt(Track track, const char *cat, const char *name,
                      sim::Time t, FlowId f)
{
    if (!enabled_)
        return;
    push(Event{'i', static_cast<int>(track), f, cat, name, t, 0, 0.0});
}

void
FlowTracer::counter(const char *name, double value)
{
    if (!enabled_)
        return;
    push(Event{'C', static_cast<int>(Track::Sim), 0, "counter", name,
               now(), 0, value});
}

void
FlowTracer::clear()
{
    events_.clear();
    open_.clear();
    dropped_ = 0;
}

void
FlowTracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    JsonSep sep;

    // Track-name metadata so the viewer labels each layer.
    for (int tid = 1; tid <= 8; ++tid) {
        sep.emit(os);
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        jsonString(os, trackName(tid));
        os << "}}";
    }

    for (const Event &e : events_) {
        sep.emit(os);
        // ts in microseconds (Chrome's unit), sub-us as fractions.
        double ts = static_cast<double>(e.ts) / 1000.0;
        os << "{\"ph\":\"" << e.ph << "\",\"pid\":0";
        switch (e.ph) {
          case 'X':
            os << ",\"tid\":" << e.tid << ",\"ts\":";
            jsonNumber(os, ts);
            os << ",\"dur\":";
            jsonNumber(os, static_cast<double>(e.dur) / 1000.0);
            break;
          case 'i':
            os << ",\"tid\":" << e.tid << ",\"ts\":";
            jsonNumber(os, ts);
            os << ",\"s\":\"t\"";
            break;
          case 'b':
          case 'e':
            os << ",\"tid\":0,\"id\":" << e.flow << ",\"ts\":";
            jsonNumber(os, ts);
            break;
          case 'C':
            os << ",\"tid\":" << e.tid << ",\"ts\":";
            jsonNumber(os, ts);
            break;
        }
        os << ",\"cat\":";
        jsonString(os, e.cat);
        os << ",\"name\":";
        jsonString(os, e.name);
        if (e.ph == 'C') {
            os << ",\"args\":{\"value\":";
            jsonNumber(os, e.value);
            os << '}';
        } else if (e.flow != 0) {
            os << ",\"args\":{\"flow\":" << e.flow << '}';
        }
        os << '}';
    }
    os << "]}";
}

} // namespace npf::obs
