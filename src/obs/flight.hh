/**
 * @file
 * Flight-recorder management: arming the FlowTracer's fixed-capacity
 * event ring and dumping it to Chrome-trace JSON when something
 * interesting happens (SLO violation, fault-plan clause firing, or an
 * explicit end-of-run request).
 *
 * The ring itself lives in FlowTracer (it shares the emit entry points
 * and event structs with full tracing); this layer owns policy — dump
 * paths, dump budget, and the triggers other subsystems call into.
 * Dumps are numbered (`flight.json` -> `flight.000.json`, ...) so a
 * run with several triggers keeps each pre-incident window.
 */

#ifndef NPF_OBS_FLIGHT_HH
#define NPF_OBS_FLIGHT_HH

#include <cstddef>
#include <string>

namespace npf::obs {

struct FlightOptions
{
    std::size_t capacity = 1u << 16; ///< events retained in the ring
    std::string dumpPath = "flight.json";
    bool dumpOnSlo = false;          ///< dump when SloMonitor trips
    unsigned maxDumps = 64;          ///< budget across one arming
};

class FlightRecorder
{
  public:
    static FlightRecorder &global();

    /** Arm: preallocate the ring and start recording. */
    void arm(FlightOptions opt);

    /** Disarm: stop recording and release the ring. */
    void disarm();

    bool armed() const { return armed_; }
    bool dumpOnSlo() const { return armed_ && opt_.dumpOnSlo; }
    unsigned dumps() const { return dumps_; }

    /**
     * Write the current ring contents to the next numbered dump path.
     * @p reason is logged. Returns false when disarmed, out of dump
     * budget, or the file cannot be written.
     */
    bool dump(const char *reason);

    /** SloMonitor trigger: dump iff armed with dumpOnSlo. */
    void onSloViolation();

  private:
    FlightOptions opt_;
    bool armed_ = false;
    unsigned dumps_ = 0;
};

inline FlightRecorder &
flightRecorder()
{
    return FlightRecorder::global();
}

/**
 * Insert a zero-padded index before the final extension:
 * "trace.json" -> "trace.003.json", "out" -> "out.003". Shared by the
 * flight recorder and the sweep benches' per-iteration outputs.
 */
std::string indexedPath(const std::string &path, unsigned n);

} // namespace npf::obs

#endif // NPF_OBS_FLIGHT_HH
