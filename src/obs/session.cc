#include "obs/session.hh"

#include <fstream>
#include <map>

#include "obs/attribution.hh"
#include "obs/flight.hh"
#include "obs/json.hh"
#include "sim/log.hh"

namespace npf::obs {

Session::Session(sim::EventQueue &eq, SessionOptions opt)
    : eq_(eq), opt_(std::move(opt))
{
    Registry &reg = Registry::global();
    priorDetail_ = reg.detail();
    reg.setDetail(true);
    // Archive the final values of components destroyed mid-run (sweep
    // benches tear models down every iteration) so the snapshot still
    // shows them.
    reg.setRetain(true);
    reg.clearRetired();

    FlowTracer &tr = tracer();
    tr.clear();
    tr.setClock(&eq_);
    tr.enable(opt_.trace);

    if (opt_.flightCapacity > 0) {
        FlightOptions fo;
        fo.capacity = opt_.flightCapacity;
        fo.dumpPath = opt_.flightDumpPath;
        fo.dumpOnSlo = opt_.flightDumpOnSlo;
        FlightRecorder::global().arm(std::move(fo));
    }

    Attributor &at = attributor();
    at.setClock(&eq_);
    at.enable(opt_.attribution);

    eq_.clearProfile();
    eq_.enableProfile(opt_.profileEventLoop);

    obs_.init("sim.eq");
    const sim::EventQueue::Stats &st = eq_.stats();
    obs_.counter("scheduled", &st.scheduled);
    obs_.counter("executed", &st.executed);
    obs_.counter("cancelled", &st.cancelled);
    obs_.counter("cancelled_reaped", &st.cancelledReaped);
    obs_.gauge("live", [this] { return double(eq_.live()); });
    obs_.gauge("pending", [this] { return double(eq_.pending()); });

    eq_.setExecuteHook(
        [this](sim::Time, sim::EventId, const char *site) {
            if (site != nullptr)
                ++siteCounts_[site];
            else
                ++unlabeledEvents_;
        });

    if (opt_.sampleInterval > 0) {
        std::vector<std::string> names = opt_.sampledCounters;
        if (names.empty())
            names.push_back(obs_.name() + ".executed");
        for (auto &n : names) {
            Sampled s;
            s.name = std::move(n);
            s.last = Registry::global().value(s.name).value_or(0.0);
            s.series =
                std::make_unique<sim::RateSeries>(opt_.sampleInterval);
            sampled_.push_back(std::move(s));
        }
        samplerEvent_ = eq_.scheduleAfter(
            opt_.sampleInterval, [this] { sampleTick(); }, "obs.sampler");
    }
}

Session::~Session()
{
    finish();
}

void
Session::sampleTick()
{
    for (Sampled &s : sampled_) {
        double cur = Registry::global().value(s.name).value_or(0.0);
        s.series->record(eq_.now(), cur - s.last);
        s.last = cur;
    }
    // Reschedule only while something else is live, so a draining
    // queue actually drains (eq.run() would otherwise never return).
    if (eq_.live() > 0)
        samplerEvent_ = eq_.scheduleAfter(
            opt_.sampleInterval, [this] { sampleTick(); }, "obs.sampler");
    else
        samplerEvent_ = sim::kInvalidEvent;
}

void
Session::finish()
{
    if (finished_)
        return;
    finished_ = true;

    eq_.setExecuteHook(nullptr);
    // A still-queued sampler tick would otherwise fire on a dead (or
    // finished) session: cancel it along with the hook.
    eq_.cancel(samplerEvent_);
    samplerEvent_ = sim::kInvalidEvent;

    if (!opt_.metricsOut.empty()) {
        std::ofstream f(opt_.metricsOut);
        if (f)
            writeMetrics(f);
        else
            sim::logf(sim::LogLevel::Warn, eq_.now(),
                      "obs: cannot write metrics to %s",
                      opt_.metricsOut.c_str());
    }
    if (opt_.trace && !opt_.traceOut.empty()) {
        std::ofstream f(opt_.traceOut);
        if (f)
            writeTrace(f);
        else
            sim::logf(sim::LogLevel::Warn, eq_.now(),
                      "obs: cannot write trace to %s",
                      opt_.traceOut.c_str());
    }

    if (opt_.flightDumpAtEnd)
        FlightRecorder::global().dump("end-of-run");
    if (opt_.flightCapacity > 0)
        FlightRecorder::global().disarm();

    Attributor &at = attributor();
    at.enable(false);
    at.setClock(nullptr);

    eq_.enableProfile(false);

    FlowTracer &tr = tracer();
    tr.enable(false);
    tr.setClock(nullptr);
    Registry::global().setDetail(priorDetail_);
    Registry::global().setRetain(false);
    Registry::global().clearRetired();
}

void
Session::writeMetrics(std::ostream &os) const
{
    os << "{\"sim_time_ns\":" << eq_.now() << ",\"metrics\":";
    Registry::global().writeJson(os);

    os << ",\"event_sites\":{";
    JsonSep sep;
    for (const auto &[site, count] : siteCounts_) {
        sep.emit(os);
        jsonString(os, site);
        os << ':' << count;
    }
    if (unlabeledEvents_ > 0) {
        sep.emit(os);
        jsonString(os, "(unlabeled)");
        os << ':' << unlabeledEvents_;
    }
    os << '}';

    if (opt_.profileEventLoop) {
        // Merge pointer-keyed entries by text: distinct literals with
        // identical spelling (one per TU) must read as one site.
        std::map<std::string, sim::EventQueue::SiteProfile> merged;
        for (const auto &[site, sp] : eq_.siteProfiles()) {
            sim::EventQueue::SiteProfile &m =
                merged[site[0] != '\0' ? site : "(unlabeled)"];
            m.count += sp.count;
            m.wallNs += sp.wallNs;
            m.maxWallNs = std::max(m.maxWallNs, sp.maxWallNs);
            m.simLagNs += sp.simLagNs;
        }
        os << ",\"event_loop_profile\":{";
        sep.reset();
        for (const auto &[site, sp] : merged) {
            sep.emit(os);
            jsonString(os, site);
            os << ":{\"count\":" << sp.count
               << ",\"wall_ns\":" << sp.wallNs
               << ",\"max_wall_ns\":" << sp.maxWallNs
               << ",\"sim_lag_ns\":" << sp.simLagNs << '}';
        }
        os << '}';
    }

    os << ",\"series\":{";
    sep.reset();
    for (const Sampled &s : sampled_) {
        sep.emit(os);
        jsonString(os, s.name);
        os << ":{\"bucket_ns\":" << opt_.sampleInterval
           << ",\"counts\":[";
        JsonSep inner;
        for (std::size_t i = 0; i < s.series->buckets(); ++i) {
            inner.emit(os);
            jsonNumber(os, s.series->count(i));
        }
        os << "]}";
    }
    os << "}}";
}

void
Session::writeTrace(std::ostream &os) const
{
    tracer().writeChromeTrace(os);
}

const sim::RateSeries *
Session::series(const std::string &counter) const
{
    for (const Sampled &s : sampled_) {
        if (s.name == counter)
            return s.series.get();
    }
    return nullptr;
}

} // namespace npf::obs
