/**
 * @file
 * Minimal JSON writing helpers for the observability exporters. Not
 * a general serializer — just enough to emit metrics snapshots and
 * Chrome trace_event streams with correct escaping and number
 * formatting.
 */

#ifndef NPF_OBS_JSON_HH
#define NPF_OBS_JSON_HH

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace npf::obs {

/** Append @p s to @p os as a quoted JSON string, escaping as needed. */
inline void
jsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Emit a double as a JSON number (JSON has no NaN/Inf: emit 0). */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    // Round-trippable without drowning the file in digits.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

/** Comma separator helper: emits "," on every call but the first. */
class JsonSep
{
  public:
    void
    emit(std::ostream &os)
    {
        if (!first_)
            os << ',';
        first_ = false;
    }

    void reset() { first_ = true; }

  private:
    bool first_ = true;
};

} // namespace npf::obs

#endif // NPF_OBS_JSON_HH
