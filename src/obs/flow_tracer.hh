/**
 * @file
 * Cross-layer flow tracing with Chrome trace_event export.
 *
 * A *flow* is one logical journey through the stack — an NPF from
 * firmware interrupt to resume, an rNPF from backup-ring park to
 * merge-back, an RNR suspension from NACK to resolution. Each flow
 * gets a process-unique id; components emit spans (duration events on
 * a per-layer track) and instants tagged with that id. The exporter
 * writes trace_event JSON loadable in chrome://tracing / Perfetto:
 * spans appear on their layer's track, and each flow additionally
 * appears as an async lane so one fault's journey reads top to
 * bottom.
 *
 * Disabled by default. Every emit entry point starts with a single
 * inline `enabled()` test, so instrumented hot paths cost one
 * predictable branch when tracing is off.
 */

#ifndef NPF_OBS_FLOW_TRACER_HH
#define NPF_OBS_FLOW_TRACER_HH

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::obs {

/** Identifies one cross-layer flow; 0 = no flow. */
using FlowId = std::uint64_t;

/** Trace tracks, one per architectural layer (Chrome "tid"). */
enum class Track : int {
    Nic = 1,       ///< NIC hardware + firmware
    Driver = 2,    ///< IOprovider driver / OS software
    Iommu = 3,     ///< IOMMU page-table + IOTLB operations
    Mem = 4,       ///< host memory manager (reclaim, swap)
    Net = 5,       ///< links and fabric
    Transport = 6, ///< IB QPs / TCP connections
    App = 7,       ///< application models
    Sim = 8,       ///< event-queue / harness internals
};

class FlowTracer
{
  public:
    /** The process-wide tracer. */
    static FlowTracer &global();

    bool enabled() const { return enabled_; }
    void enable(bool on) { enabled_ = on; }

    /** Timestamps come from this queue; nullptr reads as t=0. */
    void setClock(const sim::EventQueue *eq) { clock_ = eq; }
    sim::Time now() const { return clock_ != nullptr ? clock_->now() : 0; }

    /** Start a flow at the current time. @return 0 when disabled. */
    FlowId beginFlow(const char *cat, const char *name);
    FlowId beginFlowAt(const char *cat, const char *name, sim::Time t);

    /** Finish a flow (no-op for id 0 or unknown ids). */
    void endFlow(FlowId f);
    void endFlowAt(FlowId f, sim::Time t);

    /** Duration event of @p dur starting at @p start on @p track. */
    void span(Track track, const char *cat, const char *name,
              sim::Time start, sim::Time dur, FlowId f = 0);

    /** Zero-duration marker at the current time / at @p t. */
    void instant(Track track, const char *cat, const char *name,
                 FlowId f = 0);
    void instantAt(Track track, const char *cat, const char *name,
                   sim::Time t, FlowId f = 0);

    /** Chrome counter track sample. */
    void counter(const char *name, double value);

    /**
     * Flow context for log correlation: the flow whose callback is
     * currently executing. Maintained via FlowScope; read by the log
     * annotator.
     */
    FlowId currentFlow() const { return current_; }
    void setCurrentFlow(FlowId f) { current_ = f; }

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Cap on buffered events; further emissions count as dropped. */
    void setCapacity(std::size_t cap) { capacity_ = cap; }

    /** Drop all buffered events and open-flow bookkeeping. */
    void clear();

    /** Write the buffered events as Chrome trace_event JSON. */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct Event
    {
        char ph;         ///< 'X', 'i', 'b', 'e', 'C'
        int tid;
        FlowId flow;
        const char *cat; ///< string literal
        const char *name;
        sim::Time ts;
        sim::Time dur;   ///< 'X' only
        double value;    ///< 'C' only
    };

    bool admit();
    void push(Event e);

    bool enabled_ = false;
    const sim::EventQueue *clock_ = nullptr;
    FlowId nextFlow_ = 1;
    FlowId current_ = 0;
    std::size_t capacity_ = 1u << 22;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
    struct FlowInfo
    {
        const char *cat;
        const char *name;
    };
    std::unordered_map<FlowId, FlowInfo> open_;
};

/** Process-wide tracer accessor (shorthand). */
inline FlowTracer &
tracer()
{
    return FlowTracer::global();
}

/**
 * RAII flow context: makes @p f the tracer's current flow for the
 * enclosing scope (typically one event callback), restoring the
 * previous value on exit. Log lines emitted inside the scope carry
 * the flow id when tracing is enabled.
 */
class FlowScope
{
  public:
    explicit FlowScope(FlowId f) : prev_(tracer().currentFlow())
    {
        tracer().setCurrentFlow(f);
    }
    ~FlowScope() { tracer().setCurrentFlow(prev_); }

    FlowScope(const FlowScope &) = delete;
    FlowScope &operator=(const FlowScope &) = delete;

  private:
    FlowId prev_;
};

} // namespace npf::obs

#endif // NPF_OBS_FLOW_TRACER_HH
