/**
 * @file
 * Cross-layer flow tracing with Chrome trace_event export.
 *
 * A *flow* is one logical journey through the stack — an NPF from
 * firmware interrupt to resume, an rNPF from backup-ring park to
 * merge-back, an RNR suspension from NACK to resolution. Each flow
 * gets a process-unique id; components emit spans (duration events on
 * a per-layer track) and instants tagged with that id. The exporter
 * writes trace_event JSON loadable in chrome://tracing / Perfetto:
 * spans appear on their layer's track, and each flow additionally
 * appears as an async lane so one fault's journey reads top to
 * bottom.
 *
 * Two capture modes share the same emit entry points:
 *
 *  - **Full tracing** (`enable(true)`): every event is buffered (up to
 *    a large cap) for a complete Chrome trace of the run.
 *  - **Flight recorder** (`setFlightCapacity(N)`): the last N events
 *    are kept in a preallocated ring that is overwritten in steady
 *    state and allocates nothing after arming. It stays armed for a
 *    whole run at negligible cost and is dumped *after* something
 *    interesting happens (SLO violation, fault clause, explicit
 *    request) to show what led up to it.
 *
 * Both disabled (the default) costs one predictable inline `active()`
 * branch per emit call.
 */

#ifndef NPF_OBS_FLOW_TRACER_HH
#define NPF_OBS_FLOW_TRACER_HH

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::obs {

/** Identifies one cross-layer flow; 0 = no flow. */
using FlowId = std::uint64_t;

/** Trace tracks, one per architectural layer (Chrome "tid"). */
enum class Track : int {
    Nic = 1,       ///< NIC hardware + firmware
    Driver = 2,    ///< IOprovider driver / OS software
    Iommu = 3,     ///< IOMMU page-table + IOTLB operations
    Mem = 4,       ///< host memory manager (reclaim, swap)
    Net = 5,       ///< links and fabric
    Transport = 6, ///< IB QPs / TCP connections
    App = 7,       ///< application models
    Sim = 8,       ///< event-queue / harness internals
};

class FlowTracer
{
  public:
    /** The process-wide tracer. */
    static FlowTracer &global();

    bool enabled() const { return enabled_; }
    void enable(bool on) { enabled_ = on; }

    /** True when any capture mode (full trace or flight ring) is on. */
    bool active() const { return enabled_ || flightCap_ != 0; }

    /** Timestamps come from this queue; nullptr reads as t=0. */
    void setClock(const sim::EventQueue *eq) { clock_ = eq; }
    sim::Time now() const { return clock_ != nullptr ? clock_->now() : 0; }

    /** Start a flow at the current time. @return 0 when inactive. */
    FlowId beginFlow(const char *cat, const char *name);
    FlowId beginFlowAt(const char *cat, const char *name, sim::Time t);

    /** Finish a flow (no-op for id 0 or unknown ids). */
    void endFlow(FlowId f);
    void endFlowAt(FlowId f, sim::Time t);

    /** Duration event of @p dur starting at @p start on @p track. */
    void span(Track track, const char *cat, const char *name,
              sim::Time start, sim::Time dur, FlowId f = 0);

    /** Zero-duration marker at the current time / at @p t. */
    void instant(Track track, const char *cat, const char *name,
                 FlowId f = 0);
    void instantAt(Track track, const char *cat, const char *name,
                   sim::Time t, FlowId f = 0);

    /** Chrome counter track sample. */
    void counter(const char *name, double value);

    /**
     * Flow context for log correlation: the flow whose callback is
     * currently executing. Maintained via FlowScope; read by the log
     * annotator.
     */
    FlowId currentFlow() const { return current_; }
    void setCurrentFlow(FlowId f) { current_ = f; }

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Cap on buffered events; further emissions count as dropped. */
    void setCapacity(std::size_t cap) { capacity_ = cap; }

    /**
     * Arm (cap > 0) or disarm (cap == 0) the flight ring. Arming
     * preallocates everything the ring will ever use; steady-state
     * recording performs no allocation.
     */
    void setFlightCapacity(std::size_t cap);

    std::size_t flightCapacity() const { return flightCap_; }
    /** Events currently held in the ring (<= capacity). */
    std::size_t flightSize() const { return flightCount_; }
    /** Events overwritten since arming/clear (ring wrapped this much). */
    std::uint64_t flightOverwritten() const { return flightOverwritten_; }

    /** Drop all buffered events and open-flow bookkeeping. */
    void clear();

    /** Write the buffered events as Chrome trace_event JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /** Write the flight ring (oldest first) as Chrome trace JSON. */
    void writeFlightTrace(std::ostream &os) const;

  private:
    struct Event
    {
        char ph;         ///< 'X', 'i', 'b', 'e', 'C'
        int tid;
        FlowId flow;
        const char *cat; ///< string literal
        const char *name;
        sim::Time ts;
        sim::Time dur;   ///< 'X' only
        double value;    ///< 'C' only
    };

    /** Open-flow record for flight-only mode: fixed, hash-indexed. */
    struct FlightOpen
    {
        FlowId id;
        const char *cat;
        const char *name;
    };
    static constexpr std::size_t kFlightOpenSlots = 1024; // power of 2

    bool admit();
    void push(const Event &e);
    void writeEventJson(std::ostream &os, const Event &e) const;
    void writeProlog(std::ostream &os) const;

    bool enabled_ = false;
    const sim::EventQueue *clock_ = nullptr;
    FlowId nextFlow_ = 1;
    FlowId current_ = 0;
    std::size_t capacity_ = 1u << 22;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
    struct FlowInfo
    {
        const char *cat;
        const char *name;
    };
    std::unordered_map<FlowId, FlowInfo> open_;

    // --- flight ring (all storage preallocated by setFlightCapacity) ---
    std::size_t flightCap_ = 0;
    std::size_t flightHead_ = 0;  ///< next slot to write
    std::size_t flightCount_ = 0;
    std::uint64_t flightOverwritten_ = 0;
    std::vector<Event> flight_;
    std::vector<FlightOpen> flightOpen_;
};

/** Process-wide tracer accessor (shorthand). */
inline FlowTracer &
tracer()
{
    return FlowTracer::global();
}

/**
 * RAII flow context: makes @p f the tracer's current flow for the
 * enclosing scope (typically one event callback), restoring the
 * previous value on exit. Log lines emitted inside the scope carry
 * the flow id when tracing is enabled.
 */
class FlowScope
{
  public:
    explicit FlowScope(FlowId f) : prev_(tracer().currentFlow())
    {
        tracer().setCurrentFlow(f);
    }
    ~FlowScope() { tracer().setCurrentFlow(prev_); }

    FlowScope(const FlowScope &) = delete;
    FlowScope &operator=(const FlowScope &) = delete;

  private:
    FlowId prev_;
};

} // namespace npf::obs

#endif // NPF_OBS_FLOW_TRACER_HH
