/**
 * @file
 * obs::Session — one-line observability setup for a simulation run.
 *
 *   sim::EventQueue eq;
 *   obs::Session session(eq, {.trace = true,
 *                             .traceOut = "trace.json",
 *                             .metricsOut = "metrics.json"});
 *   ... build models, run the simulation ...
 *   session.finish();   // or let the destructor do it
 *
 * While active, a session:
 *  - binds the global FlowTracer's clock to @p eq and (optionally)
 *    enables tracing;
 *  - raises the registry detail flag so components record optional
 *    latency histograms;
 *  - exports the EventQueue's own stats as `sim.eqN.*` gauges and
 *    counts executed events per scheduling site;
 *  - optionally runs a periodic sampler that turns selected counters
 *    into sim::RateSeries (events/s over time).
 *
 * finish() writes the metrics snapshot and Chrome trace to the
 * configured paths and restores all global state. Create the session
 * *after* the event queue so destruction order keeps the registered
 * gauges valid.
 */

#ifndef NPF_OBS_SESSION_HH
#define NPF_OBS_SESSION_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/flow_tracer.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/series.hh"

namespace npf::obs {

struct SessionOptions
{
    bool trace = false;        ///< enable the FlowTracer
    std::string traceOut;      ///< Chrome trace path ("" = don't write)
    std::string metricsOut;    ///< metrics JSON path ("" = don't write)

    /** Periodic sampling interval; 0 disables the sampler. The
     *  sampler stops rescheduling once no other live events remain,
     *  so it never keeps a draining queue alive. */
    sim::Time sampleInterval = 0;

    /** Counter/gauge names to sample into RateSeries. When empty,
     *  the session samples its own `sim.eqN.executed` counter. */
    std::vector<std::string> sampledCounters;

    /** Flight recorder: ring capacity in events (0 = off). */
    std::size_t flightCapacity = 0;
    /** Dump-file stem; dumps are numbered (flight.000.json, ...). */
    std::string flightDumpPath = "flight.json";
    /** Dump the ring whenever an SloMonitor window violates. */
    bool flightDumpOnSlo = false;
    /** Dump whatever the ring holds when the session finishes. */
    bool flightDumpAtEnd = false;

    /** Enable causal latency attribution (obs::Attributor). */
    bool attribution = false;

    /** Enable the event-loop profiler (per-site wall/sim time). */
    bool profileEventLoop = false;
};

class Session
{
  public:
    Session(sim::EventQueue &eq, SessionOptions opt = {});
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Write configured outputs and restore global observability
     * state (tracer disabled, detail flag lowered, hooks removed).
     * Idempotent; also invoked by the destructor.
     */
    void finish();

    /** Serialize the full metrics snapshot (registry + eq sites +
     *  sampled series) to @p os. */
    void writeMetrics(std::ostream &os) const;

    /** Serialize the buffered trace to @p os. */
    void writeTrace(std::ostream &os) const;

    /** Sampled series for @p counter name; nullptr if not sampled. */
    const sim::RateSeries *series(const std::string &counter) const;

    sim::EventQueue &queue() { return eq_; }
    const SessionOptions &options() const { return opt_; }

  private:
    struct Sampled
    {
        std::string name;
        double last = 0.0;
        std::unique_ptr<sim::RateSeries> series;
    };

    void sampleTick();

    sim::EventQueue &eq_;
    SessionOptions opt_;
    bool finished_ = false;
    bool priorDetail_ = false;
    std::vector<Sampled> sampled_;
    /** Pending sampler event; cancelled by finish() so a destroyed
     *  session can never be called back by the queue. */
    sim::EventId samplerEvent_ = sim::kInvalidEvent;
    /** Executed-event counts per schedule() site label. */
    std::map<std::string, std::uint64_t> siteCounts_;
    std::uint64_t unlabeledEvents_ = 0;
    Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::obs

#endif // NPF_OBS_SESSION_HH
