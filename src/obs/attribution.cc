#include "obs/attribution.hh"

namespace npf::obs {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Backlog: return "backlog";
      case Phase::Queue: return "queue";
      case Phase::Server: return "server";
      case Phase::NpfDriver: return "npf_driver";
      case Phase::RnrBackoff: return "rnr_backoff";
      case Phase::Retransmit: return "retransmit";
    }
    return "?";
}

Attributor &
Attributor::global()
{
    static thread_local Attributor a;
    return a;
}

void
Attributor::enable(bool on)
{
    enabled_ = on;
    reset();
}

void
Attributor::reset()
{
    lanes_.clear();
    if (enabled_)
        lanes_.push_back(Lane{"root", -1, {}, {}, 0, 0, 0});
}

int
Attributor::openLane(const char *name, int parent)
{
    if (!enabled_)
        return -1;
    Lane l;
    l.name = name;
    // Lanes parented at the root stay root-parented (-1): the root is
    // folded into every snapshot anyway, so recording it as an explicit
    // parent would double-count it.
    l.parent = parent > 0 ? parent : -1;
    lanes_.push_back(l);
    return static_cast<int>(lanes_.size()) - 1;
}

void
Attributor::accrue(Lane &l)
{
    sim::Time now = eq_ ? eq_->now() : 0;
    if (l.depth > 0 && l.depth <= kMaxDepth)
        l.acc[static_cast<unsigned>(l.stack[l.depth - 1])] +=
            static_cast<std::int64_t>(now - l.topStart);
    l.topStart = now;
}

void
Attributor::blockBeginSlow(int lane, Phase p)
{
    if (static_cast<std::size_t>(lane) >= lanes_.size())
        return;
    Lane &l = lanes_[static_cast<std::size_t>(lane)];
    accrue(l);
    if (l.depth >= kMaxDepth) {
        ++l.overflowed;
        return;
    }
    l.stack[l.depth++] = p;
}

void
Attributor::blockEndSlow(int lane, Phase p)
{
    if (static_cast<std::size_t>(lane) >= lanes_.size())
        return;
    Lane &l = lanes_[static_cast<std::size_t>(lane)];
    accrue(l);
    // Close the most recent open block of this phase; a miss (overflow
    // dropped the begin, or a double end) is a tolerated no-op.
    for (unsigned i = l.depth; i-- > 0;) {
        if (l.stack[i] == p) {
            for (unsigned j = i + 1; j < l.depth; ++j)
                l.stack[j - 1] = l.stack[j];
            --l.depth;
            return;
        }
    }
}

void
Attributor::chargeSlow(int lane, Phase p, sim::Time dur)
{
    if (static_cast<std::size_t>(lane) >= lanes_.size())
        return;
    lanes_[static_cast<std::size_t>(lane)]
        .acc[static_cast<unsigned>(p)] += static_cast<std::int64_t>(dur);
}

void
Attributor::fold(const Lane &l, PhaseBreakdown &out) const
{
    for (unsigned i = 0; i < kPhaseCount; ++i)
        out.ns[i] += l.acc[i];
    if (l.depth > 0) {
        sim::Time now = eq_ ? eq_->now() : 0;
        out.ns[static_cast<unsigned>(l.stack[l.depth - 1])] +=
            static_cast<std::int64_t>(now - l.topStart);
    }
}

void
Attributor::snapshot(int lane, PhaseBreakdown &out) const
{
    out = PhaseBreakdown{};
    if (!enabled_ || lane < 0 ||
        static_cast<std::size_t>(lane) >= lanes_.size())
        return;
    const Lane &l = lanes_[static_cast<std::size_t>(lane)];
    fold(l, out);
    if (l.parent > 0 &&
        static_cast<std::size_t>(l.parent) < lanes_.size())
        fold(lanes_[static_cast<std::size_t>(l.parent)], out);
    if (lane != 0)
        fold(lanes_[0], out);
}

} // namespace npf::obs
