#include "obs/flight.hh"

#include <cstdio>
#include <fstream>

#include "obs/flow_tracer.hh"
#include "sim/log.hh"

namespace npf::obs {

FlightRecorder &
FlightRecorder::global()
{
    static thread_local FlightRecorder r;
    return r;
}

void
FlightRecorder::arm(FlightOptions opt)
{
    opt_ = std::move(opt);
    dumps_ = 0;
    armed_ = opt_.capacity != 0;
    tracer().setFlightCapacity(armed_ ? opt_.capacity : 0);
}

void
FlightRecorder::disarm()
{
    armed_ = false;
    tracer().setFlightCapacity(0);
}

bool
FlightRecorder::dump(const char *reason)
{
    if (!armed_)
        return false;
    if (dumps_ >= opt_.maxDumps) {
        sim::logf(sim::LogLevel::Warn, tracer().now(),
                  "flight: dump budget (%u) exhausted, skipping (%s)",
                  opt_.maxDumps, reason);
        return false;
    }
    std::string path = indexedPath(opt_.dumpPath, dumps_);
    std::ofstream f(path);
    if (!f) {
        sim::logf(sim::LogLevel::Warn, tracer().now(),
                  "flight: cannot write %s", path.c_str());
        return false;
    }
    tracer().writeFlightTrace(f);
    ++dumps_;
    sim::logf(sim::LogLevel::Info, tracer().now(),
              "flight: dumped %zu events to %s (%s)",
              tracer().flightSize(), path.c_str(), reason);
    return true;
}

void
FlightRecorder::onSloViolation()
{
    if (dumpOnSlo())
        dump("slo-violation");
}

std::string
indexedPath(const std::string &path, unsigned n)
{
    char idx[8];
    std::snprintf(idx, sizeof(idx), "%03u", n);
    std::size_t dot = path.find_last_of('.');
    std::size_t slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + '.' + idx;
    return path.substr(0, dot) + '.' + idx + path.substr(dot);
}

} // namespace npf::obs
