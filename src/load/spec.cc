#include "load/spec.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

namespace npf::load {

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
    return false;
}

/** "name:k=v,k=v" -> (name, {k: v}). */
bool
parseClause(const std::string &text, std::string *name,
            std::map<std::string, std::string> *kv, std::string *error)
{
    std::size_t colon = text.find(':');
    *name = trim(text.substr(0, colon));
    if (name->empty())
        return fail(error, "empty clause in '" + text + "'");
    if (colon == std::string::npos)
        return true;
    for (const std::string &item : split(text.substr(colon + 1), ',')) {
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail(error, "expected key=value, got '" + item + "'");
        (*kv)[trim(item.substr(0, eq))] = trim(item.substr(eq + 1));
    }
    return true;
}

bool
parseDouble(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

bool
parseCount(const std::string &s, std::uint64_t *out)
{
    double v = 0;
    if (!parseRate(s, &v) || v < 0)
        return false;
    *out = static_cast<std::uint64_t>(v + 0.5);
    return true;
}

using Kv = std::map<std::string, std::string>;

bool
getRateArg(const Kv &kv, const std::string &key, double *out, bool required,
           std::string *error)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return required ? fail(error, "missing '" + key + "'") : true;
    if (!parseRate(it->second, out) || *out < 0)
        return fail(error, "bad rate '" + it->second + "' for " + key);
    return true;
}

bool
getDurationArg(const Kv &kv, const std::string &key, sim::Time *out,
               bool required, std::string *error)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return required ? fail(error, "missing '" + key + "'") : true;
    if (!parseDuration(it->second, out))
        return fail(error, "bad duration '" + it->second + "' for " + key);
    return true;
}

bool
getDoubleArg(const Kv &kv, const std::string &key, double *out,
             std::string *error)
{
    auto it = kv.find(key);
    if (it == kv.end())
        return true;
    if (!parseDouble(it->second, out))
        return fail(error, "bad number '" + it->second + "' for " + key);
    return true;
}

bool
parseArrival(const std::string &text, ArrivalSpec *out, std::string *error)
{
    std::string name;
    Kv kv;
    if (!parseClause(text, &name, &kv, error))
        return false;

    ArrivalSpec a;
    if (name == "fixed" || name == "poisson") {
        a.kind = name == "fixed" ? ArrivalSpec::Kind::Fixed
                                 : ArrivalSpec::Kind::Poisson;
        if (!getRateArg(kv, "rate", &a.ratePerSec, true, error))
            return false;
        if (a.ratePerSec <= 0)
            return fail(error, "arrival rate must be positive");
    } else if (name == "onoff") {
        a.kind = ArrivalSpec::Kind::OnOff;
        if (!getRateArg(kv, "rate", &a.ratePerSec, true, error) ||
            !getRateArg(kv, "off_rate", &a.offRatePerSec, false, error) ||
            !getDurationArg(kv, "on", &a.onMean, true, error) ||
            !getDurationArg(kv, "off", &a.offMean, true, error))
            return false;
        if (a.ratePerSec <= 0)
            return fail(error, "arrival rate must be positive");
        if (a.onMean == 0 || a.offMean == 0)
            return fail(error, "on/off dwells must be positive");
        auto it = kv.find("dwell");
        if (it != kv.end()) {
            if (it->second != "exp" && it->second != "fixed")
                return fail(error, "dwell must be exp or fixed");
            a.expDwell = it->second == "exp";
        }
    } else if (name == "closed") {
        a.kind = ArrivalSpec::Kind::Closed;
        if (!getDurationArg(kv, "think", &a.thinkMean, false, error))
            return false;
        auto it = kv.find("think_dist");
        if (it != kv.end()) {
            if (it->second != "exp" && it->second != "fixed")
                return fail(error, "think_dist must be exp or fixed");
            a.expThink = it->second == "exp";
        }
    } else {
        return fail(error, "unknown arrival process '" + name + "'");
    }
    *out = a;
    return true;
}

bool
parseKeys(const std::string &text, KeySpec *out, std::string *error)
{
    std::string name;
    Kv kv;
    if (!parseClause(text, &name, &kv, error))
        return false;

    KeySpec k;
    if (name == "uniform")
        k.kind = KeySpec::Kind::Uniform;
    else if (name == "zipf")
        k.kind = KeySpec::Kind::Zipf;
    else if (name == "hotset")
        k.kind = KeySpec::Kind::HotSet;
    else if (name == "scan")
        k.kind = KeySpec::Kind::Scan;
    else
        return fail(error, "unknown key model '" + name + "'");

    auto n = kv.find("n");
    if (n == kv.end())
        return fail(error, "key model needs n=<keys>");
    if (!parseCount(n->second, &k.keys) || k.keys == 0)
        return fail(error, "bad keyspace size '" + n->second + "'");

    if (!getDoubleArg(kv, "theta", &k.theta, error) ||
        !getDoubleArg(kv, "hot", &k.hotFraction, error) ||
        !getDoubleArg(kv, "traffic", &k.hotTraffic, error) ||
        !getDurationArg(kv, "shift_every", &k.shiftEvery, false, error))
        return false;
    auto sb = kv.find("shift_by");
    if (sb != kv.end() && !parseCount(sb->second, &k.shiftBy))
        return fail(error, "bad shift_by '" + sb->second + "'");
    if (k.theta < 0 || k.theta >= 1.0)
        return fail(error, "zipf theta must be in [0, 1)");
    if (k.hotFraction <= 0 || k.hotFraction > 1.0 || k.hotTraffic < 0 ||
        k.hotTraffic > 1.0)
        return fail(error, "hotset hot/traffic must be fractions");
    *out = k;
    return true;
}

} // namespace

bool
parseRate(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        return false;
    std::string suffix = trim(std::string(end));
    if (suffix == "k" || suffix == "K")
        v *= 1e3;
    else if (suffix == "m" || suffix == "M")
        v *= 1e6;
    else if (suffix == "g" || suffix == "G")
        v *= 1e9;
    else if (!suffix.empty())
        return false;
    *out = v;
    return true;
}

bool
parseDuration(const std::string &text, sim::Time *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0)
        return false;
    std::string suffix = trim(std::string(end));
    double scale = 1.0; // bare numbers are nanoseconds
    if (suffix == "us")
        scale = double(sim::kMicrosecond);
    else if (suffix == "ms")
        scale = double(sim::kMillisecond);
    else if (suffix == "s")
        scale = double(sim::kSecond);
    else if (suffix == "ns")
        scale = 1.0;
    else if (!suffix.empty())
        return false;
    *out = static_cast<sim::Time>(v * scale + 0.5);
    return true;
}

std::optional<WorkloadSpec>
WorkloadSpec::parse(const std::string &text, std::string *error)
{
    WorkloadSpec w;
    w.spec = text;
    for (const std::string &rawPart : split(text, ';')) {
        std::string part = trim(rawPart);
        if (part.empty())
            continue;
        std::size_t eq = part.find('=');
        if (eq == std::string::npos) {
            fail(error, "expected part=value, got '" + part + "'");
            return std::nullopt;
        }
        std::string key = trim(part.substr(0, eq));
        std::string val = trim(part.substr(eq + 1));
        if (key == "arrival") {
            if (!parseArrival(val, &w.arrival, error))
                return std::nullopt;
        } else if (key == "keys") {
            if (!parseKeys(val, &w.keys, error))
                return std::nullopt;
        } else if (key == "get") {
            if (!parseDouble(val, &w.getRatio) || w.getRatio < 0 ||
                w.getRatio > 1) {
                fail(error, "bad get ratio '" + val + "'");
                return std::nullopt;
            }
        } else if (key == "req") {
            std::uint64_t bytes = 0;
            if (!parseCount(val, &bytes) || bytes == 0) {
                fail(error, "bad request size '" + val + "'");
                return std::nullopt;
            }
            w.requestBytes = bytes;
        } else {
            fail(error, "unknown workload part '" + key + "'");
            return std::nullopt;
        }
    }
    return w;
}

} // namespace npf::load
