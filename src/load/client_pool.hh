/**
 * @file
 * Flyweight client pool: multiplexes up to millions of logical
 * clients over a small, bounded set of transport endpoints.
 *
 * Scaling design (the ROADMAP's "heavy traffic from millions of
 * users" requirement):
 *
 *  - per-client state lives in one flat std::vector<Client> (a few
 *    dozen bytes each, no per-client heap objects or closures);
 *  - the pool schedules O(1) simulator events regardless of client
 *    count: one arrival event (open loop), one calendar-wheel event
 *    (think times and retry backoffs), one timeout-sweep event.
 *    Completions ride the transports' own callbacks;
 *  - in-flight requests are matched FIFO per endpoint (transports
 *    are ordered channels), so no per-request maps exist — just a
 *    bounded deque per endpoint.
 *
 * Open-loop modes draw their arrival schedule up front from a seeded
 * process (see arrival.hh); when every logical client is busy the
 * surplus arrivals queue with their *intended* times so the recorder
 * can measure coordinated-omission-free latency. Closed-loop mode
 * reproduces the legacy memaslap generator draw-for-draw (see
 * app::Memaslap, now a preset over this pool).
 *
 * Client-side fault handling: an optional request timeout abandons
 * the oldest in-flight requests and retries them with exponential
 * backoff (load.pool*.timeouts / load.pool*.retries counters), so
 * fault plans that drop traffic surface as tail latency and retry
 * load rather than a wedged generator.
 */

#ifndef NPF_LOAD_CLIENT_POOL_HH
#define NPF_LOAD_CLIENT_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "load/arrival.hh"
#include "load/popularity.hh"
#include "load/recorder.hh"
#include "load/spec.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/ring_deque.hh"
#include "sim/series.hh"
#include "sim/time.hh"

namespace npf::load {

/**
 * One bounded transport endpoint (a TCP RpcChannel, an IB QP, ...)
 * the pool issues requests on. Adapters translate issue() onto the
 * wire and call ClientPool::complete() when the response arrives;
 * responses on one endpoint must arrive in issue order (true for RC
 * QPs and in-order message streams).
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Put one request on the wire. @p serial must round-trip to
     * ClientPool::complete() unchanged; it is narrow enough
     * (kSerialBits) to ride spare cookie bits.
     */
    virtual void issue(std::uint32_t serial, std::uint64_t key,
                       bool is_set, std::size_t bytes) = 0;
};

/** Pool parameters beyond the workload itself. */
struct PoolConfig
{
    std::uint64_t clients = 1; ///< logical clients (flyweights)
    WorkloadSpec workload;
    std::uint64_t seed = 99; ///< request stream; others derived

    sim::Time timeout = 0;  ///< request timeout (0 = never)
    unsigned maxRetries = 0; ///< resends after the first timeout
    sim::Time backoffBase = 100 * sim::kMicrosecond;
    sim::Time backoffCap = 10 * sim::kMillisecond;
    sim::Time sweepInterval = 0; ///< timeout scan period (0: timeout/4)

    sim::Time calendarBucket = 64 * sim::kMicrosecond;
    std::size_t calendarSlots = 4096;

    /** Open loop: max queued arrivals awaiting a free client, as a
     *  multiple of the client count; beyond it arrivals are shed
     *  (counted, so overload is visible, not silent). */
    unsigned backlogFactor = 4;
};

class ClientPool
{
  public:
    static constexpr unsigned kSerialBits = 14;
    static constexpr std::uint32_t kSerialMask = (1u << kSerialBits) - 1;

    ClientPool(sim::EventQueue &eq, PoolConfig cfg);
    ~ClientPool();

    ClientPool(const ClientPool &) = delete;
    ClientPool &operator=(const ClientPool &) = delete;

    /**
     * Attach a transport endpoint (before start()). @return index.
     * @p attrLane optionally names the obs::Attributor lane the
     * endpoint's requests travel through (-1 = no attribution); when
     * set, the pool snapshots the lane at send and diffs at complete
     * to build per-request phase breakdowns for the recorder.
     */
    unsigned addEndpoint(Transport &t, int attrLane = -1);

    /**
     * Attach a latency recorder; registers "get"/"set" classes.
     * Call before start().
     */
    void setRecorder(Recorder &rec);

    /** Begin generating load. */
    void start();

    /** Cancel all pending generator events. */
    void stop();

    /** Transport adapters: response with @p serial arrived on
     *  endpoint @p ep; @p hit is the GET-hit flag. */
    void complete(unsigned ep, std::uint32_t serial, bool hit);

    /** Per-transaction rate series (throughput-over-time figures). */
    void
    attachRateSeries(sim::RateSeries *tps, sim::RateSeries *hps)
    {
        tpsSeries_ = tps;
        hpsSeries_ = hps;
    }

    /** The key model, for scheduled working-set changes. */
    KeyModel &keyModel() { return *keys_; }

    std::uint64_t completions() const { return completions_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t retries() const { return retries_; }
    std::uint64_t giveups() const { return giveups_; }
    std::uint64_t lateResponses() const { return late_; }
    std::uint64_t shedArrivals() const { return shed_; }
    std::uint64_t clients() const { return cfg_.clients; }
    std::size_t endpoints() const { return eps_.size(); }

    /** Requests currently on the wire (all endpoints). */
    std::size_t inFlight() const;

    /** Reset transaction counters (e.g. after warm-up). */
    void resetCounters();

  private:
    /** Flyweight per-client state (flat array entry). */
    struct Client
    {
        enum class State : std::uint8_t {
            Idle,     ///< open loop: waiting for an arrival
            InFlight, ///< request on the wire
            Thinking, ///< closed loop: waiting out think time
            Backoff,  ///< timed out: waiting to resend
        };

        std::uint64_t key = 0;     ///< pending request key
        sim::Time intended = 0;    ///< schedule position (CO anchor)
        sim::Time wakeAt = 0;      ///< calendar re-check guard
        std::uint8_t attempt = 0;  ///< resend count for this request
        bool isSet = false;
        State state = State::Idle;
    };

    /** One in-flight request on an endpoint (FIFO). */
    struct InFlight
    {
        std::uint32_t serial = 0;
        std::uint32_t client = 0;
        sim::Time intended = 0;
        sim::Time sent = 0;
        /** Attribution-lane snapshot at send (lanes enabled only). */
        obs::PhaseBreakdown snap;
    };

    struct Endpoint
    {
        Transport *t = nullptr;
        sim::RingDeque<InFlight> inflight; ///< FIFO-matched window
        std::uint32_t nextSerial = 0;
        int attrLane = -1;
    };

    unsigned endpointFor(std::uint32_t c);
    void issueNew(std::uint32_t c, sim::Time intended);
    void send(std::uint32_t c);
    void finishClient(std::uint32_t c);
    void onArrival();
    void armArrival();
    void calendarInsert(sim::Time when, std::uint32_t c);
    void calendarFire();
    void armCalendar();
    void sweep();
    sim::Time backoffDelay(unsigned attempt) const;

    sim::EventQueue &eq_;
    PoolConfig cfg_;
    sim::Rng rng_; ///< request (key, op) stream
    ArrivalProcess arrival_;
    sim::Rng thinkRng_; ///< think times: own stream, never perturbs rng_
    std::unique_ptr<KeyModel> keys_;

    std::vector<Client> clients_;   ///< flat flyweight state
    std::vector<Endpoint> eps_;
    unsigned rrNext_ = 0;           ///< open-loop endpoint round-robin

    // Open loop: free clients + surplus arrivals (intended times).
    sim::RingDeque<std::uint32_t> idle_;
    sim::RingDeque<sim::Time> backlog_;

    // Calendar wheel: slots of client indices, one armed event.
    std::vector<std::vector<std::uint32_t>> wheel_;
    std::vector<std::uint32_t> dueScratch_; ///< calendarFire swap buffer
    std::size_t wheelHead_ = 0;
    sim::Time wheelTime_ = 0;   ///< start time of wheel_[wheelHead_]
    std::size_t wheelCount_ = 0;
    sim::EventId wheelEvent_ = sim::kInvalidEvent;

    sim::EventId arrivalEvent_ = sim::kInvalidEvent;
    sim::EventId sweepEvent_ = sim::kInvalidEvent;
    bool started_ = false;

    Recorder *rec_ = nullptr;
    Recorder::ClassId getClass_ = 0;
    Recorder::ClassId setClass_ = 0;
    sim::RateSeries *tpsSeries_ = nullptr;
    sim::RateSeries *hpsSeries_ = nullptr;

    std::uint64_t issued_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t giveups_ = 0;
    std::uint64_t late_ = 0;
    std::uint64_t shed_ = 0;

    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::load

#endif // NPF_LOAD_CLIENT_POOL_HH
