/**
 * @file
 * Key-popularity models: which keys the generated requests touch.
 *
 * Models draw from the *caller's* Rng (the pool's request stream)
 * rather than owning one, so a workload's (key, op) draw sequence is
 * a single reproducible stream — and the closed-loop uniform preset
 * reproduces the legacy memaslap generator draw-for-draw.
 */

#ifndef NPF_LOAD_POPULARITY_HH
#define NPF_LOAD_POPULARITY_HH

#include <cstdint>
#include <memory>

#include "load/spec.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace npf::load {

/** Abstract key chooser. */
class KeyModel
{
  public:
    virtual ~KeyModel() = default;

    /** Construct the model described by @p spec. */
    static std::unique_ptr<KeyModel> make(const KeySpec &spec);

    /**
     * Draw the next key. @p now lets time-scheduled models (hot-set
     * rotation) advance; stateless models ignore it.
     */
    virtual std::uint64_t next(sim::Rng &rng, sim::Time now) = 0;

    /** Keyspace size. */
    virtual std::uint64_t keys() const = 0;

    /**
     * Resize the keyspace mid-run (Fig. 7's working-set switch).
     * Models with precomputed state rebuild it.
     */
    virtual void setKeys(std::uint64_t n) = 0;
};

/** Uniform over [0, n). One uniformInt draw per key. */
class UniformKeys final : public KeyModel
{
  public:
    explicit UniformKeys(std::uint64_t n) : n_(n) {}

    std::uint64_t
    next(sim::Rng &rng, sim::Time) override
    {
        return rng.uniformInt(0, n_ - 1);
    }

    std::uint64_t keys() const override { return n_; }
    void setKeys(std::uint64_t n) override { n_ = n; }

  private:
    std::uint64_t n_;
};

/**
 * Zipf(theta) popularity over [0, n), rank 0 hottest — the standard
 * bounded-zipfian inversion (Gray et al., as popularised by YCSB).
 * One uniform01 draw per key; zeta(n) is precomputed in O(n).
 */
class ZipfKeys final : public KeyModel
{
  public:
    ZipfKeys(std::uint64_t n, double theta);

    std::uint64_t next(sim::Rng &rng, sim::Time) override;
    std::uint64_t keys() const override { return n_; }
    void setKeys(std::uint64_t n) override;

  private:
    void precompute();

    std::uint64_t n_;
    double theta_;
    double zetan_ = 0, zeta2_ = 0, alpha_ = 0, eta_ = 0;
};

/**
 * Hot-set popularity: a contiguous `hot` fraction of the keyspace
 * receives a `traffic` fraction of requests; the hot window can
 * rotate on a fixed schedule (generalising Fig. 7's working-set
 * switch). Draws: one bernoulli + one uniformInt per key.
 */
class HotSetKeys final : public KeyModel
{
  public:
    HotSetKeys(const KeySpec &spec)
        : n_(spec.keys), hotFraction_(spec.hotFraction),
          hotTraffic_(spec.hotTraffic), shiftEvery_(spec.shiftEvery),
          shiftBy_(spec.shiftBy), nextShift_(spec.shiftEvery)
    {
    }

    std::uint64_t next(sim::Rng &rng, sim::Time now) override;
    std::uint64_t keys() const override { return n_; }
    void setKeys(std::uint64_t n) override { n_ = n; }

    /** Start of the current hot window (for tests/reports). */
    std::uint64_t hotStart() const { return hotStart_; }
    std::uint64_t hotSize() const;

  private:
    std::uint64_t n_;
    double hotFraction_;
    double hotTraffic_;
    sim::Time shiftEvery_;
    std::uint64_t shiftBy_;
    sim::Time nextShift_;
    std::uint64_t hotStart_ = 0;
};

/** Sequential wrap-around scan. No draws. */
class ScanKeys final : public KeyModel
{
  public:
    explicit ScanKeys(std::uint64_t n) : n_(n) {}

    std::uint64_t
    next(sim::Rng &, sim::Time) override
    {
        std::uint64_t k = cursor_;
        cursor_ = (cursor_ + 1) % n_;
        return k;
    }

    std::uint64_t keys() const override { return n_; }

    void
    setKeys(std::uint64_t n) override
    {
        n_ = n;
        cursor_ %= n_;
    }

  private:
    std::uint64_t n_;
    std::uint64_t cursor_ = 0;
};

} // namespace npf::load

#endif // NPF_LOAD_POPULARITY_HH
