/**
 * @file
 * Arrival processes: the open-loop side of workload generation.
 *
 * An ArrivalProcess walks a private clock forward and hands out
 * successive absolute arrival times, never looking at simulation
 * state — that is what makes the offered load *open loop*: the
 * schedule is fixed up front by the seed, and a slow server cannot
 * push arrivals back (the client pool queues them instead, and the
 * latency recorder measures from these intended times, which is the
 * coordinated-omission-free measurement).
 *
 * Draws come from a private Rng (sim::mixSeed stream), so arrival
 * schedules are bit-reproducible regardless of what the rest of the
 * simulation does.
 */

#ifndef NPF_LOAD_ARRIVAL_HH
#define NPF_LOAD_ARRIVAL_HH

#include "load/spec.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace npf::load {

/**
 * Generator of absolute arrival times for one aggregate open-loop
 * stream. Closed-loop specs have no arrival process (clients self-
 * pace); constructing one for them yields no arrivals.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, std::uint64_t seed)
        : spec_(spec), rng_(seed)
    {
        if (spec_.kind == ArrivalSpec::Kind::OnOff)
            stateEndNs_ = dwellNs(true);
    }

    /**
     * Absolute time of the next arrival (monotonic across calls).
     * For on-off, the modulating chain advances as needed; an
     * off-state rate of zero skips straight to the next on period.
     */
    sim::Time
    next()
    {
        switch (spec_.kind) {
          case ArrivalSpec::Kind::Fixed:
            cursorNs_ += 1e9 / spec_.ratePerSec;
            break;
          case ArrivalSpec::Kind::Poisson:
            cursorNs_ += rng_.exponential(1e9 / spec_.ratePerSec);
            break;
          case ArrivalSpec::Kind::OnOff:
            stepModulated();
            break;
          case ArrivalSpec::Kind::Closed:
            // No open-loop schedule; effectively "never".
            return ~sim::Time(0);
        }
        return static_cast<sim::Time>(cursorNs_);
    }

  private:
    double
    dwellNs(bool on)
    {
        double mean = double(on ? spec_.onMean : spec_.offMean);
        return spec_.expDwell ? rng_.exponential(mean) : mean;
    }

    void
    stepModulated()
    {
        for (;;) {
            double rate = on_ ? spec_.ratePerSec : spec_.offRatePerSec;
            if (rate > 0) {
                double gap = rng_.exponential(1e9 / rate);
                if (cursorNs_ + gap < stateEndNs_) {
                    cursorNs_ += gap;
                    return;
                }
            }
            // No arrival before the state flips (memoryless, so the
            // residual gap is redrawn in the next state).
            cursorNs_ = stateEndNs_;
            on_ = !on_;
            stateEndNs_ += dwellNs(on_);
        }
    }

    ArrivalSpec spec_;
    sim::Rng rng_;
    double cursorNs_ = 0.0;   ///< private clock, ns (double: no drift)
    bool on_ = true;          ///< on-off modulating state
    double stateEndNs_ = 0.0; ///< when the current state ends
};

} // namespace npf::load

#endif // NPF_LOAD_ARRIVAL_HH
