/**
 * @file
 * Workload specification grammar for the load subsystem.
 *
 * A WorkloadSpec names an arrival process, a key-popularity model
 * and a request mix, and is parsed from a compact one-line grammar
 * (documented in docs/WORKLOADS.md):
 *
 *   workload := part (';' part)*
 *   part     := 'arrival=' arrival | 'keys=' keys
 *             | 'get=' ratio | 'req=' bytes
 *   arrival  := 'fixed:rate=R' | 'poisson:rate=R'
 *             | 'onoff:rate=R,off_rate=R,on=D,off=D[,dwell=exp|fixed]'
 *             | 'closed[:think=D][,think_dist=exp|fixed]'
 *   keys     := 'uniform:n=N' | 'zipf:n=N[,theta=T]' | 'scan:n=N'
 *             | 'hotset:n=N[,hot=F][,traffic=P]
 *                       [,shift_every=D][,shift_by=K]'
 *
 * Rates accept k/m/g suffixes ("120k" = 120000/s); durations accept
 * ns/us/ms/s suffixes ("50us"). e.g.
 *
 *   "arrival=poisson:rate=120k;keys=zipf:n=1m,theta=0.99;get=0.95"
 */

#ifndef NPF_LOAD_SPEC_HH
#define NPF_LOAD_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.hh"

namespace npf::load {

/** How request arrivals are paced. */
struct ArrivalSpec
{
    enum class Kind {
        Fixed,   ///< open loop: constant inter-arrival 1/rate
        Poisson, ///< open loop: exponential inter-arrivals
        OnOff,   ///< open loop: two-state modulated (MMPP/on-off)
        Closed,  ///< closed loop: issue on completion + think time
    };

    Kind kind = Kind::Closed;
    double ratePerSec = 0.0;    ///< aggregate rate (open loop; on state)
    double offRatePerSec = 0.0; ///< OnOff: rate in the off state
    sim::Time onMean = 0;       ///< OnOff: mean on-state dwell
    sim::Time offMean = 0;      ///< OnOff: mean off-state dwell
    bool expDwell = true;       ///< OnOff: exponential vs fixed dwell
    sim::Time thinkMean = 0;    ///< Closed: think time after response
    bool expThink = false;      ///< Closed: exponential vs fixed think

    /** Open-loop processes pace themselves; closed loop reacts. */
    bool open() const { return kind != Kind::Closed; }
};

/** Which keys requests touch. */
struct KeySpec
{
    enum class Kind {
        Uniform, ///< uniform over [0, keys)
        Zipf,    ///< Zipf(theta) popularity, rank 0 hottest
        HotSet,  ///< hot fraction takes most traffic; can rotate
        Scan,    ///< sequential wrap-around sweep
    };

    Kind kind = Kind::Uniform;
    std::uint64_t keys = 1000;  ///< keyspace size
    double theta = 0.99;        ///< Zipf: skew (0 = uniform-ish)
    double hotFraction = 0.1;   ///< HotSet: fraction of keyspace hot
    double hotTraffic = 0.9;    ///< HotSet: traffic hitting the hot set
    sim::Time shiftEvery = 0;   ///< HotSet: rotation period (0 = static)
    std::uint64_t shiftBy = 0;  ///< HotSet: rotation step (0 = hot size)
};

/** A complete workload description. */
struct WorkloadSpec
{
    ArrivalSpec arrival;
    KeySpec keys;
    double getRatio = 0.9;          ///< GET fraction (rest are SETs)
    std::size_t requestBytes = 64;  ///< request wire size

    /**
     * Parse @p text (grammar above). Omitted parts keep their
     * defaults. Returns nullopt on a malformed spec and, when
     * @p error is non-null, stores a diagnostic.
     */
    static std::optional<WorkloadSpec>
    parse(const std::string &text, std::string *error = nullptr);

    std::string spec; ///< original text, for echoing in bench output
};

/**
 * Parse a rate with an optional k/m/g multiplier ("186k" -> 186000).
 * @return false on garbage (and leaves @p out untouched).
 */
bool parseRate(const std::string &text, double *out);

/**
 * Parse a duration with an ns/us/ms/s suffix (bare numbers are
 * nanoseconds). @return false on garbage.
 */
bool parseDuration(const std::string &text, sim::Time *out);

} // namespace npf::load

#endif // NPF_LOAD_SPEC_HH
