#include "load/recorder.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/flight.hh"
#include "obs/flow_tracer.hh"

namespace npf::load {

Recorder::Recorder(RecorderConfig cfg) : cfg_(cfg)
{
    obs_.init("load.rec");
}

Recorder::ClassId
Recorder::addClass(const std::string &name)
{
    perClass_.emplace_back();
    PerClass &pc = perClass_.back();
    pc.name = name;
    // The slow-sample heap never exceeds slowK entries; size it now
    // so recordBreakdown() stays allocation-free in steady state.
    pc.slow.reserve(cfg_.slowK);
    obs_.counter(name + ".completions", &pc.completions);
    obs_.counter(name + ".timeouts", &pc.timeouts);
    obs_.counter(name + ".retries", &pc.retries);
    ClassId id = ClassId(perClass_.size() - 1);
    obs_.distribution(name + ".response_us", [this, id] {
        const Histogram &h = perClass_[id].response;
        return obs::DistSnapshot{h.count(),  h.mean(),
                                 h.percentile(50), h.percentile(90),
                                 h.percentile(99), h.percentile(99.9),
                                 h.min(),    h.max()};
    });
    return id;
}

void
Recorder::recordLatency(ClassId c, sim::Time intended, sim::Time sent,
                        sim::Time completed)
{
    PerClass &pc = perClass_[c];
    double responseUs = sim::toMicroseconds(completed - intended);
    pc.window.record(responseUs);
    if (!measuring(completed))
        return;
    ++pc.completions;
    pc.response.record(responseUs);
    pc.service.record(sim::toMicroseconds(completed - sent));
}

void
Recorder::recordTimeout(ClassId c, sim::Time intended, sim::Time now)
{
    PerClass &pc = perClass_[c];
    double waitedUs = sim::toMicroseconds(now - intended);
    pc.window.record(waitedUs);
    if (!measuring(now))
        return;
    ++pc.timeouts;
    // Floor the tail honestly: the request took *at least* this long.
    pc.response.record(waitedUs);
}

void
Recorder::recordRetry(ClassId c, sim::Time now)
{
    if (measuring(now))
        ++perClass_[c].retries;
}

void
Recorder::recordBreakdown(ClassId c, const obs::PhaseBreakdown &bd,
                          sim::Time completed)
{
    if (cfg_.slowK == 0 || !measuring(completed))
        return;
    PerClass &pc = perClass_[c];
    auto slower = [](const obs::PhaseBreakdown &a,
                     const obs::PhaseBreakdown &b) {
        return a.e2e > b.e2e;
    };
    if (pc.slow.size() < cfg_.slowK) {
        pc.slow.push_back(bd);
        std::push_heap(pc.slow.begin(), pc.slow.end(), slower);
        return;
    }
    if (bd.e2e <= pc.slow.front().e2e)
        return;
    std::pop_heap(pc.slow.begin(), pc.slow.end(), slower);
    pc.slow.back() = bd;
    std::push_heap(pc.slow.begin(), pc.slow.end(), slower);
}

void
Recorder::writeReport(std::ostream &os, sim::Time now) const
{
    sim::Time end = cfg_.warmup + cfg_.duration;
    if (cfg_.duration == 0 || end > now)
        end = now;
    double secs = end > cfg_.warmup ? sim::toSeconds(end - cfg_.warmup)
                                    : 0.0;

    char line[256];
    std::snprintf(line, sizeof(line),
                  "-- SLO report [measure %.3fs..%.3fs] --",
                  sim::toSeconds(cfg_.warmup), sim::toSeconds(end));
    os << line << '\n';
    std::snprintf(line, sizeof(line),
                  "%-8s %10s %10s %8s %8s %9s %9s %9s %9s %9s %9s",
                  "class", "count", "tput/s", "timeout", "retry",
                  "mean", "p50", "p90", "p99", "p99.9", "max");
    os << line << "  [us]\n";
    for (const PerClass &pc : perClass_) {
        const Histogram &h = pc.response;
        std::snprintf(
            line, sizeof(line),
            "%-8s %10llu %10.0f %8llu %8llu %9.1f %9.1f %9.1f %9.1f "
            "%9.1f %9.1f",
            pc.name.c_str(),
            static_cast<unsigned long long>(pc.completions),
            secs > 0 ? double(pc.completions) / secs : 0.0,
            static_cast<unsigned long long>(pc.timeouts),
            static_cast<unsigned long long>(pc.retries), h.mean(),
            h.percentile(50), h.percentile(90), h.percentile(99),
            h.percentile(99.9), h.max());
        os << line << '\n';
    }

    bool anySamples = false;
    for (const PerClass &pc : perClass_)
        anySamples = anySamples || !pc.slow.empty();
    if (!anySamples)
        return;

    // Phase attribution: for each class, the retained slow sample
    // nearest the histogram's p99 and p99.9, plus the worst. Phase
    // columns sum to e2e exactly in ns (rounding here is display
    // only); a negative queue means overlapping lump charges (shared
    // server core) over-explain the window — see docs/OBSERVABILITY.md.
    os << "-- phase attribution (slowest " << cfg_.slowK
       << " per class) --\n";
    std::snprintf(line, sizeof(line),
                  "%-8s %-6s %10s %9s %9s %9s %9s %9s %9s", "class",
                  "which", "e2e", "backlog", "queue", "server", "npf",
                  "rnr", "retrans");
    os << line << "  [us]\n";
    for (const PerClass &pc : perClass_) {
        if (pc.slow.empty())
            continue;
        std::vector<obs::PhaseBreakdown> sorted = pc.slow;
        std::sort(sorted.begin(), sorted.end(),
                  [](const obs::PhaseBreakdown &a,
                     const obs::PhaseBreakdown &b) {
                      return a.e2e < b.e2e;
                  });
        auto nearest = [&sorted](double targetUs) {
            std::int64_t target =
                std::int64_t(targetUs * double(sim::kMicrosecond));
            const obs::PhaseBreakdown *best = &sorted.front();
            for (const obs::PhaseBreakdown &bd : sorted) {
                if (std::llabs(bd.e2e - target) <
                    std::llabs(best->e2e - target))
                    best = &bd;
            }
            return best;
        };
        const Histogram &h = pc.response;
        struct Row
        {
            const char *which;
            const obs::PhaseBreakdown *bd;
        } rows[] = {
            {"p99", nearest(h.percentile(99))},
            {"p99.9", nearest(h.percentile(99.9))},
            {"max", &sorted.back()},
        };
        for (const Row &r : rows) {
            const obs::PhaseBreakdown &bd = *r.bd;
            auto us = [](std::int64_t ns) { return double(ns) / 1e3; };
            std::snprintf(
                line, sizeof(line),
                "%-8s %-6s %10.1f %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f",
                pc.name.c_str(), r.which, us(bd.e2e),
                us(bd.ns[unsigned(obs::Phase::Backlog)]),
                us(bd.ns[unsigned(obs::Phase::Queue)]),
                us(bd.ns[unsigned(obs::Phase::Server)]),
                us(bd.ns[unsigned(obs::Phase::NpfDriver)]),
                us(bd.ns[unsigned(obs::Phase::RnrBackoff)]),
                us(bd.ns[unsigned(obs::Phase::Retransmit)]));
            os << line << '\n';
        }
    }
}

// --- SloMonitor -------------------------------------------------------

SloMonitor::SloMonitor(sim::EventQueue &eq, Recorder &rec, SloConfig cfg)
    : eq_(eq), rec_(rec), cfg_(cfg)
{
    obs_.init("load.slo");
    obs_.counter("checks", &checks_);
    obs_.counter("violations", &violations_);
    timer_ = eq_.scheduleAfter(cfg_.window, [this] { tick(); },
                               "load::SloMonitor::tick");
}

SloMonitor::~SloMonitor()
{
    eq_.cancel(timer_);
}

void
SloMonitor::tick()
{
    ++checks_;
    Histogram &win = rec_.window(cfg_.cls);
    if (!win.empty()) {
        auto pUs = win.percentile(cfg_.percentile);
        auto p = static_cast<sim::Time>(pUs * double(sim::kMicrosecond));
        if (p > worst_)
            worst_ = p;
        if (cfg_.target != 0 && p > cfg_.target) {
            ++violations_;
            obs::FlowTracer::global().instant(
                obs::Track::App, "load", "slo_violation");
            obs::FlightRecorder::global().onSloViolation();
        }
        win.clear();
    }
    timer_ = eq_.scheduleAfter(cfg_.window, [this] { tick(); },
                               "load::SloMonitor::tick");
}

} // namespace npf::load
