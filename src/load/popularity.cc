#include "load/popularity.hh"

#include <cmath>

namespace npf::load {

std::unique_ptr<KeyModel>
KeyModel::make(const KeySpec &spec)
{
    switch (spec.kind) {
      case KeySpec::Kind::Uniform:
        return std::make_unique<UniformKeys>(spec.keys);
      case KeySpec::Kind::Zipf:
        return std::make_unique<ZipfKeys>(spec.keys, spec.theta);
      case KeySpec::Kind::HotSet:
        return std::make_unique<HotSetKeys>(spec);
      case KeySpec::Kind::Scan:
        return std::make_unique<ScanKeys>(spec.keys);
    }
    return std::make_unique<UniformKeys>(spec.keys);
}

// --- ZipfKeys ---------------------------------------------------------

ZipfKeys::ZipfKeys(std::uint64_t n, double theta) : n_(n), theta_(theta)
{
    precompute();
}

void
ZipfKeys::precompute()
{
    zetan_ = 0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan_ += 1.0 / std::pow(double(i), theta_);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

void
ZipfKeys::setKeys(std::uint64_t n)
{
    if (n == n_)
        return;
    n_ = n;
    precompute();
}

std::uint64_t
ZipfKeys::next(sim::Rng &rng, sim::Time)
{
    double u = rng.uniform01();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < zeta2_)
        return 1;
    auto k = static_cast<std::uint64_t>(
        double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
}

// --- HotSetKeys -------------------------------------------------------

std::uint64_t
HotSetKeys::hotSize() const
{
    auto h = static_cast<std::uint64_t>(double(n_) * hotFraction_ + 0.5);
    if (h == 0)
        h = 1;
    return h > n_ ? n_ : h;
}

std::uint64_t
HotSetKeys::next(sim::Rng &rng, sim::Time now)
{
    if (shiftEvery_ != 0) {
        while (now >= nextShift_) {
            std::uint64_t step = shiftBy_ != 0 ? shiftBy_ : hotSize();
            hotStart_ = (hotStart_ + step) % n_;
            nextShift_ += shiftEvery_;
        }
    }
    std::uint64_t h = hotSize();
    if (rng.bernoulli(hotTraffic_))
        return (hotStart_ + rng.uniformInt(0, h - 1)) % n_;
    std::uint64_t cold = n_ - h;
    if (cold == 0)
        return (hotStart_ + rng.uniformInt(0, h - 1)) % n_;
    return (hotStart_ + h + rng.uniformInt(0, cold - 1)) % n_;
}

} // namespace npf::load
