/**
 * @file
 * Log-bucketed (HDR-style) histogram for latency recording.
 *
 * Unlike sim::Histogram (raw samples, exact percentiles, O(n)
 * memory), this one buckets values by (binary exponent, sub-bucket):
 * with the default 256 sub-buckets per octave the relative
 * quantisation error of any percentile is at most ~0.2%, memory is a
 * few KB regardless of sample count, and recording is O(1) — what a
 * generator needs when it records millions of requests per run.
 * Exact min/max/sum are tracked on the side.
 *
 * recordCorrected() implements the classic coordinated-omission
 * back-fill: when a sample exceeds the expected sampling interval,
 * the stalled-out samples that *would* have been taken are recorded
 * too (v - i, v - 2i, ... while positive).
 */

#ifndef NPF_LOAD_HISTOGRAM_HH
#define NPF_LOAD_HISTOGRAM_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace npf::load {

class Histogram
{
  public:
    /** @param sub_bucket_bits log2 of sub-buckets per octave. */
    explicit Histogram(unsigned sub_bucket_bits = 8)
        : subBits_(sub_bucket_bits), subCount_(1u << sub_bucket_bits)
    {
    }

    /** Add one sample (negative values clamp to 0). */
    void record(double v) { recordN(v, 1); }

    /** Add @p n occurrences of @p v. */
    void
    recordN(double v, std::uint64_t n)
    {
        if (n == 0)
            return;
        if (v <= 0) {
            v = 0;
            underflow_ += n; // own counter: never mixes with the
                             // dense bucket window
        } else {
            bump(bucketIndex(v), n);
        }
        count_ += n;
        sum_ += v * double(n);
        if (count_ == n || v < min_)
            min_ = v;
        if (count_ == n || v > max_)
            max_ = v;
    }

    /**
     * Coordinated-omission corrected record: the observed sample plus
     * back-filled samples at v - k*expected_interval (k = 1, 2, ...)
     * while positive, as if sampling had not stalled.
     */
    void
    recordCorrected(double v, double expected_interval)
    {
        record(v);
        if (expected_interval <= 0)
            return;
        for (double x = v - expected_interval; x > 0;
             x -= expected_interval)
            record(x);
    }

    /**
     * Pre-extend the dense bucket window to cover [@p lo, @p hi] so
     * record() of any value in that range stays allocation-free —
     * pair with an alloc-gated measure window. Zero-count: percentile
     * and mean results are unaffected.
     */
    void
    reserveRange(double lo, double hi)
    {
        if (hi < lo)
            return;
        if (lo > 0)
            bump(bucketIndex(lo), 0);
        if (hi > 0)
            bump(bucketIndex(hi), 0);
    }

    /** Merge another histogram's samples (same sub-bucket config). */
    void
    merge(const Histogram &o)
    {
        for (std::size_t i = 0; i < o.counts_.size(); ++i) {
            if (o.counts_[i] != 0)
                bump(o.base_ + std::int64_t(i), o.counts_[i]);
        }
        underflow_ += o.underflow_;
        if (o.count_ != 0) {
            if (count_ == 0 || o.min_ < min_)
                min_ = o.min_;
            if (count_ == 0 || o.max_ > max_)
                max_ = o.max_;
        }
        count_ += o.count_;
        sum_ += o.sum_;
    }

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double sum() const { return sum_; }
    double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }

    /**
     * Percentile by nearest rank over the bucketed distribution.
     * @p p in [0, 100]; p >= 100 returns the exact maximum. The
     * result is a bucket midpoint, clamped into [min, max].
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        if (p >= 100.0)
            return max_;
        auto rank = static_cast<std::uint64_t>(
            std::ceil(p / 100.0 * double(count_)));
        if (rank == 0)
            rank = 1;
        std::uint64_t seen = underflow_; // zero-valued samples first
        if (seen >= rank)
            return 0.0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= rank) {
                double v = bucketMid(base_ + std::int64_t(i));
                if (v < min_)
                    v = min_;
                if (v > max_)
                    v = max_;
                return v;
            }
        }
        return max_;
    }

    /** Discard all samples. */
    void
    clear()
    {
        counts_.clear();
        base_ = 0;
        underflow_ = 0;
        count_ = 0;
        sum_ = 0;
        min_ = 0;
        max_ = 0;
    }

  private:
    /**
     * Global bucket index of @p v: exponent * sub-buckets + mantissa
     * slice. Values below the smallest normalised double land in one
     * underflow bucket.
     */
    std::int64_t
    bucketIndex(double v) const
    {
        int e = 0;
        double m = std::frexp(v, &e); // m in [0.5, 1)
        auto sub = static_cast<std::int64_t>((m - 0.5) * 2.0 *
                                             double(subCount_));
        if (sub >= std::int64_t(subCount_))
            sub = std::int64_t(subCount_) - 1;
        return std::int64_t(e) * std::int64_t(subCount_) + sub;
    }

    /** Midpoint of the bucket with global index @p idx. */
    double
    bucketMid(std::int64_t idx) const
    {
        auto e = static_cast<int>(idx >= 0
                                      ? idx / std::int64_t(subCount_)
                                      : -((-idx + std::int64_t(subCount_) -
                                           1) /
                                          std::int64_t(subCount_)));
        std::int64_t sub = idx - std::int64_t(e) * std::int64_t(subCount_);
        double lo = 0.5 + double(sub) / (2.0 * double(subCount_));
        double width = 0.5 / double(subCount_);
        return std::ldexp(lo + width / 2.0, e);
    }

    /** Increment the bucket, growing the dense window on demand. */
    void
    bump(std::int64_t idx, std::uint64_t n)
    {
        if (counts_.empty()) {
            base_ = idx;
            counts_.assign(1, 0);
        } else if (idx < base_) {
            counts_.insert(counts_.begin(), std::size_t(base_ - idx), 0);
            base_ = idx;
        } else if (idx >= base_ + std::int64_t(counts_.size())) {
            counts_.resize(std::size_t(idx - base_) + 1, 0);
        }
        counts_[std::size_t(idx - base_)] += n;
    }

    unsigned subBits_;
    unsigned subCount_;
    std::vector<std::uint64_t> counts_; ///< dense window [base_, ...)
    std::int64_t base_ = 0;
    std::uint64_t underflow_ = 0; ///< samples at exactly zero
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

} // namespace npf::load

#endif // NPF_LOAD_HISTOGRAM_HH
