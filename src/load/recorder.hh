/**
 * @file
 * Latency/SLO recording for workload generators.
 *
 * A Recorder keeps, per request class (GET, SET, READ, ...), two
 * log-bucketed histograms over a warmup/measure window:
 *
 *  - *response* latency: completion minus the request's **intended**
 *    arrival time, i.e. the open-loop schedule position. Queueing a
 *    request behind a stalled server counts against it, so this is
 *    the coordinated-omission-free number the paper's tail tables
 *    need;
 *  - *service* latency: completion minus the actual send time — what
 *    a naive (coordinated-omission-blind) client would report.
 *
 * Timeouts are counted and floored into the response histogram at
 * the elapsed wait, so a run where the server never answers still
 * has an honest tail. An SloMonitor periodically evaluates a
 * percentile target over the most recent window and raises an obs
 * counter + flow-tracer instant on violation.
 */

#ifndef NPF_LOAD_RECORDER_HH
#define NPF_LOAD_RECORDER_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "load/histogram.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::load {

/** Measurement windowing. */
struct RecorderConfig
{
    sim::Time warmup = 0;   ///< discard completions before this time
    sim::Time duration = 0; ///< measure window length (0 = unbounded)

    /** Phase breakdowns retained per class (the slowest K by e2e);
     *  only filled when attribution is on and the pool has lanes. */
    std::size_t slowK = 64;
};

class Recorder
{
  public:
    using ClassId = unsigned;

    explicit Recorder(RecorderConfig cfg = {});

    /** Register a request class; returns its id. */
    ClassId addClass(const std::string &name);

    std::size_t classes() const { return perClass_.size(); }
    const std::string &className(ClassId c) const
    {
        return perClass_[c].name;
    }

    /** True when @p t falls inside the measure window. */
    bool
    measuring(sim::Time t) const
    {
        return t >= cfg_.warmup &&
               (cfg_.duration == 0 || t < cfg_.warmup + cfg_.duration);
    }

    /**
     * Record one completed request. @p intended is the open-loop
     * schedule time (equals @p sent for closed-loop generators);
     * @p sent the actual transmit time; @p completed the response
     * time. Gated on measuring(completed).
     */
    void recordLatency(ClassId c, sim::Time intended, sim::Time sent,
                       sim::Time completed);

    /** Record an abandoned (timed-out) request at its elapsed wait. */
    void recordTimeout(ClassId c, sim::Time intended, sim::Time now);

    /** Count one retry transmission. */
    void recordRetry(ClassId c, sim::Time now);

    /**
     * Record a phase-attributed breakdown for a completed request;
     * the slowest slowK by e2e are retained per class. Gated on
     * measuring(@p completed) like recordLatency.
     */
    void recordBreakdown(ClassId c, const obs::PhaseBreakdown &bd,
                         sim::Time completed);

    /** Retained breakdowns (unordered; the slowest slowK by e2e). */
    const std::vector<obs::PhaseBreakdown> &slowSamples(ClassId c) const
    {
        return perClass_[c].slow;
    }

    /** CO-corrected response-latency distribution [us]. */
    const Histogram &response(ClassId c) const
    {
        return perClass_[c].response;
    }
    /** Send-to-completion (naive) distribution [us]. */
    const Histogram &service(ClassId c) const
    {
        return perClass_[c].service;
    }

    std::uint64_t completions(ClassId c) const
    {
        return perClass_[c].completions;
    }
    std::uint64_t timeouts(ClassId c) const
    {
        return perClass_[c].timeouts;
    }
    std::uint64_t retries(ClassId c) const
    {
        return perClass_[c].retries;
    }

    /**
     * Sliding-window response histogram, filled regardless of the
     * warmup gate; an SloMonitor drains it each evaluation period.
     */
    Histogram &window(ClassId c) { return perClass_[c].window; }

    /**
     * Pre-extend every class's histogram bucket windows to cover
     * latencies in [@p lo_us, @p hi_us], so recording inside an
     * alloc-gated measure window never grows a bucket array. Call
     * after addClass(), before the measure window opens.
     */
    void
    reserveLatencyRange(double lo_us, double hi_us)
    {
        for (PerClass &pc : perClass_) {
            pc.response.reserveRange(lo_us, hi_us);
            pc.service.reserveRange(lo_us, hi_us);
            pc.window.reserveRange(lo_us, hi_us);
        }
    }

    const RecorderConfig &config() const { return cfg_; }

    /**
     * Write the SLO report: one row per class with throughput over
     * the effective measure window and the corrected latency
     * percentiles. @p now bounds the window for still-running or
     * unbounded configs.
     */
    void writeReport(std::ostream &os, sim::Time now) const;

  private:
    struct PerClass
    {
        std::string name;
        Histogram response; ///< corrected: completion - intended [us]
        Histogram service;  ///< naive: completion - sent [us]
        Histogram window;   ///< recent, drained by SloMonitor
        std::uint64_t completions = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t retries = 0;
        /** Min-heap on e2e: front is the fastest retained sample. */
        std::vector<obs::PhaseBreakdown> slow;
    };

    RecorderConfig cfg_;
    std::deque<PerClass> perClass_; ///< deque: stable counter addrs
    obs::Instrumented obs_;         ///< last member: deregisters first
};

/** One percentile target on one request class. */
struct SloConfig
{
    Recorder::ClassId cls = 0;
    double percentile = 99.0;
    sim::Time target = 0;               ///< violated when exceeded
    sim::Time window = 100 * sim::kMillisecond; ///< evaluation period
};

/**
 * Periodically evaluates the recorder's recent window against the
 * target; violations bump `load.slo*.violations` and emit a
 * flow-tracer instant so traces show when the tail went bad.
 */
class SloMonitor
{
  public:
    SloMonitor(sim::EventQueue &eq, Recorder &rec, SloConfig cfg);
    ~SloMonitor();

    SloMonitor(const SloMonitor &) = delete;
    SloMonitor &operator=(const SloMonitor &) = delete;

    std::uint64_t checks() const { return checks_; }
    std::uint64_t violations() const { return violations_; }
    /** Worst windowed percentile seen so far. */
    sim::Time worst() const { return worst_; }

  private:
    void tick();

    sim::EventQueue &eq_;
    Recorder &rec_;
    SloConfig cfg_;
    sim::EventId timer_ = sim::kInvalidEvent;
    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    sim::Time worst_ = 0;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::load

#endif // NPF_LOAD_RECORDER_HH
