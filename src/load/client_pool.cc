#include "load/client_pool.hh"

#include <algorithm>
#include <cassert>

namespace npf::load {

ClientPool::ClientPool(sim::EventQueue &eq, PoolConfig cfg)
    : eq_(eq), cfg_(cfg), rng_(cfg.seed),
      arrival_(cfg.workload.arrival, sim::mixSeed(cfg.seed, 1)),
      thinkRng_(sim::mixSeed(cfg.seed, 2)),
      keys_(KeyModel::make(cfg.workload.keys))
{
    if (cfg_.clients == 0)
        cfg_.clients = 1;
    clients_.resize(cfg_.clients);
    if (cfg_.sweepInterval == 0 && cfg_.timeout != 0)
        cfg_.sweepInterval = std::max<sim::Time>(cfg_.timeout / 4, 1);
    wheel_.resize(cfg_.calendarSlots);
    // Both rings have hard occupancy bounds; size them up front so a
    // rare burst never regrows them inside an alloc-gated measure
    // window (bench/stack_bench.cc asserts steady-state allocs == 0).
    idle_.reserve(cfg_.clients);
    backlog_.reserve(std::size_t(cfg_.backlogFactor) * cfg_.clients);

    obs_.init("load.pool");
    obs_.counter("issued", &issued_);
    obs_.counter("completions", &completions_);
    obs_.counter("hits", &hits_);
    obs_.counter("timeouts", &timeouts_);
    obs_.counter("retries", &retries_);
    obs_.counter("giveups", &giveups_);
    obs_.counter("late_responses", &late_);
    obs_.counter("shed_arrivals", &shed_);
    obs_.gauge("in_flight",
               [this] { return static_cast<double>(inFlight()); });
}

ClientPool::~ClientPool()
{
    stop();
}

unsigned
ClientPool::addEndpoint(Transport &t, int attrLane)
{
    Endpoint ep;
    ep.t = &t;
    ep.attrLane = attrLane;
    eps_.push_back(std::move(ep));
    return unsigned(eps_.size() - 1);
}

void
ClientPool::setRecorder(Recorder &rec)
{
    rec_ = &rec;
    getClass_ = rec.addClass("get");
    setClass_ = rec.addClass("set");
}

void
ClientPool::start()
{
    assert(!eps_.empty() && "pool needs at least one endpoint");
    started_ = true;
    for (Endpoint &ep : eps_)
        ep.inflight.reserve(cfg_.clients); // <= 1 in flight per client
    if (cfg_.workload.arrival.open()) {
        for (std::uint32_t c = 0; c < cfg_.clients; ++c)
            idle_.push_back(c);
        armArrival();
    } else {
        // Closed loop: every client fires immediately. Index order is
        // endpoint-major (clients map to endpoints in contiguous
        // blocks), matching the legacy per-channel window fill.
        for (std::uint32_t c = 0; c < cfg_.clients; ++c)
            issueNew(c, eq_.now());
    }
    if (cfg_.timeout != 0)
        sweepEvent_ = eq_.scheduleAfter(cfg_.sweepInterval,
                                        [this] { sweep(); },
                                        "load::ClientPool::sweep");
}

void
ClientPool::stop()
{
    eq_.cancel(arrivalEvent_);
    eq_.cancel(wheelEvent_);
    eq_.cancel(sweepEvent_);
    arrivalEvent_ = wheelEvent_ = sweepEvent_ = sim::kInvalidEvent;
    for (auto &slot : wheel_)
        slot.clear();
    wheelCount_ = 0;
    started_ = false;
}

std::size_t
ClientPool::inFlight() const
{
    std::size_t n = 0;
    for (const Endpoint &ep : eps_)
        n += ep.inflight.size();
    return n;
}

void
ClientPool::resetCounters()
{
    issued_ = completions_ = hits_ = 0;
    timeouts_ = retries_ = giveups_ = late_ = shed_ = 0;
}

unsigned
ClientPool::endpointFor(std::uint32_t c)
{
    if (!cfg_.workload.arrival.open()) {
        // Fixed block assignment: client c's endpoint never changes,
        // so a closed loop is window-per-endpoint like memaslap.
        return unsigned((std::uint64_t(c) * eps_.size()) / cfg_.clients);
    }
    unsigned ep = rrNext_;
    rrNext_ = (rrNext_ + 1) % unsigned(eps_.size());
    return ep;
}

void
ClientPool::issueNew(std::uint32_t c, sim::Time intended)
{
    Client &cl = clients_[c];
    // One shared stream, key drawn before op: the draw order is part
    // of the reproducibility contract (and of memaslap parity).
    cl.key = keys_->next(rng_, eq_.now());
    cl.isSet = !rng_.bernoulli(cfg_.workload.getRatio);
    cl.intended = intended;
    cl.attempt = 0;
    send(c);
}

void
ClientPool::send(std::uint32_t c)
{
    Client &cl = clients_[c];
    unsigned epIdx = endpointFor(c);
    Endpoint &ep = eps_[epIdx];

    std::uint32_t serial = ep.nextSerial++ & kSerialMask;
    ep.nextSerial &= kSerialMask;
    ep.inflight.push_back(InFlight{serial, c, cl.intended, eq_.now(), {}});
    if (ep.attrLane >= 0)
        obs::attributor().snapshot(ep.attrLane,
                                   ep.inflight.back().snap);

    cl.state = Client::State::InFlight;
    ++issued_;
    if (cl.attempt > 0) {
        ++retries_;
        if (rec_)
            rec_->recordRetry(cl.isSet ? setClass_ : getClass_,
                              eq_.now());
    }
    ep.t->issue(serial, cl.key, cl.isSet, cfg_.workload.requestBytes);
}

void
ClientPool::complete(unsigned epIdx, std::uint32_t serial, bool hit)
{
    Endpoint &ep = eps_[epIdx];
    if (ep.inflight.empty() || ep.inflight.front().serial != serial) {
        // Response to a request the timeout sweep already abandoned
        // (transports deliver in issue order, so a mismatched front
        // means the matching entry was popped, never reordered).
        ++late_;
        return;
    }
    InFlight f = ep.inflight.front();
    ep.inflight.pop_front();

    Client &cl = clients_[f.client];
    ++completions_;
    if (hit)
        ++hits_;
    sim::Time now = eq_.now();
    if (tpsSeries_)
        tpsSeries_->record(now);
    if (hpsSeries_ && hit)
        hpsSeries_->record(now);
    if (rec_) {
        Recorder::ClassId cls = cl.isSet ? setClass_ : getClass_;
        rec_->recordLatency(cls, f.intended, f.sent, now);
        if (ep.attrLane >= 0) {
            // Phase-attribute the sojourn: blocking phases are the
            // lane's accumulation over the request's wire window; the
            // unexplained remainder is Queue, so the breakdown sums to
            // e2e exactly (see obs/attribution.hh).
            obs::PhaseBreakdown end;
            obs::attributor().snapshot(ep.attrLane, end);
            obs::PhaseBreakdown bd;
            std::int64_t blocking = 0;
            for (unsigned i = 0; i < obs::kPhaseCount; ++i) {
                bd.ns[i] = end.ns[i] - f.snap.ns[i];
                blocking += bd.ns[i];
            }
            bd.e2e = std::int64_t(now - f.intended);
            bd.ns[unsigned(obs::Phase::Backlog)] =
                std::int64_t(f.sent - f.intended);
            bd.ns[unsigned(obs::Phase::Queue)] =
                std::int64_t(now - f.sent) - blocking;
            rec_->recordBreakdown(cls, bd, now);
        }
    }
    finishClient(f.client);
}

void
ClientPool::finishClient(std::uint32_t c)
{
    Client &cl = clients_[c];
    if (cfg_.workload.arrival.open()) {
        if (!backlog_.empty()) {
            // A queued arrival has been waiting for a free client;
            // its latency clock started at its *intended* time.
            sim::Time intended = backlog_.front();
            backlog_.pop_front();
            issueNew(c, intended);
        } else {
            cl.state = Client::State::Idle;
            idle_.push_back(c);
        }
        return;
    }
    // Closed loop: think, then re-issue. Zero think time re-issues
    // inline from the completion callback — no event is scheduled, so
    // the legacy memaslap interleaving is preserved exactly.
    const ArrivalSpec &a = cfg_.workload.arrival;
    if (a.thinkMean == 0) {
        issueNew(c, eq_.now());
        return;
    }
    double thinkNs = double(a.thinkMean);
    if (a.expThink)
        thinkNs = thinkRng_.exponential(thinkNs);
    cl.state = Client::State::Thinking;
    calendarInsert(eq_.now() + sim::Time(thinkNs), c);
}

// --- open-loop arrivals ----------------------------------------------

void
ClientPool::armArrival()
{
    sim::Time next = arrival_.next();
    if (next == ~sim::Time(0))
        return;
    // One arrival event per request at high offered load; keep the
    // closure inline so the open-loop generator never allocates.
    auto fire = [this] { onArrival(); };
    static_assert(sim::Delegate::fitsInline<decltype(fire)>,
                  "arrival closure must stay inline");
    arrivalEvent_ = eq_.schedule(next, std::move(fire),
                                 "load::ClientPool::arrival");
}

void
ClientPool::onArrival()
{
    arrivalEvent_ = sim::kInvalidEvent;
    sim::Time intended = eq_.now();
    if (!idle_.empty()) {
        std::uint32_t c = idle_.front();
        idle_.pop_front();
        issueNew(c, intended);
    } else if (backlog_.size() <
               std::size_t(cfg_.backlogFactor) * cfg_.clients) {
        backlog_.push_back(intended);
    } else {
        ++shed_;
    }
    armArrival();
}

// --- calendar wheel ---------------------------------------------------

void
ClientPool::calendarInsert(sim::Time when, std::uint32_t c)
{
    clients_[c].wakeAt = when;
    if (wheelCount_ == 0) {
        // Wheel idle: re-anchor it at the current time.
        wheelTime_ = eq_.now();
    }
    sim::Time delta = when > wheelTime_ ? when - wheelTime_ : 0;
    std::size_t idx =
        std::min<std::size_t>(delta / cfg_.calendarBucket,
                              cfg_.calendarSlots - 1);
    wheel_[(wheelHead_ + idx) % cfg_.calendarSlots].push_back(c);
    ++wheelCount_;
    if (wheelEvent_ == sim::kInvalidEvent)
        wheelEvent_ = eq_.schedule(wheelTime_ + cfg_.calendarBucket,
                                   [this] { calendarFire(); },
                                   "load::ClientPool::calendar");
}

void
ClientPool::calendarFire()
{
    wheelEvent_ = sim::kInvalidEvent;
    // Swap the due slot into a member scratch buffer instead of a
    // local: a local's storage died with it every fire, so the slot
    // came back with zero capacity and the next inserts reallocated.
    // The scratch and the slot buffers now ping-pong and both settle
    // at the high-water mark — steady-state fires allocate nothing.
    dueScratch_.clear();
    dueScratch_.swap(wheel_[wheelHead_]);
    wheelHead_ = (wheelHead_ + 1) % cfg_.calendarSlots;
    wheelTime_ += cfg_.calendarBucket;
    wheelCount_ -= dueScratch_.size();

    for (std::uint32_t c : dueScratch_) {
        Client &cl = clients_[c];
        if (cl.wakeAt > wheelTime_) {
            // Clamped far-future insert: not due yet, cascade onward.
            calendarInsert(cl.wakeAt, c);
            continue;
        }
        if (cl.state == Client::State::Thinking) {
            issueNew(c, eq_.now());
        } else if (cl.state == Client::State::Backoff) {
            send(c); // resend, keeping key and intended time
        }
    }
    if (wheelCount_ > 0 && wheelEvent_ == sim::kInvalidEvent)
        wheelEvent_ = eq_.schedule(wheelTime_ + cfg_.calendarBucket,
                                   [this] { calendarFire(); },
                                   "load::ClientPool::calendar");
}

// --- timeout sweep ----------------------------------------------------

sim::Time
ClientPool::backoffDelay(unsigned attempt) const
{
    sim::Time d = cfg_.backoffBase;
    for (unsigned i = 1; i < attempt && d < cfg_.backoffCap; ++i)
        d *= 2;
    return std::min(d, cfg_.backoffCap);
}

void
ClientPool::sweep()
{
    sim::Time now = eq_.now();
    for (Endpoint &ep : eps_) {
        while (!ep.inflight.empty() &&
               now - ep.inflight.front().sent >= cfg_.timeout) {
            InFlight f = ep.inflight.front();
            ep.inflight.pop_front();
            ++timeouts_;
            Client &cl = clients_[f.client];
            if (cl.attempt < cfg_.maxRetries) {
                ++cl.attempt;
                cl.state = Client::State::Backoff;
                calendarInsert(now + backoffDelay(cl.attempt), f.client);
            } else {
                ++giveups_;
                if (rec_)
                    rec_->recordTimeout(cl.isSet ? setClass_ : getClass_,
                                        f.intended, now);
                finishClient(f.client);
            }
        }
    }
    sweepEvent_ = eq_.scheduleAfter(cfg_.sweepInterval,
                                    [this] { sweep(); },
                                    "load::ClientPool::sweep");
}

} // namespace npf::load
