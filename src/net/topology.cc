#include "net/topology.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <queue>

namespace npf::net {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = "topology: " + msg;
    return false;
}

/** "40g" = 40e9 bits/sec (decimal, like NIC marketing). */
bool
parseRate(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    const char *begin = v.c_str();
    char *end = nullptr;
    double x = std::strtod(begin, &end);
    if (end == begin || x <= 0.0)
        return false;
    std::string unit(end);
    if (unit == "k")
        x *= 1e3;
    else if (unit == "m")
        x *= 1e6;
    else if (unit == "g")
        x *= 1e9;
    else if (!unit.empty())
        return false;
    out = x;
    return true;
}

/** "256k" = 256 KiB, "4m" = 4 MiB (binary, like buffer sizes). */
bool
parseBytes(const std::string &v, std::size_t &out)
{
    if (v.empty())
        return false;
    const char *begin = v.c_str();
    char *end = nullptr;
    double x = std::strtod(begin, &end);
    if (end == begin || x < 0.0)
        return false;
    std::string unit(end);
    if (unit == "k")
        x *= 1024.0;
    else if (unit == "m")
        x *= 1024.0 * 1024.0;
    else if (!unit.empty())
        return false;
    out = static_cast<std::size_t>(x);
    return true;
}

/** "200" (ns), "30us", "1.5ms", "2s" — the fault-plan time grammar. */
bool
parseTimeValue(const std::string &v, sim::Time &out)
{
    if (v.empty())
        return false;
    const char *begin = v.c_str();
    char *end = nullptr;
    double x = std::strtod(begin, &end);
    if (end == begin || x < 0.0)
        return false;
    std::string unit(end);
    double scale;
    if (unit.empty() || unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = double(sim::kMicrosecond);
    else if (unit == "ms")
        scale = double(sim::kMillisecond);
    else if (unit == "s")
        scale = double(sim::kSecond);
    else
        return false;
    out = static_cast<sim::Time>(x * scale);
    return true;
}

bool
parseUnsigned(const std::string &v, unsigned &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    unsigned long x = std::strtoul(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size())
        return false;
    out = static_cast<unsigned>(x);
    return true;
}

/** "h3" / "s1" vertex names of the edges grammar. */
bool
parseVertex(const std::string &v, bool &isHost, unsigned &idx)
{
    if (v.size() < 2 || (v[0] != 'h' && v[0] != 's'))
        return false;
    isHost = v[0] == 'h';
    return parseUnsigned(v.substr(1), idx);
}

} // namespace

Topology
Topology::star(unsigned hosts, LinkConfig link, SwitchConfig sw)
{
    Topology t;
    t.hosts = hosts;
    t.switches = 1;
    t.defaultLink = link;
    t.switchCfg = sw;
    for (unsigned h = 0; h < hosts; ++h)
        t.edges.push_back({h, hosts, link});
    return t;
}

Topology
Topology::leafSpine(unsigned hosts, unsigned leaves, unsigned spines,
                    double oversubscription, LinkConfig link,
                    SwitchConfig sw)
{
    Topology t;
    t.hosts = hosts;
    t.switches = leaves + spines;
    t.defaultLink = link;
    t.switchCfg = sw;
    // Hosts in contiguous blocks per leaf; stragglers on the last.
    unsigned per_leaf = (hosts + leaves - 1) / leaves;
    for (unsigned h = 0; h < hosts; ++h) {
        unsigned leaf = std::min(h / per_leaf, leaves - 1);
        t.edges.push_back({h, hosts + leaf, link});
    }
    LinkConfig up = link;
    up.bandwidthBitsPerSec =
        link.bandwidthBitsPerSec *
        (double(per_leaf) / double(spines)) / oversubscription;
    for (unsigned l = 0; l < leaves; ++l)
        for (unsigned s = 0; s < spines; ++s)
            t.edges.push_back({hosts + l, hosts + leaves + s, up});
    return t;
}

std::optional<Topology>
Topology::parse(const std::string &text, std::string *error)
{
    std::string spec = trim(text);
    std::size_t colon = spec.find(':');
    std::string kind = trim(spec.substr(0, colon));

    unsigned hosts = 0, leaves = 2, spines = 2;
    double ovs = 1.0;
    LinkConfig link;
    SwitchConfig sw;
    std::string links_val;

    if (colon != std::string::npos) {
        for (const std::string &kv_text :
             split(spec.substr(colon + 1), ',')) {
            std::string kv = trim(kv_text);
            if (kv.empty())
                continue;
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                fail(error, "param '" + kv + "': want key=value");
                return std::nullopt;
            }
            std::string key = trim(kv.substr(0, eq));
            std::string val = trim(kv.substr(eq + 1));
            bool ok = true;
            if (key == "hosts")
                ok = parseUnsigned(val, hosts);
            else if (key == "leaves")
                ok = parseUnsigned(val, leaves);
            else if (key == "spines")
                ok = parseUnsigned(val, spines);
            else if (key == "ovs") {
                char *end = nullptr;
                ovs = std::strtod(val.c_str(), &end);
                ok = end == val.c_str() + val.size() && ovs >= 1.0;
            } else if (key == "links")
                links_val = val;
            else if (key == "bw")
                ok = parseRate(val, link.bandwidthBitsPerSec);
            else if (key == "prop")
                ok = parseTimeValue(val, link.propagation);
            else if (key == "overhead")
                ok = parseBytes(val, link.perPacketOverheadBytes);
            else if (key == "fwd")
                ok = parseTimeValue(val, sw.forwardLatency);
            else if (key == "queue")
                ok = parseBytes(val, sw.queueCapBytes);
            else if (key == "ecn") {
                ok = parseBytes(val, sw.ecn.markBytes);
                sw.ecn.enabled = sw.ecn.markBytes > 0;
            } else if (key == "xoff") {
                ok = parseBytes(val, sw.pfc.xoffBytes);
                sw.pfc.enabled = sw.pfc.xoffBytes > 0;
            } else if (key == "xon")
                ok = parseBytes(val, sw.pfc.xonBytes);
            else {
                fail(error, "unknown key '" + key + "'");
                return std::nullopt;
            }
            if (!ok) {
                fail(error, key + " '" + val + "': bad value");
                return std::nullopt;
            }
        }
    }
    if (sw.pfc.enabled && sw.pfc.xonBytes >= sw.pfc.xoffBytes)
        sw.pfc.xonBytes = sw.pfc.xoffBytes / 2;

    Topology t;
    if (kind == "star") {
        if (hosts == 0) {
            fail(error, "star needs hosts=N");
            return std::nullopt;
        }
        t = star(hosts, link, sw);
    } else if (kind == "leafspine") {
        if (hosts == 0 || leaves == 0 || spines == 0) {
            fail(error, "leafspine needs hosts=, leaves=, spines=");
            return std::nullopt;
        }
        t = leafSpine(hosts, leaves, spines, ovs, link, sw);
    } else if (kind == "edges") {
        if (links_val.empty()) {
            fail(error, "edges needs links=a-b+c-d+...");
            return std::nullopt;
        }
        unsigned max_host = 0, max_switch = 0;
        struct RawEdge { bool ah, bh; unsigned a, b; };
        std::vector<RawEdge> raw;
        for (const std::string &e_text : split(links_val, '+')) {
            std::string e = trim(e_text);
            std::size_t dash = e.find('-');
            bool ah = false, bh = false;
            unsigned a = 0, b = 0;
            if (dash == std::string::npos ||
                !parseVertex(trim(e.substr(0, dash)), ah, a) ||
                !parseVertex(trim(e.substr(dash + 1)), bh, b)) {
                fail(error, "edge '" + e + "': want hN-sM or sN-sM");
                return std::nullopt;
            }
            raw.push_back({ah, bh, a, b});
            if (ah)
                max_host = std::max(max_host, a + 1);
            else
                max_switch = std::max(max_switch, a + 1);
            if (bh)
                max_host = std::max(max_host, b + 1);
            else
                max_switch = std::max(max_switch, b + 1);
        }
        t.hosts = max_host;
        t.switches = max_switch;
        t.defaultLink = link;
        t.switchCfg = sw;
        for (const RawEdge &e : raw)
            t.edges.push_back({e.ah ? e.a : t.hosts + e.a,
                               e.bh ? e.b : t.hosts + e.b, link});
    } else {
        fail(error, "unknown kind '" + kind + "'");
        return std::nullopt;
    }

    t.spec = spec;
    if (!t.validate(error))
        return std::nullopt;
    return t;
}

bool
Topology::validate(std::string *error) const
{
    if (hosts == 0 || switches == 0)
        return fail(error, "need at least one host and one switch");
    std::vector<unsigned> host_degree(hosts, 0);
    std::vector<std::vector<unsigned>> adj(vertices());
    for (const Edge &e : edges) {
        if (e.a >= vertices() || e.b >= vertices() || e.a == e.b)
            return fail(error, "edge endpoint out of range");
        if (isHost(e.a) && isHost(e.b))
            return fail(error, "host-to-host edge (no switch between)");
        if (isHost(e.a))
            ++host_degree[e.a];
        if (isHost(e.b))
            ++host_degree[e.b];
        adj[e.a].push_back(e.b);
        adj[e.b].push_back(e.a);
    }
    for (unsigned h = 0; h < hosts; ++h)
        if (host_degree[h] != 1)
            return fail(error, "host h" + std::to_string(h) +
                                   " needs exactly one attachment, has " +
                                   std::to_string(host_degree[h]));
    std::vector<bool> seen(vertices(), false);
    std::queue<unsigned> bfs;
    bfs.push(0);
    seen[0] = true;
    unsigned reached = 1;
    while (!bfs.empty()) {
        unsigned v = bfs.front();
        bfs.pop();
        for (unsigned n : adj[v])
            if (!seen[n]) {
                seen[n] = true;
                ++reached;
                bfs.push(n);
            }
    }
    if (reached != vertices())
        return fail(error, "graph is not connected");
    if (switchCfg.pfc.enabled &&
        switchCfg.pfc.xonBytes >= switchCfg.pfc.xoffBytes)
        return fail(error, "PFC xon must be below xoff");
    return true;
}

std::vector<std::vector<std::vector<unsigned>>>
Topology::routes() const
{
    unsigned n = vertices();
    std::vector<std::vector<unsigned>> adj(n);
    for (const Edge &e : edges) {
        adj[e.a].push_back(e.b);
        adj[e.b].push_back(e.a);
    }
    // Ascending neighbor order keeps ECMP candidate lists (and with
    // them flow hashing) deterministic across runs.
    for (auto &a : adj)
        std::sort(a.begin(), a.end());

    constexpr unsigned kInf = 0xffffffffu;
    std::vector<std::vector<std::vector<unsigned>>> routes(
        n, std::vector<std::vector<unsigned>>(hosts));
    for (unsigned d = 0; d < hosts; ++d) {
        std::vector<unsigned> dist(n, kInf);
        std::queue<unsigned> bfs;
        dist[d] = 0;
        bfs.push(d);
        while (!bfs.empty()) {
            unsigned v = bfs.front();
            bfs.pop();
            for (unsigned nb : adj[v])
                if (dist[nb] == kInf) {
                    dist[nb] = dist[v] + 1;
                    bfs.push(nb);
                }
        }
        for (unsigned v = 0; v < n; ++v) {
            if (v == d || dist[v] == kInf)
                continue;
            for (unsigned nb : adj[v])
                if (dist[nb] + 1 == dist[v])
                    routes[v][d].push_back(nb);
        }
    }
    return routes;
}

} // namespace npf::net
