/**
 * @file
 * Pooled packet descriptor for the multi-switch fabric. Payloads
 * still travel inside delivery closures (net/link.hh); the fabric
 * wraps each one in a FabricPacket so switch queues can account
 * bytes, stamp ECN and hash flows without looking inside.
 *
 * Descriptors live in a leaked global slab (the fabricPendingPool()
 * recipe): queues and in-flight wire closures hold sim::PoolRefs
 * whose teardown order against any one Fabric is unknowable. Copying
 * a ref clones the descriptor — and with it the payload-owning
 * delegate — so a fault-duplicated packet retires independently, and
 * a dropped one releases its slot when the ref dies (docs/MEMORY.md).
 */

#ifndef NPF_NET_PACKET_HH
#define NPF_NET_PACKET_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/pool.hh"

namespace npf::net {

/** One packet in flight across the switched fabric. */
struct FabricPacket
{
    unsigned src = 0;              ///< source host
    unsigned dst = 0;              ///< destination host
    std::uint32_t bytes = 0;       ///< payload length
    std::uint32_t flow = 0;        ///< ECMP flow label
    std::uint8_t priority = 0;     ///< traffic class (net/pfc.hh)
    bool ecn = false;              ///< CE mark accumulated en route
    sim::Time readyAt = 0;         ///< egress-eligible (fwd latency)
    sim::EventQueue::Callback deliver; ///< runs at the destination
};

/** The descriptor slab; leaked for the same reason as
 *  fabricPendingPool() (see net/fabric.hh). */
inline sim::Pool<FabricPacket> &
fabricPacketPool()
{
    static thread_local auto *pool = new sim::Pool<FabricPacket>("net::Fabric.packet");
    return *pool;
}

} // namespace npf::net

#endif // NPF_NET_PACKET_HH
