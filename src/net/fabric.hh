/**
 * @file
 * Switched fabric, in two modes behind one API.
 *
 * Legacy mode (the default constructor): N nodes star-wired through
 * one transparent switch — dedicated uplink/downlink per node, a
 * fixed cut-through latency, unbounded implicit queueing on the
 * links themselves. This is the paper's testbed (8 servers on a
 * SwitchX-2) and the path every existing call site rides; its event
 * sequence is pinned bit-identical by scripts/golden_digests.sha256.
 *
 * Topology mode (construct with a net::Topology): real multi-switch
 * fabrics — per-port bounded egress queues, ECMP next-hop selection,
 * ECN marking and per-priority PFC pause/resume (net/switch.hh),
 * with host uplinks modeled as queueing NIC ports that PFC can
 * pause. Destination-side metadata (CE mark, class) is published
 * through rx() for the duration of the delivery callback, which is
 * how ib::QueuePair's DCQCN notification point sees marks without
 * the fabric knowing transport framing.
 */

#ifndef NPF_NET_FABRIC_HH
#define NPF_NET_FABRIC_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "net/link.hh"
#include "net/switch.hh"
#include "net/topology.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/shard.hh"

namespace npf::net {

/**
 * Serializable wire unit for the record-based delivery plane: what
 * crosses the fabric when the destination may live on another shard.
 * Closures cannot cross threads; a WireRecord is a trivially-copyable
 * POD that carries its protocol payload (e.g. one ib::Packet) by
 * value and is dispatched to the handler registered under
 * (dst, kind) — see Fabric::bindRx()/sendRecord().
 */
struct WireRecord
{
    static constexpr std::size_t kPayloadBytes =
        sim::BoundaryMsg::kPayloadBytes;

    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t kind = 0;  ///< receiver demux key within dst
    std::uint32_t bytes = 0; ///< wire size (serialization/overhead)
    std::uint32_t payloadLen = 0;
    unsigned char payload[kPayloadBytes] = {};

    template <typename T>
    void
    store(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "only PODs ride the record plane");
        static_assert(sizeof(T) <= kPayloadBytes, "grow kPayloadBytes");
        std::memcpy(payload, &v, sizeof(T));
        payloadLen = sizeof(T);
    }

    template <typename T>
    T
    load() const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) <= kPayloadBytes);
        T v;
        std::memcpy(&v, payload, sizeof(T));
        return v;
    }
};

static_assert(std::is_trivially_copyable_v<WireRecord>);

/**
 * Slab for delivery delegates parked across a fabric's hop chain.
 * Leaked (never destroyed): closures holding refs into it live in
 * event queues whose teardown order against any one Fabric is
 * unknowable.
 */
inline sim::Pool<sim::EventQueue::Callback> &
fabricPendingPool()
{
    static thread_local auto *pool =
        new sim::Pool<sim::EventQueue::Callback>("net::Fabric.pending");
    return *pool;
}

/** Slab parking WireRecords while they wait in the event queue
 *  (same lifetime reasoning as fabricPendingPool). */
inline sim::Pool<WireRecord> &
fabricRecordPool()
{
    static thread_local auto *pool =
        new sim::Pool<WireRecord>("net::Fabric.record");
    return *pool;
}

/** Legacy-mode fabric parameters. */
struct FabricConfig
{
    LinkConfig link;                         ///< per-port link
    sim::Time switchLatency = 200;           ///< cut-through forwarding
};

/**
 * The fabric facade (see file comment for the two modes).
 */
class Fabric
{
  public:
    struct Stats
    {
        std::uint64_t loopbackPackets = 0;
        std::uint64_t loopbackBytes = 0;
        std::uint64_t loopbackInjDropped = 0;
        std::uint64_t loopbackInjDuplicated = 0;
        std::uint64_t loopbackInjDelayed = 0;
        std::uint64_t hostPauses = 0; ///< rNPF-driven host rx pauses
    };

    /** Destination-side packet metadata, valid only while the
     *  delivery callback runs (single-threaded simulation). Always
     *  default (no CE) in legacy mode and for loopback. */
    struct RxContext
    {
        bool ecn = false;
        unsigned priority = 0;
    };

    /** Legacy single-switch mode. */
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg = {});

    /**
     * Legacy mode when @p topology_spec is empty, otherwise topology
     * mode parsed from it (net/topology.hh grammar; the spec's host
     * count must equal @p nodes). Malformed specs abort with a
     * diagnostic — a config error, not a runtime condition.
     */
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg,
           const std::string &topology_spec);

    /** Topology mode over an already-built (validated) topology. */
    Fabric(sim::EventQueue &eq, const Topology &topo);

    ~Fabric();

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    unsigned
    nodes() const
    {
        return topo_ ? topo_->hosts : static_cast<unsigned>(up_.size());
    }

    /**
     * Send @p bytes from @p src to @p dst; @p deliver runs at the
     * destination's arrival time. Class-0 traffic with a flow label
     * derived from the endpoints — transports that care pass their
     * own (the overload below).
     *
     * Loopback (src == dst) turns around below the first switch hop:
     * it costs the forwarding latency but never a wire. It still
     * polls fault::Site::Link and is accounted in stats(), so fault
     * plans and metrics see loopback traffic like any other
     * (previously it bypassed both).
     */
    void
    send(unsigned src, unsigned dst, std::size_t bytes,
         sim::EventQueue::Callback deliver)
    {
        send(src, dst, bytes, 0,
             (std::uint32_t(src) << 16) | std::uint32_t(dst),
             std::move(deliver));
    }

    /** As above with an explicit traffic class and ECMP flow label. */
    void send(unsigned src, unsigned dst, std::size_t bytes,
              unsigned priority, std::uint32_t flow,
              sim::EventQueue::Callback deliver);

    // --- record-based delivery plane (legacy mode) -------------------
    //
    // The closure path above cannot cross threads; the record path
    // carries a serializable WireRecord instead, over exactly the
    // same wire model (shared Link instances, shared fault dice,
    // same hop structure: uplink -> switch latency -> downlink). In
    // a sharded world each shard holds a *facet* of the logical
    // fabric — same node count, private links — and the switch hop
    // is where a record jumps shards: the source facet accounts the
    // uplink, the destination facet accounts the downlink. With one
    // shard (or none), the record path schedules the switch hop
    // through EventQueue::scheduleBoundary with the *same* order key
    // it would have carried across shards, which is what makes
    // 1-shard and N-shard runs execute bit-identically.

    /** Receives records addressed to (dst, kind); runs at arrival
     *  time on dst's shard. */
    using RxHandler = std::function<void(const WireRecord &)>;

    /** Register the handler for records addressed to (node, kind).
     *  One handler per key; re-binding aborts. */
    void bindRx(unsigned node, std::uint32_t kind, RxHandler h);

    /**
     * Couple this facet to @p engine: records whose destination node
     * is owned by another shard cross as BoundaryMsgs of
     * @p engineKind. @p owner_of_node maps node -> owning shard and
     * must be identical across facets. Legacy mode only.
     */
    void shardBind(sim::ShardedEngine &engine, unsigned my_shard,
                   std::vector<std::uint16_t> owner_of_node,
                   std::uint32_t engineKind = 1);

    /**
     * Send @p rec from rec.src to rec.dst (legacy mode only). The
     * registered (dst, kind) handler runs at arrival time, on dst's
     * owning shard when shardBind() is in effect. rec.src must be a
     * node this facet's shard owns.
     */
    void sendRecord(const WireRecord &rec);

    /** Lower bound on any record's src->dst latency: what a
     *  ShardedEngine coupling fabric facets may use as lookahead. */
    sim::Time
    recordLookahead() const
    {
        return cfg_.link.propagation + cfg_.switchLatency;
    }

    /** The node's transmit wire: legacy uplink, or the host NIC
     *  port's wire in topology mode. busyUntil() remains the
     *  transport pacing signal in both. */
    Link &
    uplink(unsigned node)
    {
        return topo_ ? hostUp_[node]->link() : *up_[node];
    }

    /** The node's receive wire (last hop toward the host). */
    Link &downlink(unsigned node);

    /**
     * When a packet sent from @p node right now would start
     * serializing — the transport pacing signal. Legacy mode: the
     * uplink's busyUntil(), which already carries the whole backlog
     * (legacy links occupy the wire at send() time). Topology mode:
     * the host NIC port's queue-aware ETA (Egress::txEta()), because
     * there the queue sits in front of the wire and busyUntil() alone
     * would let a transport dump its entire window into the port in
     * one tick.
     */
    sim::Time
    txEta(unsigned node)
    {
        return topo_ ? hostUp_[node]->txEta() : up_[node]->busyUntil();
    }

    /** Legacy-mode parameters (topology mode: see topology()). */
    const FabricConfig &config() const { return cfg_; }

    bool topologyMode() const { return topo_ != nullptr; }
    const Topology *topology() const { return topo_.get(); }

    unsigned switchCount() const
    {
        return static_cast<unsigned>(switches_.size());
    }
    Switch &switchAt(unsigned i) { return *switches_[i]; }

    /** The host's NIC egress port (topology mode only). */
    Egress &hostPort(unsigned node) { return *hostUp_[node]; }

    const RxContext &rx() const { return rx_; }
    const Stats &stats() const { return stats_; }

    /**
     * Host receive-side backpressure (topology mode; no-op legacy):
     * while on, the last-hop switch pauses class-0 delivery toward
     * @p node — the NIC asserting PFC while an rNPF drains its
     * receive capacity. Reference-counted so overlapping QPs on one
     * host compose; control-class traffic keeps flowing (NACKs and
     * CNPs must escape the congestion they report).
     */
    void setHostRxPause(unsigned node, bool on);

  private:
    friend class Egress;
    friend class Switch;

    void initObs();
    void buildTopology(const Topology &topo);
    void sendTopo(unsigned src, unsigned dst, std::size_t bytes,
                  unsigned priority, std::uint32_t flow,
                  sim::EventQueue::Callback deliver);
    void sendLegacy(unsigned src, unsigned dst, std::size_t bytes,
                    sim::EventQueue::Callback deliver);
    void sendLoopback(unsigned node, std::size_t bytes,
                      sim::EventQueue::Callback deliver);
    void sendRecordLoopback(const WireRecord &rec);
    /** Second wire hop of the record path: the packet left the
     *  switch; clock the downlink and dispatch at arrival. */
    void recordDownHop(const WireRecord &rec);
    void scheduleDispatch(sim::Time at, const WireRecord &rec);
    void dispatch(const WireRecord &rec);
    /** Per-source-node record sequence: the same-tick order key,
     *  identical across shard counts by construction. */
    std::uint64_t
    nextOrderKey(unsigned src)
    {
        return (std::uint64_t(src + 1) << 40) | nodeSeq_[src]++;
    }
    /** A packet finished a wire hop at @p vertex; takes ownership. */
    void arrive(unsigned vertex, sim::PoolRef pkt);
    void deliverToHost(sim::PoolRef pkt);

    sim::EventQueue &eq_;
    FabricConfig cfg_;

    // legacy mode
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;

    // record plane
    std::unordered_map<std::uint64_t, RxHandler> rxHandlers_;
    std::vector<std::uint64_t> nodeSeq_;
    sim::ShardedEngine *engine_ = nullptr;
    unsigned myShard_ = 0;
    std::uint32_t engineKind_ = 1;
    std::vector<std::uint16_t> ownerOf_; ///< node -> shard (empty: all local)

    // topology mode
    std::unique_ptr<Topology> topo_;
    std::vector<std::unique_ptr<Egress>> ports_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<Egress *> hostUp_;   ///< per host: its NIC port
    std::vector<Egress *> hostDown_; ///< per host: last-hop switch port
    std::vector<unsigned> hostPauseDepth_;

    RxContext rx_;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::net

#endif // NPF_NET_FABRIC_HH
