/**
 * @file
 * Switched fabric: N nodes star-wired through one switch (the
 * paper's InfiniBand testbed is 8 servers on a SwitchX-2). Each node
 * has a dedicated uplink and downlink, so congestion appears at the
 * receiver's downlink — the place incast shows up.
 */

#ifndef NPF_NET_FABRIC_HH
#define NPF_NET_FABRIC_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "net/link.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"

namespace npf::net {

/**
 * Slab for delivery delegates parked across a fabric's hop chain.
 * Leaked (never destroyed): closures holding refs into it live in
 * event queues whose teardown order against any one Fabric is
 * unknowable.
 */
inline sim::Pool<sim::EventQueue::Callback> &
fabricPendingPool()
{
    static auto *pool =
        new sim::Pool<sim::EventQueue::Callback>("net::Fabric.pending");
    return *pool;
}

/** Fabric parameters. */
struct FabricConfig
{
    LinkConfig link;                         ///< per-port link
    sim::Time switchLatency = 200;           ///< cut-through forwarding
};

/**
 * Output-queued single-switch fabric.
 */
class Fabric
{
  public:
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg = {})
        : eq_(eq), cfg_(cfg)
    {
        for (unsigned i = 0; i < nodes; ++i) {
            up_.push_back(std::make_unique<Link>(eq_, cfg_.link));
            down_.push_back(std::make_unique<Link>(eq_, cfg_.link));
        }
    }

    unsigned nodes() const { return static_cast<unsigned>(up_.size()); }

    /**
     * Send @p bytes from @p src to @p dst; @p deliver runs at the
     * destination's arrival time. Loopback (src == dst) bypasses the
     * wire with just the switch latency.
     *
     * @p deliver is parked in fabricPendingPool() for the journey and
     * the hop continuations carry only a sim::PoolRef: capturing the
     * full delegate inside two wrappers would overflow the
     * scheduler's inline storage and heap-allocate per packet per
     * hop. The ref's ownership semantics keep faulted hops correct —
     * a dropped continuation releases the parked slot, a duplicated
     * one clones it.
     */
    void
    send(unsigned src, unsigned dst, std::size_t bytes,
         sim::EventQueue::Callback deliver)
    {
        if (src == dst) {
            eq_.scheduleAfter(cfg_.switchLatency, std::move(deliver));
            return;
        }
        sim::PoolRef parked =
            fabricPendingPool().acquire(std::move(deliver));
        auto at_switch = [this, dst, bytes,
                          parked = std::move(parked)]() mutable {
            auto at_downlink = [this, dst, bytes,
                                parked =
                                    std::move(parked)]() mutable {
                down_[dst]->send(
                    bytes,
                    std::move(*parked.as<sim::EventQueue::Callback>()));
                parked.reset();
            };
            static_assert(
                sim::Delegate::fitsInline<decltype(at_downlink)>,
                "fabric hop continuation must stay inline (no-alloc)");
            eq_.scheduleAfter(cfg_.switchLatency,
                              std::move(at_downlink));
        };
        static_assert(sim::Delegate::fitsInline<decltype(at_switch)>,
                      "fabric hop continuation must stay inline "
                      "(no-alloc)");
        up_[src]->send(bytes, std::move(at_switch));
    }

    Link &uplink(unsigned node) { return *up_[node]; }
    Link &downlink(unsigned node) { return *down_[node]; }
    const FabricConfig &config() const { return cfg_; }

  private:
    sim::EventQueue &eq_;
    FabricConfig cfg_;
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;
};

} // namespace npf::net

#endif // NPF_NET_FABRIC_HH
