/**
 * @file
 * Switched fabric, in two modes behind one API.
 *
 * Legacy mode (the default constructor): N nodes star-wired through
 * one transparent switch — dedicated uplink/downlink per node, a
 * fixed cut-through latency, unbounded implicit queueing on the
 * links themselves. This is the paper's testbed (8 servers on a
 * SwitchX-2) and the path every existing call site rides; its event
 * sequence is pinned bit-identical by scripts/golden_digests.sha256.
 *
 * Topology mode (construct with a net::Topology): real multi-switch
 * fabrics — per-port bounded egress queues, ECMP next-hop selection,
 * ECN marking and per-priority PFC pause/resume (net/switch.hh),
 * with host uplinks modeled as queueing NIC ports that PFC can
 * pause. Destination-side metadata (CE mark, class) is published
 * through rx() for the duration of the delivery callback, which is
 * how ib::QueuePair's DCQCN notification point sees marks without
 * the fabric knowing transport framing.
 */

#ifndef NPF_NET_FABRIC_HH
#define NPF_NET_FABRIC_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/switch.hh"
#include "net/topology.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"

namespace npf::net {

/**
 * Slab for delivery delegates parked across a fabric's hop chain.
 * Leaked (never destroyed): closures holding refs into it live in
 * event queues whose teardown order against any one Fabric is
 * unknowable.
 */
inline sim::Pool<sim::EventQueue::Callback> &
fabricPendingPool()
{
    static auto *pool =
        new sim::Pool<sim::EventQueue::Callback>("net::Fabric.pending");
    return *pool;
}

/** Legacy-mode fabric parameters. */
struct FabricConfig
{
    LinkConfig link;                         ///< per-port link
    sim::Time switchLatency = 200;           ///< cut-through forwarding
};

/**
 * The fabric facade (see file comment for the two modes).
 */
class Fabric
{
  public:
    struct Stats
    {
        std::uint64_t loopbackPackets = 0;
        std::uint64_t loopbackBytes = 0;
        std::uint64_t loopbackInjDropped = 0;
        std::uint64_t loopbackInjDuplicated = 0;
        std::uint64_t loopbackInjDelayed = 0;
        std::uint64_t hostPauses = 0; ///< rNPF-driven host rx pauses
    };

    /** Destination-side packet metadata, valid only while the
     *  delivery callback runs (single-threaded simulation). Always
     *  default (no CE) in legacy mode and for loopback. */
    struct RxContext
    {
        bool ecn = false;
        unsigned priority = 0;
    };

    /** Legacy single-switch mode. */
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg = {});

    /**
     * Legacy mode when @p topology_spec is empty, otherwise topology
     * mode parsed from it (net/topology.hh grammar; the spec's host
     * count must equal @p nodes). Malformed specs abort with a
     * diagnostic — a config error, not a runtime condition.
     */
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg,
           const std::string &topology_spec);

    /** Topology mode over an already-built (validated) topology. */
    Fabric(sim::EventQueue &eq, const Topology &topo);

    ~Fabric();

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    unsigned
    nodes() const
    {
        return topo_ ? topo_->hosts : static_cast<unsigned>(up_.size());
    }

    /**
     * Send @p bytes from @p src to @p dst; @p deliver runs at the
     * destination's arrival time. Class-0 traffic with a flow label
     * derived from the endpoints — transports that care pass their
     * own (the overload below).
     *
     * Loopback (src == dst) turns around below the first switch hop:
     * it costs the forwarding latency but never a wire. It still
     * polls fault::Site::Link and is accounted in stats(), so fault
     * plans and metrics see loopback traffic like any other
     * (previously it bypassed both).
     */
    void
    send(unsigned src, unsigned dst, std::size_t bytes,
         sim::EventQueue::Callback deliver)
    {
        send(src, dst, bytes, 0,
             (std::uint32_t(src) << 16) | std::uint32_t(dst),
             std::move(deliver));
    }

    /** As above with an explicit traffic class and ECMP flow label. */
    void send(unsigned src, unsigned dst, std::size_t bytes,
              unsigned priority, std::uint32_t flow,
              sim::EventQueue::Callback deliver);

    /** The node's transmit wire: legacy uplink, or the host NIC
     *  port's wire in topology mode. busyUntil() remains the
     *  transport pacing signal in both. */
    Link &
    uplink(unsigned node)
    {
        return topo_ ? hostUp_[node]->link() : *up_[node];
    }

    /** The node's receive wire (last hop toward the host). */
    Link &downlink(unsigned node);

    /**
     * When a packet sent from @p node right now would start
     * serializing — the transport pacing signal. Legacy mode: the
     * uplink's busyUntil(), which already carries the whole backlog
     * (legacy links occupy the wire at send() time). Topology mode:
     * the host NIC port's queue-aware ETA (Egress::txEta()), because
     * there the queue sits in front of the wire and busyUntil() alone
     * would let a transport dump its entire window into the port in
     * one tick.
     */
    sim::Time
    txEta(unsigned node)
    {
        return topo_ ? hostUp_[node]->txEta() : up_[node]->busyUntil();
    }

    /** Legacy-mode parameters (topology mode: see topology()). */
    const FabricConfig &config() const { return cfg_; }

    bool topologyMode() const { return topo_ != nullptr; }
    const Topology *topology() const { return topo_.get(); }

    unsigned switchCount() const
    {
        return static_cast<unsigned>(switches_.size());
    }
    Switch &switchAt(unsigned i) { return *switches_[i]; }

    /** The host's NIC egress port (topology mode only). */
    Egress &hostPort(unsigned node) { return *hostUp_[node]; }

    const RxContext &rx() const { return rx_; }
    const Stats &stats() const { return stats_; }

    /**
     * Host receive-side backpressure (topology mode; no-op legacy):
     * while on, the last-hop switch pauses class-0 delivery toward
     * @p node — the NIC asserting PFC while an rNPF drains its
     * receive capacity. Reference-counted so overlapping QPs on one
     * host compose; control-class traffic keeps flowing (NACKs and
     * CNPs must escape the congestion they report).
     */
    void setHostRxPause(unsigned node, bool on);

  private:
    friend class Egress;
    friend class Switch;

    void initObs();
    void buildTopology(const Topology &topo);
    void sendTopo(unsigned src, unsigned dst, std::size_t bytes,
                  unsigned priority, std::uint32_t flow,
                  sim::EventQueue::Callback deliver);
    void sendLegacy(unsigned src, unsigned dst, std::size_t bytes,
                    sim::EventQueue::Callback deliver);
    void sendLoopback(unsigned node, std::size_t bytes,
                      sim::EventQueue::Callback deliver);
    /** A packet finished a wire hop at @p vertex; takes ownership. */
    void arrive(unsigned vertex, sim::PoolRef pkt);
    void deliverToHost(sim::PoolRef pkt);

    sim::EventQueue &eq_;
    FabricConfig cfg_;

    // legacy mode
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;

    // topology mode
    std::unique_ptr<Topology> topo_;
    std::vector<std::unique_ptr<Egress>> ports_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<Egress *> hostUp_;   ///< per host: its NIC port
    std::vector<Egress *> hostDown_; ///< per host: last-hop switch port
    std::vector<unsigned> hostPauseDepth_;

    RxContext rx_;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::net

#endif // NPF_NET_FABRIC_HH
