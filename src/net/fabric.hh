/**
 * @file
 * Switched fabric: N nodes star-wired through one switch (the
 * paper's InfiniBand testbed is 8 servers on a SwitchX-2). Each node
 * has a dedicated uplink and downlink, so congestion appears at the
 * receiver's downlink — the place incast shows up.
 */

#ifndef NPF_NET_FABRIC_HH
#define NPF_NET_FABRIC_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "net/link.hh"
#include "sim/event_queue.hh"

namespace npf::net {

/** Fabric parameters. */
struct FabricConfig
{
    LinkConfig link;                         ///< per-port link
    sim::Time switchLatency = 200;           ///< cut-through forwarding
};

/**
 * Output-queued single-switch fabric.
 */
class Fabric
{
  public:
    Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg = {})
        : eq_(eq), cfg_(cfg)
    {
        for (unsigned i = 0; i < nodes; ++i) {
            up_.push_back(std::make_unique<Link>(eq_, cfg_.link));
            down_.push_back(std::make_unique<Link>(eq_, cfg_.link));
        }
    }

    unsigned nodes() const { return static_cast<unsigned>(up_.size()); }

    /**
     * Send @p bytes from @p src to @p dst; @p deliver runs at the
     * destination's arrival time. Loopback (src == dst) bypasses the
     * wire with just the switch latency. The hop continuations
     * capture @p deliver by move: an inline-stored delegate is
     * relocated (never reallocated), so a packet crossing
     * uplink -> switch -> downlink costs at most one allocation for
     * the whole journey instead of one std::function per hop.
     */
    void
    send(unsigned src, unsigned dst, std::size_t bytes,
         sim::EventQueue::Callback deliver)
    {
        if (src == dst) {
            eq_.scheduleAfter(cfg_.switchLatency, std::move(deliver));
            return;
        }
        up_[src]->send(bytes, [this, dst, bytes,
                               deliver = std::move(deliver)]() mutable {
            eq_.scheduleAfter(cfg_.switchLatency,
                              [this, dst, bytes,
                               deliver = std::move(deliver)]() mutable {
                                  down_[dst]->send(bytes,
                                                   std::move(deliver));
                              });
        });
    }

    Link &uplink(unsigned node) { return *up_[node]; }
    Link &downlink(unsigned node) { return *down_[node]; }
    const FabricConfig &config() const { return cfg_; }

  private:
    sim::EventQueue &eq_;
    FabricConfig cfg_;
    std::vector<std::unique_ptr<Link>> up_;
    std::vector<std::unique_ptr<Link>> down_;
};

} // namespace npf::net

#endif // NPF_NET_FABRIC_HH
