#include "net/switch.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "net/fabric.hh"
#include "obs/flow_tracer.hh"

namespace npf::net {

// --- Egress -----------------------------------------------------------

Egress::Egress(sim::EventQueue &eq, Fabric &fabric, unsigned to,
               LinkConfig link_cfg, const SwitchConfig &cfg,
               Switch *owner)
    : eq_(eq), fabric_(fabric), to_(to), cfg_(cfg), owner_(owner),
      link_(eq, link_cfg)
{
    obs_.init("net.port");
    obs_.counter("tx_packets", &stats_.txPackets);
    obs_.counter("queued_bytes", &stats_.queuedBytes);
    obs_.counter("cap_dropped", &stats_.capDropped);
    obs_.counter("down_dropped", &stats_.downDropped);
    obs_.counter("pause_rx", &stats_.pauseRx);
    obs_.counter("resume_rx", &stats_.resumeRx);
    obs_.gauge("queue_bytes",
               [this] { return double(queueBytesTotal()); });
}

bool
Egress::enqueue(sim::PoolRef ref)
{
    FabricPacket *pkt = ref.as<FabricPacket>();
    unsigned prio = pkt->priority;
    if (downUntil_ > eq_.now()) {
        ++stats_.downDropped;
        return false; // ref dies here, releasing the descriptor
    }
    if (cfg_.queueCapBytes != 0 &&
        queueBytes_[prio] + pkt->bytes > cfg_.queueCapBytes) {
        ++stats_.capDropped;
        return false;
    }
    queueBytes_[prio] += pkt->bytes;
    queueWireBytes_ += pkt->bytes + link_.config().perPacketOverheadBytes;
    stats_.queuedBytes += pkt->bytes;
    if (owner_ != nullptr) {
        owner_->noteQueueDepth(queueBytes_[prio]);
        if (cfg_.ecn.enabled && prio != kControlPriority && !pkt->ecn &&
            queueBytes_[prio] >= cfg_.ecn.markBytes) {
            pkt->ecn = true;
            owner_->noteEcnMark();
        }
        if (cfg_.pfc.enabled && !xoff_[prio] &&
            queueBytes_[prio] >= cfg_.pfc.xoffBytes) {
            xoff_[prio] = true;
            owner_->queueXoffChanged(prio, true);
        }
    }
    q_[prio].push_back(std::move(ref));
    pump();
    return true;
}

sim::Time
Egress::txEta() const
{
    sim::Time eta = std::max(
        {eq_.now(), link_.busyUntil(), downUntil_, frozenUntil_});
    if (queueWireBytes_ != 0)
        eta += sim::fromSeconds(double(queueWireBytes_) * 8.0 /
                                link_.config().bandwidthBitsPerSec);
    return eta;
}

void
Egress::setPaused(unsigned priority, bool on)
{
    if (on) {
        ++pauseCount_[priority];
        ++stats_.pauseRx;
        return;
    }
    if (pauseCount_[priority] == 0)
        return; // stray resume (a fault storm overlapping real PFC)
    ++stats_.resumeRx;
    if (--pauseCount_[priority] == 0)
        pump();
}

void
Egress::flapUntil(sim::Time until)
{
    downUntil_ = std::max(downUntil_, until);
    pump();
}

void
Egress::stallUntil(sim::Time until)
{
    frozenUntil_ = std::max(frozenUntil_, until);
    pump();
}

void
Egress::maybeXon(unsigned priority)
{
    if (owner_ != nullptr && xoff_[priority] &&
        queueBytes_[priority] <= cfg_.pfc.xonBytes) {
        xoff_[priority] = false;
        owner_->queueXoffChanged(priority, false);
    }
}

void
Egress::schedulePump(sim::Time when)
{
    if (pumpScheduled_)
        return;
    pumpScheduled_ = true;
    eq_.schedule(when, [this] {
        pumpScheduled_ = false;
        pump();
    }, "net.port.pump");
}

void
Egress::pump()
{
    if (pumpScheduled_)
        return; // a pending pump will get here
    sim::Time now = eq_.now();
    sim::Time gate = std::max(
        {downUntil_, frozenUntil_, link_.busyUntil()});
    if (gate > now) {
        for (unsigned p = 0; p < kPriorities; ++p)
            if (!q_[p].empty()) {
                schedulePump(gate);
                return;
            }
        return;
    }
    // Strict priority, highest class first; within a class FIFO. A
    // head packet still inside its forwarding latency doesn't block
    // other classes.
    sim::Time earliest = 0;
    for (int p = int(kPriorities) - 1; p >= 0; --p) {
        if (q_[p].empty() || paused(unsigned(p)))
            continue;
        FabricPacket *pkt = q_[p].front().as<FabricPacket>();
        if (pkt->readyAt > now) {
            if (earliest == 0 || pkt->readyAt < earliest)
                earliest = pkt->readyAt;
            continue;
        }
        sim::PoolRef ref = std::move(q_[p].front());
        q_[p].pop_front();
        queueBytes_[p] -= pkt->bytes;
        queueWireBytes_ -=
            pkt->bytes + link_.config().perPacketOverheadBytes;
        maybeXon(unsigned(p));
        ++stats_.txPackets;
        Fabric *fab = &fabric_;
        unsigned to = to_;
        // One wire hop; the descriptor rides inside the delivery
        // closure as an owning ref, so a fault-dropped hop releases
        // it and a duplicated hop clones it (net/packet.hh).
        auto arrive = [fab, to, ref = std::move(ref)]() mutable {
            fab->arrive(to, std::move(ref));
        };
        static_assert(sim::Delegate::fitsInline<decltype(arrive)>,
                      "fabric hop closure must stay inline (no-alloc)");
        link_.send(pkt->bytes, std::move(arrive));
        schedulePump(link_.busyUntil());
        return;
    }
    if (earliest > now)
        schedulePump(earliest);
}

// --- Switch -----------------------------------------------------------

Switch::Switch(sim::EventQueue &eq, Fabric &fabric, unsigned vertex,
               const SwitchConfig &cfg)
    : eq_(eq), fabric_(fabric), vertex_(vertex), cfg_(cfg)
{
    obs_.init("net.switch");
    obs_.counter("rx_packets", &stats_.rxPackets);
    obs_.counter("ecn_marked", &stats_.ecnMarked);
    obs_.counter("pause_tx", &stats_.pauseTx);
    obs_.counter("resume_tx", &stats_.resumeTx);
    obs_.counter("inj_dropped", &stats_.injDropped);
    obs_.counter("inj_stalls", &stats_.injStalls);
    obs_.counter("inj_flaps", &stats_.injFlaps);
    obs_.counter("inj_pause_storms", &stats_.injPauseStorms);
    obs_.counter("queue_hwm_bytes", &stats_.queueHwmBytes);
}

void
Switch::receive(sim::PoolRef ref)
{
    ++stats_.rxPackets;
    FabricPacket *pkt = ref.as<FabricPacket>();
    pkt->readyAt = eq_.now() + cfg_.forwardLatency;
    Egress *out = route(*pkt);

    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::Switch)) {
            switch (d->action) {
              case fault::Action::Drop:
                // Silent discard inside the switching core; the
                // transport's loss recovery picks up the pieces.
                ++stats_.injDropped;
                return;
              case fault::Action::Stall:
                // The chosen egress queue freezes (scheduler hiccup);
                // the packet itself still queues behind the stall.
                ++stats_.injStalls;
                out->stallUntil(eq_.now() + d->delay);
                break;
              case fault::Action::Flap:
                // The egress port drops carrier: arrivals (including
                // this one) are lost until it comes back.
                ++stats_.injFlaps;
                out->flapUntil(eq_.now() + d->delay);
                break;
              case fault::Action::Pause:
                // Forced PFC storm: pause every upstream port on the
                // data class for the configured window, regardless of
                // queue state.
                ++stats_.injPauseStorms;
                pauseUpstream(0, true);
                eq_.scheduleAfter(d->delay, [this] {
                    pauseUpstream(0, false);
                }, "fault.pfc_storm");
                break;
              default:
                break;
            }
        }
    }
    out->enqueue(std::move(ref));
}

Egress *
Switch::route(const FabricPacket &pkt)
{
    const std::vector<Egress *> &cands = routes_[pkt.dst];
    if (cands.size() == 1)
        return cands[0];
    // Deterministic ECMP: hash the flow tuple with the switch id
    // mixed in, so consecutive hops don't all make the same choice
    // (the classic correlated-ECMP pitfall). splitmix64 finalizer.
    std::uint64_t x = (std::uint64_t(vertex_) << 40) ^
                      (std::uint64_t(pkt.src) << 28) ^
                      (std::uint64_t(pkt.dst) << 16) ^
                      (std::uint64_t(pkt.priority) << 8) ^ pkt.flow;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return cands[x % cands.size()];
}

void
Switch::pauseUpstream(unsigned priority, bool on)
{
    obs::FlowTracer &tr = obs::tracer();
    for (Egress *up : upstream_) {
        if (on)
            ++stats_.pauseTx;
        else
            ++stats_.resumeTx;
        if (tr.active())
            tr.instant(obs::Track::Net, "pfc",
                       on ? "pfc.pause" : "pfc.resume");
        // A pause frame crosses only the reverse wire's propagation
        // delay (tiny frame; serialization negligible).
        auto apply = [up, priority, on] { up->setPaused(priority, on); };
        static_assert(sim::Delegate::fitsInline<decltype(apply)>,
                      "pfc frame closure must stay inline (no-alloc)");
        eq_.scheduleAfter(up->link().config().propagation,
                          std::move(apply), "net.pfc");
    }
}

void
Switch::queueXoffChanged(unsigned priority, bool on)
{
    // Pause frames go out on the first queue to cross XOFF and
    // resume only when the last one recrosses XON.
    if (on) {
        if (xoffCount_[priority]++ == 0)
            pauseUpstream(priority, true);
    } else {
        if (--xoffCount_[priority] == 0)
            pauseUpstream(priority, false);
    }
}

void
Switch::noteEcnMark()
{
    ++stats_.ecnMarked;
    obs::FlowTracer &tr = obs::tracer();
    if (tr.active())
        tr.instant(obs::Track::Net, "ecn", "ecn.mark");
}

} // namespace npf::net
