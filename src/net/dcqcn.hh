/**
 * @file
 * DCQCN-style end-host rate limiting (Zhu et al., SIGCOMM'15), the
 * reaction-point half of the congestion loop: switches mark CE above
 * a queue threshold (net/pfc.hh), the notification point echoes
 * marks back as CNPs, and this rate machine cuts the sender's pacing
 * rate multiplicatively on each CNP and recovers it through fast
 * recovery then additive increase.
 *
 * The machine is pure state + arithmetic; the owner (ib::QueuePair)
 * drives it from its own timers and applies sendGap() to its transmit
 * pacing. Once recovered to line rate it reports inactive, so owners
 * can stop their timers — under a run-to-empty event loop a recurring
 * timer that never stops would keep the simulation alive forever.
 *
 * Simplifications versus the paper, documented in docs/NETWORK.md:
 * one rate-increase timer (no byte counter), no hyper increase stage.
 */

#ifndef NPF_NET_DCQCN_HH
#define NPF_NET_DCQCN_HH

#include <algorithm>
#include <cstddef>

#include "sim/time.hh"

namespace npf::net {

/** DCQCN reaction- and notification-point parameters. */
struct DcqcnConfig
{
    bool enabled = false;
    /** Line rate the machine recovers toward; 0 = take the host
     *  uplink's configured bandwidth. */
    double lineRateBps = 0.0;
    /** Floor the multiplicative decrease never cuts below. */
    double minRateBps = 100e6;
    /** EWMA gain g for the congestion estimate alpha. */
    double g = 1.0 / 16.0;
    /** Additive-increase step applied to the target rate per round
     *  once fast recovery ends. */
    double aiRateBps = 2.5e9;
    /** Rounds of fast recovery (Rc converges to Rt) before additive
     *  increase starts raising Rt. */
    unsigned fastRecoveryRounds = 3;
    /** Alpha-decay timer period (reaction point). */
    sim::Time alphaTimer = sim::fromMicroseconds(55);
    /** Rate-increase timer period (reaction point). */
    sim::Time rateTimer = sim::fromMicroseconds(300);
    /** Notification point: minimum spacing between CNPs per flow. */
    sim::Time cnpMinInterval = sim::fromMicroseconds(50);
};

/**
 * Reaction-point rate state: current rate Rc, target rate Rt and the
 * congestion estimate alpha.
 */
class DcqcnRate
{
  public:
    void
    init(const DcqcnConfig &cfg, double lineRateBps)
    {
        cfg_ = cfg;
        line_ = cfg.lineRateBps > 0.0 ? cfg.lineRateBps : lineRateBps;
        rc_ = rt_ = line_;
        alpha_ = 0.0;
        incRounds_ = 0;
        limiting_ = false;
    }

    /** True while Rc is below line rate and pacing must apply. */
    bool limiting() const { return limiting_; }

    double rateBps() const { return rc_; }
    double alpha() const { return alpha_; }

    /** CNP arrived: cut Rc multiplicatively, restart recovery. */
    void
    onCnp()
    {
        alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
        rt_ = rc_;
        rc_ = std::max(cfg_.minRateBps, rc_ * (1.0 - alpha_ / 2.0));
        incRounds_ = 0;
        limiting_ = true;
    }

    /** Alpha-decay round. @return true while decay should continue. */
    bool
    decayAlpha()
    {
        alpha_ *= 1.0 - cfg_.g;
        return limiting_ && alpha_ > 1e-4;
    }

    /**
     * Rate-increase round: fast recovery halves the gap to Rt; after
     * fastRecoveryRounds, Rt itself climbs additively. @return true
     * while still below line rate (owner keeps its timer armed);
     * false once fully recovered (machine goes inactive).
     */
    bool
    increase()
    {
        if (!limiting_)
            return false;
        ++incRounds_;
        if (incRounds_ > cfg_.fastRecoveryRounds)
            rt_ = std::min(line_, rt_ + cfg_.aiRateBps);
        rc_ = (rt_ + rc_) / 2.0;
        if (rc_ >= line_ * 0.999) {
            rc_ = rt_ = line_;
            alpha_ = 0.0;
            limiting_ = false;
            return false;
        }
        return true;
    }

    /** Pacing gap for @p bytes at the current rate. */
    sim::Time
    sendGap(std::size_t bytes) const
    {
        return sim::fromSeconds(double(bytes) * 8.0 / rc_);
    }

  private:
    DcqcnConfig cfg_;
    double line_ = 0.0;
    double rc_ = 0.0;    ///< current (enforced) rate
    double rt_ = 0.0;    ///< target rate recovery climbs toward
    double alpha_ = 0.0; ///< congestion estimate
    unsigned incRounds_ = 0;
    bool limiting_ = false;
};

} // namespace npf::net

#endif // NPF_NET_DCQCN_HH
