/**
 * @file
 * The switched-fabric runtime: egress ports with per-priority
 * bounded queues, output-queued switches with ECMP next-hop
 * selection, ECN marking and per-priority PFC pause/resume
 * propagating hop by hop (thresholds in net/pfc.hh).
 *
 * Object graph: the owning Fabric instantiates one Egress per
 * directed edge end (a host has one, its uplink; a switch has one
 * per neighbor) and one Switch per switch vertex. Packets travel as
 * pooled FabricPacket descriptors (net/packet.hh); an Egress pump
 * transmits exactly one packet per invocation and re-arms at the
 * wire's busyUntil(), so a pause frame landing between packets takes
 * effect at the next packet boundary — the granularity real PFC
 * gives you.
 *
 * Steady state is allocation-free: descriptors come from a slab,
 * queues are grow-once rings, and every closure crossing the event
 * queue is static_asserted to fit the scheduler's inline storage.
 */

#ifndef NPF_NET_SWITCH_HH
#define NPF_NET_SWITCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hh"
#include "net/packet.hh"
#include "net/pfc.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/ring_deque.hh"

namespace npf::net {

class Fabric;
class Switch;

/**
 * One egress port: a wire plus per-priority queues feeding it.
 * Strict-priority scheduling, highest class first. @p owner is the
 * switch whose PFC thresholds govern these queues (nullptr for host
 * uplink ports — hosts queue but never assert pause or mark ECN).
 */
class Egress
{
  public:
    struct Stats
    {
        std::uint64_t txPackets = 0;
        std::uint64_t queuedBytes = 0;  ///< cumulative bytes enqueued
        std::uint64_t capDropped = 0;   ///< hard queue-cap drops
        std::uint64_t downDropped = 0;  ///< port-flap drops
        std::uint64_t pauseRx = 0;      ///< pause frames honored
        std::uint64_t resumeRx = 0;
    };

    Egress(sim::EventQueue &eq, Fabric &fabric, unsigned to,
           LinkConfig link_cfg, const SwitchConfig &cfg, Switch *owner);

    /**
     * Queue one packet; takes ownership. Applies the cap, ECN mark
     * and XOFF threshold, then pumps. @return false when the packet
     * was dropped (cap exceeded or port down).
     */
    bool enqueue(sim::PoolRef pkt);

    /** PFC pause/resume for @p priority, reference-counted so
     *  overlapping sources (downstream PFC, fault storms, host rNPF
     *  backpressure) compose. */
    void setPaused(unsigned priority, bool on);

    /** Fault actions: port down / queue frozen until @p until. */
    void flapUntil(sim::Time until);
    void stallUntil(sim::Time until);

    /**
     * When a packet handed to this port right now would reach the
     * wire: the wire's busyUntil plus the serialization time of
     * everything already queued. This is the transport pacing signal
     * in topology mode — legacy links occupy the wire eagerly at
     * send(), so busyUntil() alone carried the backlog; a queueing
     * port must fold its queue depth in or senders dump their whole
     * window into it at once and end-host rate control (DCQCN) never
     * touches the offered load. Deliberately ignores PFC pause state:
     * a paused port's ETA is unknowable, and underestimating it just
     * means the sender queues a little — bounded by the pacing loop
     * re-reading the (now deeper) queue each packet.
     */
    sim::Time txEta() const;

    Link &link() { return link_; }
    unsigned dest() const { return to_; }
    bool paused(unsigned priority) const
    {
        return pauseCount_[priority] > 0;
    }
    std::size_t queueBytes(unsigned priority) const
    {
        return queueBytes_[priority];
    }
    std::size_t
    queueBytesTotal() const
    {
        std::size_t total = 0;
        for (unsigned p = 0; p < kPriorities; ++p)
            total += queueBytes_[p];
        return total;
    }
    const Stats &stats() const { return stats_; }

  private:
    friend class Switch;

    void pump();
    void schedulePump(sim::Time when);
    void maybeXon(unsigned priority);

    sim::EventQueue &eq_;
    Fabric &fabric_;
    unsigned to_; ///< vertex this port's wire terminates at
    const SwitchConfig &cfg_;
    Switch *owner_; ///< nullptr for host uplinks
    Link link_;
    sim::RingDeque<sim::PoolRef> q_[kPriorities];
    std::size_t queueBytes_[kPriorities] = {};
    std::size_t queueWireBytes_ = 0; ///< queued payload + framing
    unsigned pauseCount_[kPriorities] = {};
    bool xoff_[kPriorities] = {}; ///< this queue asserted XOFF
    bool pumpScheduled_ = false;
    sim::Time downUntil_ = 0;
    sim::Time frozenUntil_ = 0;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

/**
 * One output-queued switch: routes arrivals to an egress port by
 * ECMP flow hash, and runs the PFC control loop against every
 * upstream port feeding it.
 */
class Switch
{
  public:
    struct Stats
    {
        std::uint64_t rxPackets = 0;
        std::uint64_t ecnMarked = 0;
        std::uint64_t pauseTx = 0;   ///< pause frames sent upstream
        std::uint64_t resumeTx = 0;
        std::uint64_t injDropped = 0; ///< fault-injected drops
        std::uint64_t injStalls = 0;
        std::uint64_t injFlaps = 0;
        std::uint64_t injPauseStorms = 0;
        std::uint64_t queueHwmBytes = 0; ///< deepest egress queue seen
    };

    Switch(sim::EventQueue &eq, Fabric &fabric, unsigned vertex,
           const SwitchConfig &cfg);

    /** Wiring, done once by the Fabric after all ports exist. */
    void addEgress(Egress *port) { egress_.push_back(port); }
    void addUpstream(Egress *port) { upstream_.push_back(port); }
    void setRoutes(std::vector<std::vector<Egress *>> routes)
    {
        routes_ = std::move(routes);
    }

    /** One packet arrived on some ingress wire; takes ownership. */
    void receive(sim::PoolRef pkt);

    /** PFC: pause/resume @p priority on every upstream transmitter
     *  (one pause frame each, delivered after that wire's
     *  propagation delay). */
    void pauseUpstream(unsigned priority, bool on);

    /** A queue crossed XOFF (on) or XON (off); pause frames go out
     *  on 0 -> 1 and 1 -> 0 transitions of the per-priority count. */
    void queueXoffChanged(unsigned priority, bool on);

    void noteQueueDepth(std::size_t bytes)
    {
        if (bytes > stats_.queueHwmBytes)
            stats_.queueHwmBytes = bytes;
    }

    /** An egress queue marked CE on an enqueued packet. */
    void noteEcnMark();

    unsigned vertex() const { return vertex_; }
    const SwitchConfig &config() const { return cfg_; }
    const Stats &stats() const { return stats_; }
    const std::vector<Egress *> &egressPorts() const { return egress_; }

  private:
    Egress *route(const FabricPacket &pkt);

    sim::EventQueue &eq_;
    Fabric &fabric_;
    unsigned vertex_;
    SwitchConfig cfg_;
    std::vector<Egress *> egress_;   ///< this switch's ports
    std::vector<Egress *> upstream_; ///< ports transmitting toward us
    std::vector<std::vector<Egress *>> routes_; ///< [dst host] -> ECMP set
    unsigned xoffCount_[kPriorities] = {};
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::net

#endif // NPF_NET_SWITCH_HH
