/**
 * @file
 * Lossless-Ethernet flow-control parameters: per-priority PFC
 * (802.1Qbb pause/resume with XOFF/XON thresholds) and ECN marking
 * (RFC 3168 CE above a queue threshold), applied per switch egress
 * queue. Modeled after the PFC + RCM OMNeT++ RoCEv2 work (PAPERS.md),
 * with one simplification documented in docs/NETWORK.md: thresholds
 * watch the *egress* queue of an output-queued switch rather than
 * per-ingress counters.
 */

#ifndef NPF_NET_PFC_HH
#define NPF_NET_PFC_HH

#include <cstddef>

#include "sim/time.hh"

namespace npf::net {

/**
 * Traffic classes carried end to end. Class 0 is bulk data; the top
 * class is reserved for transport control (ACKs, NACKs, CNPs) so
 * congestion notifications escape the queues they describe — the
 * same reason DCQCN deployments put CNPs in their own priority.
 */
constexpr unsigned kPriorities = 2;
constexpr unsigned kControlPriority = kPriorities - 1;

/** ECN marking at a switch egress queue. */
struct EcnConfig
{
    bool enabled = false;
    /** Mark CE on packets enqueued while the queue holds at least
     *  this many bytes (deterministic threshold, not RED). */
    std::size_t markBytes = 64 * 1024;
};

/** Per-priority PFC on a switch egress queue. */
struct PfcConfig
{
    bool enabled = false;
    /** Queue depth at which the switch pauses all upstream ports. */
    std::size_t xoffBytes = 128 * 1024;
    /** Queue depth at which it resumes them (must be < xoffBytes). */
    std::size_t xonBytes = 64 * 1024;
};

/** One switch's forwarding and queuing parameters. */
struct SwitchConfig
{
    /** Cut-through forwarding latency, arrival to egress-eligible. */
    sim::Time forwardLatency = 200;
    /**
     * Hard cap per (egress port, priority) queue, in payload bytes;
     * arrivals beyond it are dropped (counted). 0 = unbounded. With
     * PFC enabled and xoffBytes comfortably below the cap, the cap
     * is headroom for in-flight traffic and never fires.
     */
    std::size_t queueCapBytes = 512 * 1024;
    EcnConfig ecn;
    PfcConfig pfc;
};

} // namespace npf::net

#endif // NPF_NET_PFC_HH
