/**
 * @file
 * Fabric topology description: hosts and switches joined by
 * bidirectional edges, built programmatically (star, leaf-spine with
 * configurable oversubscription) or parsed from a one-line spec in
 * the WorkloadSpec idiom (docs/NETWORK.md):
 *
 *   topo  := kind [':' key '=' value (',' key '=' value)*]
 *   kind  := 'star' | 'leafspine' | 'edges'
 *
 *   star      hosts=N
 *   leafspine hosts=N,leaves=L,spines=S[,ovs=F]
 *   edges     links=h0-s0+h1-s0+s0-s1+...   (hN = host, sN = switch)
 *
 *   common keys: bw=40g prop=500ns overhead=38 fwd=200ns
 *                queue=512k ecn=64k xoff=128k xon=64k
 *
 * Bandwidths take k/m/g suffixes (decimal bits/sec), byte sizes take
 * k/m (binary), times take ns/us/ms/s. ecn=0 disables marking;
 * xoff=0 disables PFC. leaf-spine ovs=F divides the leaf-to-spine
 * uplink bandwidth so the fabric is F:1 oversubscribed (F=1, the
 * default, is non-blocking).
 *
 * Vertex ids: hosts are [0, hosts), switches [hosts, hosts+switches).
 * Every host must attach to exactly one switch (its NIC port).
 */

#ifndef NPF_NET_TOPOLOGY_HH
#define NPF_NET_TOPOLOGY_HH

#include <optional>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/pfc.hh"

namespace npf::net {

/** A parsed, validated fabric topology. */
struct Topology
{
    /** One bidirectional cable between vertices @p a and @p b. */
    struct Edge
    {
        unsigned a = 0;
        unsigned b = 0;
        LinkConfig link;
    };

    unsigned hosts = 0;
    unsigned switches = 0;
    std::vector<Edge> edges;
    SwitchConfig switchCfg;  ///< uniform across switches
    LinkConfig defaultLink;  ///< used where an edge has no override
    std::string spec;        ///< original text, for echoing

    unsigned vertices() const { return hosts + switches; }
    bool isHost(unsigned v) const { return v < hosts; }

    /** N hosts star-wired through one switch. */
    static Topology star(unsigned hosts, LinkConfig link = {},
                         SwitchConfig sw = {});

    /**
     * Two-level folded Clos: hosts spread in contiguous blocks over
     * @p leaves leaf switches, every leaf wired to every spine.
     * @p oversubscription divides the uplink bandwidth (1.0 =
     * non-blocking).
     */
    static Topology leafSpine(unsigned hosts, unsigned leaves,
                              unsigned spines,
                              double oversubscription = 1.0,
                              LinkConfig link = {}, SwitchConfig sw = {});

    /**
     * Parse @p text (grammar above). Returns nullopt on a malformed
     * spec and, when @p error is non-null, stores a diagnostic.
     */
    static std::optional<Topology> parse(const std::string &text,
                                         std::string *error = nullptr);

    /**
     * Structural checks: host degree exactly 1, edges in range, the
     * graph connected, XON below XOFF. parse() and the builders
     * always return validated topologies; hand-rolled ones should
     * call this before handing the topology to a Fabric.
     */
    bool validate(std::string *error = nullptr) const;

    /**
     * Shortest-path next hops: result[v][d] lists the neighbors of
     * vertex @p v that lie on a shortest path toward destination
     * host @p d, in ascending vertex order (so ECMP choice is
     * deterministic). Host vertices list their one attachment.
     */
    std::vector<std::vector<std::vector<unsigned>>> routes() const;
};

} // namespace npf::net

#endif // NPF_NET_TOPOLOGY_HH
