#include "net/fabric.hh"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "fault/fault.hh"

namespace npf::net {

Fabric::Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg)
    : eq_(eq), cfg_(cfg)
{
    for (unsigned i = 0; i < nodes; ++i) {
        up_.push_back(std::make_unique<Link>(eq_, cfg_.link));
        down_.push_back(std::make_unique<Link>(eq_, cfg_.link));
    }
    nodeSeq_.assign(nodes, 0);
    initObs();
}

Fabric::Fabric(sim::EventQueue &eq, unsigned nodes, FabricConfig cfg,
               const std::string &topology_spec)
    : eq_(eq), cfg_(cfg)
{
    nodeSeq_.assign(nodes, 0);
    if (topology_spec.empty()) {
        for (unsigned i = 0; i < nodes; ++i) {
            up_.push_back(std::make_unique<Link>(eq_, cfg_.link));
            down_.push_back(std::make_unique<Link>(eq_, cfg_.link));
        }
    } else {
        std::string err;
        auto topo = Topology::parse(topology_spec, &err);
        if (!topo) {
            std::fprintf(stderr, "Fabric: %s\n", err.c_str());
            std::abort();
        }
        if (topo->hosts != nodes) {
            std::fprintf(stderr,
                         "Fabric: spec has %u hosts, caller wants %u\n",
                         topo->hosts, nodes);
            std::abort();
        }
        buildTopology(*topo);
    }
    initObs();
}

Fabric::Fabric(sim::EventQueue &eq, const Topology &topo) : eq_(eq)
{
    std::string err;
    if (!topo.validate(&err)) {
        std::fprintf(stderr, "Fabric: %s\n", err.c_str());
        std::abort();
    }
    buildTopology(topo);
    initObs();
}

Fabric::~Fabric() = default;

void
Fabric::initObs()
{
    obs_.init("net.fabric");
    obs_.counter("loopback_packets", &stats_.loopbackPackets);
    obs_.counter("loopback_bytes", &stats_.loopbackBytes);
    obs_.counter("loopback_inj_dropped", &stats_.loopbackInjDropped);
    obs_.counter("loopback_inj_duplicated",
                 &stats_.loopbackInjDuplicated);
    obs_.counter("loopback_inj_delayed", &stats_.loopbackInjDelayed);
    obs_.counter("host_pauses", &stats_.hostPauses);
}

void
Fabric::buildTopology(const Topology &topo)
{
    nodeSeq_.assign(topo.hosts, 0);
    topo_ = std::make_unique<Topology>(topo);
    const Topology &t = *topo_;

    switches_.reserve(t.switches);
    for (unsigned s = 0; s < t.switches; ++s)
        switches_.push_back(std::make_unique<Switch>(
            eq_, *this, t.hosts + s, t.switchCfg));
    hostUp_.assign(t.hosts, nullptr);
    hostDown_.assign(t.hosts, nullptr);
    hostPauseDepth_.assign(t.hosts, 0);

    // One egress port per directed edge end.
    std::map<std::pair<unsigned, unsigned>, Egress *> port_of;
    auto make_port = [&](unsigned from, unsigned to,
                         const LinkConfig &lc) {
        Switch *owner =
            t.isHost(from) ? nullptr : switches_[from - t.hosts].get();
        ports_.push_back(std::make_unique<Egress>(
            eq_, *this, to, lc, topo_->switchCfg, owner));
        Egress *p = ports_.back().get();
        if (owner != nullptr)
            owner->addEgress(p);
        else
            hostUp_[from] = p;
        if (t.isHost(to))
            hostDown_[to] = p;
        else
            switches_[to - t.hosts]->addUpstream(p);
        port_of[{from, to}] = p;
    };
    for (const Topology::Edge &e : t.edges) {
        make_port(e.a, e.b, e.link);
        make_port(e.b, e.a, e.link);
    }

    auto r = t.routes();
    for (unsigned s = 0; s < t.switches; ++s) {
        unsigned v = t.hosts + s;
        std::vector<std::vector<Egress *>> table(t.hosts);
        for (unsigned d = 0; d < t.hosts; ++d)
            for (unsigned nb : r[v][d])
                table[d].push_back(port_of.at({v, nb}));
        switches_[s]->setRoutes(std::move(table));
    }
}

Link &
Fabric::downlink(unsigned node)
{
    return topo_ ? hostDown_[node]->link() : *down_[node];
}

void
Fabric::send(unsigned src, unsigned dst, std::size_t bytes,
             unsigned priority, std::uint32_t flow,
             sim::EventQueue::Callback deliver)
{
    if (src == dst) {
        sendLoopback(src, bytes, std::move(deliver));
        return;
    }
    if (topo_)
        sendTopo(src, dst, bytes, priority, flow, std::move(deliver));
    else
        sendLegacy(src, dst, bytes, std::move(deliver));
}

void
Fabric::sendLoopback(unsigned node, std::size_t bytes,
                     sim::EventQueue::Callback deliver)
{
    (void)node;
    ++stats_.loopbackPackets;
    stats_.loopbackBytes += bytes;
    sim::Time latency =
        topo_ ? topo_->switchCfg.forwardLatency : cfg_.switchLatency;
    sim::Time extra = 0;
    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::Link)) {
            switch (d->action) {
              case fault::Action::Drop:
                // Never delivered; the closure (and any payload it
                // owns) dies when send() returns.
                ++stats_.loopbackInjDropped;
                return;
              case fault::Action::Duplicate:
                // The copy clones any pooled payload (PoolRef copy
                // semantics); both retire independently.
                ++stats_.loopbackInjDuplicated;
                eq_.scheduleAfter(latency, deliver, "net.fabric.loop");
                break;
              case fault::Action::Reorder:
              case fault::Action::Delay:
                ++stats_.loopbackInjDelayed;
                extra = d->delay;
                break;
              default:
                break;
            }
        }
    }
    eq_.scheduleAfter(latency + extra, std::move(deliver),
                      "net.fabric.loop");
}

void
Fabric::sendLegacy(unsigned src, unsigned dst, std::size_t bytes,
                   sim::EventQueue::Callback deliver)
{
    // @p deliver is parked in fabricPendingPool() for the journey and
    // the hop continuations carry only a sim::PoolRef: capturing the
    // full delegate inside two wrappers would overflow the
    // scheduler's inline storage and heap-allocate per packet per
    // hop. The ref's ownership semantics keep faulted hops correct —
    // a dropped continuation releases the parked slot, a duplicated
    // one clones it.
    sim::PoolRef parked = fabricPendingPool().acquire(std::move(deliver));
    auto at_switch = [this, dst, bytes,
                      parked = std::move(parked)]() mutable {
        auto at_downlink = [this, dst, bytes,
                            parked = std::move(parked)]() mutable {
            down_[dst]->send(
                bytes,
                std::move(*parked.as<sim::EventQueue::Callback>()));
            parked.reset();
        };
        static_assert(
            sim::Delegate::fitsInline<decltype(at_downlink)>,
            "fabric hop continuation must stay inline (no-alloc)");
        eq_.scheduleAfter(cfg_.switchLatency, std::move(at_downlink));
    };
    static_assert(sim::Delegate::fitsInline<decltype(at_switch)>,
                  "fabric hop continuation must stay inline "
                  "(no-alloc)");
    up_[src]->send(bytes, std::move(at_switch));
}

void
Fabric::sendTopo(unsigned src, unsigned dst, std::size_t bytes,
                 unsigned priority, std::uint32_t flow,
                 sim::EventQueue::Callback deliver)
{
    sim::PoolRef ref = fabricPacketPool().acquire();
    FabricPacket *pkt = ref.as<FabricPacket>();
    pkt->src = src;
    pkt->dst = dst;
    pkt->bytes = static_cast<std::uint32_t>(bytes);
    pkt->flow = flow;
    pkt->priority = static_cast<std::uint8_t>(priority);
    pkt->ecn = false;
    pkt->readyAt = 0;
    pkt->deliver = std::move(deliver);
    hostUp_[src]->enqueue(std::move(ref));
}

void
Fabric::arrive(unsigned vertex, sim::PoolRef pkt)
{
    if (topo_->isHost(vertex))
        deliverToHost(std::move(pkt));
    else
        switches_[vertex - topo_->hosts]->receive(std::move(pkt));
}

void
Fabric::deliverToHost(sim::PoolRef pkt)
{
    FabricPacket *p = pkt.as<FabricPacket>();
    rx_.ecn = p->ecn;
    rx_.priority = p->priority;
    sim::EventQueue::Callback deliver = std::move(p->deliver);
    // Release the descriptor before running the callback: delivery
    // handlers commonly send() in turn, and the freed slot lets that
    // send reuse it instead of growing the slab.
    pkt.reset();
    deliver();
    rx_ = RxContext{};
}

// --- record-based delivery plane ------------------------------------

namespace {

/** BoundaryMsg <-> WireRecord packing for the cross-shard hop. */
sim::BoundaryMsg
packRecord(const WireRecord &rec, sim::Time when, std::uint64_t key,
           std::uint32_t engine_kind, unsigned src_shard,
           unsigned dst_shard)
{
    sim::BoundaryMsg m;
    m.when = when;
    m.orderKey = key;
    m.kind = engine_kind;
    m.srcShard = static_cast<std::uint16_t>(src_shard);
    m.dstShard = static_cast<std::uint16_t>(dst_shard);
    m.a = (std::uint64_t(rec.src) << 32) | rec.dst;
    m.b = (std::uint64_t(rec.kind) << 32) | rec.bytes;
    m.c = rec.payloadLen;
    std::memcpy(m.payload, rec.payload, sizeof(m.payload));
    m.payloadLen = rec.payloadLen;
    return m;
}

WireRecord
unpackRecord(const sim::BoundaryMsg &m)
{
    WireRecord rec;
    rec.src = static_cast<std::uint32_t>(m.a >> 32);
    rec.dst = static_cast<std::uint32_t>(m.a);
    rec.kind = static_cast<std::uint32_t>(m.b >> 32);
    rec.bytes = static_cast<std::uint32_t>(m.b);
    rec.payloadLen = static_cast<std::uint32_t>(m.c);
    std::memcpy(rec.payload, m.payload, sizeof(rec.payload));
    return rec;
}

} // namespace

void
Fabric::bindRx(unsigned node, std::uint32_t kind, RxHandler h)
{
    std::uint64_t key = (std::uint64_t(node) << 32) | kind;
    auto [it, fresh] = rxHandlers_.emplace(key, std::move(h));
    if (!fresh) {
        std::fprintf(stderr,
                     "Fabric: duplicate rx binding node %u kind %u\n",
                     node, kind);
        std::abort();
    }
}

void
Fabric::shardBind(sim::ShardedEngine &engine, unsigned my_shard,
                  std::vector<std::uint16_t> owner_of_node,
                  std::uint32_t engineKind)
{
    if (topo_ != nullptr) {
        std::fprintf(stderr,
                     "Fabric: shardBind is legacy-mode only (topology "
                     "fabrics stay single-shard)\n");
        std::abort();
    }
    if (owner_of_node.size() != up_.size()) {
        std::fprintf(stderr,
                     "Fabric: owner map covers %zu nodes, fabric has "
                     "%zu\n",
                     owner_of_node.size(), up_.size());
        std::abort();
    }
    engine_ = &engine;
    myShard_ = my_shard;
    engineKind_ = engineKind;
    ownerOf_ = std::move(owner_of_node);
    engine.bind(my_shard, engineKind,
                [this](const sim::BoundaryMsg &m) {
                    recordDownHop(unpackRecord(m));
                });
}

void
Fabric::sendRecord(const WireRecord &rec)
{
    if (topo_ != nullptr) {
        std::fprintf(stderr,
                     "Fabric: sendRecord is legacy-mode only\n");
        std::abort();
    }
    if (rec.src == rec.dst) {
        sendRecordLoopback(rec);
        return;
    }
    std::uint64_t key = nextOrderKey(rec.src);
    Link::TxOutcome tx = up_[rec.src]->transmit(rec.bytes);
    if (tx.dropped)
        return;
    bool local = ownerOf_.empty() || ownerOf_[rec.dst] == myShard_;
    // The switch hop. Even when the destination is local, it goes
    // through scheduleBoundary with the cross-shard order key so a
    // 1-shard world replays an N-shard partitioning bit-identically.
    auto stage = [&](sim::Time up_arrival, std::uint64_t k) {
        sim::Time exit = up_arrival + cfg_.switchLatency;
        if (local) {
            sim::PoolRef ref = fabricRecordPool().acquire(rec);
            eq_.scheduleBoundary(
                exit, k,
                [this, ref = std::move(ref)] {
                    recordDownHop(*ref.as<WireRecord>());
                },
                "net.fabric.switchrec");
        } else {
            engine_->post(packRecord(rec, exit, k, engineKind_,
                                     myShard_, ownerOf_[rec.dst]));
        }
    };
    if (tx.duplicated)
        stage(tx.dupArrival, nextOrderKey(rec.src));
    stage(tx.arrival, key);
}

void
Fabric::sendRecordLoopback(const WireRecord &rec)
{
    ++stats_.loopbackPackets;
    stats_.loopbackBytes += rec.bytes;
    sim::Time latency = cfg_.switchLatency;
    sim::Time extra = 0;
    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::Link)) {
            switch (d->action) {
              case fault::Action::Drop:
                ++stats_.loopbackInjDropped;
                return;
              case fault::Action::Duplicate:
                ++stats_.loopbackInjDuplicated;
                scheduleDispatch(eq_.now() + latency, rec);
                break;
              case fault::Action::Reorder:
              case fault::Action::Delay:
                ++stats_.loopbackInjDelayed;
                extra = d->delay;
                break;
              default:
                break;
            }
        }
    }
    scheduleDispatch(eq_.now() + latency + extra, rec);
}

void
Fabric::recordDownHop(const WireRecord &rec)
{
    Link::TxOutcome tx = down_[rec.dst]->transmit(rec.bytes);
    if (tx.dropped)
        return;
    if (tx.duplicated)
        scheduleDispatch(tx.dupArrival, rec);
    scheduleDispatch(tx.arrival, rec);
}

void
Fabric::scheduleDispatch(sim::Time at, const WireRecord &rec)
{
    sim::PoolRef ref = fabricRecordPool().acquire(rec);
    eq_.schedule(
        at,
        [this, ref = std::move(ref)] {
            dispatch(*ref.as<WireRecord>());
        },
        "net.fabric.rxrec");
}

void
Fabric::dispatch(const WireRecord &rec)
{
    auto it =
        rxHandlers_.find((std::uint64_t(rec.dst) << 32) | rec.kind);
    if (it == rxHandlers_.end()) {
        std::fprintf(stderr,
                     "Fabric: record for unbound (node %u, kind %u)\n",
                     rec.dst, rec.kind);
        std::abort();
    }
    it->second(rec);
}

void
Fabric::setHostRxPause(unsigned node, bool on)
{
    if (!topo_)
        return;
    unsigned &depth = hostPauseDepth_[node];
    if (on) {
        if (depth++ != 0)
            return;
        ++stats_.hostPauses;
    } else {
        if (depth == 0 || --depth != 0)
            return;
    }
    // The NIC's pause frame crosses the host's wire backward; only
    // the data class is paused, so control traffic (NACKs, ACKs,
    // CNPs) keeps flowing and the loop cannot deadlock on its own
    // recovery messages.
    Egress *down = hostDown_[node];
    auto apply = [down, on] { down->setPaused(0, on); };
    static_assert(sim::Delegate::fitsInline<decltype(apply)>,
                  "pfc frame closure must stay inline (no-alloc)");
    eq_.scheduleAfter(hostUp_[node]->link().config().propagation,
                      std::move(apply), "net.pfc.host");
}

} // namespace npf::net
