/**
 * @file
 * Point-to-point link model: FIFO serialization at a configured
 * bandwidth plus propagation delay. Payloads travel inside the
 * delivery closures, so the link is protocol-agnostic.
 */

#ifndef NPF_NET_LINK_HH
#define NPF_NET_LINK_HH

#include <cstdint>
#include <functional>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::net {

/** Static link parameters. */
struct LinkConfig
{
    double bandwidthBitsPerSec = 40e9;
    sim::Time propagation = 500; ///< cable + PHY, one way
    /** Framing overhead added to every packet (headers, preamble,
     *  inter-frame gap). */
    std::size_t perPacketOverheadBytes = 38;
};

/**
 * Unidirectional link. send() queues the packet behind earlier
 * traffic (transmission starts when the wire frees up) and schedules
 * the delivery callback at arrival time. Lossless: loss in npfsim
 * happens at NIC rings, never on the wire.
 */
class Link
{
  public:
    struct Stats
    {
        std::uint64_t packets = 0;
        std::uint64_t payloadBytes = 0;
        std::uint64_t wireBytes = 0;
    };

    Link(sim::EventQueue &eq, LinkConfig cfg = {}) : eq_(eq), cfg_(cfg)
    {
        obs_.init("net.link");
        obs_.counter("packets", &stats_.packets);
        obs_.counter("payload_bytes", &stats_.payloadBytes);
        obs_.counter("wire_bytes", &stats_.wireBytes);
    }

    /**
     * Transmit @p bytes of payload; @p deliver runs at arrival.
     * @return the arrival time.
     */
    sim::Time
    send(std::size_t bytes, std::function<void()> deliver)
    {
        std::size_t wire_bytes = bytes + cfg_.perPacketOverheadBytes;
        sim::Time tx_time = transmissionTime(wire_bytes);
        sim::Time start = std::max(eq_.now(), busyUntil_);
        busyUntil_ = start + tx_time;
        sim::Time arrival = busyUntil_ + cfg_.propagation;

        ++stats_.packets;
        stats_.payloadBytes += bytes;
        stats_.wireBytes += wire_bytes;

        eq_.schedule(arrival, std::move(deliver), "net.link.deliver");
        return arrival;
    }

    /** Wire time to clock out @p wire_bytes. */
    sim::Time
    transmissionTime(std::size_t wire_bytes) const
    {
        double secs = double(wire_bytes) * 8.0 / cfg_.bandwidthBitsPerSec;
        return sim::fromSeconds(secs);
    }

    /** Earliest time a new packet could start transmitting. */
    sim::Time busyUntil() const { return busyUntil_; }

    const LinkConfig &config() const { return cfg_; }
    const Stats &stats() const { return stats_; }

  private:
    sim::EventQueue &eq_;
    LinkConfig cfg_;
    sim::Time busyUntil_ = 0;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::net

#endif // NPF_NET_LINK_HH
