/**
 * @file
 * Point-to-point link model: FIFO serialization at a configured
 * bandwidth plus propagation delay. Payloads travel inside the
 * delivery closures, so the link is protocol-agnostic.
 */

#ifndef NPF_NET_LINK_HH
#define NPF_NET_LINK_HH

#include <cstdint>

#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace npf::net {

/** Static link parameters. */
struct LinkConfig
{
    double bandwidthBitsPerSec = 40e9;
    sim::Time propagation = 500; ///< cable + PHY, one way
    /** Framing overhead added to every packet (headers, preamble,
     *  inter-frame gap). */
    std::size_t perPacketOverheadBytes = 38;
};

/**
 * Unidirectional link. send() queues the packet behind earlier
 * traffic (transmission starts when the wire frees up) and schedules
 * the delivery callback at arrival time. Lossless by default: loss in
 * npfsim happens at NIC rings, never on the wire — unless an active
 * fault plan injects drop/duplicate/reorder/delay at the Link site.
 */
class Link
{
  public:
    struct Stats
    {
        std::uint64_t packets = 0;
        std::uint64_t payloadBytes = 0;
        std::uint64_t wireBytes = 0;
        std::uint64_t injDropped = 0;    ///< fault-injected drops
        std::uint64_t injDuplicated = 0; ///< fault-injected dups
        std::uint64_t injDelayed = 0;    ///< fault-injected delay/reorder
        /** Wire bytes that had to wait behind earlier traffic (the
         *  link's implicit queue, since payloads queue on the wire
         *  itself rather than in a buffer). */
        std::uint64_t queuedBytes = 0;
    };

    Link(sim::EventQueue &eq, LinkConfig cfg = {}) : eq_(eq), cfg_(cfg)
    {
        obs_.init("net.link");
        obs_.counter("packets", &stats_.packets);
        obs_.counter("payload_bytes", &stats_.payloadBytes);
        obs_.counter("wire_bytes", &stats_.wireBytes);
        obs_.counter("inj_dropped", &stats_.injDropped);
        obs_.counter("inj_duplicated", &stats_.injDuplicated);
        obs_.counter("inj_delayed", &stats_.injDelayed);
        obs_.counter("queued_bytes", &stats_.queuedBytes);
        // Backlog as time: how far busyUntil_ runs ahead of now, i.e.
        // the serialization delay a packet sent this instant would
        // see before reaching the wire.
        obs_.gauge("backlog_ns", [this] {
            sim::Time now = eq_.now();
            return busyUntil_ > now ? double(busyUntil_ - now) : 0.0;
        });
    }

    /**
     * Transmit @p bytes of payload; @p deliver runs at arrival.
     * Delivery closures ride the event queue's small-buffer Delegate,
     * so per-packet sends stay allocation-free when the capture fits.
     *
     * Payload ownership under fault injection: the closure owns the
     * (pooled) frame it captured, so each fault action keeps the
     * release-exactly-once contract by construction —
     *  - Drop: @p deliver is destroyed unscheduled when send()
     *    returns, releasing the frame's payload slot then and there;
     *  - Duplicate: scheduling a *copy* of @p deliver clones the
     *    payload into a fresh slot (sim::PoolRef copy semantics), so
     *    the duplicate and the original retire independently;
     *  - Reorder/Delay: the one owner just arrives later.
     * tests/frame_lifecycle_test.cc pins all three with pool
     * live-count assertions.
     * @return the arrival time.
     */
    sim::Time
    send(std::size_t bytes, sim::EventQueue::Callback deliver)
    {
        TxOutcome tx = transmit(bytes);
        if (tx.dropped)
            // deliver is destroyed unscheduled when send() returns,
            // releasing the captured frame's payload slot.
            return tx.arrival;
        if (tx.duplicated)
            eq_.schedule(tx.dupArrival, deliver, "net.link.deliver");
        eq_.schedule(tx.arrival, std::move(deliver), "net.link.deliver");
        return tx.arrival;
    }

    /**
     * The timing/fault half of send(), decoupled from closure
     * scheduling so record-based delivery (the shard boundary path,
     * fabric.hh) shares one wire model with the closure path.
     * Occupies the wire and rolls the fault dice exactly like send();
     * the caller is responsible for acting on the outcome:
     * schedule/forward nothing when `dropped`, a second copy at
     * `dupArrival` when `duplicated` (the duplicate consumed its own
     * wire time and arrives *first*), and the packet itself at
     * `arrival`.
     */
    struct TxOutcome
    {
        sim::Time arrival = 0; ///< the packet (meaningless if dropped)
        sim::Time dupArrival = 0; ///< the extra copy, if duplicated
        bool dropped = false;
        bool duplicated = false;
    };

    TxOutcome
    transmit(std::size_t bytes)
    {
        TxOutcome out;
        sim::Time extra = 0;
        if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
            if (auto d = fi->decide(fault::Site::Link)) {
                switch (d->action) {
                  case fault::Action::Drop:
                    // The packet still occupies the wire; it just
                    // never arrives.
                    ++stats_.injDropped;
                    out.dropped = true;
                    out.arrival = occupyWire(bytes);
                    return out;
                  case fault::Action::Duplicate:
                    // The copy consumes wire time of its own and
                    // arrives first; the original follows behind it.
                    ++stats_.injDuplicated;
                    out.duplicated = true;
                    out.dupArrival = occupyWire(bytes);
                    break;
                  case fault::Action::Reorder:
                  case fault::Action::Delay:
                    // Arrival slips without holding the wire, so
                    // later packets overtake this one.
                    ++stats_.injDelayed;
                    extra = d->delay;
                    break;
                  default:
                    break;
                }
            }
        }
        out.arrival = occupyWire(bytes) + extra;
        return out;
    }

    /** Wire time to clock out @p wire_bytes. */
    sim::Time
    transmissionTime(std::size_t wire_bytes) const
    {
        double secs = double(wire_bytes) * 8.0 / cfg_.bandwidthBitsPerSec;
        return sim::fromSeconds(secs);
    }

    /** Earliest time a new packet could start transmitting. */
    sim::Time busyUntil() const { return busyUntil_; }

    const LinkConfig &config() const { return cfg_; }
    const Stats &stats() const { return stats_; }

  private:
    /** FIFO-serialize one packet onto the wire; @return arrival time. */
    sim::Time
    occupyWire(std::size_t bytes)
    {
        std::size_t wire_bytes = bytes + cfg_.perPacketOverheadBytes;
        sim::Time tx_time = transmissionTime(wire_bytes);
        sim::Time start = std::max(eq_.now(), busyUntil_);
        if (start > eq_.now())
            stats_.queuedBytes += wire_bytes;
        busyUntil_ = start + tx_time;

        ++stats_.packets;
        stats_.payloadBytes += bytes;
        stats_.wireBytes += wire_bytes;
        return busyUntil_ + cfg_.propagation;
    }

    sim::EventQueue &eq_;
    LinkConfig cfg_;
    sim::Time busyUntil_ = 0;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::net

#endif // NPF_NET_LINK_HH
