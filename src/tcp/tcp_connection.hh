/**
 * @file
 * A deliberately faithful-enough TCP endpoint: slow start, congestion
 * avoidance, RTO with exponential backoff and give-up, duplicate-ACK
 * fast retransmit, SYN retries. These are exactly the dynamics that
 * turn dropped-on-rNPF packets into the near-deadlock of the paper's
 * cold-ring problem (Fig. 4), so they are modeled rather than
 * abstracted.
 */

#ifndef NPF_TCP_TCP_CONNECTION_HH
#define NPF_TCP_TCP_CONNECTION_HH

#include <cstdint>
#include <functional>
#include <map>

#include "mem/types.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/ring_deque.hh"
#include "sim/time.hh"
#include "tcp/segment.hh"

namespace npf::tcp {

/** Stack parameters (Linux-of-the-era defaults). */
struct TcpConfig
{
    std::size_t mss = 1448;
    unsigned initialCwndSegs = 10;
    std::size_t maxWindowBytes = 1 << 20;
    sim::Time minRto = 200 * sim::kMillisecond;
    sim::Time maxRto = 120 * sim::kSecond;
    sim::Time initialRto = 1 * sim::kSecond;
    unsigned maxSynRetries = 6;
    unsigned maxDataRetries = 15;
    unsigned dupAckThreshold = 3;
};

/**
 * One endpoint of a TCP connection.
 *
 * Segments leave through the SegmentSink (the NIC glue provides it)
 * and arrive through receiveSegment(). Application payload is
 * byte-counted; send() optionally records the source buffer address
 * so the NIC DMA-reads real (possibly cold) IOuser memory.
 */
class TcpConnection
{
  public:
    /** (segment, source buffer address or 0) -> hand to the NIC. */
    using SegmentSink =
        std::function<void(const Segment &, mem::VirtAddr src)>;
    using DataHandler = std::function<void(std::size_t bytes)>;
    using VoidHandler = std::function<void()>;

    enum class State { Closed, SynSent, SynReceived, Established, Failed };

    struct Stats
    {
        std::uint64_t segmentsSent = 0;
        std::uint64_t segmentsReceived = 0;
        std::uint64_t bytesSent = 0;
        std::uint64_t bytesDelivered = 0;
        std::uint64_t retransmissions = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t fastRetransmits = 0;
        std::uint64_t dupAcksReceived = 0;
        std::uint64_t synRetries = 0;
    };

    TcpConnection(sim::EventQueue &eq, std::uint32_t conn_id,
                  SegmentSink sink, TcpConfig cfg = {});

    std::uint32_t connId() const { return connId_; }
    State state() const { return state_; }
    bool established() const { return state_ == State::Established; }
    bool failed() const { return state_ == State::Failed; }

    /** Active open: send SYN, retry with backoff. */
    void connect(std::function<void(bool ok)> on_connected);

    /** Passive open: wait for a SYN. */
    void listen();

    /**
     * Queue @p bytes of application payload. @p src is the IOuser
     * buffer the NIC will DMA-read (0 = stack-internal scratch).
     */
    void send(std::size_t bytes, mem::VirtAddr src = 0);

    /** In-order payload delivery to the application. */
    void onDeliver(DataHandler h) { deliverHandler_ = std::move(h); }

    /** Connection gave up (max retries exceeded). */
    void onFailure(VoidHandler h) { failureHandler_ = std::move(h); }

    /** Inbound segment from the NIC. */
    void receiveSegment(const Segment &seg);

    /**
     * obs::Attributor lane this connection's retransmit stalls are
     * charged to (-1 = off). Both directions of one RPC channel
     * conventionally share a lane.
     */
    void setAttrLane(int lane) { attrLane_ = lane; }
    int attrLane() const { return attrLane_; }

    const Stats &stats() const { return stats_; }
    std::size_t cwnd() const { return cwnd_; }
    std::size_t bytesInFlight() const
    {
        return static_cast<std::size_t>(sndNxt_ - sndUna_);
    }
    std::size_t unsentBytes() const { return unsent_; }
    sim::Time currentRto() const { return rto_; }

  private:
    /** A contiguous chunk of queued payload with its source buffer. */
    struct SendRecord
    {
        std::uint64_t seqStart;
        std::size_t len;
        mem::VirtAddr src;
    };

    void processSegment(const Segment &seg);
    void pumpSend();
    void emitData(std::uint64_t seq, std::size_t len);
    void emitAck();
    void handleAckField(const Segment &seg);
    void armRto();
    void cancelRto();
    void onRtoFire();
    void updateRtt(sim::Time sample);
    void fail();
    mem::VirtAddr srcFor(std::uint64_t seq, std::size_t &len_inout) const;
    void sendSyn();
    void sendSynAck();

    sim::EventQueue &eq_;
    std::uint32_t connId_;
    SegmentSink sink_;
    TcpConfig cfg_;
    State state_ = State::Closed;
    Stats stats_;
    DataHandler deliverHandler_;
    VoidHandler failureHandler_;
    std::function<void(bool)> onConnected_;

    // --- sender ---
    std::uint64_t sndUna_ = 0;  ///< oldest unacked byte
    std::uint64_t sndNxt_ = 0;  ///< next byte to transmit
    std::uint64_t sndMax_ = 0;  ///< highest byte ever transmitted
    std::size_t unsent_ = 0;    ///< queued, not yet transmitted
    sim::RingDeque<SendRecord> records_;
    std::size_t cwnd_ = 0;      ///< bytes
    std::size_t ssthresh_ = 0;  ///< bytes
    unsigned dupAcks_ = 0;
    unsigned retries_ = 0;      ///< consecutive RTOs without progress
    sim::Time rto_;
    sim::Time srtt_ = 0;
    sim::Time rttvar_ = 0;
    bool rttValid_ = false;
    std::uint64_t rttSeq_ = 0;  ///< seq being timed (Karn)
    sim::Time rttSentAt_ = 0;
    bool rttTiming_ = false;
    sim::EventId rtoTimer_ = sim::kInvalidEvent;
    sim::Time rtoArmedAt_ = 0;  ///< for retransmit-stall attribution
    unsigned synRetries_ = 0;
    sim::Time synSentAt_ = 0;
    int attrLane_ = -1;         ///< attribution lane (-1 = off)

    // --- receiver ---
    std::uint64_t rcvNxt_ = 0;
    std::map<std::uint64_t, std::uint64_t> oooSegments_; ///< start->end

    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::tcp

#endif // NPF_TCP_TCP_CONNECTION_HH
