/**
 * @file
 * TCP segment metadata. npfsim does not move payload bytes, only
 * counts them, so a segment is pure header state.
 */

#ifndef NPF_TCP_SEGMENT_HH
#define NPF_TCP_SEGMENT_HH

#include <cstdint>

#include "sim/pool.hh"

namespace npf::tcp {

/** One TCP segment (header-only; payload is byte-counted). */
struct Segment
{
    std::uint32_t connId = 0; ///< demux key on the shared ring
    std::uint64_t seq = 0;    ///< first payload byte
    std::size_t len = 0;      ///< payload bytes
    std::uint64_t ack = 0;    ///< next expected byte (cumulative)
    bool syn = false;
    bool synAck = false;
    bool fin = false;
};

/** TCP/IP header bytes added to every segment on the wire. */
constexpr std::size_t kTcpIpHeaderBytes = 40;

/**
 * The process-wide segment slab: every in-flight segment's metadata
 * lives here, travelling inside eth::Frame payload refs. A single
 * static pool (rather than one per Endpoint) keeps refs valid no
 * matter which side of a connection tears down first — frames parked
 * in the peer NIC's rings outlive the endpoint that sent them.
 */
sim::Pool<Segment> &segmentPool();

} // namespace npf::tcp

#endif // NPF_TCP_SEGMENT_HH
