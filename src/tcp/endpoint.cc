#include "tcp/endpoint.hh"

#include <cassert>

namespace npf::tcp {

sim::Pool<Segment> &
segmentPool()
{
    static thread_local auto *pool = new sim::Pool<Segment>("tcp::segmentPool");
    return *pool; // leaked intentionally: outlives all frames
}

Endpoint::Endpoint(sim::EventQueue &eq, eth::EthNic &nic,
                   mem::AddressSpace &as, core::ChannelId ch,
                   eth::RxRingConfig ring_cfg, unsigned peer_ring,
                   EndpointConfig cfg)
    : eq_(eq), nic_(nic), as_(as), ch_(ch), cfg_(cfg),
      peerRing_(peer_ring), ringSize_(ring_cfg.size)
{
    if (cfg_.pinRxBuffers)
        ring_cfg.policy = eth::RxFaultPolicy::Pin;

    ringId_ = nic_.createRxRing(
        ch_, ring_cfg, [this](const eth::Frame &f) { handleFrame(f); });
    txq_ = nic_.createTxQueue(ch_);

    // Ring buffers live in IOuser memory: nothing is pinned unless
    // the baseline configuration asks for it.
    rxRegion_ = as_.allocRegion(ringSize_ * cfg_.rxBufBytes, "rx-ring");
    txScratch_ = as_.allocRegion(mem::kPageSize, "tx-scratch");

    if (cfg_.pinRxBuffers) {
        mem::AccessResult pin =
            as_.pinRange(rxRegion_, ringSize_ * cfg_.rxBufBytes);
        assert(pin.ok && "failed to pin rx buffers");
        (void)pin;
        as_.pinRange(txScratch_, mem::kPageSize);
        nic_.npfc().prefault(ch_, rxRegion_, ringSize_ * cfg_.rxBufBytes,
                             /*write=*/true);
        nic_.npfc().prefault(ch_, txScratch_, mem::kPageSize,
                             /*write=*/true);
    } else if (cfg_.prefaultRxBuffers) {
        nic_.npfc().prefault(ch_, rxRegion_, ringSize_ * cfg_.rxBufBytes,
                             /*write=*/true);
        nic_.npfc().prefault(ch_, txScratch_, mem::kPageSize,
                             /*write=*/true);
    }

    for (std::size_t i = 0; i < ringSize_; ++i) {
        nic_.postRxBuffer(ringId_, rxRegion_ + i * cfg_.rxBufBytes,
                          cfg_.rxBufBytes);
    }
}

TcpConnection &
Endpoint::connection(std::uint32_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
        auto conn = std::make_unique<TcpConnection>(
            eq_, conn_id,
            [this](const Segment &seg, mem::VirtAddr src) {
                sendSegment(seg, src);
            },
            cfg_.tcp);
        it = conns_.emplace(conn_id, std::move(conn)).first;
    }
    return *it->second;
}

void
Endpoint::handleFrame(const eth::Frame &f)
{
    const Segment *seg = f.payload.as<const Segment>();
    if (seg == nullptr)
        return;
    // lwIP-style: the stack processes the segment out of the ring
    // buffer and immediately reposts the buffer (same address), so a
    // warmed-up ring stays warm.
    connection(seg->connId).receiveSegment(*seg);
    eth::RxRing &r = nic_.ring(ringId_);
    if (r.postableSlots() > 0) {
        std::uint64_t idx = r.tail % ringSize_;
        nic_.postRxBuffer(ringId_, rxRegion_ + idx * cfg_.rxBufBytes,
                          cfg_.rxBufBytes);
    }
}

void
Endpoint::sendSegment(const Segment &seg, mem::VirtAddr src)
{
    // Slab-allocated segment metadata: the frame's PoolRef releases
    // the slot wherever the packet's journey ends (delivery, drop,
    // corruption — see eth/frame.hh), so steady-state traffic runs
    // without touching the heap.
    mem::VirtAddr dma_src = src != 0 ? src : txScratch_;
    nic_.send(txq_, peerRing_, dma_src, seg.len + kTcpIpHeaderBytes,
              segmentPool().acquire(seg));
}

} // namespace npf::tcp
