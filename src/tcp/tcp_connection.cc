#include "tcp/tcp_connection.hh"

#include <algorithm>
#include <cassert>

#include "fault/fault.hh"
#include "obs/attribution.hh"
#include "obs/flow_tracer.hh"

namespace npf::tcp {

TcpConnection::TcpConnection(sim::EventQueue &eq, std::uint32_t conn_id,
                             SegmentSink sink, TcpConfig cfg)
    : eq_(eq), connId_(conn_id), sink_(std::move(sink)), cfg_(cfg),
      rto_(cfg.initialRto)
{
    cwnd_ = std::min(cfg_.initialCwndSegs * cfg_.mss,
                     cfg_.maxWindowBytes);
    ssthresh_ = cfg_.maxWindowBytes;

    obs_.init("tcp.conn");
    obs_.counter("segments_sent", &stats_.segmentsSent);
    obs_.counter("segments_received", &stats_.segmentsReceived);
    obs_.counter("bytes_sent", &stats_.bytesSent);
    obs_.counter("bytes_delivered", &stats_.bytesDelivered);
    obs_.counter("retransmissions", &stats_.retransmissions);
    obs_.counter("timeouts", &stats_.timeouts);
    obs_.counter("fast_retransmits", &stats_.fastRetransmits);
    obs_.counter("dup_acks_received", &stats_.dupAcksReceived);
    obs_.counter("syn_retries", &stats_.synRetries);
    obs_.gauge("cwnd", [this] { return double(cwnd_); });
}

void
TcpConnection::connect(std::function<void(bool)> on_connected)
{
    assert(state_ == State::Closed);
    onConnected_ = std::move(on_connected);
    state_ = State::SynSent;
    sendSyn();
}

void
TcpConnection::listen()
{
    assert(state_ == State::Closed);
    state_ = State::SynReceived; // waiting; refined on first SYN
}

void
TcpConnection::sendSyn()
{
    Segment s;
    s.connId = connId_;
    s.syn = true;
    ++stats_.segmentsSent;
    synSentAt_ = eq_.now();
    sink_(s, 0);
    // SYN retransmission with exponential backoff (1s, 2s, 4s, ...),
    // clamped to maxRto — an unclamped shift overflows (and is UB past
    // the word size) once synRetries_ grows large.
    sim::Time delay = cfg_.initialRto;
    for (unsigned i = 0; i < synRetries_ && delay < cfg_.maxRto; ++i)
        delay *= 2;
    delay = std::min(delay, cfg_.maxRto);
    rtoTimer_ = eq_.scheduleAfter(delay, [this] {
        rtoTimer_ = sim::kInvalidEvent;
        if (state_ != State::SynSent)
            return;
        if (++synRetries_ > cfg_.maxSynRetries) {
            fail();
            if (onConnected_)
                onConnected_(false);
            return;
        }
        ++stats_.synRetries;
        sendSyn();
    }, "tcp.syn_retry");
}

void
TcpConnection::sendSynAck()
{
    Segment s;
    s.connId = connId_;
    s.synAck = true;
    s.ack = rcvNxt_;
    ++stats_.segmentsSent;
    sink_(s, 0);
}

void
TcpConnection::send(std::size_t bytes, mem::VirtAddr src)
{
    if (bytes == 0 || state_ == State::Failed)
        return;
    std::uint64_t start = sndNxt_ + unsent_;
    if (!records_.empty()) {
        SendRecord &back = records_.back();
        if (src != 0 && back.src != 0 &&
            back.seqStart + back.len == start &&
            back.src + back.len == src) {
            back.len += bytes; // coalesce contiguous buffers
            unsent_ += bytes;
            pumpSend();
            return;
        }
    }
    records_.push_back(SendRecord{start, bytes, src});
    unsent_ += bytes;
    pumpSend();
}

mem::VirtAddr
TcpConnection::srcFor(std::uint64_t seq, std::size_t &len_inout) const
{
    for (const SendRecord &r : records_) {
        if (seq < r.seqStart || seq >= r.seqStart + r.len)
            continue;
        std::uint64_t off = seq - r.seqStart;
        len_inout = std::min<std::size_t>(len_inout, r.len - off);
        return r.src == 0 ? 0 : r.src + off;
    }
    return 0;
}

void
TcpConnection::pumpSend()
{
    if (state_ != State::Established)
        return;
    while (unsent_ > 0) {
        std::size_t in_flight = bytesInFlight();
        if (in_flight + cfg_.mss > cwnd_ && in_flight > 0)
            break;
        std::size_t len = std::min(unsent_, cfg_.mss);
        emitData(sndNxt_, len);
        sndNxt_ += len;
        sndMax_ = std::max(sndMax_, sndNxt_);
        unsent_ -= len;
    }
    if (bytesInFlight() > 0)
        armRto();
}

void
TcpConnection::emitData(std::uint64_t seq, std::size_t len)
{
    std::size_t seg_len = len;
    mem::VirtAddr src = srcFor(seq, seg_len);

    Segment s;
    s.connId = connId_;
    s.seq = seq;
    s.len = seg_len;
    s.ack = rcvNxt_;
    ++stats_.segmentsSent;
    stats_.bytesSent += seg_len;

    if (!rttTiming_ && seq == sndMax_) {
        // Karn: only time segments on first transmission.
        rttTiming_ = true;
        rttSeq_ = seq + seg_len;
        rttSentAt_ = eq_.now();
    }
    sink_(s, src);

    if (seg_len < len) {
        // Source record boundary split the segment; emit the rest.
        emitData(seq + seg_len, len - seg_len);
    }
}

void
TcpConnection::emitAck()
{
    Segment s;
    s.connId = connId_;
    s.seq = sndNxt_;
    s.ack = rcvNxt_;
    ++stats_.segmentsSent;
    sink_(s, 0);
}

void
TcpConnection::receiveSegment(const Segment &seg)
{
    if (fault::FaultInjector *fi = fault::FaultInjector::active()) {
        if (auto d = fi->decide(fault::Site::TcpRx)) {
            switch (d->action) {
              case fault::Action::Drop:
                // Lost on arrival: RTO / fast retransmit recover.
                return;
              case fault::Action::Duplicate: {
                // The copy is processed after the original, same tick.
                auto redo = [this, seg] { processSegment(seg); };
                static_assert(sim::Delegate::fitsInline<decltype(redo)>,
                              "tcp segment closure must stay inline");
                eq_.scheduleAfter(0, std::move(redo), "fault.tcp_dup");
                break;
              }
              case fault::Action::Reorder:
              case fault::Action::Delay:
                // Processed late; segments behind it overtake.
                eq_.scheduleAfter(d->delay,
                                  [this, seg] { processSegment(seg); },
                                  "fault.tcp_delay");
                return;
              default:
                break;
            }
        }
    }
    processSegment(seg);
}

void
TcpConnection::processSegment(const Segment &seg)
{
    if (state_ == State::Failed || state_ == State::Closed)
        return;
    ++stats_.segmentsReceived;

    // --- handshake ---
    if (seg.syn) {
        // Passive side: (re)send SYN-ACK.
        rcvNxt_ = 0;
        sendSynAck();
        return;
    }
    if (seg.synAck) {
        if (state_ == State::SynSent) {
            state_ = State::Established;
            cancelRto();
            // Seed the RTT estimator from the handshake (as Linux
            // does); skip if the SYN was retransmitted (Karn).
            if (synRetries_ == 0)
                updateRtt(eq_.now() - synSentAt_);
            synRetries_ = 0;
            emitAck();
            if (onConnected_)
                onConnected_(true);
            pumpSend();
        } else {
            emitAck(); // duplicate SYN-ACK: re-ack
        }
        return;
    }
    if (state_ == State::SynReceived) {
        // First ACK (or data) completes the passive open.
        state_ = State::Established;
    }
    if (state_ == State::SynSent)
        return; // stray segment before our SYN-ACK

    handleAckField(seg);

    if (seg.len == 0)
        return;

    // --- receiver path ---
    std::uint64_t start = seg.seq;
    std::uint64_t end = seg.seq + seg.len;
    if (end <= rcvNxt_) {
        emitAck(); // stale duplicate
        return;
    }
    if (start > rcvNxt_) {
        // Hole: remember and send a duplicate ACK.
        auto [it, inserted] = oooSegments_.try_emplace(start, end);
        if (!inserted)
            it->second = std::max(it->second, end);
        emitAck();
        return;
    }
    // In order (possibly overlapping the left edge).
    std::uint64_t old_rcv_nxt = rcvNxt_;
    rcvNxt_ = end;
    // Pull any now-contiguous out-of-order data.
    for (auto it = oooSegments_.begin(); it != oooSegments_.end();) {
        if (it->first > rcvNxt_)
            break;
        rcvNxt_ = std::max(rcvNxt_, it->second);
        it = oooSegments_.erase(it);
    }
    std::size_t newly = static_cast<std::size_t>(rcvNxt_ - old_rcv_nxt);
    stats_.bytesDelivered += newly;
    emitAck();
    if (deliverHandler_)
        deliverHandler_(newly);
}

void
TcpConnection::handleAckField(const Segment &seg)
{
    if (seg.ack > sndMax_)
        return; // acks data never sent: nonsensical
    if (seg.ack > sndUna_) {
        std::size_t acked = static_cast<std::size_t>(seg.ack - sndUna_);
        sndUna_ = seg.ack;
        if (seg.ack > sndNxt_) {
            // A go-back-N rewind was overtaken by a cumulative ACK:
            // the bytes we had requeued are in fact received.
            unsent_ -= static_cast<std::size_t>(seg.ack - sndNxt_);
            sndNxt_ = seg.ack;
        }
        dupAcks_ = 0;
        retries_ = 0;
        // Forward progress ends exponential backoff: restore the RTO
        // to the estimator's value (what Linux does on new ACKs).
        if (rttValid_)
            rto_ = std::max(cfg_.minRto, srtt_ + 4 * rttvar_);
        else
            rto_ = cfg_.initialRto;
        rto_ = std::min(rto_, cfg_.maxRto);

        // RTT sample (Karn-compliant).
        if (rttTiming_ && sndUna_ >= rttSeq_) {
            rttTiming_ = false;
            updateRtt(eq_.now() - rttSentAt_);
        }

        // Congestion window growth.
        if (cwnd_ < ssthresh_) {
            cwnd_ += std::min(acked, cfg_.mss); // slow start
        } else {
            cwnd_ += std::max<std::size_t>(
                1, cfg_.mss * cfg_.mss / std::max<std::size_t>(cwnd_, 1));
        }
        cwnd_ = std::min(cwnd_, cfg_.maxWindowBytes);

        // Drop fully acked send records.
        while (!records_.empty() &&
               records_.front().seqStart + records_.front().len <=
                   sndUna_) {
            records_.pop_front();
        }

        cancelRto();
        if (bytesInFlight() > 0)
            armRto();
        pumpSend();
        return;
    }

    // Duplicate ACK. Data-bearing segments count too: with
    // bidirectional traffic the peer's dup-acks ride piggybacked on
    // its own data stream, and a pure-ACK-only test starves fast
    // retransmit (pure ACKs are themselves unreliable).
    if (seg.ack == sndUna_ && bytesInFlight() > 0) {
        ++stats_.dupAcksReceived;
        if (++dupAcks_ == cfg_.dupAckThreshold) {
            ++stats_.fastRetransmits;
            obs::tracer().instant(obs::Track::Transport, "tcp",
                                  "tcp.fast_retransmit");
            ++stats_.retransmissions;
            ssthresh_ = std::max<std::size_t>(bytesInFlight() / 2,
                                              2 * cfg_.mss);
            cwnd_ = ssthresh_ + 3 * cfg_.mss;
            rttTiming_ = false;
            std::size_t len =
                std::min<std::size_t>(cfg_.mss,
                                      static_cast<std::size_t>(
                                          sndMax_ - sndUna_));
            emitData(sndUna_, len);
            cancelRto();
            armRto();
        }
    }
}

void
TcpConnection::armRto()
{
    if (rtoTimer_ != sim::kInvalidEvent)
        return;
    // Armed and cancelled around nearly every ACK: the classic
    // timer-restart pattern the event engine's O(1) cancel exists
    // for. Keep the closure inline so re-arming never allocates.
    auto fire = [this] {
        rtoTimer_ = sim::kInvalidEvent;
        onRtoFire();
    };
    static_assert(sim::Delegate::fitsInline<decltype(fire)>,
                  "tcp rto timer closure must stay inline");
    rtoArmedAt_ = eq_.now();
    rtoTimer_ = eq_.scheduleAfter(rto_, std::move(fire), "tcp.rto");
}

void
TcpConnection::cancelRto()
{
    if (rtoTimer_ != sim::kInvalidEvent) {
        eq_.cancel(rtoTimer_);
        rtoTimer_ = sim::kInvalidEvent;
    }
}

void
TcpConnection::onRtoFire()
{
    if (state_ != State::Established || bytesInFlight() == 0)
        return;
    ++stats_.timeouts;
    ++stats_.retransmissions;
    obs::tracer().instant(obs::Track::Transport, "tcp", "tcp.rto_fire");
    // The silence since arming was a retransmit stall: progress would
    // have restarted the timer via cancelRto()/armRto().
    obs::attributor().charge(attrLane_, obs::Phase::Retransmit,
                             eq_.now() - rtoArmedAt_);
    if (++retries_ > cfg_.maxDataRetries) {
        fail();
        return;
    }
    // Classic RTO reaction: collapse to one segment, halve ssthresh,
    // back the timer off exponentially, go-back-N.
    ssthresh_ = std::max<std::size_t>(bytesInFlight() / 2, 2 * cfg_.mss);
    cwnd_ = cfg_.mss;
    rto_ = std::min(rto_ * 2, cfg_.maxRto);
    rttTiming_ = false;
    std::size_t resend =
        std::min<std::size_t>(cfg_.mss,
                              static_cast<std::size_t>(sndMax_ - sndUna_));
    // Everything past sndUna_ counts as lost; it will be re-sent as
    // the window reopens.
    unsent_ += static_cast<std::size_t>(sndNxt_ - sndUna_);
    sndNxt_ = sndUna_;
    emitData(sndNxt_, resend);
    sndNxt_ += resend;
    unsent_ -= resend;
    armRto();
}

void
TcpConnection::updateRtt(sim::Time sample)
{
    if (!rttValid_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
        rttValid_ = true;
    } else {
        sim::Time err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
    }
    rto_ = std::max(cfg_.minRto, srtt_ + 4 * rttvar_);
    rto_ = std::min(rto_, cfg_.maxRto);
}

void
TcpConnection::fail()
{
    state_ = State::Failed;
    cancelRto();
    if (failureHandler_)
        failureHandler_();
}

} // namespace npf::tcp
