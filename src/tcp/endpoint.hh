/**
 * @file
 * IOuser-side TCP endpoint over a direct Ethernet channel: the role
 * lwIP plays in the paper's running example (§5). Owns the receive
 * ring buffers (allocated, not pinned — so a cold ring genuinely
 * faults), demultiplexes inbound segments to connections, and feeds
 * outbound segments to a NIC transmit queue.
 */

#ifndef NPF_TCP_ENDPOINT_HH
#define NPF_TCP_ENDPOINT_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "eth/eth_nic.hh"
#include "mem/address_space.hh"
#include "sim/ring_deque.hh"
#include "tcp/tcp_connection.hh"

namespace npf::tcp {

/** Endpoint parameters. */
struct EndpointConfig
{
    std::size_t rxBufBytes = 2048; ///< per receive descriptor
    TcpConfig tcp;
    /** Pre-fault and pin the ring buffers at startup (the paper's
     *  "pin" baseline). Off = demand-paged (cold ring at start). */
    bool pinRxBuffers = false;
    /** Pre-fault (but not pin) buffers, e.g. for what-if runs that
     *  must eliminate the cold-ring effect. */
    bool prefaultRxBuffers = false;
};

/**
 * A user-level TCP stack bound to one NIC receive ring and one
 * transmit queue.
 */
class Endpoint
{
  public:
    /**
     * @param as IOuser address space the ring buffers live in.
     * @param ch NpfController channel of this IOchannel.
     * @param ring_cfg receive-ring geometry and fault policy.
     * @param peer_ring ring id on the connected NIC to address.
     */
    Endpoint(sim::EventQueue &eq, eth::EthNic &nic, mem::AddressSpace &as,
             core::ChannelId ch, eth::RxRingConfig ring_cfg,
             unsigned peer_ring, EndpointConfig cfg = {});

    /** Create (or fetch) the connection with id @p conn_id. */
    TcpConnection &connection(std::uint32_t conn_id);

    /** True if a connection with this id exists. */
    bool hasConnection(std::uint32_t conn_id) const
    {
        return conns_.count(conn_id) > 0;
    }

    unsigned ringId() const { return ringId_; }
    eth::EthNic &nic() { return nic_; }
    mem::AddressSpace &space() { return as_; }

    /** Total faults the ring has taken (for reporting). */
    const eth::RxRing::Stats &ringStats() const
    {
        return nic_.ring(ringId_).stats;
    }

  private:
    void handleFrame(const eth::Frame &f);
    void sendSegment(const Segment &seg, mem::VirtAddr src);

    sim::EventQueue &eq_;
    eth::EthNic &nic_;
    mem::AddressSpace &as_;
    core::ChannelId ch_;
    EndpointConfig cfg_;
    unsigned ringId_ = 0;
    unsigned txq_ = 0;
    unsigned peerRing_;
    mem::VirtAddr rxRegion_ = 0;
    mem::VirtAddr txScratch_ = 0;
    std::size_t ringSize_;
    std::unordered_map<std::uint32_t, std::unique_ptr<TcpConnection>>
        conns_;
};

/**
 * Message framing over one direction of a TCP connection pair.
 *
 * Payload content is not simulated, so framing metadata travels
 * out-of-band between the two simulated endpoints: the sender pushes
 * a message boundary, the receiver pops it when the in-order byte
 * stream crosses it. Semantics match length-prefixed framing on a
 * real stack.
 */
class MessageStream
{
  public:
    using MessageHandler =
        std::function<void(std::uint64_t cookie, std::size_t len)>;

    /**
     * @param sender the transmitting endpoint's connection.
     * @param receiver the remote connection delivering the stream.
     */
    MessageStream(TcpConnection &sender, TcpConnection &receiver)
        : sender_(sender)
    {
        receiver.onDeliver([this](std::size_t bytes) {
            delivered_ += bytes;
            while (!boundaries_.empty() &&
                   boundaries_.front().boundary <= delivered_) {
                Boundary b = boundaries_.front();
                boundaries_.pop_front();
                if (handler_)
                    handler_(b.cookie, b.len);
            }
        });
    }

    /** Send one framed message of @p len payload bytes. */
    void
    sendMessage(std::size_t len, mem::VirtAddr src = 0,
                std::uint64_t cookie = 0)
    {
        sent_ += len;
        boundaries_.push_back(Boundary{sent_, len, cookie});
        sender_.send(len, src);
    }

    void onMessage(MessageHandler h) { handler_ = std::move(h); }

    std::uint64_t messagesPending() const { return boundaries_.size(); }

  private:
    struct Boundary
    {
        std::uint64_t boundary;
        std::size_t len;
        std::uint64_t cookie;
    };

    TcpConnection &sender_;
    MessageHandler handler_;
    sim::RingDeque<Boundary> boundaries_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
};

} // namespace npf::tcp

#endif // NPF_TCP_ENDPOINT_HH
