/**
 * @file
 * Minimal leveled logging for debugging simulations. Disabled by
 * default; tests and benches run silent unless NPF_LOG is raised.
 */

#ifndef NPF_SIM_LOG_HH
#define NPF_SIM_LOG_HH

#include <cstdio>

#include "sim/time.hh"

namespace npf::sim {

enum class LogLevel { None = 0, Warn = 1, Info = 2, Debug = 3 };

/**
 * Global log level; settable by programs. Defaults to warnings only,
 * unless the NPF_LOG environment variable is set at startup to one
 * of: none | warn | info | debug (or the numerals 0-3).
 */
LogLevel &logLevel();

/**
 * Optional annotator invoked between the time prefix and the message
 * body of every emitted log line. The observability layer installs
 * one that prints the active flow id while tracing is enabled, so
 * log lines can be correlated with trace spans. Pass nullptr to
 * clear.
 */
using LogAnnotator = void (*)(std::FILE *out);
void setLogAnnotator(LogAnnotator fn);

/** True if messages at @p lvl should be emitted. */
bool logEnabled(LogLevel lvl);

/** printf-style log with a simulated-time prefix. */
void logf(LogLevel lvl, Time now, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace npf::sim

#endif // NPF_SIM_LOG_HH
