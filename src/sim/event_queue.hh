/**
 * @file
 * The discrete-event engine at the heart of npfsim.
 *
 * Every model in the library (NICs, IOMMU, TCP timers, application
 * workloads) advances time exclusively by scheduling callbacks on a
 * shared EventQueue. Events scheduled for the same tick execute in
 * FIFO order of scheduling, which makes runs fully deterministic.
 */

#ifndef NPF_SIM_EVENT_QUEUE_HH
#define NPF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace npf::sim {

/** Opaque handle identifying a scheduled event, usable to cancel it. */
using EventId = std::uint64_t;

/** EventId value that never names a live event. */
constexpr EventId kInvalidEvent = 0;

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; a simulation runs on a single thread. Event
 * callbacks may schedule further events (including at the current
 * time, which run after all previously scheduled same-tick events).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Lifetime counters, exported by the observability layer. */
    struct Stats
    {
        std::uint64_t scheduled = 0;       ///< schedule() calls
        std::uint64_t executed = 0;        ///< callbacks actually run
        std::uint64_t cancelled = 0;       ///< cancel() calls that hit
                                           ///< a live event
        std::uint64_t cancelledReaped = 0; ///< cancelled entries
                                           ///< discarded unexecuted
    };

    /**
     * Optional post-execution hook: (time, id, site). @p site is the
     * label passed to schedule(), or nullptr. Installed by
     * obs::Session for per-callback-site accounting; keep it cheap.
     */
    using ExecuteHook =
        std::function<void(Time now, EventId id, const char *site)>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is clamped to now().
     * @p site optionally labels the scheduling call site (a string
     * literal) for per-site metrics; it is not owned by the queue.
     * @return a handle that can be passed to cancel().
     */
    EventId
    schedule(Time when, Callback cb, const char *site = nullptr)
    {
        if (when < now_)
            when = now_;
        EventId id = nextId_++;
        heap_.push(Entry{when, id, std::move(cb), site});
        live_.insert(id);
        ++stats_.scheduled;
        return id;
    }

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    scheduleAfter(Time delay, Callback cb, const char *site = nullptr)
    {
        return schedule(now_ + delay, std::move(cb), site);
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that
     * already ran (or was already cancelled) is a harmless no-op —
     * such ids are ignored outright, so they cannot accumulate.
     */
    void
    cancel(EventId id)
    {
        if (id == kInvalidEvent || live_.find(id) == live_.end())
            return; // never scheduled, executed, or already reaped
        if (cancelled_.insert(id).second)
            ++stats_.cancelled;
    }

    /**
     * Number of entries still in the queue, *including* events that
     * were cancelled but whose entries have not been reaped yet. Use
     * live() for the count of events that will actually run.
     */
    std::size_t pending() const { return heap_.size(); }

    /** Number of scheduled events that will actually execute. */
    std::size_t live() const { return heap_.size() - cancelled_.size(); }

    /**
     * True when no entries remain in the queue (a queue holding only
     * cancelled events is not empty until they are reaped; check
     * live() == 0 for "nothing left to run").
     */
    bool empty() const { return heap_.empty(); }

    const Stats &stats() const { return stats_; }

    /** Install (or clear, with nullptr) the post-execution hook. */
    void setExecuteHook(ExecuteHook hook) { hook_ = std::move(hook); }

    /**
     * Run a single event, advancing time to it.
     * @return false when the queue is empty.
     */
    bool
    step()
    {
        reapCancelledTop();
        if (heap_.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        live_.erase(e.id);
        now_ = e.when;
        ++stats_.executed;
        e.cb();
        if (hook_)
            hook_(now_, e.id, e.site);
        return true;
    }

    /** Run all events up to and including time @p until. */
    void
    runUntil(Time until)
    {
        for (;;) {
            reapCancelledTop();
            if (heap_.empty() || heap_.top().when > until)
                break;
            if (!step())
                break;
        }
        if (now_ < until)
            now_ = until;
    }

    /** Run until the queue drains completely. */
    void
    run()
    {
        while (step()) {
        }
    }

    /**
     * Run until @p predicate becomes true (checked after each event),
     * the queue drains, or @p deadline passes.
     * @return true if the predicate was satisfied.
     */
    bool
    runUntilCondition(const std::function<bool()> &predicate, Time deadline)
    {
        if (predicate())
            return true;
        for (;;) {
            reapCancelledTop();
            if (heap_.empty() || heap_.top().when > deadline)
                break;
            if (!step())
                break;
            if (predicate())
                return true;
        }
        return predicate();
    }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        Callback cb;
        const char *site = nullptr;

        bool
        operator>(const Entry &o) const
        {
            // Earlier time first; FIFO among equal times via id.
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    /** Discard cancelled entries sitting at the top of the heap, so
     *  time-bounded loops never confuse a cancelled event's time with
     *  that of the next live one. */
    void
    reapCancelledTop()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                return;
            live_.erase(heap_.top().id);
            cancelled_.erase(it);
            ++stats_.cancelledReaped;
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> live_;      ///< scheduled, not yet popped
    std::unordered_set<EventId> cancelled_; ///< subset of live_
    Time now_ = 0;
    EventId nextId_ = 1;
    Stats stats_;
    ExecuteHook hook_;
};

} // namespace npf::sim

#endif // NPF_SIM_EVENT_QUEUE_HH
