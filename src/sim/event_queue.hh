/**
 * @file
 * The discrete-event engine at the heart of npfsim.
 *
 * Every model in the library (NICs, IOMMU, TCP timers, application
 * workloads) advances time exclusively by scheduling callbacks on a
 * shared EventQueue. Events scheduled for the same tick execute in
 * FIFO order of scheduling, which makes runs fully deterministic.
 *
 * Internals: a hierarchical timer wheel (six 256-slot levels, 64 ns
 * finest granularity, ~208 days total span) with an overflow list for
 * the far future, slab-allocated intrusive entries recycled through a
 * free list, and generation-stamped handles for O(1) cancellation.
 * The imminent 64 ns window is drained through a small binary heap so
 * the determinism contract — global (time, schedule-sequence) order —
 * is preserved bit-identically against the old binary-heap engine
 * (kept as tests/heap_event_queue.hh and proven equivalent by
 * tests/engine_oracle_test.cc). docs/ENGINE.md has the full design.
 */

#ifndef NPF_SIM_EVENT_QUEUE_HH
#define NPF_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/delegate.hh"
#include "sim/time.hh"

namespace npf::sim {

/**
 * Opaque handle identifying a scheduled event, usable to cancel it.
 * Encodes slab index (low 32 bits, biased by one so the handle is
 * never zero) and a per-slot generation stamp (high 32 bits), so a
 * stale handle — the event ran, was cancelled, or its slot was
 * recycled — can be rejected in O(1) without any lookup table.
 */
using EventId = std::uint64_t;

/** EventId value that never names a live event. */
constexpr EventId kInvalidEvent = 0;

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; a simulation runs on a single thread. Event
 * callbacks may schedule further events (including at the current
 * time, which run after all previously scheduled same-tick events).
 */
class EventQueue
{
  public:
    /** Hot-path callable: small captures run allocation-free. */
    using Callback = Delegate;

    /** Lifetime counters, exported by the observability layer. */
    struct Stats
    {
        std::uint64_t scheduled = 0;       ///< schedule() calls
        std::uint64_t executed = 0;        ///< callbacks actually run
        std::uint64_t cancelled = 0;       ///< cancel() calls that hit
                                           ///< a live event
        std::uint64_t cancelledReaped = 0; ///< cancelled entries
                                           ///< discarded unexecuted
    };

    /**
     * Per-schedule-site accounting collected by the event-loop
     * profiler (enableProfile()). Keyed by the site string literal's
     * address — distinct literals with identical text are merged at
     * export time, not here, to keep the hot path to one hash of a
     * pointer. simLagNs is the events' queue residency (execution
     * time minus schedule time): high values mean a site schedules
     * far ahead, not that the loop is slow.
     */
    struct SiteProfile
    {
        std::uint64_t count = 0;
        std::uint64_t wallNs = 0;
        std::uint64_t maxWallNs = 0;
        std::uint64_t simLagNs = 0;
    };

    /**
     * Optional post-execution hook: (time, id, site). @p site is the
     * label passed to schedule(), or nullptr. Installed by
     * obs::Session for per-callback-site accounting; keep it cheap.
     * Re-read after every callback, so a callback that clears it (a
     * Session tearing itself down mid-run) is honoured immediately.
     */
    using ExecuteHook =
        std::function<void(Time now, EventId id, const char *site)>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is clamped to now().
     * @p site optionally labels the scheduling call site (a string
     * literal) for per-site metrics; it is not owned by the queue.
     * @return a handle that can be passed to cancel().
     */
    EventId
    schedule(Time when, Callback cb, const char *site = nullptr)
    {
        if (when < now_)
            when = now_;
        // Idle queue: re-anchor the wheels at the new event, in either
        // direction — forward so a long quiet gap does not force it
        // through the overflow list, backward so a queue parked at the
        // far future (a drained "never" sentinel) recovers. Only ghost
        // heap items can remain, and those are skipped by generation.
        if (liveCount_ == 0) {
            base_ = when & ~Time(kSlotSpan0 - 1);
            curWindowEnd_ = saturatingAdd(base_, kSlotSpan0);
            wheelMin_ = kTimeMax;
            overflowMin_ = kTimeMax;
        }
        std::uint32_t idx = allocSlot();
        Entry &e = slab_[idx];
        e.when = when;
        // Local events live in the odd seq domain; boundary injections
        // (scheduleBoundary) take the even domain. Relative order among
        // local events is unchanged, so single-queue runs execute
        // bit-identically to the pre-split engine.
        e.seq = (nextSeq_++ << 1) | 1;
        e.cb = std::move(cb);
        e.site = site;
        e.schedAt = now_;
        EventId id = makeId(idx, e.gen);
        place(idx, when);
        ++liveCount_;
        ++stats_.scheduled;
        return id;
    }

    /**
     * Schedule @p cb to run @p delay after the current time. The sum
     * saturates at the end of time, so a "never" sentinel delay stays
     * in the far future instead of wrapping around and firing now.
     */
    EventId
    scheduleAfter(Time delay, Callback cb, const char *site = nullptr)
    {
        return schedule(saturatingAdd(now_, delay), std::move(cb), site);
    }

    /**
     * Schedule a boundary-message delivery with an explicit same-tick
     * order key instead of the queue's own schedule-sequence counter.
     * Shards use this to make cross-shard deliveries sort identically
     * no matter *when* (in wall-clock terms) the message was drained
     * from its ring: two runs that inject the same messages at the
     * same simulated times execute in the same order even if one run
     * staged them earlier than the other. Keys live in the even seq
     * domain (top bit forced on) so they can never collide with local
     * events and always sort *after* same-tick local work — a stable
     * convention that holds for any shard count — and a given
     * (when, orderKey) pair must be unique per queue.
     */
    EventId
    scheduleBoundary(Time when, std::uint64_t orderKey, Callback cb,
                     const char *site = nullptr)
    {
        // A boundary delivery in the past is a causality violation —
        // the conservative protocol guarantees every cross-shard
        // message is drained before the receiver runs past it, and a
        // loopback post in the past is a sender bug. Clamping here
        // would turn either into silent nondeterminism between shard
        // counts, so fail loudly in all builds.
        if (when < now_) {
            std::fprintf(stderr,
                         "EventQueue: boundary event in the past: "
                         "when %llu < now %llu (orderKey %llu%s%s)\n",
                         static_cast<unsigned long long>(when),
                         static_cast<unsigned long long>(now_),
                         static_cast<unsigned long long>(orderKey),
                         site ? ", site " : "", site ? site : "");
            std::abort();
        }
        if (liveCount_ == 0) {
            base_ = when & ~Time(kSlotSpan0 - 1);
            curWindowEnd_ = saturatingAdd(base_, kSlotSpan0);
            wheelMin_ = kTimeMax;
            overflowMin_ = kTimeMax;
        }
        std::uint32_t idx = allocSlot();
        Entry &e = slab_[idx];
        e.when = when;
        e.seq = (orderKey << 1) | (std::uint64_t(1) << 63);
        e.cb = std::move(cb);
        e.site = site;
        e.schedAt = now_;
        EventId id = makeId(idx, e.gen);
        place(idx, when);
        ++liveCount_;
        ++stats_.scheduled;
        return id;
    }

    /**
     * Cancel a previously scheduled event in O(1): the entry is
     * unlinked from its wheel bucket and its slot recycled
     * immediately. Cancelling an event that already ran (or was
     * already cancelled) is a harmless no-op — the generation stamp
     * in the handle no longer matches, so stale ids are rejected
     * outright and cannot accumulate.
     */
    void
    cancel(EventId id)
    {
        std::uint32_t idx = static_cast<std::uint32_t>(id);
        if (idx == 0 || idx > slab_.size())
            return;
        --idx; // ids are slab index + 1
        Entry &e = slab_[idx];
        if (e.gen != static_cast<std::uint32_t>(id >> 32) ||
            e.bucket == kBucketFree)
            return; // executed, cancelled, or slot recycled
        if (e.bucket != kBucketCurrent)
            unlink(idx);
        ++stats_.cancelled;
        ++stats_.cancelledReaped;
        --liveCount_;
        freeSlot(idx); // may run capture destructors; keep last
    }

    /**
     * Number of events still queued. Cancelled events are reclaimed
     * immediately (unlike the old heap engine, which reaped them
     * lazily), so this equals live().
     */
    std::size_t pending() const { return liveCount_; }

    /** Number of scheduled events that will actually execute. */
    std::size_t live() const { return liveCount_; }

    /** True when nothing is left to run. */
    bool empty() const { return liveCount_ == 0; }

    const Stats &stats() const { return stats_; }

    /** Install (or clear, with nullptr) the post-execution hook. */
    void setExecuteHook(ExecuteHook hook) { hook_ = std::move(hook); }

    /**
     * Event-loop profiler: per-schedule-site execution counts, wall
     * time (host clock; excluded from simulation state so determinism
     * is untouched) and sim-time queue residency. Off by default; the
     * disabled cost is one branch per executed event.
     */
    void enableProfile(bool on) { profile_ = on; }
    bool profiling() const { return profile_; }
    void clearProfile() { siteProfiles_.clear(); }
    const std::unordered_map<const char *, SiteProfile> &
    siteProfiles() const
    {
        return siteProfiles_;
    }

    /**
     * Run a single event, advancing time to it.
     * @return false when the queue is empty.
     */
    bool
    step()
    {
        return stepBounded(kTimeMax) == Bounded::Ran;
    }

    /** Run all events up to and including time @p until. */
    void
    runUntil(Time until)
    {
        // Single-scan drain: each iteration validates the heap top
        // once and either executes it or stops. The old
        // peekNextTime()+step() pairing validated (and potentially
        // ghost-popped / advanced) twice per event, which doubled the
        // wheel work exactly where burst arrivals batch up.
        while (stepBounded(until) == Bounded::Ran) {
        }
        if (now_ < until)
            now_ = until;
    }

    /** Run until the queue drains completely. */
    void
    run()
    {
        while (step()) {
        }
    }

    /**
     * Run until @p predicate becomes true (checked after each event),
     * the queue drains, or @p deadline passes. On failure the clock is
     * clamped to @p deadline, exactly like runUntil(), so callers
     * alternating the two never observe a stalled clock.
     * @return true if the predicate was satisfied.
     */
    bool
    runUntilCondition(const std::function<bool()> &predicate, Time deadline)
    {
        if (predicate())
            return true;
        while (stepBounded(deadline) == Bounded::Ran) {
            if (predicate())
                return true;
        }
        if (predicate())
            return true;
        if (now_ < deadline)
            now_ = deadline;
        return false;
    }

  private:
    /** stepBounded() outcomes. */
    enum class Bounded { Ran, Beyond, Empty };

    /**
     * Execute the next event if its time is <= @p limit. The heart of
     * step()/runUntil()/runUntilCondition(): one top validation per
     * executed event.
     */
    Bounded
    stepBounded(Time limit)
    {
        for (;;) {
            while (!curHeap_.empty()) {
                HeapItem top = curHeap_.front();
                Entry &e = slab_[top.idx];
                if (e.gen != top.gen || e.bucket != kBucketCurrent) {
                    popHeap(); // ghost of a cancelled/recycled entry
                    continue;
                }
                if (!trustTop(top.when))
                    break; // something earlier may sit in the wheels
                if (top.when > limit)
                    return Bounded::Beyond;
                popHeap();
                // Move everything out of the slot and recycle it
                // before invoking: the callback may schedule (and the
                // slab may reallocate) or cancel re-entrantly.
                Callback cb = std::move(e.cb);
                const char *site = e.site;
                Time schedAt = e.schedAt;
                EventId id = makeId(top.idx, top.gen);
                freeSlot(top.idx);
                --liveCount_;
                now_ = top.when;
                ++stats_.executed;
                if (profile_) {
                    auto t0 = std::chrono::steady_clock::now();
                    cb();
                    auto wall = std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0);
                    SiteProfile &sp =
                        siteProfiles_[site != nullptr ? site : ""];
                    ++sp.count;
                    std::uint64_t w =
                        static_cast<std::uint64_t>(wall.count());
                    sp.wallNs += w;
                    sp.maxWallNs = std::max(sp.maxWallNs, w);
                    sp.simLagNs += now_ - schedAt;
                } else {
                    cb();
                }
                if (hook_) // re-read: the callback may have cleared it
                    hook_(now_, id, site);
                return Bounded::Ran;
            }
            if (!advance())
                return Bounded::Empty;
        }
    }

  public:
    // --- geometry -------------------------------------------------------
    //
    // Six wheel levels of 256 slots; level L slots are 2^(6+8L) ns
    // wide. Level 0 resolves 64 ns buckets; the whole hierarchy spans
    // 2^54 ns (~208 days) ahead of base_. Anything farther (e.g.
    // kTimeMax "never" timers) waits in the overflow list.
    static constexpr unsigned kLevels = 6;
    static constexpr unsigned kSlotBits = 8;
    static constexpr unsigned kSlots = 1u << kSlotBits;   // 256
    static constexpr unsigned kShift0 = 6;                // 64 ns
    static constexpr Time kSlotSpan0 = Time(1) << kShift0;

    static constexpr unsigned
    levelShift(unsigned level)
    {
        return kShift0 + kSlotBits * level;
    }

    // Bucket ids: wheels first, then the special pseudo-buckets.
    static constexpr std::uint32_t kBucketOverflow = kLevels * kSlots;
    static constexpr std::uint32_t kBucketCurrent = kBucketOverflow + 1;
    static constexpr std::uint32_t kBucketFree = kBucketOverflow + 2;
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** One slab slot: an intrusive doubly-linked list node. */
    struct Entry
    {
        Time when = 0;
        std::uint64_t seq = 0; ///< schedule order, same-tick FIFO key
        Callback cb;
        const char *site = nullptr;
        Time schedAt = 0;      ///< now() at schedule, for the profiler
        std::uint32_t gen = 1;  ///< bumped on every free (stale-id check)
        std::uint32_t next = kNil;
        std::uint32_t prev = kNil;
        std::uint32_t bucket = kBucketFree;
    };

    struct BucketList
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    /** curHeap_ item; (when, seq) orders the imminent window. */
    struct HeapItem
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    static EventId
    makeId(std::uint32_t idx, std::uint32_t gen)
    {
        return (EventId(gen) << 32) | (idx + 1);
    }

    std::uint32_t
    allocSlot()
    {
        if (freeHead_ != kNil) {
            std::uint32_t idx = freeHead_;
            freeHead_ = slab_[idx].next;
            return idx;
        }
        slab_.emplace_back();
        return static_cast<std::uint32_t>(slab_.size() - 1);
    }

    /**
     * Recycle a slot: bump the generation (invalidating outstanding
     * handles), push it on the free list, and destroy the callback
     * last — capture destructors may re-enter schedule()/cancel().
     */
    void
    freeSlot(std::uint32_t idx)
    {
        Entry &e = slab_[idx];
        ++e.gen;
        e.bucket = kBucketFree;
        e.prev = kNil;
        e.next = freeHead_;
        freeHead_ = idx;
        Callback dead = std::move(e.cb);
        // `dead` destroyed here; `e` may dangle if it reallocates the
        // slab re-entrantly, so don't touch it again.
    }

    void
    linkTail(std::uint32_t bucketIdx, std::uint32_t idx)
    {
        BucketList &b = buckets_[bucketIdx];
        Entry &e = slab_[idx];
        e.bucket = bucketIdx;
        e.next = kNil;
        e.prev = b.tail;
        if (b.tail == kNil)
            b.head = idx;
        else
            slab_[b.tail].next = idx;
        b.tail = idx;
        if (bucketIdx < kBucketOverflow)
            setBit(bucketIdx / kSlots, bucketIdx % kSlots);
        else
            ++overflowCount_;
    }

    void
    unlink(std::uint32_t idx)
    {
        Entry &e = slab_[idx];
        BucketList &b = buckets_[e.bucket];
        if (e.prev == kNil)
            b.head = e.next;
        else
            slab_[e.prev].next = e.next;
        if (e.next == kNil)
            b.tail = e.prev;
        else
            slab_[e.next].prev = e.prev;
        if (e.bucket < kBucketOverflow) {
            if (b.head == kNil)
                clearBit(e.bucket / kSlots, e.bucket % kSlots);
        } else {
            // A stale-low overflowMin_ is harmless while entries
            // remain (it only triggers an early pull), but must not
            // linger once the list empties: trustTop() would then
            // spin advance() forever chasing a phantom minimum.
            if (--overflowCount_ == 0)
                overflowMin_ = kTimeMax;
        }
    }

    // --- occupancy bitmaps (256 bits per level) -------------------------

    void
    setBit(unsigned level, unsigned slot)
    {
        occ_[level][slot >> 6] |= std::uint64_t(1) << (slot & 63);
    }

    void
    clearBit(unsigned level, unsigned slot)
    {
        occ_[level][slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
    }

    /**
     * Circular distance (0..255) from bit @p start to the first set
     * bit in a 256-bit map, or -1 when the map is empty.
     */
    static int
    findCircular(const std::uint64_t *occ, unsigned start)
    {
        unsigned w0 = start >> 6, b0 = start & 63;
        std::uint64_t m = occ[w0] & (~std::uint64_t(0) << b0);
        if (m)
            return int((unsigned(__builtin_ctzll(m)) + (w0 << 6) - start) &
                       (kSlots - 1));
        for (unsigned i = 1; i < 4; ++i) {
            unsigned w = (w0 + i) & 3;
            if (occ[w])
                return int((unsigned(__builtin_ctzll(occ[w])) + (w << 6) -
                            start) &
                           (kSlots - 1));
        }
        m = occ[w0] & ((std::uint64_t(1) << b0) - 1);
        if (m)
            return int((unsigned(__builtin_ctzll(m)) + (w0 << 6) - start) &
                       (kSlots - 1));
        return -1;
    }

    // --- placement ------------------------------------------------------

    /**
     * File event @p idx (when = @p when) into the structure that owns
     * its time range: the imminent-window heap, the finest wheel
     * level whose 256-slot window (anchored at base_) reaches it, or
     * the overflow list.
     */
    void
    place(std::uint32_t idx, Time when)
    {
        if (when < curWindowEnd_) {
            slab_[idx].bucket = kBucketCurrent;
            pushHeap(HeapItem{when, slab_[idx].seq, idx, slab_[idx].gen});
            return;
        }
        for (unsigned level = 0; level < kLevels; ++level) {
            unsigned sh = levelShift(level);
            if ((when >> sh) - (base_ >> sh) < kSlots) {
                unsigned slot = (when >> sh) & (kSlots - 1);
                if (when < wheelMin_)
                    wheelMin_ = when;
                linkTail(level * kSlots + slot, idx);
                return;
            }
        }
        if (when < overflowMin_)
            overflowMin_ = when;
        linkTail(kBucketOverflow, idx);
    }

    // --- advancement ----------------------------------------------------

    /**
     * Make the earliest pending events available in curHeap_ by
     * cascading wheel buckets (and pulling the overflow list) until
     * the imminent window holds the global minimum. Returns false
     * when nothing is queued anywhere.
     */
    bool
    advance()
    {
        for (;;) {
            // Earliest occupied bucket per level; min start wins,
            // ties go to the coarsest level so its contents merge
            // down before anything beneath them drains.
            int bestLevel = -1;
            Time bestStart = 0;
            std::uint64_t bestAbs = 0;
            for (unsigned level = 0; level < kLevels; ++level) {
                unsigned sh = levelShift(level);
                std::uint64_t cursor = base_ >> sh;
                int k = findCircular(occ_[level].data(),
                                     unsigned(cursor & (kSlots - 1)));
                if (k < 0)
                    continue;
                std::uint64_t abs = cursor + std::uint64_t(k);
                Time start = Time(abs) << sh;
                if (bestLevel < 0 || start < bestStart ||
                    (start == bestStart && level > unsigned(bestLevel))) {
                    bestLevel = int(level);
                    bestStart = start;
                    bestAbs = abs;
                }
            }
            // Every wheel event's time is at least its slot's start,
            // so the earliest candidate start is an exact lower bound;
            // refresh the (possibly stale-low) cache with it.
            wheelMin_ = bestLevel >= 0 ? bestStart : kTimeMax;

            // The overflow list holds events that were beyond the
            // wheels when scheduled; pull it back in whenever its
            // (conservative) minimum could precede the next window.
            if (overflowCount_ > 0) {
                bool mustPull = bestLevel < 0 && curHeap_.empty();
                Time limit = bestLevel >= 0
                                 ? saturatingAdd(bestStart, kSlotSpan0)
                                 : curWindowEnd_;
                if (mustPull || overflowMin_ < limit) {
                    pullOverflow(mustPull);
                    continue;
                }
            }

            if (!curHeap_.empty() &&
                (bestLevel < 0 || bestStart >= curWindowEnd_))
                return true; // imminent window already holds the min

            if (bestLevel < 0)
                return false; // nothing queued anywhere

            base_ = bestStart;
            // Saturate: a window anchored in the last 64 ns of time
            // must not wrap curWindowEnd_ to zero, or place() would
            // misfile every subsequent event.
            curWindowEnd_ = saturatingAdd(bestStart, kSlotSpan0);
            std::uint32_t bucketIdx =
                unsigned(bestLevel) * kSlots +
                unsigned(bestAbs & (kSlots - 1));
            if (bestLevel == 0) {
                moveBucketToCurrent(bucketIdx);
                return true;
            }
            cascade(bucketIdx);
        }
    }

    /** Spill a level-0 bucket into the imminent-window heap. */
    void
    moveBucketToCurrent(std::uint32_t bucketIdx)
    {
        std::uint32_t idx = detachBucket(bucketIdx);
        while (idx != kNil) {
            Entry &e = slab_[idx];
            std::uint32_t next = e.next;
            e.bucket = kBucketCurrent;
            pushHeap(HeapItem{e.when, e.seq, idx, e.gen});
            idx = next;
        }
    }

    /** Redistribute a coarse bucket across the finer levels. */
    void
    cascade(std::uint32_t bucketIdx)
    {
        std::uint32_t idx = detachBucket(bucketIdx);
        while (idx != kNil) {
            std::uint32_t next = slab_[idx].next;
            place(idx, slab_[idx].when);
            idx = next;
        }
    }

    /** Unhook a bucket's whole chain, clearing its occupancy bit. */
    std::uint32_t
    detachBucket(std::uint32_t bucketIdx)
    {
        BucketList &b = buckets_[bucketIdx];
        std::uint32_t head = b.head;
        b.head = b.tail = kNil;
        clearBit(bucketIdx / kSlots, bucketIdx % kSlots);
        return head;
    }

    /**
     * Re-place every overflow event that now fits the wheels. When
     * nothing nearer exists (@p rebase), first jump base_ to the true
     * overflow minimum so at least that event lands in a wheel.
     */
    void
    pullOverflow(bool rebase)
    {
        BucketList &b = buckets_[kBucketOverflow];
        Time trueMin = kTimeMax;
        for (std::uint32_t i = b.head; i != kNil; i = slab_[i].next)
            trueMin = std::min(trueMin, slab_[i].when);
        overflowMin_ = trueMin;
        if (rebase && trueMin > curWindowEnd_) {
            base_ = trueMin & ~Time(kSlotSpan0 - 1);
            curWindowEnd_ = saturatingAdd(base_, kSlotSpan0);
        }
        std::uint32_t idx = b.head;
        b.head = b.tail = kNil;
        overflowCount_ = 0;
        overflowMin_ = kTimeMax;
        while (idx != kNil) {
            std::uint32_t next = slab_[idx].next;
            place(idx, slab_[idx].when); // re-files or re-appends
            idx = next;
        }
    }

    // --- imminent-window heap ------------------------------------------

    struct HeapGreater
    {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    pushHeap(HeapItem item)
    {
        curHeap_.push_back(item);
        std::push_heap(curHeap_.begin(), curHeap_.end(), HeapGreater{});
    }

    void
    popHeap()
    {
        std::pop_heap(curHeap_.begin(), curHeap_.end(), HeapGreater{});
        curHeap_.pop_back();
    }

    /**
     * True when the imminent-window heap's top is provably the global
     * minimum. Normally every curHeap_ entry precedes everything in
     * the wheels and the overflow list by construction, but that
     * invariant can lapse at the very end of the time axis (a window
     * anchored at kTimeMax cannot extend past it), so the hot path
     * re-checks against two conservative lower bounds — never too
     * high, so a stale value costs an advance() rescan, never a
     * misordered event.
     */
    bool
    trustTop(Time when) const
    {
        return when <= wheelMin_ && when <= overflowMin_;
    }

    /**
     * Time of the next event that will actually run, advancing the
     * wheels (but executing nothing) to find it.
     */
    bool
    peekNextTime(Time &t)
    {
        for (;;) {
            while (!curHeap_.empty()) {
                const HeapItem &top = curHeap_.front();
                const Entry &e = slab_[top.idx];
                if (e.gen != top.gen || e.bucket != kBucketCurrent) {
                    popHeap(); // discard ghost
                    continue;
                }
                if (!trustTop(top.when))
                    break; // something earlier may sit in the wheels
                t = top.when;
                return true;
            }
            if (!advance())
                return false;
        }
    }

    std::vector<Entry> slab_;
    std::uint32_t freeHead_ = kNil;
    std::array<BucketList, kLevels * kSlots + 1> buckets_{};
    std::array<std::array<std::uint64_t, 4>, kLevels> occ_{};
    std::vector<HeapItem> curHeap_;
    Time base_ = 0;                  ///< start of the imminent window
    Time curWindowEnd_ = kSlotSpan0; ///< events below this live in curHeap_
    Time wheelMin_ = kTimeMax;       ///< conservative (never too high)
    Time overflowMin_ = kTimeMax;    ///< conservative (never too high)
    std::size_t overflowCount_ = 0;
    std::size_t liveCount_ = 0;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 1;
    Stats stats_;
    ExecuteHook hook_;
    bool profile_ = false;
    std::unordered_map<const char *, SiteProfile> siteProfiles_;
};

} // namespace npf::sim

#endif // NPF_SIM_EVENT_QUEUE_HH
