/**
 * @file
 * The discrete-event engine at the heart of npfsim.
 *
 * Every model in the library (NICs, IOMMU, TCP timers, application
 * workloads) advances time exclusively by scheduling callbacks on a
 * shared EventQueue. Events scheduled for the same tick execute in
 * FIFO order of scheduling, which makes runs fully deterministic.
 */

#ifndef NPF_SIM_EVENT_QUEUE_HH
#define NPF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace npf::sim {

/** Opaque handle identifying a scheduled event, usable to cancel it. */
using EventId = std::uint64_t;

/** EventId value that never names a live event. */
constexpr EventId kInvalidEvent = 0;

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; a simulation runs on a single thread. Event
 * callbacks may schedule further events (including at the current
 * time, which run after all previously scheduled same-tick events).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is clamped to now().
     * @return a handle that can be passed to cancel().
     */
    EventId
    schedule(Time when, Callback cb)
    {
        if (when < now_)
            when = now_;
        EventId id = nextId_++;
        heap_.push(Entry{when, id, std::move(cb)});
        return id;
    }

    /** Schedule @p cb to run @p delay after the current time. */
    EventId
    scheduleAfter(Time delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event. Cancelling an event that
     * already ran (or was already cancelled) is a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        if (id != kInvalidEvent)
            cancelled_.insert(id);
    }

    /** Number of events still in the queue (may include cancelled). */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain in the queue. */
    bool empty() const { return heap_.empty(); }

    /**
     * Run a single event, advancing time to it.
     * @return false when the queue is empty.
     */
    bool
    step()
    {
        while (!heap_.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap_.top()));
            heap_.pop();
            if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
                cancelled_.erase(it);
                continue;
            }
            now_ = e.when;
            e.cb();
            return true;
        }
        return false;
    }

    /** Run all events up to and including time @p until. */
    void
    runUntil(Time until)
    {
        while (!heap_.empty() && heap_.top().when <= until) {
            if (!step())
                break;
        }
        if (now_ < until)
            now_ = until;
    }

    /** Run until the queue drains completely. */
    void
    run()
    {
        while (step()) {
        }
    }

    /**
     * Run until @p predicate becomes true (checked after each event),
     * the queue drains, or @p deadline passes.
     * @return true if the predicate was satisfied.
     */
    bool
    runUntilCondition(const std::function<bool()> &predicate, Time deadline)
    {
        if (predicate())
            return true;
        while (!heap_.empty() && heap_.top().when <= deadline) {
            if (!step())
                break;
            if (predicate())
                return true;
        }
        return predicate();
    }

  private:
    struct Entry
    {
        Time when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            // Earlier time first; FIFO among equal times via id.
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> cancelled_;
    Time now_ = 0;
    EventId nextId_ = 1;
};

} // namespace npf::sim

#endif // NPF_SIM_EVENT_QUEUE_HH
