#include "sim/shard.hh"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace npf::sim {

ShardedEngine::ShardedEngine(Config cfg) : cfg_(cfg)
{
    if (cfg_.shards == 0)
        cfg_.shards = 1;
    if (cfg_.lookahead == 0)
        cfg_.lookahead = 1; // conservative sync needs strictly
                            // positive lookahead to make progress;
                            // 1 suffices because published clocks are
                            // floors on *future* work (see runShard)
    threaded_ = cfg_.shards > 1;
    shards_.reserve(cfg_.shards);
    for (unsigned s = 0; s < cfg_.shards; ++s) {
        auto sh = std::make_unique<Shard>();
        sh->id = s;
        sh->in.resize(cfg_.shards);
        for (unsigned src = 0; src < cfg_.shards; ++src)
            if (src != s)
                sh->in[src] =
                    std::make_unique<SpscRing>(cfg_.ringCapacity);
        shards_.push_back(std::move(sh));
    }
    if (threaded_) {
        for (auto &sh : shards_)
            sh->th = std::thread([this, p = sh.get()] { workerLoop(*p); });
        // Hand each shard's message pool to its worker: debug builds
        // assert pool ownership, and deliveries acquire from it on
        // the worker thread.
        for (auto &sh : shards_) {
            Pool<BoundaryMsg> *pool = &sh->msgPool;
            invokeOn(sh->id, [pool] { pool->rebindOwner(); });
        }
    }
}

ShardedEngine::~ShardedEngine()
{
    if (threaded_) {
        for (auto &sh : shards_) {
            // Destroy the queue on its worker: undelivered event
            // closures hold PoolRefs into that thread's thread-local
            // pools (fabric record parking, oversized delegate
            // captures), and release asserts thread ownership in
            // debug builds.
            invokeOn(sh->id, [&sh] { sh->eq.reset(); });
            startJob(*sh, 3, nullptr, 0);
            waitJob(*sh);
            sh->th.join();
        }
    }
}

void
ShardedEngine::startJob(Shard &s, int job, const std::function<void()> *fn,
                        Time until)
{
    std::lock_guard<std::mutex> lk(s.mu);
    s.job = job;
    s.fn = fn;
    s.until = until;
    s.done = false;
    s.cv.notify_all();
}

void
ShardedEngine::waitJob(Shard &s)
{
    std::unique_lock<std::mutex> lk(s.mu);
    s.cv.wait(lk, [&s] { return s.done; });
}

void
ShardedEngine::workerLoop(Shard &s)
{
    for (;;) {
        int job;
        const std::function<void()> *fn;
        Time until;
        {
            std::unique_lock<std::mutex> lk(s.mu);
            s.cv.wait(lk, [&s] { return s.job != 0; });
            job = s.job;
            fn = s.fn;
            until = s.until;
            s.job = 0;
        }
        if (job == 1)
            (*fn)();
        else if (job == 2)
            runShard(s, until);
        {
            std::lock_guard<std::mutex> lk(s.mu);
            s.done = true;
            s.cv.notify_all();
        }
        if (job == 3)
            return;
    }
}

void
ShardedEngine::invokeOn(unsigned s, const std::function<void()> &fn)
{
    Shard &sh = *shards_[s];
    if (!threaded_) {
        fn();
        return;
    }
    if (std::this_thread::get_id() == sh.th.get_id()) {
        fn(); // already on the owning worker (nested use)
        return;
    }
    startJob(sh, 1, &fn, 0);
    waitJob(sh);
}

void
ShardedEngine::bind(unsigned s, std::uint32_t kind, Handler h)
{
    Shard &sh = *shards_[s];
    auto [it, fresh] = sh.handlers.emplace(kind, std::move(h));
    if (!fresh) {
        std::fprintf(stderr,
                     "ShardedEngine: duplicate handler kind %u on "
                     "shard %u\n",
                     kind, s);
        std::abort();
    }
}

void
ShardedEngine::deliver(Shard &s, const BoundaryMsg &m)
{
    auto it = s.handlers.find(m.kind);
    if (it == s.handlers.end()) {
        std::fprintf(stderr,
                     "ShardedEngine: no handler for kind %u on shard "
                     "%u (srcShard %u, when %llu)\n",
                     m.kind, unsigned(m.dstShard), unsigned(m.srcShard),
                     static_cast<unsigned long long>(m.when));
        std::abort();
    }
    // Handler address is stable: unordered_map never moves nodes.
    const Handler *h = &it->second;
    PoolRef ref = s.msgPool.acquire(m);
    s.eq->scheduleBoundary(
        m.when, m.orderKey,
        [h, ref = std::move(ref)] { (*h)(*ref.as<BoundaryMsg>()); },
        "shard::boundary");
}

void
ShardedEngine::post(const BoundaryMsg &m)
{
    Shard &src = *shards_[m.srcShard];
    Shard &dst = *shards_[m.dstShard];
    ++src.posted;
    if (&src == &dst) {
        deliver(dst, m);
        return;
    }
    // The lookahead floor is THE safety invariant of the conservative
    // protocol; a violation in a release build would otherwise decay
    // into silent nondeterminism between shard counts (the delivery
    // would be clamped into the receiver's past), so check it in all
    // builds.
    if (m.when < saturatingAdd(src.eq->now(), cfg_.lookahead)) {
        std::fprintf(stderr,
                     "ShardedEngine: boundary message inside the "
                     "lookahead window: when %llu < now %llu + "
                     "lookahead %llu (kind %u, shard %u -> %u)\n",
                     static_cast<unsigned long long>(m.when),
                     static_cast<unsigned long long>(src.eq->now()),
                     static_cast<unsigned long long>(cfg_.lookahead),
                     m.kind, unsigned(m.srcShard), unsigned(m.dstShard));
        std::abort();
    }
    SpscRing &ring = *dst.in[m.srcShard];
    // Full ring = backpressure: the sender stalls (its clock stops
    // advancing) until the receiver drains. While waiting, drain our
    // own inbound rings: if two shards burst into each other's full
    // rings inside one horizon window, each is popping exactly the
    // ring the other is spinning on, so the cycle cannot deadlock.
    // (Drained messages are future events by the lookahead invariant;
    // they are scheduled, never executed, from here.)
    while (!ring.tryPush(m)) {
        drainInto(src);
        std::this_thread::yield();
    }
}

void
ShardedEngine::drainInto(Shard &s)
{
    BoundaryMsg m;
    for (auto &ring : s.in)
        if (ring)
            while (ring->tryPop(m))
                deliver(s, m);
}

void
ShardedEngine::runShard(Shard &s, Time until)
{
    const Time lookahead = cfg_.lookahead;
    bool finished = false;
    for (;;) {
        // Load clocks BEFORE draining: once clock_j = C is observed,
        // every message from j sent below C is already in the ring
        // (push happens-before the clock release-store), and every
        // message still in flight has when >= C + lookahead.
        Time horizon = kTimeMax; // exclusive
        for (auto &other : shards_)
            if (other.get() != &s)
                horizon = std::min(
                    horizon,
                    saturatingAdd(
                        other->clock.load(std::memory_order_acquire),
                        lookahead));
        drainInto(s);
        if (finished) {
            // Ran through `until`, but keep draining: a neighbor may
            // still be spinning on a full ring into us while it
            // executes its own final window.
            if (runDone_.load(std::memory_order_acquire) ==
                shards_.size())
                return;
            std::this_thread::yield();
            continue;
        }
        // clock_j is a floor on j's FUTURE executions (it never again
        // runs an event below clock_j), so every in-flight message
        // from j has when >= clock_j + lookahead = horizon_j: times
        // strictly below horizon are safe. Running through horizon-1
        // and publishing horizon-1 + 1 is what makes lookahead == 1
        // sufficient for progress — the old "ran through here" clock
        // pinned every shard at min_j(clock_j) and livelocked there.
        Time runTo = std::min(until, horizon - 1);
        Time prev = s.clock.load(std::memory_order_relaxed);
        s.eq->runUntil(runTo);
        Time next = saturatingAdd(runTo, 1);
        s.clock.store(next, std::memory_order_release);
        if (runTo == until && horizon > until) {
            // Every message with when <= until is accounted for.
            finished = true;
            runDone_.fetch_add(1, std::memory_order_acq_rel);
            continue;
        }
        if (next <= prev)
            std::this_thread::yield(); // blocked on a neighbor
    }
}

void
ShardedEngine::run(Time until)
{
    assert(until >= lastRunUntil_ && "run() deadlines must not go back");
    lastRunUntil_ = until;
    if (!threaded_) {
        Shard &s = *shards_[0];
        s.eq->runUntil(until);
        s.clock.store(saturatingAdd(until, 1),
                      std::memory_order_release);
        return;
    }
    runDone_.store(0, std::memory_order_relaxed);
    for (auto &sh : shards_)
        startJob(*sh, 2, nullptr, until);
    for (auto &sh : shards_)
        waitJob(*sh);
}

std::uint64_t
ShardedEngine::posted() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->posted;
    return n;
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->eq->stats().executed;
    return n;
}

} // namespace npf::sim
