/**
 * @file
 * Slab object pool with generation-stamped handles — the event
 * queue's slot-recycling recipe (event_queue.hh) generalized for any
 * hot-path object: frames, segment metadata, NPF breakdowns.
 *
 * Design points, shared with the ladder queue's slab:
 *
 *  - storage is chunked, so object addresses are stable across
 *    grow() (no reallocation of live objects, raw pointers may be
 *    cached alongside the handle);
 *  - every slot carries a generation counter bumped on release; a
 *    handle embeds the generation it was created under, so a stale
 *    or double release is detected exactly instead of silently
 *    corrupting the free list (the failure mode shared_ptr refcounts
 *    used to paper over);
 *  - acquire/release in steady state touch only the free list: zero
 *    heap allocation once the pool has grown to its high-water mark.
 *    Exhaustion grows gracefully by appending a chunk.
 *
 * Ownership across layers travels as a PoolRef: a type-erased RAII
 * reference that releases exactly once, moves by stealing, and
 * *clones on copy* (a copy is a new pooled object, never a second
 * owner of the same slot). Cloning keeps payload-carrying closures
 * compatible with sim::Delegate, whose copy path must compile even
 * for closures that are only ever moved (net::Link's duplicate fault
 * action does copy a delivery closure — each duplicate then owns its
 * own payload slot, and both releases are correct by construction).
 */

#ifndef NPF_SIM_POOL_HH
#define NPF_SIM_POOL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#ifndef NDEBUG
#include <thread>
#endif

namespace npf::sim {

/**
 * Reference to a pooled object: slab index + the generation the slot
 * had when acquired. Trivially copyable; copying the handle does NOT
 * copy ownership — exactly one release() per acquire() is the
 * contract, everything else is a checked error.
 */
struct PoolHandle
{
    static constexpr std::uint32_t kNullIdx = 0xffffffffu;

    std::uint32_t idx = kNullIdx;
    std::uint32_t gen = 0;

    explicit operator bool() const { return idx != kNullIdx; }
    bool operator==(const PoolHandle &o) const
    {
        return idx == o.idx && gen == o.gen;
    }
    bool operator!=(const PoolHandle &o) const { return !(*this == o); }
};

/**
 * Type-erased pool interface, so a PoolRef can travel through layers
 * that are opaque to the payload type (an eth::Frame does not know it
 * carries a tcp::Segment, just as the hardware sees only bytes).
 */
class PoolBase
{
  public:
    virtual ~PoolBase() = default;

    /** Release the slot behind @p h; aborts on stale/double release. */
    virtual void releaseOpaque(PoolHandle h) = 0;

    /**
     * Copy-construct a fresh pooled object from @p obj (which must be
     * an object of this pool's element type). @return the new slot's
     * address, with @p out set to its handle.
     */
    virtual void *cloneOpaque(const void *obj, PoolHandle &out) = 0;

    /** True when @p h refers to a live slot of the right generation. */
    virtual bool validHandle(PoolHandle h) const = 0;
};

/**
 * Owning, type-erased reference to one pooled object. Exactly-once
 * release via RAII; move steals, copy clones (see file comment).
 */
class PoolRef
{
  public:
    PoolRef() = default;
    PoolRef(PoolBase &pool, void *obj, PoolHandle h)
        : pool_(&pool), obj_(obj), h_(h)
    {
    }

    PoolRef(PoolRef &&o) noexcept
        : pool_(o.pool_), obj_(o.obj_), h_(o.h_)
    {
        o.pool_ = nullptr;
        o.obj_ = nullptr;
        o.h_ = PoolHandle{};
    }

    PoolRef &
    operator=(PoolRef &&o) noexcept
    {
        if (this != &o) {
            reset();
            pool_ = o.pool_;
            obj_ = o.obj_;
            h_ = o.h_;
            o.pool_ = nullptr;
            o.obj_ = nullptr;
            o.h_ = PoolHandle{};
        }
        return *this;
    }

    /** Copy = clone: the copy owns a brand-new slot. */
    PoolRef(const PoolRef &o)
    {
        if (o.obj_ != nullptr) {
            pool_ = o.pool_;
            obj_ = pool_->cloneOpaque(o.obj_, h_);
        }
    }

    PoolRef &
    operator=(const PoolRef &o)
    {
        if (this != &o) {
            reset();
            if (o.obj_ != nullptr) {
                pool_ = o.pool_;
                obj_ = pool_->cloneOpaque(o.obj_, h_);
            }
        }
        return *this;
    }

    ~PoolRef() { reset(); }

    /** Release now (idempotent on an empty ref). */
    void
    reset()
    {
        if (obj_ != nullptr) {
            pool_->releaseOpaque(h_);
            pool_ = nullptr;
            obj_ = nullptr;
            h_ = PoolHandle{};
        }
    }

    explicit operator bool() const { return obj_ != nullptr; }
    void *get() const { return obj_; }

    /** Downcast, mirroring the old static_pointer_cast use sites. */
    template <typename T>
    T *
    as() const
    {
        return static_cast<T *>(obj_);
    }

    PoolHandle handle() const { return h_; }
    PoolBase *pool() const { return pool_; }

  private:
    PoolBase *pool_ = nullptr;
    void *obj_ = nullptr;
    PoolHandle h_;
};

/**
 * The slab pool. @p T must be movable (for the callers') and
 * copy-constructible (for PoolRef's clone-on-copy).
 */
template <typename T>
class Pool final : public PoolBase
{
  public:
    /** @param name printed in the abort diagnostics.
     *  @param chunk_objs slots added per growth step. */
    explicit Pool(const char *name = "sim::Pool",
                  std::size_t chunk_objs = 256)
        : name_(name), chunkObjs_(chunk_objs)
    {
#ifndef NDEBUG
        owner_ = std::this_thread::get_id();
#endif
    }

    /**
     * Debug builds pin every pool to the thread that constructed it;
     * touching it from any other thread aborts (a pooled object that
     * crossed a shard boundary — the bug class sharding must never
     * paper over). Worlds are built on their shard's worker thread,
     * so the default owner is almost always right; rebindOwner() is
     * the explicit escape hatch for deliberate handoff.
     */
    void
    rebindOwner()
    {
#ifndef NDEBUG
        owner_ = std::this_thread::get_id();
#endif
    }

    ~Pool() override
    {
        // Destroy stragglers (objects still live at teardown, e.g.
        // frames parked in rings when a bench ends mid-flight).
        for (std::size_t c = 0; c < chunks_.size(); ++c)
            for (std::size_t i = 0; i < chunkObjs_; ++i) {
                Slot &s = chunks_[c][i];
                if (s.live)
                    ptr(s)->~T();
            }
    }

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Construct an object in a fresh slot. */
    template <typename... Args>
    PoolHandle
    create(Args &&...args)
    {
        checkOwner("create");
        std::uint32_t idx = allocSlot();
        Slot &s = slot(idx);
        new (s.storage) T(std::forward<Args>(args)...);
        s.live = true;
        ++liveCount_;
        return PoolHandle{idx, s.gen};
    }

    /** create() + wrap the result in an owning PoolRef. */
    template <typename... Args>
    PoolRef
    acquire(Args &&...args)
    {
        PoolHandle h = create(std::forward<Args>(args)...);
        return PoolRef(*this, ptr(slot(h.idx)), h);
    }

    /**
     * Checked dereference: aborts when @p h is stale (the slot was
     * released, possibly re-acquired under a new generation). This is
     * the fire-time revalidation deferred work uses before touching a
     * pooled object it does not own.
     */
    T *
    get(PoolHandle h)
    {
        checkOwner("get");
        check(h, "get");
        return ptr(slot(h.idx));
    }

    /** Non-aborting variant of get(): nullptr when stale. */
    T *
    tryGet(PoolHandle h)
    {
        checkOwner("tryGet");
        return validHandle(h) ? ptr(slot(h.idx)) : nullptr;
    }

    /** Destroy the object and recycle its slot. Aborts on a stale or
     *  repeated release — the bug class this pool exists to expose. */
    void
    release(PoolHandle h)
    {
        checkOwner("release");
        check(h, "release");
        Slot &s = slot(h.idx);
        ptr(s)->~T();
        s.live = false;
        ++s.gen; // invalidate every outstanding handle to this slot
        s.nextFree = freeHead_;
        freeHead_ = h.idx;
        --liveCount_;
    }

    // --- PoolBase ----------------------------------------------------

    void releaseOpaque(PoolHandle h) override { release(h); }

    void *
    cloneOpaque(const void *obj, PoolHandle &out) override
    {
        out = create(*static_cast<const T *>(obj));
        return ptr(slot(out.idx));
    }

    bool
    validHandle(PoolHandle h) const override
    {
        if (h.idx >= capacity())
            return false;
        const Slot &s =
            chunks_[h.idx / chunkObjs_][h.idx % chunkObjs_];
        return s.live && s.gen == h.gen;
    }

    // --- stats (leak assertions key off live()) ----------------------

    std::size_t live() const { return liveCount_; }
    std::size_t capacity() const { return chunks_.size() * chunkObjs_; }
    std::uint64_t totalAcquired() const { return totalAcquired_; }

  private:
    struct Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        std::uint32_t gen = 1; ///< 0 never valid: default PoolHandle
        std::uint32_t nextFree = PoolHandle::kNullIdx;
        bool live = false;
    };

    Slot &
    slot(std::uint32_t idx)
    {
        return chunks_[idx / chunkObjs_][idx % chunkObjs_];
    }

    static T *ptr(Slot &s) { return std::launder(reinterpret_cast<T *>(s.storage)); }

    std::uint32_t
    allocSlot()
    {
        if (freeHead_ == PoolHandle::kNullIdx)
            grow();
        std::uint32_t idx = freeHead_;
        freeHead_ = slot(idx).nextFree;
        ++totalAcquired_;
        return idx;
    }

    /** Exhaustion: append one chunk (the only allocation the pool
     *  ever performs after reaching its high-water mark). */
    void
    grow()
    {
        std::size_t base = capacity();
        chunks_.push_back(std::make_unique<Slot[]>(chunkObjs_));
        // Thread the new slots onto the free list, low index first.
        for (std::size_t i = chunkObjs_; i-- > 0;) {
            Slot &s = chunks_.back()[i];
            s.nextFree = freeHead_;
            freeHead_ = static_cast<std::uint32_t>(base + i);
        }
    }

    void
    checkOwner(const char *op) const
    {
#ifndef NDEBUG
        if (std::this_thread::get_id() == owner_)
            return;
        std::fprintf(stderr,
                     "%s: %s from non-owner thread (pooled object "
                     "crossed a shard boundary)\n",
                     name_, op);
        std::abort();
#else
        (void)op;
#endif
    }

    void
    check(PoolHandle h, const char *op) const
    {
        if (validHandle(h))
            return;
        // A generation mismatch is a use-after-release (or release-
        // twice): deterministic abort instead of silent corruption.
        std::fprintf(stderr,
                     "%s: %s of stale handle idx=%u gen=%u "
                     "(use-after-release or double release)\n",
                     name_, op, h.idx, h.gen);
        std::abort();
    }

    const char *name_;
    std::size_t chunkObjs_;
#ifndef NDEBUG
    std::thread::id owner_;
#endif
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t freeHead_ = PoolHandle::kNullIdx;
    std::size_t liveCount_ = 0;
    std::uint64_t totalAcquired_ = 0;
};

} // namespace npf::sim

#endif // NPF_SIM_POOL_HH
