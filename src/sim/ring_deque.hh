/**
 * @file
 * Grow-only circular buffer with deque semantics (push_back /
 * pop_front / iteration), for bounded FIFO state on simulation hot
 * paths: TX queues, in-flight windows, software backup queues.
 *
 * std::deque allocates and frees fixed-size blocks as elements cycle
 * through it, so a steady-state producer/consumer pair churns the
 * heap forever. RingDeque keeps one power-of-two buffer that only
 * ever grows: once a queue has seen its high-water mark, pushing and
 * popping never allocate again. pop_front() resets the vacated slot
 * to a default-constructed T, so element-owned resources (pooled
 * payload refs, closures) are dropped promptly, not when the slot is
 * next overwritten.
 */

#ifndef NPF_SIM_RING_DEQUE_HH
#define NPF_SIM_RING_DEQUE_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace npf::sim {

template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    /** Pre-size to at least @p n slots (rounded up to a power of 2). */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            regrow(n);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(head_ + size_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + size_ - 1)]; }

    /** Logical indexing: [0] is the front. */
    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(T v)
    {
        if (size_ == buf_.size())
            regrow(size_ + 1);
        buf_[wrap(head_ + size_)] = std::move(v);
        ++size_;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        buf_[head_] = T(); // drop owned resources now
        head_ = wrap(head_ + 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    // --- iteration (forward, front to back) ---------------------------

    template <typename Ring, typename Value>
    class Iter
    {
      public:
        Iter(Ring *r, std::size_t pos) : r_(r), pos_(pos) {}
        Value &operator*() const { return (*r_)[pos_]; }
        Value *operator->() const { return &(*r_)[pos_]; }
        Iter &operator++()
        {
            ++pos_;
            return *this;
        }
        bool operator==(const Iter &o) const { return pos_ == o.pos_; }
        bool operator!=(const Iter &o) const { return pos_ != o.pos_; }

      private:
        Ring *r_;
        std::size_t pos_;
    };

    using iterator = Iter<RingDeque, T>;
    using const_iterator = Iter<const RingDeque, const T>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    /** Grow to a power of two >= @p need, unwrapping into the new
     *  buffer so head_ restarts at 0. */
    void
    regrow(std::size_t need)
    {
        std::size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < need)
            cap *= 2;
        std::vector<T> nb(cap);
        for (std::size_t i = 0; i < size_; ++i)
            nb[i] = std::move((*this)[i]);
        buf_ = std::move(nb);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace npf::sim

#endif // NPF_SIM_RING_DEQUE_HH
