/**
 * @file
 * Small-buffer-optimized callable for the event-engine hot path.
 *
 * sim::Delegate is a drop-in replacement for std::function<void()> on
 * the per-packet scheduling paths: callables whose captures fit in the
 * inline buffer are stored in place (no heap allocation, no virtual
 * dispatch — one indirect call through a free-function stub). Larger
 * or throwing-move callables transparently fall back to a single heap
 * allocation that then travels by pointer steal, so a delegate passed
 * down a chain of hops (Fabric uplink -> switch -> downlink) costs at
 * most one allocation for its whole journey.
 *
 * The inline capacity is sized for the fattest per-packet closure in
 * the tree (an ib::QueuePair::Packet plus a peer pointer); use
 * Delegate::fitsInline<F> in a static_assert to pin a call site to the
 * no-allocation path.
 */

#ifndef NPF_SIM_DELEGATE_HH
#define NPF_SIM_DELEGATE_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace npf::sim {

class Delegate
{
  public:
    /** Inline storage, sized so sizeof(Delegate) is two cache lines. */
    static constexpr std::size_t kInlineCapacity = 112;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True when F is stored in place (no heap allocation). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineCapacity && alignof(F) <= kInlineAlign &&
        std::is_nothrow_move_constructible_v<F>;

    Delegate() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, Delegate> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    Delegate(F &&f)
    {
        emplace<std::remove_cvref_t<F>>(std::forward<F>(f));
    }

    Delegate(Delegate &&other) noexcept { moveFrom(other); }

    Delegate(const Delegate &other)
    {
        if (other.invoke_) {
            other.manage_(Op::CopyTo, &st_, &other.st_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
        }
    }

    Delegate &
    operator=(Delegate &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Delegate &
    operator=(const Delegate &other)
    {
        if (this != &other) {
            Delegate tmp(other);
            reset();
            moveFrom(tmp);
        }
        return *this;
    }

    ~Delegate() { reset(); }

    /** Destroy the held callable, leaving the delegate empty. */
    void
    reset()
    {
        if (invoke_) {
            // Clear before destroying: the captured state's destructor
            // may re-enter the owner (e.g. cancel further events).
            Manage m = manage_;
            invoke_ = nullptr;
            manage_ = nullptr;
            m(Op::Destroy, &st_, nullptr);
        }
    }

    void operator()() { invoke_(&st_); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    union Storage
    {
        alignas(kInlineAlign) unsigned char buf[kInlineCapacity];
        void *ptr;
    };

    enum class Op { MoveTo, CopyTo, Destroy };
    using Invoke = void (*)(Storage *);
    using Manage = void (*)(Op, Storage *, const Storage *);

    template <typename F>
    void
    emplace(F f)
    {
        if constexpr (fitsInline<F>) {
            ::new (static_cast<void *>(st_.buf)) F(std::move(f));
            invoke_ = [](Storage *s) {
                (*std::launder(reinterpret_cast<F *>(s->buf)))();
            };
            manage_ = [](Op op, Storage *dst, const Storage *src) {
                switch (op) {
                  case Op::MoveTo:
                    // Full relocation: move-construct, destroy source.
                    ::new (static_cast<void *>(dst->buf)) F(std::move(
                        *std::launder(reinterpret_cast<F *>(
                            const_cast<unsigned char *>(src->buf)))));
                    std::launder(reinterpret_cast<F *>(
                                     const_cast<unsigned char *>(src->buf)))
                        ->~F();
                    break;
                  case Op::CopyTo:
                    ::new (static_cast<void *>(dst->buf)) F(
                        *std::launder(reinterpret_cast<const F *>(src->buf)));
                    break;
                  case Op::Destroy:
                    std::launder(reinterpret_cast<F *>(dst->buf))->~F();
                    break;
                }
            };
        } else {
            st_.ptr = new F(std::move(f));
            invoke_ = [](Storage *s) { (*static_cast<F *>(s->ptr))(); };
            manage_ = [](Op op, Storage *dst, const Storage *src) {
                switch (op) {
                  case Op::MoveTo:
                    dst->ptr = src->ptr; // pointer steal
                    break;
                  case Op::CopyTo:
                    dst->ptr = new F(*static_cast<const F *>(src->ptr));
                    break;
                  case Op::Destroy:
                    delete static_cast<F *>(dst->ptr);
                    break;
                }
            };
        }
    }

    void
    moveFrom(Delegate &other) noexcept
    {
        if (other.invoke_) {
            other.manage_(Op::MoveTo, &st_, &other.st_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
    Storage st_;
};

} // namespace npf::sim

#endif // NPF_SIM_DELEGATE_HH
