/**
 * @file
 * Sharded conservative parallel simulation core.
 *
 * The world is partitioned into N shards; each shard owns a private
 * sim::EventQueue (and private pools — sim::Pool asserts ownership in
 * debug builds) and runs on its own worker thread. The ONLY coupling
 * between shards is the explicit, timestamped BoundaryMsg: a
 * trivially-copyable record carried over single-producer/single-
 * consumer rings, one ring per directed shard pair, alloc-free in
 * steady state.
 *
 * Synchronization is conservative null-message/lower-bound-timestamp
 * (the SimBricks recipe): every boundary message must be stamped at
 * least `lookahead` past the sender's current time — physically,
 * lookahead is the minimum link latency between any two hosts in
 * different shards, so a packet leaving shard A at time t cannot
 * affect shard B before t + lookahead. Each shard publishes a clock
 * that is a *floor on its future executions*: it will never again run
 * an event at a time below its published clock (after running through
 * time T it publishes T + 1). Each worker repeatedly
 *
 *   1. loads every neighbor's published clock (acquire),
 *   2. drains its inbound rings into its event queue,
 *   3. executes events strictly below the safe horizon
 *      `min_j(clock_j + lookahead)`,
 *   4. publishes its own new floor (release).
 *
 * The floor semantics make step 3 safe AND live for any lookahead
 * >= 1: every message still in flight from shard j was (or will be)
 * sent while j executes at some t >= clock_j, so it is stamped
 * `when >= clock_j + lookahead` — strictly beyond the horizon — and
 * running through horizon - 1 then publishing `horizon` always makes
 * progress. (A "ran through here" clock, by contrast, livelocks at
 * lookahead == 1: no shard could ever pass min_j(clock_j).) The
 * load-then-drain order closes the race: a sender pushes a message
 * into the ring *before* the release-store of the clock value that
 * made it possible, so once a receiver has acquire-loaded clock C
 * from shard j, every message from j stamped below C + lookahead is
 * already visible in the ring.
 *
 * Determinism: delivered messages are injected with
 * EventQueue::scheduleBoundary(when, orderKey), whose (when, key)
 * priority is independent of *wall-clock* drain timing — two replays
 * (or a 1-shard and an N-shard run using the same record path)
 * execute every shard's events in exactly the same order. With
 * shards == 1 no threads are spawned and run() degenerates to a plain
 * runUntil(), reducing bit-identically to the single-queue engine.
 */

#ifndef NPF_SIM_SHARD_HH
#define NPF_SIM_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/time.hh"

namespace npf::sim {

/**
 * One timestamped message crossing a shard boundary. Trivially
 * copyable by construction: closures do not cross shards, records do.
 * The fixed scalar fields cover the common wire cases (node ids,
 * byte counts); anything richer travels as a POD payload via
 * store()/load().
 */
struct BoundaryMsg
{
    static constexpr std::size_t kPayloadBytes = 96;

    Time when = 0;             ///< delivery time at the destination
    std::uint64_t orderKey = 0;///< same-tick tie-break, globally unique
    std::uint32_t kind = 0;    ///< receiver dispatch key (see bind())
    std::uint16_t srcShard = 0;
    std::uint16_t dstShard = 0;
    std::uint64_t a = 0;       ///< scalar args, meaning is kind-private
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
    std::uint32_t payloadLen = 0;
    unsigned char payload[kPayloadBytes] = {};

    /** Serialize a POD into the payload bytes. */
    template <typename T>
    void
    store(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "only PODs cross shard boundaries");
        static_assert(sizeof(T) <= kPayloadBytes, "grow kPayloadBytes");
        std::memcpy(payload, &v, sizeof(T));
        payloadLen = sizeof(T);
    }

    /** Deserialize the payload back into a POD. */
    template <typename T>
    T
    load() const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(sizeof(T) <= kPayloadBytes);
        T v;
        std::memcpy(&v, payload, sizeof(T));
        return v;
    }
};

static_assert(std::is_trivially_copyable_v<BoundaryMsg>);

/**
 * Fixed-capacity single-producer/single-consumer ring of
 * BoundaryMsg. Lock-free, alloc-free after construction; the
 * producer spins (with yields) when full — backpressure, never loss.
 */
class SpscRing
{
  public:
    /** @param capacity rounded up to a power of two. */
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    bool
    tryPush(const BoundaryMsg &m)
    {
        std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) > mask_)
            return false; // full
        slots_[t & mask_] = m;
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    bool
    tryPop(BoundaryMsg &out)
    {
        std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return false; // empty
        out = slots_[h & mask_];
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    std::size_t capacity() const { return mask_ + 1; }

    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

  private:
    std::size_t mask_ = 0;
    std::vector<BoundaryMsg> slots_;
    /// Consumer cursor (next pop). Separate cache lines: the producer
    /// and consumer each write one cursor and only read the other.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0}; ///< next push
};

/**
 * N event queues, N worker threads, conservative sync. See the file
 * comment for the protocol. Construction, world setup (invokeOn),
 * run(), and stats reads all happen on the controlling thread; only
 * the bodies passed to invokeOn and the simulation callbacks execute
 * on shard workers.
 */
class ShardedEngine
{
  public:
    /** Called on the destination shard's thread to deliver one
     *  boundary message at exactly msg.when. */
    using Handler = std::function<void(const BoundaryMsg &)>;

    struct Config
    {
        unsigned shards = 1;
        /**
         * Minimum cross-shard latency: every post()ed message must
         * satisfy `when >= sender now + lookahead`. Larger lookahead
         * means longer lock-free stretches per shard; it must never
         * exceed the true minimum cross-shard link latency.
         */
        Time lookahead = 1;
        /** Per-directed-pair ring capacity (messages). */
        std::size_t ringCapacity = 4096;
    };

    explicit ShardedEngine(Config cfg);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    unsigned shards() const { return unsigned(shards_.size()); }
    Time lookahead() const { return cfg_.lookahead; }

    /** Shard @p s's private queue. Touch it only from shard s (or
     *  between runs, from the controlling thread). */
    EventQueue &queue(unsigned s) { return *shards_[s]->eq; }

    /**
     * Execute @p fn on shard @p s's worker thread and wait for it.
     * World construction and teardown go through here so thread_local
     * singletons (obs registry, pooled slabs) and pool owners land on
     * the owning thread. Runs inline when the engine is single-shard.
     */
    void invokeOn(unsigned s, const std::function<void()> &fn);

    /**
     * Register the handler for messages of @p kind arriving at shard
     * @p s. Call during setup (typically from within invokeOn), never
     * while run() is in flight.
     */
    void bind(unsigned s, std::uint32_t kind, Handler h);

    /**
     * Send a boundary message. Must be called on the srcShard's
     * thread; `m.when >= queue(srcShard).now() + lookahead` is
     * enforced (abort, in all builds) for cross-shard sends — a
     * violation would silently break determinism, so it is never
     * tolerated. Loopback (src == dst) schedules directly with no
     * latency floor.
     */
    void post(const BoundaryMsg &m);

    /**
     * Run every shard up to and including @p until (simulated time),
     * in parallel, then return with all shards quiescent at `until`.
     * Callable repeatedly with nondecreasing deadlines.
     */
    void run(Time until);

    /** Total boundary messages posted so far (all shards). */
    std::uint64_t posted() const;

    /** Total events executed so far, summed over all shard queues. */
    std::uint64_t executed() const;

  private:
    struct Shard
    {
        unsigned id = 0;
        /// Parks delivered messages while they wait in the queue
        /// (BoundaryMsg outgrows the Delegate SBO). Declared before
        /// eq so queue teardown can still release into it.
        Pool<BoundaryMsg> msgPool{"sim::Shard.msg"};
        /// unique_ptr so the engine dtor can destroy it *on the
        /// worker thread*: undelivered event closures hold PoolRefs
        /// into that thread's thread-local pools (fabric record
        /// parking, oversized delegate captures), and release asserts
        /// thread ownership in debug builds.
        std::unique_ptr<EventQueue> eq = std::make_unique<EventQueue>();
        /// Published floor on future executions: this shard will
        /// never again run an event at a time below `clock`.
        std::atomic<Time> clock{0};
        std::vector<std::unique_ptr<SpscRing>> in; ///< [srcShard]
        std::unordered_map<std::uint32_t, Handler> handlers;
        std::uint64_t posted = 0;

        // Job mailbox (controlling thread <-> worker).
        std::mutex mu;
        std::condition_variable cv;
        int job = 0; ///< 0 idle, 1 invoke, 2 run, 3 exit
        const std::function<void()> *fn = nullptr;
        Time until = 0;
        bool done = false;
        std::thread th;
    };

    void workerLoop(Shard &s);
    void runShard(Shard &s, Time until);
    /** Pop everything available and inject it into s.eq. */
    void drainInto(Shard &s);
    /** scheduleBoundary the dispatch of @p m on shard @p s. */
    void deliver(Shard &s, const BoundaryMsg &m);
    void startJob(Shard &s, int job, const std::function<void()> *fn,
                  Time until);
    void waitJob(Shard &s);

    Config cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    bool threaded_ = false;
    Time lastRunUntil_ = 0;
    /// Shards that reached `until` in the current run(). Finished
    /// shards keep draining their inbound rings until every shard is
    /// done, so a neighbor spinning on a full ring into a finished
    /// shard cannot hang.
    std::atomic<std::size_t> runDone_{0};
};

} // namespace npf::sim

#endif // NPF_SIM_SHARD_HH
