/**
 * @file
 * Simulated time: 64-bit unsigned nanoseconds since simulation start.
 *
 * All latencies in npfsim are expressed in this unit. Helpers convert
 * to and from floating-point seconds/microseconds for reporting.
 */

#ifndef NPF_SIM_TIME_HH
#define NPF_SIM_TIME_HH

#include <cstdint>

namespace npf::sim {

/** Simulated time in nanoseconds. */
using Time = std::uint64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * 1000;
constexpr Time kSecond = 1000ull * 1000 * 1000;

/** Largest representable time; doubles as a "never" sentinel. */
constexpr Time kTimeMax = ~Time(0);

/**
 * t + delta without wraparound: a sum past the end of time saturates
 * at kTimeMax instead of wrapping into the past. Timer code uses this
 * so a "never" sentinel delay stays in the far future.
 */
constexpr Time
saturatingAdd(Time t, Time delta)
{
    return delta > kTimeMax - t ? kTimeMax : t + delta;
}

/** Convert simulated time to seconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert simulated time to microseconds. */
constexpr double
toMicroseconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert seconds to simulated time, rounding to the nearest ns. */
constexpr Time
fromSeconds(double s)
{
    return static_cast<Time>(s * static_cast<double>(kSecond) + 0.5);
}

/** Convert microseconds to simulated time, rounding to the nearest ns. */
constexpr Time
fromMicroseconds(double us)
{
    return static_cast<Time>(us * static_cast<double>(kMicrosecond) + 0.5);
}

} // namespace npf::sim

#endif // NPF_SIM_TIME_HH
