/**
 * @file
 * Sample collector with percentile queries, used for the paper's
 * latency tables (Table 4) and general statistics.
 */

#ifndef NPF_SIM_HISTOGRAM_HH
#define NPF_SIM_HISTOGRAM_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace npf::sim {

/**
 * Stores raw samples and answers mean/percentile/extreme queries.
 * Percentile queries sort lazily and cache the sorted order.
 */
class Histogram
{
  public:
    /** Add one sample. */
    void
    record(double v)
    {
        samples_.push_back(v);
        sorted_ = false;
        sum_ += v;
    }

    /** Pre-size the sample buffer so record() stays allocation-free
     *  up to @p n samples (alloc-gated measure windows). */
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / double(samples_.size());
    }

    /** Population standard deviation; 0 when fewer than 2 samples. */
    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double m = mean(), acc = 0.0;
        for (double v : samples_)
            acc += (v - m) * (v - m);
        return std::sqrt(acc / double(samples_.size()));
    }

    /**
     * Percentile by nearest-rank. @p p in [0, 100]. p == 100 returns
     * the maximum. Returns 0 when empty.
     */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        ensureSorted();
        if (p <= 0.0)
            return samples_.front();
        if (p >= 100.0)
            return samples_.back();
        auto rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * double(samples_.size())));
        if (rank == 0)
            rank = 1;
        return samples_[rank - 1];
    }

    double min() const { return percentile(0); }
    double max() const { return percentile(100); }

    /** Discard all samples. */
    void
    clear()
    {
        samples_.clear();
        sum_ = 0.0;
        sorted_ = true;
    }

  private:
    void
    ensureSorted() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
};

} // namespace npf::sim

#endif // NPF_SIM_HISTOGRAM_HH
