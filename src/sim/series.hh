/**
 * @file
 * Time series recorder for throughput-over-time figures (Fig. 4(a),
 * Fig. 7). Counts events and reports per-bucket rates.
 */

#ifndef NPF_SIM_SERIES_HH
#define NPF_SIM_SERIES_HH

#include <cstddef>
#include <vector>

#include "sim/time.hh"

namespace npf::sim {

/**
 * Buckets event counts into fixed-width time intervals so a
 * benchmark can print a rate-versus-time series like the paper's
 * startup-throughput figures.
 */
class RateSeries
{
  public:
    /** @param bucket_width width of each bucket in simulated time. */
    explicit RateSeries(Time bucket_width) : width_(bucket_width) {}

    /** Record @p count events occurring at time @p t. */
    void
    record(Time t, double count = 1.0)
    {
        std::size_t idx = static_cast<std::size_t>(t / width_);
        if (buckets_.size() <= idx)
            buckets_.resize(idx + 1, 0.0);
        buckets_[idx] += count;
    }

    /** Pre-extend the bucket array through time @p until so record()
     *  stays allocation-free inside an alloc-gated measure window. */
    void
    reserveUntil(Time until)
    {
        std::size_t idx = static_cast<std::size_t>(until / width_);
        if (buckets_.size() <= idx)
            buckets_.resize(idx + 1, 0.0);
    }

    /** Number of buckets touched so far. */
    std::size_t buckets() const { return buckets_.size(); }

    /** Bucket start time. */
    Time bucketStart(std::size_t i) const { return Time(i) * width_; }

    /** Events per second over bucket @p i. */
    double
    rate(std::size_t i) const
    {
        if (i >= buckets_.size())
            return 0.0;
        return buckets_[i] / toSeconds(width_);
    }

    /** Raw count in bucket @p i. */
    double
    count(std::size_t i) const
    {
        return i < buckets_.size() ? buckets_[i] : 0.0;
    }

    /** Total events recorded. */
    double
    total() const
    {
        double t = 0.0;
        for (double b : buckets_)
            t += b;
        return t;
    }

  private:
    Time width_;
    std::vector<double> buckets_;
};

} // namespace npf::sim

#endif // NPF_SIM_SERIES_HH
