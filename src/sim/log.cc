#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace npf::sim {

namespace {

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("NPF_LOG");
    if (env == nullptr)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "3") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "none") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "0") == 0)
        return LogLevel::None;
    return LogLevel::Warn;
}

LogAnnotator &
annotator()
{
    static thread_local LogAnnotator fn = nullptr;
    return fn;
}

} // namespace

LogLevel &
logLevel()
{
    static thread_local LogLevel level = levelFromEnv();
    return level;
}

void
setLogAnnotator(LogAnnotator fn)
{
    annotator() = fn;
}

bool
logEnabled(LogLevel lvl)
{
    return static_cast<int>(lvl) <= static_cast<int>(logLevel());
}

void
logf(LogLevel lvl, Time now, const char *fmt, ...)
{
    if (!logEnabled(lvl))
        return;
    std::fprintf(stderr, "[%12.6f] ", toSeconds(now));
    if (annotator() != nullptr)
        annotator()(stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace npf::sim
