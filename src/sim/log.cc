#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>

namespace npf::sim {

LogLevel &
logLevel()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

bool
logEnabled(LogLevel lvl)
{
    return static_cast<int>(lvl) <= static_cast<int>(logLevel());
}

void
logf(LogLevel lvl, Time now, const char *fmt, ...)
{
    if (!logEnabled(lvl))
        return;
    std::fprintf(stderr, "[%12.6f] ", toSeconds(now));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace npf::sim
