/**
 * @file
 * Deterministic random number utilities for workload generation and
 * latency jitter. A thin wrapper over std::mt19937_64 so every model
 * draws from an explicitly seeded stream.
 */

#ifndef NPF_SIM_RANDOM_HH
#define NPF_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace npf::sim {

/**
 * Derive an independent stream seed from a base seed and a stream
 * index (splitmix64 finalizer). Subsystems that own several Rngs
 * (fault clauses, workload generators) use this so stream k's draws
 * never depend on how many draws stream j consumed.
 */
constexpr std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Seeded random stream.
 *
 * Each stochastic model (workload generator, jitter model) owns its
 * own Rng so interleaving of events never perturbs another model's
 * draw sequence.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform01() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(gen_);
    }

    /**
     * Log-normal multiplicative jitter with median 1.0 and the given
     * sigma of the underlying normal. Used by the NPF latency model.
     */
    double
    lognormalJitter(double sigma)
    {
        return std::lognormal_distribution<double>(0.0, sigma)(gen_);
    }

    /** Normally distributed value. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(gen_);
    }

    /** Underlying engine, for std distributions not wrapped here. */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace npf::sim

#endif // NPF_SIM_RANDOM_HH
