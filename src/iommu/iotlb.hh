/**
 * @file
 * IOTLB: the device's translation cache. Because translations are
 * cached, the IOprovider must explicitly invalidate entries when
 * mappings change — the (a)-(d) flow of Figure 2.
 *
 * Storage is flat and sized once at construction: an open-addressing
 * index over a fixed slot array whose entries carry intrusive LRU
 * links. A miss-heavy workload inserts and evicts on every DMA, so
 * node-based containers here would heap-churn per packet — the
 * stack-wide allocation gate (bench/stack_bench.cc) counts on the
 * steady state being allocation-free.
 */

#ifndef NPF_IOMMU_IOTLB_HH
#define NPF_IOMMU_IOTLB_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"

namespace npf::iommu {

/** Fully associative LRU translation cache. */
class IoTlb
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t evictions = 0;
        /// insert() on an already-cached vpn: re-map traffic that
        /// replaces the payload in place instead of adding an entry.
        std::uint64_t refreshes = 0;
    };

    explicit IoTlb(std::size_t capacity = 256) : capacity_(capacity)
    {
        assert(capacity_ > 0);
        slots_.resize(capacity_);
        for (std::size_t i = 0; i < capacity_; ++i)
            slots_[i].next =
                i + 1 < capacity_ ? std::uint32_t(i + 1) : kNil;
        freeHead_ = 0;
        std::size_t buckets = 16;
        while (buckets < capacity_ * 2)
            buckets <<= 1;
        table_.assign(buckets, kNil);
        mask_ = buckets - 1;
    }

    /** Look up a translation, refreshing its LRU position on a hit. */
    std::optional<mem::Pfn>
    lookup(mem::Vpn vpn)
    {
        std::size_t b = findBucket(vpn);
        if (table_[b] == kNil) {
            ++stats_.misses;
            return std::nullopt;
        }
        ++stats_.hits;
        touchLru(table_[b]);
        return slots_[table_[b]].pfn;
    }

    /** Insert (or refresh) a translation, evicting LRU if full. */
    void
    insert(mem::Vpn vpn, mem::Pfn pfn)
    {
        std::size_t b = findBucket(vpn);
        if (table_[b] != kNil) {
            slots_[table_[b]].pfn = pfn;
            touchLru(table_[b]);
            ++stats_.refreshes;
            return;
        }
        if (size_ >= capacity_) {
            evictOne();
            ++stats_.evictions;
            // The backward-shift of the eviction may have moved
            // entries into the empty bucket we found above.
            b = findBucket(vpn);
        }
        std::uint32_t s = freeHead_;
        freeHead_ = slots_[s].next;
        slots_[s].vpn = vpn;
        slots_[s].pfn = pfn;
        table_[b] = s;
        pushFrontLru(s);
        ++size_;
    }

    /** Drop one translation (invalidation flow). */
    void
    invalidate(mem::Vpn vpn)
    {
        std::size_t b = findBucket(vpn);
        if (table_[b] == kNil)
            return;
        removeAt(b);
        ++stats_.invalidations;
    }

    /** Drop everything. */
    void
    flush()
    {
        stats_.invalidations += size_;
        reset();
    }

    /**
     * Evict up to @p n least-recently-used entries (an injected
     * eviction storm; 0 = everything). @return entries evicted.
     */
    std::size_t
    evictLru(std::size_t n)
    {
        if (n == 0 || n >= size_) {
            std::size_t dropped = size_;
            stats_.evictions += dropped;
            reset();
            return dropped;
        }
        for (std::size_t i = 0; i < n; ++i) {
            evictOne();
            ++stats_.evictions;
        }
        return n;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    const Stats &stats() const { return stats_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** One translation; prev/next are intrusive LRU links. */
    struct Slot
    {
        mem::Vpn vpn = 0;
        mem::Pfn pfn = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    std::size_t
    homeBucket(mem::Vpn vpn) const
    {
        return std::size_t((std::uint64_t(vpn) *
                            0x9e3779b97f4a7c15ull) >>
                           32) &
               mask_;
    }

    /** Bucket holding @p vpn, or the first empty probe slot. */
    std::size_t
    findBucket(mem::Vpn vpn) const
    {
        std::size_t b = homeBucket(vpn);
        while (table_[b] != kNil && slots_[table_[b]].vpn != vpn)
            b = (b + 1) & mask_;
        return b;
    }

    /** Unlink table_[b] from hash + LRU and put its slot on the free
     *  list. Backward-shift deletion keeps probe chains intact. */
    void
    removeAt(std::size_t b)
    {
        std::uint32_t s = table_[b];
        unlinkLru(s);
        slots_[s].next = freeHead_;
        freeHead_ = s;
        --size_;

        std::size_t hole = b;
        std::size_t i = b;
        for (;;) {
            i = (i + 1) & mask_;
            std::uint32_t occ = table_[i];
            if (occ == kNil)
                break;
            std::size_t home = homeBucket(slots_[occ].vpn);
            if (((i - home) & mask_) >= ((i - hole) & mask_)) {
                table_[hole] = occ;
                hole = i;
            }
        }
        table_[hole] = kNil;
    }

    void
    evictOne()
    {
        assert(tail_ != kNil);
        removeAt(findBucket(slots_[tail_].vpn));
    }

    void
    pushFrontLru(std::uint32_t s)
    {
        slots_[s].prev = kNil;
        slots_[s].next = head_;
        if (head_ != kNil)
            slots_[head_].prev = s;
        head_ = s;
        if (tail_ == kNil)
            tail_ = s;
    }

    void
    unlinkLru(std::uint32_t s)
    {
        if (slots_[s].prev != kNil)
            slots_[slots_[s].prev].next = slots_[s].next;
        else
            head_ = slots_[s].next;
        if (slots_[s].next != kNil)
            slots_[slots_[s].next].prev = slots_[s].prev;
        else
            tail_ = slots_[s].prev;
    }

    void
    touchLru(std::uint32_t s)
    {
        if (head_ == s)
            return;
        unlinkLru(s);
        pushFrontLru(s);
    }

    void
    reset()
    {
        std::fill(table_.begin(), table_.end(), kNil);
        for (std::size_t i = 0; i < capacity_; ++i)
            slots_[i].next =
                i + 1 < capacity_ ? std::uint32_t(i + 1) : kNil;
        freeHead_ = 0;
        head_ = tail_ = kNil;
        size_ = 0;
    }

    std::size_t capacity_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::vector<Slot> slots_;          ///< fixed entry storage
    std::vector<std::uint32_t> table_; ///< open-addressing index
    std::uint32_t freeHead_ = kNil;
    std::uint32_t head_ = kNil; ///< MRU
    std::uint32_t tail_ = kNil; ///< LRU
    Stats stats_;
};

} // namespace npf::iommu

#endif // NPF_IOMMU_IOTLB_HH
