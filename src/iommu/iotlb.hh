/**
 * @file
 * IOTLB: the device's translation cache. Because translations are
 * cached, the IOprovider must explicitly invalidate entries when
 * mappings change — the (a)-(d) flow of Figure 2.
 */

#ifndef NPF_IOMMU_IOTLB_HH
#define NPF_IOMMU_IOTLB_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "mem/types.hh"

namespace npf::iommu {

/** Fully associative LRU translation cache. */
class IoTlb
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t evictions = 0;
    };

    explicit IoTlb(std::size_t capacity = 256) : capacity_(capacity) {}

    /** Look up a translation, refreshing its LRU position on a hit. */
    std::optional<mem::Pfn>
    lookup(mem::Vpn vpn)
    {
        auto it = map_.find(vpn);
        if (it == map_.end()) {
            ++stats_.misses;
            return std::nullopt;
        }
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return it->second.pfn;
    }

    /** Insert (or refresh) a translation, evicting LRU if full. */
    void
    insert(mem::Vpn vpn, mem::Pfn pfn)
    {
        auto it = map_.find(vpn);
        if (it != map_.end()) {
            it->second.pfn = pfn;
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            return;
        }
        if (map_.size() >= capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
        lru_.push_front(vpn);
        map_[vpn] = Entry{pfn, lru_.begin()};
    }

    /** Drop one translation (invalidation flow). */
    void
    invalidate(mem::Vpn vpn)
    {
        auto it = map_.find(vpn);
        if (it == map_.end())
            return;
        lru_.erase(it->second.lruIt);
        map_.erase(it);
        ++stats_.invalidations;
    }

    /** Drop everything. */
    void
    flush()
    {
        stats_.invalidations += map_.size();
        map_.clear();
        lru_.clear();
    }

    /**
     * Evict up to @p n least-recently-used entries (an injected
     * eviction storm; 0 = everything). @return entries evicted.
     */
    std::size_t
    evictLru(std::size_t n)
    {
        if (n == 0 || n >= map_.size()) {
            std::size_t dropped = map_.size();
            stats_.evictions += dropped;
            map_.clear();
            lru_.clear();
            return dropped;
        }
        for (std::size_t i = 0; i < n; ++i) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
        return n;
    }

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }
    const Stats &stats() const { return stats_; }

  private:
    struct Entry
    {
        mem::Pfn pfn;
        std::list<mem::Vpn>::iterator lruIt;
    };

    std::size_t capacity_;
    std::list<mem::Vpn> lru_;
    std::unordered_map<mem::Vpn, Entry> map_;
    Stats stats_;
};

} // namespace npf::iommu

#endif // NPF_IOMMU_IOTLB_HH
