/**
 * @file
 * Device-side I/O page table. In the paper's prototype this is the
 * on-NIC IOMMU's DRAM-resident table whose PTEs are allowed to be
 * invalid — the property that makes NPFs possible at all (§4).
 */

#ifndef NPF_IOMMU_IO_PAGE_TABLE_HH
#define NPF_IOMMU_IO_PAGE_TABLE_HH

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "mem/types.hh"

namespace npf::iommu {

/**
 * Sparse IOVA -> PFN mapping for one IOchannel. A PTE is invalid when
 * it is absent from the map *or* holds mem::kNoFrame: unmap() writes
 * the tombstone instead of erasing, exactly like the real DRAM table
 * where the PTE slot persists and only its valid bit flips. The
 * tombstone also keeps a map/unmap/remap cycle (the per-IO NP-RDMA
 * discipline's steady state) from churning hash-node allocations.
 */
class IoPageTable
{
  public:
    /** Translation; std::nullopt when the PTE is invalid. */
    std::optional<mem::Pfn>
    lookup(mem::Vpn vpn) const
    {
        auto it = table_.find(vpn);
        if (it == table_.end() || it->second == mem::kNoFrame)
            return std::nullopt;
        return it->second;
    }

    /** Install a valid PTE (driver fills this after resolving). */
    void
    map(mem::Vpn vpn, mem::Pfn pfn)
    {
        auto it = table_.try_emplace(vpn, mem::kNoFrame).first;
        if (it->second == mem::kNoFrame)
            ++live_;
        it->second = pfn;
    }

    /**
     * Invalidate a PTE.
     * @return true if the page was mapped (drives the cheap/expensive
     *   split in the invalidation breakdown of Fig. 3(b)).
     */
    bool
    unmap(mem::Vpn vpn)
    {
        auto it = table_.find(vpn);
        if (it == table_.end() || it->second == mem::kNoFrame)
            return false;
        it->second = mem::kNoFrame;
        --live_;
        return true;
    }

    bool
    isMapped(mem::Vpn vpn) const
    {
        auto it = table_.find(vpn);
        return it != table_.end() && it->second != mem::kNoFrame;
    }

    std::size_t mappedPages() const { return live_; }

    void
    clear()
    {
        table_.clear();
        live_ = 0;
    }

  private:
    std::unordered_map<mem::Vpn, mem::Pfn> table_;
    std::size_t live_ = 0;
};

} // namespace npf::iommu

#endif // NPF_IOMMU_IO_PAGE_TABLE_HH
