/**
 * @file
 * Device-side I/O page table. In the paper's prototype this is the
 * on-NIC IOMMU's DRAM-resident table whose PTEs are allowed to be
 * invalid — the property that makes NPFs possible at all (§4).
 */

#ifndef NPF_IOMMU_IO_PAGE_TABLE_HH
#define NPF_IOMMU_IO_PAGE_TABLE_HH

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "mem/types.hh"

namespace npf::iommu {

/**
 * Sparse IOVA -> PFN mapping for one IOchannel. Entries absent from
 * the map are invalid PTEs; a device access to one raises an NPF.
 */
class IoPageTable
{
  public:
    /** Translation; std::nullopt when the PTE is invalid. */
    std::optional<mem::Pfn>
    lookup(mem::Vpn vpn) const
    {
        auto it = table_.find(vpn);
        if (it == table_.end())
            return std::nullopt;
        return it->second;
    }

    /** Install a valid PTE (driver fills this after resolving). */
    void
    map(mem::Vpn vpn, mem::Pfn pfn)
    {
        table_[vpn] = pfn;
    }

    /**
     * Invalidate a PTE.
     * @return true if the page was mapped (drives the cheap/expensive
     *   split in the invalidation breakdown of Fig. 3(b)).
     */
    bool
    unmap(mem::Vpn vpn)
    {
        return table_.erase(vpn) > 0;
    }

    bool isMapped(mem::Vpn vpn) const { return table_.count(vpn) > 0; }

    std::size_t mappedPages() const { return table_.size(); }

    void clear() { table_.clear(); }

  private:
    std::unordered_map<mem::Vpn, mem::Pfn> table_;
};

} // namespace npf::iommu

#endif // NPF_IOMMU_IO_PAGE_TABLE_HH
