/**
 * @file
 * The per-IOchannel IOMMU unit: page table + IOTLB + fault
 * bookkeeping. Mirrors Figure 1's right-hand side. Purely
 * mechanical — latency modeling lives in core::NpfController.
 */

#ifndef NPF_IOMMU_IOMMU_HH
#define NPF_IOMMU_IOMMU_HH

#include <cstdint>
#include <optional>

#include "iommu/io_page_table.hh"
#include "iommu/iotlb.hh"
#include "mem/types.hh"
#include "obs/metrics.hh"

namespace npf::iommu {

/** Result of a device-side translation attempt. */
struct Translation
{
    bool ok = false;       ///< false => DMA page fault (NPF)
    bool tlbHit = false;   ///< satisfied by the IOTLB
    mem::Pfn pfn = mem::kNoFrame;
};

/**
 * One IOchannel's translation unit.
 *
 * Devices call translate() per page of every DMA. A miss in both the
 * IOTLB and the page table is an NPF; the IOprovider later installs
 * the mapping with map() and the device retries. Invalidations go
 * through invalidate(), which keeps the IOTLB coherent with the page
 * table — the core invariant tested in tests/iommu.
 */
class IoMmu
{
  public:
    struct Stats
    {
        std::uint64_t translations = 0;
        std::uint64_t faults = 0;
        std::uint64_t mapped = 0;
        std::uint64_t unmapped = 0;
    };

    explicit IoMmu(std::size_t tlb_capacity = 256) : tlb_(tlb_capacity)
    {
        obs_.init("iommu.mmu");
        obs_.counter("translations", &stats_.translations);
        obs_.counter("faults", &stats_.faults);
        obs_.counter("mapped", &stats_.mapped);
        obs_.counter("unmapped", &stats_.unmapped);
        obs_.counter("tlb_hits", &tlb_.stats().hits);
        obs_.counter("tlb_misses", &tlb_.stats().misses);
        obs_.counter("tlb_invalidations", &tlb_.stats().invalidations);
        obs_.counter("tlb_evictions", &tlb_.stats().evictions);
        obs_.counter("tlb_refreshes", &tlb_.stats().refreshes);
    }

    /** Translate one IOVA page. */
    Translation
    translate(mem::Vpn vpn)
    {
        ++stats_.translations;
        Translation t;
        if (auto pfn = tlb_.lookup(vpn)) {
            t.ok = true;
            t.tlbHit = true;
            t.pfn = *pfn;
            return t;
        }
        if (auto pfn = table_.lookup(vpn)) {
            t.ok = true;
            t.pfn = *pfn;
            tlb_.insert(vpn, *pfn);
            return t;
        }
        ++stats_.faults;
        return t;
    }

    /** Peek whether a DMA would fault, without stats/TLB effects. */
    bool
    wouldFault(mem::Vpn vpn) const
    {
        return !table_.isMapped(vpn);
    }

    /** Install a valid PTE (NPF resolution, step 4 of Fig. 2). */
    void
    map(mem::Vpn vpn, mem::Pfn pfn)
    {
        // A remap must never leave a stale cached translation: the
        // driver invalidates the IOTLB entry along with the PT write.
        tlb_.invalidate(vpn);
        table_.map(vpn, pfn);
        ++stats_.mapped;
    }

    /**
     * Invalidation flow (Fig. 2 a-d): drop PTE and IOTLB entry.
     * @return true if the page was actually mapped.
     */
    bool
    invalidate(mem::Vpn vpn)
    {
        tlb_.invalidate(vpn);
        bool was_mapped = table_.unmap(vpn);
        if (was_mapped)
            ++stats_.unmapped;
        return was_mapped;
    }

    IoPageTable &pageTable() { return table_; }
    const IoPageTable &pageTable() const { return table_; }
    IoTlb &tlb() { return tlb_; }
    const Stats &stats() const { return stats_; }

  private:
    IoPageTable table_;
    IoTlb tlb_;
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::iommu

#endif // NPF_IOMMU_IOMMU_HH
