/**
 * @file
 * Coarse host CPU model: per-operation service times scale with the
 * number of co-located active instances, reproducing the sublinear
 * aggregate scaling of the paper's Table 5 (shared NIC/PCIe/memory
 * bandwidth on the 4-core testbed).
 */

#ifndef NPF_APP_HOST_MODEL_HH
#define NPF_APP_HOST_MODEL_HH

#include "sim/time.hh"

namespace npf::app {

/** Shared-host contention model. */
class HostModel
{
  public:
    /**
     * @param alpha interference factor: service times are scaled by
     *   (1 + alpha * (instances - 1)). 0.18 reproduces Table 5.
     */
    explicit HostModel(double alpha = 0.18) : alpha_(alpha) {}

    void addInstance() { ++instances_; }
    void removeInstance()
    {
        if (instances_ > 0)
            --instances_;
    }
    unsigned instances() const { return instances_; }

    /** Scale a base service time by the current contention. */
    sim::Time
    scaled(sim::Time base) const
    {
        if (instances_ <= 1)
            return base;
        double f = 1.0 + alpha_ * double(instances_ - 1);
        return static_cast<sim::Time>(double(base) * f);
    }

  private:
    double alpha_;
    unsigned instances_ = 0;
};

} // namespace npf::app

#endif // NPF_APP_HOST_MODEL_HH
