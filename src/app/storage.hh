/**
 * @file
 * The §6.1 storage workload: a tgt-style iSER target serving a 4 GB
 * LUN from a page cache, with per-transaction 512 KB communication
 * chunks that are either statically pinned (baseline) or demand-
 * paged via NPFs; plus a fio-style random-read initiator.
 */

#ifndef NPF_APP_STORAGE_HH
#define NPF_APP_STORAGE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "app/disk.hh"
#include "core/pinning.hh"
#include "ib/queue_pair.hh"
#include "load/recorder.hh"
#include "mem/memory_manager.hh"
#include "mem/page_cache.hh"
#include "sim/random.hh"
#include "sim/ring_deque.hh"

namespace npf::app {

/** Target-side parameters. */
struct StorageConfig
{
    std::size_t lunBytes = 4ull << 30;
    std::size_t chunkBytes = 512 * 1024; ///< per-transaction buffer
    unsigned chunksPerSession = 25;      ///< tgt's per-connection pool
    bool pinned = true;                  ///< baseline vs NPF mode
    sim::Time perIoCpu = sim::fromMicroseconds(15);
    DiskConfig disk;
};

/** One fio-style initiator's shared request descriptor. */
struct IoRequest
{
    std::uint64_t offset = 0;
    std::size_t len = 0;
    mem::VirtAddr initiatorBuf = 0;
    std::uint64_t id = 0;
};

/**
 * iSER target (tgt). Sessions are added after construction; each
 * pairs a target-side QP with an initiator-side FioClient. Requests
 * travel as small Sends; data returns via RDMA Write followed by a
 * small response Send (RC ordering makes the write land first).
 */
class StorageTarget
{
  public:
    /**
     * @param as the tgt daemon's address space (page cache + chunks).
     */
    StorageTarget(sim::EventQueue &eq, mem::AddressSpace &as,
                  StorageConfig cfg);

    /** False when pinned-mode setup failed (not enough memory). */
    bool ok() const { return ok_; }

    /**
     * Register one session. @p qp is the target-side queue pair
     * (already connected); @p request_queue is the out-of-band
     * request descriptor channel shared with the initiator. If
     * @p reg is non-null the session brackets every outbound DMA
     * (data chunk + response header) with beforeDma()/afterDma() —
     * the per-IO registration disciplines (docs/REGISTRATION.md).
     */
    void addSession(ib::QueuePair &qp,
                    std::shared_ptr<std::deque<IoRequest>> request_queue,
                    core::PinningStrategy *reg = nullptr);

    std::uint64_t iosServed() const { return ios_; }
    Disk &disk() { return disk_; }
    mem::PageCache &cache() { return *cache_; }

    /** Resident bytes of the tgt process (Fig. 8(b)'s metric). */
    std::size_t residentBytes() const { return as_.residentBytes(); }

  private:
    /** One posted Send's DMA extent (per-IO registration modes). */
    struct PendingDma
    {
        mem::VirtAddr addr = 0;
        std::size_t len = 0;
    };

    struct Session
    {
        ib::QueuePair *qp;
        std::shared_ptr<std::deque<IoRequest>> requests;
        mem::VirtAddr chunkRegion = 0;
        mem::VirtAddr recvRegion = 0;
        unsigned nextChunk = 0;
        std::uint64_t nextRecvId = 1;
        core::PinningStrategy *reg = nullptr; ///< optional, not owned
        /// Sends in flight, wire order (RC completes in order).
        sim::RingDeque<PendingDma> inflight;
    };

    void handleRequest(Session &s);

    sim::EventQueue &eq_;
    mem::AddressSpace &as_;
    StorageConfig cfg_;
    Disk disk_;
    mem::VirtAddr poolBase_ = 0;
    std::unique_ptr<mem::PageCache> cache_;
    std::vector<std::unique_ptr<Session>> sessions_;
    bool ok_ = true;
    sim::Time busyUntil_ = 0;
    std::uint64_t ios_ = 0;
};

/**
 * fio: random-read initiator over one session. Keeps @p queue_depth
 * requests outstanding; measures completed bytes.
 */
class FioClient
{
  public:
    FioClient(sim::EventQueue &eq, ib::QueuePair &qp,
              mem::AddressSpace &as,
              std::shared_ptr<std::deque<IoRequest>> request_queue,
              std::size_t block_bytes, unsigned queue_depth,
              std::size_t lun_bytes, std::uint64_t seed);

    void start();

    /**
     * Feed per-IO latency into @p rec under class @p cls (responses
     * arrive in submit order: RC ordering + the serialized target).
     */
    void
    recordInto(load::Recorder *rec, load::Recorder::ClassId cls)
    {
        rec_ = rec;
        recClass_ = cls;
    }

    std::uint64_t completed() const { return completed_; }
    std::uint64_t bytesRead() const { return bytesRead_; }

    /** Reset the measurement counters (post-warm-up). */
    void
    resetCounters()
    {
        completed_ = 0;
        bytesRead_ = 0;
    }

  private:
    void submit();

    sim::EventQueue &eq_;
    ib::QueuePair &qp_;
    std::shared_ptr<std::deque<IoRequest>> requests_;
    std::size_t blockBytes_;
    unsigned queueDepth_;
    std::size_t lunBytes_;
    sim::Rng rng_;
    mem::VirtAddr bufRegion_ = 0;
    mem::VirtAddr respRegion_ = 0;
    unsigned nextBuf_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t bytesRead_ = 0;
    load::Recorder *rec_ = nullptr;
    load::Recorder::ClassId recClass_ = 0;
    std::deque<sim::Time> submitTimes_; ///< FIFO, matches responses
};

} // namespace npf::app

#endif // NPF_APP_STORAGE_HH
