/**
 * @file
 * memcached-like LRU key-value cache whose item memory lives in a
 * (demand-paged, unpinned) IOuser address space. Hits touch item
 * pages, so working sets larger than the resident budget cause real
 * swap traffic; capacity overflow causes real LRU misses — both
 * effects the paper's §6.1 experiments measure.
 */

#ifndef NPF_APP_KV_STORE_HH
#define NPF_APP_KV_STORE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hh"
#include "sim/time.hh"

namespace npf::app {

/** Result of one KV operation. */
struct KvResult
{
    bool hit = false;
    sim::Time memCost = 0;           ///< page-fault latency incurred
    mem::VirtAddr valueAddr = 0;     ///< item memory (DMA source)
    std::size_t valueLen = 0;
    unsigned majorFaults = 0;
};

/**
 * LRU key-value cache (keys are integers; values are fixed-size).
 */
class KvStore
{
  public:
    /**
     * @param capacity_bytes cache memory limit (memcached -m).
     * @param value_bytes size of every value.
     */
    KvStore(mem::AddressSpace &as, std::size_t capacity_bytes,
            std::size_t value_bytes);

    /** GET: touches the item memory on a hit. */
    KvResult get(std::uint64_t key);

    /**
     * GET for zero-copy servers: looks up and LRU-bumps but does not
     * touch the item memory — the NIC DMA-reads the value straight
     * out of the (unpinned) item region, so paging cost is paid
     * through the NPF machinery instead of a CPU fault.
     */
    KvResult getRef(std::uint64_t key);

    /** SET: inserts (evicting LRU) and writes the item memory. */
    KvResult set(std::uint64_t key);

    std::size_t items() const { return map_.size(); }
    std::size_t capacityItems() const { return slots_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t valueBytes() const { return valueBytes_; }

  private:
    struct Entry
    {
        std::uint64_t key;
        std::size_t slot;
        std::list<std::uint64_t>::iterator lruIt;
    };

    mem::VirtAddr slotAddr(std::size_t slot) const
    {
        return region_ + slot * slotBytes_;
    }

    mem::AddressSpace &as_;
    std::size_t valueBytes_;
    std::size_t slotBytes_;   ///< value rounded up to whole pages? no:
                              ///< value + item header, byte-packed
    mem::VirtAddr region_ = 0;
    std::vector<std::size_t> freeSlots_;
    std::vector<std::size_t> slots_; ///< just for capacity count
    std::unordered_map<std::uint64_t, Entry> map_;
    std::list<std::uint64_t> lru_; ///< front = most recent
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace npf::app

#endif // NPF_APP_KV_STORE_HH
