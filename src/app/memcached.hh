/**
 * @file
 * The paper's running example (§5): a memcached server inside a
 * lightweight VM, driven by memaslap (90% get / 10% set, 1 KB values
 * by default) over a direct Ethernet channel with a user-level TCP
 * stack.
 */

#ifndef NPF_APP_MEMCACHED_HH
#define NPF_APP_MEMCACHED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "app/host_model.hh"
#include "app/kv_store.hh"
#include "sim/random.hh"
#include "sim/series.hh"
#include "tcp/endpoint.hh"

namespace npf::app {

/**
 * Both directions of one client<->server TCP connection, with
 * message framing (the metadata travels out-of-band; see
 * tcp::MessageStream).
 */
struct RpcChannel
{
    tcp::TcpConnection &client;
    tcp::TcpConnection &server;
    tcp::MessageStream request;  ///< client -> server
    tcp::MessageStream response; ///< server -> client

    RpcChannel(tcp::TcpConnection &cli, tcp::TcpConnection &srv)
        : client(cli), server(srv), request(cli, srv), response(srv, cli)
    {
    }
};

/** Server-side parameters. */
struct MemcachedConfig
{
    std::size_t valueBytes = 1024;
    /** Per-request CPU (parse, hash, LRU). Calibrated so a single
     *  uncontended instance serves ~186 KTPS (Table 5). */
    sim::Time baseOpCpu = sim::fromMicroseconds(5.2);
    std::size_t requestBytes = 64;
    std::size_t missReplyBytes = 64;
};

/**
 * memcached: decodes requests from RpcChannels, runs them through
 * the KvStore on a single serialized "worker core", replies with the
 * value (GET hit) or a small status (miss / SET ack).
 *
 * Cookies encode (op, key); bit 63 of the response cookie reports a
 * hit.
 */
class MemcachedServer
{
  public:
    static constexpr std::uint64_t kOpSet = 1ull << 62;
    static constexpr std::uint64_t kHitFlag = 1ull << 63;

    MemcachedServer(sim::EventQueue &eq, KvStore &store, HostModel &host,
                    MemcachedConfig cfg = {});

    /** Attach one client connection. */
    void serve(RpcChannel &ch);

    std::uint64_t opsServed() const { return ops_; }
    std::uint64_t majorFaults() const { return majorFaults_; }

  private:
    void handleRequest(RpcChannel &ch, std::uint64_t cookie);

    sim::EventQueue &eq_;
    KvStore &store_;
    HostModel &host_;
    MemcachedConfig cfg_;
    sim::Time busyUntil_ = 0;
    std::uint64_t ops_ = 0;
    std::uint64_t majorFaults_ = 0;
};

/** Load-generator parameters (memaslap defaults from the paper). */
struct MemaslapConfig
{
    double getRatio = 0.9;
    std::uint64_t keys = 1000;  ///< working-set size in items
    unsigned window = 4;        ///< outstanding requests per channel
    std::size_t requestBytes = 64;
};

/**
 * memaslap: closed-loop generator over a set of RpcChannels.
 * Counts transactions and hits; optionally records a rate series
 * (for the throughput-versus-time figures).
 */
class Memaslap
{
  public:
    Memaslap(sim::EventQueue &eq, std::vector<RpcChannel *> channels,
             MemaslapConfig cfg, std::uint64_t seed = 99);

    /** Begin issuing requests (channels must be established). */
    void start();

    /** Change the working set (Fig. 7's dynamic experiment). */
    void setKeys(std::uint64_t keys) { cfg_.keys = keys; }

    /** Attach a per-transaction rate recorder. */
    void recordInto(sim::RateSeries *tps, sim::RateSeries *hps)
    {
        tpsSeries_ = tps;
        hpsSeries_ = hps;
    }

    std::uint64_t transactions() const { return transactions_; }
    std::uint64_t hits() const { return hits_; }

    /** Reset counters (e.g. after warm-up). */
    void
    resetCounters()
    {
        transactions_ = 0;
        hits_ = 0;
    }

  private:
    void issue(std::size_t chan);

    sim::EventQueue &eq_;
    std::vector<RpcChannel *> channels_;
    MemaslapConfig cfg_;
    sim::Rng rng_;
    std::uint64_t transactions_ = 0;
    std::uint64_t hits_ = 0;
    sim::RateSeries *tpsSeries_ = nullptr;
    sim::RateSeries *hpsSeries_ = nullptr;
};

} // namespace npf::app

#endif // NPF_APP_MEMCACHED_HH
