/**
 * @file
 * The paper's running example (§5): a memcached server inside a
 * lightweight VM, driven by memaslap (90% get / 10% set, 1 KB values
 * by default) over a direct Ethernet channel with a user-level TCP
 * stack.
 */

#ifndef NPF_APP_MEMCACHED_HH
#define NPF_APP_MEMCACHED_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "app/host_model.hh"
#include "app/kv_store.hh"
#include "load/client_pool.hh"
#include "sim/random.hh"
#include "sim/series.hh"
#include "tcp/endpoint.hh"

namespace npf::app {

/**
 * Both directions of one client<->server TCP connection, with
 * message framing (the metadata travels out-of-band; see
 * tcp::MessageStream).
 */
struct RpcChannel
{
    tcp::TcpConnection &client;
    tcp::TcpConnection &server;
    tcp::MessageStream request;  ///< client -> server
    tcp::MessageStream response; ///< server -> client

    RpcChannel(tcp::TcpConnection &cli, tcp::TcpConnection &srv)
        : client(cli), server(srv), request(cli, srv), response(srv, cli)
    {
    }
};

/** Server-side parameters. */
struct MemcachedConfig
{
    std::size_t valueBytes = 1024;
    /** Per-request CPU (parse, hash, LRU). Calibrated so a single
     *  uncontended instance serves ~186 KTPS (Table 5). */
    sim::Time baseOpCpu = sim::fromMicroseconds(5.2);
    std::size_t requestBytes = 64;
    std::size_t missReplyBytes = 64;
};

/**
 * memcached: decodes requests from RpcChannels, runs them through
 * the KvStore on a single serialized "worker core", replies with the
 * value (GET hit) or a small status (miss / SET ack).
 *
 * Cookies encode (op, key); bit 63 of the response cookie reports a
 * hit. Bits 48..61 are ignored by the server and echoed back — load
 * generators stash a request serial there (see ChannelTransport).
 */
class MemcachedServer
{
  public:
    static constexpr std::uint64_t kOpSet = 1ull << 62;
    static constexpr std::uint64_t kHitFlag = 1ull << 63;
    static constexpr std::uint64_t kKeyMask = (1ull << 48) - 1;

    MemcachedServer(sim::EventQueue &eq, KvStore &store, HostModel &host,
                    MemcachedConfig cfg = {});

    /** Attach one client connection. */
    void serve(RpcChannel &ch);

    std::uint64_t opsServed() const { return ops_; }
    std::uint64_t majorFaults() const { return majorFaults_; }

  private:
    void handleRequest(RpcChannel &ch, std::uint64_t cookie);

    sim::EventQueue &eq_;
    KvStore &store_;
    HostModel &host_;
    MemcachedConfig cfg_;
    sim::Time busyUntil_ = 0;
    std::uint64_t ops_ = 0;
    std::uint64_t majorFaults_ = 0;
    int attrLane_ = -1; ///< server-core lane (shared by all channels)
};

/**
 * load::Transport adapter for one RpcChannel: requests carry
 * (key | op | serial<<48) in the cookie; the server echoes the
 * cookie, so the response handler recovers the serial and the hit
 * flag and feeds the pool.
 */
class ChannelTransport final : public load::Transport
{
  public:
    static constexpr unsigned kSerialShift = 48;

    explicit ChannelTransport(RpcChannel &ch) : ch_(ch) {}

    /** Register as a pool endpoint and install the response hook. */
    void
    connect(load::ClientPool &pool)
    {
        pool_ = &pool;
        ep_ = pool.addEndpoint(*this, ch_.client.attrLane());
        ch_.response.onMessage(
            [this](std::uint64_t cookie, std::size_t /*len*/) {
                pool_->complete(
                    ep_,
                    std::uint32_t(cookie >> kSerialShift) &
                        load::ClientPool::kSerialMask,
                    (cookie & MemcachedServer::kHitFlag) != 0);
            });
    }

    void
    issue(std::uint32_t serial, std::uint64_t key, bool is_set,
          std::size_t bytes) override
    {
        std::uint64_t cookie =
            key | (std::uint64_t(serial) << kSerialShift);
        if (is_set)
            cookie |= MemcachedServer::kOpSet;
        ch_.request.sendMessage(bytes, 0, cookie);
    }

  private:
    RpcChannel &ch_;
    load::ClientPool *pool_ = nullptr;
    unsigned ep_ = 0;
};

/** Load-generator parameters (memaslap defaults from the paper). */
struct MemaslapConfig
{
    double getRatio = 0.9;
    std::uint64_t keys = 1000;  ///< working-set size in items
    unsigned window = 4;        ///< outstanding requests per channel
    std::size_t requestBytes = 64;
};

/**
 * memaslap: the paper's closed-loop generator, now a thin preset
 * over load::ClientPool — window*channels logical clients, uniform
 * keys, zero think time (the pool re-issues inline on completion, so
 * the event interleaving matches the original generator exactly).
 * Counts transactions and hits; optionally records a rate series
 * (for the throughput-versus-time figures).
 */
class Memaslap
{
  public:
    Memaslap(sim::EventQueue &eq, std::vector<RpcChannel *> channels,
             MemaslapConfig cfg, std::uint64_t seed = 99);

    /** Begin issuing requests (channels must be established). */
    void start() { pool_.start(); }

    /** Change the working set (Fig. 7's dynamic experiment). */
    void setKeys(std::uint64_t keys) { pool_.keyModel().setKeys(keys); }

    /** Attach a per-transaction rate recorder. */
    void recordInto(sim::RateSeries *tps, sim::RateSeries *hps)
    {
        pool_.attachRateSeries(tps, hps);
    }

    std::uint64_t transactions() const { return pool_.completions(); }
    std::uint64_t hits() const { return pool_.hits(); }

    /** Reset counters (e.g. after warm-up). */
    void resetCounters() { pool_.resetCounters(); }

    /** The underlying pool (recorder attachment, counters). */
    load::ClientPool &pool() { return pool_; }

  private:
    static load::PoolConfig poolConfig(const MemaslapConfig &cfg,
                                       std::size_t channels,
                                       std::uint64_t seed);

    load::ClientPool pool_;
    std::deque<ChannelTransport> transports_; ///< stable addresses
};

} // namespace npf::app

#endif // NPF_APP_MEMCACHED_HH
