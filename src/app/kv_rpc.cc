#include "app/kv_rpc.hh"

#include <algorithm>

#include "obs/attribution.hh"

namespace npf::app {

KvRcServer::KvRcServer(sim::EventQueue &eq, KvStore &store,
                       HostModel &host, mem::AddressSpace &as,
                       KvRpcConfig cfg)
    : eq_(eq), store_(store), host_(host), as_(as), cfg_(cfg)
{
    scratchBytes_ = std::max<std::size_t>(cfg_.missReplyBytes, 64);
    if (cfg_.copyValues)
        scratchBytes_ =
            std::max(scratchBytes_, cfg_.valueBytes + 48);
    scratch_ = as_.allocRegion(scratchBytes_, "kvrpc-scratch");
    as_.touch(scratch_, scratchBytes_, true);
    as_.pinRange(scratch_, scratchBytes_);
}

void
KvRcServer::addSession(ib::QueuePair &qp, KvRpcRequestQueue requests,
                       KvRpcResponseQueue responses)
{
    auto s = std::make_unique<Session>();
    s->qp = &qp;
    s->requests = std::move(requests);
    s->responses = std::move(responses);
    std::size_t bytes = std::size_t(cfg_.recvSlots) * cfg_.requestBytes;
    s->recvRegion = as_.allocRegion(bytes, "kvrpc-recv");
    // Request buffers are per-packet control memory: warm, pinned and
    // IOMMU-mapped up front, like the rx rings. The interesting
    // (value) memory is not — GET responses DMA-read it cold.
    as_.touch(s->recvRegion, bytes, true);
    as_.pinRange(s->recvRegion, bytes);
    qp.controller().prefault(qp.channel(), s->recvRegion, bytes, true);
    qp.controller().prefault(qp.channel(), scratch_, scratchBytes_,
                             false);

    // Attribution lanes: one lane per session shared by both QP
    // directions (server-side faults land in the client's window),
    // parented on one lane for the shared server core.
    obs::Attributor &at = obs::attributor();
    if (at.enabled()) {
        if (attrLane_ < 0)
            attrLane_ = at.openLane("kvrc.server");
        int lane = at.openLane("kvrc.session", attrLane_);
        qp.setAttrLane(lane);
        if (qp.peer() != nullptr)
            qp.peer()->setAttrLane(lane);
    }

    Session *raw = s.get();
    qp.onCompletion([this, raw](const ib::Completion &c) {
        if (c.isRecv) {
            handleRequest(*raw);
            return;
        }
        if (raw->inflight.empty())
            return;
        // Send completed: the DMA read is over, so a per-IO
        // registration discipline unmaps the value extent now.
        PendingDma d = raw->inflight.front();
        raw->inflight.pop_front();
        if (reg_ != nullptr && d.len != 0) {
            sim::Time t = reg_->afterDma(d.addr, d.len);
            busyUntil_ = std::max(eq_.now(), busyUntil_) + t;
            obs::attributor().charge(attrLane_, obs::Phase::Server, t);
        }
    });
    for (unsigned i = 0; i < cfg_.recvSlots; ++i)
        postRecv(*raw);
    sessions_.push_back(std::move(s));
}

void
KvRcServer::postRecv(Session &s)
{
    ib::WorkRequest wr;
    wr.local = s.recvRegion +
               (s.nextRecv++ % cfg_.recvSlots) * cfg_.requestBytes;
    wr.len = cfg_.requestBytes;
    s.qp->postRecv(wr);
}

void
KvRcServer::handleRequest(Session &s)
{
    if (s.requests->empty())
        return; // stray completion (e.g. after an error rewind)
    KvRpcRequest req = s.requests->front();
    s.requests->pop_front();
    postRecv(s); // keep the WQE pool full

    // SETs write the value with the CPU; GETs only look it up — the
    // response Send below DMA-reads the item memory directly.
    KvResult kr = req.isSet ? store_.set(req.key)
                            : store_.getRef(req.key);
    sim::Time cpu = host_.scaled(cfg_.baseOpCpu) + kr.memCost;

    // The copy discipline stages the value into the pinned scratch
    // region; otherwise the response DMA-reads item memory directly,
    // and a per-IO discipline maps that extent before the post.
    bool hit_payload = !req.isSet && kr.hit;
    bool value_send = hit_payload && !cfg_.copyValues;
    if (hit_payload && cfg_.copyValues)
        cpu += sim::fromSeconds(double(cfg_.valueBytes + 48) /
                                cfg_.copyBwBytesPerSec);
    if (reg_ != nullptr && value_send)
        cpu += reg_->beforeDma(kr.valueAddr, cfg_.valueBytes + 48);

    sim::Time start = std::max(eq_.now(), busyUntil_);
    sim::Time done = start + cpu;
    busyUntil_ = done;
    ++ops_;
    // Shared-resource charge: CPU occupancy on the server-core lane.
    // Every session folds this in, so a request's window shows all
    // server work that delayed it, not just its own service time.
    obs::attributor().charge(attrLane_, obs::Phase::Server, cpu);

    Session *raw = &s;
    eq_.schedule(done, [this, raw, req, kr, hit_payload, value_send] {
        raw->responses->push_back(KvRpcResponse{req.serial,
                                                !req.isSet && kr.hit});
        ib::WorkRequest wr;
        wr.op = ib::Opcode::Send;
        wr.local = value_send ? kr.valueAddr : scratch_;
        wr.len =
            hit_payload ? cfg_.valueBytes + 48 : cfg_.missReplyBytes;
        if (reg_ != nullptr)
            raw->inflight.push_back(PendingDma{
                value_send ? kr.valueAddr : mem::VirtAddr(0),
                value_send ? cfg_.valueBytes + 48 : std::size_t(0)});
        raw->qp->postSend(wr);
    });
}

// --- KvRcTransport ----------------------------------------------------

KvRcTransport::KvRcTransport(ib::QueuePair &qp, mem::AddressSpace &as,
                             KvRpcRequestQueue requests,
                             KvRpcResponseQueue responses,
                             KvRpcConfig cfg)
    : qp_(qp), requests_(std::move(requests)),
      responses_(std::move(responses)), cfg_(cfg)
{
    // The client is the standard stack: everything pinned, mapped and
    // prefaulted — the interesting faults are all the server's.
    std::size_t sendBytes = std::size_t(kSlots) * cfg_.requestBytes;
    sendRegion_ = as.allocRegion(sendBytes, "kvrpc-send");
    as.touch(sendRegion_, sendBytes, true);
    as.pinRange(sendRegion_, sendBytes);
    qp_.controller().prefault(qp_.channel(), sendRegion_, sendBytes, false);

    std::size_t slot = cfg_.valueBytes + 48;
    std::size_t recvBytes = std::size_t(kSlots) * slot;
    recvRegion_ = as.allocRegion(recvBytes, "kvrpc-resp");
    as.touch(recvRegion_, recvBytes, true);
    as.pinRange(recvRegion_, recvBytes);
    qp_.controller().prefault(qp_.channel(), recvRegion_, recvBytes, true);
}

void
KvRcTransport::connect(load::ClientPool &pool)
{
    pool_ = &pool;
    ep_ = pool.addEndpoint(*this, qp_.attrLane());
    qp_.onCompletion([this](const ib::Completion &c) {
        if (!c.isRecv || responses_->empty())
            return;
        KvRpcResponse r = responses_->front();
        responses_->pop_front();
        pool_->complete(ep_, r.serial, r.hit);
    });
}

void
KvRcTransport::issue(std::uint32_t serial, std::uint64_t key,
                     bool is_set, std::size_t bytes)
{
    requests_->push_back(KvRpcRequest{serial, key, is_set});

    ib::WorkRequest recv;
    recv.local =
        recvRegion_ + (nextRecv_++ % kSlots) * (cfg_.valueBytes + 48);
    recv.len = cfg_.valueBytes + 48;
    qp_.postRecv(recv);

    ib::WorkRequest send;
    send.op = ib::Opcode::Send;
    send.local = sendRegion_ + (nextSend_++ % kSlots) * cfg_.requestBytes;
    send.len = bytes != 0 ? bytes : cfg_.requestBytes;
    qp_.postSend(send);
}

} // namespace npf::app
