#include "app/kv_rpc.hh"

#include <algorithm>

#include "obs/attribution.hh"

namespace npf::app {

KvRcServer::KvRcServer(sim::EventQueue &eq, KvStore &store,
                       HostModel &host, mem::AddressSpace &as,
                       KvRpcConfig cfg)
    : eq_(eq), store_(store), host_(host), as_(as), cfg_(cfg)
{
    std::size_t bytes = std::max<std::size_t>(cfg_.missReplyBytes, 64);
    scratch_ = as_.allocRegion(bytes, "kvrpc-scratch");
    as_.touch(scratch_, bytes, true);
    as_.pinRange(scratch_, bytes);
}

void
KvRcServer::addSession(ib::QueuePair &qp, KvRpcRequestQueue requests,
                       KvRpcResponseQueue responses)
{
    auto s = std::make_unique<Session>();
    s->qp = &qp;
    s->requests = std::move(requests);
    s->responses = std::move(responses);
    std::size_t bytes = std::size_t(cfg_.recvSlots) * cfg_.requestBytes;
    s->recvRegion = as_.allocRegion(bytes, "kvrpc-recv");
    // Request buffers are per-packet control memory: warm, pinned and
    // IOMMU-mapped up front, like the rx rings. The interesting
    // (value) memory is not — GET responses DMA-read it cold.
    as_.touch(s->recvRegion, bytes, true);
    as_.pinRange(s->recvRegion, bytes);
    qp.controller().prefault(qp.channel(), s->recvRegion, bytes, true);
    qp.controller().prefault(qp.channel(), scratch_,
                             std::max<std::size_t>(cfg_.missReplyBytes, 64),
                             false);

    // Attribution lanes: one lane per session shared by both QP
    // directions (server-side faults land in the client's window),
    // parented on one lane for the shared server core.
    obs::Attributor &at = obs::attributor();
    if (at.enabled()) {
        if (attrLane_ < 0)
            attrLane_ = at.openLane("kvrc.server");
        int lane = at.openLane("kvrc.session", attrLane_);
        qp.setAttrLane(lane);
        if (qp.peer() != nullptr)
            qp.peer()->setAttrLane(lane);
    }

    Session *raw = s.get();
    qp.onCompletion([this, raw](const ib::Completion &c) {
        if (c.isRecv)
            handleRequest(*raw);
    });
    for (unsigned i = 0; i < cfg_.recvSlots; ++i)
        postRecv(*raw);
    sessions_.push_back(std::move(s));
}

void
KvRcServer::postRecv(Session &s)
{
    ib::WorkRequest wr;
    wr.local = s.recvRegion +
               (s.nextRecv++ % cfg_.recvSlots) * cfg_.requestBytes;
    wr.len = cfg_.requestBytes;
    s.qp->postRecv(wr);
}

void
KvRcServer::handleRequest(Session &s)
{
    if (s.requests->empty())
        return; // stray completion (e.g. after an error rewind)
    KvRpcRequest req = s.requests->front();
    s.requests->pop_front();
    postRecv(s); // keep the WQE pool full

    // SETs write the value with the CPU; GETs only look it up — the
    // response Send below DMA-reads the item memory directly.
    KvResult kr = req.isSet ? store_.set(req.key)
                            : store_.getRef(req.key);
    sim::Time cpu = host_.scaled(cfg_.baseOpCpu) + kr.memCost;

    sim::Time start = std::max(eq_.now(), busyUntil_);
    sim::Time done = start + cpu;
    busyUntil_ = done;
    ++ops_;
    // Shared-resource charge: CPU occupancy on the server-core lane.
    // Every session folds this in, so a request's window shows all
    // server work that delayed it, not just its own service time.
    obs::attributor().charge(attrLane_, obs::Phase::Server, cpu);

    bool value = !req.isSet && kr.hit;
    Session *raw = &s;
    eq_.schedule(done, [this, raw, req, kr, value] {
        raw->responses->push_back(KvRpcResponse{req.serial,
                                                !req.isSet && kr.hit});
        ib::WorkRequest wr;
        wr.op = ib::Opcode::Send;
        wr.local = value ? kr.valueAddr : scratch_;
        wr.len = value ? cfg_.valueBytes + 48 : cfg_.missReplyBytes;
        raw->qp->postSend(wr);
    });
}

// --- KvRcTransport ----------------------------------------------------

KvRcTransport::KvRcTransport(ib::QueuePair &qp, mem::AddressSpace &as,
                             KvRpcRequestQueue requests,
                             KvRpcResponseQueue responses,
                             KvRpcConfig cfg)
    : qp_(qp), requests_(std::move(requests)),
      responses_(std::move(responses)), cfg_(cfg)
{
    // The client is the standard stack: everything pinned, mapped and
    // prefaulted — the interesting faults are all the server's.
    std::size_t sendBytes = std::size_t(kSlots) * cfg_.requestBytes;
    sendRegion_ = as.allocRegion(sendBytes, "kvrpc-send");
    as.touch(sendRegion_, sendBytes, true);
    as.pinRange(sendRegion_, sendBytes);
    qp_.controller().prefault(qp_.channel(), sendRegion_, sendBytes, false);

    std::size_t slot = cfg_.valueBytes + 48;
    std::size_t recvBytes = std::size_t(kSlots) * slot;
    recvRegion_ = as.allocRegion(recvBytes, "kvrpc-resp");
    as.touch(recvRegion_, recvBytes, true);
    as.pinRange(recvRegion_, recvBytes);
    qp_.controller().prefault(qp_.channel(), recvRegion_, recvBytes, true);
}

void
KvRcTransport::connect(load::ClientPool &pool)
{
    pool_ = &pool;
    ep_ = pool.addEndpoint(*this, qp_.attrLane());
    qp_.onCompletion([this](const ib::Completion &c) {
        if (!c.isRecv || responses_->empty())
            return;
        KvRpcResponse r = responses_->front();
        responses_->pop_front();
        pool_->complete(ep_, r.serial, r.hit);
    });
}

void
KvRcTransport::issue(std::uint32_t serial, std::uint64_t key,
                     bool is_set, std::size_t bytes)
{
    requests_->push_back(KvRpcRequest{serial, key, is_set});

    ib::WorkRequest recv;
    recv.local =
        recvRegion_ + (nextRecv_++ % kSlots) * (cfg_.valueBytes + 48);
    recv.len = cfg_.valueBytes + 48;
    qp_.postRecv(recv);

    ib::WorkRequest send;
    send.op = ib::Opcode::Send;
    send.local = sendRegion_ + (nextSend_++ % kSlots) * cfg_.requestBytes;
    send.len = bytes != 0 ? bytes : cfg_.requestBytes;
    qp_.postSend(send);
}

} // namespace npf::app
