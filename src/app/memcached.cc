#include "app/memcached.hh"

#include "obs/attribution.hh"

namespace npf::app {

MemcachedServer::MemcachedServer(sim::EventQueue &eq, KvStore &store,
                                 HostModel &host, MemcachedConfig cfg)
    : eq_(eq), store_(store), host_(host), cfg_(cfg)
{
}

void
MemcachedServer::serve(RpcChannel &ch)
{
    // Attribution lanes: one lane per channel shared by both TCP
    // directions (response-side retransmits stall the client too),
    // parented on one lane for the shared server core.
    obs::Attributor &at = obs::attributor();
    if (at.enabled()) {
        if (attrLane_ < 0)
            attrLane_ = at.openLane("memcached.server");
        int lane = at.openLane("memcached.channel", attrLane_);
        ch.client.setAttrLane(lane);
        ch.server.setAttrLane(lane);
    }

    ch.request.onMessage(
        [this, &ch](std::uint64_t cookie, std::size_t /*len*/) {
            handleRequest(ch, cookie);
        });
}

void
MemcachedServer::handleRequest(RpcChannel &ch, std::uint64_t cookie)
{
    // Serialize on the instance's worker core.
    bool is_set = (cookie & kOpSet) != 0;
    std::uint64_t key = cookie & kKeyMask;

    KvResult kr = is_set ? store_.set(key) : store_.get(key);
    sim::Time cpu = host_.scaled(cfg_.baseOpCpu) + kr.memCost;
    majorFaults_ += kr.majorFaults;

    sim::Time start = std::max(eq_.now(), busyUntil_);
    sim::Time done = start + cpu;
    busyUntil_ = done;
    ++ops_;
    // Shared-resource charge: CPU occupancy on the server-core lane.
    obs::attributor().charge(attrLane_, obs::Phase::Server, cpu);

    eq_.schedule(done, [this, &ch, cookie, kr, is_set] {
        std::uint64_t rsp_cookie = cookie;
        std::size_t rsp_len = cfg_.missReplyBytes;
        if (!is_set && kr.hit) {
            rsp_cookie |= kHitFlag;
            rsp_len = cfg_.valueBytes + 48;
        }
        // The lwIP port copies the value into stack TX buffers (the
        // CPU touch of item memory is charged in kr.memCost), so the
        // NIC DMA-reads warm stack memory, not the item region.
        ch.response.sendMessage(rsp_len, 0, rsp_cookie);
    });
}

load::PoolConfig
Memaslap::poolConfig(const MemaslapConfig &cfg, std::size_t channels,
                     std::uint64_t seed)
{
    load::PoolConfig pc;
    pc.clients = std::uint64_t(cfg.window) * channels;
    pc.seed = seed;
    pc.workload.arrival.kind = load::ArrivalSpec::Kind::Closed;
    pc.workload.keys.kind = load::KeySpec::Kind::Uniform;
    pc.workload.keys.keys = cfg.keys;
    pc.workload.getRatio = cfg.getRatio;
    pc.workload.requestBytes = cfg.requestBytes;
    return pc;
}

Memaslap::Memaslap(sim::EventQueue &eq, std::vector<RpcChannel *> channels,
                   MemaslapConfig cfg, std::uint64_t seed)
    : pool_(eq, poolConfig(cfg, channels.size(), seed))
{
    for (RpcChannel *ch : channels) {
        transports_.emplace_back(*ch);
        transports_.back().connect(pool_);
    }
}

} // namespace npf::app
