#include "app/memcached.hh"

namespace npf::app {

MemcachedServer::MemcachedServer(sim::EventQueue &eq, KvStore &store,
                                 HostModel &host, MemcachedConfig cfg)
    : eq_(eq), store_(store), host_(host), cfg_(cfg)
{
}

void
MemcachedServer::serve(RpcChannel &ch)
{
    ch.request.onMessage(
        [this, &ch](std::uint64_t cookie, std::size_t /*len*/) {
            handleRequest(ch, cookie);
        });
}

void
MemcachedServer::handleRequest(RpcChannel &ch, std::uint64_t cookie)
{
    // Serialize on the instance's worker core.
    bool is_set = (cookie & kOpSet) != 0;
    std::uint64_t key = cookie & ~(kOpSet | kHitFlag);

    KvResult kr = is_set ? store_.set(key) : store_.get(key);
    sim::Time cpu = host_.scaled(cfg_.baseOpCpu) + kr.memCost;
    majorFaults_ += kr.majorFaults;

    sim::Time start = std::max(eq_.now(), busyUntil_);
    sim::Time done = start + cpu;
    busyUntil_ = done;
    ++ops_;

    eq_.schedule(done, [this, &ch, cookie, kr, is_set] {
        std::uint64_t rsp_cookie = cookie;
        std::size_t rsp_len = cfg_.missReplyBytes;
        if (!is_set && kr.hit) {
            rsp_cookie |= kHitFlag;
            rsp_len = cfg_.valueBytes + 48;
        }
        // The lwIP port copies the value into stack TX buffers (the
        // CPU touch of item memory is charged in kr.memCost), so the
        // NIC DMA-reads warm stack memory, not the item region.
        ch.response.sendMessage(rsp_len, 0, rsp_cookie);
    });
}

Memaslap::Memaslap(sim::EventQueue &eq, std::vector<RpcChannel *> channels,
                   MemaslapConfig cfg, std::uint64_t seed)
    : eq_(eq), channels_(std::move(channels)), cfg_(cfg), rng_(seed)
{
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        channels_[i]->response.onMessage(
            [this, i](std::uint64_t cookie, std::size_t /*len*/) {
                ++transactions_;
                bool hit = (cookie & MemcachedServer::kHitFlag) != 0;
                if (hit)
                    ++hits_;
                if (tpsSeries_)
                    tpsSeries_->record(eq_.now());
                if (hpsSeries_ && hit)
                    hpsSeries_->record(eq_.now());
                issue(i);
            });
    }
}

void
Memaslap::start()
{
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        for (unsigned w = 0; w < cfg_.window; ++w)
            issue(i);
    }
}

void
Memaslap::issue(std::size_t chan)
{
    std::uint64_t key = rng_.uniformInt(0, cfg_.keys - 1);
    std::uint64_t cookie = key;
    if (!rng_.bernoulli(cfg_.getRatio))
        cookie |= MemcachedServer::kOpSet;
    channels_[chan]->request.sendMessage(cfg_.requestBytes, 0, cookie);
}

} // namespace npf::app
