#include "app/kv_store.hh"

#include <cassert>

namespace npf::app {

KvStore::KvStore(mem::AddressSpace &as, std::size_t capacity_bytes,
                 std::size_t value_bytes)
    : as_(as), valueBytes_(value_bytes)
{
    // Item header + value, as memcached lays items out.
    slotBytes_ = valueBytes_ + 64;
    std::size_t capacity_items = capacity_bytes / slotBytes_;
    assert(capacity_items > 0);
    slots_.resize(capacity_items);
    region_ = as_.allocRegion(capacity_items * slotBytes_, "kv-items");
    freeSlots_.reserve(capacity_items);
    for (std::size_t i = capacity_items; i-- > 0;)
        freeSlots_.push_back(i);
}

KvResult
KvStore::get(std::uint64_t key)
{
    KvResult res;
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return res;
    }
    ++hits_;
    res.hit = true;
    Entry &e = it->second;
    lru_.splice(lru_.begin(), lru_, e.lruIt);
    res.valueAddr = slotAddr(e.slot);
    res.valueLen = valueBytes_;
    // Reading the value touches its pages (swap-in if evicted).
    mem::AccessResult ar = as_.touch(res.valueAddr, valueBytes_, false);
    res.memCost = ar.cost;
    res.majorFaults = ar.majorFaults;
    return res;
}

KvResult
KvStore::getRef(std::uint64_t key)
{
    KvResult res;
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return res;
    }
    ++hits_;
    res.hit = true;
    Entry &e = it->second;
    lru_.splice(lru_.begin(), lru_, e.lruIt);
    res.valueAddr = slotAddr(e.slot);
    res.valueLen = valueBytes_;
    return res;
}

KvResult
KvStore::set(std::uint64_t key)
{
    KvResult res;
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Overwrite in place.
        Entry &e = it->second;
        lru_.splice(lru_.begin(), lru_, e.lruIt);
        res.hit = true;
        res.valueAddr = slotAddr(e.slot);
    } else {
        if (freeSlots_.empty()) {
            // Evict the LRU item.
            std::uint64_t victim = lru_.back();
            lru_.pop_back();
            auto vit = map_.find(victim);
            assert(vit != map_.end());
            freeSlots_.push_back(vit->second.slot);
            map_.erase(vit);
        }
        std::size_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        lru_.push_front(key);
        map_[key] = Entry{key, slot, lru_.begin()};
        res.valueAddr = slotAddr(slot);
    }
    res.valueLen = valueBytes_;
    mem::AccessResult ar = as_.touch(res.valueAddr, valueBytes_, true);
    res.memCost = ar.cost;
    res.majorFaults = ar.majorFaults;
    return res;
}

} // namespace npf::app
