/**
 * @file
 * Block-device latency model for the storage experiment (Fig. 8):
 * the tgt LUN lives on a "single high-performance hard drive".
 */

#ifndef NPF_APP_DISK_HH
#define NPF_APP_DISK_HH

#include <cstdint>

#include "sim/time.hh"

namespace npf::app {

/** Disk parameters. The defaults model the paper's "single
 *  high-performance hard drive" as seen through the kernel's
 *  readahead on large sequential-within-block reads. */
struct DiskConfig
{
    sim::Time seek = 100 * sim::kMicrosecond; ///< positioning per op
    double bandwidthBytesPerSec = 2e9;        ///< media + readahead
};

/** Accounting-only block device. */
class Disk
{
  public:
    explicit Disk(DiskConfig cfg = {}) : cfg_(cfg) {}

    /** Latency of one read of @p bytes. */
    sim::Time
    read(std::size_t bytes)
    {
        ++reads_;
        bytesRead_ += bytes;
        double xfer = double(bytes) / cfg_.bandwidthBytesPerSec;
        return cfg_.seek + sim::fromSeconds(xfer);
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    const DiskConfig &config() const { return cfg_; }

  private:
    DiskConfig cfg_;
    std::uint64_t reads_ = 0;
    std::uint64_t bytesRead_ = 0;
};

} // namespace npf::app

#endif // NPF_APP_DISK_HH
