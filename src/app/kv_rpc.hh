/**
 * @file
 * KV RPC over InfiniBand RC: a zero-copy key-value server and the
 * matching load::Transport, so the workload subsystem can drive the
 * KvStore over real QueuePairs (with real NPFs) instead of TCP.
 *
 * Protocol: the client posts a small Send per request; the server
 * answers with one Send whose DMA *source is the item memory itself*
 * on a GET hit (KvStore::getRef — the CPU never touches the value),
 * so values paged out under memory pressure resolve through the full
 * network-page-fault flow on the send side. Request metadata (key,
 * op, serial) travels out-of-band through shared descriptor deques,
 * the same idiom the storage target uses for IoRequest — app-level
 * cookies do not cross the simulated IB wire.
 *
 * RC Sends complete and deliver in order, so descriptor order always
 * matches wire order and the pool's FIFO matching holds.
 */

#ifndef NPF_APP_KV_RPC_HH
#define NPF_APP_KV_RPC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "app/host_model.hh"
#include "app/kv_store.hh"
#include "core/pinning.hh"
#include "ib/queue_pair.hh"
#include "load/client_pool.hh"
#include "sim/ring_deque.hh"

namespace npf::app {

/** Server parameters. */
struct KvRpcConfig
{
    std::size_t valueBytes = 1024;
    /** Per-request CPU; lower than the TCP path (kernel-bypass verbs,
     *  no stack traversal, no value copy). */
    sim::Time baseOpCpu = sim::fromMicroseconds(2.0);
    std::size_t requestBytes = 64;
    std::size_t missReplyBytes = 64;
    unsigned recvSlots = 64; ///< pre-posted receive WQEs per session
    /** Copy GET values into the pinned scratch region instead of
     *  zero-copy DMA from the item memory (the "copy" registration
     *  discipline — docs/REGISTRATION.md). */
    bool copyValues = false;
    /** memcpy bandwidth for copyValues. */
    double copyBwBytesPerSec = 12e9;
};

/** Out-of-band request descriptor (client -> server). */
struct KvRpcRequest
{
    std::uint32_t serial = 0;
    std::uint64_t key = 0;
    bool isSet = false;
};

/** Out-of-band response descriptor (server -> client). */
struct KvRpcResponse
{
    std::uint32_t serial = 0;
    bool hit = false;
};

// Flat FIFO rings: std::deque churns allocator blocks as descriptors
// cycle through; RingDeque reaches its high-water mark once and then
// recycles in place (the alloc-gate benches count on this).
using KvRpcRequestQueue = std::shared_ptr<sim::RingDeque<KvRpcRequest>>;
using KvRpcResponseQueue = std::shared_ptr<sim::RingDeque<KvRpcResponse>>;

/**
 * RC key-value server. One instance serializes all sessions on a
 * single worker core (busy-until, like MemcachedServer); each
 * session pairs a connected server-side QP with the descriptor
 * queues shared with its client transport.
 */
class KvRcServer
{
  public:
    KvRcServer(sim::EventQueue &eq, KvStore &store, HostModel &host,
               mem::AddressSpace &as, KvRpcConfig cfg = {});

    /** Register one session (QP already connected). */
    void addSession(ib::QueuePair &qp, KvRpcRequestQueue requests,
                    KvRpcResponseQueue responses);

    /**
     * Use @p reg for the zero-copy value memory: GET-hit responses
     * bracket their DMA-source with beforeDma()/afterDma() (per-IO
     * registration, NP-RDMA style). nullptr (default) keeps the
     * NPF/ODP behavior: post directly, fault on access.
     */
    void setRegistration(core::PinningStrategy *reg) { reg_ = reg; }

    std::uint64_t opsServed() const { return ops_; }

  private:
    /** One posted Send's DMA extent; len 0 = scratch (pinned). */
    struct PendingDma
    {
        mem::VirtAddr addr = 0;
        std::size_t len = 0;
    };

    struct Session
    {
        ib::QueuePair *qp = nullptr;
        KvRpcRequestQueue requests;
        KvRpcResponseQueue responses;
        mem::VirtAddr recvRegion = 0;
        unsigned nextRecv = 0;
        /// Sends in flight, wire order (RC completes in order).
        sim::RingDeque<PendingDma> inflight;
    };

    void postRecv(Session &s);
    void handleRequest(Session &s);

    sim::EventQueue &eq_;
    KvStore &store_;
    HostModel &host_;
    mem::AddressSpace &as_;
    KvRpcConfig cfg_;
    core::PinningStrategy *reg_ = nullptr; ///< optional, not owned
    mem::VirtAddr scratch_ = 0; ///< miss/ack reply source (warm)
    std::size_t scratchBytes_ = 0;
    sim::Time busyUntil_ = 0;
    std::uint64_t ops_ = 0;
    int attrLane_ = -1; ///< server-core lane (shared by all sessions)
    std::vector<std::unique_ptr<Session>> sessions_;
};

/**
 * load::Transport over one client-side QP. Request buffers and
 * response receive buffers are cycled slot pools in the client's
 * (pinned, pre-touched) address space — the client host is the
 * standard stack; the interesting faults are the server's.
 */
class KvRcTransport final : public load::Transport
{
  public:
    KvRcTransport(ib::QueuePair &qp, mem::AddressSpace &as,
                  KvRpcRequestQueue requests,
                  KvRpcResponseQueue responses, KvRpcConfig cfg = {});

    /** Register as a pool endpoint and install the completion hook. */
    void connect(load::ClientPool &pool);

    void issue(std::uint32_t serial, std::uint64_t key, bool is_set,
               std::size_t bytes) override;

  private:
    static constexpr unsigned kSlots = 256;

    ib::QueuePair &qp_;
    KvRpcRequestQueue requests_;
    KvRpcResponseQueue responses_;
    KvRpcConfig cfg_;
    mem::VirtAddr sendRegion_ = 0;
    mem::VirtAddr recvRegion_ = 0;
    unsigned nextSend_ = 0;
    unsigned nextRecv_ = 0;
    load::ClientPool *pool_ = nullptr;
    unsigned ep_ = 0;
};

} // namespace npf::app

#endif // NPF_APP_KV_RPC_HH
