#include "app/storage.hh"

#include <cassert>

namespace npf::app {

namespace {

constexpr std::size_t kMsgBytes = 64;     ///< request/response size
constexpr std::size_t kPoolBytes = 1ull << 30; ///< tgt's comm pool (§6.1)

} // namespace

StorageTarget::StorageTarget(sim::EventQueue &eq, mem::AddressSpace &as,
                             StorageConfig cfg)
    : eq_(eq), as_(as), cfg_(cfg), disk_(cfg.disk)
{
    cache_ = std::make_unique<mem::PageCache>(
        as_, cfg_.lunBytes, [this](std::uint64_t, std::size_t bytes) {
            return disk_.read(bytes);
        });

    // tgt statically allocates a 1 GB communication buffer pool;
    // the baseline pins it, the NPF build leaves it demand-paged.
    poolBase_ = as_.allocRegion(kPoolBytes, "comm-pool");
    if (cfg_.pinned) {
        mem::AccessResult res = as_.pinRange(poolBase_, kPoolBytes);
        if (!res.ok) {
            // "the pinned configuration fails to load the tgt
            // service" (Fig. 8(a)) — not enough pinnable memory.
            ok_ = false;
        }
    }
}

void
StorageTarget::addSession(
    ib::QueuePair &qp, std::shared_ptr<std::deque<IoRequest>> request_queue,
    core::PinningStrategy *reg)
{
    auto s = std::make_unique<Session>();
    s->qp = &qp;
    s->requests = std::move(request_queue);
    s->reg = reg;
    std::size_t per_session = cfg_.chunkBytes * cfg_.chunksPerSession;
    std::size_t idx = sessions_.size();
    assert((idx + 1) * per_session <= kPoolBytes &&
           "comm pool exhausted: too many sessions");
    s->chunkRegion = poolBase_ + idx * per_session;

    // Post receive WQEs for inbound requests.
    s->recvRegion = as_.allocRegion(kMsgBytes * 64, "req-bufs");
    if (reg != nullptr) {
        // Per-IO registration modes map the control ring up front
        // (the NIC must never fault — there is no NPF/RNR path).
        as_.touch(s->recvRegion, kMsgBytes * 64, true);
        qp.controller().prefault(qp.channel(), s->recvRegion,
                                 kMsgBytes * 64, true);
    }
    for (unsigned i = 0; i < 64; ++i) {
        ib::WorkRequest r;
        r.local = s->recvRegion + (i % 64) * kMsgBytes;
        r.len = kMsgBytes;
        r.wrId = s->nextRecvId++;
        qp.postRecv(r);
    }

    Session *sp = s.get();
    qp.onCompletion([this, sp](const ib::Completion &c) {
        if (c.isRecv) {
            if (c.ok)
                handleRequest(*sp);
            return;
        }
        if (sp->reg == nullptr || sp->inflight.empty())
            return;
        // Send completed: a per-IO discipline unmaps the extent now.
        PendingDma d = sp->inflight.front();
        sp->inflight.pop_front();
        if (d.len != 0)
            busyUntil_ = std::max(eq_.now(), busyUntil_) +
                         sp->reg->afterDma(d.addr, d.len);
    });
    sessions_.push_back(std::move(s));
}

void
StorageTarget::handleRequest(Session &s)
{
    assert(!s.requests->empty() &&
           "request descriptor channel out of sync");
    IoRequest req = s.requests->front();
    s.requests->pop_front();

    mem::VirtAddr chunk =
        s.chunkRegion + s.nextChunk * cfg_.chunkBytes;
    s.nextChunk = (s.nextChunk + 1) % cfg_.chunksPerSession;

    // CPU + page-cache (possibly disk) + staging copy into the
    // communication chunk. Only the first req.len bytes of the
    // 512 KB chunk are ever touched — with NPFs the tail never gets
    // physical memory (Fig. 8(b)).
    sim::Time cost = cfg_.perIoCpu;
    cost += cache_->access(req.offset, req.len);
    mem::AccessResult tr = as_.touch(chunk, req.len, /*write=*/true);
    cost += tr.cost;

    // Per-IO registration: map the data chunk and the response-header
    // extent before posting (NP-RDMA style dynamic DMA mapping).
    if (s.reg != nullptr) {
        cost += s.reg->beforeDma(chunk, req.len);
        cost += s.reg->beforeDma(s.chunkRegion, kMsgBytes);
    }

    sim::Time start = std::max(eq_.now(), busyUntil_);
    sim::Time done = start + cost;
    busyUntil_ = done;
    ++ios_;

    eq_.schedule(done, [this, &s, chunk, req] {
        // Data lands via RDMA Write, then a response Send; RC
        // ordering guarantees the data precedes the response.
        ib::WorkRequest w;
        w.op = ib::Opcode::RdmaWrite;
        w.local = chunk;
        w.remote = req.initiatorBuf;
        w.len = req.len;
        w.wrId = req.id;
        if (s.reg != nullptr) {
            s.inflight.push_back(PendingDma{chunk, req.len});
            s.inflight.push_back(PendingDma{s.chunkRegion, kMsgBytes});
        }
        s.qp->postSend(w);

        ib::WorkRequest rsp;
        rsp.op = ib::Opcode::Send;
        rsp.local = s.chunkRegion; // tiny header from the first chunk
        rsp.len = kMsgBytes;
        rsp.wrId = req.id;
        s.qp->postSend(rsp);

        // Replenish the consumed receive WQE.
        ib::WorkRequest r;
        r.local = s.recvRegion + (s.nextRecvId % 64) * kMsgBytes;
        r.len = kMsgBytes;
        r.wrId = s.nextRecvId++;
        s.qp->postRecv(r);
    });
}

FioClient::FioClient(sim::EventQueue &eq, ib::QueuePair &qp,
                     mem::AddressSpace &as,
                     std::shared_ptr<std::deque<IoRequest>> request_queue,
                     std::size_t block_bytes, unsigned queue_depth,
                     std::size_t lun_bytes, std::uint64_t seed)
    : eq_(eq), qp_(qp), requests_(std::move(request_queue)),
      blockBytes_(block_bytes), queueDepth_(queue_depth),
      lunBytes_(lun_bytes), rng_(seed)
{
    // The initiator runs an unmodified kernel stack: its buffers are
    // pinned and registered (IOMMU-mapped) the classic way.
    bufRegion_ = as.allocRegion(blockBytes_ * queueDepth_, "fio-bufs");
    mem::AccessResult res = as.pinRange(bufRegion_,
                                        blockBytes_ * queueDepth_);
    assert(res.ok && "initiator buffer pinning failed");
    (void)res;
    respRegion_ = as.allocRegion(kMsgBytes * queueDepth_, "fio-rsp");
    as.pinRange(respRegion_, kMsgBytes * queueDepth_);
    qp_.controller().prefault(qp_.channel(), bufRegion_,
                              blockBytes_ * queueDepth_, true);
    qp_.controller().prefault(qp_.channel(), respRegion_,
                              kMsgBytes * queueDepth_, true);

    qp_.onCompletion([this](const ib::Completion &c) {
        if (!c.isRecv || !c.ok)
            return;
        ++completed_;
        bytesRead_ += blockBytes_;
        if (rec_ && !submitTimes_.empty()) {
            sim::Time sent = submitTimes_.front();
            submitTimes_.pop_front();
            rec_->recordLatency(recClass_, sent, sent, eq_.now());
        }
        submit();
    });
}

void
FioClient::start()
{
    for (unsigned i = 0; i < queueDepth_; ++i) {
        ib::WorkRequest r;
        r.local = respRegion_ + i * kMsgBytes;
        r.len = kMsgBytes;
        r.wrId = i;
        qp_.postRecv(r);
    }
    for (unsigned i = 0; i < queueDepth_; ++i)
        submit();
}

void
FioClient::submit()
{
    std::uint64_t blocks = lunBytes_ / blockBytes_;
    std::uint64_t block = rng_.uniformInt(0, blocks - 1);

    IoRequest req;
    req.offset = block * blockBytes_;
    req.len = blockBytes_;
    req.initiatorBuf = bufRegion_ + (nextBuf_ % queueDepth_) * blockBytes_;
    nextBuf_ = (nextBuf_ + 1) % queueDepth_;
    req.id = nextId_++;
    requests_->push_back(req);
    if (rec_)
        submitTimes_.push_back(eq_.now());

    ib::WorkRequest s;
    s.op = ib::Opcode::Send;
    s.local = req.initiatorBuf; // header rides in the data buffer
    s.len = kMsgBytes;
    s.wrId = req.id;
    qp_.postSend(s);

    // Re-post a receive WQE for the response that will follow.
    ib::WorkRequest r;
    r.local = respRegion_;
    r.len = kMsgBytes;
    r.wrId = req.id;
    qp_.postRecv(r);
}

} // namespace npf::app
