#include "hpc/imb.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "sim/random.hh"

namespace npf::hpc {

const char *
imbName(ImbBenchmark b)
{
    switch (b) {
      case ImbBenchmark::Sendrecv:
        return "sendrecv";
      case ImbBenchmark::Bcast:
        return "bcast";
      case ImbBenchmark::Alltoall:
        return "alltoall";
      case ImbBenchmark::Allreduce:
        return "allreduce";
    }
    return "?";
}

double
runImb(Cluster &cluster, ImbBenchmark bench, std::size_t msg_bytes,
       unsigned iterations, unsigned pool_depth)
{
    sim::EventQueue &eq = cluster.eventQueue();
    BufferPool pool(cluster, msg_bytes, pool_depth);
    Collectives coll(cluster, pool);

    bool finished = false;
    sim::Time started = eq.now();

    // The closure captures itself weakly: a strong self-capture would
    // form a shared_ptr cycle and leak the closure. Callers (the
    // stack variable and the scheduled continuations) hold strong
    // references, so lock() always succeeds.
    auto iterate = std::make_shared<std::function<void(unsigned)>>();
    *iterate = [&, wi = std::weak_ptr(iterate)](unsigned iter) {
        if (iter >= iterations) {
            finished = true;
            return;
        }
        auto next = [iterate = wi.lock(), iter] { (*iterate)(iter + 1); };
        switch (bench) {
          case ImbBenchmark::Sendrecv:
            coll.sendrecv(msg_bytes, iter, next);
            break;
          case ImbBenchmark::Bcast:
            coll.bcast(msg_bytes, iter, next);
            break;
          case ImbBenchmark::Alltoall:
            coll.alltoall(msg_bytes, iter, next);
            break;
          case ImbBenchmark::Allreduce:
            coll.allreduce(msg_bytes, iter, next);
            break;
        }
    };
    (*iterate)(0);

    bool ok = eq.runUntilCondition([&] { return finished; },
                                   eq.now() + 3600 * sim::kSecond);
    assert(ok && "IMB run did not converge");
    (void)ok;
    return sim::toSeconds(eq.now() - started);
}

namespace {

/** One full exchange along a permutation; returns when all done. */
void
permutationExchange(Cluster &c, BufferPool &pool,
                    const std::vector<unsigned> &sendto, std::size_t len,
                    unsigned iter, std::function<void()> done)
{
    unsigned n = c.ranks();
    // Count the exchange first: an identity permutation (possible from
    // the random-pattern shuffle on small clusters) completes
    // immediately, and `done` must still be callable on that path — so
    // don't move it into `fin` until we know fin will run.
    unsigned exchanges = 0;
    for (unsigned r = 0; r < n; ++r) {
        if (sendto[r] != r)
            exchanges += 2;
    }
    if (exchanges == 0) {
        done();
        return;
    }
    auto pending = std::make_shared<int>(int(exchanges));
    auto fin = [pending, done = std::move(done)] {
        if (--*pending == 0)
            done();
    };
    std::vector<unsigned> recvfrom(n);
    for (unsigned r = 0; r < n; ++r)
        recvfrom[sendto[r]] = r;
    for (unsigned r = 0; r < n; ++r) {
        if (sendto[r] == r)
            continue;
        c.isend(r, sendto[r], pool.send(r, iter), len, fin);
        c.irecv(r, recvfrom[r], pool.recv(r, iter), len, fin);
    }
}

} // namespace

BeffResult
runBeff(sim::EventQueue &eq, const ClusterConfig &cfg, RegMode mode,
        unsigned repetitions)
{
    // beff's official size ladder reaches Lmax = memory/128, so
    // large messages carry most of the weight; the ladder below
    // reproduces that emphasis.
    const std::vector<std::size_t> sizes = {
        64 * 1024,  256 * 1024,  1024 * 1024,
        2 * 1024 * 1024, 4 * 1024 * 1024,
    };
    constexpr unsigned kItersPerPoint = 8;

    std::vector<double> reps;
    for (unsigned rep = 0; rep < repetitions; ++rep) {
        Cluster cluster(eq, cfg, mode);
        unsigned n = cluster.ranks();
        BufferPool pool(cluster, sizes.back(), 8);
        sim::Rng rng(0xbeef + rep);

        // Patterns: rings at distances 1..3 plus a random permutation.
        std::vector<std::vector<unsigned>> patterns;
        for (unsigned d = 1; d <= 3 && d < n; ++d) {
            std::vector<unsigned> p(n);
            for (unsigned r = 0; r < n; ++r)
                p[r] = (r + d) % n;
            patterns.push_back(std::move(p));
        }
        {
            std::vector<unsigned> p(n);
            std::iota(p.begin(), p.end(), 0);
            std::shuffle(p.begin(), p.end(), rng.engine());
            // A pattern that moves no bytes is not a bandwidth
            // sample: on small clusters the shuffle can come back
            // (partially) as the identity, and a no-op point would
            // divide by zero elapsed time. Only keep it if someone
            // actually communicates.
            bool moves = false;
            for (unsigned r = 0; r < n; ++r)
                moves = moves || p[r] != r;
            if (moves)
                patterns.push_back(std::move(p));
        }

        double bw_accum = 0.0;
        unsigned points = 0;
        unsigned iter_counter = 0;
        for (const auto &pat : patterns) {
            for (std::size_t len : sizes) {
                bool finished = false;
                sim::Time start = eq.now();
                auto loop =
                    std::make_shared<std::function<void(unsigned)>>();
                // Weak self-capture: see runImb.
                *loop = [&, wl = std::weak_ptr(loop)](unsigned i) {
                    if (i >= kItersPerPoint) {
                        finished = true;
                        return;
                    }
                    permutationExchange(cluster, pool, pat, len,
                                        iter_counter++,
                                        [loop = wl.lock(), i] {
                                            (*loop)(i + 1);
                                        });
                };
                (*loop)(0);
                bool ok = eq.runUntilCondition(
                    [&] { return finished; },
                    eq.now() + 3600 * sim::kSecond);
                assert(ok);
                (void)ok;
                double secs = sim::toSeconds(eq.now() - start);
                double bytes =
                    double(len) * kItersPerPoint * double(n);
                bw_accum += bytes / secs / 1e6; // MB/s aggregate
                ++points;
            }
        }
        reps.push_back(bw_accum / points);
        // Drain stragglers (ACK coalescing, timers) before the
        // cluster is destroyed, so no event outlives its QP.
        eq.run();
    }

    BeffResult res;
    double mean = std::accumulate(reps.begin(), reps.end(), 0.0) /
                  double(reps.size());
    res.beffMBps = mean;
    double var = 0.0;
    for (double v : reps)
        var += (v - mean) * (v - mean);
    res.stddevMBps = std::sqrt(var / double(reps.size()));
    return res;
}

} // namespace npf::hpc
