/**
 * @file
 * Intel MPI Benchmarks (IMB) style harness over the Collectives, in
 * "off_cache" mode (rotating buffer pools), plus the effective
 * bandwidth benchmark (beff) of Koniges et al. — the §6.2 workloads.
 */

#ifndef NPF_HPC_IMB_HH
#define NPF_HPC_IMB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hpc/collectives.hh"

namespace npf::hpc {

/** Which IMB benchmark to run. */
enum class ImbBenchmark { Sendrecv, Bcast, Alltoall, Allreduce };

const char *imbName(ImbBenchmark b);

/**
 * Run @p iterations of one IMB benchmark at one message size.
 * @return the simulated elapsed seconds.
 */
double runImb(Cluster &cluster, ImbBenchmark bench, std::size_t msg_bytes,
              unsigned iterations, unsigned pool_depth = 8);

/** beff result for one registration mode. */
struct BeffResult
{
    double beffMBps = 0.0;   ///< accumulated effective bandwidth
    double stddevMBps = 0.0; ///< across pattern repetitions
};

/**
 * Effective-bandwidth benchmark: rings at several neighbor
 * distances plus random permutations, swept over a geometric ladder
 * of message sizes; b_eff accumulates per-rank bandwidth over the
 * whole cluster.
 */
BeffResult runBeff(sim::EventQueue &eq, const ClusterConfig &cfg,
                   RegMode mode, unsigned repetitions = 3);

} // namespace npf::hpc

#endif // NPF_HPC_IMB_HH
