#include "hpc/collectives.hh"

#include <cassert>

namespace npf::hpc {

BufferPool::BufferPool(Cluster &c, std::size_t max_bytes, unsigned depth)
{
    sbuf_.resize(c.ranks());
    rbuf_.resize(c.ranks());
    for (unsigned r = 0; r < c.ranks(); ++r) {
        for (unsigned d = 0; d < depth; ++d) {
            sbuf_[r].push_back(c.allocBuffer(r, max_bytes));
            rbuf_[r].push_back(c.allocBuffer(r, max_bytes));
        }
    }
}

void
Collectives::finish(const std::shared_ptr<Counter> &ctr)
{
    if (--ctr->pending == 0 && ctr->done)
        ctr->done();
}

void
Collectives::sendrecv(std::size_t len, unsigned iter, Done done)
{
    unsigned n = c_.ranks();
    auto ctr = std::make_shared<Counter>();
    ctr->pending = static_cast<int>(2 * n);
    ctr->done = std::move(done);
    for (unsigned r = 0; r < n; ++r) {
        unsigned right = (r + 1) % n;
        unsigned left = (r + n - 1) % n;
        c_.isend(r, right, pool_.send(r, iter), len,
                 [ctr] { finish(ctr); });
        c_.irecv(r, left, pool_.recv(r, iter), len,
                 [ctr] { finish(ctr); });
    }
}

void
Collectives::bcast(std::size_t len, unsigned iter, Done done)
{
    unsigned n = c_.ranks();
    if (n == 1) {
        done();
        return;
    }
    // Sequential binomial rounds: in round with mask m, ranks < m
    // forward to rank + m.
    // Weak self-capture: a strong one would form a shared_ptr cycle
    // and leak the closure. Callers (the stack variable and the
    // completion counters) hold strong references, so lock() always
    // succeeds.
    auto round = std::make_shared<std::function<void(unsigned)>>();
    *round = [this, len, iter, n, wr = std::weak_ptr(round),
              done = std::move(done)](unsigned mask) mutable {
        if (mask >= n) {
            done();
            return;
        }
        auto round = wr.lock();
        auto ctr = std::make_shared<Counter>();
        ctr->done = [round, mask] { (*round)(mask << 1); };
        int pairs = 0;
        for (unsigned r = 0; r < n; ++r) {
            if (r < mask && r + mask < n)
                ++pairs;
        }
        if (pairs == 0) {
            (*round)(mask << 1);
            return;
        }
        ctr->pending = 2 * pairs;
        for (unsigned r = 0; r < n; ++r) {
            if (r >= mask || r + mask >= n)
                continue;
            unsigned dst = r + mask;
            // Non-root senders forward out of their receive buffer.
            mem::VirtAddr src_buf =
                r == 0 ? pool_.send(0, iter) : pool_.recv(r, iter);
            c_.isend(r, dst, src_buf, len, [ctr] { finish(ctr); });
            c_.irecv(dst, r, pool_.recv(dst, iter), len,
                     [ctr] { finish(ctr); });
        }
    };
    (*round)(1);
}

void
Collectives::alltoall(std::size_t len, unsigned iter, Done done)
{
    unsigned n = c_.ranks();
    if (n == 1) {
        done();
        return;
    }
    // Pairwise XOR exchange, one step at a time.
    // Weak self-capture: see bcast.
    auto step = std::make_shared<std::function<void(unsigned)>>();
    *step = [this, len, iter, n, ws = std::weak_ptr(step),
             done = std::move(done)](unsigned s) mutable {
        if (s >= n) {
            done();
            return;
        }
        auto step = ws.lock();
        auto ctr = std::make_shared<Counter>();
        ctr->done = [step, s] { (*step)(s + 1); };
        int ops = 0;
        for (unsigned r = 0; r < n; ++r) {
            if ((r ^ s) < n)
                ops += 2;
        }
        if (ops == 0) {
            (*step)(s + 1);
            return;
        }
        ctr->pending = ops;
        for (unsigned r = 0; r < n; ++r) {
            unsigned partner = r ^ s;
            if (partner >= n)
                continue;
            c_.isend(r, partner, pool_.send(r, iter), len,
                     [ctr] { finish(ctr); });
            c_.irecv(r, partner, pool_.recv(r, iter), len,
                     [ctr] { finish(ctr); });
        }
    };
    (*step)(1);
}

void
Collectives::allreduce(std::size_t len, unsigned iter, Done done)
{
    unsigned n = c_.ranks();
    if (n == 1) {
        done();
        return;
    }
    // Recursive doubling; each round ends with a CPU reduction, so
    // the data passes through the CPU cache in every mode — which is
    // why allreduce shows little copy-vs-zero-copy difference (§6.2).
    // Weak self-capture: see bcast.
    auto round = std::make_shared<std::function<void(unsigned)>>();
    *round = [this, len, iter, n, wr = std::weak_ptr(round),
              done = std::move(done)](unsigned mask) mutable {
        if (mask >= n) {
            done();
            return;
        }
        auto round = wr.lock();
        auto ctr = std::make_shared<Counter>();
        ctr->done = [this, round, mask, len] {
            // All ranks reduce in parallel: one reduction latency.
            c_.eventQueue().scheduleAfter(c_.reduceCost(len), [round, mask] {
                (*round)(mask << 1);
            });
        };
        int ops = 0;
        for (unsigned r = 0; r < n; ++r) {
            if ((r ^ mask) < n)
                ops += 2;
        }
        ctr->pending = ops;
        for (unsigned r = 0; r < n; ++r) {
            unsigned partner = r ^ mask;
            if (partner >= n)
                continue;
            c_.isend(r, partner, pool_.send(r, iter), len,
                     [ctr] { finish(ctr); });
            c_.irecv(r, partner, pool_.recv(r, iter), len,
                     [ctr] { finish(ctr); });
        }
    };
    (*round)(1);
}

} // namespace npf::hpc
