/**
 * @file
 * Blocking collectives over the Cluster, with the standard
 * algorithms MPI middleware uses at this scale: ring sendrecv,
 * binomial-tree broadcast, pairwise-exchange alltoall, and
 * recursive-doubling allreduce.
 */

#ifndef NPF_HPC_COLLECTIVES_HH
#define NPF_HPC_COLLECTIVES_HH

#include <functional>
#include <memory>
#include <vector>

#include "hpc/cluster.hh"

namespace npf::hpc {

/**
 * Per-rank buffer pools used by the collectives. The IMB "off_cache"
 * mode rotates through @p depth distinct buffers per rank so the
 * pin-down cache has to register more than one region (§6.2).
 */
class BufferPool
{
  public:
    BufferPool(Cluster &c, std::size_t max_bytes, unsigned depth);

    mem::VirtAddr send(unsigned rank, unsigned iter) const
    {
        return sbuf_[rank][iter % sbuf_[rank].size()];
    }
    mem::VirtAddr recv(unsigned rank, unsigned iter) const
    {
        return rbuf_[rank][iter % rbuf_[rank].size()];
    }

  private:
    std::vector<std::vector<mem::VirtAddr>> sbuf_;
    std::vector<std::vector<mem::VirtAddr>> rbuf_;
};

/**
 * Collective operations. Each call runs asynchronously and invokes
 * @p done once every rank finished. Buffers come from a BufferPool
 * indexed by iteration (for off_cache rotation).
 */
class Collectives
{
  public:
    using Done = std::function<void()>;

    Collectives(Cluster &c, BufferPool &pool) : c_(c), pool_(pool) {}

    /** Ring exchange: rank r sends to r+1, receives from r-1. */
    void sendrecv(std::size_t len, unsigned iter, Done done);

    /** Binomial-tree broadcast from rank 0. */
    void bcast(std::size_t len, unsigned iter, Done done);

    /** Pairwise-exchange (XOR) alltoall; @p len per pair. */
    void alltoall(std::size_t len, unsigned iter, Done done);

    /** Recursive-doubling allreduce with CPU reduction per step. */
    void allreduce(std::size_t len, unsigned iter, Done done);

  private:
    struct Counter
    {
        int pending = 0;
        Done done;
    };

    static void finish(const std::shared_ptr<Counter> &ctr);

    Cluster &c_;
    BufferPool &pool_;
};

} // namespace npf::hpc

#endif // NPF_HPC_COLLECTIVES_HH
