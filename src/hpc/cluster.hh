/**
 * @file
 * An MPI-like communication substrate over the simulated InfiniBand
 * fabric: N single-process ranks, a full mesh of RC queue pairs, and
 * four registration disciplines — copying through bounce buffers, a
 * pin-down cache, NPF/ODP (the three of §6.2), and NP-RDMA-style
 * on-demand IOVA mapping (docs/REGISTRATION.md).
 */

#ifndef NPF_HPC_CLUSTER_HH
#define NPF_HPC_CLUSTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/pinning.hh"
#include "ib/queue_pair.hh"
#include "mem/memory_manager.hh"
#include "net/fabric.hh"

namespace npf::hpc {

/** Which registration discipline the middleware uses (Fig. 9). */
enum class RegMode { Copy, PinDownCache, Npf, NpRdma };

const char *regModeName(RegMode m);

/** Cluster parameters (defaults model the paper's IB testbed). */
struct ClusterConfig
{
    unsigned ranks = 8;
    std::size_t memoryPerRank = 4ull << 30;
    net::FabricConfig fabric = {
        net::LinkConfig{56e9, 300, 32}, ///< 56 Gb/s FDR, IB headers
        200,
    };
    /** Optional net::Topology spec (net/topology.hh grammar); empty
     *  keeps the legacy single-switch fabric. The spec's host count
     *  must equal `ranks`. */
    std::string topology;
    ib::QpConfig qp;
    /** Bounce-buffer memcpy bandwidth (copy mode, both sides). */
    double copyBwBytesPerSec = 12e9;
    /** CPU reduction bandwidth (allreduce). */
    double reduceBwBytesPerSec = 8e9;
    /** Messages at or below this ride the eager (always-copied) path
     *  in every mode, as real MPI middleware does. */
    std::size_t eagerThreshold = 8192;
    /** Pin-down cache budget per rank; 0 = unlimited. */
    std::size_t pinDownCacheBytes = 0;
    core::PinCosts pinCosts;
    /** NP-RDMA driver translation-table entries per rank. */
    std::size_t npRdmaTableEntries = 256;
    core::MapCosts mapCosts;

    /**
     * Shard-facet mode. When @p engine is set (with shards > 1 for a
     * real partition), this Cluster instance is ONE shard's facet of
     * a logical cluster: it builds hosts/QPs only for the ranks it
     * owns (rank % shards == shard) and every QP rides the fabric's
     * record plane — cross-shard pairs via BoundaryMsgs, same-shard
     * pairs via the identically-keyed local path, so any shard count
     * replays bit-identically. Construct one facet per shard, each
     * inside ShardedEngine::invokeOn with eq = engine->queue(shard);
     * engine lookahead must be <= fabric.recordLookahead(). Requires
     * an empty `topology` (legacy fabric).
     */
    sim::ShardedEngine *engine = nullptr;
    unsigned shard = 0;
    unsigned shards = 1;
};

/**
 * The cluster: owns per-rank hosts (memory manager, address space,
 * NPF controller) and the QP mesh, and provides tagged-free ordered
 * isend/irecv between ranks with registration costs applied.
 */
class Cluster
{
  public:
    using Done = std::function<void()>;

    Cluster(sim::EventQueue &eq, ClusterConfig cfg, RegMode mode);
    ~Cluster();

    unsigned ranks() const { return cfg_.ranks; }
    RegMode mode() const { return mode_; }

    /** True when this instance hosts @p rank (always, outside facet
     *  mode). Facet accessors (space/npfc/alloc/isend/irecv) are only
     *  valid for owned ranks. */
    bool
    ownsRank(unsigned rank) const
    {
        return cfg_.engine == nullptr || cfg_.shards <= 1 ||
               rank % cfg_.shards == cfg_.shard;
    }
    sim::EventQueue &eventQueue() { return eq_; }
    mem::AddressSpace &space(unsigned rank) { return *spaces_[rank]; }
    core::NpfController &npfc(unsigned rank) { return *npfcs_[rank]; }
    core::ChannelId channel(unsigned rank) const { return channels_[rank]; }
    /** The rank's registration strategy, or nullptr (copy / npf). */
    core::PinningStrategy *strategy(unsigned rank)
    {
        return pinStrategy_[rank].get();
    }
    const ClusterConfig &config() const { return cfg_; }

    /** Allocate a buffer in @p rank's address space (CPU-touched, so
     *  pages are present; IOMMU-cold unless pinned). */
    mem::VirtAddr allocBuffer(unsigned rank, std::size_t bytes);

    /** Nonblocking ordered send of [buf, buf+len) to @p dst. */
    void isend(unsigned src, unsigned dst, mem::VirtAddr buf,
               std::size_t len, Done done);

    /** Nonblocking ordered receive from @p src into [buf, buf+len). */
    void irecv(unsigned dst, unsigned src, mem::VirtAddr buf,
               std::size_t len, Done done);

    /** CPU cost of reducing @p len bytes (allreduce step). */
    sim::Time
    reduceCost(std::size_t len) const
    {
        return sim::fromSeconds(double(len) / cfg_.reduceBwBytesPerSec);
    }

    /** Aggregate rNPFs seen across all ranks (reporting). */
    std::uint64_t totalRnpfs() const;
    /** Aggregate pin-down cache misses across ranks (reporting). */
    std::uint64_t totalRegMisses() const;

  private:
    struct PendingOps
    {
        std::unordered_map<std::uint64_t, Done> sends;
        std::unordered_map<std::uint64_t, Done> recvs;
    };

    ib::QueuePair &qp(unsigned a, unsigned b) { return *qps_[a][b]; }
    sim::Time copyCost(std::size_t len) const
    {
        return sim::fromSeconds(double(len) / cfg_.copyBwBytesPerSec);
    }

    sim::EventQueue &eq_;
    ClusterConfig cfg_;
    RegMode mode_;
    std::unique_ptr<net::Fabric> fabric_;
    std::vector<std::unique_ptr<mem::MemoryManager>> hosts_;
    std::vector<mem::AddressSpace *> spaces_;
    std::vector<std::unique_ptr<core::NpfController>> npfcs_;
    std::vector<core::ChannelId> channels_;
    std::vector<std::unique_ptr<core::PinningStrategy>> pinStrategy_;
    std::vector<std::vector<std::unique_ptr<ib::QueuePair>>> qps_;
    std::vector<std::vector<PendingOps>> pending_; ///< [rank][peer]
    std::vector<mem::VirtAddr> bounceSend_;
    std::vector<mem::VirtAddr> bounceRecv_;
    std::uint64_t nextWrId_ = 1;
};

} // namespace npf::hpc

#endif // NPF_HPC_CLUSTER_HH
