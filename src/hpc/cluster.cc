#include "hpc/cluster.hh"

#include <cassert>

namespace npf::hpc {

namespace {

constexpr std::size_t kBounceBytes = 8ull << 20; ///< covers 4 MB msgs

} // namespace

const char *
regModeName(RegMode m)
{
    switch (m) {
      case RegMode::Copy:
        return "copy";
      case RegMode::PinDownCache:
        return "pin";
      case RegMode::Npf:
        return "npf";
      case RegMode::NpRdma:
        return "np-rdma";
    }
    return "?";
}

Cluster::Cluster(sim::EventQueue &eq, ClusterConfig cfg, RegMode mode)
    : eq_(eq), cfg_(cfg), mode_(mode)
{
    const bool facet = cfg_.engine != nullptr;
    assert((!facet || cfg_.topology.empty()) &&
           "facet mode needs the legacy fabric (record plane)");
    fabric_ = std::make_unique<net::Fabric>(eq_, cfg_.ranks, cfg_.fabric,
                                            cfg_.topology);
    if (facet) {
        std::vector<std::uint16_t> owner(cfg_.ranks);
        for (unsigned r = 0; r < cfg_.ranks; ++r)
            owner[r] = static_cast<std::uint16_t>(r % cfg_.shards);
        fabric_->shardBind(*cfg_.engine, cfg_.shard, std::move(owner));
    }

    for (unsigned r = 0; r < cfg_.ranks; ++r) {
        if (!ownsRank(r)) {
            // Another facet hosts this rank; keep the slots so rank
            // indices stay global.
            hosts_.push_back(nullptr);
            spaces_.push_back(nullptr);
            npfcs_.push_back(nullptr);
            channels_.push_back(0);
            bounceSend_.push_back(0);
            bounceRecv_.push_back(0);
            pinStrategy_.push_back(nullptr);
            continue;
        }
        hosts_.push_back(
            std::make_unique<mem::MemoryManager>(cfg_.memoryPerRank));
        spaces_.push_back(
            &hosts_.back()->createAddressSpace("rank" + std::to_string(r)));
        npfcs_.push_back(std::make_unique<core::NpfController>(
            eq_, core::OdpConfig{}, 0xc0ffee + r));
        channels_.push_back(npfcs_.back()->attach(*spaces_.back()));

        // Eager/bounce buffers: pre-pinned, as real middleware does.
        mem::VirtAddr bs = spaces_[r]->allocRegion(kBounceBytes, "bounce-s");
        mem::VirtAddr br = spaces_[r]->allocRegion(kBounceBytes, "bounce-r");
        spaces_[r]->pinRange(bs, kBounceBytes);
        spaces_[r]->pinRange(br, kBounceBytes);
        npfcs_[r]->prefault(channels_[r], bs, kBounceBytes, true);
        npfcs_[r]->prefault(channels_[r], br, kBounceBytes, true);
        bounceSend_.push_back(bs);
        bounceRecv_.push_back(br);

        if (mode_ == RegMode::PinDownCache) {
            pinStrategy_.push_back(std::make_unique<core::PinDownCache>(
                *npfcs_[r], channels_[r], cfg_.pinDownCacheBytes,
                cfg_.pinCosts));
        } else if (mode_ == RegMode::NpRdma) {
            pinStrategy_.push_back(std::make_unique<core::NpRdmaMapping>(
                *npfcs_[r], channels_[r], cfg_.npRdmaTableEntries,
                cfg_.mapCosts));
        } else {
            pinStrategy_.push_back(nullptr);
        }
    }

    // Full QP mesh (facet mode: only the rows of owned ranks).
    qps_.resize(cfg_.ranks);
    pending_.resize(cfg_.ranks);
    for (unsigned a = 0; a < cfg_.ranks; ++a) {
        qps_[a].resize(cfg_.ranks);
        pending_[a].resize(cfg_.ranks);
        if (!ownsRank(a))
            continue;
        for (unsigned b = 0; b < cfg_.ranks; ++b) {
            if (a == b)
                continue;
            qps_[a][b] = std::make_unique<ib::QueuePair>(
                eq_, *fabric_, a, *npfcs_[a], channels_[a], cfg_.qp,
                0xdead + a * 64 + b);
        }
    }
    for (unsigned a = 0; a < cfg_.ranks; ++a) {
        if (!ownsRank(a))
            continue;
        for (unsigned b = 0; b < cfg_.ranks; ++b) {
            if (a == b)
                continue;
            if (facet)
                // Record plane for EVERY pair — also same-shard ones —
                // so event ordering is independent of the partition
                // (1-shard and N-shard facets replay bit-identically).
                // Demux key = the remote rank: unique per node since
                // the mesh has one QP per ordered rank pair.
                qps_[a][b]->connectRemote(b, /*my_kind=*/b,
                                          /*peer_kind=*/a);
            else
                qps_[a][b]->connect(*qps_[b][a]);
            qps_[a][b]->onCompletion([this, a, b](const ib::Completion &c) {
                auto &ops = pending_[a][b];
                auto &map = c.isRecv ? ops.recvs : ops.sends;
                auto it = map.find(c.wrId);
                if (it == map.end())
                    return;
                Done done = std::move(it->second);
                map.erase(it);
                if (done)
                    done();
            });
        }
    }
}

Cluster::~Cluster() = default;

mem::VirtAddr
Cluster::allocBuffer(unsigned rank, std::size_t bytes)
{
    assert(ownsRank(rank));
    mem::VirtAddr buf = spaces_[rank]->allocRegion(bytes, "mpi-buf");
    // The application initializes its buffers: CPU-present,
    // IOMMU-cold.
    spaces_[rank]->touch(buf, bytes, /*write=*/true);
    return buf;
}

void
Cluster::isend(unsigned src, unsigned dst, mem::VirtAddr buf,
               std::size_t len, Done done)
{
    assert(src != dst);
    assert(ownsRank(src) && "isend must run on the src rank's facet");
    std::uint64_t id = nextWrId_++;

    bool eager = len <= cfg_.eagerThreshold;
    if (!eager && mode_ == RegMode::NpRdma) {
        // Per-IO unmap: charged between DMA completion and delivery.
        done = [this, src, buf, len, inner = std::move(done)] {
            sim::Time t = pinStrategy_[src]->afterDma(buf, len);
            if (t == 0 || !inner) {
                if (inner)
                    inner();
            } else {
                eq_.scheduleAfter(t, inner);
            }
        };
    }
    pending_[src][dst].sends[id] = std::move(done);

    mem::VirtAddr dma_src = buf;
    sim::Time pre = 0;

    if (eager || mode_ == RegMode::Copy) {
        pre = copyCost(len);
        dma_src = bounceSend_[src];
    } else if (mode_ == RegMode::PinDownCache ||
               mode_ == RegMode::NpRdma) {
        pre = pinStrategy_[src]->beforeDma(buf, len);
    }
    // Npf: post directly; NPFs (if any) happen inside the NIC.

    auto post = [this, src, dst, dma_src, len, id] {
        ib::WorkRequest w;
        w.op = ib::Opcode::Send;
        w.local = dma_src;
        w.len = len;
        w.wrId = id;
        qp(src, dst).postSend(w);
    };
    if (pre == 0)
        post();
    else
        eq_.scheduleAfter(pre, post);
}

void
Cluster::irecv(unsigned dst, unsigned src, mem::VirtAddr buf,
               std::size_t len, Done done)
{
    assert(src != dst);
    assert(ownsRank(dst) && "irecv must run on the dst rank's facet");
    std::uint64_t id = nextWrId_++;

    bool eager = len <= cfg_.eagerThreshold;
    mem::VirtAddr dma_dst = buf;
    sim::Time pre = 0;
    bool copy_out = false;

    if (eager || mode_ == RegMode::Copy) {
        dma_dst = bounceRecv_[dst];
        copy_out = true;
    } else if (mode_ == RegMode::PinDownCache ||
               mode_ == RegMode::NpRdma) {
        pre = pinStrategy_[dst]->beforeDma(buf, len);
    }

    Done wrapped = std::move(done);
    if (copy_out) {
        // Deliver after the CPU copies out of the bounce buffer.
        wrapped = [this, len, inner = std::move(wrapped)] {
            eq_.scheduleAfter(copyCost(len), inner);
        };
    } else if (mode_ == RegMode::NpRdma) {
        // Per-IO unmap: charged between DMA completion and delivery.
        wrapped = [this, dst, buf, len, inner = std::move(wrapped)] {
            sim::Time t = pinStrategy_[dst]->afterDma(buf, len);
            if (t == 0 || !inner) {
                if (inner)
                    inner();
            } else {
                eq_.scheduleAfter(t, inner);
            }
        };
    }
    pending_[dst][src].recvs[id] = std::move(wrapped);

    auto post = [this, dst, src, dma_dst, len, id] {
        ib::WorkRequest w;
        w.local = dma_dst;
        w.len = len;
        w.wrId = id;
        qp(dst, src).postRecv(w);
    };
    if (pre == 0)
        post();
    else
        eq_.scheduleAfter(pre, post);
}

std::uint64_t
Cluster::totalRnpfs() const
{
    std::uint64_t n = 0;
    for (const auto &c : npfcs_)
        if (c)
            n += c->stats().npfs;
    return n;
}

std::uint64_t
Cluster::totalRegMisses() const
{
    // The cast is mode-dispatched: pinStrategy_ holds whatever the
    // ctor built for mode_, and only these two modes build one.
    std::uint64_t n = 0;
    for (const auto &p : pinStrategy_) {
        if (!p)
            continue;
        if (mode_ == RegMode::PinDownCache)
            n += static_cast<core::PinDownCache *>(p.get())->misses();
        else if (mode_ == RegMode::NpRdma)
            n += static_cast<core::NpRdmaMapping *>(p.get())
                     ->stats()
                     .maps;
    }
    return n;
}

} // namespace npf::hpc
