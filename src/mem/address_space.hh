/**
 * @file
 * Per-IOuser virtual address space: a sparse page table with demand
 * paging, pinning, and MMU-notifier callbacks into device page
 * tables (the invalidation flow of the paper's Figure 2, a-d).
 */

#ifndef NPF_MEM_ADDRESS_SPACE_HH
#define NPF_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"
#include "sim/time.hh"

namespace npf::mem {

class MemoryManager;
struct Cgroup;

/** Software page-table entry. */
struct Pte
{
    Pfn pfn = kNoFrame;
    bool present = false;
    bool referenced = false; ///< second-chance bit for the clock
    bool dirty = false;      ///< must go to swap when evicted
    bool fileBacked = false; ///< clean drop on eviction; re-read by owner
    bool inSwap = false;     ///< content lives in the backing store
    std::uint32_t pinCount = 0;
};

/** Outcome of a CPU (or DMA-resolution) memory access. */
struct AccessResult
{
    sim::Time cost = 0;       ///< total latency charged to the accessor
    unsigned minorFaults = 0; ///< pages that needed only a frame
    unsigned majorFaults = 0; ///< pages that also required a swap read
    bool ok = true;           ///< false on out-of-memory
};

/**
 * An IOuser's virtual address space.
 *
 * Regions are reserved with allocRegion() (delayed allocation: no
 * frames until first touch). CPU accesses go through touch(); the
 * NPF engine resolves device faults through the same MemoryManager
 * fault path. Invalidation notifiers model Linux MMU notifiers: the
 * reclaim path calls them before stealing a page so the IOMMU page
 * table never maps a reused frame.
 */
class AddressSpace
{
  public:
    /** Called with the vpn being unmapped; returns the latency. */
    using InvalidateNotifier = std::function<sim::Time(Vpn)>;

    AddressSpace(MemoryManager &mm, std::string name, Cgroup *cgroup);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    const std::string &name() const { return name_; }
    Cgroup *cgroup() const { return cgroup_; }
    MemoryManager &manager() { return mm_; }

    /**
     * Reserve @p bytes of virtual address space.
     * No physical memory is consumed until pages are touched.
     * @return the base address of the region.
     */
    VirtAddr allocRegion(std::size_t bytes, std::string label = {},
                         bool file_backed = false);

    /** Release a region and all frames backing it. */
    void freeRegion(VirtAddr base);

    /**
     * CPU access to [addr, addr + len): faults in absent pages and
     * returns the accumulated latency. @p write marks pages dirty.
     */
    AccessResult touch(VirtAddr addr, std::size_t len, bool write);

    /** Fault in a single page (used by the NPF resolution path). */
    AccessResult touchPage(Vpn vpn, bool write);

    /**
     * Pin [addr, addr + len): fault pages in and exclude them from
     * reclaim. Fails (rolling back) if memory or the pinning limit
     * is exhausted.
     */
    AccessResult pinRange(VirtAddr addr, std::size_t len);

    /** Undo one pinRange() of the same extent. */
    void unpinRange(VirtAddr addr, std::size_t len);

    /** True if the page is resident. */
    bool isPresent(Vpn vpn) const;

    /** PTE lookup; nullptr when the page was never touched. */
    const Pte *findPte(Vpn vpn) const;
    Pte *findPte(Vpn vpn);

    /** PTE lookup, creating an absent entry on demand. */
    Pte &pte(Vpn vpn);

    /** Register an MMU-notifier for device page-table invalidation. */
    void registerInvalidateNotifier(InvalidateNotifier fn);

    /** Invoke all notifiers for @p vpn; returns accumulated latency. */
    sim::Time notifyInvalidate(Vpn vpn);

    std::size_t residentPages() const { return residentPages_; }
    std::size_t pinnedPages() const { return pinnedPages_; }

    /** Resident bytes (the RSS the paper plots in Fig. 8(b)). */
    std::size_t residentBytes() const { return residentPages_ * kPageSize; }

  private:
    friend class MemoryManager;

    struct Region
    {
        VirtAddr base;
        std::size_t pages;
        std::string label;
        bool fileBacked;
    };

    MemoryManager &mm_;
    std::string name_;
    Cgroup *cgroup_;
    std::unordered_map<Vpn, Pte> pageTable_;
    std::vector<Region> regions_;
    std::vector<InvalidateNotifier> notifiers_;
    VirtAddr nextRegionBase_ = 0x10000000ull;
    std::size_t residentPages_ = 0;
    std::size_t pinnedPages_ = 0;
};

} // namespace npf::mem

#endif // NPF_MEM_ADDRESS_SPACE_HH
