#include "mem/memory_manager.hh"

#include <cassert>

#include "obs/flow_tracer.hh"

namespace npf::mem {

namespace {

/** Default cgroup name for spaces created without one. */
const std::string kRootCgroup = "root";

} // namespace

MemoryManager::MemoryManager(std::size_t total_bytes, MemCostConfig cost,
                             BackingStoreConfig swap)
    : phys_(total_bytes), swap_(swap), cost_(cost)
{
    obs_.init("mem.mm");
    obs_.counter("minor_faults", &stats_.minorFaults);
    obs_.counter("major_faults", &stats_.majorFaults);
    obs_.counter("evictions", &stats_.evictions);
    obs_.counter("swap_outs", &stats_.swapOuts);
    obs_.counter("swap_ins", &stats_.swapIns);
    obs_.counter("oom_failures", &stats_.oomFailures);
    obs_.gauge("free_frames", [this] { return double(phys_.freeFrames()); });
    obs_.gauge("used_frames", [this] { return double(phys_.usedFrames()); });
    obs_.gauge("pinned_pages", [this] { return double(pinnedPages_); });

    cgroups_[kRootCgroup] =
        std::make_unique<Cgroup>(Cgroup{kRootCgroup, 0, 0});
    // Keep a small low-watermark free so the reclaim path itself
    // never deadlocks (mirrors min_free_kbytes).
    reserveFrames_ = phys_.totalFrames() / 256;
}

MemoryManager::~MemoryManager() = default;

Cgroup &
MemoryManager::createCgroup(const std::string &name, std::size_t limit_bytes)
{
    auto &slot = cgroups_[name];
    assert(!slot && "cgroup already exists");
    slot = std::make_unique<Cgroup>(
        Cgroup{name, limit_bytes / kPageSize, 0});
    return *slot;
}

AddressSpace &
MemoryManager::createAddressSpace(const std::string &name,
                                  const std::string &cgroup)
{
    const std::string &cg = cgroup.empty() ? kRootCgroup : cgroup;
    auto it = cgroups_.find(cg);
    assert(it != cgroups_.end() && "unknown cgroup");
    spaces_.push_back(
        std::make_unique<AddressSpace>(*this, name, it->second.get()));
    return *spaces_.back();
}

void
MemoryManager::destroyAddressSpace(AddressSpace &as)
{
    for (auto &[vpn, pte] : as.pageTable_) {
        if (pte.present) {
            pte.pinCount = 0; // teardown overrides pins
            dropPage(as, vpn, pte);
        }
    }
    as.pageTable_.clear();
    for (auto it = spaces_.begin(); it != spaces_.end(); ++it) {
        if (it->get() == &as) {
            spaces_.erase(it);
            return;
        }
    }
    assert(false && "destroyAddressSpace: unknown space");
}

FaultResult
MemoryManager::faultIn(AddressSpace &as, Vpn vpn, bool write)
{
    FaultResult res;
    Pte &pte = as.pte(vpn);
    if (pte.present) {
        pte.referenced = true;
        pte.dirty |= write;
        return res;
    }

    Cgroup *cg = as.cgroup();

    // Cgroup pressure: stay within the per-tenant budget.
    while (cg->limitPages != 0 && cg->usedPages >= cg->limitPages) {
        auto evicted = evictOne(cg);
        if (!evicted) {
            ++stats_.oomFailures;
            res.ok = false;
            return res;
        }
        res.cost += *evicted;
    }

    // Global pressure: keep the low watermark free.
    while (phys_.freeFrames() <= reserveFrames_) {
        auto evicted = evictOne(nullptr);
        if (!evicted) {
            ++stats_.oomFailures;
            res.ok = false;
            return res;
        }
        res.cost += *evicted;
    }

    auto pfn = phys_.allocate(&as, vpn);
    if (!pfn) {
        ++stats_.oomFailures;
        res.ok = false;
        return res;
    }

    res.cost += cost_.minorFaultCpu;
    if (pte.inSwap) {
        res.cost += swap_.readLatency(1);
        swap_.freeSlot();
        pte.inSwap = false;
        res.major = true;
        ++stats_.majorFaults;
        ++stats_.swapIns;
        obs::tracer().instant(obs::Track::Mem, "mem", "swap_in");
    } else {
        ++stats_.minorFaults;
    }

    pte.pfn = *pfn;
    pte.present = true;
    pte.referenced = true;
    pte.dirty = write;
    ++as.residentPages_;
    ++cg->usedPages;
    clock_.push_back(*pfn);
    return res;
}

sim::Time
MemoryManager::reclaimPages(std::size_t pages)
{
    sim::Time cost = 0;
    for (std::size_t i = 0; i < pages; ++i) {
        auto evicted = evictOne(nullptr);
        if (!evicted)
            break;
        cost += *evicted;
    }
    return cost;
}

bool
MemoryManager::chargePin(std::size_t pages)
{
    if (cost_.maxPinnableBytes != 0) {
        std::size_t limit = cost_.maxPinnableBytes / kPageSize;
        if (pinnedPages_ + pages > limit)
            return false;
    }
    pinnedPages_ += pages;
    return true;
}

void
MemoryManager::unchargePin(std::size_t pages)
{
    assert(pinnedPages_ >= pages);
    pinnedPages_ -= pages;
}

void
MemoryManager::dropPage(AddressSpace &as, Vpn vpn, Pte &pte)
{
    assert(pte.present);
    as.notifyInvalidate(vpn);
    phys_.release(pte.pfn);
    pte.pfn = kNoFrame;
    pte.present = false;
    assert(as.residentPages_ > 0);
    --as.residentPages_;
    assert(as.cgroup()->usedPages > 0);
    --as.cgroup()->usedPages;
}

std::optional<sim::Time>
MemoryManager::evictOne(Cgroup *target)
{
    // Clock with second chance: scan at most two full revolutions
    // (the first clears referenced bits, the second must find a
    // victim unless everything is pinned or foreign).
    std::size_t budget = clock_.size() * 2 + 1;
    while (budget-- > 0 && !clock_.empty()) {
        Pfn pfn = clock_.front();
        clock_.pop_front();

        const Frame &frame = phys_.frame(pfn);
        if (frame.owner == nullptr)
            continue; // stale entry: frame freed by other paths

        AddressSpace &as = *frame.owner;
        Pte *pte = as.findPte(frame.vpn);
        if (pte == nullptr || !pte->present || pte->pfn != pfn)
            continue; // stale entry

        if (target != nullptr && as.cgroup() != target) {
            clock_.push_back(pfn); // foreign cgroup: skip
            continue;
        }
        if (pte->pinCount > 0) {
            clock_.push_back(pfn); // pinned: never reclaimed
            continue;
        }
        if (pte->referenced) {
            pte->referenced = false; // second chance
            clock_.push_back(pfn);
            continue;
        }

        // Victim found: invalidate device mappings, write back, free.
        obs::tracer().instant(obs::Track::Mem, "mem", "evict");
        sim::Time cost = cost_.evictCpu;
        cost += as.notifyInvalidate(frame.vpn);
        if (pte->dirty && !pte->fileBacked) {
            cost += swap_.writeLatency(1);
            swap_.storePage();
            pte->inSwap = true;
            ++stats_.swapOuts;
            obs::tracer().instant(obs::Track::Mem, "mem", "swap_out");
        }
        pte->dirty = false;
        phys_.release(pfn);
        pte->pfn = kNoFrame;
        pte->present = false;
        assert(as.residentPages_ > 0);
        --as.residentPages_;
        assert(as.cgroup()->usedPages > 0);
        --as.cgroup()->usedPages;
        ++stats_.evictions;
        return cost;
    }
    return std::nullopt;
}

} // namespace npf::mem
