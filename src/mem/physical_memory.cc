#include "mem/physical_memory.hh"

#include <cassert>

namespace npf::mem {

PhysicalMemory::PhysicalMemory(std::size_t total_bytes)
    : frames_(total_bytes / kPageSize)
{
    freeList_.reserve(frames_.size());
    // Hand out low frame numbers first (push high numbers deepest).
    for (std::size_t i = frames_.size(); i-- > 0;)
        freeList_.push_back(static_cast<Pfn>(i));
}

std::optional<Pfn>
PhysicalMemory::allocate(AddressSpace *owner, Vpn vpn)
{
    if (freeList_.empty())
        return std::nullopt;
    Pfn pfn = freeList_.back();
    freeList_.pop_back();
    frames_[pfn].owner = owner;
    frames_[pfn].vpn = vpn;
    return pfn;
}

void
PhysicalMemory::release(Pfn pfn)
{
    assert(pfn < frames_.size());
    assert(frames_[pfn].owner != nullptr && "double free of frame");
    frames_[pfn].owner = nullptr;
    frames_[pfn].vpn = 0;
    freeList_.push_back(pfn);
}

} // namespace npf::mem
