#include "mem/page_cache.hh"

namespace npf::mem {

PageCache::PageCache(AddressSpace &as, std::size_t file_bytes,
                     MissRead miss_read)
    : as_(as), fileBytes_(file_bytes), missRead_(std::move(miss_read))
{
    base_ = as_.allocRegion(file_bytes, "page-cache", /*file_backed=*/true);
}

sim::Time
PageCache::access(std::uint64_t offset, std::size_t len)
{
    if (len == 0)
        return 0;
    VirtAddr addr = base_ + offset;
    Vpn first = pageOf(addr);
    Vpn last = pageOf(addr + len - 1);

    bool all_present = true;
    for (Vpn v = first; v <= last; ++v) {
        if (!as_.isPresent(v)) {
            all_present = false;
            break;
        }
    }

    if (all_present) {
        ++hits_;
        // Mark referenced so the clock keeps hot pages.
        as_.touch(addr, len, /*write=*/false);
        return 0;
    }

    ++misses_;
    sim::Time cost = missRead_(offset, len);
    AccessResult res = as_.touch(addr, len, /*write=*/false);
    if (res.ok)
        cost += res.cost;
    return cost;
}

} // namespace npf::mem
