/**
 * @file
 * Host physical memory: a frame allocator with per-frame reverse
 * mapping metadata used by the reclaim path.
 */

#ifndef NPF_MEM_PHYSICAL_MEMORY_HH
#define NPF_MEM_PHYSICAL_MEMORY_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "mem/types.hh"

namespace npf::mem {

class AddressSpace;

/** Reverse-map metadata for one physical frame. */
struct Frame
{
    AddressSpace *owner = nullptr; ///< nullptr when free
    Vpn vpn = 0;                   ///< owning virtual page when allocated
};

/**
 * A fixed pool of physical frames. Allocation is O(1); the reclaim
 * logic in MemoryManager walks frames via the reverse map.
 */
class PhysicalMemory
{
  public:
    /** @param total_bytes capacity; rounded down to whole frames. */
    explicit PhysicalMemory(std::size_t total_bytes);

    std::size_t totalFrames() const { return frames_.size(); }
    std::size_t freeFrames() const { return freeList_.size(); }
    std::size_t usedFrames() const { return totalFrames() - freeFrames(); }

    /**
     * Allocate one frame for (@p owner, @p vpn).
     * @return the frame number, or std::nullopt when exhausted.
     */
    std::optional<Pfn> allocate(AddressSpace *owner, Vpn vpn);

    /** Return frame @p pfn to the free pool. */
    void release(Pfn pfn);

    /** Reverse-map entry for @p pfn. */
    const Frame &frame(Pfn pfn) const { return frames_[pfn]; }

  private:
    std::vector<Frame> frames_;
    std::vector<Pfn> freeList_;
};

} // namespace npf::mem

#endif // NPF_MEM_PHYSICAL_MEMORY_HH
