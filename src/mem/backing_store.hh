/**
 * @file
 * Swap device model. Evicted dirty pages are written here; major
 * faults read them back with a configurable seek + transfer latency.
 */

#ifndef NPF_MEM_BACKING_STORE_HH
#define NPF_MEM_BACKING_STORE_HH

#include <cstddef>
#include <cstdint>

#include "mem/types.hh"
#include "sim/time.hh"

namespace npf::mem {

/** Latency parameters for the swap device. */
struct BackingStoreConfig
{
    /**
     * Per-operation positioning cost. The default models a swap
     * partition with clustered I/O (Linux swap readahead/writeback
     * batching), not a raw per-page disk seek.
     */
    sim::Time seek = 100 * sim::kMicrosecond;
    double bandwidthBytesPerSec = 400e6; ///< sequential transfer
};

/**
 * Accounting-only swap device: pages have no content in this
 * simulation, so the store tracks slot usage and computes latencies.
 */
class BackingStore
{
  public:
    explicit BackingStore(BackingStoreConfig cfg = {}) : cfg_(cfg) {}

    /** Latency of reading @p pages contiguous pages (a major fault). */
    sim::Time
    readLatency(std::size_t pages) const
    {
        return cfg_.seek + transfer(pages);
    }

    /** Latency of writing @p pages pages (evicting dirty pages). */
    sim::Time
    writeLatency(std::size_t pages) const
    {
        return cfg_.seek + transfer(pages);
    }

    /** Record that a page went out to swap. */
    std::uint64_t
    storePage()
    {
        ++pagesOut_;
        return nextSlot_++;
    }

    /** Record that a swap slot was read back / discarded. */
    void
    freeSlot()
    {
        ++pagesIn_;
    }

    std::uint64_t pagesWritten() const { return pagesOut_; }
    std::uint64_t pagesRead() const { return pagesIn_; }

    const BackingStoreConfig &config() const { return cfg_; }

  private:
    sim::Time
    transfer(std::size_t pages) const
    {
        double secs = double(pages * kPageSize) / cfg_.bandwidthBytesPerSec;
        return sim::fromSeconds(secs);
    }

    BackingStoreConfig cfg_;
    std::uint64_t nextSlot_ = 1;
    std::uint64_t pagesOut_ = 0;
    std::uint64_t pagesIn_ = 0;
};

} // namespace npf::mem

#endif // NPF_MEM_BACKING_STORE_HH
