/**
 * @file
 * Fundamental memory types shared by the host virtual-memory model
 * (mem::), the device-side IOMMU model (iommu::), and the NPF engine.
 */

#ifndef NPF_MEM_TYPES_HH
#define NPF_MEM_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace npf::mem {

/** Virtual address within an IOuser address space (also the IOVA). */
using VirtAddr = std::uint64_t;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

constexpr std::size_t kPageShift = 12;
constexpr std::size_t kPageSize = std::size_t(1) << kPageShift; // 4 KB

/** Sentinel for "no physical frame". */
constexpr Pfn kNoFrame = ~Pfn(0);

/** Page number containing @p addr. */
constexpr Vpn
pageOf(VirtAddr addr)
{
    return addr >> kPageShift;
}

/** First address of page @p vpn. */
constexpr VirtAddr
addrOf(Vpn vpn)
{
    return vpn << kPageShift;
}

/** Number of pages covering [addr, addr + len). */
constexpr std::size_t
pagesCovering(VirtAddr addr, std::size_t len)
{
    if (len == 0)
        return 0;
    Vpn first = pageOf(addr);
    Vpn last = pageOf(addr + len - 1);
    return static_cast<std::size_t>(last - first + 1);
}

/** Round @p bytes up to a whole number of pages. */
constexpr std::size_t
pagesFor(std::size_t bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

} // namespace npf::mem

#endif // NPF_MEM_TYPES_HH
