#include "mem/address_space.hh"

#include <cassert>

#include "mem/memory_manager.hh"

namespace npf::mem {

AddressSpace::AddressSpace(MemoryManager &mm, std::string name,
                           Cgroup *cgroup)
    : mm_(mm), name_(std::move(name)), cgroup_(cgroup)
{
}

AddressSpace::~AddressSpace() = default;

VirtAddr
AddressSpace::allocRegion(std::size_t bytes, std::string label,
                          bool file_backed)
{
    std::size_t pages = pagesFor(bytes);
    VirtAddr base = nextRegionBase_;
    // Leave a guard page between regions to catch overruns in tests.
    nextRegionBase_ += addrOf(pages + 1);
    regions_.push_back(Region{base, pages, std::move(label), file_backed});
    return base;
}

void
AddressSpace::freeRegion(VirtAddr base)
{
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
        if (it->base != base)
            continue;
        Vpn first = pageOf(it->base);
        for (Vpn vpn = first; vpn < first + it->pages; ++vpn) {
            auto pit = pageTable_.find(vpn);
            if (pit == pageTable_.end())
                continue;
            if (pit->second.present)
                mm_.dropPage(*this, vpn, pit->second);
            pageTable_.erase(pit);
        }
        regions_.erase(it);
        return;
    }
    assert(false && "freeRegion: unknown region base");
}

AccessResult
AddressSpace::touch(VirtAddr addr, std::size_t len, bool write)
{
    AccessResult res;
    if (len == 0)
        return res;
    Vpn first = pageOf(addr);
    Vpn last = pageOf(addr + len - 1);
    for (Vpn vpn = first; vpn <= last && res.ok; ++vpn) {
        AccessResult one = touchPage(vpn, write);
        res.cost += one.cost;
        res.minorFaults += one.minorFaults;
        res.majorFaults += one.majorFaults;
        res.ok = one.ok;
    }
    return res;
}

AccessResult
AddressSpace::touchPage(Vpn vpn, bool write)
{
    AccessResult res;
    Pte &entry = pte(vpn);
    if (entry.present) {
        entry.referenced = true;
        entry.dirty |= write;
        return res;
    }
    FaultResult fr = mm_.faultIn(*this, vpn, write);
    res.cost = fr.cost;
    res.ok = fr.ok;
    if (fr.ok) {
        if (fr.major)
            res.majorFaults = 1;
        else
            res.minorFaults = 1;
    }
    return res;
}

AccessResult
AddressSpace::pinRange(VirtAddr addr, std::size_t len)
{
    AccessResult res;
    if (len == 0)
        return res;
    std::size_t pages = pagesCovering(addr, len);
    if (!mm_.chargePin(pages)) {
        res.ok = false;
        return res;
    }
    Vpn first = pageOf(addr);
    for (Vpn vpn = first; vpn < first + pages; ++vpn) {
        AccessResult one = touchPage(vpn, /*write=*/false);
        res.cost += one.cost;
        res.minorFaults += one.minorFaults;
        res.majorFaults += one.majorFaults;
        if (!one.ok) {
            // Roll back pins taken so far.
            for (Vpn v = first; v < vpn; ++v) {
                Pte &p = pte(v);
                assert(p.pinCount > 0);
                if (--p.pinCount == 0)
                    --pinnedPages_;
            }
            mm_.unchargePin(pages);
            res.ok = false;
            return res;
        }
        Pte &p = pte(vpn);
        if (p.pinCount++ == 0)
            ++pinnedPages_;
    }
    return res;
}

void
AddressSpace::unpinRange(VirtAddr addr, std::size_t len)
{
    if (len == 0)
        return;
    std::size_t pages = pagesCovering(addr, len);
    Vpn first = pageOf(addr);
    for (Vpn vpn = first; vpn < first + pages; ++vpn) {
        Pte &p = pte(vpn);
        assert(p.pinCount > 0 && "unpin of unpinned page");
        if (--p.pinCount == 0)
            --pinnedPages_;
    }
    mm_.unchargePin(pages);
}

bool
AddressSpace::isPresent(Vpn vpn) const
{
    const Pte *p = findPte(vpn);
    return p != nullptr && p->present;
}

const Pte *
AddressSpace::findPte(Vpn vpn) const
{
    auto it = pageTable_.find(vpn);
    return it == pageTable_.end() ? nullptr : &it->second;
}

Pte *
AddressSpace::findPte(Vpn vpn)
{
    auto it = pageTable_.find(vpn);
    return it == pageTable_.end() ? nullptr : &it->second;
}

Pte &
AddressSpace::pte(Vpn vpn)
{
    auto [it, inserted] = pageTable_.try_emplace(vpn);
    if (inserted) {
        // Inherit file-backed-ness from the containing region.
        for (const Region &r : regions_) {
            Vpn first = pageOf(r.base);
            if (vpn >= first && vpn < first + r.pages) {
                it->second.fileBacked = r.fileBacked;
                break;
            }
        }
    }
    return it->second;
}

void
AddressSpace::registerInvalidateNotifier(InvalidateNotifier fn)
{
    notifiers_.push_back(std::move(fn));
}

sim::Time
AddressSpace::notifyInvalidate(Vpn vpn)
{
    sim::Time cost = 0;
    for (auto &fn : notifiers_)
        cost += fn(vpn);
    return cost;
}

} // namespace npf::mem
