/**
 * @file
 * The IOprovider's memory manager: owns physical memory and the swap
 * device, creates address spaces and cgroups, and runs the clock
 * (second-chance) reclaim algorithm that enables overcommitment.
 */

#ifndef NPF_MEM_MEMORY_MANAGER_HH
#define NPF_MEM_MEMORY_MANAGER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hh"
#include "mem/backing_store.hh"
#include "mem/physical_memory.hh"
#include "mem/types.hh"
#include "obs/metrics.hh"
#include "sim/time.hh"

namespace npf::mem {

/** Per-tenant memory limit (models Linux memory cgroups). */
struct Cgroup
{
    std::string name;
    std::size_t limitPages = 0; ///< 0 = unlimited
    std::size_t usedPages = 0;
};

/** Software cost knobs for the fault and reclaim paths. */
struct MemCostConfig
{
    /**
     * CPU cost to allocate a frame and fix up the PTE. Calibrated so
     * that the batched NPF resolution of a 4 MB message costs what
     * the paper's Fig. 3 reports (~134 ns of software per page);
     * per-fault trap overhead is charged by higher layers.
     */
    sim::Time minorFaultCpu = 100;
    /** CPU cost to unmap a page on the reclaim path. */
    sim::Time evictCpu = 500;
    /** Pinnable-memory ceiling in bytes; 0 = unlimited. Models
     *  RLIMIT_MEMLOCK-style policies (§3, "No IOuser Pinning"). */
    std::size_t maxPinnableBytes = 0;
};

/** Result of a single-page fault-in. */
struct FaultResult
{
    sim::Time cost = 0;
    bool ok = true;
    bool major = false;
};

/**
 * Host memory manager (the IOprovider side of Table 2).
 *
 * All page allocation flows through faultIn(). When memory (or a
 * cgroup budget) is exhausted, the clock hand evicts unpinned pages:
 * MMU notifiers first invalidate any device mappings, dirty pages go
 * to swap, file-backed clean pages are dropped. Pinned pages are
 * never reclaimed, which is exactly why static pinning defeats
 * overcommitment (Table 3).
 */
class MemoryManager
{
  public:
    struct Stats
    {
        std::uint64_t minorFaults = 0;
        std::uint64_t majorFaults = 0;
        std::uint64_t evictions = 0;
        std::uint64_t swapOuts = 0;
        std::uint64_t swapIns = 0;
        std::uint64_t oomFailures = 0;
    };

    MemoryManager(std::size_t total_bytes, MemCostConfig cost = {},
                  BackingStoreConfig swap = {});
    ~MemoryManager();

    MemoryManager(const MemoryManager &) = delete;
    MemoryManager &operator=(const MemoryManager &) = delete;

    /** Create a cgroup with @p limit_bytes (0 = unlimited). */
    Cgroup &createCgroup(const std::string &name, std::size_t limit_bytes);

    /** True if a cgroup with this name exists. */
    bool
    hasCgroup(const std::string &name) const
    {
        return cgroups_.count(name) > 0;
    }

    /** Create an address space, optionally inside a cgroup. */
    AddressSpace &createAddressSpace(const std::string &name,
                                     const std::string &cgroup = {});

    /** Destroy an address space, releasing all its frames. */
    void destroyAddressSpace(AddressSpace &as);

    /**
     * Fault page @p vpn of @p as in (the slow path of both CPU page
     * faults and NPFs). Runs reclaim when memory is tight.
     */
    FaultResult faultIn(AddressSpace &as, Vpn vpn, bool write);

    /**
     * Evict @p pages pages (global pressure), e.g. to simulate an
     * external memory consumer. @return latency spent.
     */
    sim::Time reclaimPages(std::size_t pages);

    /** Account a pin of @p pages; false if over the pinnable limit. */
    bool chargePin(std::size_t pages);
    void unchargePin(std::size_t pages);

    PhysicalMemory &physical() { return phys_; }
    BackingStore &swap() { return swap_; }
    const Stats &stats() const { return stats_; }
    const MemCostConfig &costs() const { return cost_; }
    std::size_t pinnedPages() const { return pinnedPages_; }

    /** Frames kept free as the reclaim low-watermark. */
    std::size_t reserveFrames() const { return reserveFrames_; }

  private:
    friend class AddressSpace;

    /** Release one resident page of @p as (region teardown). */
    void dropPage(AddressSpace &as, Vpn vpn, Pte &pte);

    /**
     * Evict one page, preferring frames charged to @p target (nullptr
     * = any). @return latency, or nullopt if nothing is evictable.
     */
    std::optional<sim::Time> evictOne(Cgroup *target);

    PhysicalMemory phys_;
    BackingStore swap_;
    MemCostConfig cost_;
    Stats stats_;
    std::deque<Pfn> clock_;
    std::unordered_map<std::string, std::unique_ptr<Cgroup>> cgroups_;
    std::vector<std::unique_ptr<AddressSpace>> spaces_;
    std::size_t pinnedPages_ = 0;
    std::size_t reserveFrames_ = 0;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::mem

#endif // NPF_MEM_MEMORY_MANAGER_HH
