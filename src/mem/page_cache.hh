/**
 * @file
 * File/page cache built on the demand-paging machinery: cached file
 * pages live in an (unpinned, file-backed) address-space region, so
 * the global reclaim clock naturally trades them off against other
 * memory consumers — the effect the paper's storage experiment
 * (Fig. 8) exploits.
 */

#ifndef NPF_MEM_PAGE_CACHE_HH
#define NPF_MEM_PAGE_CACHE_HH

#include <cstdint>
#include <functional>

#include "mem/address_space.hh"
#include "sim/time.hh"

namespace npf::mem {

/**
 * Cache of one file/LUN's pages.
 *
 * access() checks whether all pages of the extent are resident; a
 * miss charges the caller the backing-device read latency via the
 * missRead callback and faults the pages in (file-backed: clean
 * eviction drops them without swap I/O).
 */
class PageCache
{
  public:
    /** Charged on a miss: (offset, bytes) -> device read latency. */
    using MissRead =
        std::function<sim::Time(std::uint64_t offset, std::size_t bytes)>;

    /**
     * @param as address space holding the cache pages (typically the
     *   storage daemon's).
     * @param file_bytes size of the cached file/LUN.
     */
    PageCache(AddressSpace &as, std::size_t file_bytes, MissRead miss_read);

    /**
     * Access [offset, offset + len) of the file.
     * @return latency (0 on a full hit) — out-of-memory during
     *   fault-in is absorbed by treating the access as uncached.
     */
    sim::Time access(std::uint64_t offset, std::size_t len);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Resident fraction of the file, for reporting. */
    double
    residentFraction() const
    {
        std::size_t pages = pagesFor(fileBytes_);
        if (pages == 0)
            return 0.0;
        std::size_t resident = 0;
        Vpn first = pageOf(base_);
        for (Vpn v = first; v < first + pages; ++v)
            if (as_.isPresent(v))
                ++resident;
        return double(resident) / double(pages);
    }

  private:
    AddressSpace &as_;
    std::size_t fileBytes_;
    VirtAddr base_;
    MissRead missRead_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace npf::mem

#endif // NPF_MEM_PAGE_CACHE_HH
