#include "fault/fault.hh"

#include <cassert>
#include <cctype>
#include <cstdlib>

#include "obs/flow_tracer.hh"

namespace npf::fault {

thread_local FaultInjector *FaultInjector::active_ = nullptr;

const char *
siteName(Site s)
{
    switch (s) {
      case Site::Link:  return "link";
      case Site::EthRx: return "eth.rx";
      case Site::IbRx:  return "ib.rx";
      case Site::TcpRx: return "tcp.rx";
      case Site::Npf:   return "npf";
      case Site::Mem:   return "mem";
      case Site::Iotlb: return "iotlb";
      case Site::Switch: return "switch";
    }
    return "?";
}

const char *
actionName(Action a)
{
    switch (a) {
      case Action::Drop:       return "drop";
      case Action::Duplicate:  return "dup";
      case Action::Reorder:    return "reorder";
      case Action::Delay:      return "delay";
      case Action::Corrupt:    return "corrupt";
      case Action::Stall:      return "stall";
      case Action::ForceFault: return "force";
      case Action::Pressure:   return "pressure";
      case Action::Evict:      return "evict";
      case Action::Pause:      return "pause";
      case Action::Flap:       return "flap";
    }
    return "?";
}

namespace {

/** Tracer names must be string literals (stored as const char*), so
 *  each valid (site, action) pair gets its own. */
const char *
injectionLabel(Site s, Action a)
{
    switch (s) {
      case Site::Link:
        switch (a) {
          case Action::Drop:      return "fault.link.drop";
          case Action::Duplicate: return "fault.link.dup";
          case Action::Reorder:   return "fault.link.reorder";
          case Action::Delay:     return "fault.link.delay";
          default: break;
        }
        break;
      case Site::EthRx:
        switch (a) {
          case Action::Corrupt: return "fault.eth.rx.corrupt";
          case Action::Stall:   return "fault.eth.rx.stall";
          default: break;
        }
        break;
      case Site::IbRx:
        switch (a) {
          case Action::Drop:      return "fault.ib.rx.drop";
          case Action::Duplicate: return "fault.ib.rx.dup";
          case Action::Reorder:   return "fault.ib.rx.reorder";
          case Action::Delay:     return "fault.ib.rx.delay";
          default: break;
        }
        break;
      case Site::TcpRx:
        switch (a) {
          case Action::Drop:      return "fault.tcp.rx.drop";
          case Action::Duplicate: return "fault.tcp.rx.dup";
          case Action::Reorder:   return "fault.tcp.rx.reorder";
          case Action::Delay:     return "fault.tcp.rx.delay";
          default: break;
        }
        break;
      case Site::Npf:
        if (a == Action::ForceFault)
            return "fault.npf.force";
        break;
      case Site::Mem:
        if (a == Action::Pressure)
            return "fault.mem.pressure";
        break;
      case Site::Iotlb:
        if (a == Action::Evict)
            return "fault.iotlb.evict";
        break;
      case Site::Switch:
        switch (a) {
          case Action::Drop:  return "fault.sw.drop";
          case Action::Stall: return "fault.sw.stall";
          case Action::Pause: return "fault.sw.pause";
          case Action::Flap:  return "fault.sw.flap";
          default: break;
        }
        break;
    }
    return "fault.inject";
}

bool
isTimedSite(Site s)
{
    return s == Site::Mem || s == Site::Iotlb;
}

/** Which actions make sense at which site. */
bool
actionValidAt(Site s, Action a)
{
    switch (s) {
      case Site::Link:
      case Site::IbRx:
      case Site::TcpRx:
        return a == Action::Drop || a == Action::Duplicate ||
               a == Action::Reorder || a == Action::Delay;
      case Site::EthRx:
        return a == Action::Corrupt || a == Action::Stall;
      case Site::Npf:
        return a == Action::ForceFault;
      case Site::Mem:
        return a == Action::Pressure;
      case Site::Iotlb:
        return a == Action::Evict;
      case Site::Switch:
        return a == Action::Drop || a == Action::Stall ||
               a == Action::Pause || a == Action::Flap;
    }
    return false;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

/** "200" (ns), "30us", "1.5ms", "2s". */
bool
parseTimeValue(const std::string &v, sim::Time &out)
{
    if (v.empty())
        return false;
    const char *begin = v.c_str();
    char *end = nullptr;
    double x = std::strtod(begin, &end);
    if (end == begin || x < 0.0)
        return false;
    std::string unit(end);
    double scale;
    if (unit.empty() || unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = double(sim::kMicrosecond);
    else if (unit == "ms")
        scale = double(sim::kMillisecond);
    else if (unit == "s")
        scale = double(sim::kSecond);
    else
        return false;
    out = static_cast<sim::Time>(x * scale);
    return true;
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size())
        return false;
    out = x;
    return true;
}

bool
parseSite(const std::string &v, Site &out)
{
    for (unsigned i = 0; i < kSiteCount; ++i) {
        if (v == siteName(Site(i))) {
            out = Site(i);
            return true;
        }
    }
    return false;
}

bool
parseAction(const std::string &v, Action &out)
{
    for (unsigned i = 0; i < kActionCount; ++i) {
        if (v == actionName(Action(i))) {
            out = Action(i);
            return true;
        }
    }
    // long-form aliases
    if (v == "duplicate") {
        out = Action::Duplicate;
        return true;
    }
    return false;
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
    return false;
}

bool
parseClause(const std::string &text, FaultClause &c, std::string *error)
{
    std::vector<std::string> parts = split(text, ':');
    if (parts.size() < 2)
        return fail(error, "clause '" + text + "': want site:action[:params]");
    if (parts.size() > 3)
        return fail(error, "clause '" + text + "': too many ':' fields");

    if (!parseSite(trim(parts[0]), c.site))
        return fail(error, "unknown site '" + trim(parts[0]) + "'");
    if (!parseAction(trim(parts[1]), c.action))
        return fail(error, "unknown action '" + trim(parts[1]) + "'");
    if (!actionValidAt(c.site, c.action))
        return fail(error, std::string("action '") + actionName(c.action) +
                               "' not valid at site '" + siteName(c.site) +
                               "'");

    bool trigger_set = false;
    auto set_trigger = [&](FaultClause::Trigger t) {
        if (trigger_set)
            return false;
        c.trigger = t;
        trigger_set = true;
        return true;
    };

    if (parts.size() == 3) {
        for (const std::string &kv_text : split(parts[2], ',')) {
            std::string kv = trim(kv_text);
            if (kv.empty())
                continue;
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                return fail(error, "param '" + kv + "': want key=value");
            std::string key = trim(kv.substr(0, eq));
            std::string val = trim(kv.substr(eq + 1));

            if (key == "rate") {
                char *end = nullptr;
                c.rate = std::strtod(val.c_str(), &end);
                if (end != val.c_str() + val.size() || c.rate < 0.0 ||
                    c.rate > 1.0)
                    return fail(error, "rate '" + val + "': want 0..1");
                if (!set_trigger(FaultClause::Trigger::Rate))
                    return fail(error, "clause has two triggers");
            } else if (key == "burst") {
                // width@period, e.g. burst=50us@1ms
                std::size_t sep = val.find('@');
                if (sep == std::string::npos ||
                    !parseTimeValue(trim(val.substr(0, sep)), c.width) ||
                    !parseTimeValue(trim(val.substr(sep + 1)), c.period) ||
                    c.period == 0 || c.width == 0 || c.width > c.period)
                    return fail(error, "burst '" + val +
                                           "': want width@period, "
                                           "0 < width <= period");
                if (!set_trigger(FaultClause::Trigger::Burst))
                    return fail(error, "clause has two triggers");
            } else if (key == "nth") {
                if (!parseU64(val, c.nth) || c.nth == 0)
                    return fail(error, "nth '" + val + "': want >= 1");
                if (!set_trigger(FaultClause::Trigger::Nth))
                    return fail(error, "clause has two triggers");
            } else if (key == "at") {
                if (!parseTimeValue(val, c.at))
                    return fail(error, "at '" + val + "': bad time");
                // 'at' doubles as the first-fire offset of 'every';
                // only claim the trigger if none is set yet.
                if (!trigger_set)
                    set_trigger(FaultClause::Trigger::At);
                else if (c.trigger != FaultClause::Trigger::Every)
                    return fail(error, "clause has two triggers");
            } else if (key == "every") {
                if (!parseTimeValue(val, c.period) || c.period == 0)
                    return fail(error, "every '" + val + "': bad period");
                if (trigger_set && c.trigger == FaultClause::Trigger::At)
                    c.trigger = FaultClause::Trigger::Every; // at= came 1st
                else if (!set_trigger(FaultClause::Trigger::Every))
                    return fail(error, "clause has two triggers");
            } else if (key == "count") {
                if (!parseU64(val, c.count) || c.count == 0)
                    return fail(error, "count '" + val + "': want >= 1");
            } else if (key == "from") {
                if (!parseTimeValue(val, c.from))
                    return fail(error, "from '" + val + "': bad time");
            } else if (key == "until") {
                if (!parseTimeValue(val, c.until))
                    return fail(error, "until '" + val + "': bad time");
            } else if (key == "delay") {
                if (!parseTimeValue(val, c.delay))
                    return fail(error, "delay '" + val + "': bad time");
            } else if (key == "pages" || key == "entries") {
                if (!parseU64(val, c.magnitude))
                    return fail(error, key + " '" + val + "': bad count");
            } else {
                return fail(error, "unknown param '" + key + "'");
            }
        }
    }

    if (isTimedSite(c.site)) {
        if (!trigger_set || (c.trigger != FaultClause::Trigger::At &&
                             c.trigger != FaultClause::Trigger::Every))
            return fail(error, std::string("site '") + siteName(c.site) +
                                   "' needs at= or every=");
        if (c.site == Site::Mem && c.magnitude == 0)
            c.magnitude = 256; // default pressure spike, in pages
    } else {
        if (!trigger_set || (c.trigger != FaultClause::Trigger::Rate &&
                             c.trigger != FaultClause::Trigger::Burst &&
                             c.trigger != FaultClause::Trigger::Nth))
            return fail(error, std::string("site '") + siteName(c.site) +
                                   "' needs rate=, burst= or nth=");
    }
    if (c.until <= c.from)
        return fail(error, "empty [from, until) window");
    return true;
}

} // namespace

std::optional<FaultPlan>
FaultPlan::parse(const std::string &spec, std::string *error)
{
    FaultPlan plan;
    plan.spec = spec;
    for (const std::string &clause_text : split(spec, ';')) {
        std::string t = trim(clause_text);
        if (t.empty())
            continue;
        FaultClause c;
        if (!parseClause(t, c, error))
            return std::nullopt;
        plan.clauses.push_back(c);
    }
    return plan;
}

// --- FaultInjector ----------------------------------------------------

FaultInjector::FaultInjector(sim::EventQueue &eq, FaultPlan plan,
                             std::uint64_t seed)
    : eq_(eq), plan_(std::move(plan)), seed_(seed)
{
    assert(active_ == nullptr && "one FaultInjector at a time");
    st_.reserve(plan_.clauses.size());
    for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
        // Independent stream per clause, derived from the plan seed.
        st_.emplace_back(seed_ ^
                         (0x9e3779b97f4a7c15ull * (std::uint64_t(i) + 1)));
        bySite_[unsigned(plan_.clauses[i].site)].push_back(i);
    }

    obs_.init("fault.inj");
    for (unsigned s = 0; s < kSiteCount; ++s) {
        obs_.counter(std::string(siteName(Site(s))) + ".injected",
                     &injected_[s]);
    }

    active_ = this;

    for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
        const FaultClause &c = plan_.clauses[i];
        if (c.trigger == FaultClause::Trigger::At) {
            scheduleTimed(i, std::max(c.at, c.from));
        } else if (c.trigger == FaultClause::Trigger::Every) {
            sim::Time first = c.at != 0 ? c.at : c.period;
            first = std::max(first, c.from);
            if (first < c.until)
                scheduleTimed(i, first);
        }
    }
}

FaultInjector::~FaultInjector()
{
    for (ClauseState &cs : st_) {
        if (cs.timer != sim::kInvalidEvent) {
            eq_.cancel(cs.timer);
            cs.timer = sim::kInvalidEvent;
        }
    }
    assert(active_ == this);
    active_ = nullptr;
}

std::optional<FaultInjector::Decision>
FaultInjector::decide(Site site)
{
    unsigned s = unsigned(site);
    ++observed_[s];
    sim::Time now = eq_.now();
    std::optional<Decision> hit;
    for (std::size_t idx : bySite_[s]) {
        const FaultClause &c = plan_.clauses[idx];
        ClauseState &cs = st_[idx];
        ++cs.seen;
        bool match = false;
        switch (c.trigger) {
          case FaultClause::Trigger::Rate:
            // Draw unconditionally: a clause's stream depends only on
            // how many site events it has seen, never on whether a
            // sibling clause fired first.
            match = cs.rng.bernoulli(c.rate);
            break;
          case FaultClause::Trigger::Burst:
            match = now >= c.from && ((now - c.from) % c.period) < c.width;
            break;
          case FaultClause::Trigger::Nth:
            match = cs.seen == c.nth;
            break;
          case FaultClause::Trigger::At:
          case FaultClause::Trigger::Every:
            break; // timed triggers never match polled events
        }
        if (!match || hit.has_value() || now < c.from || now >= c.until)
            continue;
        ++cs.fired;
        ++injected_[s];
        obs::FlowTracer &tr = obs::tracer();
        if (tr.active())
            tr.instant(obs::Track::Sim, "fault",
                       injectionLabel(site, c.action));
        if (clauseHook_)
            clauseHook_(idx, site, c.action, cs.fired);
        hit = Decision{c.action, c.delay};
    }
    return hit;
}

void
FaultInjector::onTimedAction(Site site, TimedHandler h)
{
    handlers_[unsigned(site)] = std::move(h);
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (unsigned s = 0; s < kSiteCount; ++s)
        total += injected_[s];
    return total;
}

std::uint64_t
FaultInjector::clauseFired(std::size_t idx) const
{
    return st_.at(idx).fired;
}

void
FaultInjector::scheduleTimed(std::size_t idx, sim::Time when)
{
    st_[idx].timer = eq_.schedule(when, [this, idx] {
        st_[idx].timer = sim::kInvalidEvent;
        fireTimed(idx);
    }, "fault.timed");
}

void
FaultInjector::fireTimed(std::size_t idx)
{
    const FaultClause &c = plan_.clauses[idx];
    ClauseState &cs = st_[idx];
    unsigned s = unsigned(c.site);
    ++cs.fired;
    ++injected_[s];
    obs::FlowTracer &tr = obs::tracer();
    if (tr.active())
        tr.instant(obs::Track::Sim, "fault",
                   injectionLabel(c.site, c.action));
    if (clauseHook_)
        clauseHook_(idx, c.site, c.action, cs.fired);
    if (handlers_[s])
        handlers_[s](c.magnitude);
    if (c.trigger == FaultClause::Trigger::Every) {
        if (c.count != 0 && cs.fired >= c.count)
            return;
        sim::Time next = eq_.now() + c.period;
        if (next < c.until)
            scheduleTimed(idx, next);
    }
}

} // namespace npf::fault
