/**
 * @file
 * Deterministic fault injection for npfsim.
 *
 * A FaultPlan is a parsed list of clauses, each binding one *site*
 * (an injection point in the stack) to one *action* and a trigger
 * process: a Bernoulli rate, a recurring burst window, an exact
 * event ordinal, or a scripted (time, site, action) schedule for the
 * timed sites. A FaultInjector owns the per-clause random streams
 * (seeded independently, in the sim::Rng idiom: interleaving one
 * site's events never perturbs another clause's draws) and installs
 * itself as the process-wide active injector.
 *
 * Hook design mirrors the obs layer: every hot path guards with a
 * single `FaultInjector::active()` pointer test, so with no plan
 * installed no extra branches beyond that are taken, no random
 * numbers are drawn and no events are scheduled — simulations are
 * bit-identical to a build without the hooks.
 *
 * The grammar accepted by FaultPlan::parse() is documented in
 * docs/FAULTS.md:
 *
 *   plan   := clause (';' clause)*
 *   clause := site ':' action [':' key '=' value (',' key '=' value)*]
 *
 * e.g. "link:drop:rate=0.01;ib.rx:reorder:rate=0.005,delay=50us;
 *       mem:pressure:every=2ms,count=10,pages=512".
 */

#ifndef NPF_FAULT_FAULT_HH
#define NPF_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace npf::fault {

/** Injection points. Most are event sites (polled by the component
 *  on each traversal); Mem and Iotlb are timed sites whose actions
 *  fire on a schedule through registered handlers. Append-only: the
 *  enum values seed per-clause RNG streams, so renumbering would
 *  silently change every existing plan's replay. */
enum class Site : unsigned {
    Link = 0, ///< net::Link::send() — every packet on a wire
    EthRx,    ///< eth::EthNic::receive() — every inbound frame
    IbRx,     ///< ib::QueuePair::handlePacket() — every IB packet
    TcpRx,    ///< tcp::TcpConnection::receiveSegment()
    Npf,      ///< core::NpfController checkDma()/dmaAccess()
    Mem,      ///< timed: memory-pressure spike (handler-delivered)
    Iotlb,    ///< timed: IOTLB eviction storm (handler-delivered)
    Switch,   ///< net::Switch::receive() — every switched packet
};
constexpr unsigned kSiteCount = 8;

/** What an injection does at its site. */
enum class Action : unsigned {
    Drop = 0,   ///< link/ib.rx/tcp.rx: discard the packet
    Duplicate,  ///< link/ib.rx/tcp.rx: deliver it twice
    Reorder,    ///< link/ib.rx/tcp.rx: extra latency, later traffic
                ///< overtakes (wire stays FIFO-busy, arrival shifts)
    Delay,      ///< same mechanics as Reorder; separate counter intent
    Corrupt,    ///< eth.rx: FCS failure — frame counted then dropped
    Stall,      ///< eth.rx: RX pipeline stalls before ring dispatch
    ForceFault, ///< npf: next device translation reports a miss
    Pressure,   ///< mem (timed): reclaim `magnitude` pages now
    Evict,      ///< iotlb (timed): evict `magnitude` entries (0 = all)
    Pause,      ///< switch: forced PFC storm upstream for `delay`
    Flap,       ///< switch: egress port drops carrier for `delay`
};
constexpr unsigned kActionCount = 11;

const char *siteName(Site s);
const char *actionName(Action a);

/** One fault process bound to a site. */
struct FaultClause
{
    enum class Trigger {
        Rate,  ///< independent Bernoulli(p) per site event
        Burst, ///< all events inside recurring [k*period, +width) hit
        Nth,   ///< exactly the nth event at the site (1-based)
        At,    ///< timed sites: fire once at an absolute time
        Every, ///< timed sites: fire periodically
    };

    Site site = Site::Link;
    Action action = Action::Drop;
    Trigger trigger = Trigger::Rate;

    double rate = 0.0;         ///< Rate: hit probability
    sim::Time period = 0;      ///< Burst/Every: recurrence interval
    sim::Time width = 0;       ///< Burst: window length
    std::uint64_t nth = 0;     ///< Nth: 1-based event ordinal
    sim::Time at = 0;          ///< At: fire time; Every: first fire
    std::uint64_t count = 0;   ///< Every: max firings (0 = unbounded)
    sim::Time from = 0;        ///< gate: active at or after
    sim::Time until =          ///< gate: inactive at or after
        std::numeric_limits<sim::Time>::max();

    sim::Time delay = 10 * sim::kMicrosecond; ///< Delay/Reorder/Stall
    std::uint64_t magnitude = 0;              ///< Pressure/Evict size
};

/** A parsed, validated fault plan. */
class FaultPlan
{
  public:
    /**
     * Parse @p spec (grammar above). Returns nullopt on a malformed
     * spec and, when @p error is non-null, stores a diagnostic.
     * An empty/blank spec parses to an empty plan (no clauses).
     */
    static std::optional<FaultPlan> parse(const std::string &spec,
                                          std::string *error = nullptr);

    bool empty() const { return clauses.empty(); }

    std::vector<FaultClause> clauses;
    std::string spec; ///< original text, for echoing in bench output
};

/**
 * The live injector. Constructing one installs it as the process-wide
 * active injector (at most one at a time); destruction uninstalls it
 * and cancels any pending timed-action events.
 */
class FaultInjector
{
  public:
    /** Outcome of decide() when a clause hits. */
    struct Decision
    {
        Action action;
        sim::Time delay; ///< Delay/Reorder/Stall magnitude
    };

    /** Timed-site callback; receives the clause's magnitude. */
    using TimedHandler = std::function<void(std::uint64_t magnitude)>;

    /**
     * Observer invoked on every clause firing (polled hits and timed
     * actions alike), after the injection counters are bumped but
     * before the effect is delivered. @p fired is the clause's firing
     * count including this one. Runs inside the injection path — keep
     * it cheap and do not mutate the injector from it. Used by the
     * chaos harness to dump the flight recorder at clause boundaries.
     */
    using ClauseHook = std::function<void(
        std::size_t clauseIdx, Site site, Action action,
        std::uint64_t fired)>;

    FaultInjector(sim::EventQueue &eq, FaultPlan plan,
                  std::uint64_t seed = 1);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** The installed injector, or nullptr. The ONLY hot-path cost of
     *  this subsystem when no plan is active is this pointer test. */
    static FaultInjector *active() { return active_; }

    /**
     * Poll @p site for an injection on the current event. Evaluates
     * every clause bound to the site (each consumes its own draws, so
     * clause streams are mutually independent); the first hit in plan
     * order wins. Counts the hit and emits a flow-tracer instant.
     */
    std::optional<Decision> decide(Site site);

    /**
     * Register the effector for a timed site (Mem, Iotlb). The
     * injector cannot depend on mem/iommu (layering), so harnesses
     * translate magnitudes into reclaimPages()/invalidation calls.
     */
    void onTimedAction(Site site, TimedHandler h);

    /** Install (or clear, with nullptr) the clause-firing observer. */
    void onClauseFired(ClauseHook h) { clauseHook_ = std::move(h); }

    /** Injections delivered at @p site so far. */
    std::uint64_t injected(Site site) const
    {
        return injected_[unsigned(site)];
    }
    /** Events observed (polls) at @p site so far. */
    std::uint64_t observed(Site site) const
    {
        return observed_[unsigned(site)];
    }
    std::uint64_t injectedTotal() const;
    /** Firings of plan clause @p idx. */
    std::uint64_t clauseFired(std::size_t idx) const;

    const FaultPlan &plan() const { return plan_; }
    std::uint64_t seed() const { return seed_; }

  private:
    struct ClauseState
    {
        sim::Rng rng;
        std::uint64_t seen = 0;  ///< site events observed
        std::uint64_t fired = 0; ///< injections delivered
        sim::EventId timer = sim::kInvalidEvent;

        explicit ClauseState(std::uint64_t s) : rng(s) {}
    };

    void scheduleTimed(std::size_t idx, sim::Time when);
    void fireTimed(std::size_t idx);

    sim::EventQueue &eq_;
    FaultPlan plan_;
    std::uint64_t seed_;
    std::vector<ClauseState> st_;
    std::vector<std::size_t> bySite_[kSiteCount];
    TimedHandler handlers_[kSiteCount];
    ClauseHook clauseHook_;
    std::uint64_t injected_[kSiteCount] = {};
    std::uint64_t observed_[kSiteCount] = {};

    /** thread_local: each shard worker arms its own injector
     *  (a fault plan never spans shards). */
    static thread_local FaultInjector *active_;

    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::fault

#endif // NPF_FAULT_FAULT_HH
