#include "core/npf_controller.hh"

#include <cassert>

#include "fault/fault.hh"
#include "mem/memory_manager.hh"
#include "sim/log.hh"
#include "sim/pool.hh"

namespace {

/**
 * Slab for in-flight NPF breakdowns. The resolution closure chain
 * carries an 8-byte generation-stamped handle instead of a
 * shared_ptr, so raising an NPF performs no heap allocation and each
 * continuation revalidates the handle at fire time (a stale handle —
 * the breakdown released while a continuation still held it — aborts
 * instead of reading recycled memory). Static so handles in closures
 * parked in a dying event queue can never dangle.
 */
npf::sim::Pool<npf::core::NpfBreakdown> &
breakdownPool()
{
    static thread_local auto *p =
        new npf::sim::Pool<npf::core::NpfBreakdown>("core::breakdownPool");
    return *p;
}

/** True when an active fault plan forces an rNPF on this device-side
 *  translation attempt. */
bool
injectedForcedFault()
{
    npf::fault::FaultInjector *fi = npf::fault::FaultInjector::active();
    if (fi == nullptr)
        return false;
    auto d = fi->decide(npf::fault::Site::Npf);
    return d.has_value() && d->action == npf::fault::Action::ForceFault;
}

} // namespace

namespace npf::core {

NpfController::NpfController(sim::EventQueue &eq, OdpConfig cfg,
                             std::uint64_t seed)
    : eq_(eq), cfg_(cfg), rng_(seed)
{
    obs_.init("core.npf");
    obs_.counter("npfs", &stats_.npfs);
    obs_.counter("merged_npfs", &stats_.mergedNpfs);
    obs_.counter("queued_npfs", &stats_.queuedNpfs);
    obs_.counter("pages_mapped", &stats_.pagesMapped);
    obs_.counter("major_faults", &stats_.majorFaults);
    obs_.counter("invalidations", &stats_.invalidations);
    obs_.histogram("trigger_ns", &lat_.triggerNs);
    obs_.histogram("driver_ns", &lat_.driverNs);
    obs_.histogram("pt_update_ns", &lat_.ptUpdateNs);
    obs_.histogram("resume_ns", &lat_.resumeNs);
    obs_.histogram("total_ns", &lat_.totalNs);
}

void
NpfController::recordBreakdown(const NpfBreakdown &bd)
{
    if (!obs::Registry::global().detail())
        return;
    lat_.triggerNs.record(double(bd.trigger));
    lat_.driverNs.record(double(bd.driver));
    lat_.ptUpdateNs.record(double(bd.ptUpdate));
    lat_.resumeNs.record(double(bd.resume));
    lat_.totalNs.record(double(bd.total()));
}

void
NpfController::traceBreakdown(obs::FlowId flow, const NpfBreakdown &bd,
                              sim::Time end)
{
    obs::FlowTracer &tr = obs::tracer();
    if (!tr.active())
        return;
    sim::Time t = end - bd.total();
    tr.span(obs::Track::Nic, "npf", "trigger", t, bd.trigger, flow);
    t += bd.trigger;
    tr.span(obs::Track::Driver, "npf", "driver", t, bd.driver, flow);
    t += bd.driver;
    tr.span(obs::Track::Iommu, "npf", "pt_update", t, bd.ptUpdate, flow);
    t += bd.ptUpdate;
    tr.span(obs::Track::Nic, "npf", "resume", t, bd.resume, flow);
}

ChannelId
NpfController::attach(mem::AddressSpace &as)
{
    auto ch = static_cast<ChannelId>(channels_.size());
    channels_.push_back(std::make_unique<Channel>(cfg_.iotlbCapacity));
    Channel &c = *channels_.back();
    c.as = &as;

    // MMU notifier: reclaim invalidates the device mapping before
    // reusing the frame (Fig. 2, a-d). Reclaim-path invalidations
    // are charged an amortized cost (notifiers batch ranges); the
    // full per-operation model is in invalidateRange().
    as.registerInvalidateNotifier([this, ch](mem::Vpn vpn) -> sim::Time {
        Channel &chn = chan(ch);
        bool mapped = chn.iommu.invalidate(vpn);
        ++stats_.invalidations;
        if (!mapped)
            return cfg_.invChecks / 4;
        return (cfg_.invChecks + cfg_.invPtUpdateBase + cfg_.invSwUpdates) /
               4;
    });
    return ch;
}

NpfController::DmaCheck
NpfController::checkDma(ChannelId ch, mem::VirtAddr iova, std::size_t len)
{
    DmaCheck res = checkDmaRaw(ch, iova, len);
    // Device-side peek only: the controller's own machinery (debounce,
    // resolution) uses checkDmaRaw() and is immune to injection.
    if (res.ok && len != 0 && injectedForcedFault()) {
        res.ok = false;
        res.missingPages = 1;
        res.firstMissing = mem::pageOf(iova);
    }
    return res;
}

NpfController::DmaCheck
NpfController::checkDmaRaw(ChannelId ch, mem::VirtAddr iova, std::size_t len)
{
    DmaCheck res;
    if (len == 0)
        return res;
    Channel &c = chan(ch);
    mem::Vpn first = mem::pageOf(iova);
    mem::Vpn last = mem::pageOf(iova + len - 1);
    for (mem::Vpn v = first; v <= last; ++v) {
        if (c.iommu.wouldFault(v)) {
            if (res.missingPages == 0)
                res.firstMissing = v;
            ++res.missingPages;
            res.ok = false;
        }
    }
    return res;
}

bool
NpfController::dmaAccess(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                         bool write)
{
    if (len == 0)
        return true;
    Channel &c = chan(ch);
    mem::Vpn first = mem::pageOf(iova);
    mem::Vpn last = mem::pageOf(iova + len - 1);
    for (mem::Vpn v = first; v <= last; ++v) {
        iommu::Translation t = c.iommu.translate(v);
        if (!t.ok)
            return false;
    }
    // Forced rNPF: the translation "misses" even though the pages are
    // resident, before any reference bits are touched — the caller
    // goes down its real fault-recovery path.
    if (injectedForcedFault())
        return false;
    // DMA touches the backing pages: keep referenced/dirty bits hot
    // so reclaim prefers genuinely cold pages.
    for (mem::Vpn v = first; v <= last; ++v) {
        mem::Pte *pte = c.as->findPte(v);
        if (pte != nullptr && pte->present) {
            pte->referenced = true;
            pte->dirty |= write;
        }
    }
    return true;
}

void
NpfController::raiseNpf(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                        bool write, ResolveCallback cb)
{
    Channel &c = chan(ch);

    if (cfg_.firmwareBypass) {
        DmaCheck check = checkDmaRaw(ch, iova, len);
        if (check.ok) {
            // Raced with a completed resolution: nothing to do.
            obs::tracer().instant(obs::Track::Nic, "npf",
                                  "npf.debounced");
            NpfBreakdown bd;
            bd.merged = true;
            eq_.scheduleAfter(0, [cb = std::move(cb), bd] { cb(bd); },
                              "npf.debounced");
            return;
        }
        auto it = c.merges.find(check.firstMissing);
        if (it != c.merges.end()) {
            // A resolution covering this page is in flight: the
            // firmware handles the duplicate silently (bitmap set),
            // and this requester resumes when the first one does.
            obs::tracer().instant(obs::Track::Nic, "npf", "npf.merged");
            it->second.push_back(std::move(cb));
            ++stats_.mergedNpfs;
            return;
        }
    }

    // One flow per NPF journey, opened before any queueing so the
    // concurrency-slot wait shows up in the flow's span.
    obs::FlowId flow = obs::tracer().beginFlow("npf", "npf");

    auto start = [this, ch, iova, len, write, flow,
                  cb = std::move(cb)]() mutable {
        startResolve(ch, iova, len, write, std::move(cb), flow);
    };

    if (c.inFlight >= cfg_.maxConcurrentNpfs) {
        ++stats_.queuedNpfs;
        obs::tracer().instant(obs::Track::Nic, "npf", "npf.queued", flow);
        c.waiting.push_back(std::move(start));
        return;
    }
    ++c.inFlight;
    start();
}

void
NpfController::startResolve(ChannelId ch, mem::VirtAddr iova,
                            std::size_t len, bool write, ResolveCallback cb,
                            obs::FlowId flow)
{
    Channel &c = chan(ch);
    ++stats_.npfs;

    sim::PoolHandle bdh = breakdownPool().create();
    sim::Time trigger = jittered(cfg_.fwTriggerInterrupt);
    breakdownPool().get(bdh)->trigger = trigger;

    DmaCheck check = checkDmaRaw(ch, iova, len);
    mem::Vpn merge_key = check.firstMissing;
    if (cfg_.firmwareBypass && !check.ok)
        c.merges.emplace(merge_key, std::vector<ResolveCallback>{});

    // The fault-resolution continuation is the fattest closure the
    // controller schedules (breakdown handle, merge key, resolve
    // callback); it still must ride the event queue's inline delegate
    // storage — NPF latency is the quantity this simulator measures,
    // and an allocation here would sit directly on that path. The
    // breakdown travels as a pooled handle that each continuation
    // revalidates (get() aborts on a stale generation) and that the
    // final continuation releases, exactly once.
    auto resolve = [this, ch, iova, len, write, bdh, merge_key,
                    has_key = !check.ok, flow,
                    cb = std::move(cb)]() mutable {
        obs::FlowScope fs(flow);
        Channel &c = chan(ch);
        NpfBreakdown *bd = breakdownPool().get(bdh);
        sim::logf(sim::LogLevel::Debug, eq_.now(),
                  "npf: ch=%u resolving iova=0x%llx len=%zu write=%d", ch,
                  static_cast<unsigned long long>(iova), len, int(write));
        resolvePages(c, iova, len, write, *bd);
        bd->resume = jittered(cfg_.fwResume);
        sim::Time rest = bd->driver + bd->ptUpdate + bd->resume;

        eq_.scheduleAfter(rest, [this, ch, bdh, merge_key, has_key, flow,
                                 cb = std::move(cb)]() mutable {
            obs::FlowScope fs(flow);
            Channel &c = chan(ch);
            NpfBreakdown *bd = breakdownPool().get(bdh);
            sim::logf(sim::LogLevel::Debug, eq_.now(),
                      "npf: ch=%u resolved pages=%u major=%u total=%llu ns",
                      ch, bd->pagesMapped, bd->majorFaults,
                      static_cast<unsigned long long>(bd->total()));
            traceBreakdown(flow, *bd, eq_.now());
            recordBreakdown(*bd);
            obs::tracer().endFlow(flow);
            cb(*bd);
            if (has_key) {
                auto it = c.merges.find(merge_key);
                if (it != c.merges.end()) {
                    auto merged = std::move(it->second);
                    c.merges.erase(it);
                    NpfBreakdown mbd = *bd;
                    mbd.merged = true;
                    for (auto &m : merged)
                        m(mbd);
                }
            }
            // Last read of *bd was above; retire the slot before the
            // next queued NPF can start and recycle it.
            breakdownPool().release(bdh);
            assert(c.inFlight > 0);
            --c.inFlight;
            if (!c.waiting.empty()) {
                auto next = std::move(c.waiting.front());
                c.waiting.pop_front();
                ++c.inFlight;
                next();
            }
        }, "npf.resolve");
    };
    static_assert(sim::Delegate::fitsInline<decltype(resolve)>,
                  "npf resolution closure must stay inline");
    eq_.scheduleAfter(trigger, std::move(resolve), "npf.trigger");
}

void
NpfController::resolvePages(Channel &c, mem::VirtAddr iova, std::size_t len,
                            bool write, NpfBreakdown &bd)
{
    bd.driver = jittered(cfg_.driverHandlerBase);
    bd.ptUpdate = jittered(cfg_.ptUpdateBase);

    if (len == 0)
        return;
    mem::Vpn first = mem::pageOf(iova);
    mem::Vpn last = mem::pageOf(iova + len - 1);
    for (mem::Vpn v = first; v <= last; ++v) {
        if (!c.iommu.wouldFault(v))
            continue;
        mem::AccessResult ar = c.as->touchPage(v, write);
        if (!ar.ok) {
            bd.ok = false;
            return;
        }
        bd.driver += ar.cost + cfg_.osPerPage;
        bd.ptUpdate += cfg_.ptUpdatePerPage;
        bd.majorFaults += ar.majorFaults;
        const mem::Pte *pte = c.as->findPte(v);
        assert(pte != nullptr && pte->present);
        c.iommu.map(v, pte->pfn);
        ++bd.pagesMapped;
        ++stats_.pagesMapped;
        stats_.majorFaults += ar.majorFaults;
        if (!cfg_.batchedPrefault)
            break; // strict ATS/PRI: one page per fault event
    }

    // Occasional scheduling/contention spike (Table 4 tail).
    if (rng_.bernoulli(cfg_.tailSpikeProb)) {
        bd.driver += static_cast<sim::Time>(
            rng_.exponential(double(cfg_.tailSpikeMean)));
    }
}

NpfBreakdown
NpfController::computeResolve(ChannelId ch, mem::VirtAddr iova,
                              std::size_t len, bool write)
{
    Channel &c = chan(ch);
    ++stats_.npfs;
    NpfBreakdown bd;
    bd.trigger = jittered(cfg_.fwTriggerInterrupt);
    resolvePages(c, iova, len, write, bd);
    bd.resume = jittered(cfg_.fwResume);
    // Synchronous: the caller accounts the time itself, so the spans
    // project forward from now instead of ending at now.
    if (obs::tracer().active()) {
        obs::FlowId flow = obs::tracer().beginFlow("npf", "npf.sync");
        traceBreakdown(flow, bd, eq_.now() + bd.total());
        obs::tracer().endFlowAt(flow, eq_.now() + bd.total());
    }
    recordBreakdown(bd);
    return bd;
}

mem::AccessResult
NpfController::prefault(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                        bool write)
{
    Channel &c = chan(ch);
    mem::AccessResult res;
    if (len == 0)
        return res;
    mem::Vpn first = mem::pageOf(iova);
    mem::Vpn last = mem::pageOf(iova + len - 1);
    for (mem::Vpn v = first; v <= last; ++v) {
        mem::AccessResult one = c.as->touchPage(v, write);
        res.cost += one.cost;
        res.minorFaults += one.minorFaults;
        res.majorFaults += one.majorFaults;
        if (!one.ok) {
            res.ok = false;
            return res;
        }
        if (c.iommu.wouldFault(v)) {
            const mem::Pte *pte = c.as->findPte(v);
            c.iommu.map(v, pte->pfn);
            res.cost += cfg_.ptUpdatePerPage;
        }
    }
    return res;
}

InvalidationBreakdown
NpfController::invalidateRange(ChannelId ch, mem::VirtAddr iova,
                               std::size_t len)
{
    Channel &c = chan(ch);
    InvalidationBreakdown bd;
    bd.checks = cfg_.invChecks;
    if (len == 0)
        return bd;
    mem::Vpn first = mem::pageOf(iova);
    mem::Vpn last = mem::pageOf(iova + len - 1);
    unsigned unmapped = 0;
    for (mem::Vpn v = first; v <= last; ++v) {
        if (c.iommu.invalidate(v))
            ++unmapped;
    }
    stats_.invalidations += unmapped;
    bd.wasMapped = unmapped > 0;
    if (bd.wasMapped) {
        bd.ptUpdate =
            cfg_.invPtUpdateBase + unmapped * cfg_.invPtUpdatePerPage;
        bd.swUpdates = cfg_.invSwUpdates;
    }
    obs::FlowTracer &tr = obs::tracer();
    if (tr.active()) {
        sim::Time t = eq_.now();
        tr.span(obs::Track::Driver, "inv", "checks", t, bd.checks);
        t += bd.checks;
        if (bd.wasMapped) {
            tr.span(obs::Track::Iommu, "inv", "pt_update", t, bd.ptUpdate);
            t += bd.ptUpdate;
            tr.span(obs::Track::Driver, "inv", "sw_updates", t,
                    bd.swUpdates);
        }
    }
    return bd;
}

sim::Time
NpfController::sampleResolveLatency(ChannelId ch, std::size_t pages,
                                    bool major)
{
    Channel &c = chan(ch);
    const mem::MemCostConfig &mc = c.as->manager().costs();
    sim::Time t = jittered(cfg_.fwTriggerInterrupt);
    t += jittered(cfg_.driverHandlerBase);
    t += pages * (cfg_.osPerPage + mc.minorFaultCpu);
    t += jittered(cfg_.ptUpdateBase) + pages * cfg_.ptUpdatePerPage;
    t += jittered(cfg_.fwResume);
    if (major)
        t += c.as->manager().swap().readLatency(pages);
    if (rng_.bernoulli(cfg_.tailSpikeProb))
        t += static_cast<sim::Time>(
            rng_.exponential(double(cfg_.tailSpikeMean)));
    return t;
}

sim::Time
NpfController::jittered(sim::Time base)
{
    double j = rng_.lognormalJitter(cfg_.hwJitterSigma);
    return static_cast<sim::Time>(double(base) * j);
}

} // namespace npf::core
