/**
 * @file
 * Calibration constants for the NPF engine. Component latencies are
 * fitted to the paper's own measurements: the Figure 3 execution
 * breakdowns and the Table 4 tail latencies on Connect-IB firmware.
 */

#ifndef NPF_CORE_ODP_CONFIG_HH
#define NPF_CORE_ODP_CONFIG_HH

#include <cstddef>

#include "sim/time.hh"

namespace npf::core {

/**
 * Tunables of the NPF (network page fault) engine.
 *
 * Figure 3(a) decomposes a minor NPF into four intervals:
 *   (i->ii)   firmware detects the fault and triggers the interrupt
 *   (ii->iii) driver handler queries the OS for physical addresses
 *   (iii->iv) driver updates the on-NIC IOMMU page table
 *   (iv->v)   firmware notices and resumes the transfer
 * The paper measures ~215 us median for a 4 KB message (90% of it
 * firmware) growing to ~352 us for 4 MB (the growth is software,
 * scaling with page count). Defaults below reproduce both.
 */
struct OdpConfig
{
    // --- NPF flow (Fig. 3(a)) -------------------------------------
    /** (i->ii): firmware fault detection + interrupt, hw only. */
    sim::Time fwTriggerInterrupt = sim::fromMicroseconds(110);
    /** (ii->iii): driver handler fixed cost, sw only. */
    sim::Time driverHandlerBase = sim::fromMicroseconds(12);
    /** (ii->iii): per-page OS translate/allocate cost on top of the
     *  mem::MemoryManager fault cost. */
    sim::Time osPerPage = 20;
    /** (iii->iv): IOMMU page-table update, fixed (sw + hw doorbell). */
    sim::Time ptUpdateBase = sim::fromMicroseconds(25);
    /** (iii->iv): per-PTE write cost. */
    sim::Time ptUpdatePerPage = 15;
    /** (iv->v): firmware resume, hw only. */
    sim::Time fwResume = sim::fromMicroseconds(65);

    // --- jitter (Table 4) ------------------------------------------
    /** Log-normal sigma applied to hardware components. */
    double hwJitterSigma = 0.10;
    /** Probability of an extra scheduling/contention spike. */
    double tailSpikeProb = 0.006;
    /** Mean of the exponential spike when it occurs. */
    sim::Time tailSpikeMean = sim::fromMicroseconds(60);

    // --- invalidation flow (Fig. 3(b)) ------------------------------
    /** Driver checks whether the page is mapped in the IOMMU. */
    sim::Time invChecks = sim::fromMicroseconds(4);
    /** IOMMU PT update + hw acknowledge, when the page was mapped. */
    sim::Time invPtUpdateBase = sim::fromMicroseconds(14);
    /** Per-page PT write during a ranged invalidation. */
    sim::Time invPtUpdatePerPage = 40;
    /** Driver internal state updates. */
    sim::Time invSwUpdates = sim::fromMicroseconds(5);

    // --- rNPF handling (§4, §5) -------------------------------------
    /**
     * RNR NACK timer: how long a suspended RC sender waits before
     * retransmitting from the faulting PSN. InfiniBand encodes a
     * discrete set of values; "RNR NACKs are faster than the basic
     * NPF overhead" (§4) — a too-early retry just earns another NACK.
     */
    sim::Time rnrTimer = sim::fromMicroseconds(200);

    // --- optimizations (§4 "Optimizations") --------------------------
    /** Outstanding page faults serviced concurrently per IOchannel. */
    unsigned maxConcurrentNpfs = 4;
    /**
     * Batched pre-faulting: map every absent page of the faulting
     * work request in one flow. When false, behave like strict
     * ATS/PRI (one page per page-fault event) — the ablation shows
     * the >200 ms cold-4MB cost the paper warns about.
     */
    bool batchedPrefault = true;
    /**
     * Firmware bypass: dedupe reports of NPFs already in flight on
     * the same channel; duplicates piggyback on the pending
     * resolution instead of paying a fresh firmware round trip.
     */
    bool firmwareBypass = true;

    /** IOTLB capacity per IOchannel. */
    std::size_t iotlbCapacity = 256;
};

} // namespace npf::core

#endif // NPF_CORE_ODP_CONFIG_HH
