/**
 * @file
 * The five memory-registration disciplines: the four the paper
 * compares (Table 3) — static pinning, fine-grained pinning, a
 * coarse-grained pin-down cache, and NPF ("none") — plus the
 * NP-RDMA-style on-demand IOVA mapping discipline (dynamic DMA
 * mapping with a driver-side translation table; see
 * docs/REGISTRATION.md). Applications and the HPC middleware call
 * beforeDma()/afterDma() around each transfer and are charged
 * whatever the discipline costs.
 */

#ifndef NPF_CORE_PINNING_HH
#define NPF_CORE_PINNING_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/npf_controller.hh"
#include "mem/address_space.hh"
#include "obs/metrics.hh"
#include "sim/time.hh"

namespace npf::core {

/** Cost knobs for pin/unpin/register operations (§2.2 overheads). */
struct PinCosts
{
    /** mlock/get_user_pages fixed syscall cost. */
    sim::Time pinBase = sim::fromMicroseconds(1.5);
    /** Per-page pin cost (page walk + refcount). */
    sim::Time pinPerPage = 1200;
    /** Per-page IOMMU/MTT map cost on the pin path. */
    sim::Time iommuMapPerPage = 800;
    /** Unpin fixed cost. */
    sim::Time unpinBase = sim::fromMicroseconds(1.0);
    /** Per-page unpin + IOMMU unmap + IOTLB invalidate cost. */
    sim::Time unpinPerPage = 600;
    /** Memory-region registration (ibv_reg_mr-style) fixed cost.
     *  Mietke et al. measure registration in the hundreds of us on
     *  Mellanox stacks. */
    sim::Time regMrBase = sim::fromMicroseconds(120);
    /** Pin-down cache hit lookup cost. */
    sim::Time cacheLookup = 200;
};

/**
 * Cost knobs for NP-RDMA-style on-demand IOVA mapping (dynamic DMA
 * mapping through the kernel DMA API, amortized by a driver-side
 * translation table). Per-IO map/unmap replaces pin/unpin: there is
 * no get_user_pages refcounting and no ibv_reg_mr, just IOVA
 * allocation plus IOMMU PTE installs, so the per-page costs sit well
 * below PinCosts' pin path.
 */
struct MapCosts
{
    /** dma_map_sg-style driver entry (IOVA allocation included). */
    sim::Time mapBase = sim::fromMicroseconds(0.6);
    /** Per-page IOMMU PTE install on the map path. */
    sim::Time mapPerPage = 400;
    /** dma_unmap fixed cost. */
    sim::Time unmapBase = sim::fromMicroseconds(0.5);
    /** Per-page PTE clear (the IOTLB invalidate is charged through
     *  the NpfController's Fig. 3(b) invalidation model). */
    sim::Time unmapPerPage = 300;
    /** Driver translation-table probe (both map and unmap side). */
    sim::Time tableLookup = 150;
};

/**
 * Interface of a registration discipline.
 *
 * ensureResident() is the one-time setup (static pinning pays here);
 * beforeDma()/afterDma() bracket each transfer. All methods return
 * the latency charged to the caller. ok() reports whether setup
 * succeeded — static pinning fails when memory cannot hold the whole
 * footprint, which is exactly the paper's Table 5 / Fig. 8(a)
 * "N/A / fails to load" outcome.
 */
class PinningStrategy
{
  public:
    virtual ~PinningStrategy() = default;

    virtual const char *name() const = 0;

    /** One-time setup for a buffer pool of [base, base+len). */
    virtual sim::Time setup(mem::VirtAddr base, std::size_t len) = 0;

    /** Per-transfer preparation of [addr, addr+len). */
    virtual sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) = 0;

    /** Per-transfer teardown. */
    virtual sim::Time afterDma(mem::VirtAddr addr, std::size_t len) = 0;

    /** False after a failed setup (out of memory / pin limit). */
    bool ok() const { return ok_; }

    /** Bytes currently pinned by this strategy. */
    std::size_t pinnedBytes() const { return pinnedBytes_; }

  protected:
    bool ok_ = true;
    std::size_t pinnedBytes_ = 0;
};

/**
 * Static pinning: pin everything up front (SRIOV-to-VM style).
 * Simple and fast, but the memory is lost to overcommitment forever.
 */
class StaticPinning : public PinningStrategy
{
  public:
    StaticPinning(NpfController &npfc, ChannelId ch, PinCosts costs = {});

    const char *name() const override { return "static"; }
    sim::Time setup(mem::VirtAddr base, std::size_t len) override;
    sim::Time beforeDma(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }

  private:
    NpfController &npfc_;
    ChannelId ch_;
    PinCosts costs_;
};

/**
 * Fine-grained pinning: pin/map before every DMA, unmap/unpin after
 * (the kernel DMA-API discipline). Safe, memory-friendly, slow.
 */
class FineGrainedPinning : public PinningStrategy
{
  public:
    FineGrainedPinning(NpfController &npfc, ChannelId ch,
                       PinCosts costs = {});

    const char *name() const override { return "fine-grained"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) override;
    sim::Time afterDma(mem::VirtAddr addr, std::size_t len) override;

  private:
    NpfController &npfc_;
    ChannelId ch_;
    PinCosts costs_;
};

/**
 * Coarse-grained pin-down cache (§2.2): registered regions stay
 * pinned until LRU eviction makes room under a byte budget. The
 * state-of-the-art HPC middleware discipline the paper benchmarks
 * against in Fig. 9 / Table 6.
 */
class PinDownCache : public PinningStrategy
{
  public:
    /**
     * @param capacity_bytes pinned-byte budget; 0 = unlimited (the
     *   HPC common case where the cache degenerates to pin-everything).
     */
    PinDownCache(NpfController &npfc, ChannelId ch,
                 std::size_t capacity_bytes, PinCosts costs = {});

    const char *name() const override { return "pin-down-cache"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) override;
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Capacity / memory-pressure evictions only. */
    std::uint64_t evictions() const { return evictions_; }
    /** Same-base re-registrations (old region retired in place). */
    std::uint64_t reregistrations() const { return reregistrations_; }

  private:
    struct Region
    {
        mem::VirtAddr base;
        std::size_t len; ///< exact registered length, not page-rounded
        std::list<mem::VirtAddr>::iterator lruIt;
    };

    sim::Time evictOne();
    sim::Time evictRegion(std::map<mem::VirtAddr, Region>::iterator it);

    NpfController &npfc_;
    ChannelId ch_;
    std::size_t capacity_;
    PinCosts costs_;
    std::map<mem::VirtAddr, Region> regions_; ///< by base address
    std::list<mem::VirtAddr> lru_;            ///< front = most recent
    /// Regions covering each pinned page; pinnedBytes_ counts a page
    /// once no matter how many cached regions overlap it.
    std::map<mem::Vpn, unsigned> pageRefs_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t reregistrations_ = 0;
};

/**
 * NPF / ODP: no pinning at all. DMA faults are handled by the NIC +
 * NpfController at access time; before/after are free.
 */
class NpfPinning : public PinningStrategy
{
  public:
    explicit NpfPinning() = default;

    const char *name() const override { return "npf"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }
};

/**
 * NP-RDMA-style on-demand IOVA mapping: RDMA without pinning on a
 * commodity (non-NPF) NIC. Every transfer dynamically maps its buffer
 * through the DMA API (beforeDma) and unmaps it at completion
 * (afterDma); the driver keeps a bounded translation table of
 * in-flight extents so concurrent IOs over the same buffer share one
 * mapping. Pages are faulted in CPU-side and their translations are
 * pushed into the device IOTLB with the map doorbell, so the NIC
 * never takes an NPF and there is no RNR-NACK path — but nothing is
 * pinned either, and every unmap invalidates its pages in the IOTLB,
 * so miss-heavy workloads thrash the device cache (visible in
 * IoTlb::Stats: invalidations and refreshes track the re-map
 * traffic).
 *
 * The table follows the IoTlb flat-cache idiom (docs/MEMORY.md): an
 * open-addressing index over fixed slots with intrusive LRU links,
 * sized once at construction — the per-IO path performs no heap
 * allocation in steady state (scripts/check.sh tier 9 gates this).
 */
class NpRdmaMapping : public PinningStrategy
{
  public:
    struct Stats
    {
        std::uint64_t maps = 0;      ///< dynamic map operations
        std::uint64_t unmaps = 0;    ///< dynamic unmap operations
        std::uint64_t reuses = 0;    ///< table hits (shared mapping)
        std::uint64_t overflows = 0; ///< table full of live extents
        std::uint64_t pagesMapped = 0;
        std::uint64_t pagesUnmapped = 0;
    };

    /**
     * @param table_entries bound on concurrently tracked extents;
     *   the driver-side translation table is sized once, here.
     */
    NpRdmaMapping(NpfController &npfc, ChannelId ch,
                  std::size_t table_entries = 256, MapCosts costs = {});

    const char *name() const override { return "np-rdma"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) override;
    sim::Time afterDma(mem::VirtAddr addr, std::size_t len) override;

    const Stats &stats() const { return stats_; }
    std::size_t tableSize() const { return size_; }
    std::size_t tableCapacity() const { return capacity_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** One in-flight mapped extent; prev/next are intrusive LRU
     *  links (front = most recently mapped/reused). */
    struct Entry
    {
        mem::VirtAddr base = 0;
        std::size_t len = 0;
        std::uint32_t refs = 0; ///< concurrent IOs sharing the mapping
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    std::size_t homeBucket(mem::VirtAddr base) const;
    std::size_t findBucket(mem::VirtAddr base) const;
    void removeAt(std::size_t b);
    void pushFrontLru(std::uint32_t s);
    void unlinkLru(std::uint32_t s);
    void touchLru(std::uint32_t s);

    /** True if a live (in-flight) extent covers @p vpn. */
    bool coveredElsewhere(mem::Vpn vpn) const;

    /** Unmap [base, base+len): clear PTEs + IOTLB entries for pages
     *  no other live extent still covers. @return latency charged. */
    sim::Time unmapExtent(mem::VirtAddr base, std::size_t len);

    /** Push the just-installed translations into the device IOTLB
     *  (the map doorbell carries them, NP-RDMA style). */
    void warmTlb(mem::VirtAddr addr, std::size_t len);

    NpfController &npfc_;
    ChannelId ch_;
    MapCosts costs_;
    std::size_t capacity_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::vector<Entry> slots_;         ///< fixed entry storage
    std::vector<std::uint32_t> table_; ///< open-addressing index
    std::uint32_t freeHead_ = kNil;
    std::uint32_t head_ = kNil; ///< LRU front
    std::uint32_t tail_ = kNil; ///< LRU back
    Stats stats_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::core

#endif // NPF_CORE_PINNING_HH
