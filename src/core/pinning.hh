/**
 * @file
 * The four memory-registration disciplines the paper compares
 * (Table 3): static pinning, fine-grained pinning, a coarse-grained
 * pin-down cache, and NPF ("none"). Applications and the HPC
 * middleware call beforeDma()/afterDma() around each transfer and
 * are charged whatever the discipline costs.
 */

#ifndef NPF_CORE_PINNING_HH
#define NPF_CORE_PINNING_HH

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "core/npf_controller.hh"
#include "mem/address_space.hh"
#include "sim/time.hh"

namespace npf::core {

/** Cost knobs for pin/unpin/register operations (§2.2 overheads). */
struct PinCosts
{
    /** mlock/get_user_pages fixed syscall cost. */
    sim::Time pinBase = sim::fromMicroseconds(1.5);
    /** Per-page pin cost (page walk + refcount). */
    sim::Time pinPerPage = 1200;
    /** Per-page IOMMU/MTT map cost on the pin path. */
    sim::Time iommuMapPerPage = 800;
    /** Unpin fixed cost. */
    sim::Time unpinBase = sim::fromMicroseconds(1.0);
    /** Per-page unpin + IOMMU unmap + IOTLB invalidate cost. */
    sim::Time unpinPerPage = 600;
    /** Memory-region registration (ibv_reg_mr-style) fixed cost.
     *  Mietke et al. measure registration in the hundreds of us on
     *  Mellanox stacks. */
    sim::Time regMrBase = sim::fromMicroseconds(120);
    /** Pin-down cache hit lookup cost. */
    sim::Time cacheLookup = 200;
};

/**
 * Interface of a registration discipline.
 *
 * ensureResident() is the one-time setup (static pinning pays here);
 * beforeDma()/afterDma() bracket each transfer. All methods return
 * the latency charged to the caller. ok() reports whether setup
 * succeeded — static pinning fails when memory cannot hold the whole
 * footprint, which is exactly the paper's Table 5 / Fig. 8(a)
 * "N/A / fails to load" outcome.
 */
class PinningStrategy
{
  public:
    virtual ~PinningStrategy() = default;

    virtual const char *name() const = 0;

    /** One-time setup for a buffer pool of [base, base+len). */
    virtual sim::Time setup(mem::VirtAddr base, std::size_t len) = 0;

    /** Per-transfer preparation of [addr, addr+len). */
    virtual sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) = 0;

    /** Per-transfer teardown. */
    virtual sim::Time afterDma(mem::VirtAddr addr, std::size_t len) = 0;

    /** False after a failed setup (out of memory / pin limit). */
    bool ok() const { return ok_; }

    /** Bytes currently pinned by this strategy. */
    std::size_t pinnedBytes() const { return pinnedBytes_; }

  protected:
    bool ok_ = true;
    std::size_t pinnedBytes_ = 0;
};

/**
 * Static pinning: pin everything up front (SRIOV-to-VM style).
 * Simple and fast, but the memory is lost to overcommitment forever.
 */
class StaticPinning : public PinningStrategy
{
  public:
    StaticPinning(NpfController &npfc, ChannelId ch, PinCosts costs = {});

    const char *name() const override { return "static"; }
    sim::Time setup(mem::VirtAddr base, std::size_t len) override;
    sim::Time beforeDma(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }

  private:
    NpfController &npfc_;
    ChannelId ch_;
    PinCosts costs_;
};

/**
 * Fine-grained pinning: pin/map before every DMA, unmap/unpin after
 * (the kernel DMA-API discipline). Safe, memory-friendly, slow.
 */
class FineGrainedPinning : public PinningStrategy
{
  public:
    FineGrainedPinning(NpfController &npfc, ChannelId ch,
                       PinCosts costs = {});

    const char *name() const override { return "fine-grained"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) override;
    sim::Time afterDma(mem::VirtAddr addr, std::size_t len) override;

  private:
    NpfController &npfc_;
    ChannelId ch_;
    PinCosts costs_;
};

/**
 * Coarse-grained pin-down cache (§2.2): registered regions stay
 * pinned until LRU eviction makes room under a byte budget. The
 * state-of-the-art HPC middleware discipline the paper benchmarks
 * against in Fig. 9 / Table 6.
 */
class PinDownCache : public PinningStrategy
{
  public:
    /**
     * @param capacity_bytes pinned-byte budget; 0 = unlimited (the
     *   HPC common case where the cache degenerates to pin-everything).
     */
    PinDownCache(NpfController &npfc, ChannelId ch,
                 std::size_t capacity_bytes, PinCosts costs = {});

    const char *name() const override { return "pin-down-cache"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr addr, std::size_t len) override;
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct Region
    {
        mem::VirtAddr base;
        std::size_t len; ///< exact registered length, not page-rounded
        std::list<mem::VirtAddr>::iterator lruIt;
    };

    sim::Time evictOne();
    sim::Time evictRegion(std::map<mem::VirtAddr, Region>::iterator it);

    NpfController &npfc_;
    ChannelId ch_;
    std::size_t capacity_;
    PinCosts costs_;
    std::map<mem::VirtAddr, Region> regions_; ///< by base address
    std::list<mem::VirtAddr> lru_;            ///< front = most recent
    /// Regions covering each pinned page; pinnedBytes_ counts a page
    /// once no matter how many cached regions overlap it.
    std::map<mem::Vpn, unsigned> pageRefs_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

/**
 * NPF / ODP: no pinning at all. DMA faults are handled by the NIC +
 * NpfController at access time; before/after are free.
 */
class NpfPinning : public PinningStrategy
{
  public:
    explicit NpfPinning() = default;

    const char *name() const override { return "npf"; }
    sim::Time setup(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time beforeDma(mem::VirtAddr, std::size_t) override { return 0; }
    sim::Time afterDma(mem::VirtAddr, std::size_t) override { return 0; }
};

} // namespace npf::core

#endif // NPF_CORE_PINNING_HH
