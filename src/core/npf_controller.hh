/**
 * @file
 * NpfController — the paper's primary contribution as a reusable
 * component: basic DMA page-fault support (Figure 2's NPF and
 * invalidation flows), the Figure 3 latency model, and the §4
 * firmware optimizations (concurrent NPFs, firmware bypass of
 * duplicate reports, batched pre-faulting of whole work requests).
 *
 * NIC models (ib::, eth::) attach an IOchannel per queue/ring, call
 * checkDma()/dmaAccess() on every DMA, and raiseNpf() when a
 * translation misses. The controller registers an MMU-notifier on
 * the backing address space so reclaim keeps the device page table
 * coherent (no pinning required — that is the whole point).
 */

#ifndef NPF_CORE_NPF_CONTROLLER_HH
#define NPF_CORE_NPF_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/odp_config.hh"
#include "iommu/iommu.hh"
#include "mem/address_space.hh"
#include "obs/flow_tracer.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"

namespace npf::core {

/** Handle to an attached IOchannel. */
using ChannelId = std::uint32_t;

/** Per-component timing of one resolved NPF (Figure 3(a)). */
struct NpfBreakdown
{
    sim::Time trigger = 0;  ///< (i->ii) firmware interrupt, hw
    sim::Time driver = 0;   ///< (ii->iii) driver + OS, sw
    sim::Time ptUpdate = 0; ///< (iii->iv) IOMMU PT update, sw+hw
    sim::Time resume = 0;   ///< (iv->v) firmware resume, hw
    unsigned pagesMapped = 0;
    unsigned majorFaults = 0;
    bool ok = true;     ///< false on out-of-memory
    bool merged = false; ///< rode on an in-flight resolution

    sim::Time total() const { return trigger + driver + ptUpdate + resume; }
};

/** Breakdown of one invalidation (Figure 3(b)). */
struct InvalidationBreakdown
{
    sim::Time checks = 0;    ///< sw-only mapping checks
    sim::Time ptUpdate = 0;  ///< sw+hw PT update (0 if unmapped)
    sim::Time swUpdates = 0; ///< sw-only driver state updates
    bool wasMapped = false;

    sim::Time total() const { return checks + ptUpdate + swUpdates; }
};

/**
 * The NPF engine shared by one NIC's IOchannels.
 *
 * Observability: registers its counters as `core.npfN.*` and, while
 * a session's detail flag is raised, records per-phase latency
 * histograms (`core.npfN.driver_ns`, ...). Each asynchronous NPF is
 * traced as one flow with trigger/driver/pt_update/resume spans on
 * the nic-fw, driver and iommu tracks.
 */
class NpfController
{
  public:
    using ResolveCallback = std::function<void(const NpfBreakdown &)>;

    struct Stats
    {
        std::uint64_t npfs = 0;        ///< resolutions run
        std::uint64_t mergedNpfs = 0;  ///< deduped by firmware bypass
        std::uint64_t queuedNpfs = 0;  ///< waited for a concurrency slot
        std::uint64_t pagesMapped = 0;
        std::uint64_t majorFaults = 0;
        std::uint64_t invalidations = 0;
    };

    NpfController(sim::EventQueue &eq, OdpConfig cfg = {},
                  std::uint64_t seed = 0x0dbull);

    /**
     * Attach an IOchannel backed by @p as. Installs the MMU-notifier
     * that keeps the channel's IOMMU coherent with reclaim.
     */
    ChannelId attach(mem::AddressSpace &as);

    iommu::IoMmu &iommu(ChannelId ch) { return chan(ch).iommu; }
    mem::AddressSpace &space(ChannelId ch) { return *chan(ch).as; }

    /** Device-side peek: would a DMA over [iova, iova+len) fault? */
    struct DmaCheck
    {
        bool ok = true;
        unsigned missingPages = 0;
        mem::Vpn firstMissing = 0;
    };
    DmaCheck checkDma(ChannelId ch, mem::VirtAddr iova, std::size_t len);

    /**
     * Perform the DMA if fully mapped (exercises the IOTLB, marks
     * pages referenced/dirty). @return false when it faults instead.
     */
    bool dmaAccess(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                   bool write);

    /**
     * Asynchronous NPF flow for [iova, iova+len): firmware interrupt,
     * driver resolution, PT update, firmware resume. @p cb fires on
     * resume. Respects maxConcurrentNpfs and the firmware-bypass
     * dedupe (§4 Optimizations).
     */
    void raiseNpf(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                  bool write, ResolveCallback cb);

    /**
     * Synchronous variant: run the whole flow immediately (no events)
     * and return the breakdown. Used by latency benches and by
     * callers that account time themselves.
     */
    NpfBreakdown computeResolve(ChannelId ch, mem::VirtAddr iova,
                                std::size_t len, bool write);

    /**
     * Map [iova, iova+len) without a firmware round trip — the
     * driver-initiated pre-fault used when posting known-hot buffers
     * and by the pinning strategies.
     */
    mem::AccessResult prefault(ChannelId ch, mem::VirtAddr iova,
                               std::size_t len, bool write);

    /** Explicit ranged invalidation with the Fig. 3(b) cost model. */
    InvalidationBreakdown invalidateRange(ChannelId ch, mem::VirtAddr iova,
                                          std::size_t len);

    /**
     * Sample the end-to-end latency of resolving an NPF over
     * @p pages pages without touching any state — used by the
     * synthetic-fault injection of the what-if benchmarks (§6.4).
     */
    sim::Time sampleResolveLatency(ChannelId ch, std::size_t pages,
                                   bool major);

    const OdpConfig &config() const { return cfg_; }
    OdpConfig &config() { return cfg_; }
    const Stats &stats() const { return stats_; }
    sim::EventQueue &eventQueue() { return eq_; }

  private:
    struct Channel
    {
        iommu::IoMmu iommu;
        mem::AddressSpace *as = nullptr;
        unsigned inFlight = 0;
        /** firstMissing vpn -> callbacks merged onto that resolution. */
        std::unordered_map<mem::Vpn, std::vector<ResolveCallback>> merges;
        /** FIFO of NPFs waiting for a concurrency slot. */
        std::deque<std::function<void()>> waiting;

        explicit Channel(std::size_t tlb_cap) : iommu(tlb_cap) {}
    };

    Channel &chan(ChannelId ch) { return *channels_.at(ch); }

    /** checkDma() without fault injection — for the controller's own
     *  debounce/resolution machinery. */
    DmaCheck checkDmaRaw(ChannelId ch, mem::VirtAddr iova, std::size_t len);

    /** Start one resolution (a slot is already reserved). */
    void startResolve(ChannelId ch, mem::VirtAddr iova, std::size_t len,
                      bool write, ResolveCallback cb, obs::FlowId flow);

    /** Driver phase: touch + map pages; fills breakdown. */
    void resolvePages(Channel &c, mem::VirtAddr iova, std::size_t len,
                      bool write, NpfBreakdown &bd);

    sim::Time jittered(sim::Time base);

    /** Per-phase latency distributions (recorded when obs detail on). */
    void recordBreakdown(const NpfBreakdown &bd);

    /** Emit the four phase spans of a resolved NPF ending at @p end. */
    void traceBreakdown(obs::FlowId flow, const NpfBreakdown &bd,
                        sim::Time end);

    sim::EventQueue &eq_;
    OdpConfig cfg_;
    sim::Rng rng_;
    Stats stats_;
    std::vector<std::unique_ptr<Channel>> channels_;

    struct Latencies
    {
        sim::Histogram triggerNs, driverNs, ptUpdateNs, resumeNs, totalNs;
    };
    Latencies lat_;
    obs::Instrumented obs_; ///< last member: deregisters first
};

} // namespace npf::core

#endif // NPF_CORE_NPF_CONTROLLER_HH
